// Spatial coverage: distinct grid cells covered by a stream of rectangles —
// multidimensional range-efficient F0 (§5, Theorem 6).
//
// A mapping service receives viewport rectangles over a 2^14 x 2^14 tile
// grid and wants the number of distinct tiles ever shown. Rectangles arrive
// as succinct ranges; expanding one rectangle can mean millions of tiles,
// so the per-item cost must stay polylogarithmic. Each rectangle becomes at
// most (2*14)^2 DNF terms (Lemma 4) and is absorbed by the Minimum sketch.
//
// Build & run:  ./build/examples/spatial_coverage
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "setstream/exact_union.hpp"
#include "setstream/structured_f0.hpp"

int main() {
  using namespace mcf0;
  const int kBitsPerAxis = 14;
  const int kRects = 40;

  Rng rng(271828);
  std::vector<MultiDimRange> rects;
  for (int i = 0; i < kRects; ++i) {
    // Viewports cluster around a hot region with heavy overlap.
    MultiDimRange r(2, kBitsPerAxis);
    for (int axis = 0; axis < 2; ++axis) {
      const uint64_t center = 4000 + rng.NextBelow(6000);
      const uint64_t half = 1 + rng.NextBelow(1200);
      const uint64_t lo = center > half ? center - half : 0;
      const uint64_t hi =
          std::min<uint64_t>(center + half, (1u << kBitsPerAxis) - 1);
      r.SetDim(axis, DimRange{lo, hi, 0});
    }
    rects.push_back(r);
  }

  StructuredF0Params params;
  params.n = 2 * kBitsPerAxis;
  params.eps = 0.4;
  params.delta = 0.2;
  params.rows_override = 35;
  params.seed = 1618;
  StructuredF0 est(params);

  WallTimer timer;
  double expanded_tiles = 0;
  for (const auto& r : rects) {
    est.AddRange(r);
    expanded_tiles += r.Volume();
  }
  const double per_item_ms = timer.Seconds() * 1000.0 / kRects;

  const double exact = ExactRangeUnionSize(rects);
  const double got = est.Estimate();
  std::printf("%d rectangles over a 2^%d x 2^%d grid\n", kRects, kBitsPerAxis,
              kBitsPerAxis);
  std::printf("sum of rectangle areas (overlap ignored): %.0f tiles\n",
              expanded_tiles);
  std::printf("exact distinct tiles covered            : %.0f\n", exact);
  std::printf("StructuredF0 estimate                   : %.0f (%.1f%% error)\n",
              got, 100.0 * std::abs(got - exact) / exact);
  std::printf("per-rectangle processing                : %.2f ms "
              "(naive expansion would touch ~%.0f tiles/rect)\n",
              per_item_ms, expanded_tiles / kRects);
  std::printf("sketch memory                           : %zu KiB\n",
              est.SpaceBits() / 8192);
  return 0;
}
