// Distinct IPv4 coverage of firewall rules — structured set streaming (§5).
//
// A firewall config is a stream of rules; each rule covers a *set* of
// addresses given succinctly: CIDR blocks (prefix cubes — one DNF term)
// and dotted ranges (1-dimensional ranges — at most 2n terms by Lemma 4).
// "How many distinct addresses do the rules touch?" is F0 of the union, and
// a per-address pass is hopeless at 2^32 scale. StructuredF0 processes each
// rule in poly(log N) time.
//
// Build & run:  ./build/examples/streaming_ips
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "setstream/exact_union.hpp"
#include "setstream/structured_f0.hpp"

namespace {

uint32_t Ip(int a, int b, int c, int d) {
  return (static_cast<uint32_t>(a) << 24) | (static_cast<uint32_t>(b) << 16) |
         (static_cast<uint32_t>(c) << 8) | static_cast<uint32_t>(d);
}

}  // namespace

int main() {
  using namespace mcf0;
  const int kBits = 32;

  StructuredF0Params params;
  params.n = kBits;
  params.eps = 0.4;
  params.delta = 0.2;
  params.rows_override = 35;
  params.seed = 99;
  StructuredF0 coverage(params);

  double naive_sum = 0;  // sum of rule sizes, ignoring overlap

  // CIDR blocks: a /p prefix fixes the top p bits — exactly one DNF term.
  struct CidrRule {
    uint32_t base;
    int prefix_len;
    const char* text;
  };
  const CidrRule cidrs[] = {
      {Ip(10, 0, 0, 0), 8, "10.0.0.0/8"},
      {Ip(10, 1, 0, 0), 16, "10.1.0.0/16 (inside the /8: pure overlap)"},
      {Ip(192, 168, 0, 0), 16, "192.168.0.0/16"},
      {Ip(172, 16, 0, 0), 12, "172.16.0.0/12"},
  };
  for (const auto& rule : cidrs) {
    std::vector<Lit> lits;
    for (int bit = 0; bit < rule.prefix_len; ++bit) {
      const bool v = (rule.base >> (31 - bit)) & 1;
      lits.emplace_back(bit, !v);
    }
    coverage.AddTerms({*Term::Make(std::move(lits))});
    naive_sum += static_cast<double>(1ull << (32 - rule.prefix_len));
    std::printf("rule %-45s covers 2^%d addresses\n", rule.text,
                32 - rule.prefix_len);
  }

  // Arbitrary dotted ranges (not prefix-aligned): Lemma 4 terms.
  struct RangeRule {
    uint32_t lo;
    uint32_t hi;
    const char* text;
  };
  const RangeRule ranges[] = {
      {Ip(10, 200, 3, 17), Ip(10, 220, 77, 200),
       "10.200.3.17 - 10.220.77.200 (overlaps the /8)"},
      {Ip(203, 0, 113, 0), Ip(203, 0, 113, 255), "203.0.113.0/24 as a range"},
      {Ip(100, 64, 0, 1), Ip(100, 127, 255, 254), "100.64.0.1 - 100.127.255.254"},
  };
  for (const auto& rule : ranges) {
    MultiDimRange r(1, kBits);
    r.SetDim(0, DimRange{rule.lo, rule.hi, 0});
    coverage.AddRange(r);
    naive_sum += static_cast<double>(rule.hi) - rule.lo + 1;
    std::printf("rule %-45s covers %.0f addresses\n", rule.text,
                static_cast<double>(rule.hi) - rule.lo + 1);
  }

  // Exact distinct coverage for this config (computable here because the
  // rules are unions of ranges; a real config would rely on the sketch).
  std::vector<MultiDimRange> as_ranges;
  for (const auto& rule : cidrs) {
    MultiDimRange r(1, kBits);
    const uint32_t span = (rule.prefix_len == 0)
                              ? 0xFFFFFFFFu
                              : ((1u << (32 - rule.prefix_len)) - 1);
    r.SetDim(0, DimRange{rule.base, rule.base + span, 0});
    as_ranges.push_back(r);
  }
  for (const auto& rule : ranges) {
    MultiDimRange r(1, kBits);
    r.SetDim(0, DimRange{rule.lo, rule.hi, 0});
    as_ranges.push_back(r);
  }
  const double exact = ExactRangeUnionSize(as_ranges);

  std::printf("\nsum of rule sizes (overlap ignored): %.0f\n", naive_sum);
  std::printf("exact distinct coverage            : %.0f\n", exact);
  const double est = coverage.Estimate();
  std::printf("StructuredF0 estimate              : %.0f  (%.1f%% error)\n",
              est, 100.0 * std::abs(est - exact) / exact);
  std::printf("sketch memory                      : %zu KiB\n",
              coverage.SpaceBits() / 8192);
  return 0;
}
