// Quickstart: the library in five minutes.
//
//  1. Parse a CNF and a DNF formula (DIMACS).
//  2. Approximately count models with the three transformed streaming
//     strategies (Bucketing = ApproxMC, Minimum, Estimation).
//  3. Estimate F0 of a raw element stream with the classic sketches the
//     counters were derived from.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.hpp"
#include "core/approx_count_est.hpp"
#include "core/approx_count_min.hpp"
#include "core/approxmc.hpp"
#include "core/exact_count.hpp"
#include "formula/dimacs.hpp"
#include "streaming/f0_sketch.hpp"

int main() {
  using namespace mcf0;

  // ---- 1. Formulas ------------------------------------------------------
  const char* cnf_text =
      "c (x1 | x2) & (!x1 | x3) & (x2 | !x3) over 12 vars\n"
      "p cnf 12 3\n"
      "1 2 0\n"
      "-1 3 0\n"
      "2 -3 0\n";
  const char* dnf_text =
      "p dnf 12 3\n"
      "1 2 0\n"
      "-3 4 5 0\n"
      "6 -7 0\n";
  const Cnf cnf = ParseDimacsCnf(cnf_text).value();
  const Dnf dnf = ParseDimacsDnf(dnf_text).value();

  std::printf("== Model counting ==\n");
  std::printf("exact |Sol(cnf)| = %llu, exact |Sol(dnf)| = %llu\n",
              static_cast<unsigned long long>(ExactCountEnum(cnf)),
              static_cast<unsigned long long>(ExactCountEnum(dnf)));

  CountingParams params;
  params.eps = 0.8;    // (eps, delta) guarantee
  params.delta = 0.2;
  params.rows_override = 15;  // fewer rows than theory for a quick demo
  params.seed = 42;

  // Bucketing strategy == ApproxMC (Algorithm 5). For CNF it drives the
  // built-in CDCL(XOR) solver as the NP oracle and reports the call count.
  const CountResult mc = ApproxMcCnf(cnf, params);
  std::printf("ApproxMC  (Bucketing, CNF): estimate %.1f  [%llu oracle calls]\n",
              mc.estimate, static_cast<unsigned long long>(mc.oracle_calls));

  // The same algorithm is an FPRAS for DNF — no oracle involved.
  std::printf("ApproxMC  (Bucketing, DNF): estimate %.1f\n",
              ApproxMcDnf(dnf, params).estimate);

  // Minimum strategy (Algorithm 6) — KMV sketch built by FindMin.
  std::printf("CountMin  (Minimum,  DNF): estimate %.1f\n",
              ApproxCountMinDnf(dnf, params).estimate);

  // Estimation strategy (Algorithm 7) — trailing-zero sketch built by
  // FindMaxRange, with r derived from a Flajolet-Martin rough count.
  std::printf("CountEst  (Estimation, DNF): estimate %.1f\n",
              ApproxCountEstAutoDnf(dnf, params).estimate);

  // ---- 2. Streaming F0 --------------------------------------------------
  std::printf("\n== F0 estimation over a raw stream ==\n");
  const uint64_t distinct_support = 5000;
  F0Params fp;
  fp.n = 32;
  fp.eps = 0.5;
  fp.delta = 0.2;
  fp.rows_override = 15;
  for (const auto alg : {F0Algorithm::kBucketing, F0Algorithm::kMinimum,
                         F0Algorithm::kEstimation}) {
    fp.algorithm = alg;
    // The Estimation sketch's per-item cost is rows x cells field
    // multiplications; trim the constants for this demo.
    fp.thresh_override = alg == F0Algorithm::kEstimation ? 96 : 0;
    fp.s_override = alg == F0Algorithm::kEstimation ? 5 : 0;
    F0Estimator est(fp);
    Rng replay(7);
    for (int i = 0; i < 20000; ++i) {
      est.Add(replay.NextBelow(distinct_support));
    }
    const char* name = alg == F0Algorithm::kBucketing    ? "Bucketing "
                       : alg == F0Algorithm::kMinimum    ? "Minimum   "
                                                         : "Estimation";
    std::printf("%s sketch: F0 estimate %.0f (true ~%llu), %zu KiB\n", name,
                est.Estimate(),
                static_cast<unsigned long long>(distinct_support),
                est.SpaceBits() / 8192);
  }
  return 0;
}
