// Distributed audit: counting distinct records matching any of k sites'
// local rule sets — distributed DNF counting (§4).
//
// Each data center holds its own set of audit rules (a DNF over record
// attribute bits). Compliance wants |Sol(phi_1 or ... or phi_k)| — the
// number of distinct attribute combinations flagged anywhere — without
// shipping rule evaluations around. The three protocols trade communication
// differently; the example prints each estimate and its measured bits.
//
// Build & run:  ./build/examples/distributed_audit
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "distributed/distributed_dnf.hpp"
#include "formula/random_gen.hpp"

int main() {
  using namespace mcf0;

  // 20 attribute bits per record; 5 data centers with 4 local rules each.
  const int n = 20;
  const int k = 5;
  Rng rng(314159);
  Dnf global(n);
  for (int i = 0; i < 4 * k; ++i) {
    global.AddTerm(RandomTerm(n, 3 + static_cast<int>(rng.NextBelow(4)), rng));
  }
  const auto sites = PartitionDnf(global, k);
  const double exact = static_cast<double>(ExactCountEnum(global));
  std::printf("%d sites, %d rules each, %d attribute bits\n", k, 4, n);
  std::printf("exact distinct flagged records: %.0f\n\n", exact);

  DistributedParams params;
  params.eps = 0.6;
  params.delta = 0.2;
  params.rows_override = 21;
  params.seed = 2718;

  struct Row {
    const char* name;
    DistributedResult result;
  };
  const Row rows[] = {
      {"Bucketing ", DistributedBucketingDnf(sites, params)},
      {"Minimum   ", DistributedMinimumDnf(sites, params)},
      {"Estimation", DistributedEstimationDnf(sites, params)},
  };
  std::printf("%-11s %12s %8s %16s %16s\n", "protocol", "estimate", "err%",
              "bits to sites", "bits from sites");
  for (const Row& row : rows) {
    std::printf("%-11s %12.0f %7.1f%% %16llu %16llu\n", row.name,
                row.result.estimate,
                100.0 * std::abs(row.result.estimate - exact) / exact,
                static_cast<unsigned long long>(row.result.comm.bits_to_sites),
                static_cast<unsigned long long>(
                    row.result.comm.bits_from_sites));
  }
  std::printf("\n(the Omega(k / eps^2) lower bound at these parameters is "
              "~%.0f bits of payload)\n",
              k / (params.eps * params.eps));
  return 0;
}
