// mcf0_count — command-line approximate model counter.
//
// Usage:
//   mcf0_count <file.cnf|file.dnf> [eps] [delta] [seed]
//
// Reads a DIMACS CNF (`p cnf`) or DNF (`p dnf`) file and prints the
// (eps, delta)-estimate of its model count from all applicable algorithms,
// with oracle-call counts for the CNF path. Defaults: eps 0.8, delta 0.2.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/approx_count_est.hpp"
#include "core/approx_count_min.hpp"
#include "core/approxmc.hpp"
#include "formula/dimacs.hpp"

namespace {

std::string ReadFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mcf0;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.cnf|file.dnf> [eps] [delta] [seed]\n",
                 argv[0]);
    return 2;
  }
  CountingParams params;
  if (argc > 2) params.eps = std::atof(argv[2]);
  if (argc > 3) params.delta = std::atof(argv[3]);
  if (argc > 4) params.seed = std::strtoull(argv[4], nullptr, 10);
  if (params.eps <= 0 || params.delta <= 0 || params.delta >= 1) {
    std::fprintf(stderr, "need eps > 0 and delta in (0, 1)\n");
    return 2;
  }
  params.binary_search = true;  // ApproxMC2-style level search

  const std::string text = ReadFile(argv[1]);
  // Dispatch on the problem line.
  const bool is_dnf = text.find("p dnf") != std::string::npos;
  std::printf("file: %s  (eps=%.2f delta=%.2f seed=%llu)\n", argv[1],
              params.eps, params.delta,
              static_cast<unsigned long long>(params.seed));
  if (is_dnf) {
    const auto parsed = ParseDimacsDnf(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Dnf& dnf = parsed.value();
    std::printf("DNF: %d vars, %d terms\n", dnf.num_vars(), dnf.num_terms());
    std::printf("ApproxMC (Bucketing) : %.6g\n",
                ApproxMcDnf(dnf, params).estimate);
    std::printf("CountMin (Minimum)   : %.6g\n",
                ApproxCountMinDnf(dnf, params).estimate);
    std::printf("CountEst (Estimation): %.6g\n",
                ApproxCountEstAutoDnf(dnf, params).estimate);
  } else {
    const auto parsed = ParseDimacsCnf(text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const Cnf& cnf = parsed.value();
    std::printf("CNF: %d vars, %d clauses\n", cnf.num_vars(),
                cnf.num_clauses());
    const CountResult mc = ApproxMcCnf(cnf, params);
    std::printf("ApproxMC (Bucketing) : %.6g   [%llu oracle calls]\n",
                mc.estimate,
                static_cast<unsigned long long>(mc.oracle_calls));
    const CountResult min = ApproxCountMinCnf(cnf, params);
    std::printf("CountMin (Minimum)   : %.6g   [%llu oracle calls]\n",
                min.estimate,
                static_cast<unsigned long long>(min.oracle_calls));
  }
  return 0;
}
