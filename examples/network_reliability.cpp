// Network reliability via weighted #DNF — the probabilistic-database /
// provenance workload that motivates the paper's interest in #DNF (§1, §4).
//
// A small backbone network has links that fail independently; the network
// is DOWN if any source-to-sink cut is fully failed. "Some cut fails" is
// naturally a DNF over link-failure indicator variables (one term per
// minimal cut), and the failure probability is the weighted model count
// W(phi) with rho(x_e) = P[link e fails].
//
// The example computes the failure probability three ways:
//   1. exact weighted enumeration (ground truth at this size),
//   2. the paper's §5 reduction: weighted #DNF -> F0 of a stream of
//      multidimensional ranges, estimated with StructuredF0,
//   3. Monte Carlo (Karp-Luby on the unweighted expansion is not directly
//      applicable to weights; we use naive sampling as a sanity baseline).
//
// Build & run:  ./build/examples/network_reliability
#include <cmath>
#include <cstdio>

#include "common/rng.hpp"
#include "setstream/weighted_dnf.hpp"

int main() {
  using namespace mcf0;

  // Topology: source S, sink T, and a middle layer; 8 links x0..x7.
  //   S --x0--> A, S --x1--> B
  //   A --x2--> C, A --x3--> D, B --x4--> C, B --x5--> D
  //   C --x6--> T, D --x7--> T
  // Minimal cuts (every S-T path crosses them):
  //   {x0, x1}, {x6, x7}, {x0, x4, x5}, {x1, x2, x3},
  //   {x2, x4, x6} is NOT a cut of this DAG; we enumerate the simple ones
  //   below. Variable x_e = 1 means "link e failed".
  Dnf down(8);
  auto cut = [&](std::vector<int> links) {
    std::vector<Lit> lits;
    for (int e : links) lits.emplace_back(e, false);
    down.AddTerm(*Term::Make(std::move(lits)));
  };
  cut({0, 1});        // both links out of S
  cut({6, 7});        // both links into T
  cut({0, 4, 5});     // S->A dead and B cannot reach C or D
  cut({1, 2, 3});     // S->B dead and A cannot reach C or D
  cut({2, 4, 6});     // C unreachable and D->T alone cannot... (C side cut)
  cut({3, 5, 7});     // D side cut
  // (Terms may overlap or be non-minimal; weighted counting handles both.)

  // Per-link failure probabilities as dyadic rationals k / 2^m.
  const std::vector<VarWeight> rho = {
      {1, 3},  // x0: 1/8
      {1, 3},  // x1: 1/8
      {1, 2},  // x2: 1/4
      {1, 2},  // x3: 1/4
      {1, 2},  // x4: 1/4
      {1, 2},  // x5: 1/4
      {1, 3},  // x6: 1/8
      {1, 3},  // x7: 1/8
  };

  std::printf("Network DOWN condition: %d cut-terms over %d links\n",
              down.num_terms(), down.num_vars());

  // 1. Exact weighted count.
  const double exact = ExactWeightedDnf(down, rho);
  std::printf("exact failure probability      : %.6f\n", exact);

  // 2. Weighted #DNF via the range-stream reduction (§5).
  StructuredF0Params params;
  params.eps = 0.4;
  params.delta = 0.2;
  params.rows_override = 35;
  params.seed = 2026;
  const double via_ranges = WeightedDnfViaRanges(down, rho, params);
  std::printf("hashing estimate (range F0)    : %.6f  (%.1f%% error)\n",
              via_ranges, 100.0 * std::abs(via_ranges - exact) / exact);

  // 3. Naive Monte Carlo baseline.
  Rng rng(7);
  const int samples = 200000;
  int down_count = 0;
  for (int s = 0; s < samples; ++s) {
    BitVec x(8);
    for (int e = 0; e < 8; ++e) {
      const double p =
          static_cast<double>(rho[e].k) / static_cast<double>(1u << rho[e].m);
      if (rng.NextBernoulli(p)) x.Set(e, true);
    }
    if (down.Eval(x)) ++down_count;
  }
  const double mc = static_cast<double>(down_count) / samples;
  std::printf("naive Monte Carlo (%d samples): %.6f  (%.1f%% error)\n",
              samples, mc, 100.0 * std::abs(mc - exact) / exact);
  return 0;
}
