// mcf0 — unified command-line driver for the Model-Counting-meets-F0
// library. One binary, four subcommands, JSON results on stdout:
//
//   mcf0 f0     [opts] <elements.txt|->   classic F0 estimation (§3) over a
//                                         whitespace-separated u64 stream
//   mcf0 count  [opts] <file.cnf|.dnf>    approximate model counting via the
//                                         streaming-to-counting recipe (§3)
//   mcf0 dnf    [opts] <file.dnf>         distributed DNF counting (§4) with
//                                         the communication ledger
//   mcf0 stream [opts] <file.dnf>         structured set streaming (§5):
//                                         each DNF term is one stream item
//   mcf0 sketch build|merge|query         durable F0 sketches: build from a
//                                         stream (optionally sharded across
//                                         threads), merge sketch files,
//                                         query an estimate — map-reduce F0
//                                         over file shards from the shell
//   mcf0 serve  [opts]                    networked sketch service: remote
//                                         push clients stream into one
//                                         sharded engine (docs/serve.md)
//   mcf0 push   [opts] <input|->          stream a local input into a
//                                         running serve instance
//
// Common options: --eps E --delta D --seed S --algo NAME. Run with no
// arguments (or `mcf0 help`) for the full reference. Exit codes: 0 ok,
// 1 runtime/parse failure, 2 usage error.
#include <atomic>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include <csignal>

#include <unistd.h>

#include "cli_flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/version.hpp"
#include "core/approx_count_est.hpp"
#include "core/approx_count_min.hpp"
#include "core/approxmc.hpp"
#include "core/counting.hpp"
#include "core/karp_luby.hpp"
#include "distributed/distributed_dnf.hpp"
#include "engine/sharded_engine.hpp"
#include "engine/sketch_codec.hpp"
#include "engine/sketch_merge.hpp"
#include "engine/sketch_reader.hpp"
#include "formula/dimacs.hpp"
#include "formula/formula.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

constexpr const char kUsage[] = R"(mcf0 — model counting meets F0 estimation

usage: mcf0 <subcommand> [options] <input-file|->

subcommands:
  f0      estimate the number of distinct elements in a stream of 64-bit
          integers (whitespace-separated; `-` reads stdin)
  count   (eps, delta)-approximate the model count of a DIMACS CNF
          (`p cnf`) or DNF (`p dnf`) file
  dnf     distributed DNF counting: partition the terms across k sites and
          report the estimate plus bits communicated
  stream  structured set streaming: feed each DNF term as one set item and
          estimate the F0 of the union
  sketch  durable F0 sketches (binary .mcf0 files; see docs/wire_format.md):
            sketch build [opts] --out F <input|->          stream -> sketch
            sketch merge --out F <a.mcf0> <b.mcf0> [...]   union of sketches
            sketch query <a.mcf0>                          estimate + params
          build reads raw u64 element streams by default; --input dnf
          treats each term of a DIMACS DNF file as one structured set
          item (§5), --input range reads `p range <dims> <bits>` headers
          with one multidimensional range per line, --input affine reads
          `a <n> <rank>` item headers followed by <rank> 0/1 matrix rows
          and one rank-bit offset row (Theorem 7) — all persist a
          StructuredF0 sketch that merges and queries exactly like a raw
          one. every input kind ingests across --shards worker threads
          fed by --producers threads (raw items are sharded by element,
          structured ones by item; the sketch is byte-identical however
          ingestion is parallelized). merge streams its inputs row by row
          (a SketchReader cursor per file), so decoded sketch state stays
          bounded by one row no matter how many shard files are merged
          (the raw bytes of each input file are still buffered); a bad
          shard is reported by file name in that same single pass
  serve   run a sketch service on TCP (docs/serve.md): remote `mcf0 push`
          clients stream items into one sharded engine over the v2 frame
          protocol, with credit-based flow control and live estimate /
          sketch queries. SIGTERM (or SIGINT) drains gracefully: every
          session is flushed, and the final merged sketch is written to
          --out. prints one JSON object at startup (with the bound port
          and pid) and one when the drain completes
  push    stream a local input file into a running serve instance; the
          input syntax per --input kind is exactly `sketch build`'s
  help    print this message

common options:
  --eps E       relative accuracy, E >= 1e-6        (default 0.8)
  --delta D     failure probability, 0 < D < 1      (default 0.2)
  --seed S      PRNG seed                           (default 1)
  --algo NAME   algorithm; per subcommand:
                  f0:     minimum | bucketing | estimation
                  count:  approxmc | countmin | countest | karp-luby
                  dnf:    minimum | bucketing | estimation
                  stream: minimum | bucketing
                  sketch build: minimum | bucketing | estimation

subcommand options:
  f0      --n BITS        universe is {0,1}^BITS, BITS <= 64  (default 32)
  count   --binary-search ApproxMC2-style level search (CNF)
          --tseitin       Tseitin-encode XOR constraints (CNF)
  dnf     --sites K       number of sites                     (default 4)
  sketch  --out FILE      output sketch file (build, merge)
          --input KIND    build input: raw | dnf | range | affine
                          (default raw; dnf/range/affine build structured
                          §5 sketches — v2-only, --algo minimum | bucketing)
          --shards N      build: ingest across N worker threads (default 1)
          --producers P   build: feed the shards from P producer threads
                          (default 1; P > 1 buffers the parsed stream to
                          split it across producers)
          --format V      wire format to write: v1 | v2      (default v2;
                          both versions are always readable)
  serve   --host A        listen address (IPv4 or localhost) (default 127.0.0.1)
          --port P        listen port; 0 picks an ephemeral one (default 0)
          --input KIND    raw serves u64 element sessions; dnf | range |
                          affine all serve structured §5 sessions (one
                          engine; clients choose the item syntax)
          --n BITS        universe width; raw caps at 64, structured
                          sessions need the width the inputs were written
                          for                                (default 32)
          --shards N      engine worker threads               (default 1)
          --credit-window B  batches a client may have in flight
                                                             (default 8)
          --batch-items N max items per pushed batch frame   (default 4096)
          --drain-timeout-ms T  grace period before a drain force-closes
                          unresponsive clients               (default 30000)
          --metrics-interval-ms T  emit one JSON metrics line (the full
                          telemetry registry snapshot; see
                          docs/observability.md) to stderr every T ms
                          (default 0 = off)
          --out FILE      final merged sketch file written on drain
  push    --host A --port P  the serve instance to dial (--port required)
          --input KIND    raw | dnf | range | affine file syntax, exactly
                          as `sketch build` reads them        (default raw)
          --query [WHAT]  also query the server after pushing: estimate
                          (the default; the live server-wide estimate,
                          racing other producers) or stats (the server
                          metrics snapshot — protocol rev 2 servers)
          --timeout-ms T  bound on each wait for a server frame
                                                             (default 30000)

All results are a single JSON object on stdout. A sketch built on one
shard of a stream merges losslessly with sketches of the other shards as
long as every build used the same --n/--eps/--delta/--seed/--algo (and
the same --input kind); v1- and v2-encoded raw sketch files mix freely
in one merge.
)";

struct CommonOptions {
  double eps = 0.8;
  double delta = 0.2;
  uint64_t seed = 1;
  std::string algo;
  int n = 32;
  int sites = 4;
  int shards = 1;
  int producers = 1;
  bool binary_search = false;
  bool tseitin = false;
  std::string out;
  std::string input_kind = "raw";  // sketch build: raw | dnf | range | affine
  uint16_t format = SketchCodec::kDefaultFormatVersion;
  // serve / push (the networked service; docs/serve.md).
  std::string host = "127.0.0.1";
  int port = 0;
  int credit_window = 8;
  int batch_items = 4096;
  int drain_timeout_ms = 30'000;
  int metrics_interval_ms = 0;
  int timeout_ms = 30'000;
  std::string query;  // "" = no post-push query; "estimate" | "stats"
  std::vector<std::string> inputs;
};

using cli::Fail;
using cli::ParseInt;

// Parses flags; everything after them is the input path.
CommonOptions ParseOptions(int argc, char** argv) {
  CommonOptions opts;
  cli::FlagParser flags;
  flags.Double("--eps", &opts.eps);
  flags.Double("--delta", &opts.delta);
  flags.U64("--seed", &opts.seed);
  flags.String("--algo", &opts.algo);
  flags.Int("--n", &opts.n);
  flags.Int("--sites", &opts.sites);
  flags.Int("--shards", &opts.shards);
  flags.Int("--producers", &opts.producers);
  flags.String("--out", &opts.out);
  flags.Alias("-o", "--out");
  flags.Enum("--input", &opts.input_kind, "raw, dnf, range, or affine",
             {"raw", "dnf", "range", "affine"});
  flags.Custom("--format", [&opts](const std::string& format) {
    if (format == "v1" || format == "1") {
      opts.format = SketchCodec::kFormatV1;
    } else if (format == "v2" || format == "2") {
      opts.format = SketchCodec::kFormatV2;
    } else {
      Fail("--format must be v1 or v2, got '" + format + "'", 2);
    }
  });
  flags.Bool("--binary-search", &opts.binary_search);
  flags.Bool("--tseitin", &opts.tseitin);
  flags.String("--host", &opts.host);
  flags.Int("--port", &opts.port);
  flags.Int("--credit-window", &opts.credit_window);
  flags.Int("--batch-items", &opts.batch_items);
  flags.Int("--drain-timeout-ms", &opts.drain_timeout_ms);
  flags.Int("--metrics-interval-ms", &opts.metrics_interval_ms);
  flags.Int("--timeout-ms", &opts.timeout_ms);
  // Bare --query keeps its historical meaning (estimate); the optional
  // value never swallows a positional input path.
  flags.OptionalEnum("--query", &opts.query, "estimate",
                     {"estimate", "stats"});
  flags.Parse(argc, argv, &opts.inputs);
  // The lower bound keeps the Thresh = 96/eps^2 formula inside uint64
  // (library CHECKs would abort otherwise); no real run wants eps there.
  // isfinite + negated comparisons make NaN and inf usage errors too.
  if (!std::isfinite(opts.eps) || opts.eps < 1e-6) {
    Fail("--eps must be a finite number >= 1e-6", 2);
  }
  if (!(opts.delta > 0 && opts.delta < 1)) {
    Fail("--delta must be in (0, 1)", 2);
  }
  return opts;
}

/// The one input path of the single-input subcommands.
const std::string& SingleInput(const CommonOptions& opts) {
  if (opts.inputs.empty()) Fail("missing input file (use `-` for stdin)", 2);
  if (opts.inputs.size() > 1) {
    Fail("unexpected extra argument " + opts.inputs[1], 2);
  }
  return opts.inputs[0];
}

std::string ReadInput(const std::string& path) {
  std::ostringstream buffer;
  if (path == "-") {
    buffer << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) Fail("cannot open " + path);
    buffer << in.rdbuf();
  }
  return buffer.str();
}

/// Streams whitespace-separated u64 elements from `path` ("-" = stdin)
/// into `sink` one value at a time — constant memory regardless of stream
/// length, unlike ReadInput's whole-file slurp. Returns the element count.
template <typename Sink>
uint64_t StreamElements(const std::string& path, Sink&& sink) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) Fail("cannot open " + path);
    in = &file;
  }
  uint64_t element = 0;
  uint64_t count = 0;
  while (*in >> element) {
    sink(element);
    ++count;
  }
  if (!in->eof()) Fail("input is not a whitespace-separated u64 list");
  return count;
}

std::string ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Fail("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteBinaryFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) Fail("cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) Fail("failed writing " + path);
}

// Minimal JSON emitter: flat object of key/value pairs, insertion order.
class JsonObject {
 public:
  void Add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": \"" + Escape(value) + "\"");
  }
  void Add(const std::string& key, double value) {
    if (!std::isfinite(value)) {  // JSON has no nan/inf literal
      fields_.push_back("\"" + key + "\": null");
      return;
    }
    // Shortest decimal form that round-trips to the same double.
    char buffer[64];
    for (int precision = 1; precision <= 17; ++precision) {
      std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
      if (std::strtod(buffer, nullptr) == value) break;
    }
    fields_.push_back("\"" + key + "\": " + buffer);
  }
  void Add(const std::string& key, uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
    fields_.push_back("\"" + key + "\": " + buffer);
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<uint64_t>(value));
  }
  /// `value` is spliced in verbatim — for pre-rendered nested JSON
  /// (the caller owns its well-formedness).
  void AddRaw(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": " + value);
  }

  static std::string Escape(const std::string& raw);

  void Print() const {
    std::printf("{");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::printf("%s\n  %s", i == 0 ? "" : ",", fields_[i].c_str());
    }
    std::printf("\n}\n");
  }

 private:
  std::vector<std::string> fields_;
};

std::string JsonObject::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Every result object leads with the command plus build provenance, so
/// saved JSON is traceable to the binary that produced it.
JsonObject NewJson(const std::string& command) {
  JsonObject json;
  json.Add("command", command);
  json.Add("version", std::string(kVersionString));
  json.Add("git_sha", std::string(kGitSha));
  return json;
}

Dnf ParseDnfOrDie(const std::string& text) {
  auto parsed = ParseDimacsDnf(text);
  if (!parsed.ok()) Fail("parse error: " + parsed.status().ToString());
  Dnf dnf = std::move(parsed).value();
  if (dnf.num_vars() < 1) Fail("formula must have at least one variable");
  return dnf;
}

// True iff the first non-comment problem line is a `p dnf` header
// (comments may mention either format, so only the header counts; token
// comparison tolerates arbitrary whitespace like the DIMACS parsers do).
bool LooksLikeDnf(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first) || first == "c") continue;
    std::string kind;
    return first == "p" && (tokens >> kind) && kind == "dnf";
  }
  return false;
}

// ---------------------------------------------------------------------------
// mcf0 f0
// ---------------------------------------------------------------------------

const char* F0AlgorithmName(F0Algorithm algorithm) {
  switch (algorithm) {
    case F0Algorithm::kBucketing: return "bucketing";
    case F0Algorithm::kMinimum: return "minimum";
    case F0Algorithm::kEstimation: return "estimation";
  }
  return "?";
}

/// Shared by `f0` and `sketch build`: flags -> sketch parameters.
F0Params F0ParamsFromOptions(const CommonOptions& opts, const char* cmd) {
  F0Params params;
  params.n = opts.n;
  params.eps = opts.eps;
  params.delta = opts.delta;
  params.seed = opts.seed;
  const std::string algo = opts.algo.empty() ? "minimum" : opts.algo;
  if (algo == "minimum") {
    params.algorithm = F0Algorithm::kMinimum;
  } else if (algo == "bucketing") {
    params.algorithm = F0Algorithm::kBucketing;
  } else if (algo == "estimation") {
    params.algorithm = F0Algorithm::kEstimation;
  } else {
    Fail(std::string(cmd) + ": unknown --algo " + algo +
             " (want minimum | bucketing | estimation)",
         2);
  }
  if (params.n < 1 || params.n > 64) Fail("--n must be in [1, 64]", 2);
  return params;
}

int RunF0(const CommonOptions& opts) {
  const F0Params params = F0ParamsFromOptions(opts, "f0");
  const std::string algo = F0AlgorithmName(params.algorithm);

  WallTimer timer;
  F0Estimator estimator(params);
  // Incremental ingestion: sketch space is O(polylog), so the stream must
  // never be buffered whole.
  const uint64_t elements = StreamElements(
      SingleInput(opts), [&](uint64_t x) { estimator.Add(x); });

  JsonObject json = NewJson("f0");
  json.Add("algorithm", algo);
  json.Add("n", params.n);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);
  json.Add("elements", elements);
  json.Add("rows", F0Rows(params));
  json.Add("thresh", F0Thresh(params));
  json.Add("estimate", estimator.Estimate());
  json.Add("space_bits", static_cast<uint64_t>(estimator.SpaceBits()));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

// ---------------------------------------------------------------------------
// mcf0 count
// ---------------------------------------------------------------------------

int RunCount(const CommonOptions& opts) {
  CountingParams params;
  params.eps = opts.eps;
  params.delta = opts.delta;
  params.seed = opts.seed;
  params.binary_search = opts.binary_search;
  params.use_tseitin = opts.tseitin;
  const std::string algo = opts.algo.empty() ? "approxmc" : opts.algo;

  const std::string text = ReadInput(SingleInput(opts));
  const bool is_dnf = LooksLikeDnf(text);

  JsonObject json = NewJson("count");
  json.Add("input", SingleInput(opts));
  json.Add("format", std::string(is_dnf ? "dnf" : "cnf"));
  json.Add("algorithm", algo);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);

  WallTimer timer;
  CountResult result;
  if (is_dnf) {
    const Dnf dnf = ParseDnfOrDie(text);
    json.Add("num_vars", dnf.num_vars());
    json.Add("num_terms", dnf.num_terms());
    if (algo == "approxmc") {
      result = ApproxMcDnf(dnf, params);
    } else if (algo == "countmin") {
      result = ApproxCountMinDnf(dnf, params);
    } else if (algo == "countest") {
      result = ApproxCountEstAutoDnf(dnf, params);
    } else if (algo == "karp-luby") {
      Rng rng(params.seed);
      const KarpLubyResult kl =
          KarpLubyStopping(dnf, params.eps, params.delta, rng);
      result.estimate = kl.estimate;
      result.oracle_calls = 0;
      json.Add("samples", kl.samples);
    } else {
      Fail("count: unknown --algo " + algo +
               " (want approxmc | countmin | countest | karp-luby)",
           2);
    }
  } else {
    auto parsed = ParseDimacsCnf(text);
    if (!parsed.ok()) Fail("parse error: " + parsed.status().ToString());
    const Cnf& cnf = parsed.value();
    if (cnf.num_vars() < 1) Fail("formula must have at least one variable");
    json.Add("num_vars", cnf.num_vars());
    json.Add("num_clauses", cnf.num_clauses());
    if (algo == "approxmc") {
      result = ApproxMcCnf(cnf, params);
    } else if (algo == "countmin") {
      result = ApproxCountMinCnf(cnf, params);
    } else if (algo == "countest") {
      result = ApproxCountEstAutoCnf(cnf, params);
    } else {
      Fail("count: unknown --algo " + algo +
               " for CNF (want approxmc | countmin | countest)",
           2);
    }
  }

  json.Add("estimate", result.estimate);
  json.Add("oracle_calls", result.oracle_calls);
  if (result.rows > 0) json.Add("rows", result.rows);
  if (result.thresh > 0) json.Add("thresh", result.thresh);
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

// ---------------------------------------------------------------------------
// mcf0 dnf  (distributed, §4)
// ---------------------------------------------------------------------------

int RunDnf(const CommonOptions& opts) {
  DistributedParams params;
  params.eps = opts.eps;
  params.delta = opts.delta;
  params.seed = opts.seed;
  if (opts.sites < 1) Fail("--sites must be >= 1", 2);

  const Dnf dnf = ParseDnfOrDie(ReadInput(SingleInput(opts)));
  const std::vector<Dnf> sites = PartitionDnf(dnf, opts.sites);

  const std::string algo = opts.algo.empty() ? "minimum" : opts.algo;
  WallTimer timer;
  DistributedResult result;
  if (algo == "minimum") {
    result = DistributedMinimumDnf(sites, params);
  } else if (algo == "bucketing") {
    result = DistributedBucketingDnf(sites, params);
  } else if (algo == "estimation") {
    result = DistributedEstimationDnf(sites, params);
  } else {
    Fail("dnf: unknown --algo " + algo +
             " (want minimum | bucketing | estimation)",
         2);
  }

  JsonObject json = NewJson("dnf");
  json.Add("input", SingleInput(opts));
  json.Add("algorithm", algo);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);
  json.Add("num_vars", dnf.num_vars());
  json.Add("num_terms", dnf.num_terms());
  json.Add("sites", opts.sites);
  json.Add("estimate", result.estimate);
  json.Add("rows", result.rows);
  json.Add("thresh", result.thresh);
  json.Add("bits_to_sites", result.comm.bits_to_sites);
  json.Add("bits_from_sites", result.comm.bits_from_sites);
  json.Add("total_bits", result.comm.total_bits());
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

// ---------------------------------------------------------------------------
// mcf0 stream  (structured sets, §5)
// ---------------------------------------------------------------------------

int RunStream(const CommonOptions& opts) {
  const Dnf dnf = ParseDnfOrDie(ReadInput(SingleInput(opts)));

  StructuredF0Params params;
  params.n = dnf.num_vars();
  params.eps = opts.eps;
  params.delta = opts.delta;
  params.seed = opts.seed;
  const std::string algo = opts.algo.empty() ? "minimum" : opts.algo;
  if (algo == "minimum") {
    params.algorithm = StructuredF0Algorithm::kMinimum;
  } else if (algo == "bucketing") {
    params.algorithm = StructuredF0Algorithm::kBucketing;
  } else {
    Fail("stream: unknown --algo " + algo + " (want minimum | bucketing)", 2);
  }

  WallTimer timer;
  StructuredF0 estimator(params);
  // Each term is one structured-set stream item (a width-w cube).
  for (const Term& term : dnf.terms()) {
    estimator.AddTerms({term});
  }

  JsonObject json = NewJson("stream");
  json.Add("input", SingleInput(opts));
  json.Add("algorithm", algo);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);
  json.Add("n", params.n);
  json.Add("items", dnf.num_terms());
  json.Add("estimate", estimator.Estimate());
  json.Add("oracle_calls", estimator.oracle_calls());
  json.Add("space_bits", static_cast<uint64_t>(estimator.SpaceBits()));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

// ---------------------------------------------------------------------------
// mcf0 sketch  (engine: durable, mergeable, parallel-friendly sketches)
// ---------------------------------------------------------------------------

/// Echoes the parameters a sketch was built from; shared by the three
/// sketch actions so their JSON shapes line up.
void AddSketchParams(JsonObject& json, const F0Params& params) {
  json.Add("algorithm", std::string(F0AlgorithmName(params.algorithm)));
  json.Add("n", params.n);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);
  json.Add("rows", F0Rows(params));
  json.Add("thresh", F0Thresh(params));
}

void AddStructuredSketchParams(JsonObject& json,
                               const StructuredF0Params& params) {
  json.Add("algorithm",
           std::string(params.algorithm == StructuredF0Algorithm::kMinimum
                           ? "minimum"
                           : "bucketing"));
  json.Add("n", params.n);
  json.Add("eps", params.eps);
  json.Add("delta", params.delta);
  json.Add("seed", params.seed);
  json.Add("rows", StructuredF0Rows(params));
  json.Add("thresh", StructuredF0Thresh(params));
}

/// Echoes whichever kind the unified handle holds (plus the "kind" field
/// the query/merge consumers branch on).
void AddVariantParams(JsonObject& json, const SketchVariant& sketch) {
  json.Add("kind",
           std::string(sketch.structured() ? "structured" : "raw"));
  if (sketch.structured()) {
    AddStructuredSketchParams(json, sketch.structured_sketch().params());
  } else {
    AddSketchParams(json, sketch.raw().params());
  }
}

/// Flags -> structured sketch parameters; `n` comes from the input
/// (DNF variable count / range dimensions), not --n.
StructuredF0Params StructuredParamsFromOptions(const CommonOptions& opts,
                                               int n, const char* cmd) {
  StructuredF0Params params;
  params.n = n;
  params.eps = opts.eps;
  params.delta = opts.delta;
  params.seed = opts.seed;
  const std::string algo = opts.algo.empty() ? "minimum" : opts.algo;
  if (algo == "minimum") {
    params.algorithm = StructuredF0Algorithm::kMinimum;
  } else if (algo == "bucketing") {
    params.algorithm = StructuredF0Algorithm::kBucketing;
  } else {
    Fail(std::string(cmd) + ": unknown --algo " + algo +
             " for structured input (want minimum | bucketing)",
         2);
  }
  return params;
}

/// `--input range` text format: comment lines (`c ...`), one
/// `p range <dims> <bits_per_dim>` header, then one range item per line
/// as `lo hi` pairs, one pair per dimension (inclusive bounds, each
/// within [0, 2^bits)).
std::vector<MultiDimRange> ParseRangeFileOrDie(const std::string& text,
                                               int* dims_out, int* bits_out) {
  std::istringstream lines(text);
  std::string line;
  int dims = 0;
  int bits = 0;
  bool have_header = false;
  std::vector<MultiDimRange> items;
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string first;
    if (!(tokens >> first) || first == "c") continue;
    if (!have_header) {
      std::string kind;
      if (first != "p" || !(tokens >> kind) || kind != "range" ||
          !(tokens >> dims >> bits) || dims < 1 || bits < 1 || bits > 64) {
        Fail("range input needs a `p range <dims> <bits>` header line");
      }
      // Bound before multiplying: a huge claimed dims must not overflow
      // the int product (UB) on its way to this check.
      if (static_cast<int64_t>(dims) * bits > 4096) {
        Fail("range universe exceeds 4096 total bits");
      }
      have_header = true;
      continue;
    }
    MultiDimRange range(dims, bits);
    std::istringstream row(line);
    const uint64_t max = bits == 64 ? ~0ull : ((1ull << bits) - 1);
    for (int j = 0; j < dims; ++j) {
      uint64_t lo = 0;
      uint64_t hi = 0;
      if (!(row >> lo >> hi)) {
        Fail("range line needs one `lo hi` pair per dimension");
      }
      if (lo > hi || hi > max) {
        Fail("range bounds out of order or outside the dimension domain");
      }
      range.SetDim(j, DimRange{lo, hi, 0});
    }
    std::string extra;
    if (row >> extra) Fail("trailing tokens on range line");
    items.push_back(std::move(range));
  }
  if (!have_header) {
    Fail("range input needs a `p range <dims> <bits>` header line");
  }
  *dims_out = dims;
  *bits_out = bits;
  return items;
}

/// `--input affine` text format (Theorem 7): comment lines (`c ...`),
/// then one item per block —
///   a <n> <rank>
///   <rank> lines of n '0'/'1' characters (the rows of A)
///   one line of <rank> '0'/'1' characters (the offset b)
/// Each item is the affine space {x in {0,1}^n : A x = b}. All items
/// must agree on n.
std::vector<StructuredItem> ParseAffineFileOrDie(const std::string& text,
                                                 int* n_out) {
  std::istringstream lines(text);
  std::string line;
  auto next_line = [&](std::string* out) -> bool {
    while (std::getline(lines, line)) {
      std::istringstream tokens(line);
      std::string first;
      if (!(tokens >> first) || first == "c") continue;
      *out = line;
      return true;
    }
    return false;
  };
  auto read_bits = [&](int want, const char* what) -> BitVec {
    std::string row;
    if (!next_line(&row)) {
      Fail(std::string("affine item ends before its ") + what);
    }
    std::istringstream tokens(row);
    std::string bits;
    std::string extra;
    if (!(tokens >> bits) || (tokens >> extra) ||
        static_cast<int>(bits.size()) != want ||
        bits.find_first_not_of("01") != std::string::npos) {
      Fail(std::string("affine ") + what + " must be exactly " +
           std::to_string(want) + " '0'/'1' characters");
    }
    return BitVec::FromString(bits);
  };
  int n = 0;
  std::vector<StructuredItem> items;
  std::string header;
  while (next_line(&header)) {
    std::istringstream tokens(header);
    std::string kind;
    int item_n = 0;
    int rank = 0;
    std::string extra;
    if (!(tokens >> kind) || kind != "a" || !(tokens >> item_n >> rank) ||
        (tokens >> extra) || item_n < 1 || rank < 1 || rank > item_n) {
      Fail("affine input needs `a <n> <rank>` item headers with "
           "1 <= rank <= n");
    }
    // Same universe cap as ranges: the structured codec replays hashes
    // only up to 4096-bit universes.
    if (item_n > 4096) Fail("affine universe exceeds 4096 bits");
    if (n == 0) {
      n = item_n;
    } else if (item_n != n) {
      Fail("all affine items must share one universe width n");
    }
    Gf2Matrix a(rank, n);
    for (int r = 0; r < rank; ++r) {
      const BitVec row = read_bits(n, "matrix row");
      for (int j = 0; j < n; ++j) a.Set(r, j, row.Get(j));
    }
    BitVec b = read_bits(rank, "offset row");
    items.push_back(AffineSpaceItem{std::move(a), std::move(b)});
  }
  if (items.empty()) {
    Fail("affine input needs at least one `a <n> <rank>` item");
  }
  *n_out = n;
  return items;
}

/// Spreads `items` across `producers` threads, each feeding the engine
/// through its own Producer handle (round-robin split — the merged
/// sketch is partition-independent, so any split works). Items are
/// moved into the engine.
template <typename Engine, typename Item>
void IngestAcrossProducers(Engine& engine, std::vector<Item>& items,
                           int producers) {
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&engine, &items, p, producers] {
      auto producer = engine.MakeProducer();
      for (size_t i = p; i < items.size(); i += producers) {
        producer.Add(std::move(items[i]));
      }
      producer.Flush();
    });
  }
  for (auto& thread : threads) thread.join();
}

/// The structured build paths (`--input dnf | range | affine`): every
/// item is one §5 set, the sketch is a StructuredF0, and the file a v2
/// structured frame — the same durable object `sketch merge|query` then
/// treat uniformly with raw sketches. Sharded/multi-producer ingestion
/// goes through ShardedStructuredEngine, whose merged sketch is
/// byte-identical to the single-pass one.
int RunSketchBuildStructured(const CommonOptions& opts,
                             const std::string& input) {
  if (opts.format != SketchCodec::kFormatV2) {
    Fail("structured sketches (--input dnf|range|affine) require --format v2",
         2);
  }
  WallTimer timer;
  // Inputs stay in their native parsed form; only the parallel path pays
  // for a StructuredItem buffer (it must split items across producers).
  int n = 0;
  std::optional<Dnf> dnf;
  std::vector<MultiDimRange> ranges;
  std::vector<StructuredItem> affine_items;
  uint64_t num_items = 0;
  if (opts.input_kind == "dnf") {
    dnf.emplace(ParseDnfOrDie(ReadInput(input)));
    n = dnf->num_vars();
    num_items = dnf->num_terms();
  } else if (opts.input_kind == "range") {
    int dims = 0;
    int bits = 0;
    ranges = ParseRangeFileOrDie(ReadInput(input), &dims, &bits);
    n = dims * bits;
    num_items = ranges.size();
  } else {
    affine_items = ParseAffineFileOrDie(ReadInput(input), &n);
    num_items = affine_items.size();
  }
  const StructuredF0Params params =
      StructuredParamsFromOptions(opts, n, "sketch build");

  std::optional<StructuredF0> sketch;
  if (opts.shards == 1 && opts.producers == 1) {
    sketch.emplace(params);
    if (dnf.has_value()) {
      for (const Term& term : dnf->terms()) sketch->AddTerms({term});
    } else if (opts.input_kind == "range") {
      for (const MultiDimRange& range : ranges) sketch->AddRange(range);
    } else {
      for (const StructuredItem& item : affine_items) {
        AbsorbItem(*sketch, item);
      }
    }
  } else {
    std::vector<StructuredItem> items;
    items.reserve(num_items);
    if (dnf.has_value()) {
      for (const Term& term : dnf->terms()) {
        items.emplace_back(std::vector<Term>{term});
      }
    } else if (opts.input_kind == "range") {
      for (MultiDimRange& range : ranges) items.emplace_back(std::move(range));
    } else {
      items = std::move(affine_items);
    }
    ShardedStructuredEngine engine(params, opts.shards);
    IngestAcrossProducers(engine, items, opts.producers);
    sketch.emplace(engine.MergedSketch());
  }
  const std::string blob = SketchCodec::Encode(*sketch, opts.format);
  WriteBinaryFile(opts.out, blob);

  JsonObject json = NewJson("sketch");
  json.Add("action", std::string("build"));
  json.Add("input", input);
  json.Add("input_kind", opts.input_kind);
  json.Add("kind", std::string("structured"));
  json.Add("out", opts.out);
  json.Add("format", static_cast<int>(opts.format));
  AddStructuredSketchParams(json, sketch->params());
  json.Add("shards", opts.shards);
  json.Add("producers", opts.producers);
  json.Add("items", num_items);
  json.Add("estimate", sketch->Estimate());
  json.Add("space_bits", static_cast<uint64_t>(sketch->SpaceBits()));
  json.Add("file_bytes", static_cast<uint64_t>(blob.size()));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

int RunSketchBuild(const CommonOptions& opts) {
  if (opts.out.empty()) Fail("sketch build needs --out FILE", 2);
  // Each shard is a worker thread plus a full sketch replica, and each
  // producer is a feeder thread; cap both so a typo degrades to a usage
  // error, not an uncaught std::thread failure.
  if (opts.shards < 1 || opts.shards > 256) {
    Fail("--shards must be in [1, 256]", 2);
  }
  if (opts.producers < 1 || opts.producers > 256) {
    Fail("--producers must be in [1, 256]", 2);
  }
  const std::string& input = SingleInput(opts);
  if (opts.input_kind != "raw") return RunSketchBuildStructured(opts, input);
  const F0Params params = F0ParamsFromOptions(opts, "sketch build");

  WallTimer timer;
  uint64_t elements = 0;
  std::string blob;
  double estimate = 0.0;
  size_t space_bits = 0;
  if (opts.producers > 1) {
    // Multi-producer ingestion needs the stream split across feeder
    // threads, so this path (alone) buffers the parsed elements first.
    std::vector<uint64_t> xs;
    elements = StreamElements(input, [&](uint64_t x) { xs.push_back(x); });
    ShardedF0Engine engine(params, opts.shards);
    IngestAcrossProducers(engine, xs, opts.producers);
    const F0Estimator merged = engine.MergedSketch();
    estimate = merged.Estimate();
    space_bits = merged.SpaceBits();
    blob = SketchCodec::Encode(merged, opts.format);
  } else if (opts.shards > 1) {
    ShardedF0Engine engine(params, opts.shards);
    // Add() batches internally; MergedSketch() flushes the tail.
    elements = StreamElements(input, [&](uint64_t x) { engine.Add(x); });
    const F0Estimator merged = engine.MergedSketch();
    estimate = merged.Estimate();
    space_bits = merged.SpaceBits();
    blob = SketchCodec::Encode(merged, opts.format);
  } else {
    F0Estimator estimator(params);
    elements = StreamElements(input, [&](uint64_t x) { estimator.Add(x); });
    estimate = estimator.Estimate();
    space_bits = estimator.SpaceBits();
    blob = SketchCodec::Encode(estimator, opts.format);
  }
  WriteBinaryFile(opts.out, blob);

  JsonObject json = NewJson("sketch");
  json.Add("action", std::string("build"));
  json.Add("input", input);
  json.Add("input_kind", opts.input_kind);
  json.Add("kind", std::string("raw"));
  json.Add("out", opts.out);
  json.Add("format", static_cast<int>(opts.format));
  AddSketchParams(json, params);
  json.Add("shards", opts.shards);
  json.Add("producers", opts.producers);
  json.Add("elements", elements);
  json.Add("estimate", estimate);
  json.Add("space_bits", static_cast<uint64_t>(space_bits));
  json.Add("file_bytes", static_cast<uint64_t>(blob.size()));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

int RunSketchMerge(const CommonOptions& opts) {
  if (opts.out.empty()) Fail("sketch merge needs --out FILE", 2);
  if (opts.inputs.size() < 2) {
    Fail("sketch merge needs at least two sketch files", 2);
  }

  WallTimer timer;
  // Streaming reduce: the inputs are co-iterated row by row and each
  // merged row is written out immediately, so decoded sketch state never
  // exceeds one accumulator row plus one in-flight row — regardless of
  // how many shard files are being merged. (Raw file bytes are still
  // buffered; see ROADMAP for the mmap follow-on.) Input labels ride
  // through the engine, so a corrupt or mismatched shard is named in this
  // same single pass — no pre-open validation sweep, no double
  // checksumming.
  std::vector<std::string> blobs;
  blobs.reserve(opts.inputs.size());
  for (const std::string& path : opts.inputs) {
    blobs.push_back(ReadBinaryFile(path));
  }
  uint64_t file_bytes = 0;
  {
    std::ofstream out(opts.out, std::ios::binary | std::ios::trunc);
    if (!out) Fail("cannot write " + opts.out);
    std::vector<LabeledSource> sources;
    sources.reserve(blobs.size());
    for (size_t i = 0; i < blobs.size(); ++i) {
      sources.push_back(LabeledSource{opts.inputs[i], blobs[i]});
    }
    const Result<SketchStreamMergeStats> merged =
        MergeSketchStreams(sources, opts.format, out);
    if (!merged.ok()) {
      out.close();
      std::remove(opts.out.c_str());  // discard the partial frame
      Fail(merged.status().ToString());
    }
    out.close();
    if (!out) {
      std::remove(opts.out.c_str());  // discard the truncated frame
      Fail("failed writing " + opts.out);
    }
    file_bytes = merged.value().frame_bytes;
  }
  // Re-open the merged frame (one sketch, independent of input count)
  // for the estimate and parameter echo in the JSON result.
  const std::string merged_blob = ReadBinaryFile(opts.out);
  Result<SketchVariant> merged = SketchVariant::Decode(merged_blob);
  if (!merged.ok()) Fail(opts.out + ": " + merged.status().ToString());

  JsonObject json = NewJson("sketch");
  json.Add("action", std::string("merge"));
  json.Add("inputs", static_cast<uint64_t>(opts.inputs.size()));
  json.Add("out", opts.out);
  json.Add("format", static_cast<int>(opts.format));
  AddVariantParams(json, merged.value());
  json.Add("estimate", merged.value().Estimate());
  json.Add("space_bits", static_cast<uint64_t>(merged.value().SpaceBits()));
  json.Add("file_bytes", file_bytes);
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

int RunSketchQuery(const CommonOptions& opts) {
  WallTimer timer;
  const std::string blob = ReadBinaryFile(SingleInput(opts));
  Result<SketchVariant> decoded = SketchVariant::Decode(blob);
  if (!decoded.ok()) {
    Fail(SingleInput(opts) + ": " + decoded.status().ToString());
  }
  const SketchVariant& sketch = decoded.value();
  // O(1) header peek; the successful decode above already validated it.
  const int format = SketchCodec::PeekFormatVersion(blob).value();

  JsonObject json = NewJson("sketch");
  json.Add("action", std::string("query"));
  json.Add("input", SingleInput(opts));
  json.Add("format", format);
  AddVariantParams(json, sketch);
  json.Add("estimate", sketch.Estimate());
  json.Add("space_bits", static_cast<uint64_t>(sketch.SpaceBits()));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

int RunSketch(int argc, char** argv) {
  if (argc < 1) {
    Fail("sketch needs an action: build | merge | query", 2);
  }
  const std::string action = argv[0];
  const CommonOptions opts = ParseOptions(argc - 1, argv + 1);
  if (action == "build") return RunSketchBuild(opts);
  if (action == "merge") return RunSketchMerge(opts);
  if (action == "query") return RunSketchQuery(opts);
  Fail("sketch: unknown action '" + action + "' (want build | merge | query)",
       2);
  return 2;  // unreachable
}

// ---------------------------------------------------------------------------
// mcf0 serve / push  (the networked sketch service; docs/serve.md)
// ---------------------------------------------------------------------------

// The signal handler's line to the serve loop. RequestDrain is
// async-signal-safe (an atomic flag plus a self-pipe write); the
// pointer itself is a lock-free atomic so the handler's read never
// races the main thread's set/reset around Run().
std::atomic<net::SketchServer*> g_serve_server{nullptr};

void HandleDrainSignal(int) {
  net::SketchServer* server = g_serve_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestDrain();
}

int RunServe(const CommonOptions& opts) {
  if (opts.shards < 1 || opts.shards > 256) {
    Fail("--shards must be in [1, 256]", 2);
  }
  if (opts.credit_window < 1) Fail("--credit-window must be >= 1", 2);
  if (opts.batch_items < 1 ||
      static_cast<uint64_t>(opts.batch_items) > net::kMaxBatchItemsLimit) {
    Fail("--batch-items out of range", 2);
  }
  if (!opts.inputs.empty()) {
    Fail("serve takes no input file (clients push the stream)", 2);
  }
  const bool structured = opts.input_kind != "raw";

  WallTimer timer;
  // Exactly one of the engines runs, picked by --input; both speak
  // through the same EngineBackend surface.
  std::optional<ShardedF0Engine> raw_engine;
  std::optional<ShardedStructuredEngine> structured_engine;
  std::unique_ptr<net::EngineBackend> backend;
  if (structured) {
    if (opts.n < 1 || opts.n > 4096) {
      Fail("--n must be in [1, 4096] for structured serving", 2);
    }
    const StructuredF0Params params =
        StructuredParamsFromOptions(opts, opts.n, "serve");
    structured_engine.emplace(params, opts.shards);
    backend = std::make_unique<net::StructuredEngineBackend>(
        &*structured_engine);
  } else {
    const F0Params params = F0ParamsFromOptions(opts, "serve");
    raw_engine.emplace(params, opts.shards);
    backend = std::make_unique<net::RawEngineBackend>(&*raw_engine);
  }

  net::ServerOptions server_options;
  server_options.host = opts.host;
  server_options.port = opts.port;
  server_options.credit_window = static_cast<uint64_t>(opts.credit_window);
  server_options.max_batch_items = static_cast<uint64_t>(opts.batch_items);
  server_options.drain_timeout_ms = opts.drain_timeout_ms;
  server_options.metrics_interval_ms = opts.metrics_interval_ms;
  net::SketchServer server(backend.get(), server_options);
  Status status = server.Start();
  if (!status.ok()) Fail("serve: " + status.ToString());

  g_serve_server.store(&server, std::memory_order_release);
  struct sigaction action{};
  action.sa_handler = HandleDrainSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  // Startup announcement: the bound port (ephemeral with --port 0) and
  // pid, so wrappers and tests can dial in and later signal the drain.
  {
    JsonObject json = NewJson("serve");
    json.Add("event", std::string("listening"));
    json.Add("host", opts.host);
    json.Add("port", server.port());
    json.Add("pid", static_cast<uint64_t>(::getpid()));
    json.Add("kind", std::string(structured ? "structured" : "raw"));
    json.Add("shards", opts.shards);
    json.Add("credit_window", opts.credit_window);
    json.Add("batch_items", opts.batch_items);
    json.Print();
    std::fflush(stdout);
  }

  status = server.Run();
  g_serve_server.store(nullptr, std::memory_order_release);
  if (!status.ok()) Fail("serve: " + status.ToString());

  uint64_t file_bytes = 0;
  if (!opts.out.empty()) {
    WriteBinaryFile(opts.out, server.final_sketch());
    file_bytes = server.final_sketch().size();
  }

  JsonObject json = NewJson("serve");
  json.Add("event", std::string("drained"));
  json.Add("kind", std::string(structured ? "structured" : "raw"));
  json.Add("connections", server.connections_served());
  json.Add("batches", server.batches_accepted());
  json.Add("items", server.items_accepted());
  // Final byte/error totals come from the same telemetry registry a
  // live kStatsQuery is answered from, so this drained summary and a
  // stats frame taken during the run can never disagree on what the
  // server counted (docs/observability.md).
  {
    obs::Registry& registry = obs::Registry::Global();
    json.Add("bytes_in",
             registry.GetCounter("mcf0_serve_bytes_in_total")->Value());
    json.Add("bytes_out",
             registry.GetCounter("mcf0_serve_bytes_out_total")->Value());
    uint64_t error_frames = 0;
    std::string errors = "{";
    for (int code = 0; code <= static_cast<int>(StatusCode::kDeadlineExceeded);
         ++code) {
      const char* name = StatusCodeName(static_cast<StatusCode>(code));
      const uint64_t count =
          registry
              .GetCounter("mcf0_serve_error_frames_total", {{"code", name}})
              ->Value();
      error_frames += count;
      if (count == 0) continue;  // only codes actually sent
      if (errors.size() > 1) errors += ", ";
      errors += "\"" + std::string(name) + "\": " + std::to_string(count);
    }
    errors += "}";
    json.Add("error_frames", error_frames);
    json.AddRaw("errors", errors);
  }
  json.Add("estimate", server.final_estimate());
  if (!opts.out.empty()) {
    json.Add("out", opts.out);
    json.Add("file_bytes", file_bytes);
  }
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

/// Dies with the mcf0 exit-code convention on a failed network call.
void CheckNet(const Status& status, const char* what) {
  if (!status.ok()) Fail(std::string(what) + ": " + status.ToString());
}

int RunPush(const CommonOptions& opts) {
  if (opts.port < 1) Fail("push needs --port (see `mcf0 serve`)", 2);
  const std::string& input = SingleInput(opts);
  const bool structured = opts.input_kind != "raw";

  net::ClientOptions client_options;
  client_options.host = opts.host;
  client_options.port = opts.port;
  client_options.recv_timeout_ms = opts.timeout_ms;
  WallTimer timer;
  Result<net::PushClient> connected = net::PushClient::Connect(
      structured ? net::StreamKind::kStructured : net::StreamKind::kRaw,
      client_options);
  if (!connected.ok()) Fail("push: " + connected.status().ToString());
  net::PushClient client = std::move(connected).value();

  uint64_t items = 0;
  if (!structured) {
    items = StreamElements(input, [&client](uint64_t x) {
      CheckNet(client.Push({&x, 1}), "push");
    });
  } else {
    // Same input syntax as `sketch build`, then one protocol item per
    // parsed set. The server validates widths too; checking against the
    // advertised parameters here just fails faster and clearer.
    const int server_n =
        std::get<StructuredF0Params>(client.welcome().params).n;
    std::vector<StructuredItem> parsed;
    if (opts.input_kind == "dnf") {
      const Dnf dnf = ParseDnfOrDie(ReadInput(input));
      if (dnf.num_vars() != server_n) {
        Fail("push: input has n=" + std::to_string(dnf.num_vars()) +
             " but the server streams n=" + std::to_string(server_n));
      }
      for (const Term& term : dnf.terms()) {
        parsed.emplace_back(std::vector<Term>{term});
      }
    } else if (opts.input_kind == "range") {
      int dims = 0;
      int bits = 0;
      std::vector<MultiDimRange> ranges =
          ParseRangeFileOrDie(ReadInput(input), &dims, &bits);
      if (dims * bits != server_n) {
        Fail("push: input has n=" + std::to_string(dims * bits) +
             " but the server streams n=" + std::to_string(server_n));
      }
      for (MultiDimRange& range : ranges) parsed.emplace_back(std::move(range));
    } else {
      int n = 0;
      parsed = ParseAffineFileOrDie(ReadInput(input), &n);
      if (n != server_n) {
        Fail("push: input has n=" + std::to_string(n) +
             " but the server streams n=" + std::to_string(server_n));
      }
    }
    items = parsed.size();
    for (StructuredItem& item : parsed) {
      CheckNet(client.PushItem(std::move(item)), "push");
    }
  }
  CheckNet(client.Flush(), "push");

  // A live query races other producers by design — the server answers
  // from a snapshot (estimate: a merge of the engine shards; stats: the
  // telemetry registry) without draining anyone.
  double estimate = 0.0;
  uint64_t server_items = 0;
  std::string stats_json;
  if (opts.query == "estimate") {
    Result<net::EstimateFrame> result = client.QueryEstimate();
    if (!result.ok()) Fail("push: " + result.status().ToString());
    estimate = result.value().estimate;
    server_items = result.value().items_ingested;
  } else if (opts.query == "stats") {
    Result<net::StatsReportFrame> result = client.QueryStats();
    if (!result.ok()) Fail("push: " + result.status().ToString());
    // Flattened metric keys can carry label renderings (quotes and all),
    // so they go through the same escaping as any JSON string.
    stats_json = "{";
    for (const net::StatsEntry& entry : result.value().entries) {
      if (stats_json.size() > 1) stats_json += ", ";
      stats_json += "\"" + JsonObject::Escape(entry.name) +
                    "\": " + std::to_string(entry.value);
    }
    stats_json += "}";
  }
  const uint64_t batches = client.batches_sent();
  CheckNet(client.Close(), "push");

  JsonObject json = NewJson("push");
  json.Add("input", input);
  json.Add("input_kind", opts.input_kind);
  json.Add("host", opts.host);
  json.Add("port", opts.port);
  json.Add("items", items);
  json.Add("batches", batches);
  if (opts.query == "estimate") {
    json.Add("estimate", estimate);
    json.Add("server_items", server_items);
  } else if (opts.query == "stats") {
    json.AddRaw("stats", stats_json);
  }
  json.Add("drain_requested", std::string(client.drain_requested() ? "true"
                                                                   : "false"));
  json.Add("time_ms", timer.Seconds() * 1e3);
  json.Print();
  return 0;
}

}  // namespace
}  // namespace mcf0

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "help") == 0 ||
      std::strcmp(argv[1], "--help") == 0 || std::strcmp(argv[1], "-h") == 0) {
    return mcf0::cli::UsageExit(mcf0::kUsage, argc < 2 ? 2 : 0);
  }
  const std::string command = argv[1];
  if (command == "sketch") return mcf0::RunSketch(argc - 2, argv + 2);
  const mcf0::CommonOptions opts = mcf0::ParseOptions(argc - 2, argv + 2);
  if (command == "f0") return mcf0::RunF0(opts);
  if (command == "count") return mcf0::RunCount(opts);
  if (command == "dnf") return mcf0::RunDnf(opts);
  if (command == "stream") return mcf0::RunStream(opts);
  if (command == "serve") return mcf0::RunServe(opts);
  if (command == "push") return mcf0::RunPush(opts);
  std::fprintf(stderr, "mcf0: unknown subcommand '%s'\n\n%s", command.c_str(),
               mcf0::kUsage);
  return 2;
}
