/// \file cli_flags.hpp
/// \brief Flag parsing shared by the mcf0 CLI subcommands.
///
/// A small typed flag table replacing the hand-rolled if/else chain the
/// driver grew up with: each subcommand registers the flags it accepts
/// (typed targets with checked numeric parsing), Parse() walks argv
/// once, and everything that is not a flag lands in the positional
/// list. Error rendering is byte-identical to the historical driver
/// ("--eps needs a number, got 'x'", "unknown option --y", exit code
/// 2 for usage errors) — cli_test pins the exact strings.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mcf0 {
namespace cli {

/// Prints `mcf0: <message>` to stderr and exits with `code` (1 =
/// runtime failure, 2 = usage error).
[[noreturn]] void Fail(const std::string& message, int code = 1);

/// Checked numeric parsing; a malformed value is a usage error naming
/// the flag, exactly as the driver always rendered it.
double ParseDouble(const std::string& text, const char* flag);
uint64_t ParseU64(const std::string& text, const char* flag);
int ParseInt(const std::string& text, const char* flag);

/// Prints the usage text to stdout when exiting 0, stderr otherwise,
/// and returns `code` — the shared help/usage-error rendering.
int UsageExit(const char* usage, int code);

/// The typed flag table. Register flags, then Parse().
class FlagParser {
 public:
  /// `--name V` with V a finite double / u64 / int (checked).
  void Double(const char* name, double* target);
  void U64(const char* name, uint64_t* target);
  void Int(const char* name, int* target);
  /// `--name V`, verbatim.
  void String(const char* name, std::string* target);
  /// Valueless `--name` setting `*target = true`.
  void Bool(const char* name, bool* target);
  /// `--name V` restricted to `allowed`; a bad value fails with
  /// "`name` must be `description`, got 'V'".
  void Enum(const char* name, std::string* target, std::string description,
            std::vector<std::string> allowed);
  /// `--name [V]` with an *optional* value: the next argv token is
  /// consumed only when it is one of `allowed`; otherwise the flag acts
  /// as bare `--name` and `*target = fallback`. Lets a historically
  /// valueless flag grow spellings without eating positionals
  /// (`--query input.txt` still treats input.txt as the input file).
  void OptionalEnum(const char* name, std::string* target,
                    std::string fallback, std::vector<std::string> allowed);
  /// `--name V` handed to `handler` (which Fail()s on bad input).
  void Custom(const char* name, std::function<void(const std::string&)> handler);
  /// A second spelling for an already-registered flag (e.g. -o for
  /// --out); errors keep naming the canonical spelling.
  void Alias(const char* alias, const char* name);

  /// Walks argv: registered flags consume their values; `-` and
  /// non-dash tokens are positional; any other dash token is
  /// "unknown option <token>" (exit 2).
  void Parse(int argc, char** argv, std::vector<std::string>* positional);

 private:
  struct Flag {
    std::string name;
    bool takes_value;
    /// Non-empty: the value is optional — the next token is consumed
    /// only when it is one of these spellings; the handler sees ""
    /// otherwise.
    std::vector<std::string> optional_values;
    std::function<void(const std::string&)> handler;
  };

  void Register(const char* name, bool takes_value,
                std::function<void(const std::string&)> handler);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::pair<std::string, std::string>> aliases_;
};

}  // namespace cli
}  // namespace mcf0
