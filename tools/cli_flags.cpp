#include "cli_flags.hpp"

#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace mcf0 {
namespace cli {

void Fail(const std::string& message, int code) {
  std::fprintf(stderr, "mcf0: %s\n", message.c_str());
  std::exit(code);
}

double ParseDouble(const std::string& text, const char* flag) {
  try {
    size_t end = 0;
    const double value = std::stod(text, &end);
    if (end == text.size()) return value;
  } catch (const std::exception&) {
  }
  Fail(std::string(flag) + " needs a number, got '" + text + "'", 2);
}

uint64_t ParseU64(const std::string& text, const char* flag) {
  try {
    size_t end = 0;
    const uint64_t value = std::stoull(text, &end);
    if (end == text.size() && text[0] != '-') return value;
  } catch (const std::exception&) {
  }
  Fail(std::string(flag) + " needs a non-negative integer, got '" + text + "'",
       2);
}

int ParseInt(const std::string& text, const char* flag) {
  const uint64_t value = ParseU64(text, flag);
  if (value > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    Fail(std::string(flag) + " is out of range: '" + text + "'", 2);
  }
  return static_cast<int>(value);
}

int UsageExit(const char* usage, int code) {
  std::fputs(usage, code == 0 ? stdout : stderr);
  return code;
}

void FlagParser::Register(const char* name, bool takes_value,
                          std::function<void(const std::string&)> handler) {
  flags_.push_back(Flag{name, takes_value, {}, std::move(handler)});
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void FlagParser::Double(const char* name, double* target) {
  Register(name, true, [name, target](const std::string& value) {
    *target = ParseDouble(value, name);
  });
}

void FlagParser::U64(const char* name, uint64_t* target) {
  Register(name, true, [name, target](const std::string& value) {
    *target = ParseU64(value, name);
  });
}

void FlagParser::Int(const char* name, int* target) {
  Register(name, true, [name, target](const std::string& value) {
    *target = ParseInt(value, name);
  });
}

void FlagParser::String(const char* name, std::string* target) {
  Register(name, true,
           [target](const std::string& value) { *target = value; });
}

void FlagParser::Bool(const char* name, bool* target) {
  Register(name, false, [target](const std::string&) { *target = true; });
}

void FlagParser::Enum(const char* name, std::string* target,
                      std::string description,
                      std::vector<std::string> allowed) {
  Register(name, true,
           [name, target, description = std::move(description),
            allowed = std::move(allowed)](const std::string& value) {
             for (const std::string& candidate : allowed) {
               if (value == candidate) {
                 *target = value;
                 return;
               }
             }
             Fail(std::string(name) + " must be " + description + ", got '" +
                      value + "'",
                  2);
           });
}

void FlagParser::OptionalEnum(const char* name, std::string* target,
                              std::string fallback,
                              std::vector<std::string> allowed) {
  Register(name, true,
           [target, fallback = std::move(fallback)](const std::string& value) {
             *target = value.empty() ? fallback : value;
           });
  flags_.back().optional_values = std::move(allowed);
}

void FlagParser::Custom(const char* name,
                        std::function<void(const std::string&)> handler) {
  Register(name, true, std::move(handler));
}

void FlagParser::Alias(const char* alias, const char* name) {
  aliases_.emplace_back(alias, name);
}

void FlagParser::Parse(int argc, char** argv,
                       std::vector<std::string>* positional) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    for (const auto& [alias, canonical] : aliases_) {
      if (arg == alias) {
        arg = canonical;
        break;
      }
    }
    const Flag* flag = Find(arg);
    if (flag != nullptr) {
      if (flag->takes_value) {
        if (!flag->optional_values.empty()) {
          // Optional value: look ahead, but only claim the next token
          // when it is one of the allowed spellings — anything else
          // (including a file name) stays positional.
          bool matched = false;
          if (i + 1 < argc) {
            const std::string next = argv[i + 1];
            for (const std::string& candidate : flag->optional_values) {
              if (next == candidate) {
                matched = true;
                break;
              }
            }
          }
          flag->handler(matched ? argv[++i] : std::string());
          continue;
        }
        if (i + 1 >= argc) Fail(flag->name + " needs a value", 2);
        flag->handler(argv[++i]);
      } else {
        flag->handler(std::string());
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-' && arg != "-") {
      Fail("unknown option " + arg, 2);
    }
    positional->push_back(arg);
  }
}

}  // namespace cli
}  // namespace mcf0
