/// \file metrics.hpp
/// \brief Process-wide metrics registry: Counter / Gauge / Histogram.
///
/// The hot path is lock-free: every increment/observe is a relaxed
/// atomic RMW on a cell that was resolved once, at registration time,
/// behind the registry mutex. Call sites cache the returned pointer
/// (metric cells are never deallocated), so steady-state cost is one
/// relaxed `fetch_add` — no locks, no lookups.
///
/// Three escape hatches keep the telemetry honest about its own cost:
///  - `SetEnabled(false)` is a runtime kill switch (one extra relaxed
///    bool load per op) used by bench/E19 to measure overhead in-process.
///  - Compiling with `-DMCF0_OBS_DISABLED` stubs the mutating ops out
///    entirely; registration and exposition still link, values stay 0.
///  - `Registry::ResetForTest()` zeroes every value so e2e tests can
///    assert exact counts against a process-wide registry.
///
/// Naming and label rules live in docs/observability.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mcf0 {
namespace obs {

#if defined(MCF0_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
extern std::atomic<bool> g_runtime_enabled;
}  // namespace internal

/// Runtime kill switch (default on). Off turns every mutating op into
/// a single relaxed load + branch; values freeze where they were.
/// Bench-only — gauges that mirror live state (queue depth, active
/// sessions) go stale while disabled.
inline bool Enabled() {
  return internal::g_runtime_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

/// Monotone event count. Increment is lock-free (relaxed fetch_add).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
#if !defined(MCF0_OBS_DISABLED)
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, active sessions). Signed so a
/// transient decrement-before-increment interleaving cannot wrap, but
/// every mcf0 gauge is non-negative at rest.
class Gauge {
 public:
  void Add(int64_t delta) {
#if !defined(MCF0_OBS_DISABLED)
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  void Set(int64_t value) {
#if !defined(MCF0_OBS_DISABLED)
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2 buckets. Bucket 0 holds v == 0; bucket i (1..26) holds
/// 2^(i-1) <= v < 2^i; the last bucket holds v >= 2^26. With values in
/// microseconds that spans sub-µs up to ~67 s, which covers every
/// latency this process produces. Observe is lock-free; a snapshot
/// taken while writers run sees each cell atomically (count/sum may be
/// mutually torn by in-flight observations — documented, benign).
class Histogram {
 public:
  static constexpr int kNumBuckets = 28;

  static int BucketIndex(uint64_t value) {
    if (value == 0) return 0;
    int width = 0;
    while (value != 0) {
      value >>= 1;
      ++width;
    }
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }
  /// Exclusive upper bound of bucket i; UINT64_MAX for the overflow
  /// bucket (rendered as +Inf in the text exposition).
  static uint64_t BucketUpperBound(int index);

  void Observe(uint64_t value) {
#if !defined(MCF0_OBS_DISABLED)
    if (!Enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
#else
    (void)value;
#endif
  }

  uint64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }
  uint64_t Count() const;
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  void ResetForTest();

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// RAII microsecond timer into a Histogram. The clock reads are the
/// expensive part, so the runtime switch is checked at construction
/// and both reads are skipped when telemetry is off.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram* histogram);
  ~ScopedLatencyUs();

  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_us_ = 0;
};

/// One label key/value pair, rendered Prometheus-style: {key="value"}.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// A point-in-time copy of one metric's value(s).
struct MetricSnapshot {
  enum class Type { kCounter, kGauge, kHistogram };
  std::string name;    ///< Family name, no labels.
  std::string key;     ///< name + rendered labels; unique per registry.
  std::string labels;  ///< Rendered {k="v",...} or empty.
  Type type = Type::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  uint64_t hist_sum = 0;
  uint64_t hist_count = 0;
  std::array<uint64_t, Histogram::kNumBuckets> hist_buckets{};
};

/// Named registration + exposition. Get* is find-or-create under a
/// mutex and returns a stable pointer; call it once per site and keep
/// the pointer. Requesting an existing key with a different metric
/// type aborts — that is a programming error, not an input error.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide instance every mcf0 layer registers into.
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Atomic-per-cell copy of every registered metric, sorted by key.
  std::vector<MetricSnapshot> Snapshot() const;

  /// One-line JSON object: {"key":value,...} with histograms as
  /// {"count":..,"sum":..,"buckets":[..]}. Keys sorted.
  std::string SnapshotJson() const;

  /// Prometheus-style text exposition (# TYPE lines, _bucket{le=..}
  /// expansion for histograms).
  std::string TextExposition() const;

  /// Flat (name, value) pairs sorted by name — the kStatsReport wire
  /// payload. Counters and gauges report their value (gauges clamped
  /// at zero); histograms contribute <key>_count and <key>_sum.
  std::vector<std::pair<std::string, uint64_t>> FlatEntries() const;

  /// Zeroes every value (registrations survive). Test-only: this
  /// deliberately breaks monotonicity contracts such as
  /// TotalSamplerRowDraws(), so production code must never call it.
  void ResetForTest();

 private:
  struct Entry {
    std::string name;
    std::string labels_rendered;
    MetricSnapshot::Type type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(const std::string& name, const Labels& labels,
                      MetricSnapshot::Type type);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by name+labels
};

}  // namespace obs
}  // namespace mcf0
