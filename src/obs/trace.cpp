#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace mcf0 {
namespace obs {

namespace {

uint64_t ProcessNowUs() {
  static const std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

struct SpanRing {
  std::mutex mu;
  std::array<Span, kSpanRingCapacity> slots;
  // Monotone write index; size() = min(written, capacity).
  uint64_t written = 0;
  uint64_t dropped = 0;
  uint32_t tid = 0;
};

struct RingDirectory {
  std::mutex mu;
  std::vector<std::shared_ptr<SpanRing>> rings;
  uint32_t next_tid = 1;
};

RingDirectory& Directory() {
  static RingDirectory* dir = new RingDirectory();
  return *dir;
}

SpanRing& ThreadRing() {
  thread_local std::shared_ptr<SpanRing> ring = [] {
    auto fresh = std::make_shared<SpanRing>();
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> lock(dir.mu);
    fresh->tid = dir.next_tid++;
    dir.rings.push_back(fresh);
    return fresh;
  }();
  return *ring;
}

}  // namespace

namespace internal {

void RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us) {
  SpanRing& ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring.mu);
  Span& slot = ring.slots[ring.written % kSpanRingCapacity];
  if (ring.written >= static_cast<uint64_t>(kSpanRingCapacity)) {
    ++ring.dropped;
  }
  slot.name = name;
  slot.start_us = start_us;
  slot.dur_us = dur_us;
  slot.tid = ring.tid;
  ++ring.written;
}

}  // namespace internal

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
#if !defined(MCF0_OBS_DISABLED)
  if (!Enabled()) {
    name_ = nullptr;
    return;
  }
  start_us_ = ProcessNowUs();
#else
  name_ = nullptr;
#endif
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const uint64_t now = ProcessNowUs();
  internal::RecordSpan(name_, start_us_,
                       now >= start_us_ ? now - start_us_ : 0);
}

uint64_t SpansDropped() {
  RingDirectory& dir = Directory();
  std::lock_guard<std::mutex> dir_lock(dir.mu);
  uint64_t total = 0;
  for (const auto& ring : dir.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::string DrainSpansJson() {
  std::vector<Span> spans;
  {
    RingDirectory& dir = Directory();
    std::lock_guard<std::mutex> dir_lock(dir.mu);
    for (const auto& ring : dir.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      const uint64_t count =
          std::min<uint64_t>(ring->written, kSpanRingCapacity);
      const uint64_t begin = ring->written - count;
      for (uint64_t i = 0; i < count; ++i) {
        spans.push_back(ring->slots[(begin + i) % kSpanRingCapacity]);
      }
      ring->written = 0;
    }
  }
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start_us != b.start_us) return a.start_us < b.start_us;
    return a.tid < b.tid;
  });
  std::string out = "[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ",";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"t_us\":%" PRIu64 ",\"dur_us\":%" PRIu64
                  ",\"tid\":%u}",
                  spans[i].name != nullptr ? spans[i].name : "",
                  spans[i].start_us, spans[i].dur_us, spans[i].tid);
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace mcf0
