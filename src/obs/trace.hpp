/// \file trace.hpp
/// \brief Lightweight scoped-span tracer: MCF0_TRACE_SPAN(name).
///
/// Each thread owns a fixed-capacity ring buffer of completed spans;
/// a span records its (static) name, start time relative to process
/// start, duration in microseconds, and a small per-thread id. Rings
/// outlive their threads so DrainSpansJson() can collect everything
/// the process traced. Recording takes the owning ring's (uncontended
/// except during a drain) mutex — spans are for coarse phases, not
/// per-item hot loops; the lock-free budget belongs to metrics.hpp.
///
/// The name must be a string literal (or otherwise outlive the
/// process): the ring stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <string>

namespace mcf0 {
namespace obs {

/// Spans a thread's ring can hold before the oldest are overwritten.
inline constexpr int kSpanRingCapacity = 256;

/// A completed span as drained from a ring.
struct Span {
  const char* name = nullptr;
  uint64_t start_us = 0;  ///< Relative to process start (steady clock).
  uint64_t dur_us = 0;
  uint32_t tid = 0;  ///< Small id assigned per traced thread.
};

namespace internal {
void RecordSpan(const char* name, uint64_t start_us, uint64_t dur_us);
}  // namespace internal

/// RAII span: times its scope and records on destruction. Disabled
/// (runtime switch or MCF0_OBS_DISABLED) spans cost one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_us_ = 0;
};

/// Total spans overwritten before being drained (process-wide).
uint64_t SpansDropped();

/// Empties every ring (including rings of exited threads) and returns
/// the spans as a JSON array sorted by start time:
/// [{"name":"engine.absorb_batch","t_us":12,"dur_us":34,"tid":1},...]
std::string DrainSpansJson();

}  // namespace obs
}  // namespace mcf0

#define MCF0_OBS_SPAN_CONCAT2(a, b) a##b
#define MCF0_OBS_SPAN_CONCAT(a, b) MCF0_OBS_SPAN_CONCAT2(a, b)

#if !defined(MCF0_OBS_DISABLED)
#define MCF0_TRACE_SPAN(name)                                       \
  ::mcf0::obs::ScopedSpan MCF0_OBS_SPAN_CONCAT(mcf0_trace_span_,    \
                                               __LINE__)(name)
#else
#define MCF0_TRACE_SPAN(name) \
  do {                        \
  } while (false)
#endif
