#include "obs/metrics.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace mcf0 {
namespace obs {

namespace internal {
std::atomic<bool> g_runtime_enabled{true};
}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_runtime_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool ValidMetricName(const std::string& name) {
  if (name.empty() || name.size() > 200) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  const char c0 = name[0];
  return !(c0 >= '0' && c0 <= '9');
}

bool ValidLabelPart(const std::string& text) {
  if (text.empty() || text.size() > 200) return false;
  for (char c : text) {
    // Printable ASCII minus the quote/backslash we would have to escape.
    if (c < 0x20 || c > 0x7E || c == '"' || c == '\\') return false;
  }
  return true;
}

[[noreturn]] void Misuse(const std::string& what) {
  std::fprintf(stderr, "mcf0 obs: %s\n", what.c_str());
  std::abort();
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return std::string();
  // Canonical order so {a=..,b=..} and {b=..,a=..} are one metric.
  Labels sorted = labels;
  for (size_t i = 1; i < sorted.size(); ++i) {
    for (size_t j = i; j > 0 && sorted[j].key < sorted[j - 1].key; --j) {
      std::swap(sorted[j], sorted[j - 1]);
    }
  }
  std::string out = "{";
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (!ValidLabelPart(sorted[i].key) || !ValidLabelPart(sorted[i].value)) {
      Misuse("invalid label pair");
    }
    if (i > 0) out += ",";
    out += sorted[i].key;
    out += "=\"";
    out += sorted[i].value;
    out += "\"";
  }
  out += "}";
  return out;
}

const char* TypeName(MetricSnapshot::Type type) {
  switch (type) {
    case MetricSnapshot::Type::kCounter:
      return "counter";
    case MetricSnapshot::Type::kGauge:
      return "gauge";
    case MetricSnapshot::Type::kHistogram:
      return "histogram";
  }
  return "unknown";
}

void AppendU64(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendI64(std::string* out, int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += buf;
}

/// JSON string escaping for metric keys. Label parts already exclude
/// `"` and `\` (ValidLabelPart), so the only characters to escape are
/// the quotes RenderLabels itself puts around label values.
void AppendJsonKey(std::string* out, const std::string& key) {
  *out += '"';
  for (const char c : key) {
    if (c == '"') *out += '\\';
    *out += c;
  }
  *out += '"';
}

}  // namespace

uint64_t Histogram::BucketUpperBound(int index) {
  if (index <= 0) return 1;
  if (index >= kNumBuckets - 1) return UINT64_MAX;
  return uint64_t{1} << index;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::ResetForTest() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

ScopedLatencyUs::ScopedLatencyUs(Histogram* histogram)
    : histogram_(histogram) {
#if !defined(MCF0_OBS_DISABLED)
  if (histogram_ == nullptr || !Enabled()) {
    histogram_ = nullptr;
    return;
  }
  start_us_ = NowUs();
#else
  histogram_ = nullptr;
#endif
}

ScopedLatencyUs::~ScopedLatencyUs() {
  if (histogram_ == nullptr) return;
  const uint64_t now = NowUs();
  histogram_->Observe(now >= start_us_ ? now - start_us_ : 0);
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Entry* Registry::FindOrCreate(const std::string& name,
                                        const Labels& labels,
                                        MetricSnapshot::Type type) {
  if (!ValidMetricName(name)) Misuse("invalid metric name: " + name);
  const std::string rendered = RenderLabels(labels);
  const std::string key = name + rendered;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.type != type) {
      Misuse("metric re-registered with a different type: " + key);
    }
    return &it->second;
  }
  Entry entry;
  entry.name = name;
  entry.labels_rendered = rendered;
  entry.type = type;
  switch (type) {
    case MetricSnapshot::Type::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricSnapshot::Type::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricSnapshot::Type::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricSnapshot::Type::kCounter)
      ->counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  return FindOrCreate(name, labels, MetricSnapshot::Type::kGauge)->gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  return FindOrCreate(name, labels, MetricSnapshot::Type::kHistogram)
      ->histogram.get();
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::vector<MetricSnapshot> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) {
    MetricSnapshot snap;
    snap.name = entry.name;
    snap.key = key;
    snap.labels = entry.labels_rendered;
    snap.type = entry.type;
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        snap.counter_value = entry.counter->Value();
        break;
      case MetricSnapshot::Type::kGauge:
        snap.gauge_value = entry.gauge->Value();
        break;
      case MetricSnapshot::Type::kHistogram: {
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          snap.hist_buckets[i] = entry.histogram->BucketCount(i);
          snap.hist_count += snap.hist_buckets[i];
        }
        snap.hist_sum = entry.histogram->Sum();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

std::string Registry::SnapshotJson() const {
  const std::vector<MetricSnapshot> snaps = Snapshot();
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& snap : snaps) {
    if (!first) out += ",";
    first = false;
    AppendJsonKey(&out, snap.key);
    out += ":";
    switch (snap.type) {
      case MetricSnapshot::Type::kCounter:
        AppendU64(&out, snap.counter_value);
        break;
      case MetricSnapshot::Type::kGauge:
        AppendI64(&out, snap.gauge_value);
        break;
      case MetricSnapshot::Type::kHistogram: {
        out += "{\"count\":";
        AppendU64(&out, snap.hist_count);
        out += ",\"sum\":";
        AppendU64(&out, snap.hist_sum);
        out += ",\"buckets\":[";
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (i > 0) out += ",";
          AppendU64(&out, snap.hist_buckets[i]);
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

std::string Registry::TextExposition() const {
  const std::vector<MetricSnapshot> snaps = Snapshot();
  std::string out;
  std::string last_family;
  for (const MetricSnapshot& snap : snaps) {
    if (snap.name != last_family) {
      out += "# TYPE " + snap.name + " " + TypeName(snap.type) + "\n";
      last_family = snap.name;
    }
    switch (snap.type) {
      case MetricSnapshot::Type::kCounter:
        out += snap.key + " ";
        AppendU64(&out, snap.counter_value);
        out += "\n";
        break;
      case MetricSnapshot::Type::kGauge:
        out += snap.key + " ";
        AppendI64(&out, snap.gauge_value);
        out += "\n";
        break;
      case MetricSnapshot::Type::kHistogram: {
        uint64_t cumulative = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          cumulative += snap.hist_buckets[i];
          std::string le;
          if (i == Histogram::kNumBuckets - 1) {
            le = "+Inf";
          } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%" PRIu64,
                          Histogram::BucketUpperBound(i));
            le = buf;
          }
          out += snap.name + "_bucket";
          if (snap.labels.empty()) {
            out += "{le=\"" + le + "\"}";
          } else {
            // Splice le into the existing label set.
            out += snap.labels.substr(0, snap.labels.size() - 1) + ",le=\"" +
                   le + "\"}";
          }
          out += " ";
          AppendU64(&out, cumulative);
          out += "\n";
        }
        out += snap.name + "_sum" + snap.labels + " ";
        AppendU64(&out, snap.hist_sum);
        out += "\n";
        out += snap.name + "_count" + snap.labels + " ";
        AppendU64(&out, snap.hist_count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::vector<std::pair<std::string, uint64_t>> Registry::FlatEntries() const {
  const std::vector<MetricSnapshot> snaps = Snapshot();
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(snaps.size() + 8);
  for (const MetricSnapshot& snap : snaps) {
    switch (snap.type) {
      case MetricSnapshot::Type::kCounter:
        out.emplace_back(snap.key, snap.counter_value);
        break;
      case MetricSnapshot::Type::kGauge:
        out.emplace_back(snap.key,
                         snap.gauge_value > 0
                             ? static_cast<uint64_t>(snap.gauge_value)
                             : 0);
        break;
      case MetricSnapshot::Type::kHistogram:
        out.emplace_back(snap.key + "_count", snap.hist_count);
        out.emplace_back(snap.key + "_sum", snap.hist_sum);
        break;
    }
  }
  // Snapshot() is key-sorted but the histogram expansion appends two
  // names that may interleave with other keys; restore strict order.
  for (size_t i = 1; i < out.size(); ++i) {
    for (size_t j = i; j > 0 && out[j].first < out[j - 1].first; --j) {
      std::swap(out[j], out[j - 1]);
    }
  }
  return out;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : entries_) {
    (void)key;
    switch (entry.type) {
      case MetricSnapshot::Type::kCounter:
        entry.counter->ResetForTest();
        break;
      case MetricSnapshot::Type::kGauge:
        entry.gauge->ResetForTest();
        break;
      case MetricSnapshot::Type::kHistogram:
        entry.histogram->ResetForTest();
        break;
    }
  }
}

}  // namespace obs
}  // namespace mcf0
