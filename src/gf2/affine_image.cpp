#include "gf2/affine_image.hpp"

#include <algorithm>

namespace mcf0 {

AffineImage::AffineImage(const Gf2Matrix& m, const BitVec& c) {
  BuildFrom(m, c);
}

std::optional<AffineImage> AffineImage::FromSolutionSpace(const Gf2Matrix& a,
                                                          const BitVec& b) {
  auto sol = SolveLinearSystem(a, b);
  if (!sol.has_value()) return std::nullopt;
  // {x : A x = b} = { K t + x0 : t } with K the kernel-basis columns.
  return AffineImage(sol->kernel, sol->x0);
}

void AffineImage::BuildFrom(const Gf2Matrix& m, const BitVec& c) {
  width_ = c.size();
  MCF0_CHECK(m.cols() == 0 || m.rows() == width_);
  // RREF the column space of M. Columns are vectors in {0,1}^width.
  for (int j = 0; j < m.cols(); ++j) {
    BitVec v(width_);
    for (int i = 0; i < width_; ++i) {
      if (m.Get(i, j)) v.Set(i, true);
    }
    // Reduce against current basis.
    for (size_t i = 0; i < basis_.size(); ++i) {
      if (v.Get(pivots_[i])) v ^= basis_[i];
    }
    if (v.IsZero()) continue;
    const int pivot = v.LeadingBit();
    // Back-substitute to keep other basis vectors zero at this pivot.
    for (auto& bv : basis_) {
      if (bv.Get(pivot)) bv ^= v;
    }
    const auto pos = std::lower_bound(pivots_.begin(), pivots_.end(), pivot);
    const size_t idx = static_cast<size_t>(pos - pivots_.begin());
    pivots_.insert(pos, pivot);
    basis_.insert(basis_.begin() + idx, std::move(v));
  }
  // Representative with all pivot bits zero.
  rep_ = c;
  for (size_t i = 0; i < basis_.size(); ++i) {
    if (rep_.Get(pivots_[i])) rep_ ^= basis_[i];
  }
  // Suffix XOR accumulations for subtree-max evaluation.
  const size_t r = basis_.size();
  suffix_.assign(r + 1, BitVec(width_));
  for (size_t i = r; i-- > 0;) {
    suffix_[i] = suffix_[i + 1] ^ basis_[i];
  }
}

BitVec AffineImage::Element(const BitVec& tau) const {
  MCF0_CHECK(tau.size() == dim());
  BitVec e = rep_;
  for (int i = 0; i < dim(); ++i) {
    if (tau.Get(i)) e ^= basis_[i];
  }
  return e;
}

bool AffineImage::Contains(const BitVec& y) const {
  if (y.size() != width_) return false;
  BitVec z = y ^ rep_;
  for (size_t i = 0; i < basis_.size(); ++i) {
    if (z.Get(pivots_[i])) z ^= basis_[i];
  }
  return z.IsZero();
}

std::optional<BitVec> AffineImage::MinGeq(const BitVec& y) const {
  MCF0_CHECK(y.size() == width_);
  // Walk the coefficient tree from the most significant coefficient. The
  // set's elements are ordered exactly as their coefficient words tau, so
  // the answer lies in the leftmost subtree whose maximum is >= y. Subtree
  // maxima are evaluated in O(m/64) via the suffix accumulations.
  if ((rep_ ^ suffix_[0]) < y) return std::nullopt;  // global max < y
  BitVec acc = rep_;
  for (int i = 0; i < dim(); ++i) {
    const BitVec left_max = acc ^ suffix_[i + 1];
    if (left_max < y) {
      acc ^= basis_[i];  // descend right (coefficient 1)
    }
    // else descend left (coefficient 0): acc unchanged.
  }
  MCF0_DCHECK(acc >= y);
  return acc;
}

std::optional<BitVec> AffineImage::MinGt(const BitVec& y) const {
  BitVec next = y;
  if (!next.Increment()) return std::nullopt;  // y was all ones
  return MinGeq(next);
}

std::vector<BitVec> AffineImage::FirstP(uint64_t p) const {
  uint64_t count = p;
  if (dim() <= 63) count = std::min(p, CountU64());
  std::vector<BitVec> out;
  out.reserve(count);
  BitVec tau(dim());
  for (uint64_t i = 0; i < count; ++i) {
    out.push_back(Element(tau));
    if (!tau.Increment()) break;
  }
  return out;
}

int AffineImage::MaxTrailingZeros() const {
  // Largest t such that the linear system "last t bits of rep + sum eps_i
  // basis_i are all zero" is satisfiable in eps. Add one equation per bit
  // position from the end until inconsistent.
  Gf2Eliminator elim(dim());
  int t = 0;
  for (int j = width_ - 1; j >= 0; --j) {
    BitVec row(dim());
    for (int i = 0; i < dim(); ++i) {
      if (basis_[i].Get(j)) row.Set(i, true);
    }
    if (elim.AddEquation(row, rep_.Get(j)) == AddResult::kInconsistent) break;
    ++t;
  }
  return t;
}

UnionLexEnumerator::UnionLexEnumerator(std::vector<AffineImage> sets)
    : sets_(std::move(sets)) {
  candidate_.reserve(sets_.size());
  for (const auto& s : sets_) candidate_.push_back(s.Min());
}

std::optional<BitVec> UnionLexEnumerator::Next() {
  const BitVec* best = nullptr;
  for (const auto& c : candidate_) {
    if (c.has_value() && (best == nullptr || *c < *best)) best = &*c;
  }
  if (best == nullptr) return std::nullopt;
  last_ = *best;
  started_ = true;
  for (size_t i = 0; i < sets_.size(); ++i) {
    if (candidate_[i].has_value() && *candidate_[i] == last_) {
      candidate_[i] = sets_[i].MinGt(last_);
    }
  }
  return last_;
}

std::vector<BitVec> UnionLexEnumerator::FirstP(uint64_t p) {
  std::vector<BitVec> out;
  out.reserve(p);
  for (uint64_t i = 0; i < p; ++i) {
    auto next = Next();
    if (!next.has_value()) break;
    out.push_back(std::move(*next));
  }
  return out;
}

}  // namespace mcf0
