/// \file affine_image.hpp
/// \brief Canonical affine subsets of {0,1}^m with O(1)-per-element
/// lexicographic enumeration.
///
/// This is the library's unifying primitive for the paper's "counting to
/// streaming" direction. Every structured object the paper processes —
/// h(Sol(T)) for a DNF term T (Proposition 2), h(Sol(<A,B>)) for an affine
/// space (Proposition 4), a DNF term's solution set itself, a cube of a
/// multidimensional range — is an *affine image*: the set
///
///     C = { M t + c : t in {0,1}^q }  subset of  {0,1}^m.
///
/// We canonicalize C once by computing a reduced (RREF) basis of the column
/// space of M with pivots p_1 < ... < p_r and a representative c0 that is
/// zero on all pivots. Key fact (proved in tests): for two elements whose
/// basis-coefficient words tau differ, the leading differing bit of the
/// elements is the pivot p_i of the first differing coefficient, and equals
/// that coefficient. Hence
///
///     lexicographic order on C  ==  numeric order on tau in {0,1}^r.
///
/// This gives Element(tau), Min(), MinGeq(y) (by monotone bit-descent on
/// tau), and p-smallest enumeration *without* per-step Gaussian elimination
/// — strictly better than the per-prefix elimination bound used in the
/// paper's Proposition 2, while computing exactly the same sets.
#pragma once

#include <optional>
#include <vector>

#include "gf2/bitvec.hpp"
#include "gf2/gauss.hpp"
#include "gf2/gf2_matrix.hpp"

namespace mcf0 {

/// Canonicalized affine subset of {0,1}^m (see file comment).
class AffineImage {
 public:
  /// Builds the canonical form of { M t + c : t } in O(q * m^2 / 64).
  /// M is m x q (q may be 0: the singleton {c}).
  AffineImage(const Gf2Matrix& m, const BitVec& c);

  /// The affine *solution space* {x : A x = b} subset of {0,1}^n viewed as
  /// an affine image (parametrized by a kernel basis), or nullopt if the
  /// system is inconsistent (empty set).
  static std::optional<AffineImage> FromSolutionSpace(const Gf2Matrix& a,
                                                      const BitVec& b);

  /// Bits per element (the m of {0,1}^m).
  int width() const { return width_; }

  /// Dimension r of the affine subspace; |C| = 2^r.
  int dim() const { return static_cast<int>(basis_.size()); }

  /// log2 |C| = dim(), as a convenience for counting.
  double CountLog2() const { return static_cast<double>(dim()); }

  /// |C| as uint64; requires dim() <= 63.
  uint64_t CountU64() const {
    MCF0_CHECK(dim() <= 63);
    return 1ull << dim();
  }

  /// The tau-th element in lexicographic order; tau has dim() bits
  /// (tau position i multiplies the basis vector with pivot p_{i+1}).
  BitVec Element(const BitVec& tau) const;

  /// Lexicographically smallest element.
  BitVec Min() const { return Element(BitVec(dim())); }

  /// Lexicographically largest element.
  BitVec Max() const { return Element(BitVec::Ones(dim())); }

  /// Membership test in O(r * m / 64).
  bool Contains(const BitVec& y) const;

  /// Smallest element >= y, or nullopt if none. O(r * m / 64).
  std::optional<BitVec> MinGeq(const BitVec& y) const;

  /// Smallest element strictly greater than y, or nullopt if none.
  std::optional<BitVec> MinGt(const BitVec& y) const;

  /// The min(p, |C|) lexicographically smallest elements, in order.
  std::vector<BitVec> FirstP(uint64_t p) const;

  /// Largest t such that some element has >= t trailing zeros (i.e. the
  /// max over C of TrailZero), computed by greedy constraint-stuffing on
  /// the *suffix* bits. Used by FindMaxRange on affine images.
  int MaxTrailingZeros() const;

  /// Pivot positions p_1 < ... < p_r of the canonical basis.
  const std::vector<int>& pivots() const { return pivots_; }

 private:
  void BuildFrom(const Gf2Matrix& m, const BitVec& c);

  int width_ = 0;
  // RREF basis of the direction space: basis_[i] has leading bit at
  // pivots_[i], zero at all other pivots; pivots_ strictly increasing.
  std::vector<BitVec> basis_;
  std::vector<int> pivots_;
  // Representative with all pivot bits zero.
  BitVec rep_;
  // suffix_[i] = basis_[i] ^ basis_[i+1] ^ ... ^ basis_[r-1]; suffix_[r] = 0.
  // Lets MinGeq evaluate "this subtree's maximum" in O(m/64).
  std::vector<BitVec> suffix_;
};

/// Lexicographic merge-enumeration of a union of affine images — the
/// engine behind #DNF BoundedSAT (Proposition 1's DNF case), FindMin for
/// DNF (Proposition 2), and the structured-set streaming algorithms (§5).
///
/// Yields the *distinct* elements of the union in increasing lexicographic
/// order, advancing each constituent set with MinGt queries.
class UnionLexEnumerator {
 public:
  explicit UnionLexEnumerator(std::vector<AffineImage> sets);

  /// Next distinct element of the union, or nullopt when exhausted.
  std::optional<BitVec> Next();

  /// Convenience: the min(p, |union|) smallest elements of the union.
  std::vector<BitVec> FirstP(uint64_t p);

 private:
  std::vector<AffineImage> sets_;
  // Per-set cached next candidate (>= everything already emitted).
  std::vector<std::optional<BitVec>> candidate_;
  bool started_ = false;
  BitVec last_;
};

}  // namespace mcf0
