#include "gf2/toeplitz.hpp"

#include "common/rng.hpp"

namespace mcf0 {

ToeplitzMatrix::ToeplitzMatrix(int rows, int cols, BitVec seed)
    : rows_(rows), cols_(cols), seed_(std::move(seed)) {
  MCF0_CHECK(rows >= 0 && cols >= 0);
  MCF0_CHECK(seed_.size() == rows + cols - 1 || (rows == 0 && cols == 0));
  // T[i][j] = seed[i - j + cols - 1] = rev[rows - 1 - i + j]: with the
  // seed reversed, row i becomes the contiguous window starting at
  // rows - 1 - i, which Row/Mul read word-parallel.
  rev_seed_ = seed_.Reversed();
}

ToeplitzMatrix ToeplitzMatrix::Random(int rows, int cols, Rng& rng) {
  return ToeplitzMatrix(rows, cols, BitVec::Random(rows + cols - 1, rng));
}

BitVec ToeplitzMatrix::Row(int i) const {
  MCF0_DCHECK(i >= 0 && i < rows_);
  return rev_seed_.Slice(rows_ - 1 - i, cols_);
}

BitVec ToeplitzMatrix::Mul(const BitVec& x) const {
  MCF0_CHECK(x.size() == cols_);
  BitVec y(rows_);
  for (int i = 0; i < rows_; ++i) {
    if (rev_seed_.DotWindowF2(rows_ - 1 - i, x)) y.Set(i, true);
  }
  return y;
}

Gf2Matrix ToeplitzMatrix::ToDense() const {
  Gf2Matrix dense(rows_, cols_);
  for (int i = 0; i < rows_; ++i) dense.MutableRow(i) = Row(i);
  return dense;
}

}  // namespace mcf0
