#include "gf2/toeplitz.hpp"

#include "common/rng.hpp"

namespace mcf0 {

ToeplitzMatrix::ToeplitzMatrix(int rows, int cols, BitVec seed)
    : rows_(rows), cols_(cols), seed_(std::move(seed)) {
  MCF0_CHECK(rows >= 0 && cols >= 0);
  MCF0_CHECK(seed_.size() == rows + cols - 1 || (rows == 0 && cols == 0));
}

ToeplitzMatrix ToeplitzMatrix::Random(int rows, int cols, Rng& rng) {
  return ToeplitzMatrix(rows, cols, BitVec::Random(rows + cols - 1, rng));
}

BitVec ToeplitzMatrix::Row(int i) const {
  BitVec row(cols_);
  for (int j = 0; j < cols_; ++j) {
    if (Get(i, j)) row.Set(j, true);
  }
  return row;
}

BitVec ToeplitzMatrix::Mul(const BitVec& x) const {
  MCF0_CHECK(x.size() == cols_);
  BitVec y(rows_);
  for (int i = 0; i < rows_; ++i) {
    // Row i dot x: walk the seed window
    // [i - cols + 1 + (cols-1) .. i + cols - 1].
    bool acc = false;
    for (int j = 0; j < cols_; ++j) {
      acc ^= Get(i, j) && x.Get(j);
    }
    if (acc) y.Set(i, true);
  }
  return y;
}

Gf2Matrix ToeplitzMatrix::ToDense() const {
  Gf2Matrix dense(rows_, cols_);
  for (int i = 0; i < rows_; ++i) dense.MutableRow(i) = Row(i);
  return dense;
}

}  // namespace mcf0
