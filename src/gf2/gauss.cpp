#include "gf2/gauss.hpp"

#include <algorithm>

namespace mcf0 {

Gf2Eliminator::Gf2Eliminator(int ncols) : ncols_(ncols) {
  MCF0_CHECK(ncols >= 0);
}

void Gf2Eliminator::Reduce(BitVec* row, bool* rhs) const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (row->Get(pivot_cols_[i])) {
      *row ^= rows_[i];
      *rhs = *rhs ^ rhs_[i];
    }
  }
}

AddResult Gf2Eliminator::AddEquation(const BitVec& row, bool rhs) {
  MCF0_CHECK(row.size() == ncols_);
  BitVec r = row;
  bool b = rhs;
  Reduce(&r, &b);
  if (r.IsZero()) {
    if (b) {
      consistent_ = false;
      return AddResult::kInconsistent;
    }
    return AddResult::kRedundant;
  }
  const int pivot = r.LeadingBit();
  // Back-substitute into existing rows to keep RREF.
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].Get(pivot)) {
      rows_[i] ^= r;
      rhs_[i] = rhs_[i] ^ b;
    }
  }
  // Insert keeping pivot columns sorted (makes Solve/Kernel deterministic).
  const auto pos =
      std::lower_bound(pivot_cols_.begin(), pivot_cols_.end(), pivot);
  const size_t idx = static_cast<size_t>(pos - pivot_cols_.begin());
  pivot_cols_.insert(pos, pivot);
  rows_.insert(rows_.begin() + idx, std::move(r));
  rhs_.insert(rhs_.begin() + idx, b);
  return AddResult::kIndependent;
}

AddResult Gf2Eliminator::TestEquation(const BitVec& row, bool rhs) const {
  MCF0_CHECK(row.size() == ncols_);
  BitVec r = row;
  bool b = rhs;
  Reduce(&r, &b);
  if (r.IsZero()) return b ? AddResult::kInconsistent : AddResult::kRedundant;
  return AddResult::kIndependent;
}

std::optional<BitVec> Gf2Eliminator::Solve() const {
  if (!consistent_) return std::nullopt;
  // Rows are in RREF: setting free variables to zero, each pivot variable
  // equals its row's rhs.
  BitVec x(ncols_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rhs_[i]) x.Set(pivot_cols_[i], true);
  }
  return x;
}

Gf2Matrix Gf2Eliminator::KernelBasisColumns() const {
  // For each free (non-pivot) column f, the kernel vector sets x_f = 1 and
  // x_p = rows_[i].Get(f) for each pivot p = pivot_cols_[i] (RREF read-off).
  std::vector<bool> is_pivot(ncols_, false);
  for (int p : pivot_cols_) is_pivot[p] = true;
  std::vector<int> free_cols;
  for (int j = 0; j < ncols_; ++j) {
    if (!is_pivot[j]) free_cols.push_back(j);
  }
  Gf2Matrix basis(ncols_, static_cast<int>(free_cols.size()));
  for (size_t k = 0; k < free_cols.size(); ++k) {
    const int f = free_cols[k];
    basis.Set(f, static_cast<int>(k), true);
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (rows_[i].Get(f)) basis.Set(pivot_cols_[i], static_cast<int>(k), true);
    }
  }
  return basis;
}

std::optional<LinearSystemSolution> SolveLinearSystem(const Gf2Matrix& a,
                                                      const BitVec& b) {
  MCF0_CHECK(b.size() == a.rows());
  Gf2Eliminator elim(a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    if (elim.AddEquation(a.Row(i), b.Get(i)) == AddResult::kInconsistent) {
      return std::nullopt;
    }
  }
  LinearSystemSolution sol;
  sol.x0 = *elim.Solve();
  sol.kernel = elim.KernelBasisColumns();
  sol.rank = elim.rank();
  return sol;
}

}  // namespace mcf0
