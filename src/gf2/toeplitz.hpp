/// \file toeplitz.hpp
/// \brief Toeplitz matrices over GF(2) with Theta(n + m)-bit representation.
///
/// The paper's H_Toeplitz(n, m) family samples h(x) = A x + b with A a
/// uniformly random m x n Toeplitz matrix. A Toeplitz matrix is constant
/// along diagonals, so it is determined by its first row and first column —
/// n + m - 1 bits instead of n*m. This class stores exactly that seed and
/// materializes rows on demand; it is the representation-size contrast the
/// paper draws against H_xor (Theta(n^2) bits when m = n).
#pragma once

#include "gf2/bitvec.hpp"
#include "gf2/gf2_matrix.hpp"

namespace mcf0 {

class Rng;

/// An m x n Toeplitz matrix over GF(2): T[i][j] = seed[i - j + n - 1],
/// where seed has m + n - 1 bits (seed[n-1..0] spans the first row read
/// right-to-left; seed[n-1..n+m-2] runs down the first column).
class ToeplitzMatrix {
 public:
  /// Builds from an explicit diagonal seed of m + n - 1 bits.
  ToeplitzMatrix(int rows, int cols, BitVec seed);

  /// Samples a uniformly random Toeplitz matrix.
  static ToeplitzMatrix Random(int rows, int cols, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool Get(int i, int j) const {
    MCF0_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return seed_.Get(i - j + cols_ - 1);
  }

  /// Materializes row i as a BitVec of cols() bits. Row i is a contiguous
  /// window of the reversed seed (row_i[j] = rev[m - 1 - i + j]), so this
  /// is a word-parallel Slice, not a per-bit walk.
  BitVec Row(int i) const;

  /// Matrix-vector product computed from the seed (no densification):
  /// one word-parallel window dot per output bit.
  BitVec Mul(const BitVec& x) const;

  /// Dense copy (used when the caller needs full linear algebra).
  Gf2Matrix ToDense() const;

  /// Number of bits in the representation: m + n - 1.
  int SeedBits() const { return seed_.size(); }

 private:
  int rows_;
  int cols_;
  BitVec seed_;
  /// seed_ reversed, computed once at construction: every row of the
  /// matrix is a contiguous cols_-bit window of this vector.
  BitVec rev_seed_;
};

}  // namespace mcf0
