/// \file gauss.hpp
/// \brief Incremental Gaussian elimination over GF(2).
///
/// `Gf2Eliminator` maintains a row-reduced system of linear equations
/// `row . x = rhs` and supports adding equations one at a time — the
/// workhorse behind the paper's prefix-searching primitive (Propositions 2
/// and 4): each prefix bit contributes one equation and consistency is
/// re-checked incrementally in O(n^2 / 64) instead of re-eliminating from
/// scratch.
#pragma once

#include <optional>
#include <vector>

#include "gf2/bitvec.hpp"
#include "gf2/gf2_matrix.hpp"

namespace mcf0 {

/// Outcome of adding one equation to an eliminator.
enum class AddResult {
  kIndependent,   ///< New pivot; rank increased.
  kRedundant,     ///< Implied by existing equations.
  kInconsistent,  ///< Contradicts existing equations (0 = 1).
};

/// Incrementally row-reduced linear system over GF(2).
class Gf2Eliminator {
 public:
  /// System over `ncols` unknowns.
  explicit Gf2Eliminator(int ncols);

  /// Adds equation `row . x = rhs`, reducing against current pivots. After
  /// kInconsistent the system stays usable (the contradictory equation is
  /// not stored).
  AddResult AddEquation(const BitVec& row, bool rhs);

  /// Tests what AddEquation would return, without mutating state.
  AddResult TestEquation(const BitVec& row, bool rhs) const;

  int rank() const { return static_cast<int>(pivot_cols_.size()); }
  int ncols() const { return ncols_; }
  bool consistent() const { return consistent_; }

  /// The reduced (RREF) rows, their right-hand sides, and pivot columns —
  /// an equivalent system with one fresh pivot per row. Consumers use this
  /// to re-express XOR constraints before handing them to the SAT solver
  /// (CnfOracle) so that branching can be restricted to the free columns.
  const std::vector<BitVec>& rows() const { return rows_; }
  const std::vector<bool>& rhs() const { return rhs_; }
  const std::vector<int>& pivot_cols() const { return pivot_cols_; }

  /// One solution of the current system (free variables set to 0), or
  /// nullopt if inconsistent.
  std::optional<BitVec> Solve() const;

  /// Basis of the solution space of the homogeneous system (the kernel of
  /// the row matrix): ncols() - rank() vectors. Returned as a matrix whose
  /// *columns* are basis vectors, shaped ncols() x (ncols()-rank()), ready
  /// to parametrize the solution set x0 + K * t.
  Gf2Matrix KernelBasisColumns() const;

 private:
  /// Reduces (row, rhs) by current pivots in place.
  void Reduce(BitVec* row, bool* rhs) const;

  int ncols_;
  bool consistent_ = true;
  // Reduced rows in pivot order; pivot_cols_[i] is the leading column of
  // rows_[i]. Rows are kept fully back-substituted (RREF) so Solve() is a
  // direct read-off.
  std::vector<BitVec> rows_;
  std::vector<bool> rhs_;
  std::vector<int> pivot_cols_;
};

/// Convenience: solves A x = b. Returns (solution, kernel-basis columns) or
/// nullopt if inconsistent.
struct LinearSystemSolution {
  BitVec x0;          ///< A particular solution.
  Gf2Matrix kernel;   ///< Columns form a basis of {x : A x = 0}.
  int rank = 0;       ///< Rank of A.
};
std::optional<LinearSystemSolution> SolveLinearSystem(const Gf2Matrix& a,
                                                      const BitVec& b);

}  // namespace mcf0
