#include "gf2/gf2_matrix.hpp"

#include "common/rng.hpp"
#include "gf2/gauss.hpp"

namespace mcf0 {

Gf2Matrix::Gf2Matrix(int rows, int cols) : cols_(cols) {
  MCF0_CHECK(rows >= 0 && cols >= 0);
  rows_.assign(rows, BitVec(cols));
}

Gf2Matrix Gf2Matrix::Identity(int n) {
  Gf2Matrix m(n, n);
  for (int i = 0; i < n; ++i) m.Set(i, i, true);
  return m;
}

Gf2Matrix Gf2Matrix::Random(int rows, int cols, Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (auto& row : m.rows_) row = BitVec::Random(cols, rng);
  return m;
}

Gf2Matrix Gf2Matrix::RandomSparse(int rows, int cols, double density,
                                  Rng& rng) {
  Gf2Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      if (rng.NextBernoulli(density)) m.Set(i, j, true);
    }
  }
  return m;
}

Gf2Matrix Gf2Matrix::FromRows(std::vector<BitVec> rows) {
  Gf2Matrix m;
  if (!rows.empty()) m.cols_ = rows[0].size();
  for (const auto& r : rows) MCF0_CHECK(r.size() == m.cols_);
  m.rows_ = std::move(rows);
  return m;
}

BitVec Gf2Matrix::Mul(const BitVec& x) const {
  MCF0_CHECK(x.size() == cols_);
  BitVec y(rows());
  for (int i = 0; i < rows(); ++i) {
    if (rows_[i].DotF2(x)) y.Set(i, true);
  }
  return y;
}

BitVec Gf2Matrix::MulAffine(const BitVec& x, const BitVec& b) const {
  MCF0_CHECK(b.size() == rows());
  BitVec y = Mul(x);
  y ^= b;
  return y;
}

Gf2Matrix Gf2Matrix::MulMatrix(const Gf2Matrix& o) const {
  MCF0_CHECK(cols_ == o.rows());
  // (A * B) row i = sum over set bits j of A_i of B row j.
  Gf2Matrix out(rows(), o.cols());
  for (int i = 0; i < rows(); ++i) {
    BitVec acc(o.cols());
    for (int j = 0; j < cols_; ++j) {
      if (rows_[i].Get(j)) acc ^= o.Row(j);
    }
    out.rows_[i] = std::move(acc);
  }
  return out;
}

Gf2Matrix Gf2Matrix::Transposed() const {
  Gf2Matrix out(cols_, rows());
  for (int i = 0; i < rows(); ++i) {
    for (int j = 0; j < cols_; ++j) {
      if (rows_[i].Get(j)) out.Set(j, i, true);
    }
  }
  return out;
}

Gf2Matrix Gf2Matrix::PrefixRows(int r) const { return RowSlice(0, r); }

Gf2Matrix Gf2Matrix::RowSlice(int r1, int r2) const {
  MCF0_CHECK(0 <= r1 && r1 <= r2 && r2 <= rows());
  Gf2Matrix out;
  out.cols_ = cols_;
  out.rows_.assign(rows_.begin() + r1, rows_.begin() + r2);
  return out;
}

Gf2Matrix Gf2Matrix::StackBelow(const Gf2Matrix& o) const {
  MCF0_CHECK(cols_ == o.cols_ || rows() == 0 || o.rows() == 0);
  Gf2Matrix out;
  out.cols_ = rows() > 0 ? cols_ : o.cols_;
  out.rows_ = rows_;
  out.rows_.insert(out.rows_.end(), o.rows_.begin(), o.rows_.end());
  return out;
}

Gf2Matrix Gf2Matrix::SelectColumns(const std::vector<int>& keep) const {
  Gf2Matrix out(rows(), static_cast<int>(keep.size()));
  for (int i = 0; i < rows(); ++i) {
    for (size_t jj = 0; jj < keep.size(); ++jj) {
      const int j = keep[jj];
      MCF0_DCHECK(j >= 0 && j < cols_);
      if (rows_[i].Get(j)) out.Set(i, static_cast<int>(jj), true);
    }
  }
  return out;
}

int Gf2Matrix::Rank() const {
  Gf2Eliminator elim(cols_);
  for (const auto& row : rows_) elim.AddEquation(row, false);
  return elim.rank();
}

void Gf2Matrix::AppendRow(BitVec row) {
  if (rows_.empty()) {
    cols_ = row.size();
  } else {
    MCF0_CHECK(row.size() == cols_);
  }
  rows_.push_back(std::move(row));
}

}  // namespace mcf0
