/// \file gf2_matrix.hpp
/// \brief Dense matrices over GF(2) stored as word-packed rows.
///
/// Rows are `BitVec`s, so matrix-vector products and row reduction run
/// word-parallel. Matrices are small (hash functions are m x n with
/// n, m at most a few thousand in any experiment), so a dense row-major
/// representation is the right trade-off.
#pragma once

#include <vector>

#include "gf2/bitvec.hpp"

namespace mcf0 {

class Rng;

/// A rows() x cols() matrix over GF(2).
class Gf2Matrix {
 public:
  Gf2Matrix() = default;

  /// Zero matrix of the given shape.
  Gf2Matrix(int rows, int cols);

  /// Identity matrix of order n.
  static Gf2Matrix Identity(int n);

  /// Uniformly random matrix (each entry an independent fair bit) — the
  /// paper's H_xor sampling.
  static Gf2Matrix Random(int rows, int cols, Rng& rng);

  /// Random matrix whose entries are 1 with probability `density` — the
  /// sparse-XOR hash functions of the paper's future-work section (§6).
  static Gf2Matrix RandomSparse(int rows, int cols, double density, Rng& rng);

  /// Builds from explicit rows (all the same length).
  static Gf2Matrix FromRows(std::vector<BitVec> rows);

  int rows() const { return static_cast<int>(rows_.size()); }
  int cols() const { return cols_; }

  const BitVec& Row(int i) const {
    MCF0_DCHECK(i >= 0 && i < rows());
    return rows_[i];
  }
  BitVec& MutableRow(int i) {
    MCF0_DCHECK(i >= 0 && i < rows());
    return rows_[i];
  }

  bool Get(int i, int j) const { return rows_[i].Get(j); }
  void Set(int i, int j, bool v) { rows_[i].Set(j, v); }

  /// Matrix-vector product over GF(2); x must have cols() bits.
  BitVec Mul(const BitVec& x) const;

  /// Affine map A*x + b; b must have rows() bits.
  BitVec MulAffine(const BitVec& x, const BitVec& b) const;

  /// Matrix-matrix product (*this) * o over GF(2).
  Gf2Matrix MulMatrix(const Gf2Matrix& o) const;

  /// Transposed copy.
  Gf2Matrix Transposed() const;

  /// First `r` rows as a new matrix (the paper's prefix-slice of A).
  Gf2Matrix PrefixRows(int r) const;

  /// Rows r1..r2-1 as a new matrix.
  Gf2Matrix RowSlice(int r1, int r2) const;

  /// Vertical concatenation: *this on top of `o` (equal cols()).
  Gf2Matrix StackBelow(const Gf2Matrix& o) const;

  /// Columns selected by `keep` (indices into [0, cols())), in order.
  Gf2Matrix SelectColumns(const std::vector<int>& keep) const;

  /// Rank via Gaussian elimination on a scratch copy.
  int Rank() const;

  /// Appends a row (must have cols() bits; first row fixes cols()).
  void AppendRow(BitVec row);

  bool operator==(const Gf2Matrix& o) const = default;

 private:
  int cols_ = 0;
  std::vector<BitVec> rows_;
};

}  // namespace mcf0
