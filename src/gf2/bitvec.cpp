#include "gf2/bitvec.hpp"

#include <bit>
#include <cmath>

#include "common/rng.hpp"

namespace mcf0 {

BitVec BitVec::FromU64(uint64_t value, int nbits) {
  MCF0_CHECK(nbits >= 0 && nbits <= 64);
  MCF0_CHECK(nbits == 64 || value < (1ull << nbits));
  BitVec v(nbits);
  if (nbits > 0) {
    // Place the nbits-bit big-endian representation at the top of word 0.
    v.words_[0] = value << (64 - nbits);
  }
  return v;
}

BitVec BitVec::FromString(const std::string& s) {
  BitVec v(static_cast<int>(s.size()));
  for (int i = 0; i < v.size_; ++i) {
    MCF0_CHECK(s[i] == '0' || s[i] == '1');
    v.Set(i, s[i] == '1');
  }
  return v;
}

BitVec BitVec::Random(int size, Rng& rng) {
  BitVec v(size);
  for (auto& w : v.words_) w = rng.NextU64();
  v.MaskTail();
  return v;
}

BitVec BitVec::Ones(int size) {
  BitVec v(size);
  for (auto& w : v.words_) w = ~0ull;
  v.MaskTail();
  return v;
}

void BitVec::MaskTail() {
  const int rem = size_ & 63;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= ~0ull << (64 - rem);
  }
}

BitVec& BitVec::operator^=(const BitVec& o) {
  MCF0_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

BitVec& BitVec::operator&=(const BitVec& o) {
  MCF0_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}

BitVec& BitVec::operator|=(const BitVec& o) {
  MCF0_DCHECK(size_ == o.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}

int BitVec::Popcount() const {
  int c = 0;
  for (uint64_t w : words_) c += std::popcount(w);
  return c;
}

bool BitVec::IsZero() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVec::DotF2(const BitVec& o) const {
  MCF0_DCHECK(size_ == o.size_);
  uint64_t acc = 0;
  for (size_t i = 0; i < words_.size(); ++i) acc ^= words_[i] & o.words_[i];
  return std::popcount(acc) & 1;
}

int BitVec::LeadingBit() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return static_cast<int>(i) * 64 + std::countl_zero(words_[i]);
    }
  }
  return -1;
}

int BitVec::TrailingZeros() const {
  if (size_ == 0) return 0;
  int count = 0;
  // Final (possibly partial) word: its used bits occupy the high
  // `used` positions; the string's last bit sits at bit (64 - used).
  const int used = size_ - 64 * (static_cast<int>(words_.size()) - 1);
  const uint64_t last = words_.back() >> (64 - used);
  if (last != 0) return std::min(std::countr_zero(last), used);
  count += used;
  for (int i = static_cast<int>(words_.size()) - 2; i >= 0; --i) {
    if (words_[i] != 0) return count + std::countr_zero(words_[i]);
    count += 64;
  }
  return count;  // all-zero vector
}

BitVec BitVec::Prefix(int l) const {
  MCF0_CHECK(l >= 0 && l <= size_);
  BitVec out(l);
  const int nw = NumWords(l);
  for (int i = 0; i < nw; ++i) out.words_[i] = words_[i];
  out.MaskTail();
  return out;
}

BitVec BitVec::Slice(int start, int len) const {
  MCF0_CHECK(start >= 0 && len >= 0 && start + len <= size_);
  BitVec out(len);
  if (len == 0) return out;
  const int w0 = start >> 6;
  const int shift = start & 63;
  for (size_t k = 0; k < out.words_.size(); ++k) {
    uint64_t v = words_[w0 + k] << shift;
    if (shift != 0 && w0 + k + 1 < words_.size()) {
      v |= words_[w0 + k + 1] >> (64 - shift);
    }
    out.words_[k] = v;
  }
  out.MaskTail();
  return out;
}

BitVec BitVec::Reversed() const {
  BitVec out(size_);
  for (int i = 0; i < size_; ++i) out.Set(i, Get(size_ - 1 - i));
  return out;
}

bool BitVec::DotWindowF2(int start, const BitVec& x) const {
  MCF0_CHECK(start >= 0 && start + x.size() <= size_);
  const int w0 = start >> 6;
  const int shift = start & 63;
  uint64_t acc = 0;
  // x's tail word is masked (class invariant), so ANDing with it also
  // truncates the window's final partial word.
  for (size_t k = 0; k < x.words_.size(); ++k) {
    uint64_t v = words_[w0 + k] << shift;
    if (shift != 0 && w0 + k + 1 < words_.size()) {
      v |= words_[w0 + k + 1] >> (64 - shift);
    }
    acc ^= v & x.words_[k];
  }
  return std::popcount(acc) & 1;
}

BitVec BitVec::Concat(const BitVec& o) const {
  BitVec out(size_ + o.size_);
  for (int i = 0; i < size_; ++i) out.Set(i, Get(i));
  for (int i = 0; i < o.size_; ++i) out.Set(size_ + i, o.Get(i));
  return out;
}

bool BitVec::Increment() {
  // Big-endian +1: carry propagates from the last string position backward,
  // i.e. from the low bits of the last word toward word 0. Unused tail bits
  // of the final word are zero, so seed the carry at the tail position.
  const int rem = size_ & 63;
  const uint64_t one = (rem == 0) ? 1ull : (1ull << (64 - rem));
  if (words_.empty()) return false;
  uint64_t carry = one;
  for (int i = static_cast<int>(words_.size()) - 1; i >= 0 && carry != 0; --i) {
    const uint64_t before = words_[i];
    words_[i] = before + carry;
    carry = (words_[i] < before) ? 1 : 0;
  }
  MaskTail();
  return carry == 0;
}

uint64_t BitVec::ToU64() const {
  MCF0_CHECK(size_ <= 64);
  if (size_ == 0) return 0;
  return words_[0] >> (64 - size_);
}

double BitVec::ToDouble() const {
  // sum_i words_[i] * 2^(size - 64*(i+1)); accumulate then rescale once.
  double val = 0.0;
  for (const uint64_t w : words_) {
    val = val * 0x1.0p64 + static_cast<double>(w);
  }
  const int shift = size_ - 64 * static_cast<int>(words_.size());
  return std::ldexp(val, shift);
}

std::string BitVec::ToString() const {
  std::string s(size_, '0');
  for (int i = 0; i < size_; ++i) {
    if (Get(i)) s[i] = '1';
  }
  return s;
}

uint64_t BitVec::Hash64() const {
  // FNV-1a over words mixed with the length; adequate for hash containers.
  uint64_t h = 0xcbf29ce484222325ull ^ static_cast<uint64_t>(size_);
  for (uint64_t w : words_) {
    h ^= w;
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

std::strong_ordering BitVec::operator<=>(const BitVec& o) const {
  const size_t common = std::min(words_.size(), o.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] != o.words_[i]) {
      return words_[i] < o.words_[i] ? std::strong_ordering::less
                                     : std::strong_ordering::greater;
    }
  }
  // Equal on the common prefix: the shorter string is lexicographically
  // smaller (it is a proper prefix) unless equal length.
  return size_ <=> o.size_;
}

}  // namespace mcf0
