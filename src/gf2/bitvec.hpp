/// \file bitvec.hpp
/// \brief Dynamic bit vector with MSB-first (lexicographic) semantics.
///
/// A `BitVec` models a bit string y1 y2 ... ym as used throughout the paper:
/// index 0 is the *first* character of the string, so lexicographic order on
/// strings equals the natural order defined here. Internally bits are packed
/// into 64-bit words with string position j stored at bit (63 - j % 64) of
/// word j/64, which makes lexicographic comparison a plain big-endian word
/// comparison and keeps XOR/AND/dot-product word-parallel.
///
/// The paper's primitives map directly:
///  * prefix slice h_m(x) = "first m bits"      -> Prefix(m)
///  * TrailZero(z) = longest all-zero suffix    -> TrailingZeros()
///  * lexicographic minimum / comparisons       -> operator<=>
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace mcf0 {

class Rng;

/// Fixed-length bit string over {0,1} with word-packed storage.
class BitVec {
 public:
  /// Empty (zero-length) string.
  BitVec() = default;

  /// All-zero string of `size` bits.
  explicit BitVec(int size) : size_(size), words_(NumWords(size), 0) {
    MCF0_CHECK(size >= 0);
  }

  /// The `nbits`-bit big-endian representation of `value`; position 0 is the
  /// most significant of the `nbits` bits. Requires value < 2^nbits when
  /// nbits < 64.
  static BitVec FromU64(uint64_t value, int nbits);

  /// Parses a string of '0'/'1' characters.
  static BitVec FromString(const std::string& s);

  /// Uniformly random string of `size` bits.
  static BitVec Random(int size, Rng& rng);

  /// All-ones string of `size` bits.
  static BitVec Ones(int size);

  int size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Reads the bit at string position `i` (0 = first / most significant).
  bool Get(int i) const {
    MCF0_DCHECK(i >= 0 && i < size_);
    return (words_[i >> 6] >> (63 - (i & 63))) & 1u;
  }

  /// Writes the bit at string position `i`.
  void Set(int i, bool v) {
    MCF0_DCHECK(i >= 0 && i < size_);
    const uint64_t mask = 1ull << (63 - (i & 63));
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  /// Flips the bit at string position `i`.
  void Flip(int i) {
    MCF0_DCHECK(i >= 0 && i < size_);
    words_[i >> 6] ^= 1ull << (63 - (i & 63));
  }

  /// In-place XOR with a same-length vector.
  BitVec& operator^=(const BitVec& o);
  /// In-place AND with a same-length vector.
  BitVec& operator&=(const BitVec& o);
  /// In-place OR with a same-length vector.
  BitVec& operator|=(const BitVec& o);

  friend BitVec operator^(BitVec a, const BitVec& b) { return a ^= b; }
  friend BitVec operator&(BitVec a, const BitVec& b) { return a &= b; }
  friend BitVec operator|(BitVec a, const BitVec& b) { return a |= b; }

  /// Number of set bits.
  int Popcount() const;

  /// True iff all bits are zero.
  bool IsZero() const;

  /// GF(2) inner product: parity of (*this AND o). Vectors must have equal
  /// length.
  bool DotF2(const BitVec& o) const;

  /// Index of the first (most significant) set bit, or -1 if zero.
  int LeadingBit() const;

  /// Length of the all-zero *suffix* — the paper's TrailZero. Returns size()
  /// for the zero vector.
  int TrailingZeros() const;

  /// First `l` bits as a new vector (the paper's prefix slice). l <= size().
  BitVec Prefix(int l) const;

  /// Contiguous window [start, start + len) as a new vector. Word-parallel
  /// (shift-and-merge per output word, not per-bit Get/Set) — this is how
  /// ToeplitzMatrix materializes rows from its reversed diagonal seed.
  BitVec Slice(int start, int len) const;

  /// The string read back-to-front: Reversed()[p] = (*this)[size()-1-p].
  BitVec Reversed() const;

  /// GF(2) inner product of the window [start, start + x.size()) with x,
  /// without materializing the window. The packed Toeplitz matrix-vector
  /// product is m of these against one reversed seed.
  bool DotWindowF2(int start, const BitVec& x) const;

  /// Concatenation: *this followed by `o`.
  BitVec Concat(const BitVec& o) const;

  /// Interprets the string as a big-endian integer and adds one.
  /// Returns false on overflow (string was all ones; result wraps to zero).
  bool Increment();

  /// Value as uint64; requires size() <= 64. Bit 0 of the string is the most
  /// significant bit of the result's low size() bits.
  uint64_t ToU64() const;

  /// Value as a double, interpreting the string as a big-endian integer.
  /// Exact up to 53 significant bits; used for ratio estimates like
  /// Thresh * 2^m / max(S), where rounding is negligible.
  double ToDouble() const;

  /// "0101..."-style rendering.
  std::string ToString() const;

  /// 64-bit mixing hash for container use (not a hash-family member).
  uint64_t Hash64() const;

  /// Lexicographic comparison; for equal-length vectors this is also
  /// big-endian numeric comparison.
  std::strong_ordering operator<=>(const BitVec& o) const;
  bool operator==(const BitVec& o) const {
    return size_ == o.size_ && words_ == o.words_;
  }

  /// Direct word access (row operations in Gf2Matrix / the SAT solver's
  /// Gaussian elimination run word-parallel over these).
  const std::vector<uint64_t>& words() const { return words_; }

 private:
  static int NumWords(int size) { return (size + 63) / 64; }
  /// Zeroes the unused low bits of the final word (invariant after ops).
  void MaskTail();

  int size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mcf0

namespace std {
template <>
struct hash<mcf0::BitVec> {
  size_t operator()(const mcf0::BitVec& v) const { return v.Hash64(); }
};
}  // namespace std
