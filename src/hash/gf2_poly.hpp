/// \file gf2_poly.hpp
/// \brief Arithmetic in GF(2^w) for w in [1, 64] and the s-wise independent
/// polynomial hash family H_{s-wise}(w, w) used by the Estimation sketch.
///
/// Field elements are uint64 coefficient masks (bit i = coefficient of x^i).
/// The modulus is found at construction by scanning for an irreducible
/// polynomial of degree w, verified with Rabin's irreducibility test — no
/// hard-coded tables, so every w in [1, 64] works.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace mcf0 {

class Rng;

/// The finite field GF(2^w).
class Gf2Field {
 public:
  /// Constructs GF(2^w). The lexicographically smallest irreducible
  /// modulus of degree w is found by a scan (O(w^4 / 64)) the first time
  /// any field of that degree is built in the process; later
  /// constructions hit a per-degree cache. Scans are counted by the
  /// `mcf0_gf2_modulus_scans_total` metric (at most 64 per process).
  explicit Gf2Field(int w);

  int degree() const { return w_; }

  /// Low-order bits of the modulus (the x^w term is implicit).
  uint64_t modulus_low() const { return mod_low_; }

  /// Field addition (= XOR).
  static uint64_t Add(uint64_t a, uint64_t b) { return a ^ b; }

  /// Field multiplication: carry-less product reduced mod the modulus.
  /// Runs on the active gf2k kernel tier (PCLMULQDQ / PMULL / portable);
  /// the result is tier-independent.
  uint64_t Mul(uint64_t a, uint64_t b) const;

  /// a^e by square-and-multiply.
  uint64_t Pow(uint64_t a, uint64_t e) const;

  /// Rabin's irreducibility test for f = x^degree + poly_low over GF(2).
  static bool IsIrreducible(uint64_t poly_low, int degree);

 private:
  int w_;
  uint64_t mod_low_;
  uint64_t mask_;  // low w bits
};

/// A hash function drawn from the s-wise independent family of degree-(s-1)
/// polynomials over GF(2^w) (the paper's H_{s-wise}(n, n) with n = w).
/// Evaluation is Horner's rule: s-1 field multiplications.
class PolynomialHash {
 public:
  /// coeffs[0] is the constant term; coeffs.size() = s.
  PolynomialHash(const Gf2Field* field, std::vector<uint64_t> coeffs);

  /// Samples a uniform member of the family with s coefficients.
  static PolynomialHash Sample(const Gf2Field* field, int s, Rng& rng);

  /// h(x) for x interpreted as a field element (low w bits used).
  uint64_t Eval(uint64_t x) const;

  /// Batched Eval: out[i] = Eval(xs[i]), bit-for-bit. One call shares
  /// the coefficient array, modulus, and kernel-tier dispatch across the
  /// whole block (gf2k::HornerBatch), which is the hash hot path the
  /// span-Add absorb surface feeds.
  void EvalBatch(std::span<const uint64_t> xs, std::span<uint64_t> out) const;

  /// Independence degree s of the family this was drawn from.
  int s() const { return static_cast<int>(coeffs_.size()); }

  /// Degree w of the underlying GF(2^w) — the bit width of every
  /// coefficient, which the v2 sketch codec uses to pack them.
  int field_degree() const { return field_->degree(); }

  /// Coefficient masks, constant term first — the full sampled state, used
  /// by the sketch codec (src/engine) to serialize Estimation rows.
  const std::vector<uint64_t>& coeffs() const { return coeffs_; }

  /// Same polynomial over the same field degree. (Field pointers may differ
  /// across deserialized copies; the modulus search is deterministic per
  /// degree, so degree equality implies the same field.)
  bool operator==(const PolynomialHash& o) const {
    return field_->degree() == o.field_->degree() && coeffs_ == o.coeffs_;
  }

 private:
  const Gf2Field* field_;            // not owned
  std::vector<uint64_t> coeffs_;
};

/// Number of trailing zero bits of the w-bit value `z` (the paper's
/// TrailZero for machine-word hash outputs); returns w when z == 0.
inline int TrailZero64(uint64_t z, int w) {
  MCF0_DCHECK(w >= 1 && w <= 64);
  if (z == 0) return w;
  int t = 0;
  while (((z >> t) & 1) == 0) ++t;
  return t < w ? t : w;
}

}  // namespace mcf0
