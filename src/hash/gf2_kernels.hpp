/// \file gf2_kernels.hpp
/// \brief Vectorized GF(2) carry-less-multiply kernels with runtime CPU
/// dispatch — the arithmetic backend of `Gf2Field` and `PolynomialHash`.
///
/// Three tiers implement the same 64x64 -> 128 carry-less multiply and
/// the fold-based reduction mod an irreducible f = x^w + f_low:
///
///   * kPortable — shift-and-xor software multiply. Always available;
///     the reference every other tier must match bit-for-bit.
///   * kClmul    — x86-64 PCLMULQDQ, detected via CPUID at first use.
///   * kPmull    — arm64 NEON PMULL, detected via HWCAP at first use.
///
/// Tiers change the *implementation* of the arithmetic, never its
/// results: a field product is a unique element, so sketches built under
/// any tier are byte-identical (pinned by tests/gf2_kernels_test.cpp and
/// the E17/E18 gates). Dispatch is resolved once, at first use, from the
/// CPU plus the `MCF0_FORCE_PORTABLE=1` environment override, and
/// reported through the `mcf0_hash_kernel_tier` gauge so `mcf0 serve`
/// stats show which kernel is live.
///
/// The batch entry points (`MulVec`, `HornerBatch`) hoist the tier
/// switch, the modulus, and the field mask out of the element loop —
/// that amortization is where most of the batched-absorb speedup comes
/// from even before the carry-less multiply gets hardware help.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace mcf0 {
namespace gf2k {

/// Kernel tiers, ordered by preference. The numeric values are what the
/// `mcf0_hash_kernel_tier` gauge reports.
enum class KernelTier : int {
  kPortable = 0,  ///< software shift-and-xor (always available)
  kClmul = 1,     ///< x86-64 PCLMULQDQ
  kPmull = 2,     ///< arm64 NEON PMULL
};

/// Tier name for logs / bench tables ("portable", "clmul", "pmull").
const char* KernelTierName(KernelTier tier);

/// The tier detection resolved: best tier the CPU supports, demoted to
/// kPortable when the environment sets MCF0_FORCE_PORTABLE=1 (or =true).
/// Resolved once per process, then constant.
KernelTier DetectedKernelTier();

/// The tier actually used by every kernel call: the bench/test override
/// when one is set, DetectedKernelTier() otherwise.
KernelTier ActiveKernelTier();

/// Bench/test-only override. Forcing a tier the CPU does not support is
/// a checked error; pass std::nullopt to return to detection. Updates
/// the mcf0_hash_kernel_tier gauge. Not for production call sites — the
/// environment override (MCF0_FORCE_PORTABLE) is the supported switch.
void ForceKernelTier(std::optional<KernelTier> tier);

/// True iff `tier` can execute on this CPU (kPortable always can).
bool KernelTierAvailable(KernelTier tier);

/// A polynomial over GF(2) of degree <= 127: the 64x64 carry-less
/// product. lo holds x^0..x^63, hi holds x^64..x^127.
struct Product128 {
  uint64_t hi = 0;
  uint64_t lo = 0;
};

/// Carry-less 64x64 -> 128 multiply on the active tier.
Product128 CarrylessMul(uint64_t a, uint64_t b);

/// Carry-less multiply on an explicit tier (parity tests; requires
/// KernelTierAvailable(tier)).
Product128 CarrylessMulWithTier(KernelTier tier, uint64_t a, uint64_t b);

/// Field multiply in GF(2^w) with modulus x^w + mod_low: carry-less
/// product then fold reduction (x^w == mod_low mod f, applied until the
/// high part is gone — a couple of carry-less multiplies instead of the
/// bit-at-a-time long division). Operands must have their high 64-w bits
/// clear. Active tier.
uint64_t Mul(uint64_t a, uint64_t b, int w, uint64_t mod_low);

/// Field multiply on an explicit tier (parity tests).
uint64_t MulWithTier(KernelTier tier, uint64_t a, uint64_t b, int w,
                     uint64_t mod_low);

/// Element-wise field multiply: out[i] = a[i] * b[i] in GF(2^w). Spans
/// must have equal length (out may alias a or b). The tier switch and
/// modulus setup are hoisted out of the loop.
void MulVec(std::span<const uint64_t> a, std::span<const uint64_t> b,
            std::span<uint64_t> out, int w, uint64_t mod_low);

/// Batched Horner evaluation of the degree-(s-1) polynomial with
/// coefficient masks `coeffs` (constant term first) at each point of
/// `xs`: out[i] = h(xs[i] & mask). One batch shares the coefficient
/// array, modulus, and kernel selection across all elements; the result
/// equals s-1 scalar Mul/XOR steps per element, bit for bit.
void HornerBatch(std::span<const uint64_t> coeffs,
                 std::span<const uint64_t> xs, std::span<uint64_t> out, int w,
                 uint64_t mod_low);

/// HornerBatch on an explicit tier (parity tests / tier benches).
void HornerBatchWithTier(KernelTier tier, std::span<const uint64_t> coeffs,
                         std::span<const uint64_t> xs, std::span<uint64_t> out,
                         int w, uint64_t mod_low);

}  // namespace gf2k
}  // namespace mcf0
