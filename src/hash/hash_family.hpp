/// \file hash_family.hpp
/// \brief The paper's 2-wise independent affine hash families.
///
/// An `AffineHash` is one sampled function h(x) = A x + b from {0,1}^n to
/// {0,1}^m. Three sampling distributions are provided:
///
///  * H_Toeplitz(n, m): A is a uniformly random Toeplitz matrix — Theta(n+m)
///    bits of representation (§2).
///  * H_xor(n, m): A is a uniformly random dense matrix — Theta(n*m) bits.
///  * Sparse XOR (§6 future work): each entry of A is 1 with a given row
///    density, following Meel & Akshay's sparse hashing line of work.
///
/// All variants expose the prefix-slice h_l (first l rows of A, first l bits
/// of b), the structural property that powers the Bucketing algorithms: the
/// cells h_l^{-1}(0^l) are nested as l grows.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "gf2/bitvec.hpp"
#include "gf2/gf2_matrix.hpp"
#include "gf2/toeplitz.hpp"

namespace mcf0 {

class Rng;

/// Sampling distribution of an AffineHash.
enum class AffineHashKind { kToeplitz, kXor, kSparseXor };

/// One function h(x) = A x + b; see file comment.
class AffineHash {
 public:
  /// Samples from H_Toeplitz(n, m).
  static AffineHash SampleToeplitz(int n, int m, Rng& rng);

  /// Samples from H_xor(n, m).
  static AffineHash SampleXor(int n, int m, Rng& rng);

  /// Samples a sparse-XOR hash: A entries Bernoulli(row_density), b uniform.
  static AffineHash SampleSparseXor(int n, int m, double row_density, Rng& rng);

  /// Wraps explicit parts (used by tests, by distributed coordinators that
  /// ship hash functions to sites, and by the sketch codec when rehydrating
  /// serialized hash state). `repr_bits` preserves the original
  /// representation cost across a serialize/deserialize round trip; 0 means
  /// "dense": Theta(n*m + m), correct for (sparse) XOR matrices.
  static AffineHash FromParts(Gf2Matrix a, BitVec b, AffineHashKind kind,
                              size_t repr_bits = 0);

  /// Rebuilds h(x) = A x + b from a Toeplitz diagonal seed of n + m - 1
  /// bits — the wire-format-v2 reconstruction ctor (docs/wire_format.md):
  /// a serialized Toeplitz hash ships only its seed and offset, not the
  /// materialized rows.
  static AffineHash FromToeplitzSeed(int n, int m, const BitVec& seed,
                                     BitVec b, size_t repr_bits);

  /// True iff A is constant along its diagonals, i.e. representable by the
  /// n + m - 1 bit diagonal seed. Always true for SampleToeplitz hashes;
  /// the sketch codec checks it before seed-encoding a hash whose kind
  /// merely *claims* Toeplitz (FromParts accepts arbitrary matrices).
  bool HasToeplitzMatrix() const;

  /// The diagonal seed (first row read right-to-left, then down the first
  /// column; see gf2/toeplitz.hpp). Requires HasToeplitzMatrix().
  BitVec ToeplitzSeed() const;

  int n() const { return a_.cols(); }
  int m() const { return a_.rows(); }
  AffineHashKind kind() const { return kind_; }

  /// h(x) = A x + b for an n-bit input.
  BitVec Eval(const BitVec& x) const { return a_.MulAffine(x, b_); }

  /// Prefix slice h_l(x): the first l bits of h(x) (§2).
  BitVec EvalPrefix(const BitVec& x, int l) const;

  /// Convenience for word-sized universes (n <= 64): h applied to the n-bit
  /// big-endian encoding of `x`, returned as the m-bit value (requires
  /// m <= 64). Runs on the packed row words — one AND + popcount-parity
  /// per output bit, no BitVec allocation.
  uint64_t Eval64(uint64_t x) const;

  /// The hash restricted to its first l output bits as a standalone hash.
  AffineHash PrefixHash(int l) const;

  const Gf2Matrix& A() const { return a_; }
  const BitVec& b() const { return b_; }

  /// Bits needed to represent the sampled function: Theta(n + m) for
  /// Toeplitz, Theta(n * m) for (sparse) XOR — the contrast in §2.
  size_t RepresentationBits() const;

  /// Same function: identical matrix, offset, and sampling kind. Sketch
  /// merges require both sides to share hash state (§4); this is the check.
  bool operator==(const AffineHash& o) const {
    return kind_ == o.kind_ && a_ == o.a_ && b_ == o.b_;
  }

 private:
  AffineHash(Gf2Matrix a, BitVec b, AffineHashKind kind, size_t repr_bits);

  Gf2Matrix a_;
  BitVec b_;
  AffineHashKind kind_;
  size_t repr_bits_;
  /// When n <= 64, row i of A packed into one word (the BitVec layout:
  /// input bit j at word bit 63 - j). Built once at construction so
  /// Eval64 / EvalPrefix on word-sized universes are AND + parity per
  /// output bit. Empty when n > 64. Derived state — not part of
  /// operator== or any serialized form.
  std::vector<uint64_t> packed_rows_;
};

}  // namespace mcf0
