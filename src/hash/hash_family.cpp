#include "hash/hash_family.hpp"

#include <bit>

#include "common/rng.hpp"

namespace mcf0 {

AffineHash::AffineHash(Gf2Matrix a, BitVec b, AffineHashKind kind,
                       size_t repr_bits)
    : a_(std::move(a)), b_(std::move(b)), kind_(kind), repr_bits_(repr_bits) {
  if (a_.cols() <= 64) {
    packed_rows_.reserve(static_cast<size_t>(a_.rows()));
    for (int i = 0; i < a_.rows(); ++i) {
      packed_rows_.push_back(a_.cols() == 0 ? 0 : a_.Row(i).words()[0]);
    }
  }
}

AffineHash AffineHash::SampleToeplitz(int n, int m, Rng& rng) {
  MCF0_CHECK(n >= 1 && m >= 1);
  ToeplitzMatrix t = ToeplitzMatrix::Random(m, n, rng);
  BitVec b = BitVec::Random(m, rng);
  // Densify once: downstream consumers (prefix slices, affine composition,
  // XOR clause extraction) all need row access; the Theta(n+m) seed size is
  // what we report as the representation cost.
  const size_t repr =
      static_cast<size_t>(t.SeedBits()) + static_cast<size_t>(m);
  return AffineHash(t.ToDense(), std::move(b), AffineHashKind::kToeplitz, repr);
}

AffineHash AffineHash::SampleXor(int n, int m, Rng& rng) {
  MCF0_CHECK(n >= 1 && m >= 1);
  Gf2Matrix a = Gf2Matrix::Random(m, n, rng);
  BitVec b = BitVec::Random(m, rng);
  const size_t repr = static_cast<size_t>(m) * static_cast<size_t>(n) +
                      static_cast<size_t>(m);
  return AffineHash(std::move(a), std::move(b), AffineHashKind::kXor, repr);
}

AffineHash AffineHash::SampleSparseXor(int n, int m, double row_density,
                                       Rng& rng) {
  MCF0_CHECK(n >= 1 && m >= 1);
  MCF0_CHECK(row_density > 0.0 && row_density <= 1.0);
  Gf2Matrix a = Gf2Matrix::RandomSparse(m, n, row_density, rng);
  BitVec b = BitVec::Random(m, rng);
  const size_t repr = static_cast<size_t>(m) * static_cast<size_t>(n) +
                      static_cast<size_t>(m);
  return AffineHash(std::move(a), std::move(b), AffineHashKind::kSparseXor,
                    repr);
}

AffineHash AffineHash::FromParts(Gf2Matrix a, BitVec b, AffineHashKind kind,
                                 size_t repr_bits) {
  MCF0_CHECK(b.size() == a.rows());
  const size_t repr = repr_bits > 0
                          ? repr_bits
                          : static_cast<size_t>(a.rows()) *
                                    static_cast<size_t>(a.cols()) +
                                static_cast<size_t>(a.rows());
  return AffineHash(std::move(a), std::move(b), kind, repr);
}

AffineHash AffineHash::FromToeplitzSeed(int n, int m, const BitVec& seed,
                                        BitVec b, size_t repr_bits) {
  MCF0_CHECK(n >= 1 && m >= 1);
  MCF0_CHECK(seed.size() == n + m - 1);
  return FromParts(ToeplitzMatrix(m, n, seed).ToDense(), std::move(b),
                   AffineHashKind::kToeplitz, repr_bits);
}

bool AffineHash::HasToeplitzMatrix() const {
  // Constant along diagonals: every entry equals its upper-left neighbor.
  for (int i = 1; i < m(); ++i) {
    for (int j = 1; j < n(); ++j) {
      if (a_.Get(i, j) != a_.Get(i - 1, j - 1)) return false;
    }
  }
  return true;
}

BitVec AffineHash::ToeplitzSeed() const {
  MCF0_DCHECK(HasToeplitzMatrix());
  // T[i][j] = seed[i - j + n - 1]: indices [0, n) come from the first row
  // (right to left), indices [n, n + m - 1) run down the first column.
  BitVec seed(n() + m() - 1);
  for (int j = 0; j < n(); ++j) seed.Set(n() - 1 - j, a_.Get(0, j));
  for (int i = 1; i < m(); ++i) seed.Set(i + n() - 1, a_.Get(i, 0));
  return seed;
}

BitVec AffineHash::EvalPrefix(const BitVec& x, int l) const {
  MCF0_CHECK(l >= 0 && l <= m());
  BitVec y(l);
  if (!packed_rows_.empty() || n() == 0) {
    // Word-sized input: x is one (masked) word, so each output bit is a
    // single AND + parity against the packed row.
    const uint64_t xw = x.words().empty() ? 0 : x.words()[0];
    for (int i = 0; i < l; ++i) {
      const bool dot = std::popcount(packed_rows_[static_cast<size_t>(i)] & xw) & 1;
      if (dot != b_.Get(i)) y.Set(i, true);
    }
    return y;
  }
  for (int i = 0; i < l; ++i) {
    if (a_.Row(i).DotF2(x) != b_.Get(i)) y.Set(i, true);
  }
  return y;
}

uint64_t AffineHash::Eval64(uint64_t x) const {
  MCF0_CHECK(n() <= 64 && m() <= 64);
  // Pack x the way BitVec::FromU64 does (big-endian at the top of the
  // word); each output bit is then parity(row_word & x_word), assembled
  // most-significant-first to match BitVec::ToU64.
  const uint64_t xw =
      (n() == 64) ? x : ((x & ((1ull << n()) - 1)) << (64 - n()));
  uint64_t out = 0;
  for (int i = 0; i < m(); ++i) {
    out = (out << 1) |
          static_cast<uint64_t>(
              std::popcount(packed_rows_[static_cast<size_t>(i)] & xw) & 1);
  }
  return out ^ b_.ToU64();
}

AffineHash AffineHash::PrefixHash(int l) const {
  MCF0_CHECK(l >= 1 && l <= m());
  return AffineHash(a_.PrefixRows(l), b_.Prefix(l), kind_, repr_bits_);
}

size_t AffineHash::RepresentationBits() const { return repr_bits_; }

}  // namespace mcf0
