#include "hash/gf2_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define MCF0_GF2K_X86 1
#include <smmintrin.h>
#include <wmmintrin.h>
#endif

#if defined(__aarch64__)
#define MCF0_GF2K_ARM 1
#include <arm_neon.h>
#if defined(__linux__)
#include <sys/auxv.h>
#endif
#endif

#include "common/check.hpp"
#include "obs/metrics.hpp"

namespace mcf0 {
namespace gf2k {
namespace {

// ---- portable tier --------------------------------------------------------

/// Shift-and-xor carry-less multiply — the reference implementation and
/// the kPortable tier. Iterates set bits of b only.
inline Product128 ClmulSoft(uint64_t a, uint64_t b) {
  Product128 p;
  while (b != 0) {
    const int i = __builtin_ctzll(b);
    b &= b - 1;
    p.lo ^= a << i;
    if (i != 0) p.hi ^= a >> (64 - i);
  }
  return p;
}

/// Fold reduction mod f = x^w + mod_low: split the product at x^w and
/// substitute x^w == mod_low until the high part vanishes. The high
/// part's degree drops below deg(mod_low) after one fold and strictly
/// decreases from there, so for the small lexicographically-minimal
/// moduli this runs 2-3 carry-less multiplies.
inline uint64_t ReduceSoft(Product128 p, int w, uint64_t mod_low) {
  if (w == 64) {
    while (p.hi != 0) {
      const Product128 f = ClmulSoft(p.hi, mod_low);
      p.hi = f.hi;
      p.lo ^= f.lo;
    }
    return p.lo;
  }
  const uint64_t mask = (1ull << w) - 1;
  uint64_t high = (p.hi << (64 - w)) | (p.lo >> w);
  uint64_t lo = p.lo & mask;
  while (high != 0) {
    const Product128 f = ClmulSoft(high, mod_low);
    high = (f.hi << (64 - w)) | (f.lo >> w);
    lo ^= f.lo & mask;
  }
  return lo;
}

inline uint64_t MulSoft(uint64_t a, uint64_t b, int w, uint64_t mod_low) {
  return ReduceSoft(ClmulSoft(a, b), w, mod_low);
}

void MulVecSoft(std::span<const uint64_t> a, std::span<const uint64_t> b,
                std::span<uint64_t> out, int w, uint64_t mod_low) {
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = MulSoft(a[i], b[i], w, mod_low);
  }
}

/// 4-bit window table for multiplying by a fixed x: t[v] = clmul(v, x)
/// for every nibble value v. Entries reach degree 66, so they carry a
/// 128-bit layout.
struct WindowTable {
  Product128 t[16];
};

inline WindowTable MakeWindow(uint64_t x) {
  WindowTable tab;
  tab.t[1] = {0, x};
  tab.t[2] = {x >> 63, x << 1};
  tab.t[4] = {x >> 62, x << 2};
  tab.t[8] = {x >> 61, x << 3};
  for (int v = 3; v < 16; ++v) {
    if ((v & (v - 1)) == 0) continue;  // powers of two already filled
    const int high_bit = 1 << (31 - __builtin_clz(static_cast<unsigned>(v)));
    tab.t[v] = {tab.t[high_bit].hi ^ tab.t[v - high_bit].hi,
                tab.t[high_bit].lo ^ tab.t[v - high_bit].lo};
  }
  return tab;
}

/// Carry-less multiply of a by the x captured in `tab`: Horner over the
/// `nibbles` low nibbles of a (all a can occupy — field elements keep
/// their high 64-w bits clear), one shift-4 + table XOR each.
/// Branchless, and roughly twice the speed of ClmulSoft's set-bit loop
/// on random operands — the portable batch path's real amortization,
/// since one table serves every multiply by the same x.
inline Product128 ClmulWindow(uint64_t a, const WindowTable& tab,
                              int nibbles) {
  Product128 r;
  for (int k = nibbles - 1; k >= 0; --k) {
    r.hi = (r.hi << 4) | (r.lo >> 60);
    r.lo <<= 4;
    const Product128& t = tab.t[(a >> (4 * k)) & 15];
    r.hi ^= t.hi;
    r.lo ^= t.lo;
  }
  return r;
}

void HornerBatchSoft(std::span<const uint64_t> coeffs,
                     std::span<const uint64_t> xs, std::span<uint64_t> out,
                     int w, uint64_t mod_low) {
  const uint64_t mask = (w == 64) ? ~0ull : ((1ull << w) - 1);
  const uint64_t top = coeffs.back();
  const int nibbles = (w + 3) >> 2;
  for (size_t i = 0; i < xs.size(); ++i) {
    const uint64_t x = xs[i] & mask;
    const WindowTable tab = MakeWindow(x);
    uint64_t acc = top;
    for (size_t k = coeffs.size() - 1; k-- > 0;) {
      acc = ReduceSoft(ClmulWindow(acc, tab, nibbles), w, mod_low) ^ coeffs[k];
    }
    out[i] = acc;
  }
}

// ---- x86-64 PCLMULQDQ tier ------------------------------------------------

#if defined(MCF0_GF2K_X86)
#define MCF0_TARGET_CLMUL __attribute__((target("pclmul,sse4.1")))

/// Product + fold reduction entirely in PCLMULQDQ. Mirrors ReduceSoft
/// exactly — same folds, same result — with each carry-less multiply a
/// single instruction.
MCF0_TARGET_CLMUL inline uint64_t MulClmul(uint64_t a, uint64_t b, int w,
                                           uint64_t mod_low) {
  const __m128i vmod = _mm_set_epi64x(0, static_cast<long long>(mod_low));
  __m128i prod =
      _mm_clmulepi64_si128(_mm_set_epi64x(0, static_cast<long long>(a)),
                           _mm_set_epi64x(0, static_cast<long long>(b)), 0x00);
  uint64_t hi = static_cast<uint64_t>(_mm_extract_epi64(prod, 1));
  uint64_t lo = static_cast<uint64_t>(_mm_cvtsi128_si64(prod));
  if (w == 64) {
    while (hi != 0) {
      const __m128i f = _mm_clmulepi64_si128(
          _mm_set_epi64x(0, static_cast<long long>(hi)), vmod, 0x00);
      hi = static_cast<uint64_t>(_mm_extract_epi64(f, 1));
      lo ^= static_cast<uint64_t>(_mm_cvtsi128_si64(f));
    }
    return lo;
  }
  const uint64_t mask = (1ull << w) - 1;
  uint64_t high = (hi << (64 - w)) | (lo >> w);
  lo &= mask;
  while (high != 0) {
    const __m128i f = _mm_clmulepi64_si128(
        _mm_set_epi64x(0, static_cast<long long>(high)), vmod, 0x00);
    const uint64_t fhi = static_cast<uint64_t>(_mm_extract_epi64(f, 1));
    const uint64_t flo = static_cast<uint64_t>(_mm_cvtsi128_si64(f));
    high = (fhi << (64 - w)) | (flo >> w);
    lo ^= flo & mask;
  }
  return lo;
}

MCF0_TARGET_CLMUL Product128 CarrylessMulClmul(uint64_t a, uint64_t b) {
  const __m128i prod =
      _mm_clmulepi64_si128(_mm_set_epi64x(0, static_cast<long long>(a)),
                           _mm_set_epi64x(0, static_cast<long long>(b)), 0x00);
  return {static_cast<uint64_t>(_mm_extract_epi64(prod, 1)),
          static_cast<uint64_t>(_mm_cvtsi128_si64(prod))};
}

MCF0_TARGET_CLMUL void MulVecClmul(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b,
                                   std::span<uint64_t> out, int w,
                                   uint64_t mod_low) {
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = MulClmul(a[i], b[i], w, mod_low);
  }
}

MCF0_TARGET_CLMUL void HornerBatchClmul(std::span<const uint64_t> coeffs,
                                        std::span<const uint64_t> xs,
                                        std::span<uint64_t> out, int w,
                                        uint64_t mod_low) {
  const uint64_t mask = (w == 64) ? ~0ull : ((1ull << w) - 1);
  const uint64_t top = coeffs.back();
  for (size_t i = 0; i < xs.size(); ++i) {
    const uint64_t x = xs[i] & mask;
    uint64_t acc = top;
    for (size_t k = coeffs.size() - 1; k-- > 0;) {
      acc = MulClmul(acc, x, w, mod_low) ^ coeffs[k];
    }
    out[i] = acc;
  }
}
#endif  // MCF0_GF2K_X86

// ---- arm64 NEON PMULL tier ------------------------------------------------

#if defined(MCF0_GF2K_ARM)
#define MCF0_TARGET_PMULL __attribute__((target("+crypto")))

MCF0_TARGET_PMULL inline Product128 CarrylessMulPmullRaw(uint64_t a,
                                                         uint64_t b) {
  const poly128_t prod =
      vmull_p64(static_cast<poly64_t>(a), static_cast<poly64_t>(b));
  const uint64x2_t v = vreinterpretq_u64_p128(prod);
  return {vgetq_lane_u64(v, 1), vgetq_lane_u64(v, 0)};
}

MCF0_TARGET_PMULL inline uint64_t MulPmull(uint64_t a, uint64_t b, int w,
                                           uint64_t mod_low) {
  Product128 p = CarrylessMulPmullRaw(a, b);
  if (w == 64) {
    while (p.hi != 0) {
      const Product128 f = CarrylessMulPmullRaw(p.hi, mod_low);
      p.hi = f.hi;
      p.lo ^= f.lo;
    }
    return p.lo;
  }
  const uint64_t mask = (1ull << w) - 1;
  uint64_t high = (p.hi << (64 - w)) | (p.lo >> w);
  uint64_t lo = p.lo & mask;
  while (high != 0) {
    const Product128 f = CarrylessMulPmullRaw(high, mod_low);
    high = (f.hi << (64 - w)) | (f.lo >> w);
    lo ^= f.lo & mask;
  }
  return lo;
}

MCF0_TARGET_PMULL void MulVecPmull(std::span<const uint64_t> a,
                                   std::span<const uint64_t> b,
                                   std::span<uint64_t> out, int w,
                                   uint64_t mod_low) {
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = MulPmull(a[i], b[i], w, mod_low);
  }
}

MCF0_TARGET_PMULL void HornerBatchPmull(std::span<const uint64_t> coeffs,
                                        std::span<const uint64_t> xs,
                                        std::span<uint64_t> out, int w,
                                        uint64_t mod_low) {
  const uint64_t mask = (w == 64) ? ~0ull : ((1ull << w) - 1);
  const uint64_t top = coeffs.back();
  for (size_t i = 0; i < xs.size(); ++i) {
    const uint64_t x = xs[i] & mask;
    uint64_t acc = top;
    for (size_t k = coeffs.size() - 1; k-- > 0;) {
      acc = MulPmull(acc, x, w, mod_low) ^ coeffs[k];
    }
    out[i] = acc;
  }
}
#endif  // MCF0_GF2K_ARM

// ---- detection and dispatch -----------------------------------------------

bool CpuHasClmul() {
#if defined(MCF0_GF2K_X86)
  return __builtin_cpu_supports("pclmul") != 0;
#else
  return false;
#endif
}

bool CpuHasPmull() {
#if defined(MCF0_GF2K_ARM) && defined(__linux__)
  // HWCAP_PMULL == (1 << 4) on arm64 Linux; spelled numerically so the
  // header set stays minimal.
  return (getauxval(AT_HWCAP) & (1ul << 4)) != 0;
#else
  return false;
#endif
}

bool EnvForcesPortable() {
  const char* value = std::getenv("MCF0_FORCE_PORTABLE");
  if (value == nullptr) return false;
  return std::strcmp(value, "1") == 0 || std::strcmp(value, "true") == 0;
}

obs::Gauge* TierGauge() {
  static obs::Gauge* gauge =
      obs::Registry::Global().GetGauge("mcf0_hash_kernel_tier");
  return gauge;
}

/// Bench/test override; -1 = none. Read relaxed on every dispatch —
/// one extra load on the scalar path, hoisted entirely in the batch
/// entry points.
std::atomic<int>& OverrideTier() {
  static std::atomic<int> tier{-1};
  return tier;
}

KernelTier ResolveDetectedTier() {
  if (EnvForcesPortable()) return KernelTier::kPortable;
  if (CpuHasPmull()) return KernelTier::kPmull;
  if (CpuHasClmul()) return KernelTier::kClmul;
  return KernelTier::kPortable;
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kPortable: return "portable";
    case KernelTier::kClmul: return "clmul";
    case KernelTier::kPmull: return "pmull";
  }
  return "?";
}

KernelTier DetectedKernelTier() {
  static const KernelTier tier = [] {
    const KernelTier resolved = ResolveDetectedTier();
    TierGauge()->Set(static_cast<int64_t>(resolved));
    return resolved;
  }();
  return tier;
}

KernelTier ActiveKernelTier() {
  const int forced = OverrideTier().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<KernelTier>(forced);
  return DetectedKernelTier();
}

bool KernelTierAvailable(KernelTier tier) {
  switch (tier) {
    case KernelTier::kPortable: return true;
    case KernelTier::kClmul: return CpuHasClmul();
    case KernelTier::kPmull: return CpuHasPmull();
  }
  return false;
}

void ForceKernelTier(std::optional<KernelTier> tier) {
  if (tier.has_value()) {
    MCF0_CHECK(KernelTierAvailable(*tier));
    OverrideTier().store(static_cast<int>(*tier), std::memory_order_relaxed);
    TierGauge()->Set(static_cast<int64_t>(*tier));
  } else {
    OverrideTier().store(-1, std::memory_order_relaxed);
    TierGauge()->Set(static_cast<int64_t>(DetectedKernelTier()));
  }
}

Product128 CarrylessMulWithTier(KernelTier tier, uint64_t a, uint64_t b) {
  switch (tier) {
#if defined(MCF0_GF2K_X86)
    case KernelTier::kClmul: return CarrylessMulClmul(a, b);
#endif
#if defined(MCF0_GF2K_ARM)
    case KernelTier::kPmull: return CarrylessMulPmullRaw(a, b);
#endif
    default: return ClmulSoft(a, b);
  }
}

Product128 CarrylessMul(uint64_t a, uint64_t b) {
  return CarrylessMulWithTier(ActiveKernelTier(), a, b);
}

uint64_t MulWithTier(KernelTier tier, uint64_t a, uint64_t b, int w,
                     uint64_t mod_low) {
  switch (tier) {
#if defined(MCF0_GF2K_X86)
    case KernelTier::kClmul: return MulClmul(a, b, w, mod_low);
#endif
#if defined(MCF0_GF2K_ARM)
    case KernelTier::kPmull: return MulPmull(a, b, w, mod_low);
#endif
    default: return MulSoft(a, b, w, mod_low);
  }
}

uint64_t Mul(uint64_t a, uint64_t b, int w, uint64_t mod_low) {
  return MulWithTier(ActiveKernelTier(), a, b, w, mod_low);
}

void MulVec(std::span<const uint64_t> a, std::span<const uint64_t> b,
            std::span<uint64_t> out, int w, uint64_t mod_low) {
  MCF0_CHECK(a.size() == out.size() && b.size() == out.size());
  switch (ActiveKernelTier()) {
#if defined(MCF0_GF2K_X86)
    case KernelTier::kClmul: MulVecClmul(a, b, out, w, mod_low); return;
#endif
#if defined(MCF0_GF2K_ARM)
    case KernelTier::kPmull: MulVecPmull(a, b, out, w, mod_low); return;
#endif
    default: MulVecSoft(a, b, out, w, mod_low); return;
  }
}

void HornerBatchWithTier(KernelTier tier, std::span<const uint64_t> coeffs,
                         std::span<const uint64_t> xs, std::span<uint64_t> out,
                         int w, uint64_t mod_low) {
  MCF0_CHECK(!coeffs.empty() && xs.size() == out.size());
  switch (tier) {
#if defined(MCF0_GF2K_X86)
    case KernelTier::kClmul:
      HornerBatchClmul(coeffs, xs, out, w, mod_low);
      return;
#endif
#if defined(MCF0_GF2K_ARM)
    case KernelTier::kPmull:
      HornerBatchPmull(coeffs, xs, out, w, mod_low);
      return;
#endif
    default: HornerBatchSoft(coeffs, xs, out, w, mod_low); return;
  }
}

void HornerBatch(std::span<const uint64_t> coeffs,
                 std::span<const uint64_t> xs, std::span<uint64_t> out, int w,
                 uint64_t mod_low) {
  HornerBatchWithTier(ActiveKernelTier(), coeffs, xs, out, w, mod_low);
}

}  // namespace gf2k
}  // namespace mcf0
