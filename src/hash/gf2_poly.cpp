#include "hash/gf2_poly.hpp"

#include <array>
#include <bit>
#include <mutex>

#include "common/rng.hpp"
#include "hash/gf2_kernels.hpp"
#include "obs/metrics.hpp"

namespace mcf0 {
namespace {

/// Polynomial over GF(2) of degree <= 127 as two words (lo = x^0..x^63).
struct Poly128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool IsZero() const { return hi == 0 && lo == 0; }

  int Degree() const {
    if (hi != 0) return 127 - std::countl_zero(hi);
    if (lo != 0) return 63 - std::countl_zero(lo);
    return -1;  // zero polynomial
  }

  void XorShifted(Poly128 f, int shift) {
    // *this ^= f * x^shift; caller guarantees no overflow past bit 127.
    if (shift == 0) {
      hi ^= f.hi;
      lo ^= f.lo;
      return;
    }
    if (shift >= 64) {
      hi ^= f.lo << (shift - 64);
      return;
    }
    hi ^= (f.hi << shift) | (f.lo >> (64 - shift));
    lo ^= f.lo << shift;
  }
};

/// p mod f for a nonzero modulus polynomial f (deg f >= 0; anything mod a
/// nonzero constant is 0, which the loop below produces naturally).
Poly128 PolyMod(Poly128 p, Poly128 f) {
  const int df = f.Degree();
  MCF0_DCHECK(df >= 0);
  int dp = p.Degree();
  while (dp >= df) {
    p.XorShifted(f, dp - df);
    dp = p.Degree();
  }
  return p;
}

Poly128 PolyGcd(Poly128 a, Poly128 b) {
  while (!b.IsZero()) {
    Poly128 r = PolyMod(a, b);
    a = b;
    b = r;
  }
  return a;
}

Poly128 ModulusPoly(uint64_t poly_low, int degree) {
  Poly128 f;
  f.lo = poly_low;
  if (degree == 64) {
    f.hi = 1;
  } else {
    f.lo |= 1ull << degree;
  }
  return f;
}

}  // namespace

bool Gf2Field::IsIrreducible(uint64_t poly_low, int degree) {
  MCF0_CHECK(degree >= 1 && degree <= 64);
  if (degree == 1) return true;  // x + c is always irreducible
  if ((poly_low & 1) == 0) return false;  // divisible by x
  const Poly128 f = ModulusPoly(poly_low, degree);

  // Rabin: f (deg d) is irreducible iff x^(2^d) == x (mod f) and for every
  // prime p | d, gcd(x^(2^(d/p)) - x, f) = 1. The repeated squarings mod
  // the candidate run on the gf2k kernels (f = x^degree + poly_low is
  // exactly the fold-reduction form).
  auto x_to_2_to = [&](int k) {
    uint64_t e = 2;  // x
    for (int i = 0; i < k; ++i) e = gf2k::Mul(e, e, degree, poly_low);
    return e;
  };

  if (x_to_2_to(degree) != 2) return false;

  // For each prime p | d, gcd(x^(2^(d/p)) - x, f) must be 1. A zero
  // witness means f divides x^(2^(d/p)) - x, i.e. every factor of f has
  // degree dividing d/p < d — certainly reducible.
  auto factor_check = [&](int p) {
    Poly128 g;
    g.lo = x_to_2_to(degree / p) ^ 2;  // x^(2^(d/p)) - x  (mod f)
    if (g.IsZero()) return false;
    return PolyGcd(f, g).Degree() <= 0;
  };
  int d = degree;
  for (int p = 2; p * p <= d; ++p) {
    if (d % p != 0) continue;
    while (d % p == 0) d /= p;
    if (!factor_check(p)) return false;
  }
  if (d > 1 && !factor_check(d)) return false;  // remaining prime factor
  return true;
}

namespace {

/// One actual irreducibility scan for degree w. Counted so the
/// per-degree cache below can be pinned to "one scan per degree, ever"
/// (tests/gf2_poly_test.cpp).
uint64_t ScanForModulusLow(int w) {
  static obs::Counter* scans =
      obs::Registry::Global().GetCounter("mcf0_gf2_modulus_scans_total");
  scans->Increment();
  const uint64_t mask = (w == 64) ? ~0ull : ((1ull << w) - 1);
  // Scan odd low-parts for the first irreducible modulus. Irreducible
  // polynomials have density ~1/w, so this terminates quickly.
  for (uint64_t low = 1;; low += 2) {
    MCF0_CHECK(low <= mask);
    if (Gf2Field::IsIrreducible(low, w)) return low;
  }
}

/// Memoized modulus per degree: decode/replay paths rebuild fields for
/// the same w over and over, and the scan is the expensive part of
/// construction. call_once keeps it thread-safe and at-most-once.
uint64_t CachedModulusLow(int w) {
  struct Slot {
    std::once_flag once;
    uint64_t low = 0;
  };
  static std::array<Slot, 65> slots;  // indexed by w in [1, 64]
  Slot& slot = slots[static_cast<size_t>(w)];
  std::call_once(slot.once, [&slot, w] { slot.low = ScanForModulusLow(w); });
  return slot.low;
}

}  // namespace

Gf2Field::Gf2Field(int w) : w_(w) {
  MCF0_CHECK(w >= 1 && w <= 64);
  mask_ = (w == 64) ? ~0ull : ((1ull << w) - 1);
  mod_low_ = CachedModulusLow(w);
}

uint64_t Gf2Field::Mul(uint64_t a, uint64_t b) const {
  MCF0_DCHECK((a & ~mask_) == 0 && (b & ~mask_) == 0);
  return gf2k::Mul(a, b, w_, mod_low_);
}

uint64_t Gf2Field::Pow(uint64_t a, uint64_t e) const {
  uint64_t result = 1;
  uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

PolynomialHash::PolynomialHash(const Gf2Field* field,
                               std::vector<uint64_t> coeffs)
    : field_(field), coeffs_(std::move(coeffs)) {
  MCF0_CHECK(field_ != nullptr);
  MCF0_CHECK(!coeffs_.empty());
}

PolynomialHash PolynomialHash::Sample(const Gf2Field* field, int s, Rng& rng) {
  MCF0_CHECK(s >= 1);
  const uint64_t mask =
      (field->degree() == 64) ? ~0ull : ((1ull << field->degree()) - 1);
  std::vector<uint64_t> coeffs(s);
  for (auto& c : coeffs) c = rng.NextU64() & mask;
  return PolynomialHash(field, std::move(coeffs));
}

uint64_t PolynomialHash::Eval(uint64_t x) const {
  const uint64_t mask =
      (field_->degree() == 64) ? ~0ull : ((1ull << field_->degree()) - 1);
  x &= mask;
  // Horner: (((a_{s-1} x + a_{s-2}) x + ...) x + a_0).
  uint64_t acc = coeffs_.back();
  for (size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = field_->Mul(acc, x) ^ coeffs_[i];
  }
  return acc;
}

void PolynomialHash::EvalBatch(std::span<const uint64_t> xs,
                               std::span<uint64_t> out) const {
  MCF0_CHECK(xs.size() == out.size());
  gf2k::HornerBatch(coeffs_, xs, out, field_->degree(),
                    field_->modulus_low());
}

}  // namespace mcf0
