#include "hash/gf2_poly.hpp"

#include <bit>
#if defined(__x86_64__)
#include <wmmintrin.h>
#include <smmintrin.h>
#endif

#include "common/rng.hpp"

namespace mcf0 {
namespace {

/// Polynomial over GF(2) of degree <= 127 as two words (lo = x^0..x^63).
struct Poly128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool IsZero() const { return hi == 0 && lo == 0; }

  int Degree() const {
    if (hi != 0) return 127 - std::countl_zero(hi);
    if (lo != 0) return 63 - std::countl_zero(lo);
    return -1;  // zero polynomial
  }

  void XorShifted(Poly128 f, int shift) {
    // *this ^= f * x^shift; caller guarantees no overflow past bit 127.
    if (shift == 0) {
      hi ^= f.hi;
      lo ^= f.lo;
      return;
    }
    if (shift >= 64) {
      hi ^= f.lo << (shift - 64);
      return;
    }
    hi ^= (f.hi << shift) | (f.lo >> (64 - shift));
    lo ^= f.lo << shift;
  }
};

#if defined(__x86_64__)
/// Hardware carry-less multiply (PCLMULQDQ), selected at runtime.
__attribute__((target("pclmul,sse4.1"))) Poly128 ClmulHw(uint64_t a,
                                                         uint64_t b) {
  const __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
  const __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
  const __m128i prod = _mm_clmulepi64_si128(va, vb, 0x00);
  Poly128 p;
  p.lo = static_cast<uint64_t>(_mm_cvtsi128_si64(prod));
  p.hi = static_cast<uint64_t>(_mm_extract_epi64(prod, 1));
  return p;
}
#endif

/// Portable carry-less 64x64 -> 128 multiplication (shift-and-xor).
Poly128 ClmulPortable(uint64_t a, uint64_t b) {
  Poly128 p;
  while (b != 0) {
    const int i = std::countr_zero(b);
    b &= b - 1;
    p.lo ^= a << i;
    if (i != 0) p.hi ^= a >> (64 - i);
  }
  return p;
}

Poly128 Clmul(uint64_t a, uint64_t b) {
#if defined(__x86_64__)
  static const bool kHasPclmul = __builtin_cpu_supports("pclmul") != 0;
  if (kHasPclmul) return ClmulHw(a, b);
#endif
  return ClmulPortable(a, b);
}

/// p mod f for a nonzero modulus polynomial f (deg f >= 0; anything mod a
/// nonzero constant is 0, which the loop below produces naturally).
Poly128 PolyMod(Poly128 p, Poly128 f) {
  const int df = f.Degree();
  MCF0_DCHECK(df >= 0);
  int dp = p.Degree();
  while (dp >= df) {
    p.XorShifted(f, dp - df);
    dp = p.Degree();
  }
  return p;
}

Poly128 PolyGcd(Poly128 a, Poly128 b) {
  while (!b.IsZero()) {
    Poly128 r = PolyMod(a, b);
    a = b;
    b = r;
  }
  return a;
}

/// Multiplication in GF(2)[x] mod f, for operands of degree < deg f <= 64.
uint64_t MulMod(uint64_t a, uint64_t b, Poly128 f) {
  Poly128 p = Clmul(a, b);
  p = PolyMod(p, f);
  return p.lo;
}

Poly128 ModulusPoly(uint64_t poly_low, int degree) {
  Poly128 f;
  f.lo = poly_low;
  if (degree == 64) {
    f.hi = 1;
  } else {
    f.lo |= 1ull << degree;
  }
  return f;
}

}  // namespace

bool Gf2Field::IsIrreducible(uint64_t poly_low, int degree) {
  MCF0_CHECK(degree >= 1 && degree <= 64);
  if (degree == 1) return true;  // x + c is always irreducible
  if ((poly_low & 1) == 0) return false;  // divisible by x
  const Poly128 f = ModulusPoly(poly_low, degree);

  // Rabin: f (deg d) is irreducible iff x^(2^d) == x (mod f) and for every
  // prime p | d, gcd(x^(2^(d/p)) - x, f) = 1.
  auto x_to_2_to = [&](int k) {
    uint64_t e = 2;  // x
    for (int i = 0; i < k; ++i) e = MulMod(e, e, f);
    return e;
  };

  if (x_to_2_to(degree) != 2) return false;

  // For each prime p | d, gcd(x^(2^(d/p)) - x, f) must be 1. A zero
  // witness means f divides x^(2^(d/p)) - x, i.e. every factor of f has
  // degree dividing d/p < d — certainly reducible.
  auto factor_check = [&](int p) {
    Poly128 g;
    g.lo = x_to_2_to(degree / p) ^ 2;  // x^(2^(d/p)) - x  (mod f)
    if (g.IsZero()) return false;
    return PolyGcd(f, g).Degree() <= 0;
  };
  int d = degree;
  for (int p = 2; p * p <= d; ++p) {
    if (d % p != 0) continue;
    while (d % p == 0) d /= p;
    if (!factor_check(p)) return false;
  }
  if (d > 1 && !factor_check(d)) return false;  // remaining prime factor
  return true;
}

Gf2Field::Gf2Field(int w) : w_(w) {
  MCF0_CHECK(w >= 1 && w <= 64);
  mask_ = (w == 64) ? ~0ull : ((1ull << w) - 1);
  // Scan odd low-parts for the first irreducible modulus. Irreducible
  // polynomials have density ~1/w, so this terminates quickly.
  for (uint64_t low = 1;; low += 2) {
    MCF0_CHECK(low <= mask_);
    if (IsIrreducible(low, w)) {
      mod_low_ = low;
      break;
    }
  }
}

uint64_t Gf2Field::Mul(uint64_t a, uint64_t b) const {
  MCF0_DCHECK((a & ~mask_) == 0 && (b & ~mask_) == 0);
  return MulMod(a, b, ModulusPoly(mod_low_, w_));
}

uint64_t Gf2Field::Pow(uint64_t a, uint64_t e) const {
  uint64_t result = 1;
  uint64_t base = a;
  while (e != 0) {
    if (e & 1) result = Mul(result, base);
    base = Mul(base, base);
    e >>= 1;
  }
  return result;
}

PolynomialHash::PolynomialHash(const Gf2Field* field,
                               std::vector<uint64_t> coeffs)
    : field_(field), coeffs_(std::move(coeffs)) {
  MCF0_CHECK(field_ != nullptr);
  MCF0_CHECK(!coeffs_.empty());
}

PolynomialHash PolynomialHash::Sample(const Gf2Field* field, int s, Rng& rng) {
  MCF0_CHECK(s >= 1);
  const uint64_t mask =
      (field->degree() == 64) ? ~0ull : ((1ull << field->degree()) - 1);
  std::vector<uint64_t> coeffs(s);
  for (auto& c : coeffs) c = rng.NextU64() & mask;
  return PolynomialHash(field, std::move(coeffs));
}

uint64_t PolynomialHash::Eval(uint64_t x) const {
  const uint64_t mask =
      (field_->degree() == 64) ? ~0ull : ((1ull << field_->degree()) - 1);
  x &= mask;
  // Horner: (((a_{s-1} x + a_{s-2}) x + ...) x + a_0).
  uint64_t acc = coeffs_.back();
  for (size_t i = coeffs_.size() - 1; i-- > 0;) {
    acc = field_->Mul(acc, x) ^ coeffs_[i];
  }
  return acc;
}

}  // namespace mcf0
