/// \file delphic.hpp
/// \brief Delphic sets and the APS-Estimator (Remark 2, §5).
///
/// Subsequent to the paper, Meel-Vinodchandran-Chakraborty (PODS 2021)
/// introduced F0 estimation over *Delphic* sets: S ⊆ {0,1}^n belongs to
/// the Delphic family when three queries run in O(n) time — |S|, a uniform
/// random sample from S, and membership. Multidimensional ranges and
/// affine spaces are Delphic (DNF sets are not: sizing a DNF is #P-hard).
///
/// The APS-Estimator maintains a p-subsample X of the running union with
/// p halved whenever the buffer overflows:
///   on item S: X := X \ S; X := X ∪ (p-subsample of S);
///              while |X| > capacity: p /= 2, X := half-subsample(X).
/// Estimate = |X| / p. Per-item time is poly(n, 1/eps, log(1/delta)) with
/// NO dependence on the structure of S beyond the three queries — in
/// particular polynomial in the dimension d for ranges, where the paper's
/// Lemma 4 DNF route pays (2n)^d. Experiment E16 measures that contrast.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "gf2/affine_image.hpp"
#include "gf2/bitvec.hpp"
#include "setstream/range.hpp"

namespace mcf0 {

/// A set over {0,1}^n supporting the three Delphic queries.
class DelphicSet {
 public:
  virtual ~DelphicSet() = default;

  /// Universe width n in bits.
  virtual int width() const = 0;

  /// |S|; Delphic sets used here have sizes < 2^62.
  virtual uint64_t Size() const = 0;

  /// A uniform random element of S.
  virtual BitVec Sample(Rng& rng) const = 0;

  /// Membership test.
  virtual bool Contains(const BitVec& x) const = 0;
};

/// A multidimensional range / arithmetic progression as a Delphic set,
/// encoded with dimension j in bit block j (the Lemma 4 layout).
class RangeDelphic final : public DelphicSet {
 public:
  explicit RangeDelphic(MultiDimRange range);

  int width() const override { return range_.TotalBits(); }
  uint64_t Size() const override;
  BitVec Sample(Rng& rng) const override;
  bool Contains(const BitVec& x) const override;

 private:
  MultiDimRange range_;
};

/// An affine solution space {x : A x = b} as a Delphic set.
/// An inconsistent system yields the empty set (Size() == 0).
class AffineDelphic final : public DelphicSet {
 public:
  AffineDelphic(const Gf2Matrix& a, const BitVec& b);

  int width() const override { return width_; }
  uint64_t Size() const override;
  BitVec Sample(Rng& rng) const override;
  bool Contains(const BitVec& x) const override;

 private:
  int width_;
  std::optional<AffineImage> space_;
};

/// Parameters for the APS-Estimator.
struct ApsParams {
  int n = 16;
  double eps = 0.8;
  double delta = 0.2;
  uint64_t seed = 1;
  /// 0 = derive capacity = ceil(60 / eps^2) per row and
  /// rows = ceil(18 log2(1/delta)).
  uint64_t capacity_override = 0;
  int rows_override = 0;
};

/// Median-of-rows APS-Estimator over Delphic set streams; see file comment.
class ApsEstimator {
 public:
  explicit ApsEstimator(const ApsParams& params);

  /// Processes one Delphic set item.
  void Add(const DelphicSet& set);

  /// Estimate of |union of all items|.
  double Estimate() const;

  size_t SpaceBits() const;
  uint64_t capacity() const { return capacity_; }
  int rows() const { return static_cast<int>(rows_.size()); }

 private:
  struct Row {
    int level = 0;  // sampling probability p = 2^-level
    std::set<BitVec> buffer;
    Rng rng;
    Row(Rng r) : rng(r) {}
  };

  void AddToRow(Row* row, const DelphicSet& set);
  /// Keeps each buffered element with probability 1/2 and bumps the level.
  static void HalveRow(Row* row);

  ApsParams params_;
  uint64_t capacity_;
  std::vector<Row> rows_;
};

/// Draws Binomial(trials, 2^-level) by geometric skip simulation in
/// O(result + 1) expected time — used to choose how many elements of an
/// arriving set enter the sample at rate p. Exposed for testing.
uint64_t SampleBinomialPow2(uint64_t trials, int level, Rng& rng);

}  // namespace mcf0
