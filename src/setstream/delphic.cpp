#include "setstream/delphic.hpp"

#include <cmath>

#include "common/median.hpp"
#include "common/rng.hpp"

namespace mcf0 {
namespace {

/// Packs per-dimension coordinates into the Lemma 4 variable layout.
BitVec PackPoint(const MultiDimRange& range,
                 const std::vector<uint64_t>& point) {
  BitVec x(range.TotalBits());
  int offset = 0;
  for (int j = 0; j < range.dims(); ++j) {
    const int bits = range.bits()[j];
    for (int b = 0; b < bits; ++b) {
      if ((point[j] >> (bits - 1 - b)) & 1) x.Set(offset + b, true);
    }
    offset += bits;
  }
  return x;
}

std::vector<uint64_t> UnpackPoint(const MultiDimRange& range, const BitVec& x) {
  std::vector<uint64_t> point(range.dims());
  int offset = 0;
  for (int j = 0; j < range.dims(); ++j) {
    const int bits = range.bits()[j];
    uint64_t v = 0;
    for (int b = 0; b < bits; ++b) {
      v = (v << 1) | (x.Get(offset + b) ? 1 : 0);
    }
    point[j] = v;
    offset += bits;
  }
  return point;
}

}  // namespace

RangeDelphic::RangeDelphic(MultiDimRange range) : range_(std::move(range)) {}

uint64_t RangeDelphic::Size() const {
  __int128 size = 1;
  for (int j = 0; j < range_.dims(); ++j) {
    const DimRange& d = range_.Dim(j);
    const uint64_t step = 1ull << d.log2_step;
    size *= static_cast<__int128>((d.hi - d.lo) / step + 1);
    MCF0_CHECK(size < (static_cast<__int128>(1) << 62));
  }
  return static_cast<uint64_t>(size);
}

BitVec RangeDelphic::Sample(Rng& rng) const {
  std::vector<uint64_t> point(range_.dims());
  for (int j = 0; j < range_.dims(); ++j) {
    const DimRange& d = range_.Dim(j);
    const uint64_t step = 1ull << d.log2_step;
    const uint64_t count = (d.hi - d.lo) / step + 1;
    point[j] = d.lo + rng.NextBelow(count) * step;
  }
  return PackPoint(range_, point);
}

bool RangeDelphic::Contains(const BitVec& x) const {
  MCF0_DCHECK(x.size() == width());
  return range_.Contains(UnpackPoint(range_, x));
}

AffineDelphic::AffineDelphic(const Gf2Matrix& a, const BitVec& b)
    : width_(a.cols()), space_(AffineImage::FromSolutionSpace(a, b)) {}

uint64_t AffineDelphic::Size() const {
  if (!space_.has_value()) return 0;
  MCF0_CHECK(space_->dim() <= 62);
  return 1ull << space_->dim();
}

BitVec AffineDelphic::Sample(Rng& rng) const {
  MCF0_CHECK(space_.has_value());
  return space_->Element(BitVec::Random(space_->dim(), rng));
}

bool AffineDelphic::Contains(const BitVec& x) const {
  return space_.has_value() && space_->Contains(x);
}

uint64_t SampleBinomialPow2(uint64_t trials, int level, Rng& rng) {
  MCF0_CHECK(level >= 0);
  if (trials == 0) return 0;
  if (level == 0) return trials;
  // Geometric skip simulation: expected cost O(trials * 2^-level + 1).
  const double p = std::ldexp(1.0, -level);
  const double log1mp = std::log1p(-p);
  uint64_t count = 0;
  double position = 0.0;  // elements consumed so far (double: trials < 2^62)
  const auto total = static_cast<double>(trials);
  for (;;) {
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-300;  // guard the open interval
    const double skip = std::floor(std::log(u) / log1mp);
    position += skip + 1.0;
    if (position > total) return count;
    ++count;
  }
}

ApsEstimator::ApsEstimator(const ApsParams& params) : params_(params) {
  MCF0_CHECK(params.n >= 1);
  MCF0_CHECK(params.eps > 0 && params.delta > 0 && params.delta < 1);
  capacity_ = params.capacity_override > 0
                  ? params.capacity_override
                  : static_cast<uint64_t>(
                        std::ceil(60.0 / (params.eps * params.eps)));
  const int rows =
      params.rows_override > 0
          ? params.rows_override
          : static_cast<int>(std::ceil(18.0 * std::log2(1.0 / params.delta)));
  Rng seed_rng(params.seed);
  rows_.reserve(rows);
  for (int i = 0; i < rows; ++i) rows_.emplace_back(seed_rng.Fork());
}

void ApsEstimator::HalveRow(Row* row) {
  ++row->level;
  for (auto it = row->buffer.begin(); it != row->buffer.end();) {
    if (row->rng.NextBool()) {
      it = row->buffer.erase(it);
    } else {
      ++it;
    }
  }
}

void ApsEstimator::AddToRow(Row* row, const DelphicSet& set) {
  const uint64_t size = set.Size();
  if (size == 0) return;
  // Step 1: the arriving set supersedes earlier evidence of its elements.
  for (auto it = row->buffer.begin(); it != row->buffer.end();) {
    if (set.Contains(*it)) {
      it = row->buffer.erase(it);
    } else {
      ++it;
    }
  }
  // Step 2: pre-shrink so the expected insertion count is manageable;
  // halving the buffer first keeps the p-subsample invariant.
  while (std::ldexp(static_cast<double>(size), -row->level) >
         2.0 * static_cast<double>(capacity_)) {
    HalveRow(row);
  }
  // Step 3: insert a p-subsample of the set — Binomial count, then a
  // uniform subset of that cardinality via rejection sampling.
  const uint64_t count = SampleBinomialPow2(size, row->level, row->rng);
  std::set<BitVec> fresh;
  uint64_t attempts = 0;
  const uint64_t attempt_cap = 64 * count + 256;
  while (fresh.size() < count && attempts < attempt_cap) {
    fresh.insert(set.Sample(row->rng));
    ++attempts;
  }
  MCF0_CHECK(fresh.size() == count);
  for (const BitVec& x : fresh) row->buffer.insert(x);
  // Step 4: enforce capacity.
  while (row->buffer.size() > capacity_) HalveRow(row);
}

void ApsEstimator::Add(const DelphicSet& set) {
  MCF0_CHECK(set.width() == params_.n);
  for (Row& row : rows_) AddToRow(&row, set);
}

double ApsEstimator::Estimate() const {
  std::vector<double> estimates;
  estimates.reserve(rows_.size());
  for (const Row& row : rows_) {
    estimates.push_back(std::ldexp(static_cast<double>(row.buffer.size()),
                                   row.level));
  }
  return Median(std::move(estimates));
}

size_t ApsEstimator::SpaceBits() const {
  size_t bits = 0;
  for (const Row& row : rows_) {
    bits += row.buffer.size() * static_cast<size_t>(params_.n) + 8;
  }
  return bits;
}

}  // namespace mcf0
