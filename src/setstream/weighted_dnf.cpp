#include "setstream/weighted_dnf.hpp"

#include <cmath>

namespace mcf0 {

double ExactWeightedDnf(const Dnf& dnf, const std::vector<VarWeight>& weights) {
  const int n = dnf.num_vars();
  MCF0_CHECK(n <= 25);
  MCF0_CHECK(static_cast<int>(weights.size()) == n);
  std::vector<double> rho(n);
  for (int i = 0; i < n; ++i) {
    MCF0_CHECK(weights[i].m >= 1 && weights[i].m <= 20);
    MCF0_CHECK(weights[i].k >= 1 && weights[i].k < (1ull << weights[i].m));
    rho[i] = static_cast<double>(weights[i].k) / std::pow(2.0, weights[i].m);
  }
  double total = 0.0;
  BitVec x(n);
  const uint64_t count = 1ull << n;
  for (uint64_t v = 0; v < count; ++v) {
    if (dnf.Eval(x)) {
      double w = 1.0;
      for (int i = 0; i < n; ++i) w *= x.Get(i) ? rho[i] : (1.0 - rho[i]);
      total += w;
    }
    x.Increment();
  }
  return total;
}

MultiDimRange TermToWeightRange(const Term& term, int num_vars,
                                const std::vector<VarWeight>& weights) {
  MCF0_CHECK(static_cast<int>(weights.size()) == num_vars);
  std::vector<int> bits(num_vars);
  for (int i = 0; i < num_vars; ++i) bits[i] = weights[i].m;
  MultiDimRange range(std::move(bits));
  for (const Lit& l : term.lits()) {
    const VarWeight& w = weights[l.var];
    if (!l.neg) {
      // x_i: coordinate in [0, k_i - 1] (the paper's [1, k_i], 0-based).
      range.SetDim(l.var, DimRange{0, w.k - 1, 0});
    } else {
      // not x_i: coordinate in [k_i, 2^{m_i} - 1].
      range.SetDim(l.var, DimRange{w.k, (1ull << w.m) - 1, 0});
    }
  }
  return range;
}

double WeightedDnfViaRanges(const Dnf& dnf,
                            const std::vector<VarWeight>& weights,
                            StructuredF0Params params) {
  int total_bits = 0;
  for (const VarWeight& w : weights) total_bits += w.m;
  params.n = total_bits;
  StructuredF0 estimator(params);
  for (const Term& t : dnf.terms()) {
    estimator.AddRange(TermToWeightRange(t, dnf.num_vars(), weights));
  }
  return estimator.Estimate() / std::pow(2.0, total_bits);
}

}  // namespace mcf0
