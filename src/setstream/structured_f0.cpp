#include "setstream/structured_f0.hpp"

#include <cmath>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "gf2/affine_image.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/find_min.hpp"
#include "setstream/range_to_dnf.hpp"

namespace mcf0 {
namespace {

/// Solutions of {x : a x = b} inside the prefix cell h_m^{-1}(0^m), as an
/// affine subspace of x-space (nullopt if empty).
std::optional<AffineImage> AffineCellSolutions(const Gf2Matrix& a,
                                               const BitVec& b,
                                               const AffineHash& h, int m) {
  Gf2Matrix stacked = a.StackBelow(h.A().PrefixRows(m));
  BitVec rhs = b.Concat(h.b().Prefix(m));
  return AffineImage::FromSolutionSpace(stacked, rhs);
}

}  // namespace

StructuredF0::StructuredF0(const StructuredF0Params& params)
    : params_(params) {
  MCF0_CHECK(params.n >= 1);
  MCF0_CHECK(params.eps > 0 && params.delta > 0 && params.delta < 1);
  thresh_ = params.thresh_override > 0
                ? params.thresh_override
                : static_cast<uint64_t>(
                      std::ceil(96.0 / (params.eps * params.eps)));
  const int rows =
      params.rows_override > 0
          ? params.rows_override
          : static_cast<int>(std::ceil(35.0 * std::log2(1.0 / params.delta)));
  Rng rng(params.seed);
  for (int i = 0; i < rows; ++i) {
    if (params.algorithm == StructuredF0Algorithm::kMinimum) {
      min_rows_.emplace_back(
          AffineHash::SampleToeplitz(params.n, 3 * params.n, rng), thresh_);
    } else {
      bucket_rows_.push_back(
          BucketRow{AffineHash::SampleToeplitz(params.n, params.n, rng),
                    0,
                    {}});
    }
  }
}

void StructuredF0::AddDnf(const Dnf& dnf) {
  MCF0_CHECK(dnf.num_vars() == params_.n);
  AddTerms(dnf.terms());
}

void StructuredF0::AddTerms(const std::vector<Term>& terms) {
  if (terms.empty()) return;
  for (auto& row : min_rows_) {
    // B' of Theorem 5: the Thresh smallest values of h(Sol(item)), merged
    // into the row's KMV sketch.
    std::vector<AffineImage> images;
    images.reserve(terms.size());
    for (const Term& t : terms) {
      images.push_back(TermImageUnderHash(t, params_.n, row.hash()));
    }
    UnionLexEnumerator merge(std::move(images));
    for (uint64_t i = 0; i < thresh_; ++i) {
      auto v = merge.Next();
      if (!v.has_value()) break;
      row.AddHashed(*v);
    }
  }
  for (auto& row : bucket_rows_) BucketAddTerms(&row, terms);
}

void StructuredF0::BucketAddTerms(BucketRow* row,
                                  const std::vector<Term>& terms) {
  for (;;) {
    // Enumerate the item's solutions inside the current cell; on overflow
    // escalate the level, filter the bucket, and re-enumerate the item
    // against the smaller cell.
    std::vector<AffineImage> pieces;
    for (const Term& t : terms) {
      auto piece = TermCellSolutions(t, params_.n, row->h, row->level);
      if (piece.has_value()) pieces.push_back(std::move(*piece));
    }
    UnionLexEnumerator merge(std::move(pieces));
    bool overflow = false;
    for (auto x = merge.Next(); x.has_value(); x = merge.Next()) {
      row->bucket.insert(*x);
      if (row->bucket.size() > thresh_ && row->level < params_.n) {
        ++row->level;
        for (auto it = row->bucket.begin(); it != row->bucket.end();) {
          if (!row->h.EvalPrefix(*it, row->level).IsZero()) {
            it = row->bucket.erase(it);
          } else {
            ++it;
          }
        }
        overflow = true;
        break;
      }
    }
    if (!overflow) return;
  }
}

void StructuredF0::BucketAddAffine(BucketRow* row, const Gf2Matrix& a,
                                   const BitVec& b) {
  for (;;) {
    auto piece = AffineCellSolutions(a, b, row->h, row->level);
    if (!piece.has_value()) return;
    bool overflow = false;
    BitVec cur = piece->Min();
    for (std::optional<BitVec> x = cur;; x = piece->MinGt(*x)) {
      if (!x.has_value()) break;
      row->bucket.insert(*x);
      if (row->bucket.size() > thresh_ && row->level < params_.n) {
        ++row->level;
        for (auto it = row->bucket.begin(); it != row->bucket.end();) {
          if (!row->h.EvalPrefix(*it, row->level).IsZero()) {
            it = row->bucket.erase(it);
          } else {
            ++it;
          }
        }
        overflow = true;
        break;
      }
    }
    if (!overflow) return;
  }
}

void StructuredF0::AddRange(const MultiDimRange& range) {
  MCF0_CHECK(range.TotalBits() == params_.n);
  RangeTermEnumerator terms(range);
  AddTerms(terms.AllTerms());
}

void StructuredF0::AddAffine(const Gf2Matrix& a, const BitVec& b) {
  MCF0_CHECK(a.cols() == params_.n);
  for (auto& row : min_rows_) {
    auto image = AffineImageUnderHash(a, b, row.hash());
    if (!image.has_value()) continue;  // empty set
    BitVec tau(image->dim());
    for (uint64_t i = 0; i < thresh_; ++i) {
      row.AddHashed(image->Element(tau));
      if (!tau.Increment()) break;
    }
  }
  for (auto& row : bucket_rows_) BucketAddAffine(&row, a, b);
}

void StructuredF0::AddCnf(const Cnf& cnf) {
  MCF0_CHECK(cnf.num_vars() == params_.n);
  CnfOracle oracle(cnf);
  for (auto& row : min_rows_) {
    // Observation 2 path: the row's B' computed by oracle prefix search.
    for (const BitVec& v : FindMinCnf(oracle, row.hash(), thresh_)) {
      row.AddHashed(v);
    }
  }
  for (auto& row : bucket_rows_) {
    // Enumerate the item's solutions inside the current cell via the
    // oracle, escalating the level on overflow as in BucketAddTerms.
    for (;;) {
      const BoundedSatResult cell =
          BoundedSatCnf(oracle, row.h, row.level, thresh_ + 1);
      bool overflow = false;
      for (const BitVec& x : cell.solutions) {
        row.bucket.insert(x);
        if (row.bucket.size() > thresh_ && row.level < params_.n) {
          ++row.level;
          for (auto it = row.bucket.begin(); it != row.bucket.end();) {
            if (!row.h.EvalPrefix(*it, row.level).IsZero()) {
              it = row.bucket.erase(it);
            } else {
              ++it;
            }
          }
          overflow = true;
          break;
        }
      }
      if (!overflow && cell.saturated && row.level >= params_.n) {
        break;  // cannot refine further; bucket stays saturated
      }
      if (!overflow) break;
    }
  }
  oracle_calls_ += oracle.num_calls();
}

void StructuredF0::AddElement(const BitVec& x) {
  MCF0_CHECK(x.size() == params_.n);
  for (auto& row : min_rows_) {
    row.AddHashed(row.hash().Eval(x));
  }
  for (auto& row : bucket_rows_) {
    if (row.h.EvalPrefix(x, row.level).IsZero()) {
      row.bucket.insert(x);
      // Singleton overflow handling mirrors the classic sketch.
      while (row.bucket.size() > thresh_ && row.level < params_.n) {
        ++row.level;
        for (auto it = row.bucket.begin(); it != row.bucket.end();) {
          if (!row.h.EvalPrefix(*it, row.level).IsZero()) {
            it = row.bucket.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
}

double StructuredF0::Estimate() const {
  std::vector<double> estimates;
  for (const auto& row : min_rows_) estimates.push_back(row.Estimate());
  for (const auto& row : bucket_rows_) {
    estimates.push_back(static_cast<double>(row.bucket.size()) *
                        std::pow(2.0, row.level));
  }
  return Median(std::move(estimates));
}

size_t StructuredF0::SpaceBits() const {
  size_t bits = 0;
  for (const auto& row : min_rows_) bits += row.SpaceBits();
  for (const auto& row : bucket_rows_) {
    bits += row.bucket.size() * static_cast<size_t>(params_.n) +
            row.h.RepresentationBits();
  }
  return bits;
}

}  // namespace mcf0
