#include "setstream/structured_f0.hpp"

#include <cmath>
#include <utility>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "gf2/affine_image.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/find_min.hpp"
#include "setstream/range_to_dnf.hpp"

namespace mcf0 {
namespace {

/// Solutions of {x : a x = b} inside the prefix cell h_m^{-1}(0^m), as an
/// affine subspace of x-space (nullopt if empty).
std::optional<AffineImage> AffineCellSolutions(const Gf2Matrix& a,
                                               const BitVec& b,
                                               const AffineHash& h, int m) {
  Gf2Matrix stacked = a.StackBelow(h.A().PrefixRows(m));
  BitVec rhs = b.Concat(h.b().Prefix(m));
  return AffineImage::FromSolutionSpace(stacked, rhs);
}

}  // namespace

uint64_t StructuredF0Thresh(const StructuredF0Params& params) {
  if (params.thresh_override > 0) return params.thresh_override;
  const double thresh = std::ceil(96.0 / (params.eps * params.eps));
  // Casting past 2^64 is UB; the wire decoder bounds eps before reaching
  // here (exactly as for the raw-sketch F0Thresh).
  MCF0_CHECK(thresh <= 9.0e18);
  return static_cast<uint64_t>(thresh);
}

int StructuredF0Rows(const StructuredF0Params& params) {
  if (params.rows_override > 0) return params.rows_override;
  return static_cast<int>(std::ceil(35.0 * std::log2(1.0 / params.delta)));
}

// ---- StructuredBucketRow --------------------------------------------------

StructuredBucketRow::StructuredBucketRow(AffineHash h, uint64_t thresh)
    : thresh_(thresh), h_(std::move(h)) {
  MCF0_CHECK(h_.n() >= 1 && h_.m() == h_.n());
  MCF0_CHECK(thresh >= 1);
}

StructuredBucketRow::StructuredBucketRow(AffineHash h, uint64_t thresh,
                                         int level, std::set<BitVec> bucket)
    : thresh_(thresh),
      h_(std::move(h)),
      level_(level),
      bucket_(std::move(bucket)) {
  MCF0_CHECK(h_.n() >= 1 && h_.m() == h_.n());
  MCF0_CHECK(thresh >= 1);
  MCF0_CHECK(level >= 0 && level <= h_.n());
}

bool StructuredBucketRow::InCell(const BitVec& x, int level) const {
  return h_.EvalPrefix(x, level).IsZero();
}

void StructuredBucketRow::FilterToLevel() {
  for (auto it = bucket_.begin(); it != bucket_.end();) {
    if (!InCell(*it, level_)) {
      it = bucket_.erase(it);
    } else {
      ++it;
    }
  }
}

bool StructuredBucketRow::InsertInCell(const BitVec& x) {
  MCF0_DCHECK(x.size() == h_.n());
  bucket_.insert(x);
  if (bucket_.size() > thresh_ && level_ < h_.n()) {
    ++level_;
    FilterToLevel();
    return true;
  }
  return false;
}

void StructuredBucketRow::AddElement(const BitVec& x) {
  if (!InCell(x, level_)) return;
  bucket_.insert(x);
  while (bucket_.size() > thresh_ && level_ < h_.n()) {
    ++level_;
    FilterToLevel();
  }
}

double StructuredBucketRow::Estimate() const {
  return static_cast<double>(bucket_.size()) * std::pow(2.0, level_);
}

size_t StructuredBucketRow::SpaceBits() const {
  return bucket_.size() * static_cast<size_t>(h_.n()) +
         h_.RepresentationBits() + /*level counter*/ 8;
}

// ---- StructuredF0RowSampler -----------------------------------------------

StructuredF0RowSampler::StructuredF0RowSampler(const StructuredF0Params& params)
    : params_(params), rng_(params.seed) {
  // Validate before deriving (StructuredF0Thresh casts 96/eps^2).
  MCF0_CHECK(params.n >= 1);
  MCF0_CHECK(params.eps > 0 && params.delta > 0 && params.delta < 1);
  thresh_ = StructuredF0Thresh(params);
}

MinimumSketchRow StructuredF0RowSampler::NextMinimumRow() {
  MCF0_CHECK(params_.algorithm == StructuredF0Algorithm::kMinimum);
  internal::BumpSamplerRowDraws();
  return MinimumSketchRow(
      AffineHash::SampleToeplitz(params_.n, 3 * params_.n, rng_), thresh_);
}

StructuredBucketRow StructuredF0RowSampler::NextBucketingRow() {
  MCF0_CHECK(params_.algorithm == StructuredF0Algorithm::kBucketing);
  internal::BumpSamplerRowDraws();
  return StructuredBucketRow(
      AffineHash::SampleToeplitz(params_.n, params_.n, rng_), thresh_);
}

// ---- StructuredF0 ---------------------------------------------------------

StructuredF0::StructuredF0(const StructuredF0Params& params)
    : params_(params), hashes_canonical_(true) {
  // Canonical by construction, exactly as in F0Estimator: the sampler
  // replays params.seed, so structured v2 frames may elide hash state.
  StructuredF0RowSampler sampler(params);
  thresh_ = StructuredF0Thresh(params);
  const int rows = StructuredF0Rows(params);
  for (int i = 0; i < rows; ++i) {
    if (params.algorithm == StructuredF0Algorithm::kMinimum) {
      min_rows_.push_back(sampler.NextMinimumRow());
    } else {
      bucket_rows_.push_back(sampler.NextBucketingRow());
    }
  }
}

StructuredF0::Parts StructuredF0::ReleaseParts() && {
  Parts parts;
  parts.params = params_;
  parts.minimum = std::move(min_rows_);
  parts.bucketing = std::move(bucket_rows_);
  parts.oracle_calls = oracle_calls_;
  parts.hashes_canonical = hashes_canonical_;
  return parts;
}

StructuredF0 StructuredF0::FromParts(Parts parts) {
  const size_t rows = static_cast<size_t>(StructuredF0Rows(parts.params));
  if (parts.params.algorithm == StructuredF0Algorithm::kMinimum) {
    MCF0_CHECK(parts.minimum.size() == rows && parts.bucketing.empty());
  } else {
    MCF0_CHECK(parts.bucketing.size() == rows && parts.minimum.empty());
  }
  StructuredF0 sketch;
  sketch.params_ = parts.params;
  sketch.thresh_ = StructuredF0Thresh(parts.params);
  sketch.oracle_calls_ = parts.oracle_calls;
  sketch.hashes_canonical_ = parts.hashes_canonical;
  sketch.min_rows_ = std::move(parts.minimum);
  sketch.bucket_rows_ = std::move(parts.bucketing);
  return sketch;
}

void StructuredF0::AddDnf(const Dnf& dnf) {
  MCF0_CHECK(dnf.num_vars() == params_.n);
  AddTerms(dnf.terms());
}

void StructuredF0::AddTerms(const std::vector<Term>& terms) {
  if (terms.empty()) return;
  for (auto& row : min_rows_) {
    // B' of Theorem 5: the Thresh smallest values of h(Sol(item)), merged
    // into the row's KMV sketch.
    std::vector<AffineImage> images;
    images.reserve(terms.size());
    for (const Term& t : terms) {
      images.push_back(TermImageUnderHash(t, params_.n, row.hash()));
    }
    UnionLexEnumerator merge(std::move(images));
    for (uint64_t i = 0; i < thresh_; ++i) {
      auto v = merge.Next();
      if (!v.has_value()) break;
      row.AddHashed(*v);
    }
  }
  for (auto& row : bucket_rows_) BucketAddTerms(&row, terms);
}

void StructuredF0::BucketAddTerms(StructuredBucketRow* row,
                                  const std::vector<Term>& terms) {
  for (;;) {
    // Enumerate the item's solutions inside the current cell; on overflow
    // the row escalates one level (filtering its bucket) and we
    // re-enumerate the item against the smaller cell.
    std::vector<AffineImage> pieces;
    for (const Term& t : terms) {
      auto piece = TermCellSolutions(t, params_.n, row->hash(), row->level());
      if (piece.has_value()) pieces.push_back(std::move(*piece));
    }
    UnionLexEnumerator merge(std::move(pieces));
    bool overflow = false;
    for (auto x = merge.Next(); x.has_value(); x = merge.Next()) {
      if (row->InsertInCell(*x)) {
        overflow = true;
        break;
      }
    }
    if (!overflow) return;
  }
}

void StructuredF0::BucketAddAffine(StructuredBucketRow* row,
                                   const Gf2Matrix& a, const BitVec& b) {
  for (;;) {
    auto piece = AffineCellSolutions(a, b, row->hash(), row->level());
    if (!piece.has_value()) return;
    bool overflow = false;
    BitVec cur = piece->Min();
    for (std::optional<BitVec> x = cur;; x = piece->MinGt(*x)) {
      if (!x.has_value()) break;
      if (row->InsertInCell(*x)) {
        overflow = true;
        break;
      }
    }
    if (!overflow) return;
  }
}

void StructuredF0::AddRange(const MultiDimRange& range) {
  MCF0_CHECK(range.TotalBits() == params_.n);
  RangeTermEnumerator terms(range);
  AddTerms(terms.AllTerms());
}

void StructuredF0::AddAffine(const Gf2Matrix& a, const BitVec& b) {
  MCF0_CHECK(a.cols() == params_.n);
  for (auto& row : min_rows_) {
    auto image = AffineImageUnderHash(a, b, row.hash());
    if (!image.has_value()) continue;  // empty set
    BitVec tau(image->dim());
    for (uint64_t i = 0; i < thresh_; ++i) {
      row.AddHashed(image->Element(tau));
      if (!tau.Increment()) break;
    }
  }
  for (auto& row : bucket_rows_) BucketAddAffine(&row, a, b);
}

void StructuredF0::AddCnf(const Cnf& cnf) {
  MCF0_CHECK(cnf.num_vars() == params_.n);
  CnfOracle oracle(cnf);
  for (auto& row : min_rows_) {
    // Observation 2 path: the row's B' computed by oracle prefix search.
    for (const BitVec& v : FindMinCnf(oracle, row.hash(), thresh_)) {
      row.AddHashed(v);
    }
  }
  for (auto& row : bucket_rows_) {
    // Enumerate the item's solutions inside the current cell via the
    // oracle, escalating the level on overflow as in BucketAddTerms.
    for (;;) {
      const BoundedSatResult cell =
          BoundedSatCnf(oracle, row.hash(), row.level(), thresh_ + 1);
      bool overflow = false;
      for (const BitVec& x : cell.solutions) {
        if (row.InsertInCell(x)) {
          overflow = true;
          break;
        }
      }
      if (!overflow) break;
    }
  }
  oracle_calls_ += oracle.num_calls();
}

void StructuredF0::AddElement(const BitVec& x) {
  MCF0_CHECK(x.size() == params_.n);
  for (auto& row : min_rows_) {
    row.AddHashed(row.hash().Eval(x));
  }
  for (auto& row : bucket_rows_) {
    row.AddElement(x);
  }
}

double StructuredF0::Estimate() const {
  std::vector<double> estimates;
  for (const auto& row : min_rows_) estimates.push_back(row.Estimate());
  for (const auto& row : bucket_rows_) estimates.push_back(row.Estimate());
  return Median(std::move(estimates));
}

size_t StructuredF0::SpaceBits() const {
  size_t bits = 0;
  for (const auto& row : min_rows_) bits += row.SpaceBits();
  for (const auto& row : bucket_rows_) bits += row.SpaceBits();
  return bits;
}

}  // namespace mcf0
