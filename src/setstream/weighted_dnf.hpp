/// \file weighted_dnf.hpp
/// \brief Weighted #DNF via the reduction to multidimensional ranges (§5).
///
/// Weights rho(x_i) = k_i / 2^{m_i} induce W(sigma) = prod rho or (1-rho)
/// per literal value, and W(phi) = sum over solutions. Following the
/// Chakraborty et al. weighted-to-unweighted idea, each term maps to a
/// product of ranges over coordinates of m_i bits: x_i -> [0, k_i - 1],
/// not-x_i -> [k_i, 2^{m_i} - 1], absent -> full range. Then
/// W(phi) = F0(range stream) / 2^{sum_i m_i}, so any range-efficient F0
/// algorithm yields a weighted #DNF estimator.
#pragma once

#include <cstdint>
#include <vector>

#include "formula/formula.hpp"
#include "setstream/range.hpp"
#include "setstream/structured_f0.hpp"

namespace mcf0 {

/// Dyadic weight of one variable: rho = k / 2^m, 1 <= k <= 2^m - 1 (so
/// neither literal has zero weight), m <= 20.
struct VarWeight {
  uint64_t k = 1;
  int m = 1;
};

/// W(phi) by exhaustive enumeration; requires num_vars <= 25. Ground truth.
double ExactWeightedDnf(const Dnf& dnf, const std::vector<VarWeight>& weights);

/// The §5 reduction: the term's product-of-ranges over mixed-width dims.
MultiDimRange TermToWeightRange(const Term& term, int num_vars,
                                const std::vector<VarWeight>& weights);

/// Estimates W(phi) by streaming every term's range into StructuredF0 and
/// scaling the F0 estimate by 2^{-sum m_i}. `params.n` is ignored (derived
/// from the weights).
double WeightedDnfViaRanges(const Dnf& dnf,
                            const std::vector<VarWeight>& weights,
                            StructuredF0Params params);

}  // namespace mcf0
