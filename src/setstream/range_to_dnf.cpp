#include "setstream/range_to_dnf.hpp"

#include <algorithm>
#include <bit>

namespace mcf0 {
namespace {

/// Appends the term fixing the top (nbits - j) bits of the coordinate to
/// `prefix_value >> j`, i.e. the dyadic cube [prefix, prefix + 2^j - 1].
/// Low bits fixed by `low_mask_bits`/`low_value` (arithmetic progressions)
/// are conjoined; an inconsistent combination yields no term.
void EmitCube(uint64_t base, int free_bits, int nbits, int var_offset,
              int fixed_low_bits, uint64_t low_value, std::vector<Term>* out) {
  std::vector<Lit> lits;
  lits.reserve(nbits);
  // Fixed high bits: positions 0 .. nbits - free_bits - 1 (MSB first).
  for (int pos = 0; pos < nbits - free_bits; ++pos) {
    const bool bit = (base >> (nbits - 1 - pos)) & 1;
    lits.emplace_back(var_offset + pos, !bit);
  }
  // Fixed low bits from the progression step (may overlap the cube's fixed
  // high bits; Term::Make rejects contradictions).
  for (int i = 0; i < fixed_low_bits; ++i) {
    const bool bit = (low_value >> i) & 1;
    lits.emplace_back(var_offset + nbits - 1 - i, !bit);
  }
  auto term = Term::Make(std::move(lits));
  if (term.has_value()) out->push_back(std::move(*term));
}

}  // namespace

std::vector<Term> RangeDimensionTerms(uint64_t lo, uint64_t hi, int log2_step,
                                      int nbits, int var_offset) {
  MCF0_CHECK(nbits >= 1 && nbits <= 62);
  MCF0_CHECK(lo <= hi && hi < (1ull << nbits));
  MCF0_CHECK(log2_step >= 0 && log2_step < nbits);
  std::vector<Term> terms;
  // Standard dyadic decomposition of [lo, hi]: greedily peel maximal
  // aligned cubes from both ends. At most 2 * nbits cubes.
  uint64_t a = lo;
  const uint64_t b_plus = hi + 1;  // work half-open [a, b_plus)
  const uint64_t low_value =
      lo & ((log2_step > 0) ? ((1ull << log2_step) - 1) : 0);
  while (a < b_plus) {
    // Largest aligned cube starting at a that fits in [a, b_plus):
    // size 2^j with j bounded by the alignment of a and by the remainder.
    const uint64_t remaining = b_plus - a;
    int j = (a == 0) ? nbits : std::min(nbits, std::countr_zero(a));
    j = std::min(j, 63 - std::countl_zero(remaining));
    EmitCube(a, j, nbits, var_offset, log2_step, low_value, &terms);
    a += 1ull << j;
  }
  return terms;
}

RangeTermEnumerator::RangeTermEnumerator(const MultiDimRange& range) {
  num_vars_ = range.TotalBits();
  per_dim_.reserve(range.dims());
  int offset = 0;
  for (int j = 0; j < range.dims(); ++j) {
    const DimRange& d = range.Dim(j);
    per_dim_.push_back(RangeDimensionTerms(d.lo, d.hi, d.log2_step,
                                           range.bits()[j], offset));
    offset += range.bits()[j];
  }
}

uint64_t RangeTermEnumerator::NumTerms() const {
  uint64_t count = 1;
  for (const auto& terms : per_dim_) {
    count *= static_cast<uint64_t>(terms.size());
  }
  return count;
}

Term RangeTermEnumerator::TermAt(uint64_t i) const {
  MCF0_CHECK(i < NumTerms());
  std::vector<Lit> lits;
  // Mixed-radix digit decomposition of i selects one dyadic piece per dim.
  for (const auto& terms : per_dim_) {
    const uint64_t radix = terms.size();
    const Term& piece = terms[i % radix];
    i /= radix;
    lits.insert(lits.end(), piece.lits().begin(), piece.lits().end());
  }
  auto term = Term::Make(std::move(lits));
  MCF0_CHECK(term.has_value());  // disjoint variable blocks cannot clash
  return std::move(*term);
}

std::vector<Term> RangeTermEnumerator::AllTerms() const {
  const uint64_t count = NumTerms();
  std::vector<Term> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) out.push_back(TermAt(i));
  return out;
}

Dnf RangeToDnf(const MultiDimRange& range) {
  RangeTermEnumerator terms(range);
  Dnf dnf(terms.num_vars());
  const uint64_t count = terms.NumTerms();
  for (uint64_t i = 0; i < count; ++i) dnf.AddTerm(terms.TermAt(i));
  return dnf;
}

}  // namespace mcf0
