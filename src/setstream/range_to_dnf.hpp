/// \file range_to_dnf.hpp
/// \brief The range-to-DNF reduction of Lemma 4 and Corollary 1.
///
/// A one-dimensional range [a, b] over n-bit coordinates decomposes into at
/// most 2n maximal dyadic intervals; each dyadic interval [c 2^j,
/// (c+1) 2^j - 1] is precisely the cube fixing the top n-j bits to c — one
/// DNF term. A d-dimensional range is then the cross product: one term per
/// choice of a dyadic piece in every dimension, at most (2n)^d terms,
/// matching the paper's bound. Arithmetic progressions with power-of-two
/// step conjoin the fixed low bits into each term (Corollary 1).
///
/// Variable layout for a MultiDimRange: dimension j occupies variables
/// [offset_j, offset_j + bits_j), most significant bit first, where
/// offset_j = bits_0 + ... + bits_{j-1}.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "formula/formula.hpp"
#include "setstream/range.hpp"

namespace mcf0 {

/// Dyadic-interval DNF terms of the 1-D range [lo, hi] with the given step
/// (log2_step = 0 for plain ranges), over variables [var_offset,
/// var_offset + nbits). At most 2 * nbits terms.
std::vector<Term> RangeDimensionTerms(uint64_t lo, uint64_t hi, int log2_step,
                                      int nbits, int var_offset);

/// Streams the product terms of a multidimensional range one at a time —
/// the O(nd)-space per-term generation of Lemma 4 (per-dimension
/// decompositions are cached; the cross product is never materialized).
class RangeTermEnumerator {
 public:
  explicit RangeTermEnumerator(const MultiDimRange& range);

  /// Number of product terms (<= prod_j 2 n_j).
  uint64_t NumTerms() const;

  /// The i-th product term, i < NumTerms().
  Term TermAt(uint64_t i) const;

  /// All terms in order (materializes; use only for small counts).
  std::vector<Term> AllTerms() const;

  /// Total variables across dimensions.
  int num_vars() const { return num_vars_; }

 private:
  int num_vars_;
  std::vector<std::vector<Term>> per_dim_;
};

/// Materializes the full DNF of Lemma 4 (small ranges / tests).
Dnf RangeToDnf(const MultiDimRange& range);

}  // namespace mcf0
