/// \file range.hpp
/// \brief Multidimensional ranges and arithmetic progressions (§5).
///
/// A d-dimensional range [a_1, b_1] x ... x [a_d, b_d] over per-dimension
/// universes [0, 2^{n_j}) is the succinct stream item of Theorem 6; an
/// arithmetic progression [a, b, 2^l] (Corollary 1) additionally fixes the
/// low l bits. Coordinates are 0-based (the paper's [1, 2^n] ranges shift
/// by one).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace mcf0 {

class Rng;

/// One dimension: the inclusive range [lo, hi] with a power-of-two step.
struct DimRange {
  uint64_t lo = 0;
  uint64_t hi = 0;
  int log2_step = 0;  ///< 0 for plain ranges; l for step 2^l (Corollary 1)
};

/// A d-dimensional range / arithmetic progression over mixed-width
/// coordinates. Dimension j has bits()[j]-bit coordinates.
class MultiDimRange {
 public:
  /// Uniform width: every dimension has `bits_per_dim`-bit coordinates.
  MultiDimRange(int dims, int bits_per_dim);

  /// Mixed widths (used by the weighted-#DNF reduction, §5).
  explicit MultiDimRange(std::vector<int> bits_per_dim);

  int dims() const { return static_cast<int>(bits_.size()); }
  const std::vector<int>& bits() const { return bits_; }
  /// Total universe bits (the nd of Theorem 6).
  int TotalBits() const;

  void SetDim(int j, DimRange r);
  const DimRange& Dim(int j) const {
    MCF0_DCHECK(j >= 0 && j < dims());
    return dims_[j];
  }

  /// Membership of a point (one coordinate per dimension).
  bool Contains(const std::vector<uint64_t>& point) const;

  /// Number of points (product over dims of ceil((hi-lo+1) / step)).
  double Volume() const;

  /// Uniformly random valid range (steps = 1) for workloads.
  static MultiDimRange Random(int dims, int bits_per_dim, Rng& rng);

 private:
  std::vector<int> bits_;
  std::vector<DimRange> dims_;
};

}  // namespace mcf0
