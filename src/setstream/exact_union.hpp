/// \file exact_union.hpp
/// \brief Exact union-size references for the structured-stream tests and
/// experiments (ground truth for Theorems 5-7).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/gf2_matrix.hpp"
#include "setstream/range.hpp"

namespace mcf0 {

/// Exact |union of ranges| by per-dimension coordinate compression and a
/// sweep over the O((2k)^d) elementary grid cells. All ranges must share
/// the dimension layout. Intended for d <= 4, k <= 64.
double ExactRangeUnionSize(const std::vector<MultiDimRange>& ranges);

/// Exact |union of affine spaces {x : A_i x = b_i}| by enumerating each
/// solution space into a hash set. Sum of solution-space sizes must be
/// modest (<= ~4M).
uint64_t ExactAffineUnionSize(
    const std::vector<std::pair<Gf2Matrix, BitVec>>& systems, int n);

/// Exact |union of Sol(dnf_i)| over {0,1}^n, n <= 30, by enumeration.
uint64_t ExactDnfUnionSize(const std::vector<Dnf>& dnfs, int n);

}  // namespace mcf0
