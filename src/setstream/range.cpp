#include "setstream/range.hpp"

#include "common/rng.hpp"

namespace mcf0 {

MultiDimRange::MultiDimRange(int dims, int bits_per_dim)
    : MultiDimRange(std::vector<int>(dims, bits_per_dim)) {}

MultiDimRange::MultiDimRange(std::vector<int> bits_per_dim)
    : bits_(std::move(bits_per_dim)) {
  MCF0_CHECK(!bits_.empty());
  for (const int b : bits_) MCF0_CHECK(b >= 1 && b <= 62);
  dims_.resize(bits_.size());
  for (size_t j = 0; j < bits_.size(); ++j) {
    dims_[j] = DimRange{0, (1ull << bits_[j]) - 1, 0};
  }
}

int MultiDimRange::TotalBits() const {
  int total = 0;
  for (const int b : bits_) total += b;
  return total;
}

void MultiDimRange::SetDim(int j, DimRange r) {
  MCF0_CHECK(j >= 0 && j < dims());
  MCF0_CHECK(r.lo <= r.hi);
  MCF0_CHECK(r.hi < (1ull << bits_[j]));
  MCF0_CHECK(r.log2_step >= 0 && r.log2_step < bits_[j]);
  dims_[j] = r;
}

bool MultiDimRange::Contains(const std::vector<uint64_t>& point) const {
  MCF0_CHECK(static_cast<int>(point.size()) == dims());
  for (int j = 0; j < dims(); ++j) {
    const DimRange& r = dims_[j];
    if (point[j] < r.lo || point[j] > r.hi) return false;
    if (r.log2_step > 0) {
      const uint64_t mask = (1ull << r.log2_step) - 1;
      if ((point[j] & mask) != (r.lo & mask)) return false;
    }
  }
  return true;
}

double MultiDimRange::Volume() const {
  double volume = 1.0;
  for (int j = 0; j < dims(); ++j) {
    const DimRange& r = dims_[j];
    const uint64_t step = 1ull << r.log2_step;
    const uint64_t span = r.hi - r.lo;
    volume *= static_cast<double>(span / step + 1);
  }
  return volume;
}

MultiDimRange MultiDimRange::Random(int dims, int bits_per_dim, Rng& rng) {
  MultiDimRange range(dims, bits_per_dim);
  const uint64_t universe = 1ull << bits_per_dim;
  for (int j = 0; j < dims; ++j) {
    uint64_t a = rng.NextBelow(universe);
    uint64_t b = rng.NextBelow(universe);
    if (a > b) std::swap(a, b);
    range.SetDim(j, DimRange{a, b, 0});
  }
  return range;
}

}  // namespace mcf0
