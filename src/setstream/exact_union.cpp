#include "setstream/exact_union.hpp"

#include <algorithm>
#include <unordered_set>

#include "gf2/affine_image.hpp"

namespace mcf0 {

double ExactRangeUnionSize(const std::vector<MultiDimRange>& ranges) {
  if (ranges.empty()) return 0.0;
  const int d = ranges[0].dims();
  for (const auto& r : ranges) MCF0_CHECK(r.dims() == d);
  // Coordinate compression per dimension: breakpoints at every lo and
  // hi+1. Between consecutive breakpoints, membership (ignoring steps) is
  // uniform per range. Progressions (log2_step > 0) are not supported here;
  // tests for Corollary 1 use small-universe enumeration instead.
  for (const auto& r : ranges) {
    for (int j = 0; j < d; ++j) MCF0_CHECK(r.Dim(j).log2_step == 0);
  }
  std::vector<std::vector<uint64_t>> cuts(d);
  for (int j = 0; j < d; ++j) {
    for (const auto& r : ranges) {
      cuts[j].push_back(r.Dim(j).lo);
      cuts[j].push_back(r.Dim(j).hi + 1);
    }
    std::sort(cuts[j].begin(), cuts[j].end());
    cuts[j].erase(std::unique(cuts[j].begin(), cuts[j].end()), cuts[j].end());
  }
  // Walk the elementary cells (products of breakpoint segments) with an
  // odometer; count a cell's volume if any range contains it.
  std::vector<size_t> idx(d, 0);
  double total = 0.0;
  for (;;) {
    bool valid = true;
    for (int j = 0; j < d; ++j) {
      if (idx[j] + 1 >= cuts[j].size()) {
        valid = false;
        break;
      }
    }
    if (valid) {
      std::vector<uint64_t> probe(d);
      double volume = 1.0;
      for (int j = 0; j < d; ++j) {
        probe[j] = cuts[j][idx[j]];
        volume *= static_cast<double>(cuts[j][idx[j] + 1] - cuts[j][idx[j]]);
      }
      for (const auto& r : ranges) {
        if (r.Contains(probe)) {
          total += volume;
          break;
        }
      }
    }
    // Advance the odometer.
    int j = 0;
    while (j < d) {
      if (++idx[j] + 1 < cuts[j].size()) break;
      idx[j] = 0;
      ++j;
    }
    if (j == d) break;
  }
  return total;
}

uint64_t ExactAffineUnionSize(
    const std::vector<std::pair<Gf2Matrix, BitVec>>& systems, int n) {
  std::unordered_set<BitVec> seen;
  for (const auto& [a, b] : systems) {
    MCF0_CHECK(a.cols() == n);
    auto space = AffineImage::FromSolutionSpace(a, b);
    if (!space.has_value()) continue;
    MCF0_CHECK(space->dim() <= 22);
    BitVec tau(space->dim());
    const uint64_t count = space->CountU64();
    for (uint64_t i = 0; i < count; ++i) {
      seen.insert(space->Element(tau));
      tau.Increment();
    }
  }
  return seen.size();
}

uint64_t ExactDnfUnionSize(const std::vector<Dnf>& dnfs, int n) {
  MCF0_CHECK(n <= 30);
  uint64_t count = 0;
  BitVec x(n);
  const uint64_t total = 1ull << n;
  for (uint64_t v = 0; v < total; ++v) {
    for (const Dnf& d : dnfs) {
      if (d.Eval(x)) {
        ++count;
        break;
      }
    }
    x.Increment();
  }
  return count;
}

}  // namespace mcf0
