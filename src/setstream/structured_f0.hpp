/// \file structured_f0.hpp
/// \brief F0 estimation over structured set streams (§5): the paper's
/// counting-to-streaming direction.
///
/// Stream items are succinct sets over the universe {0,1}^n:
///   * DNF formulas (DNF sets, Theorem 5);
///   * multidimensional ranges (Theorem 6) via the Lemma 4 term stream;
///   * multidimensional arithmetic progressions (Corollary 1);
///   * affine spaces <A, B> (Theorem 7);
///   * singleton elements (the traditional stream as a special case).
///
/// Two strategies, both derived from the #DNF machinery:
///   * Minimum: per row, keep the Thresh lexicographically smallest values
///     of h(union so far); a new set contributes its own Thresh smallest
///     (per-term affine enumeration, Proposition 2 / AffineFindMin,
///     Proposition 4) which merge into the row's KMV sketch.
///   * Bucketing: per row, keep the union's solutions inside the cell
///     h_m^{-1}(0^m), raising m on overflow; a new set contributes its
///     solutions inside the current cell (TermCellSolutions enumeration).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/gf2_matrix.hpp"
#include "hash/hash_family.hpp"
#include "setstream/range.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Strategy for StructuredF0.
enum class StructuredF0Algorithm { kMinimum, kBucketing };

/// Parameters for structured-stream F0 estimation.
struct StructuredF0Params {
  int n = 16;  ///< universe is {0,1}^n
  double eps = 0.8;
  double delta = 0.2;
  uint64_t seed = 1;
  StructuredF0Algorithm algorithm = StructuredF0Algorithm::kMinimum;
  uint64_t thresh_override = 0;
  int rows_override = 0;
};

/// Streaming F0 estimator over structured sets; see file comment.
class StructuredF0 {
 public:
  explicit StructuredF0(const StructuredF0Params& params);

  /// Theorem 5: processes a DNF set in per-item time
  /// poly(n, k, 1/eps, log 1/delta).
  void AddDnf(const Dnf& dnf);

  /// Processes a set given directly as DNF terms over the universe's
  /// variables (the range/AP paths after Lemma 4).
  void AddTerms(const std::vector<Term>& terms);

  /// Theorem 6 / Corollary 1: a multidimensional range or arithmetic
  /// progression (range.TotalBits() must equal n).
  void AddRange(const MultiDimRange& range);

  /// Theorem 7: the affine space {x : a x = b}.
  void AddAffine(const Gf2Matrix& a, const BitVec& b);

  /// Observation 2: a set given as a CNF formula (e.g. the O(nd)-size CNF
  /// of a multidimensional range). Per-item work uses the NP oracle —
  /// FindMin for Minimum rows, BoundedSAT for Bucketing rows — so this is
  /// polynomial only modulo the SAT solver, exactly the paper's
  /// "if P = NP the per-item time is polynomial" discussion.
  void AddCnf(const Cnf& cnf);

  /// NP-oracle (SAT) calls accumulated by AddCnf items.
  uint64_t oracle_calls() const { return oracle_calls_; }

  /// Traditional stream element (singleton set).
  void AddElement(const BitVec& x);

  /// Median-of-rows F0 estimate of |union of all items|.
  double Estimate() const;

  /// Sketch footprint across rows.
  size_t SpaceBits() const;

  uint64_t thresh() const { return thresh_; }
  int rows() const {
    return static_cast<int>(min_rows_.size() + bucket_rows_.size());
  }

 private:
  struct BucketRow {
    AffineHash h;       // n -> n
    int level = 0;
    std::set<BitVec> bucket;  // solutions in the current cell
  };

  /// Adds to one bucketing row all elements of the given term-set lying in
  /// the row's current cell, escalating the level on overflow.
  void BucketAddTerms(BucketRow* row, const std::vector<Term>& terms);
  void BucketAddAffine(BucketRow* row, const Gf2Matrix& a, const BitVec& b);

  StructuredF0Params params_;
  uint64_t thresh_;
  uint64_t oracle_calls_ = 0;
  std::vector<MinimumSketchRow> min_rows_;
  std::vector<BucketRow> bucket_rows_;
};

}  // namespace mcf0
