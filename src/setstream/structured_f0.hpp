/// \file structured_f0.hpp
/// \brief F0 estimation over structured set streams (§5): the paper's
/// counting-to-streaming direction.
///
/// Stream items are succinct sets over the universe {0,1}^n:
///   * DNF formulas (DNF sets, Theorem 5);
///   * multidimensional ranges (Theorem 6) via the Lemma 4 term stream;
///   * multidimensional arithmetic progressions (Corollary 1);
///   * affine spaces <A, B> (Theorem 7);
///   * singleton elements (the traditional stream as a special case).
///
/// Two strategies, both derived from the #DNF machinery:
///   * Minimum: per row, keep the Thresh lexicographically smallest values
///     of h(union so far); a new set contributes its own Thresh smallest
///     (per-term affine enumeration, Proposition 2 / AffineFindMin,
///     Proposition 4) which merge into the row's KMV sketch.
///   * Bucketing: per row, keep the union's solutions inside the cell
///     h_m^{-1}(0^m), raising m on overflow; a new set contributes its
///     solutions inside the current cell (TermCellSolutions enumeration).
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/gf2_matrix.hpp"
#include "hash/hash_family.hpp"
#include "setstream/range.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Strategy for StructuredF0.
enum class StructuredF0Algorithm { kMinimum, kBucketing };

/// Parameters for structured-stream F0 estimation.
struct StructuredF0Params {
  int n = 16;  ///< universe is {0,1}^n (n is NOT capped at 64 here)
  double eps = 0.8;
  double delta = 0.2;
  uint64_t seed = 1;
  StructuredF0Algorithm algorithm = StructuredF0Algorithm::kMinimum;
  uint64_t thresh_override = 0;
  int rows_override = 0;

  /// Field-wise equality; structured sketches are only mergeable when the
  /// parameters (hence the seeded hash functions) agree exactly.
  friend bool operator==(const StructuredF0Params&,
                         const StructuredF0Params&) = default;
};

/// Thresh = 96 / eps^2, honoring overrides (the same formula as the raw
/// sketches; shared with the structured wire codec).
uint64_t StructuredF0Thresh(const StructuredF0Params& params);
/// t = 35 log2(1/delta) rows, honoring overrides.
int StructuredF0Rows(const StructuredF0Params& params);

/// One structured Bucketing row: the union's solutions inside the prefix
/// cell h_m^{-1}(0^m) over the BitVec universe {0,1}^n (n unbounded, unlike
/// the word-stream BucketingSketchRow), raising m on overflow. This is the
/// first-class row type behind StructuredF0's bucketing strategy — the
/// engine layers (codec, reader, merge) speak it directly.
class StructuredBucketRow {
 public:
  /// Fresh empty row at level 0. `h` must be square (n -> n).
  StructuredBucketRow(AffineHash h, uint64_t thresh);

  /// Rebuilds a row from explicit state — the engine entry point
  /// (SketchCodec / Merge). Every element must lie in the cell at `level`,
  /// and the bucket may only exceed thresh at level = n (the codec is the
  /// validation boundary, exactly as for BucketingSketchRow).
  StructuredBucketRow(AffineHash h, uint64_t thresh, int level,
                      std::set<BitVec> bucket);

  /// First `level` bits of h(x) all zero? Cells are nested in `level`.
  bool InCell(const BitVec& x, int level) const;

  /// Inserts a solution already known to lie in the current cell. On
  /// overflow escalates *one* level (filtering the bucket) and returns
  /// true — the enumeration-driven callers then re-enumerate their item
  /// against the smaller cell; repeated overflow keeps escalating one
  /// insert at a time.
  bool InsertInCell(const BitVec& x);

  /// Traditional stream element (singleton set): cell test, insert, and
  /// full escalation.
  void AddElement(const BitVec& x);

  /// |bucket| * 2^level.
  double Estimate() const;

  int n() const { return h_.n(); }
  uint64_t thresh() const { return thresh_; }
  int level() const { return level_; }
  const AffineHash& hash() const { return h_; }
  const std::set<BitVec>& bucket() const { return bucket_; }
  size_t SpaceBits() const;

 private:
  /// Drops bucket elements outside the cell at the current level.
  void FilterToLevel();

  uint64_t thresh_;
  AffineHash h_;  // n -> n
  int level_ = 0;
  std::set<BitVec> bucket_;
};

/// Replays the deterministic hash sampling of `StructuredF0`'s constructor
/// one row at a time — the structured twin of F0RowSampler, and for the
/// same reason: the constructor draws its rows through this class, so the
/// sampling order is defined once and the v2 structured wire frames can
/// elide hash state ("canonical hashes") by replaying the draws from
/// `params.seed` at decode time.
class StructuredF0RowSampler {
 public:
  explicit StructuredF0RowSampler(const StructuredF0Params& params);

  /// Fresh (empty) rows with the next sampled hash. Which getter is valid
  /// follows params.algorithm.
  MinimumSketchRow NextMinimumRow();
  StructuredBucketRow NextBucketingRow();

 private:
  StructuredF0Params params_;
  uint64_t thresh_ = 0;
  Rng rng_;
};

/// Streaming F0 estimator over structured sets; see file comment.
///
/// `StructuredF0` presents the same sealed sketch surface as
/// `F0Estimator`: durable (SketchCodec structured frames), mergeable
/// (sketch_merge), and cursor-readable (SketchReader) — with mutation
/// sealed behind the same move-only Parts exchange, so the
/// `hashes_canonical` attestation survives by construction here too.
class StructuredF0 {
 public:
  /// The sealed mutation exchange; see F0Estimator::Parts for the
  /// contract (`hashes_canonical` attests hash state only, and only the
  /// sampling constructor and the elided-decode path may set it).
  class Parts {
   public:
    Parts(Parts&&) = default;
    Parts& operator=(Parts&&) = default;
    Parts(const Parts&) = delete;
    Parts& operator=(const Parts&) = delete;

    StructuredF0Params params;
    std::vector<MinimumSketchRow> minimum;
    std::vector<StructuredBucketRow> bucketing;
    uint64_t oracle_calls = 0;
    bool hashes_canonical = false;

   private:
    Parts() = default;
    friend class StructuredF0;
  };

  explicit StructuredF0(const StructuredF0Params& params);

  /// Theorem 5: processes a DNF set in per-item time
  /// poly(n, k, 1/eps, log 1/delta).
  void AddDnf(const Dnf& dnf);

  /// Processes a set given directly as DNF terms over the universe's
  /// variables (the range/AP paths after Lemma 4).
  void AddTerms(const std::vector<Term>& terms);

  /// Theorem 6 / Corollary 1: a multidimensional range or arithmetic
  /// progression (range.TotalBits() must equal n).
  void AddRange(const MultiDimRange& range);

  /// Theorem 7: the affine space {x : a x = b}.
  void AddAffine(const Gf2Matrix& a, const BitVec& b);

  /// Observation 2: a set given as a CNF formula (e.g. the O(nd)-size CNF
  /// of a multidimensional range). Per-item work uses the NP oracle —
  /// FindMin for Minimum rows, BoundedSAT for Bucketing rows — so this is
  /// polynomial only modulo the SAT solver, exactly the paper's
  /// "if P = NP the per-item time is polynomial" discussion.
  void AddCnf(const Cnf& cnf);

  /// NP-oracle (SAT) calls accumulated by AddCnf items.
  uint64_t oracle_calls() const { return oracle_calls_; }

  /// Traditional stream element (singleton set).
  void AddElement(const BitVec& x);

  /// Median-of-rows F0 estimate of |union of all items|.
  double Estimate() const;

  /// Sketch footprint across rows.
  size_t SpaceBits() const;

  uint64_t thresh() const { return thresh_; }
  int rows() const {
    return static_cast<int>(min_rows_.size() + bucket_rows_.size());
  }

  const StructuredF0Params& params() const { return params_; }

  /// True iff every row hash is attested to equal the canonical
  /// StructuredF0RowSampler replay (see Parts).
  bool hashes_canonical() const { return hashes_canonical_; }

  /// Engine read access; mutation goes through the Parts exchange.
  const std::vector<MinimumSketchRow>& minimum_rows() const {
    return min_rows_;
  }
  const std::vector<StructuredBucketRow>& bucketing_rows() const {
    return bucket_rows_;
  }

  /// Moves the entire state out, consuming the sketch (moved-from after).
  Parts ReleaseParts() &&;

  /// Rebuilds a sketch from a state bundle — the engine entry point.
  /// Exactly the row vector matching `parts.params.algorithm` may be
  /// non-empty and must hold StructuredF0Rows(params) rows.
  static StructuredF0 FromParts(Parts parts);

  /// An empty Parts bundle to fill by hand (decode layers, tests);
  /// hashes_canonical starts false.
  static Parts EmptyParts() { return Parts(); }

 private:
  StructuredF0() = default;

  /// Adds to one bucketing row all elements of the given term-set lying in
  /// the row's current cell, escalating the level on overflow.
  void BucketAddTerms(StructuredBucketRow* row, const std::vector<Term>& terms);
  void BucketAddAffine(StructuredBucketRow* row, const Gf2Matrix& a,
                       const BitVec& b);

  StructuredF0Params params_;
  uint64_t thresh_ = 0;
  uint64_t oracle_calls_ = 0;
  bool hashes_canonical_ = false;
  std::vector<MinimumSketchRow> min_rows_;
  std::vector<StructuredBucketRow> bucket_rows_;
};

}  // namespace mcf0
