#include "formula/random_gen.hpp"

#include <vector>

#include "common/rng.hpp"

namespace mcf0 {
namespace {

/// Floyd's algorithm: `count` distinct values from [0, n) without building
/// the full permutation.
std::vector<int> SampleDistinct(int n, int count, Rng& rng) {
  MCF0_CHECK(count <= n);
  std::vector<int> out;
  out.reserve(count);
  for (int j = n - count; j < n; ++j) {
    const int t = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(j) + 1));
    bool seen = false;
    for (int v : out) {
      if (v == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace

Term RandomTerm(int num_vars, int width, Rng& rng) {
  std::vector<int> vars = SampleDistinct(num_vars, width, rng);
  std::vector<Lit> lits;
  lits.reserve(vars.size());
  for (int v : vars) lits.emplace_back(v, rng.NextBool());
  auto term = Term::Make(std::move(lits));
  MCF0_CHECK(term.has_value());  // distinct vars cannot contradict
  return std::move(*term);
}

Cnf RandomKCnf(int num_vars, int num_clauses, int k, Rng& rng) {
  MCF0_CHECK(k >= 1 && k <= num_vars);
  Cnf cnf(num_vars);
  for (int i = 0; i < num_clauses; ++i) {
    std::vector<int> vars = SampleDistinct(num_vars, k, rng);
    std::vector<Lit> lits;
    lits.reserve(vars.size());
    for (int v : vars) lits.emplace_back(v, rng.NextBool());
    cnf.AddClause(Clause(std::move(lits)));
  }
  return cnf;
}

Dnf RandomDnf(int num_vars, int num_terms, int min_width, int max_width,
              Rng& rng) {
  MCF0_CHECK(1 <= min_width && min_width <= max_width && max_width <= num_vars);
  Dnf dnf(num_vars);
  for (int i = 0; i < num_terms; ++i) {
    const int width =
        min_width + static_cast<int>(rng.NextBelow(
                        static_cast<uint64_t>(max_width - min_width) + 1));
    dnf.AddTerm(RandomTerm(num_vars, width, rng));
  }
  return dnf;
}

}  // namespace mcf0
