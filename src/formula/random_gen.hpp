/// \file random_gen.hpp
/// \brief Random formula generators for tests and experiment workloads.
#pragma once

#include "formula/formula.hpp"

namespace mcf0 {

class Rng;

/// Uniform random k-CNF: `num_clauses` clauses of exactly `k` distinct
/// variables each, signs uniform. Used by the ApproxMC experiments at
/// clause densities below the satisfiability threshold so counts are large.
Cnf RandomKCnf(int num_vars, int num_clauses, int k, Rng& rng);

/// Random DNF with `num_terms` terms; each term picks a width uniformly in
/// [min_width, max_width] and that many distinct variables, signs uniform.
/// This is the workload family of the paper's #DNF experiments (monotone
/// terms of moderate width produce counts spread over many magnitudes).
Dnf RandomDnf(int num_vars, int num_terms, int min_width, int max_width,
              Rng& rng);

/// Random term of exactly `width` distinct variables.
Term RandomTerm(int num_vars, int width, Rng& rng);

}  // namespace mcf0
