#include "formula/dimacs.hpp"

#include <sstream>

namespace mcf0 {
namespace {

/// Shared scanner for `p cnf` / `p dnf` bodies: yields groups of literals
/// terminated by 0. Returns lit groups as 1-based signed DIMACS ints.
Status ScanDimacs(const std::string& text, const std::string& kind,
                  int* num_vars, int* declared_groups,
                  std::vector<std::vector<int>>* groups) {
  std::istringstream in(text);
  std::string tok;
  bool saw_header = false;
  std::vector<int> current;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      if (!(in >> fmt >> *num_vars >> *declared_groups)) {
        return Status::ParseError("malformed problem line");
      }
      if (fmt != kind) {
        return Status::ParseError("expected 'p " + kind + "', got 'p " + fmt +
                                  "'");
      }
      if (*num_vars < 0 || *declared_groups < 0) {
        return Status::ParseError("negative counts in problem line");
      }
      saw_header = true;
      continue;
    }
    if (!saw_header) return Status::ParseError("literal before problem line");
    int lit = 0;
    try {
      lit = std::stoi(tok);
    } catch (...) {
      return Status::ParseError("bad token '" + tok + "'");
    }
    if (lit == 0) {
      groups->push_back(std::move(current));
      current.clear();
    } else {
      if (std::abs(lit) > *num_vars) {
        return Status::ParseError("literal out of range: " + tok);
      }
      current.push_back(lit);
    }
  }
  if (!saw_header) return Status::ParseError("missing problem line");
  if (!current.empty()) {
    return Status::ParseError("unterminated clause (missing trailing 0)");
  }
  return Status::Ok();
}

std::vector<Lit> ToLits(const std::vector<int>& group) {
  std::vector<Lit> lits;
  lits.reserve(group.size());
  for (int g : group) lits.emplace_back(std::abs(g) - 1, g < 0);
  return lits;
}

}  // namespace

Result<Cnf> ParseDimacsCnf(const std::string& text) {
  int num_vars = 0;
  int declared = 0;
  std::vector<std::vector<int>> groups;
  Status s = ScanDimacs(text, "cnf", &num_vars, &declared, &groups);
  if (!s.ok()) return s;
  Cnf cnf(num_vars);
  for (const auto& g : groups) cnf.AddClause(Clause(ToLits(g)));
  return cnf;
}

Result<Dnf> ParseDimacsDnf(const std::string& text) {
  int num_vars = 0;
  int declared = 0;
  std::vector<std::vector<int>> groups;
  Status s = ScanDimacs(text, "dnf", &num_vars, &declared, &groups);
  if (!s.ok()) return s;
  Dnf dnf(num_vars);
  for (const auto& g : groups) {
    auto term = Term::Make(ToLits(g));
    if (!term.has_value()) {
      return Status::ParseError("contradictory term (x and -x)");
    }
    dnf.AddTerm(std::move(*term));
  }
  return dnf;
}

std::string ToDimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars() << ' ' << cnf.num_clauses() << '\n';
  for (const Clause& c : cnf.clauses()) {
    for (const Lit& l : c.lits()) {
      out << (l.neg ? -(l.var + 1) : l.var + 1) << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

std::string ToDimacs(const Dnf& dnf) {
  std::ostringstream out;
  out << "p dnf " << dnf.num_vars() << ' ' << dnf.num_terms() << '\n';
  for (const Term& t : dnf.terms()) {
    for (const Lit& l : t.lits()) {
      out << (l.neg ? -(l.var + 1) : l.var + 1) << ' ';
    }
    out << "0\n";
  }
  return out.str();
}

}  // namespace mcf0
