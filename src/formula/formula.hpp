/// \file formula.hpp
/// \brief Boolean formulas in CNF and DNF over variables x_0 .. x_{n-1}.
///
/// Conventions used throughout the library (matching §2 of the paper):
///  * An assignment to n variables is a `BitVec` of n bits; string position
///    i holds the value of variable i, so the lexicographic order on
///    assignments treats x_0 as the most significant variable.
///  * `Sol(phi)` — the satisfying assignments — is the set the counting
///    algorithms estimate and the set streaming algorithms take unions of.
///  * A DNF *term* doubles as an affine restriction: fixing its literals
///    leaves the free variables unconstrained, which is what lets every
///    per-term subproblem reduce to affine algebra (Propositions 1, 2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gf2/bitvec.hpp"

namespace mcf0 {

class Rng;

/// A literal: variable index (0-based) with optional negation.
struct Lit {
  int var = 0;
  bool neg = false;

  Lit() = default;
  Lit(int v, bool n) : var(v), neg(n) {}

  /// True under the given assignment?
  bool Eval(const BitVec& x) const { return x.Get(var) != neg; }

  bool operator==(const Lit&) const = default;
};

/// Conjunction of literals (a DNF term / cube).
class Term {
 public:
  Term() = default;

  /// Builds a term, sorting literals by variable and deduplicating.
  /// Returns nullopt if the literals are contradictory (x and !x).
  static std::optional<Term> Make(std::vector<Lit> lits);

  const std::vector<Lit>& lits() const { return lits_; }

  /// Number of literals (the paper's width w).
  int Width() const { return static_cast<int>(lits_.size()); }

  bool Eval(const BitVec& x) const {
    for (const Lit& l : lits_) {
      if (!l.Eval(x)) return false;
    }
    return true;
  }

  /// If this term fixes variable v, returns its forced value.
  std::optional<bool> FixedValue(int v) const;

  bool operator==(const Term&) const = default;

 private:
  std::vector<Lit> lits_;  // sorted by var, unique vars
};

/// Disjunction of literals (a CNF clause).
class Clause {
 public:
  Clause() = default;
  explicit Clause(std::vector<Lit> lits) : lits_(std::move(lits)) {}

  const std::vector<Lit>& lits() const { return lits_; }
  int Width() const { return static_cast<int>(lits_.size()); }

  bool Eval(const BitVec& x) const {
    for (const Lit& l : lits_) {
      if (l.Eval(x)) return true;
    }
    return false;
  }

  bool operator==(const Clause&) const = default;

 private:
  std::vector<Lit> lits_;
};

/// DNF formula: T_1 or T_2 or ... or T_k over n variables.
class Dnf {
 public:
  explicit Dnf(int num_vars) : num_vars_(num_vars) {
    MCF0_CHECK(num_vars >= 0);
  }

  void AddTerm(Term t);

  int num_vars() const { return num_vars_; }
  /// The paper's size parameter k (number of terms).
  int num_terms() const { return static_cast<int>(terms_.size()); }
  const std::vector<Term>& terms() const { return terms_; }

  bool Eval(const BitVec& x) const {
    for (const Term& t : terms_) {
      if (t.Eval(x)) return true;
    }
    return false;
  }

 private:
  int num_vars_;
  std::vector<Term> terms_;
};

/// CNF formula: C_1 and C_2 and ... and C_m over n variables.
class Cnf {
 public:
  explicit Cnf(int num_vars) : num_vars_(num_vars) {
    MCF0_CHECK(num_vars >= 0);
  }

  void AddClause(Clause c);

  int num_vars() const { return num_vars_; }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const std::vector<Clause>& clauses() const { return clauses_; }

  bool Eval(const BitVec& x) const {
    for (const Clause& c : clauses_) {
      if (!c.Eval(x)) return false;
    }
    return true;
  }

 private:
  int num_vars_;
  std::vector<Clause> clauses_;
};

/// Negation bridge: De Morgan of a DNF is a CNF over the same variables
/// with Sol(result) = complement of Sol(dnf). Used by Karp–Luby tests and
/// by examples that need both views.
Cnf NegateDnf(const Dnf& dnf);

/// De Morgan dual of the above.
Dnf NegateCnf(const Cnf& cnf);

}  // namespace mcf0
