/// \file dimacs.hpp
/// \brief DIMACS-style text I/O for CNF and DNF formulas.
///
/// CNF uses the standard `p cnf <vars> <clauses>` header with 0-terminated
/// clause lines. DNF uses the same layout with a `p dnf <vars> <terms>`
/// header and each line a 0-terminated conjunction of literals, the format
/// used by DNF-counting tools in the ApproxMC ecosystem.
#pragma once

#include <string>

#include "common/status.hpp"
#include "formula/formula.hpp"

namespace mcf0 {

/// Parses DIMACS CNF text.
Result<Cnf> ParseDimacsCnf(const std::string& text);

/// Parses DIMACS-style DNF text (`p dnf` header).
Result<Dnf> ParseDimacsDnf(const std::string& text);

/// Renders a CNF in DIMACS format.
std::string ToDimacs(const Cnf& cnf);

/// Renders a DNF in DIMACS-style format.
std::string ToDimacs(const Dnf& dnf);

}  // namespace mcf0
