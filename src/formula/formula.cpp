#include "formula/formula.hpp"

#include <algorithm>

namespace mcf0 {

std::optional<Term> Term::Make(std::vector<Lit> lits) {
  std::sort(lits.begin(), lits.end(), [](const Lit& a, const Lit& b) {
    return a.var != b.var ? a.var < b.var : a.neg < b.neg;
  });
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (const Lit& l : lits) {
    if (!out.empty() && out.back().var == l.var) {
      if (out.back().neg != l.neg) return std::nullopt;  // x and !x
      continue;                                          // duplicate
    }
    out.push_back(l);
  }
  Term t;
  t.lits_ = std::move(out);
  return t;
}

std::optional<bool> Term::FixedValue(int v) const {
  // lits_ sorted by var: binary search.
  auto it = std::lower_bound(
      lits_.begin(), lits_.end(), v,
      [](const Lit& l, int var) { return l.var < var; });
  if (it != lits_.end() && it->var == v) return !it->neg;
  return std::nullopt;
}

void Dnf::AddTerm(Term t) {
  for (const Lit& l : t.lits()) {
    MCF0_CHECK(l.var >= 0 && l.var < num_vars_);
  }
  terms_.push_back(std::move(t));
}

void Cnf::AddClause(Clause c) {
  for (const Lit& l : c.lits()) {
    MCF0_CHECK(l.var >= 0 && l.var < num_vars_);
  }
  clauses_.push_back(std::move(c));
}

Cnf NegateDnf(const Dnf& dnf) {
  Cnf cnf(dnf.num_vars());
  for (const Term& t : dnf.terms()) {
    std::vector<Lit> lits;
    lits.reserve(t.lits().size());
    for (const Lit& l : t.lits()) lits.emplace_back(l.var, !l.neg);
    cnf.AddClause(Clause(std::move(lits)));
  }
  return cnf;
}

Dnf NegateCnf(const Cnf& cnf) {
  Dnf dnf(cnf.num_vars());
  for (const Clause& c : cnf.clauses()) {
    std::vector<Lit> lits;
    lits.reserve(c.lits().size());
    for (const Lit& l : c.lits()) lits.emplace_back(l.var, !l.neg);
    auto term = Term::Make(std::move(lits));
    MCF0_CHECK(term.has_value());  // clause literals have unique vars or dup
    dnf.AddTerm(std::move(*term));
  }
  return dnf;
}

}  // namespace mcf0
