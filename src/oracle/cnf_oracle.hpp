/// \file cnf_oracle.hpp
/// \brief The NP-oracle abstraction used by the counting algorithms.
///
/// The paper's counting algorithms measure cost in *NP-oracle calls* on
/// CNF-XOR queries: "is phi AND (A x = b) satisfiable?" possibly with some
/// assignments excluded. `CnfOracle` wraps the CDCL(XOR) solver behind that
/// interface and counts every underlying SAT invocation — the quantity the
/// ApproxMC experiments (E3) report. Each query builds a fresh solver so
/// call counts are implementation-independent; the solver itself is fast
/// enough at experiment scale that this is not the bottleneck.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/bitvec.hpp"
#include "hash/hash_family.hpp"
#include "sat/solver.hpp"

namespace mcf0 {

/// One parity constraint `row . x = rhs` over the formula's variables.
struct XorConstraint {
  BitVec row;
  bool rhs = false;
};

/// Extracts the XOR constraints expressing h_m(x) = 0^m for an affine hash
/// h(x) = A x + b: row i of A with right-hand side b_i, for i < m.
std::vector<XorConstraint> HashPrefixConstraints(const AffineHash& h, int m);

/// Extracts the XOR constraints expressing "h(x) has >= t trailing zeros":
/// the last t rows of A with right-hand sides from b.
std::vector<XorConstraint> HashSuffixZeroConstraints(const AffineHash& h,
                                                     int t);

/// Counted NP oracle over a fixed CNF formula; see file comment.
class CnfOracle {
 public:
  explicit CnfOracle(const Cnf& cnf) : cnf_(&cnf) {}

  /// One satisfying assignment of cnf AND xors, with every assignment in
  /// `blocked` excluded; nullopt if none. Counts one oracle call.
  std::optional<BitVec> Solve(const std::vector<XorConstraint>& xors,
                              const std::vector<BitVec>& blocked = {});

  /// Up to `limit` distinct satisfying assignments of cnf AND xors,
  /// enumerated with blocking clauses on one incremental solver. Counts
  /// one oracle call per SAT invocation (i.e. #solutions found + 1, unless
  /// the limit is hit exactly).
  std::vector<BitVec> Enumerate(const std::vector<XorConstraint>& xors,
                                uint64_t limit);

  /// Total SAT invocations so far (the paper's cost metric).
  uint64_t num_calls() const { return num_calls_; }
  void ResetCallCount() { num_calls_ = 0; }

  /// When true, XOR constraints are Tseitin-encoded into CNF instead of
  /// using the solver's native XOR propagation (experiment E14 baseline).
  void SetUseTseitin(bool v) { use_tseitin_ = v; }

  const Cnf& cnf() const { return *cnf_; }

 private:
  /// Builds a solver over the formula + constraints. Returns false if
  /// trivially UNSAT during construction.
  bool BuildSolver(sat::Solver* solver, const std::vector<XorConstraint>& xors,
                   const std::vector<BitVec>& blocked);

  const Cnf* cnf_;
  bool use_tseitin_ = false;
  uint64_t num_calls_ = 0;
};

}  // namespace mcf0
