/// \file find_max_range.hpp
/// \brief The FindMaxRange subroutine (Proposition 3).
///
/// FindMaxRange(phi, h) returns the largest t such that some solution of
/// phi hashes to a value with t trailing zeros (and no solution exceeds t)
/// — the solver-side construction of the Estimation sketch property P3.
///
/// Substitution note (documented in DESIGN.md): the paper instantiates h
/// from the s-wise independent polynomial family over GF(2^n), whose
/// evaluation is not GF(2)-affine and therefore cannot be posed as XOR
/// clauses. We use the affine families here ("t trailing zeros" = t parity
/// constraints on the last rows of A) and the faithful polynomial family on
/// the streaming side; experiment E6 validates that accuracy inside the
/// validity window 2 F0 <= 2^r <= 50 F0 is preserved.
#pragma once

#include "formula/formula.hpp"
#include "hash/hash_family.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// CNF case: binary search on t, O(log m) NP-oracle calls.
/// Returns -1 if phi is unsatisfiable.
int FindMaxRangeCnf(CnfOracle& oracle, const AffineHash& h);

/// DNF case under an affine hash (PTIME): the per-term image is affine, so
/// its maximal trailing-zero count is a linear-consistency computation; the
/// union's maximum is the max over terms. Returns -1 for the empty DNF.
/// (With the paper's polynomial hash this case is open — §3.4.)
int FindMaxRangeDnf(const Dnf& dnf, const AffineHash& h);

}  // namespace mcf0
