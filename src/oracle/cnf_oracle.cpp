#include "oracle/cnf_oracle.hpp"

#include "gf2/gauss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/tseitin.hpp"

namespace mcf0 {

namespace {

// The paper's Observation 2 accounting, surfaced uniformly: every SAT
// invocation counts once, with its latency. Resolved once per process.
struct OracleObs {
  obs::Counter* calls;
  obs::Histogram* solve_us;
};

OracleObs& Obs() {
  static OracleObs obs{
      obs::Registry::Global().GetCounter("mcf0_oracle_sat_calls_total"),
      obs::Registry::Global().GetHistogram("mcf0_oracle_sat_solve_us")};
  return obs;
}

}  // namespace

std::vector<XorConstraint> HashPrefixConstraints(const AffineHash& h, int m) {
  MCF0_CHECK(m >= 0 && m <= h.m());
  std::vector<XorConstraint> xors;
  xors.reserve(m);
  for (int i = 0; i < m; ++i) {
    // Bit i of h(x) = A_i.x XOR b_i; forcing it to 0 means A_i.x = b_i.
    xors.push_back(XorConstraint{h.A().Row(i), h.b().Get(i)});
  }
  return xors;
}

std::vector<XorConstraint> HashSuffixZeroConstraints(const AffineHash& h,
                                                     int t) {
  MCF0_CHECK(t >= 0 && t <= h.m());
  std::vector<XorConstraint> xors;
  xors.reserve(t);
  for (int i = h.m() - t; i < h.m(); ++i) {
    xors.push_back(XorConstraint{h.A().Row(i), h.b().Get(i)});
  }
  return xors;
}

bool CnfOracle::BuildSolver(sat::Solver* solver,
                            const std::vector<XorConstraint>& xors,
                            const std::vector<BitVec>& blocked) {
  const int n = cnf_->num_vars();
  solver->EnsureVars(n);
  for (const Clause& c : cnf_->clauses()) {
    std::vector<sat::Lit> lits;
    lits.reserve(c.lits().size());
    for (const Lit& l : c.lits()) lits.emplace_back(l.var, l.neg);
    if (!solver->AddClause(std::move(lits))) return false;
  }
  if (use_tseitin_) {
    for (const XorConstraint& xc : xors) {
      MCF0_CHECK(xc.row.size() == n);
      std::vector<sat::Var> vars;
      for (int j = 0; j < n; ++j) {
        if (xc.row.Get(j)) vars.push_back(j);
      }
      if (!sat::AddXorAsCnf(solver, std::move(vars), xc.rhs)) return false;
    }
  } else if (!xors.empty()) {
    // Native path: row-reduce the parity system first and hand the solver
    // the equivalent RREF rows, then restrict branching to the free
    // (non-pivot) variables. Once every free variable in a row is
    // assigned, the row is unit on its pivot and propagates, so the
    // effective search space is 2^(free variables of the CNF) instead of
    // 2^n — the role Gaussian elimination plays in CNF-XOR solvers.
    Gf2Eliminator elim(n);
    for (const XorConstraint& xc : xors) {
      MCF0_CHECK(xc.row.size() == n);
      if (elim.AddEquation(xc.row, xc.rhs) == AddResult::kInconsistent) {
        return false;
      }
    }
    for (size_t r = 0; r < elim.rows().size(); ++r) {
      std::vector<sat::Var> vars;
      for (int j = 0; j < n; ++j) {
        if (elim.rows()[r].Get(j)) vars.push_back(j);
      }
      if (!solver->AddXorClause(std::move(vars), elim.rhs()[r])) return false;
    }
    std::vector<bool> is_pivot(n, false);
    for (const int p : elim.pivot_cols()) is_pivot[p] = true;
    std::vector<sat::Var> decision_vars;
    for (int j = 0; j < n; ++j) {
      if (!is_pivot[j]) decision_vars.push_back(j);
    }
    solver->RestrictDecisions(decision_vars);
  }
  for (const BitVec& sol : blocked) {
    MCF0_CHECK(sol.size() == n);
    std::vector<sat::Lit> clause;
    clause.reserve(n);
    for (int j = 0; j < n; ++j) clause.emplace_back(j, sol.Get(j));
    if (!solver->AddClause(std::move(clause))) return false;
  }
  return true;
}

std::optional<BitVec> CnfOracle::Solve(const std::vector<XorConstraint>& xors,
                                       const std::vector<BitVec>& blocked) {
  ++num_calls_;
  Obs().calls->Increment();
  MCF0_TRACE_SPAN("oracle.solve");
  sat::Solver solver;
  if (!BuildSolver(&solver, xors, blocked)) return std::nullopt;
  obs::ScopedLatencyUs solve_timer(Obs().solve_us);
  if (solver.Solve() != sat::LBool::kTrue) return std::nullopt;
  return solver.ModelBits(cnf_->num_vars());
}

std::vector<BitVec> CnfOracle::Enumerate(const std::vector<XorConstraint>& xors,
                                         uint64_t limit) {
  std::vector<BitVec> solutions;
  sat::Solver solver;
  if (!BuildSolver(&solver, xors, {})) return solutions;
  const int n = cnf_->num_vars();
  while (solutions.size() < limit) {
    ++num_calls_;
    Obs().calls->Increment();
    sat::LBool verdict;
    {
      obs::ScopedLatencyUs solve_timer(Obs().solve_us);
      verdict = solver.Solve();
    }
    if (verdict != sat::LBool::kTrue) break;
    BitVec model = solver.ModelBits(n);
    // Block this assignment (over the formula's variables only, so
    // Tseitin auxiliaries do not cause duplicates).
    std::vector<sat::Lit> clause;
    clause.reserve(n);
    for (int j = 0; j < n; ++j) clause.emplace_back(j, model.Get(j));
    solutions.push_back(std::move(model));
    if (!solver.AddClause(std::move(clause))) break;
  }
  return solutions;
}

}  // namespace mcf0
