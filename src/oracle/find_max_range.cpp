#include "oracle/find_max_range.hpp"

#include "oracle/find_min.hpp"

namespace mcf0 {

int FindMaxRangeCnf(CnfOracle& oracle, const AffineHash& h) {
  const int m = h.m();
  // Monotone predicate: Sat(t) = "some solution has >= t trailing zeros".
  auto sat_at = [&](int t) {
    return oracle.Solve(HashSuffixZeroConstraints(h, t)).has_value();
  };
  if (!sat_at(0)) return -1;  // phi itself unsatisfiable
  int lo = 0;   // known satisfiable
  int hi = m;   // maximum conceivable
  // Invariant: sat_at(lo) true; answer in [lo, hi].
  while (lo < hi) {
    const int mid = lo + (hi - lo + 1) / 2;
    if (sat_at(mid)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

int FindMaxRangeDnf(const Dnf& dnf, const AffineHash& h) {
  int best = -1;
  for (const Term& t : dnf.terms()) {
    const AffineImage image = TermImageUnderHash(t, dnf.num_vars(), h);
    best = std::max(best, image.MaxTrailingZeros());
  }
  return best;
}

}  // namespace mcf0
