/// \file find_min.hpp
/// \brief The FindMin subroutine (Propositions 2 and 4).
///
/// FindMin(phi, h, p) returns the p lexicographically smallest elements of
/// B = h(Sol(phi)) — all of B if |B| <= p. This is the solver-side
/// construction of the Minimum (KMV) sketch property P2.
///
///  * DNF (Proposition 2): each term contributes h(Sol(T)), an affine image
///    of the term's free variables; the union is merged lexicographically.
///    Polynomial time, no oracle.
///  * CNF (Proposition 2): prefix search driven by the NP oracle, O(p * m)
///    oracle calls. Models returned by SAT calls are used as witnesses to
///    skip queries whose answer they already certify (a standard
///    model-guided refinement that only reduces the call count).
///  * Affine streams (Proposition 4): Sol(<A, B>) is itself an affine
///    subspace; composing with h keeps it affine, so AffineFindMin is pure
///    linear algebra in O(n^3 / 64 + p n) time.
#pragma once

#include <cstdint>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/affine_image.hpp"
#include "hash/hash_family.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// h(Sol(term)) as an affine image in {0,1}^m: the hash matrix restricted
/// to the term's free variables, offset by the image of the fixed part.
AffineImage TermImageUnderHash(const Term& term, int num_vars,
                               const AffineHash& h);

/// Proposition 2, DNF case (PTIME).
std::vector<BitVec> FindMinDnf(const Dnf& dnf, const AffineHash& h, uint64_t p);

/// Proposition 2, CNF case (NP oracle; O(p * m) calls).
std::vector<BitVec> FindMinCnf(CnfOracle& oracle, const AffineHash& h,
                               uint64_t p);

/// Proposition 4: p smallest elements of h(Sol(A x = b)); empty if the
/// system is inconsistent.
std::vector<BitVec> AffineFindMin(const Gf2Matrix& a, const BitVec& b,
                                  const AffineHash& h, uint64_t p);

/// h(Sol(A x = b)) as an affine image (nullopt if inconsistent) — the §5
/// affine-stream per-item object.
std::optional<AffineImage> AffineImageUnderHash(const Gf2Matrix& a,
                                                const BitVec& b,
                                                const AffineHash& h);

}  // namespace mcf0
