#include "oracle/find_min.hpp"

#include <algorithm>

namespace mcf0 {

AffineImage TermImageUnderHash(const Term& term, int num_vars,
                               const AffineHash& h) {
  MCF0_CHECK(h.n() == num_vars);
  // Offset: h applied to the assignment that takes the term's fixed values
  // and zero elsewhere. Directions: columns of A at the free variables.
  BitVec fixed(num_vars);
  std::vector<bool> is_fixed(num_vars, false);
  for (const Lit& l : term.lits()) {
    is_fixed[l.var] = true;
    if (!l.neg) fixed.Set(l.var, true);
  }
  std::vector<int> free_vars;
  free_vars.reserve(num_vars - term.Width());
  for (int v = 0; v < num_vars; ++v) {
    if (!is_fixed[v]) free_vars.push_back(v);
  }
  return AffineImage(h.A().SelectColumns(free_vars), h.Eval(fixed));
}

std::vector<BitVec> FindMinDnf(const Dnf& dnf, const AffineHash& h,
                               uint64_t p) {
  std::vector<AffineImage> images;
  images.reserve(dnf.num_terms());
  for (const Term& t : dnf.terms()) {
    images.push_back(TermImageUnderHash(t, dnf.num_vars(), h));
  }
  UnionLexEnumerator merge(std::move(images));
  return merge.FirstP(p);
}

std::optional<AffineImage> AffineImageUnderHash(const Gf2Matrix& a,
                                                const BitVec& b,
                                                const AffineHash& h) {
  MCF0_CHECK(a.cols() == h.n());
  auto sol = SolveLinearSystem(a, b);
  if (!sol.has_value()) return std::nullopt;
  // Sol = x0 + span(K); image under h is h(x0) + (A_h K) t.
  return AffineImage(h.A().MulMatrix(sol->kernel), h.Eval(sol->x0));
}

std::vector<BitVec> AffineFindMin(const Gf2Matrix& a, const BitVec& b,
                                  const AffineHash& h, uint64_t p) {
  auto image = AffineImageUnderHash(a, b, h);
  if (!image.has_value()) return {};
  return image->FirstP(p);
}

namespace {

/// Oracle query: is there x |= phi with the first `prefix.size()` bits of
/// h(x) equal to `prefix`? On success also reports h(x) of the witness.
std::optional<BitVec> QueryPrefix(CnfOracle& oracle, const AffineHash& h,
                                  const BitVec& prefix) {
  std::vector<XorConstraint> xors;
  xors.reserve(prefix.size());
  for (int i = 0; i < prefix.size(); ++i) {
    // Bit i of h(x) equals prefix_i  <=>  A_i.x = b_i XOR prefix_i.
    xors.push_back(XorConstraint{h.A().Row(i), h.b().Get(i) != prefix.Get(i)});
  }
  auto model = oracle.Solve(xors);
  if (!model.has_value()) return std::nullopt;
  return h.Eval(*model);
}

/// Greedy minimal extension of a feasible prefix to a full member of
/// h(Sol(phi)), using the witness hash value to skip settled bits.
BitVec ExtendMin(CnfOracle& oracle, const AffineHash& h, BitVec prefix,
                 BitVec witness) {
  const int m = h.m();
  int l = prefix.size();
  while (l < m) {
    if (!witness.Get(l)) {
      // The witness itself certifies that bit l can be 0.
      prefix = prefix.Concat(BitVec(1));
      ++l;
      continue;
    }
    BitVec candidate = prefix.Concat(BitVec(1));  // try 0
    auto better = QueryPrefix(oracle, h, candidate);
    if (better.has_value()) {
      witness = std::move(*better);
      prefix = std::move(candidate);
    } else {
      BitVec one(1);
      one.Set(0, true);
      prefix = prefix.Concat(one);  // bit forced to 1; witness still valid
    }
    ++l;
  }
  return prefix;
}

}  // namespace

std::vector<BitVec> FindMinCnf(CnfOracle& oracle, const AffineHash& h,
                               uint64_t p) {
  const int m = h.m();
  std::vector<BitVec> mins;
  // First minimum: greedy extension of the empty prefix.
  auto witness = QueryPrefix(oracle, h, BitVec(0));
  if (!witness.has_value()) return mins;  // phi unsatisfiable
  mins.push_back(ExtendMin(oracle, h, BitVec(0), std::move(*witness)));
  // Successive minima via the paper's rightmost-zero prefix strategy.
  while (mins.size() < p) {
    const BitVec& y = mins.back();
    bool found = false;
    // Try flipping each 0 of y to 1 (rightmost first), keeping the prefix.
    for (int r = m - 1; r >= 0 && !found; --r) {
      if (y.Get(r)) continue;
      BitVec candidate = y.Prefix(r);
      BitVec one(1);
      one.Set(0, true);
      candidate = candidate.Concat(one);
      auto wit = QueryPrefix(oracle, h, candidate);
      if (wit.has_value()) {
        mins.push_back(
            ExtendMin(oracle, h, std::move(candidate), std::move(*wit)));
        found = true;
      }
    }
    if (!found) break;  // y was the maximum of h(Sol(phi))
  }
  return mins;
}

}  // namespace mcf0
