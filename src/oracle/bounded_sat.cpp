#include "oracle/bounded_sat.hpp"

namespace mcf0 {

BoundedSatResult BoundedSatCnf(CnfOracle& oracle, const AffineHash& h, int m,
                               uint64_t p) {
  BoundedSatResult result;
  result.solutions = oracle.Enumerate(HashPrefixConstraints(h, m), p);
  result.saturated = result.solutions.size() == p;
  return result;
}

std::optional<AffineImage> TermCellSolutions(const Term& term, int num_vars,
                                             const AffineHash& h, int m) {
  MCF0_CHECK(m >= 0 && m <= h.m());
  // Stack the term's unit equations (x_v = value) on top of the cell's
  // parity equations (A_i . x = b_i) and parametrize the solution space.
  Gf2Matrix a(term.Width() + m, num_vars);
  BitVec b(term.Width() + m);
  int r = 0;
  for (const Lit& l : term.lits()) {
    a.Set(r, l.var, true);
    b.Set(r, !l.neg);  // positive literal forces 1
    ++r;
  }
  for (int i = 0; i < m; ++i) {
    a.MutableRow(r) = h.A().Row(i);
    b.Set(r, h.b().Get(i));
    ++r;
  }
  return AffineImage::FromSolutionSpace(a, b);
}

BoundedSatResult BoundedSatDnf(const Dnf& dnf, const AffineHash& h, int m,
                               uint64_t p) {
  std::vector<AffineImage> pieces;
  pieces.reserve(dnf.num_terms());
  for (const Term& t : dnf.terms()) {
    auto piece = TermCellSolutions(t, dnf.num_vars(), h, m);
    if (piece.has_value()) pieces.push_back(std::move(*piece));
  }
  UnionLexEnumerator merge(std::move(pieces));
  BoundedSatResult result;
  result.solutions = merge.FirstP(p);
  result.saturated = result.solutions.size() == p;
  return result;
}

}  // namespace mcf0
