/// \file bounded_sat.hpp
/// \brief The BoundedSAT subroutine (Proposition 1).
///
/// BoundedSAT(phi, h, m, p) returns min(p, |Sol(phi AND h_m(x) = 0^m)|) —
/// the number of solutions in the hash cell h_m^{-1}(0^m), counted up to the
/// saturation threshold p — together with the solutions themselves (the
/// distributed protocols ship them to the coordinator).
///
///  * CNF: enumeration with blocking clauses on the CNF-XOR solver;
///    O(p) NP-oracle calls, as in the proposition.
///  * DNF: polynomial time. Each term's solutions inside the cell form an
///    affine subspace of {0,1}^n (the term fixes some variables; the cell
///    adds m parity constraints), so the cell's solution set is a union of
///    affine subspaces which `UnionLexEnumerator` walks in lexicographic
///    order — the O(n^3 k p)-flavour algorithm of the paper with the
///    per-step Gaussian elimination replaced by the canonical-basis walk.
#pragma once

#include <cstdint>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/affine_image.hpp"
#include "hash/hash_family.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// Output of BoundedSAT: up to p distinct solutions in the cell.
struct BoundedSatResult {
  std::vector<BitVec> solutions;
  /// True iff exactly p solutions were found and more may exist.
  bool saturated = false;

  uint64_t count() const { return solutions.size(); }
};

/// CNF case of Proposition 1; cell is h_m^{-1}(0^m). m = 0 means no hash
/// constraint (counts solutions of phi itself, up to p).
BoundedSatResult BoundedSatCnf(CnfOracle& oracle, const AffineHash& h, int m,
                               uint64_t p);

/// DNF case of Proposition 1 (PTIME, no oracle).
BoundedSatResult BoundedSatDnf(const Dnf& dnf, const AffineHash& h, int m,
                               uint64_t p);

/// The solution set of `term` within the cell h_m^{-1}(0^m), as an affine
/// subspace of {0,1}^{num_vars} — or nullopt if empty. Exposed for the
/// structured-set streaming algorithms (§5), which reuse it per stream item.
std::optional<AffineImage> TermCellSolutions(const Term& term, int num_vars,
                                             const AffineHash& h, int m);

}  // namespace mcf0
