/// \file sketch_codec.hpp
/// \brief Versioned binary wire format for F0 sketch state.
///
/// The paper's composability result (§4) is only useful in practice if a
/// sketch can leave the process that built it: a mapper serializes its
/// local sketch, a reducer deserializes and merges (sketch_merge.hpp).
/// `SketchCodec` defines that interchange format — little-endian, framed,
/// checksummed, and versioned (docs/wire_format.md is the normative spec):
///
///   bytes 0-3   magic "MCF0"
///   bytes 4-5   format version (uint16), 1 or 2
///   byte  6     frame kind (SketchFrameKind)
///   byte  7     reserved, 0
///   bytes 8-15  payload length in bytes (uint64)
///   bytes 16-23 FNV-1a-64 checksum of the payload (uint64)
///   bytes 24-   payload
///
/// Version 1 serializes hash-function state in full (dense matrix rows),
/// so a decoded sketch is self-contained. Version 2 keeps that property
/// while shrinking the bytes: Toeplitz hashes ship their n + m - 1 bit
/// diagonal seed instead of m dense rows, polynomial hashes pack their
/// coefficient lists to the field width, sorted element/value sets are
/// delta + varint coded (KMV values as n-bit preimages where they exist),
/// and a whole-estimator frame whose hashes match what F0RowSampler
/// derives from its own parameters elides hash state entirely. Decoding
/// dispatches on the header's version byte — v1 files stay readable
/// forever — and encoding takes the version as an escape hatch
/// (`mcf0 sketch build --format v1`).
///
/// Decoding never aborts on bad input: truncated buffers, corrupt bytes,
/// bad magic/version/kind, checksum mismatches, and out-of-domain field
/// values all surface as a non-OK `Status`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/status.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Frame kind byte: which object a serialized blob holds. Kinds 5 and 6
/// (structured sketches, §5 streams) exist only at format v2 — v1 is
/// frozen and predates them.
enum class SketchFrameKind : uint8_t {
  kF0Estimator = 0,
  kBucketingRow = 1,
  kMinimumRow = 2,
  kEstimationRow = 3,
  kFlajoletMartinRow = 4,
  kStructuredF0 = 5,
  kStructuredBucketRow = 6,
};

/// Stateless encode/decode for every sketch type. Encodings are canonical
/// per version: two sketches with equal state produce byte-identical blobs
/// (unordered containers are sorted on the way out), so blob equality is
/// state equality — the merge-algebra tests rely on this.
class SketchCodec {
 public:
  /// v1: dense hash state, fixed-width integers. Frozen; never changes.
  static constexpr uint16_t kFormatV1 = 1;
  /// v2: seed-compressed hashes, delta + varint coded sets.
  static constexpr uint16_t kFormatV2 = 2;
  /// What Encode writes when the caller does not pick a version.
  static constexpr uint16_t kDefaultFormatVersion = kFormatV2;

  static std::string Encode(const F0Estimator& est,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const BucketingSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const MinimumSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const EstimationSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const FlajoletMartinRow& row,
                            uint16_t version = kDefaultFormatVersion);
  /// Structured sketches (§5 streams) serialize at v2 only; passing v1 is
  /// a programming error (the CLI rejects `--format v1 --input dnf|range`
  /// up front).
  static std::string Encode(const StructuredF0& sketch,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const StructuredBucketRow& row,
                            uint16_t version = kDefaultFormatVersion);

  static Result<F0Estimator> DecodeF0Estimator(std::string_view bytes);
  static Result<StructuredF0> DecodeStructuredF0(std::string_view bytes);

  /// The wire format version a frame claims, from the first six header
  /// bytes (magic checked; payload untouched — O(1), unlike a decode).
  static Result<uint16_t> PeekFormatVersion(std::string_view bytes);
  /// The frame kind a blob claims (byte 6; magic checked, O(1)).
  static Result<SketchFrameKind> PeekFrameKind(std::string_view bytes);
  static Result<BucketingSketchRow> DecodeBucketingRow(std::string_view bytes);
  static Result<MinimumSketchRow> DecodeMinimumRow(std::string_view bytes);
  static Result<StructuredBucketRow> DecodeStructuredBucketRow(
      std::string_view bytes);
  /// `field` supplies GF(2^w) arithmetic for the decoded hashes and must
  /// outlive the row; it may be null only for a cells-only row.
  static Result<EstimationSketchRow> DecodeEstimationRow(
      std::string_view bytes, const Gf2Field* field);
  static Result<FlajoletMartinRow> DecodeFlajoletMartinRow(
      std::string_view bytes);
};

/// One owning handle over either sketch kind — the single surface the
/// merge/query layers and the CLI dispatch through, so raw element
/// streams (§3) and structured set streams (§5) get identical durability
/// treatment. Decode() dispatches on the frame-kind byte; every accessor
/// below forwards to the corresponding member of the held sketch.
class SketchVariant {
 public:
  explicit SketchVariant(F0Estimator est) : sketch_(std::move(est)) {}
  explicit SketchVariant(StructuredF0 sketch) : sketch_(std::move(sketch)) {}

  /// Decodes a whole-sketch frame of either kind (raw F0Estimator or
  /// StructuredF0); row frames are rejected with their usual kind error.
  static Result<SketchVariant> Decode(std::string_view bytes);

  bool structured() const {
    return std::holds_alternative<StructuredF0>(sketch_);
  }
  SketchFrameKind kind() const {
    return structured() ? SketchFrameKind::kStructuredF0
                        : SketchFrameKind::kF0Estimator;
  }

  double Estimate() const;
  size_t SpaceBits() const;
  bool hashes_canonical() const;
  std::string Encode(uint16_t version = SketchCodec::kDefaultFormatVersion)
      const;

  /// The held sketch; the kind must match (checked).
  const F0Estimator& raw() const { return std::get<F0Estimator>(sketch_); }
  F0Estimator& raw() { return std::get<F0Estimator>(sketch_); }
  const StructuredF0& structured_sketch() const {
    return std::get<StructuredF0>(sketch_);
  }
  StructuredF0& structured_sketch() {
    return std::get<StructuredF0>(sketch_);
  }

 private:
  std::variant<F0Estimator, StructuredF0> sketch_;
};

}  // namespace mcf0
