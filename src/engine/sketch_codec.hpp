/// \file sketch_codec.hpp
/// \brief Versioned binary wire format for F0 sketch state.
///
/// The paper's composability result (§4) is only useful in practice if a
/// sketch can leave the process that built it: a mapper serializes its
/// local sketch, a reducer deserializes and merges (sketch_merge.hpp).
/// `SketchCodec` defines that interchange format — little-endian, framed,
/// checksummed, and versioned (docs/wire_format.md is the normative spec):
///
///   bytes 0-3   magic "MCF0"
///   bytes 4-5   format version (uint16), currently 1
///   byte  6     frame kind (SketchFrameKind)
///   byte  7     reserved, 0
///   bytes 8-15  payload length in bytes (uint64)
///   bytes 16-23 FNV-1a-64 checksum of the payload (uint64)
///   bytes 24-   payload
///
/// Hash-function state (affine matrices, offsets, polynomial coefficients)
/// is serialized in full, so a decoded sketch is self-contained: it keeps
/// absorbing elements and merges with any sketch built from the same
/// parameters and seed, regardless of which process sampled the hashes.
///
/// Decoding never aborts on bad input: truncated buffers, corrupt bytes,
/// bad magic/version/kind, checksum mismatches, and out-of-domain field
/// values all surface as a non-OK `Status`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Frame kind byte: which object a serialized blob holds.
enum class SketchFrameKind : uint8_t {
  kF0Estimator = 0,
  kBucketingRow = 1,
  kMinimumRow = 2,
  kEstimationRow = 3,
  kFlajoletMartinRow = 4,
};

/// Stateless encode/decode for every sketch type. Encodings are canonical:
/// two sketches with equal state produce byte-identical blobs (unordered
/// containers are sorted on the way out), so blob equality is state
/// equality — the merge-algebra tests rely on this.
class SketchCodec {
 public:
  /// Bumped whenever the payload layout changes; decoders reject frames
  /// written by a different version (docs/wire_format.md).
  static constexpr uint16_t kFormatVersion = 1;

  static std::string Encode(const F0Estimator& est);
  static std::string Encode(const BucketingSketchRow& row);
  static std::string Encode(const MinimumSketchRow& row);
  static std::string Encode(const EstimationSketchRow& row);
  static std::string Encode(const FlajoletMartinRow& row);

  static Result<F0Estimator> DecodeF0Estimator(std::string_view bytes);
  static Result<BucketingSketchRow> DecodeBucketingRow(std::string_view bytes);
  static Result<MinimumSketchRow> DecodeMinimumRow(std::string_view bytes);
  /// `field` supplies GF(2^w) arithmetic for the decoded hashes and must
  /// outlive the row; it may be null only for a cells-only row.
  static Result<EstimationSketchRow> DecodeEstimationRow(
      std::string_view bytes, const Gf2Field* field);
  static Result<FlajoletMartinRow> DecodeFlajoletMartinRow(
      std::string_view bytes);
};

}  // namespace mcf0
