/// \file sketch_codec.hpp
/// \brief Versioned binary wire format for F0 sketch state.
///
/// The paper's composability result (§4) is only useful in practice if a
/// sketch can leave the process that built it: a mapper serializes its
/// local sketch, a reducer deserializes and merges (sketch_merge.hpp).
/// `SketchCodec` defines that interchange format — little-endian, framed,
/// checksummed, and versioned (docs/wire_format.md is the normative spec):
///
///   bytes 0-3   magic "MCF0"
///   bytes 4-5   format version (uint16), 1 or 2
///   byte  6     frame kind (SketchFrameKind)
///   byte  7     reserved, 0
///   bytes 8-15  payload length in bytes (uint64)
///   bytes 16-23 FNV-1a-64 checksum of the payload (uint64)
///   bytes 24-   payload
///
/// Version 1 serializes hash-function state in full (dense matrix rows),
/// so a decoded sketch is self-contained. Version 2 keeps that property
/// while shrinking the bytes: Toeplitz hashes ship their n + m - 1 bit
/// diagonal seed instead of m dense rows, polynomial hashes pack their
/// coefficient lists to the field width, sorted element/value sets are
/// delta + varint coded (KMV values as n-bit preimages where they exist),
/// and a whole-estimator frame whose hashes match what F0RowSampler
/// derives from its own parameters elides hash state entirely. Decoding
/// dispatches on the header's version byte — v1 files stay readable
/// forever — and encoding takes the version as an escape hatch
/// (`mcf0 sketch build --format v1`).
///
/// Decoding never aborts on bad input: truncated buffers, corrupt bytes,
/// bad magic/version/kind, checksum mismatches, and out-of-domain field
/// values all surface as a non-OK `Status`.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Frame kind byte: which object a serialized blob holds.
enum class SketchFrameKind : uint8_t {
  kF0Estimator = 0,
  kBucketingRow = 1,
  kMinimumRow = 2,
  kEstimationRow = 3,
  kFlajoletMartinRow = 4,
};

/// Stateless encode/decode for every sketch type. Encodings are canonical
/// per version: two sketches with equal state produce byte-identical blobs
/// (unordered containers are sorted on the way out), so blob equality is
/// state equality — the merge-algebra tests rely on this.
class SketchCodec {
 public:
  /// v1: dense hash state, fixed-width integers. Frozen; never changes.
  static constexpr uint16_t kFormatV1 = 1;
  /// v2: seed-compressed hashes, delta + varint coded sets.
  static constexpr uint16_t kFormatV2 = 2;
  /// What Encode writes when the caller does not pick a version.
  static constexpr uint16_t kDefaultFormatVersion = kFormatV2;

  static std::string Encode(const F0Estimator& est,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const BucketingSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const MinimumSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const EstimationSketchRow& row,
                            uint16_t version = kDefaultFormatVersion);
  static std::string Encode(const FlajoletMartinRow& row,
                            uint16_t version = kDefaultFormatVersion);

  static Result<F0Estimator> DecodeF0Estimator(std::string_view bytes);

  /// The wire format version a frame claims, from the first six header
  /// bytes (magic checked; payload untouched — O(1), unlike a decode).
  static Result<uint16_t> PeekFormatVersion(std::string_view bytes);
  static Result<BucketingSketchRow> DecodeBucketingRow(std::string_view bytes);
  static Result<MinimumSketchRow> DecodeMinimumRow(std::string_view bytes);
  /// `field` supplies GF(2^w) arithmetic for the decoded hashes and must
  /// outlive the row; it may be null only for a cells-only row.
  static Result<EstimationSketchRow> DecodeEstimationRow(
      std::string_view bytes, const Gf2Field* field);
  static Result<FlajoletMartinRow> DecodeFlajoletMartinRow(
      std::string_view bytes);
};

}  // namespace mcf0
