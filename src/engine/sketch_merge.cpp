#include "engine/sketch_merge.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_set>
#include <type_traits>
#include <utility>
#include <variant>

#include "engine/sketch_codec.hpp"
#include "engine/sketch_reader.hpp"
#include "engine/wire.hpp"

namespace mcf0 {
namespace {

Status Incompatible(const char* what) {
  return Status::InvalidArgument(
      std::string(what) +
      ": sketches are only mergeable when built from the same parameters "
      "and seed (identical hash state)");
}

/// Unions `from` into `acc` when both hold the same row alternative.
Status MergeUnits(SketchReader::Unit& acc, const SketchReader::Unit& from) {
  return std::visit(
      [&](auto& into) -> Status {
        using Row = std::decay_t<decltype(into)>;
        const Row* other = std::get_if<Row>(&from);
        if (other == nullptr) {
          return Status::Internal("sketch merge: row kind mismatch");
        }
        return Merge(into, *other);
      },
      acc);
}

/// Serializes one merged row in estimator-frame context.
void EncodeUnit(wire::ByteWriter& w, const SketchReader::Unit& unit,
                uint16_t version, bool embed_hash) {
  std::visit(
      [&](const auto& row) {
        using Row = std::decay_t<decltype(row)>;
        if constexpr (std::is_same_v<Row, BucketingSketchRow>) {
          wire::EncodeBucketingPayload(w, row, version, embed_hash);
        } else if constexpr (std::is_same_v<Row, MinimumSketchRow>) {
          wire::EncodeMinimumPayload(w, row, version, embed_hash);
        } else if constexpr (std::is_same_v<Row, EstimationSketchRow>) {
          wire::EncodeEstimationPayload(w, row, version, embed_hash);
        } else {
          wire::EncodeFmPayload(w, row, version, embed_hash);
        }
      },
      unit);
}

/// RAII wrapper whose constructor/destructor track how many decoded rows
/// are alive at once — max_resident_units is a *measurement* of these
/// objects' real lifetimes, so a regression that starts buffering rows
/// (e.g. collecting ResidentUnits in a container) shows up in the stat
/// and fails the reducer-memory test.
class ResidentUnit {
 public:
  ResidentUnit(SketchReader::Unit&& unit, int* live, int* peak)
      : unit_(std::move(unit)), live_(live) {
    ++*live_;
    *peak = std::max(*peak, *live_);
  }
  ~ResidentUnit() { --*live_; }
  ResidentUnit(const ResidentUnit&) = delete;
  ResidentUnit& operator=(const ResidentUnit&) = delete;

  SketchReader::Unit& unit() { return unit_; }
  const SketchReader::Unit& unit() const { return unit_; }

 private:
  SketchReader::Unit unit_;
  int* live_;
};

}  // namespace

Status Merge(BucketingSketchRow& into, const BucketingSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("bucketing rows");
  }
  const int n = into.hash().n();
  int level = std::max(into.level(), from.level());
  // The cells are nested, so both buckets re-filtered to the deeper level,
  // unioned, and escalated while saturated reproduce exactly the state of a
  // single pass over the concatenated streams.
  std::unordered_set<uint64_t> bucket;
  for (const uint64_t x : into.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  for (const uint64_t x : from.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  while (bucket.size() > into.thresh() && level < n) {
    ++level;
    std::erase_if(bucket,
                  [&](uint64_t x) { return !into.InCell(x, level); });
  }
  into = BucketingSketchRow(into.hash(), into.thresh(), level,
                            std::move(bucket));
  return Status::Ok();
}

Status Merge(MinimumSketchRow& into, const MinimumSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("minimum rows");
  }
  // AddHashed is the KMV union: set-insert, then drop back to the Thresh
  // smallest.
  for (const BitVec& v : from.values()) into.AddHashed(v);
  return Status::Ok();
}

Status Merge(EstimationSketchRow& into, const EstimationSketchRow& from) {
  if (into.cells().size() != from.cells().size() ||
      !(into.hashes() == from.hashes())) {
    return Incompatible("estimation rows");
  }
  for (size_t j = 0; j < from.cells().size(); ++j) {
    into.Merge(static_cast<int>(j), from.cells()[j]);
  }
  return Status::Ok();
}

Status Merge(FlajoletMartinRow& into, const FlajoletMartinRow& from) {
  if (!(into.hash() == from.hash())) return Incompatible("FM rows");
  into.Merge(from.max_trailing_zeros());
  return Status::Ok();
}

Status Merge(F0Estimator& into, const F0Estimator& from) {
  if (!(into.params() == from.params())) {
    return Incompatible("F0 estimators");
  }
  auto merge_rows = [](auto& dst, const auto& src) -> Status {
    if (dst.size() != src.size()) return Incompatible("F0 estimator rows");
    for (size_t i = 0; i < dst.size(); ++i) {
      Status status = Merge(dst[i], src[i]);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };
  Status status =
      merge_rows(into.mutable_bucketing_rows(), from.bucketing_rows());
  if (!status.ok()) return status;
  status = merge_rows(into.mutable_minimum_rows(), from.minimum_rows());
  if (!status.ok()) return status;
  status = merge_rows(into.mutable_estimation_rows(), from.estimation_rows());
  if (!status.ok()) return status;
  return merge_rows(into.mutable_fm_rows(), from.fm_rows());
}

Result<SketchStreamMergeStats> MergeSketchStreams(
    const std::vector<std::string_view>& inputs, uint16_t out_version,
    std::ostream& out) {
  MCF0_CHECK(out_version == SketchCodec::kFormatV1 ||
             out_version == SketchCodec::kFormatV2);
  if (inputs.empty()) {
    return Status::InvalidArgument("sketch merge needs at least one input");
  }
  std::vector<SketchReader> readers;
  readers.reserve(inputs.size());
  bool all_elided = true;
  for (const std::string_view blob : inputs) {
    auto opened = SketchReader::Open(blob);
    if (!opened.ok()) return opened.status();
    readers.push_back(std::move(opened).value());
    all_elided = all_elided && readers.back().hashes_elided();
  }
  const F0Params& params = readers.front().params();
  for (const SketchReader& reader : readers) {
    if (!(reader.params() == params)) return Incompatible("F0 estimators");
  }
  // Elide hash state only when *every* input frame attested canonical
  // hashes — then each decoded hash (matrices, offsets, and
  // representation-bit counts alike) came from the canonical sampler, so
  // the merged frame round-trips exactly. A partial attestation would
  // almost work (Merge() proves matrix/offset equality row by row), but
  // AffineHash::operator== ignores representation bits, so an embedded
  // input could smuggle nonstandard repr counts into an elided output.
  // With any embedded input, stay conservative and embed.
  const bool elide =
      out_version == SketchCodec::kFormatV2 && all_elided;
  const bool v1_out = out_version == SketchCodec::kFormatV1;

  wire::FrameSink sink(&out, SketchFrameKind::kF0Estimator, out_version);
  const int rows = F0Rows(params);
  {
    wire::ByteWriter prelude;
    wire::EncodeParams(prelude, params);
    if (!v1_out) prelude.U8(elide ? 1 : 0);
    if (params.algorithm == F0Algorithm::kEstimation) {
      const Gf2Field* field = readers.front().field();
      prelude.Count(out_version, static_cast<uint64_t>(field->degree()));
      prelude.U64(field->modulus_low());
    }
    prelude.Count(out_version, static_cast<uint64_t>(rows));
    sink.Append(prelude.Take());
  }

  SketchStreamMergeStats stats;
  int live_units = 0;
  const int num_units = readers.front().num_units();
  for (int k = 0; k < num_units; ++k) {
    if (params.algorithm == F0Algorithm::kEstimation && k == rows) {
      // The FM block's own row count sits between the two row sequences.
      wire::ByteWriter count;
      count.Count(out_version, static_cast<uint64_t>(rows));
      sink.Append(count.Take());
    }
    auto first = readers.front().Next();
    if (!first.ok()) return first.status();
    ResidentUnit acc(std::move(first).value(), &live_units,
                     &stats.max_resident_units);
    for (size_t j = 1; j < readers.size(); ++j) {
      auto next = readers[j].Next();
      if (!next.ok()) return next.status();
      // `from` lives only for this fold: the accumulator plus one
      // in-flight row is the whole decoded footprint.
      const ResidentUnit from(std::move(next).value(), &live_units,
                              &stats.max_resident_units);
      Status status = MergeUnits(acc.unit(), from.unit());
      if (!status.ok()) return status;
    }
    wire::ByteWriter w;
    EncodeUnit(w, acc.unit(), out_version, /*embed_hash=*/!elide);
    sink.Append(w.Take());
    ++stats.units;
  }
  Status status = sink.Finish();
  if (!status.ok()) return status;
  stats.payload_bytes = sink.payload_bytes();
  stats.frame_bytes = sink.payload_bytes() + wire::kHeaderBytes;
  return stats;
}

void BucketingCoordinator::AddTuple(uint64_t fingerprint, int trailing_zeros) {
  auto [it, inserted] = tuples_.emplace(fingerprint, trailing_zeros);
  if (!inserted) it->second = std::max(it->second, trailing_zeros);
}

BucketingCoordinator::LeveledCount BucketingCoordinator::Resolve(
    uint64_t thresh, int start_level, int max_level) const {
  auto count_at = [&](int level) {
    uint64_t c = 0;
    for (const auto& [fp, tz] : tuples_) {
      if (tz >= level) ++c;
    }
    return c;
  };
  LeveledCount result{count_at(start_level), start_level};
  while (result.count >= thresh && result.level < max_level) {
    ++result.level;
    result.count = count_at(result.level);
  }
  return result;
}

}  // namespace mcf0
