#include "engine/sketch_merge.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_set>
#include <type_traits>
#include <utility>
#include <variant>

#include "engine/sketch_codec.hpp"
#include "engine/sketch_reader.hpp"
#include "engine/wire.hpp"

namespace mcf0 {
namespace {

Status Incompatible(const char* what) {
  return Status::InvalidArgument(
      std::string(what) +
      ": sketches are only mergeable when built from the same parameters "
      "and seed (identical hash state)");
}

/// Unions `from` into `acc` when both hold the same row alternative.
Status MergeUnits(SketchReader::Unit& acc, const SketchReader::Unit& from) {
  return std::visit(
      [&](auto& into) -> Status {
        using Row = std::decay_t<decltype(into)>;
        const Row* other = std::get_if<Row>(&from);
        if (other == nullptr) {
          return Status::InvalidArgument("sketch merge: row kind mismatch");
        }
        return Merge(into, *other);
      },
      acc);
}

/// Serializes one merged row in whole-sketch-frame context.
void EncodeUnit(wire::ByteWriter& w, const SketchReader::Unit& unit,
                uint16_t version, bool embed_hash) {
  std::visit(
      [&](const auto& row) {
        using Row = std::decay_t<decltype(row)>;
        if constexpr (std::is_same_v<Row, BucketingSketchRow>) {
          wire::EncodeBucketingPayload(w, row, version, embed_hash);
        } else if constexpr (std::is_same_v<Row, MinimumSketchRow>) {
          wire::EncodeMinimumPayload(w, row, version, embed_hash);
        } else if constexpr (std::is_same_v<Row, EstimationSketchRow>) {
          wire::EncodeEstimationPayload(w, row, version, embed_hash);
        } else if constexpr (std::is_same_v<Row, StructuredBucketRow>) {
          wire::EncodeStructuredBucketPayload(w, row, version, embed_hash);
        } else {
          wire::EncodeFmPayload(w, row, version, embed_hash);
        }
      },
      unit);
}

/// RAII wrapper whose constructor/destructor track how many decoded rows
/// are alive at once — max_resident_units is a *measurement* of these
/// objects' real lifetimes, so a regression that starts buffering rows
/// (e.g. collecting ResidentUnits in a container) shows up in the stat
/// and fails the reducer-memory test.
class ResidentUnit {
 public:
  ResidentUnit(SketchReader::Unit&& unit, int* live, int* peak)
      : unit_(std::move(unit)), live_(live) {
    ++*live_;
    *peak = std::max(*peak, *live_);
  }
  ~ResidentUnit() { --*live_; }
  ResidentUnit(const ResidentUnit&) = delete;
  ResidentUnit& operator=(const ResidentUnit&) = delete;

  SketchReader::Unit& unit() { return unit_; }
  const SketchReader::Unit& unit() const { return unit_; }

 private:
  SketchReader::Unit unit_;
  int* live_;
};

}  // namespace

Status Merge(BucketingSketchRow& into, const BucketingSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("bucketing rows");
  }
  const int n = into.hash().n();
  int level = std::max(into.level(), from.level());
  // The cells are nested, so both buckets re-filtered to the deeper level,
  // unioned, and escalated while saturated reproduce exactly the state of a
  // single pass over the concatenated streams.
  std::unordered_set<uint64_t> bucket;
  for (const uint64_t x : into.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  for (const uint64_t x : from.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  while (bucket.size() > into.thresh() && level < n) {
    ++level;
    std::erase_if(bucket,
                  [&](uint64_t x) { return !into.InCell(x, level); });
  }
  into = BucketingSketchRow(into.hash(), into.thresh(), level,
                            std::move(bucket));
  return Status::Ok();
}

Status Merge(MinimumSketchRow& into, const MinimumSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("minimum rows");
  }
  // AddHashed is the KMV union: set-insert, then drop back to the Thresh
  // smallest.
  for (const BitVec& v : from.values()) into.AddHashed(v);
  return Status::Ok();
}

Status Merge(EstimationSketchRow& into, const EstimationSketchRow& from) {
  if (into.cells().size() != from.cells().size() ||
      !(into.hashes() == from.hashes())) {
    return Incompatible("estimation rows");
  }
  for (size_t j = 0; j < from.cells().size(); ++j) {
    into.Merge(static_cast<int>(j), from.cells()[j]);
  }
  return Status::Ok();
}

Status Merge(FlajoletMartinRow& into, const FlajoletMartinRow& from) {
  if (!(into.hash() == from.hash())) return Incompatible("FM rows");
  into.Merge(from.max_trailing_zeros());
  return Status::Ok();
}

Status Merge(StructuredBucketRow& into, const StructuredBucketRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("structured bucketing rows");
  }
  const int n = into.n();
  int level = std::max(into.level(), from.level());
  // Nested cells again: both buckets re-filtered to the deeper level,
  // unioned, escalated while saturated == the single-pass state.
  std::set<BitVec> bucket;
  for (const BitVec& x : into.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  for (const BitVec& x : from.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  while (bucket.size() > into.thresh() && level < n) {
    ++level;
    std::erase_if(bucket,
                  [&](const BitVec& x) { return !into.InCell(x, level); });
  }
  into = StructuredBucketRow(into.hash(), into.thresh(), level,
                             std::move(bucket));
  return Status::Ok();
}

Status Merge(F0Estimator& into, const F0Estimator& from) {
  if (!(into.params() == from.params())) {
    return Incompatible("F0 estimators");
  }
  // Self-merge is an idempotent no-op; short-circuit before the parts
  // exchange below empties the aliased `from`.
  if (&into == &from) return Status::Ok();
  // The sealed exchange: take the whole state out of `into`, fold `from`'s
  // rows in, and reassemble. The hashes_canonical attestation rides along
  // in the bundle untouched — merging exchanges row *contents* only, and
  // each row Merge() proves hash equality before touching state, so
  // `into`'s own hashes are exactly what they were. Reassembly happens on
  // every path (including row-level failure) so `into` is never left
  // moved-from.
  F0Estimator::Parts parts = std::move(into).ReleaseParts();
  auto merge_rows = [](auto& dst, const auto& src) -> Status {
    if (dst.size() != src.size()) return Incompatible("F0 estimator rows");
    for (size_t i = 0; i < dst.size(); ++i) {
      Status status = Merge(dst[i], src[i]);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };
  Status status = merge_rows(parts.bucketing, from.bucketing_rows());
  if (status.ok()) status = merge_rows(parts.minimum, from.minimum_rows());
  if (status.ok()) {
    status = merge_rows(parts.estimation, from.estimation_rows());
  }
  if (status.ok()) status = merge_rows(parts.fm, from.fm_rows());
  into = F0Estimator::FromParts(std::move(parts));
  return status;
}

Status Merge(StructuredF0& into, const StructuredF0& from) {
  if (!(into.params() == from.params())) {
    return Incompatible("structured F0 sketches");
  }
  if (&into == &from) return Status::Ok();  // see the raw-estimator merge
  // The same sealed exchange as the raw estimator merge: state out, rows
  // folded, state back in on every path, attestation untouched.
  StructuredF0::Parts parts = std::move(into).ReleaseParts();
  auto merge_rows = [](auto& dst, const auto& src) -> Status {
    if (dst.size() != src.size()) return Incompatible("structured F0 rows");
    for (size_t i = 0; i < dst.size(); ++i) {
      Status status = Merge(dst[i], src[i]);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };
  Status status = merge_rows(parts.minimum, from.minimum_rows());
  if (status.ok()) status = merge_rows(parts.bucketing, from.bucketing_rows());
  if (status.ok()) parts.oracle_calls += from.oracle_calls();
  into = StructuredF0::FromParts(std::move(parts));
  return status;
}

Status Merge(SketchVariant& into, const SketchVariant& from) {
  if (into.structured() != from.structured()) {
    return Status::InvalidArgument(
        "cannot merge a raw F0 sketch with a structured sketch");
  }
  return into.structured() ? Merge(into.structured_sketch(),
                                   from.structured_sketch())
                           : Merge(into.raw(), from.raw());
}

Result<SketchStreamMergeStats> MergeSketchStreams(
    const std::vector<LabeledSource>& inputs, uint16_t out_version,
    std::ostream& out) {
  MCF0_CHECK(out_version == SketchCodec::kFormatV1 ||
             out_version == SketchCodec::kFormatV2);
  if (inputs.empty()) {
    return Status::InvalidArgument("sketch merge needs at least one input");
  }
  // Attributes an input's failure to its name — the single-pass contract:
  // whatever goes wrong with shard i (corrupt frame, mismatched
  // parameters, incompatible row) surfaces with inputs[i].name up front,
  // so no caller needs a separate pre-open validation sweep.
  auto attributed = [&](size_t i, const Status& status) {
    return status.WithPrefix(std::string(inputs[i].name));
  };
  std::vector<SketchReader> readers;
  readers.reserve(inputs.size());
  bool all_elided = true;
  for (size_t i = 0; i < inputs.size(); ++i) {
    auto opened = SketchReader::Open(inputs[i].bytes);
    if (!opened.ok()) return attributed(i, opened.status());
    readers.push_back(std::move(opened).value());
    all_elided = all_elided && readers.back().hashes_elided();
  }
  const bool structured = readers.front().structured();
  if (structured && out_version == SketchCodec::kFormatV1) {
    return Status::NotSupported(
        "structured sketch frames require format v2 output");
  }
  for (size_t i = 1; i < readers.size(); ++i) {
    if (readers[i].structured() != structured) {
      if (inputs[i].name.empty()) return Incompatible("F0 sketches");
      return Status::InvalidArgument(
          std::string(inputs[i].name) + " holds a " +
          (readers[i].structured() ? "structured" : "raw") + " sketch but " +
          std::string(inputs.front().name) + " holds a " +
          (structured ? "structured" : "raw") +
          " one (sketch kinds do not merge with each other)");
    }
    const bool same_params =
        structured ? readers[i].structured_params() ==
                         readers.front().structured_params()
                   : readers[i].params() == readers.front().params();
    if (!same_params) {
      if (inputs[i].name.empty()) return Incompatible("F0 sketches");
      return Status::InvalidArgument(
          std::string(inputs[i].name) + ": parameters differ from " +
          std::string(inputs.front().name) +
          " (sketches merge only when built from the same parameters and "
          "seed)");
    }
  }
  // Elide hash state only when *every* input frame attested canonical
  // hashes — then each decoded hash (matrices, offsets, and
  // representation-bit counts alike) came from the canonical sampler, so
  // the merged frame round-trips exactly. A partial attestation would
  // almost work (Merge() proves matrix/offset equality row by row), but
  // AffineHash::operator== ignores representation bits, so an embedded
  // input could smuggle nonstandard repr counts into an elided output.
  // With any embedded input, stay conservative and embed.
  const bool elide =
      out_version == SketchCodec::kFormatV2 && all_elided;
  const bool v1_out = out_version == SketchCodec::kFormatV1;
  const bool estimation =
      !structured &&
      readers.front().params().algorithm == F0Algorithm::kEstimation;

  wire::FrameSink sink(&out,
                       structured ? SketchFrameKind::kStructuredF0
                                  : SketchFrameKind::kF0Estimator,
                       out_version);
  const int rows = structured
                       ? StructuredF0Rows(readers.front().structured_params())
                       : F0Rows(readers.front().params());
  {
    wire::ByteWriter prelude;
    if (structured) {
      wire::EncodeStructuredParams(prelude,
                                   readers.front().structured_params());
      prelude.U8(elide ? 1 : 0);
      prelude.Varint(static_cast<uint64_t>(rows));
    } else {
      const F0Params& params = readers.front().params();
      wire::EncodeParams(prelude, params);
      if (!v1_out) prelude.U8(elide ? 1 : 0);
      if (estimation) {
        const Gf2Field* field = readers.front().field();
        prelude.Count(out_version, static_cast<uint64_t>(field->degree()));
        prelude.U64(field->modulus_low());
      }
      prelude.Count(out_version, static_cast<uint64_t>(rows));
    }
    sink.Append(prelude.Take());
  }

  SketchStreamMergeStats stats;
  int live_units = 0;
  const int num_units = readers.front().num_units();
  for (int k = 0; k < num_units; ++k) {
    if (estimation && k == rows) {
      // The FM block's own row count sits between the two row sequences.
      wire::ByteWriter count;
      count.Count(out_version, static_cast<uint64_t>(rows));
      sink.Append(count.Take());
    }
    auto first = readers.front().Next();
    if (!first.ok()) return attributed(0, first.status());
    ResidentUnit acc(std::move(first).value(), &live_units,
                     &stats.max_resident_units);
    for (size_t j = 1; j < readers.size(); ++j) {
      auto next = readers[j].Next();
      if (!next.ok()) return attributed(j, next.status());
      // `from` lives only for this fold: the accumulator plus one
      // in-flight row is the whole decoded footprint.
      const ResidentUnit from(std::move(next).value(), &live_units,
                              &stats.max_resident_units);
      Status status = MergeUnits(acc.unit(), from.unit());
      if (!status.ok()) return attributed(j, status);
    }
    wire::ByteWriter w;
    EncodeUnit(w, acc.unit(), out_version, /*embed_hash=*/!elide);
    sink.Append(w.Take());
    ++stats.units;
  }
  Status status = sink.Finish();
  if (!status.ok()) return status;
  stats.payload_bytes = sink.payload_bytes();
  stats.frame_bytes = sink.payload_bytes() + wire::kHeaderBytes;
  return stats;
}

Result<SketchStreamMergeStats> MergeSketchStreams(
    const std::vector<std::string_view>& inputs, uint16_t out_version,
    std::ostream& out) {
  std::vector<LabeledSource> labeled;
  labeled.reserve(inputs.size());
  for (const std::string_view bytes : inputs) {
    labeled.push_back(LabeledSource{std::string_view(), bytes});
  }
  return MergeSketchStreams(labeled, out_version, out);
}

void BucketingCoordinator::AddTuple(uint64_t fingerprint, int trailing_zeros) {
  auto [it, inserted] = tuples_.emplace(fingerprint, trailing_zeros);
  if (!inserted) it->second = std::max(it->second, trailing_zeros);
}

BucketingCoordinator::LeveledCount BucketingCoordinator::Resolve(
    uint64_t thresh, int start_level, int max_level) const {
  auto count_at = [&](int level) {
    uint64_t c = 0;
    for (const auto& [fp, tz] : tuples_) {
      if (tz >= level) ++c;
    }
    return c;
  };
  LeveledCount result{count_at(start_level), start_level};
  while (result.count >= thresh && result.level < max_level) {
    ++result.level;
    result.count = count_at(result.level);
  }
  return result;
}

}  // namespace mcf0
