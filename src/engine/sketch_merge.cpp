#include "engine/sketch_merge.hpp"

#include <algorithm>
#include <unordered_set>
#include <utility>

namespace mcf0 {
namespace {

Status Incompatible(const char* what) {
  return Status::InvalidArgument(
      std::string(what) +
      ": sketches are only mergeable when built from the same parameters "
      "and seed (identical hash state)");
}

}  // namespace

Status Merge(BucketingSketchRow& into, const BucketingSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("bucketing rows");
  }
  const int n = into.hash().n();
  int level = std::max(into.level(), from.level());
  // The cells are nested, so both buckets re-filtered to the deeper level,
  // unioned, and escalated while saturated reproduce exactly the state of a
  // single pass over the concatenated streams.
  std::unordered_set<uint64_t> bucket;
  for (const uint64_t x : into.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  for (const uint64_t x : from.bucket()) {
    if (into.InCell(x, level)) bucket.insert(x);
  }
  while (bucket.size() > into.thresh() && level < n) {
    ++level;
    std::erase_if(bucket,
                  [&](uint64_t x) { return !into.InCell(x, level); });
  }
  into = BucketingSketchRow(into.hash(), into.thresh(), level,
                            std::move(bucket));
  return Status::Ok();
}

Status Merge(MinimumSketchRow& into, const MinimumSketchRow& from) {
  if (into.thresh() != from.thresh() || !(into.hash() == from.hash())) {
    return Incompatible("minimum rows");
  }
  // AddHashed is the KMV union: set-insert, then drop back to the Thresh
  // smallest.
  for (const BitVec& v : from.values()) into.AddHashed(v);
  return Status::Ok();
}

Status Merge(EstimationSketchRow& into, const EstimationSketchRow& from) {
  if (into.cells().size() != from.cells().size() ||
      !(into.hashes() == from.hashes())) {
    return Incompatible("estimation rows");
  }
  for (size_t j = 0; j < from.cells().size(); ++j) {
    into.Merge(static_cast<int>(j), from.cells()[j]);
  }
  return Status::Ok();
}

Status Merge(FlajoletMartinRow& into, const FlajoletMartinRow& from) {
  if (!(into.hash() == from.hash())) return Incompatible("FM rows");
  into.Merge(from.max_trailing_zeros());
  return Status::Ok();
}

Status Merge(F0Estimator& into, const F0Estimator& from) {
  if (!(into.params() == from.params())) {
    return Incompatible("F0 estimators");
  }
  auto merge_rows = [](auto& dst, const auto& src) -> Status {
    if (dst.size() != src.size()) return Incompatible("F0 estimator rows");
    for (size_t i = 0; i < dst.size(); ++i) {
      Status status = Merge(dst[i], src[i]);
      if (!status.ok()) return status;
    }
    return Status::Ok();
  };
  Status status =
      merge_rows(into.mutable_bucketing_rows(), from.bucketing_rows());
  if (!status.ok()) return status;
  status = merge_rows(into.mutable_minimum_rows(), from.minimum_rows());
  if (!status.ok()) return status;
  status = merge_rows(into.mutable_estimation_rows(), from.estimation_rows());
  if (!status.ok()) return status;
  return merge_rows(into.mutable_fm_rows(), from.fm_rows());
}

void BucketingCoordinator::AddTuple(uint64_t fingerprint, int trailing_zeros) {
  auto [it, inserted] = tuples_.emplace(fingerprint, trailing_zeros);
  if (!inserted) it->second = std::max(it->second, trailing_zeros);
}

BucketingCoordinator::LeveledCount BucketingCoordinator::Resolve(
    uint64_t thresh, int start_level, int max_level) const {
  auto count_at = [&](int level) {
    uint64_t c = 0;
    for (const auto& [fp, tz] : tuples_) {
      if (tz >= level) ++c;
    }
    return c;
  };
  LeveledCount result{count_at(start_level), start_level};
  while (result.count >= thresh && result.level < max_level) {
    ++result.level;
    result.count = count_at(result.level);
  }
  return result;
}

}  // namespace mcf0
