#include "engine/sharded_engine.hpp"

#include <utility>

#include "common/check.hpp"
#include "engine/sketch_merge.hpp"

namespace mcf0 {
namespace {

/// Elements buffered by Add() before a batch is dispatched. Large enough to
/// amortize the queue handoff, small enough to keep shards busy on modest
/// streams.
constexpr size_t kAddBatchSize = 2048;

/// Bound on batches queued per shard; the producer blocks past this, so a
/// slow consumer exerts backpressure instead of growing memory without
/// limit.
constexpr size_t kMaxQueuedBatches = 64;

}  // namespace

struct ShardedF0Engine::Shard {
  explicit Shard(const F0Params& params)
      : sketch(std::make_unique<F0Estimator>(params)) {}

  std::unique_ptr<F0Estimator> sketch;  // worker-private between flushes
  std::mutex mu;
  std::condition_variable work_ready;  // producer -> worker
  std::condition_variable drained;     // worker -> producer (flush, space)
  std::deque<std::vector<uint64_t>> queue;
  size_t inflight = 0;  // queued batches + the one being absorbed
  bool stop = false;
  std::thread thread;
};

ShardedF0Engine::ShardedF0Engine(const F0Params& params, int num_shards)
    : params_(params) {
  MCF0_CHECK(num_shards >= 1);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(params));
  }
  // Replicas first, threads second: if an estimator constructor throws
  // there are no workers to unwind.
  for (auto& shard : shards_) {
    shard->thread = std::thread(WorkerLoop, shard.get());
  }
}

ShardedF0Engine::~ShardedF0Engine() {
  // Hand the Add() tail buffer to a worker; the workers drain their queues
  // before honoring stop, so nothing ingested is dropped.
  Dispatch(std::move(pending_));
  for (auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->stop = true;
    }
    shard->work_ready.notify_all();
  }
  for (auto& shard : shards_) shard->thread.join();
}

void ShardedF0Engine::WorkerLoop(Shard* shard) {
  for (;;) {
    std::vector<uint64_t> batch;
    {
      std::unique_lock<std::mutex> lock(shard->mu);
      shard->work_ready.wait(
          lock, [shard] { return shard->stop || !shard->queue.empty(); });
      if (shard->queue.empty()) return;  // stop requested, queue drained
      batch = std::move(shard->queue.front());
      shard->queue.pop_front();
    }
    for (const uint64_t x : batch) shard->sketch->Add(x);
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      --shard->inflight;
    }
    shard->drained.notify_all();
  }
}

void ShardedF0Engine::Dispatch(std::vector<uint64_t> batch) {
  if (batch.empty()) return;
  Shard& shard = *shards_[next_shard_];
  next_shard_ = (next_shard_ + 1) % shards_.size();
  {
    std::unique_lock<std::mutex> lock(shard.mu);
    shard.drained.wait(
        lock, [&shard] { return shard.queue.size() < kMaxQueuedBatches; });
    shard.queue.push_back(std::move(batch));
    ++shard.inflight;
  }
  shard.work_ready.notify_one();
}

void ShardedF0Engine::Add(uint64_t x) {
  ++elements_;
  if (pending_.capacity() < kAddBatchSize) pending_.reserve(kAddBatchSize);
  pending_.push_back(x);
  if (pending_.size() >= kAddBatchSize) {
    Dispatch(std::move(pending_));
    pending_.clear();  // moved-from: restore a definite empty state
  }
}

void ShardedF0Engine::AddBatch(std::span<const uint64_t> xs) {
  if (xs.empty()) return;
  elements_ += xs.size();
  Dispatch(std::vector<uint64_t>(xs.begin(), xs.end()));
}

void ShardedF0Engine::Flush() {
  Dispatch(std::move(pending_));
  pending_.clear();
  for (auto& shard : shards_) {
    std::unique_lock<std::mutex> lock(shard->mu);
    shard->drained.wait(lock, [&shard] { return shard->inflight == 0; });
  }
}

F0Estimator ShardedF0Engine::MergedSketch() {
  Flush();
  // A fresh estimator from the same params has identical hash functions and
  // empty state — the natural merge target.
  F0Estimator merged(params_);
  for (auto& shard : shards_) {
    const Status status = Merge(merged, *shard->sketch);
    MCF0_CHECK(status.ok());  // replicas share params by construction
  }
  return merged;
}

double ShardedF0Engine::Estimate() { return MergedSketch().Estimate(); }

size_t ShardedF0Engine::SpaceBits() {
  Flush();
  size_t bits = 0;
  for (const auto& shard : shards_) bits += shard->sketch->SpaceBits();
  return bits;
}

}  // namespace mcf0
