#include "engine/sharded_engine.hpp"

namespace mcf0 {

void AbsorbItem(StructuredF0& sketch, const StructuredItem& item) {
  std::visit(
      [&sketch](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, std::vector<Term>>) {
          sketch.AddTerms(value);
        } else if constexpr (std::is_same_v<T, MultiDimRange>) {
          sketch.AddRange(value);
        } else if constexpr (std::is_same_v<T, AffineSpaceItem>) {
          sketch.AddAffine(value.a, value.b);
        } else {
          sketch.AddElement(value);
        }
      },
      item);
}

}  // namespace mcf0
