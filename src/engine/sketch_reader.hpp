/// \file sketch_reader.hpp
/// \brief Incremental row-at-a-time decode of F0Estimator sketch frames.
///
/// `SketchCodec::DecodeF0Estimator` materializes a whole estimator; a
/// reducer merging many shard files doesn't need that — it folds inputs
/// row by row (sketch_merge.hpp's MergeSketchStreams), so its decoded
/// state stays bounded by a single row no matter how many shards arrive.
/// `SketchReader` is the cursor that makes this possible: it validates the
/// frame header, checksum, and parameters up front, then yields one
/// decoded row per Next() call, in the payload's layout order (for the
/// Estimation algorithm: all Estimation rows, then all FM rows).
///
/// Both wire format versions decode through the same cursor, and both
/// whole-sketch frame kinds: raw `F0Estimator` frames and v2 structured
/// `StructuredF0` frames (frame_kind() says which; structured frames
/// yield MinimumSketchRow or StructuredBucketRow units). For v2 frames
/// with seed-elided hash state ("canonical hashes"), the reader replays
/// the F0RowSampler / StructuredF0RowSampler draws lazily, so even hash
/// reconstruction is row-at-a-time. The whole-sketch decoders are
/// themselves built on this class — there is exactly one decode path to
/// audit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "engine/sketch_codec.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace wire {
class ByteReader;
}  // namespace wire

class SketchReader {
 public:
  /// One decoded row in payload order. Which alternative appears follows
  /// the frame kind and algorithm (Estimation frames yield
  /// EstimationSketchRow for the first F0Rows units, FlajoletMartinRow
  /// for the rest; structured frames yield MinimumSketchRow or
  /// StructuredBucketRow).
  using Unit = std::variant<BucketingSketchRow, MinimumSketchRow,
                            EstimationSketchRow, FlajoletMartinRow,
                            StructuredBucketRow>;

  /// Validates the frame (magic, version, kind, checksum) and the
  /// parameter block. `blob` must outlive the reader — rows are decoded
  /// from views into it.
  static Result<SketchReader> Open(std::string_view blob);

  SketchReader(SketchReader&&) noexcept;
  SketchReader& operator=(SketchReader&&) noexcept;
  ~SketchReader();

  /// Which whole-sketch frame this cursor walks: kF0Estimator or
  /// kStructuredF0.
  SketchFrameKind frame_kind() const { return frame_kind_; }
  bool structured() const {
    return frame_kind_ == SketchFrameKind::kStructuredF0;
  }
  /// Raw-frame parameters; valid only when !structured().
  const F0Params& params() const { return params_; }
  /// Structured-frame parameters; valid only when structured().
  const StructuredF0Params& structured_params() const {
    return structured_params_;
  }
  /// The frame's wire format version (1 or 2).
  uint16_t version() const { return version_; }
  /// True when the frame elides hash state (v2 canonical-hash mode).
  bool hashes_elided() const { return elided_; }
  /// Total units Next() will yield: F0Rows for Bucketing/Minimum and for
  /// structured frames, twice that for Estimation (paired FM rows follow
  /// the Estimation rows).
  int num_units() const { return num_units_; }
  int units_read() const { return units_read_; }
  bool AtEnd() const { return units_read_ == num_units_; }

  /// Decodes and validates the next row. The final unit also checks that
  /// the payload is fully consumed. Estimation rows reference field();
  /// they must not outlive this reader unless TakeField() hands the field
  /// to their new owner.
  Result<Unit> Next();

  /// GF(2^n) arithmetic for decoded Estimation rows (null otherwise).
  const Gf2Field* field() const { return field_.get(); }
  /// Transfers field ownership (for F0Estimator::FromParts); call after
  /// the last Next().
  std::unique_ptr<Gf2Field> TakeField() { return std::move(field_); }

 private:
  SketchReader();

  F0Params params_;
  StructuredF0Params structured_params_;
  SketchFrameKind frame_kind_ = SketchFrameKind::kF0Estimator;
  uint16_t version_ = 0;
  bool elided_ = false;
  int num_units_ = 0;
  int units_read_ = 0;
  uint64_t expected_thresh_ = 0;
  int expected_rows_ = 0;
  int expected_s_ = 0;
  std::unique_ptr<wire::ByteReader> reader_;
  std::unique_ptr<Gf2Field> field_;
  std::optional<F0RowSampler> sampler_;
  std::optional<StructuredF0RowSampler> structured_sampler_;
  // v2 canonical-hash Estimation frames sample (estimation, fm) pairs but
  // lay FM rows out after all Estimation rows. Rather than buffering the
  // FM hashes of the first pass (O(rows) dense matrices — exactly what a
  // bounded-memory reader must not hold), the FM block replays the draws
  // with a second sampler and keeps only the FM half of each pair.
  std::optional<F0RowSampler> fm_replay_sampler_;
  bool fm_count_read_ = false;
};

}  // namespace mcf0
