#include "engine/wire.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "gf2/bitvec.hpp"
#include "gf2/gf2_matrix.hpp"
#include "hash/gf2_poly.hpp"
#include "hash/hash_family.hpp"

namespace mcf0 {
namespace wire {
namespace {

constexpr char kMagic[4] = {'M', 'C', 'F', '0'};

/// Largest element of the n-bit word universe.
uint64_t UniverseMax(int n) {
  return n == 64 ? ~0ull : ((1ull << n) - 1);
}

/// Writes `set` (strictly ascending) as varint(first), then
/// varint(gap - 1) per successor — the v2 delta coding for sorted word
/// sets. Zero gaps are unrepresentable, so duplicates cannot be encoded.
void EncodeAscendingU64Set(ByteWriter& w, const std::vector<uint64_t>& set) {
  for (size_t i = 0; i < set.size(); ++i) {
    w.Varint(i == 0 ? set[0] : set[i] - set[i - 1] - 1);
  }
}

/// Counterpart of EncodeAscendingU64Set: `count` values, all <= `max`.
/// Overflow and out-of-range sums are rejected with their own message,
/// never wrapped and never misreported as truncation (`what` names the
/// field for both diagnostics).
Status DecodeAscendingU64Set(ByteReader& r, uint64_t count, uint64_t max,
                             const char* what, std::vector<uint64_t>* out) {
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!r.Varint(&delta)) return Truncated(what);
    const bool in_range =
        i == 0 ? delta <= max : prev < max && delta <= max - prev - 1;
    if (!in_range) {
      return Status::ParseError(std::string(what) +
                                ": delta-coded set element out of range");
    }
    prev = i == 0 ? delta : prev + delta + 1;
    out->push_back(prev);
  }
  return Status::Ok();
}

/// Solves A x = rhs over GF(2) for many right-hand sides sharing A: one
/// row reduction up front (tracking, per pivot row, which combination of
/// original rows produced it), then each solve is a handful of dot
/// products. Powers the v2 preimage coding of KMV value sets: a Minimum
/// row's values are hash outputs, so storing one n-bit preimage per value
/// beats storing the m = 3n bit value — the decoder just re-hashes.
class PreimageSolver {
 public:
  explicit PreimageSolver(const Gf2Matrix& a) : a_(a) {
    const int m = a.rows();
    for (int i = 0; i < m; ++i) {
      BitVec row = a.Row(i);
      BitVec combo(m);
      combo.Set(i, true);
      for (size_t k = 0; k < rows_.size(); ++k) {
        if (row.Get(pivots_[k])) {
          row ^= rows_[k];
          combo ^= combos_[k];
        }
      }
      const int lead = row.LeadingBit();
      if (lead < 0) continue;  // linearly dependent on earlier rows
      for (size_t k = 0; k < rows_.size(); ++k) {
        if (rows_[k].Get(lead)) {
          rows_[k] ^= row;
          combos_[k] ^= combo;
        }
      }
      rows_.push_back(std::move(row));
      combos_.push_back(std::move(combo));
      pivots_.push_back(lead);
    }
  }

  /// The canonical solution (free variables zero), or nullopt when the
  /// system is inconsistent. Deterministic, so re-encoding a decoded row
  /// reproduces the exact preimage bytes.
  std::optional<BitVec> Solve(const BitVec& rhs) const {
    BitVec x(a_.cols());
    for (size_t k = 0; k < rows_.size(); ++k) {
      if (combos_[k].DotF2(rhs)) x.Set(pivots_[k], true);
    }
    if (!(a_.Mul(x) == rhs)) return std::nullopt;
    return x;
  }

 private:
  const Gf2Matrix& a_;
  std::vector<BitVec> rows_;    // RREF rows of A
  std::vector<BitVec> combos_;  // rows_[k] = combos_[k] · (original rows)
  std::vector<int> pivots_;
};

/// The sorted canonical preimages of every KMV value, or nullopt if any
/// value has none (then the explicit-value fallback encoding is used).
std::optional<std::vector<uint64_t>> KmvPreimages(const MinimumSketchRow& row) {
  if (row.hash().n() > 64) return std::nullopt;
  const PreimageSolver solver(row.hash().A());
  std::vector<uint64_t> preimages;
  preimages.reserve(row.values().size());
  for (const BitVec& value : row.values()) {
    const std::optional<BitVec> x = solver.Solve(value ^ row.hash().b());
    if (!x.has_value()) return std::nullopt;
    preimages.push_back(x->ToU64());
  }
  std::sort(preimages.begin(), preimages.end());
  return preimages;
}

/// The hash of a word-universe sketch row (Bucketing / FM): square, n <= 64.
Status DecodeSquareHash(ByteReader& r, uint16_t version, const char* what,
                        int max_n, std::optional<AffineHash>* out) {
  Status status = DecodeAffineHash(r, version, out);
  if (!status.ok()) return status;
  const AffineHash& h = out->value();
  if (h.n() != h.m() || h.n() > max_n) {
    return Status::ParseError(std::string(what) +
                              ": hash must be square with n <= 64");
  }
  return Status::Ok();
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  Fnv1a64State state;
  state.Update(bytes);
  return state.hash;
}

// ---- ByteWriter -----------------------------------------------------------

void ByteWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Varint(uint64_t v) {
  while (v >= 0x80) {
    U8(static_cast<uint8_t>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  U8(static_cast<uint8_t>(v));
}

void ByteWriter::Count(uint16_t version, uint64_t v) {
  if (version == SketchCodec::kFormatV1) {
    U32(static_cast<uint32_t>(v));
  } else {
    Varint(v);
  }
}

void ByteWriter::BitVecField(const BitVec& v) {
  U32(static_cast<uint32_t>(v.size()));
  RawBits(v);
}

void ByteWriter::RawBits(const BitVec& v) {
  uint8_t byte = 0;
  for (int i = 0; i < v.size(); ++i) {
    byte = static_cast<uint8_t>((byte << 1) | (v.Get(i) ? 1 : 0));
    if ((i & 7) == 7) {
      U8(byte);
      byte = 0;
    }
  }
  if (v.size() & 7) U8(static_cast<uint8_t>(byte << (8 - (v.size() & 7))));
}

void ByteWriter::Uint(uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// ---- ByteReader -----------------------------------------------------------

bool ByteReader::U8(uint8_t* v) {
  if (pos_ + 1 > data_.size()) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool ByteReader::F64(double* v) {
  uint64_t bits = 0;
  if (!U64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool ByteReader::Varint(uint64_t* v) {
  const size_t start = pos_;
  uint64_t out = 0;
  for (int i = 0; i < 10; ++i) {
    uint8_t byte = 0;
    if (!U8(&byte)) {
      pos_ = start;
      return false;
    }
    const uint64_t group = byte & 0x7f;
    // The 10th byte holds bits 63..70; anything above bit 63 overflows.
    if (i == 9 && group > 1) {
      pos_ = start;
      return false;
    }
    out |= group << (7 * i);
    if ((byte & 0x80) == 0) {
      // Minimal form: a multi-byte encoding must not end in a zero group.
      if (i > 0 && group == 0) {
        pos_ = start;
        return false;
      }
      *v = out;
      return true;
    }
  }
  pos_ = start;
  return false;  // continuation bit set on the 10th byte
}

bool ByteReader::Count(uint16_t version, uint64_t* v) {
  if (version == SketchCodec::kFormatV1) {
    uint32_t v32 = 0;
    if (!U32(&v32)) return false;
    *v = v32;
    return true;
  }
  return Varint(v);
}

bool ByteReader::BitVecField(BitVec* v) {
  uint32_t size = 0;
  if (!U32(&size)) return false;
  if (size > 8 * Remaining()) return false;
  return RawBits(static_cast<int>(size), v);
}

bool ByteReader::RawBits(int nbits, BitVec* v) {
  if (static_cast<size_t>((nbits + 7) / 8) > Remaining()) return false;
  BitVec out(nbits);
  uint8_t byte = 0;
  for (int i = 0; i < nbits; ++i) {
    if ((i & 7) == 0 && !U8(&byte)) return false;
    if ((byte >> (7 - (i & 7))) & 1) out.Set(i, true);
  }
  if ((nbits & 7) != 0 && (byte & ((1u << (8 - (nbits & 7))) - 1)) != 0) {
    return false;  // nonzero pad bits: not a canonical encoding
  }
  *v = std::move(out);
  return true;
}

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated sketch data in ") + what);
}

// ---- frame ----------------------------------------------------------------

std::string WrapFrame(SketchFrameKind kind, uint16_t version,
                      std::string payload) {
  return WrapFrameRaw(static_cast<uint8_t>(kind), version, std::move(payload));
}

std::string WrapFrameRaw(uint8_t kind, uint16_t version, std::string payload) {
  ByteWriter header;
  for (const char c : kMagic) header.U8(static_cast<uint8_t>(c));
  header.U16(version);
  header.U8(kind);
  header.U8(0);  // reserved
  header.U64(payload.size());
  header.U64(Fnv1a64(payload));
  return header.Take() + payload;
}

Status ParseFrameHeader(std::string_view bytes, FrameHeader* out) {
  if (bytes.size() < kHeaderBytes) return Truncated("frame header");
  ByteReader reader(bytes.substr(0, kHeaderBytes));
  for (const char expect : kMagic) {
    uint8_t got = 0;
    reader.U8(&got);
    if (got != static_cast<uint8_t>(expect)) {
      return Status::ParseError("bad magic: not an mcf0 frame");
    }
  }
  uint8_t reserved = 0;
  reader.U16(&out->version);
  reader.U8(&out->kind);
  reader.U8(&reserved);
  reader.U64(&out->payload_size);
  reader.U64(&out->checksum);
  if (reserved != 0) {
    return Status::ParseError("nonzero reserved byte in frame header");
  }
  return Status::Ok();
}

Status CheckFramePayload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_size) {
    return Status::Internal("frame payload size does not match its header");
  }
  if (Fnv1a64(payload) != header.checksum) {
    return Status::ParseError("frame payload checksum mismatch (corrupt)");
  }
  return Status::Ok();
}

Result<std::string_view> UnwrapFrame(std::string_view bytes,
                                     SketchFrameKind want, uint16_t* version) {
  if (bytes.size() < kHeaderBytes) return Truncated("frame header");
  ByteReader reader(bytes.substr(0, kHeaderBytes));
  for (const char expect : kMagic) {
    uint8_t got = 0;
    reader.U8(&got);
    if (got != static_cast<uint8_t>(expect)) {
      return Status::ParseError("bad magic: not an mcf0 sketch blob");
    }
  }
  uint8_t kind = 0;
  uint8_t reserved = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  reader.U16(version);
  reader.U8(&kind);
  reader.U8(&reserved);
  reader.U64(&payload_size);
  reader.U64(&checksum);
  if (*version != SketchCodec::kFormatV1 &&
      *version != SketchCodec::kFormatV2) {
    return Status::NotSupported(
        "sketch format version " + std::to_string(*version) +
        " (this build reads " + std::to_string(SketchCodec::kFormatV1) +
        " and " + std::to_string(SketchCodec::kFormatV2) + ")");
  }
  if (kind != static_cast<uint8_t>(want)) {
    return Status::InvalidArgument("sketch frame kind " + std::to_string(kind) +
                                   " does not match the requested object");
  }
  if (reserved != 0) {
    return Status::ParseError("nonzero reserved byte in sketch header");
  }
  if (payload_size != bytes.size() - kHeaderBytes) {
    return payload_size > bytes.size() - kHeaderBytes
               ? Truncated("frame payload")
               : Status::ParseError("trailing bytes after sketch payload");
  }
  const std::string_view payload = bytes.substr(kHeaderBytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::ParseError("sketch payload checksum mismatch (corrupt)");
  }
  return payload;
}

FrameSink::FrameSink(std::ostream* out, SketchFrameKind kind, uint16_t version)
    : out_(out), header_pos_(out->tellp()) {
  ByteWriter header;
  for (const char c : kMagic) header.U8(static_cast<uint8_t>(c));
  header.U16(version);
  header.U8(static_cast<uint8_t>(kind));
  header.U8(0);  // reserved
  header.U64(0);  // payload length, patched by Finish()
  header.U64(0);  // checksum, patched by Finish()
  const std::string bytes = header.Take();
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FrameSink::Append(std::string_view payload_chunk) {
  MCF0_CHECK(!finished_);
  fnv_.Update(payload_chunk);
  bytes_ += payload_chunk.size();
  out_->write(payload_chunk.data(),
              static_cast<std::streamsize>(payload_chunk.size()));
}

Status FrameSink::Finish() {
  MCF0_CHECK(!finished_);
  finished_ = true;
  const std::streampos end = out_->tellp();
  out_->seekp(header_pos_ + std::streamoff(8));
  ByteWriter tail;
  tail.U64(bytes_);
  tail.U64(fnv_.hash);
  const std::string bytes = tail.Take();
  out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out_->seekp(end);
  // The destination stream failing is an environment problem (disk full,
  // pipe closed), not a codec bug: kUnavailable, so the server can map it
  // to the matching protocol error frame.
  if (!*out_) {
    return Status::Unavailable("sketch frame sink: stream write failed");
  }
  return Status::Ok();
}

// ---- AffineHash -----------------------------------------------------------

void EncodeAffineHash(ByteWriter& w, const AffineHash& h, uint16_t version) {
  if (version == SketchCodec::kFormatV1) {
    w.U8(static_cast<uint8_t>(h.kind()));
    w.U32(static_cast<uint32_t>(h.n()));
    w.U32(static_cast<uint32_t>(h.m()));
    w.U64(h.RepresentationBits());
    w.BitVecField(h.b());
    for (int i = 0; i < h.m(); ++i) w.BitVecField(h.A().Row(i));
    return;
  }
  // v2: Toeplitz hashes ship their n + m - 1 bit diagonal seed; everything
  // else falls back to dense rows (without v1's per-row length prefixes).
  // The seed path is capped at n <= 64, m <= 4096 — far beyond any real
  // hash (word universes cap n at 64, Minimum uses m = 3n) — because the
  // decoder must refuse to densify a quadratically amplified matrix from
  // a small seed; dense encodings cost file bytes proportionally, so they
  // need no such cap.
  const bool seeded = h.kind() == AffineHashKind::kToeplitz &&
                      h.HasToeplitzMatrix() && h.n() <= 64 && h.m() <= 4096;
  w.U8(static_cast<uint8_t>(h.kind()));
  w.Varint(static_cast<uint64_t>(h.n()));
  w.Varint(static_cast<uint64_t>(h.m()));
  w.Varint(h.RepresentationBits());
  w.U8(seeded ? 1 : 0);
  w.RawBits(h.b());
  if (seeded) {
    w.RawBits(h.ToeplitzSeed());
  } else {
    for (int i = 0; i < h.m(); ++i) w.RawBits(h.A().Row(i));
  }
}

Status DecodeAffineHash(ByteReader& r, uint16_t version,
                        std::optional<AffineHash>* out) {
  if (version == SketchCodec::kFormatV1) {
    uint8_t kind = 0;
    uint32_t n = 0;
    uint32_t m = 0;
    uint64_t repr_bits = 0;
    if (!r.U8(&kind) || !r.U32(&n) || !r.U32(&m) || !r.U64(&repr_bits)) {
      return Truncated("hash function");
    }
    if (kind > static_cast<uint8_t>(AffineHashKind::kSparseXor)) {
      return Status::ParseError("unknown hash kind " + std::to_string(kind));
    }
    // Every matrix row costs at least its 4-byte length prefix, so more
    // claimed rows than remaining/4 is hostile. (Decode loops deliberately
    // avoid reserve(): element objects are much larger than their wire
    // encodings, so pre-reserving would let a small crafted file force a
    // huge allocation — an uncaught std::bad_alloc — before the per-element
    // reads could fail. Geometric push_back growth stays proportional to
    // bytes actually decoded.)
    if (n < 1 || m < 1 || m > r.Remaining() / 4) {
      return Status::ParseError("hash dimensions out of range");
    }
    BitVec b;
    if (!r.BitVecField(&b)) return Truncated("hash offset");
    if (b.size() != static_cast<int>(m)) {
      return Status::ParseError("hash offset length mismatch");
    }
    std::vector<BitVec> rows;
    for (uint32_t i = 0; i < m; ++i) {
      BitVec row;
      if (!r.BitVecField(&row)) return Truncated("hash matrix row");
      if (row.size() != static_cast<int>(n)) {
        return Status::ParseError("hash matrix row length mismatch");
      }
      rows.push_back(std::move(row));
    }
    out->emplace(AffineHash::FromParts(Gf2Matrix::FromRows(std::move(rows)),
                                       std::move(b),
                                       static_cast<AffineHashKind>(kind),
                                       repr_bits));
    return Status::Ok();
  }

  uint8_t kind = 0;
  uint64_t n = 0;
  uint64_t m = 0;
  uint64_t repr_bits = 0;
  uint8_t seeded = 0;
  if (!r.U8(&kind) || !r.Varint(&n) || !r.Varint(&m) || !r.Varint(&repr_bits) ||
      !r.U8(&seeded)) {
    return Truncated("hash function");
  }
  if (kind > static_cast<uint8_t>(AffineHashKind::kSparseXor)) {
    return Status::ParseError("unknown hash kind " + std::to_string(kind));
  }
  // RawBits bounds every bit-string read against the remaining bytes
  // before allocating; the cap here only keeps the int casts below safe.
  if (n < 1 || m < 1 || n > (1u << 24) || m > (1u << 24)) {
    return Status::ParseError("hash dimensions out of range");
  }
  if (seeded > 1) {
    return Status::ParseError("bad hash matrix marker " +
                              std::to_string(seeded));
  }
  if (seeded == 1 && kind != static_cast<uint8_t>(AffineHashKind::kToeplitz)) {
    return Status::ParseError("seed-coded hash must be Toeplitz");
  }
  if (seeded == 1 && (n > 64 || m > 4096)) {
    // Densifying an m x n matrix from an (n + m - 1)-bit seed amplifies a
    // small blob quadratically; no canonical encoder emits seeds at these
    // dimensions, so reject before allocating (never bad_alloc-abort).
    return Status::ParseError("seed-coded hash dimensions out of range");
  }
  BitVec b;
  if (!r.RawBits(static_cast<int>(m), &b)) return Truncated("hash offset");
  if (seeded == 1) {
    BitVec seed;
    if (!r.RawBits(static_cast<int>(n + m - 1), &seed)) {
      return Truncated("hash Toeplitz seed");
    }
    out->emplace(AffineHash::FromToeplitzSeed(static_cast<int>(n),
                                              static_cast<int>(m), seed,
                                              std::move(b), repr_bits));
    return Status::Ok();
  }
  std::vector<BitVec> rows;
  for (uint64_t i = 0; i < m; ++i) {
    BitVec row;
    if (!r.RawBits(static_cast<int>(n), &row)) {
      return Truncated("hash matrix row");
    }
    rows.push_back(std::move(row));
  }
  out->emplace(AffineHash::FromParts(Gf2Matrix::FromRows(std::move(rows)),
                                     std::move(b),
                                     static_cast<AffineHashKind>(kind),
                                     repr_bits));
  return Status::Ok();
}

// ---- parameters -----------------------------------------------------------

void EncodeParams(ByteWriter& w, const F0Params& p) {
  w.U8(static_cast<uint8_t>(p.algorithm));
  w.U8(static_cast<uint8_t>(p.n));
  w.F64(p.eps);
  w.F64(p.delta);
  w.U64(p.seed);
  w.U64(p.thresh_override);
  w.U32(static_cast<uint32_t>(p.rows_override));
  w.U32(static_cast<uint32_t>(p.s_override));
}

Status DecodeParams(ByteReader& r, F0Params* out) {
  uint8_t algorithm = 0;
  uint8_t n = 0;
  uint32_t rows_override = 0;
  uint32_t s_override = 0;
  if (!r.U8(&algorithm) || !r.U8(&n) || !r.F64(&out->eps) ||
      !r.F64(&out->delta) || !r.U64(&out->seed) ||
      !r.U64(&out->thresh_override) || !r.U32(&rows_override) ||
      !r.U32(&s_override)) {
    return Truncated("sketch parameters");
  }
  if (algorithm > static_cast<uint8_t>(F0Algorithm::kEstimation)) {
    return Status::ParseError("unknown sketch algorithm " +
                              std::to_string(algorithm));
  }
  if (n < 1 || n > 64) return Status::ParseError("sketch n outside [1, 64]");
  if (!std::isfinite(out->eps) || out->eps <= 0) {
    return Status::ParseError("sketch eps must be positive and finite");
  }
  // When the override is zero, F0Thresh computes 96/eps^2 and casts it to
  // uint64 — UB past 2^64 — so bound eps exactly where that hazard exists
  // (no real sketch comes near eps = 1e-6: thresh would be ~10^14 values
  // per row). Files carrying an explicit override never hit the formula,
  // and rejecting them would break previously-valid v1 files.
  if (out->thresh_override == 0 && out->eps < 1e-6) {
    return Status::ParseError(
        "sketch eps below 1e-6 needs an explicit thresh override");
  }
  if (!std::isfinite(out->delta) || out->delta <= 0 || out->delta >= 1) {
    return Status::ParseError("sketch delta outside (0, 1)");
  }
  const auto int_max =
      static_cast<uint32_t>(std::numeric_limits<int>::max());
  if (rows_override > int_max || s_override > int_max) {
    return Status::ParseError("sketch row/s override out of range");
  }
  out->algorithm = static_cast<F0Algorithm>(algorithm);
  out->n = n;
  out->rows_override = static_cast<int>(rows_override);
  out->s_override = static_cast<int>(s_override);
  return Status::Ok();
}

// ---- Bucketing row --------------------------------------------------------

void EncodeBucketingPayload(ByteWriter& w, const BucketingSketchRow& row,
                            uint16_t version, bool embed_hash) {
  if (version == SketchCodec::kFormatV1) {
    EncodeAffineHash(w, row.hash(), version);
    w.U64(row.thresh());
    w.U32(static_cast<uint32_t>(row.level()));
    std::vector<uint64_t> elems(row.bucket().begin(), row.bucket().end());
    std::sort(elems.begin(), elems.end());  // canonical order
    w.U64(elems.size());
    for (const uint64_t x : elems) w.U64(x);
    return;
  }
  if (embed_hash) EncodeAffineHash(w, row.hash(), version);
  w.Varint(row.thresh());
  w.Varint(static_cast<uint64_t>(row.level()));
  std::vector<uint64_t> elems(row.bucket().begin(), row.bucket().end());
  std::sort(elems.begin(), elems.end());
  w.Varint(elems.size());
  EncodeAscendingU64Set(w, elems);
}

Status DecodeBucketingPayload(ByteReader& r, uint16_t version,
                              const AffineHash* elided_hash,
                              std::optional<BucketingSketchRow>* out) {
  const bool v1 = version == SketchCodec::kFormatV1;
  std::optional<AffineHash> h;
  if (elided_hash != nullptr) {
    h = *elided_hash;
  } else {
    Status status = DecodeSquareHash(r, version, "bucketing row", 64, &h);
    if (!status.ok()) return status;
  }
  uint64_t thresh = 0;
  uint64_t level = 0;
  uint64_t count = 0;
  if (v1) {
    uint32_t level32 = 0;
    if (!r.U64(&thresh) || !r.U32(&level32) || !r.U64(&count)) {
      return Truncated("bucketing row");
    }
    level = level32;
  } else if (!r.Varint(&thresh) || !r.Varint(&level) || !r.Varint(&count)) {
    return Truncated("bucketing row");
  }
  if (thresh < 1) return Status::ParseError("bucketing thresh must be >= 1");
  if (level > static_cast<uint64_t>(h->n())) {
    return Status::ParseError("bucketing level exceeds hash width");
  }
  if (count > r.Remaining() / (v1 ? 8 : 1)) {
    return Truncated("bucketing bucket");
  }
  std::unordered_set<uint64_t> bucket;
  if (v1) {
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t x = 0;
      if (!r.U64(&x)) return Truncated("bucketing bucket");
      bucket.insert(x);
    }
  } else {
    // Bucket elements are the raw 64-bit stream words (ingestion stores
    // them unmasked; only their hash is n-bit), so the full u64 range is
    // the bound — matching v1, which shipped raw U64s.
    std::vector<uint64_t> elems;
    Status status =
        DecodeAscendingU64Set(r, count, ~0ull, "bucketing bucket", &elems);
    if (!status.ok()) return status;
    bucket.insert(elems.begin(), elems.end());
  }
  // No reachable state holds more than thresh elements below the deepest
  // level (Add escalates past thresh while level < n).
  if (level < static_cast<uint64_t>(h->n()) && bucket.size() > thresh) {
    return Status::ParseError("bucketing bucket exceeds thresh below level n");
  }
  out->emplace(*std::move(h), thresh, static_cast<int>(level),
               std::move(bucket));
  // The from-parts invariant: every element lies in the cell at `level`.
  // Without this, a crafted file could inflate |bucket| * 2^level estimates
  // and break "blob equality is state equality" (Merge would re-filter).
  const BucketingSketchRow& row = out->value();
  for (const uint64_t x : row.bucket()) {
    if (!row.InCell(x, row.level())) {
      return Status::ParseError(
          "bucketing element outside the cell at its level");
    }
  }
  return Status::Ok();
}

// ---- Minimum row ----------------------------------------------------------

void EncodeMinimumPayload(ByteWriter& w, const MinimumSketchRow& row,
                          uint16_t version, bool embed_hash) {
  if (version == SketchCodec::kFormatV1) {
    EncodeAffineHash(w, row.hash(), version);
    w.U64(row.thresh());
    w.U64(row.values().size());  // std::set iterates in canonical order
    for (const BitVec& v : row.values()) w.BitVecField(v);
    return;
  }
  if (embed_hash) EncodeAffineHash(w, row.hash(), version);
  w.Varint(row.thresh());
  w.Varint(row.values().size());
  // Preimage coding: each m = 3n bit KMV value shrinks to the n-bit
  // element that hashes to it, delta-coded as a sorted set; the decoder
  // re-hashes. Values without preimages (inserted via AddHashed by the §4
  // and §5 protocols) fall back to explicit sorted values.
  const std::optional<std::vector<uint64_t>> preimages = KmvPreimages(row);
  w.U8(preimages.has_value() ? 1 : 0);
  if (preimages.has_value()) {
    EncodeAscendingU64Set(w, *preimages);
  } else {
    for (const BitVec& v : row.values()) w.RawBits(v);
  }
}

Status DecodeMinimumPayload(ByteReader& r, uint16_t version,
                            const AffineHash* elided_hash,
                            std::optional<MinimumSketchRow>* out,
                            bool wide_universe) {
  const bool v1 = version == SketchCodec::kFormatV1;
  std::optional<AffineHash> h;
  if (elided_hash != nullptr) {
    h = *elided_hash;
  } else {
    Status status = DecodeAffineHash(r, version, &h);
    if (!status.ok()) return status;
  }
  if (h->n() > 64 && !wide_universe) {
    // Add() maps word elements through h, so the input side must be a
    // word universe (the output side m is unconstrained). Structured
    // frames lift the bound: their rows are BitVec-fed (AddHashed).
    return Status::ParseError("minimum row: hash input width exceeds 64");
  }
  uint64_t thresh = 0;
  uint64_t count = 0;
  if (v1 ? (!r.U64(&thresh) || !r.U64(&count))
         : (!r.Varint(&thresh) || !r.Varint(&count))) {
    return Truncated("minimum row");
  }
  if (thresh < 1) return Status::ParseError("minimum thresh must be >= 1");
  if (count > thresh) {
    return Status::ParseError("minimum row holds more values than thresh");
  }
  if (count > r.Remaining()) return Truncated("minimum values");
  if (v1) {
    out->emplace(*std::move(h), thresh);
    for (uint64_t i = 0; i < count; ++i) {
      BitVec v;
      if (!r.BitVecField(&v)) return Truncated("minimum values");
      if (v.size() != out->value().output_bits()) {
        return Status::ParseError("minimum value width mismatch");
      }
      out->value().AddHashed(v);
    }
    return Status::Ok();
  }
  uint8_t preimage_coded = 0;
  if (!r.U8(&preimage_coded)) return Truncated("minimum row");
  if (preimage_coded > 1) {
    return Status::ParseError("bad minimum value-set marker " +
                              std::to_string(preimage_coded));
  }
  if (preimage_coded == 1 && h->n() > 64) {
    // Preimages are u64 deltas; the canonical encoder never preimage-codes
    // a wide-universe (structured) row.
    return Status::ParseError("minimum preimage coding needs n <= 64");
  }
  const int n = h->n();
  out->emplace(*std::move(h), thresh);
  MinimumSketchRow& row = out->value();
  if (preimage_coded == 1) {
    std::vector<uint64_t> preimages;
    Status set_status = DecodeAscendingU64Set(r, count, UniverseMax(n),
                                              "minimum values", &preimages);
    if (!set_status.ok()) return set_status;
    for (const uint64_t x : preimages) row.Add(x);
    if (row.values().size() != count) {
      // Two preimages collided on one hash value; the canonical encoder
      // derives one preimage per distinct value, so this blob is bogus.
      return Status::ParseError("minimum preimages collide");
    }
    // Canonicality: each shipped preimage must be the solver's own
    // (free-variables-zero) solution — for a rank-deficient hash, x ⊕ k
    // with kernel vector k would hash identically, and accepting it would
    // give one row state two wire encodings, unlike every other v2 field.
    if (count > 0) {
      const PreimageSolver solver(row.hash().A());
      for (const uint64_t x : preimages) {
        const BitVec hashed =
            row.hash().Eval(BitVec::FromU64(x, n)) ^ row.hash().b();
        const std::optional<BitVec> canonical = solver.Solve(hashed);
        if (!canonical.has_value() || canonical->ToU64() != x) {
          return Status::ParseError("minimum preimage is not canonical");
        }
      }
    }
    return Status::Ok();
  }
  BitVec prev;
  for (uint64_t i = 0; i < count; ++i) {
    BitVec v;
    if (!r.RawBits(row.output_bits(), &v)) return Truncated("minimum values");
    if (i > 0 && !(prev < v)) {
      return Status::ParseError("minimum values not strictly ascending");
    }
    prev = v;
    row.AddHashed(v);
  }
  return Status::Ok();
}

// ---- Estimation row -------------------------------------------------------

namespace {

/// Bits per packed v2 cell counter: cells hold trailing-zero counts in
/// [0, D] where D is the hash width (the field degree, or 64 for a
/// cells-only row), so ceil(log2(D + 1)) bits suffice — 6 for the default
/// n = 32 sketches, 7 at most. Both sides derive D the same way, from the
/// (decoded or to-be-encoded) hash list, so the width is never stored.
int CellBits(int max_cell) {
  return std::bit_width(static_cast<unsigned>(max_cell));
}

/// Packs `cells` at `cell_bits` bits each, MSB-first within bytes, zero
/// pad bits — the v2 cell-block layout.
void PackCells(ByteWriter& w, const std::vector<int>& cells, int cell_bits) {
  uint32_t acc = 0;
  int nbits = 0;
  for (const int c : cells) {
    acc = (acc << cell_bits) | static_cast<uint32_t>(c);
    nbits += cell_bits;
    while (nbits >= 8) {
      w.U8(static_cast<uint8_t>(acc >> (nbits - 8)));
      nbits -= 8;
      acc &= (1u << nbits) - 1;
    }
  }
  if (nbits > 0) w.U8(static_cast<uint8_t>(acc << (8 - nbits)));
}

/// Counterpart of PackCells; rejects out-of-domain counters and nonzero
/// pad bits (one canonical encoding per cell vector).
Status UnpackCells(ByteReader& r, uint64_t count, int cell_bits, int max_cell,
                   std::vector<int>* out) {
  uint32_t acc = 0;
  int nbits = 0;
  for (uint64_t i = 0; i < count; ++i) {
    while (nbits < cell_bits) {
      uint8_t byte = 0;
      if (!r.U8(&byte)) return Truncated("estimation cells");
      acc = (acc << 8) | byte;
      nbits += 8;
    }
    const uint32_t cell =
        (acc >> (nbits - cell_bits)) & ((1u << cell_bits) - 1);
    nbits -= cell_bits;
    acc &= (1u << nbits) - 1;
    if (cell > static_cast<uint32_t>(max_cell)) {
      return Status::ParseError("estimation cell exceeds the hash width");
    }
    out->push_back(static_cast<int>(cell));
  }
  if (acc != 0) {
    return Status::ParseError("nonzero pad bits in estimation cell block");
  }
  return Status::Ok();
}

}  // namespace

void EncodeEstimationPayload(ByteWriter& w, const EstimationSketchRow& row,
                             uint16_t version, bool embed_hash) {
  if (version == SketchCodec::kFormatV1) {
    w.U8(row.hashes().empty() ? 0 : 1);
    if (!row.hashes().empty()) {
      w.U32(static_cast<uint32_t>(row.hashes().size()));
      for (const PolynomialHash& h : row.hashes()) {
        w.U32(static_cast<uint32_t>(h.s()));
        for (const uint64_t c : h.coeffs()) w.U64(c);
      }
    }
    w.U32(static_cast<uint32_t>(row.cells().size()));
    for (const int c : row.cells()) w.U8(static_cast<uint8_t>(c));
    return;
  }
  if (embed_hash) {
    w.U8(row.hashes().empty() ? 0 : 1);
    if (!row.hashes().empty()) {
      // Coefficients are field elements of w bits; ship exactly
      // ceil(w/8) bytes each instead of v1's fixed 8.
      const int degree = row.hashes().front().field_degree();
      const int coeff_bytes = (degree + 7) / 8;
      w.Varint(row.hashes().size());
      for (const PolynomialHash& h : row.hashes()) {
        w.Varint(static_cast<uint64_t>(h.s()));
        for (const uint64_t c : h.coeffs()) w.UintN(c, coeff_bytes);
      }
    }
  }
  w.Varint(row.cells().size());
  const int max_cell =
      row.hashes().empty() ? 64 : row.hashes().front().field_degree();
  PackCells(w, row.cells(), CellBits(max_cell));
}

Status DecodeEstimationPayload(ByteReader& r, uint16_t version,
                               const Gf2Field* field,
                               std::vector<PolynomialHash>* elided,
                               std::optional<EstimationSketchRow>* out) {
  const bool v1 = version == SketchCodec::kFormatV1;
  std::vector<PolynomialHash> hashes;
  if (elided != nullptr) {
    MCF0_CHECK(!v1 && field != nullptr);
    hashes = std::move(*elided);
  } else {
    uint8_t has_hashes = 0;
    if (!r.U8(&has_hashes)) return Truncated("estimation row");
    if (has_hashes > 1) {
      return Status::ParseError("estimation row has a bad hash marker");
    }
    if (has_hashes == 1) {
      if (field == nullptr) {
        return Status::InvalidArgument(
            "estimation row carries hashes but no field was supplied");
      }
      const uint64_t mask = field->degree() == 64
                                ? ~0ull
                                : ((1ull << field->degree()) - 1);
      const int coeff_bytes = (field->degree() + 7) / 8;
      uint64_t num_hashes = 0;
      if (!r.Count(version, &num_hashes)) return Truncated("estimation row");
      if (num_hashes > r.Remaining() / (v1 ? 4 : 1)) {
        return Truncated("estimation hashes");
      }
      for (uint64_t i = 0; i < num_hashes; ++i) {
        uint64_t s = 0;
        if (!r.Count(version, &s)) return Truncated("estimation hashes");
        if (s < 1) return Status::ParseError("estimation hash needs s >= 1");
        if (s > r.Remaining() / (v1 ? 8 : 1)) {
          return Truncated("estimation hashes");
        }
        std::vector<uint64_t> coeffs(s);
        for (auto& c : coeffs) {
          if (v1 ? !r.U64(&c) : !r.UintN(&c, coeff_bytes)) {
            return Truncated("estimation hashes");
          }
          if ((c & ~mask) != 0) {
            return Status::ParseError("estimation coefficient outside GF(2^w)");
          }
        }
        hashes.emplace_back(field, std::move(coeffs));
      }
    }
  }
  uint64_t num_cells = 0;
  if (!r.Count(version, &num_cells)) return Truncated("estimation cells");
  if (num_cells < 1) return Status::ParseError("estimation row has no cells");
  if (!hashes.empty() && hashes.size() != num_cells) {
    return Status::ParseError("estimation hash/cell count mismatch");
  }
  const int max_cell = field != nullptr ? field->degree() : 64;
  std::vector<int> cells;
  if (v1) {
    if (num_cells > r.Remaining()) return Truncated("estimation cells");
    for (uint64_t i = 0; i < num_cells; ++i) {
      uint8_t v = 0;
      if (!r.U8(&v)) return Truncated("estimation cells");
      if (v > max_cell) {
        return Status::ParseError("estimation cell exceeds the hash width");
      }
      cells.push_back(v);
    }
  } else {
    // v2 packs counters at CellBits(D) bits each, D derived from the hash
    // list exactly as the encoder derives it. Bound the claimed count
    // before allocating: every cell costs at least one bit.
    const int cell_bits = CellBits(hashes.empty() ? 64 : field->degree());
    if (num_cells > 8 * r.Remaining()) return Truncated("estimation cells");
    if ((num_cells * static_cast<uint64_t>(cell_bits) + 7) / 8 >
        r.Remaining()) {
      return Truncated("estimation cells");
    }
    Status status = UnpackCells(r, num_cells, cell_bits, max_cell, &cells);
    if (!status.ok()) return status;
  }
  out->emplace(hashes.empty() ? nullptr : field, std::move(hashes),
               std::move(cells));
  return Status::Ok();
}

// ---- Flajolet-Martin row --------------------------------------------------

void EncodeFmPayload(ByteWriter& w, const FlajoletMartinRow& row,
                     uint16_t version, bool embed_hash) {
  if (version == SketchCodec::kFormatV1) {
    EncodeAffineHash(w, row.hash(), version);
    w.U32(static_cast<uint32_t>(row.max_trailing_zeros()));
    return;
  }
  if (embed_hash) EncodeAffineHash(w, row.hash(), version);
  w.Varint(static_cast<uint64_t>(row.max_trailing_zeros()));
}

Status DecodeFmPayload(ByteReader& r, uint16_t version,
                       const AffineHash* elided_hash,
                       std::optional<FlajoletMartinRow>* out) {
  const bool v1 = version == SketchCodec::kFormatV1;
  std::optional<AffineHash> h;
  if (elided_hash != nullptr) {
    h = *elided_hash;
  } else {
    Status status = DecodeSquareHash(r, version, "FM row", 64, &h);
    if (!status.ok()) return status;
  }
  uint64_t max_tz = 0;
  if (v1) {
    uint32_t tz32 = 0;
    if (!r.U32(&tz32)) return Truncated("FM row");
    max_tz = tz32;
  } else if (!r.Varint(&max_tz)) {
    return Truncated("FM row");
  }
  if (max_tz > static_cast<uint64_t>(h->n())) {
    return Status::ParseError("FM counter exceeds hash width");
  }
  out->emplace(*std::move(h), static_cast<int>(max_tz));
  return Status::Ok();
}

// ---- structured params ----------------------------------------------------

void EncodeStructuredParams(ByteWriter& w, const StructuredF0Params& p) {
  w.U8(static_cast<uint8_t>(p.algorithm));
  w.Varint(static_cast<uint64_t>(p.n));
  w.F64(p.eps);
  w.F64(p.delta);
  w.U64(p.seed);
  w.Varint(p.thresh_override);
  w.Varint(static_cast<uint64_t>(p.rows_override));
}

Status DecodeStructuredParams(ByteReader& r, StructuredF0Params* out) {
  uint8_t algorithm = 0;
  uint64_t n = 0;
  uint64_t thresh_override = 0;
  uint64_t rows_override = 0;
  if (!r.U8(&algorithm) || !r.Varint(&n) || !r.F64(&out->eps) ||
      !r.F64(&out->delta) || !r.U64(&out->seed) ||
      !r.Varint(&thresh_override) ||
      !r.Varint(&rows_override)) {
    return Truncated("structured sketch parameters");
  }
  if (algorithm > static_cast<uint8_t>(StructuredF0Algorithm::kBucketing)) {
    return Status::ParseError("unknown structured sketch algorithm " +
                              std::to_string(algorithm));
  }
  // Structured universes are not word-capped, but an n the hash decoder
  // would refuse anyway (2^24) is hostile here too.
  if (n < 1 || n > (1u << 24)) {
    return Status::ParseError("structured sketch n out of range");
  }
  if (!std::isfinite(out->eps) || out->eps <= 0) {
    return Status::ParseError("sketch eps must be positive and finite");
  }
  // Same hazard as the raw params block: with no override the thresh
  // formula casts 96/eps^2 to uint64, so bound eps where that runs.
  if (thresh_override == 0 && out->eps < 1e-6) {
    return Status::ParseError(
        "sketch eps below 1e-6 needs an explicit thresh override");
  }
  if (!std::isfinite(out->delta) || out->delta <= 0 || out->delta >= 1) {
    return Status::ParseError("sketch delta outside (0, 1)");
  }
  if (rows_override >
      static_cast<uint64_t>(std::numeric_limits<int>::max())) {
    return Status::ParseError("sketch row override out of range");
  }
  out->algorithm = static_cast<StructuredF0Algorithm>(algorithm);
  out->n = static_cast<int>(n);
  out->thresh_override = thresh_override;
  out->rows_override = static_cast<int>(rows_override);
  return Status::Ok();
}

// ---- structured Bucketing row ---------------------------------------------

void EncodeStructuredBucketPayload(ByteWriter& w,
                                   const StructuredBucketRow& row,
                                   uint16_t version, bool embed_hash) {
  MCF0_CHECK(version == SketchCodec::kFormatV2);  // structured is v2-only
  if (embed_hash) EncodeAffineHash(w, row.hash(), version);
  w.Varint(row.thresh());
  w.Varint(static_cast<uint64_t>(row.level()));
  w.Varint(row.bucket().size());
  // std::set<BitVec> iterates in lexicographic (strictly ascending) order:
  // the canonical layout, n bits per element.
  for (const BitVec& x : row.bucket()) w.RawBits(x);
}

Status DecodeStructuredBucketPayload(ByteReader& r, uint16_t version,
                                     const AffineHash* elided_hash,
                                     std::optional<StructuredBucketRow>* out) {
  if (version != SketchCodec::kFormatV2) {
    return Status::NotSupported("structured sketch frames require format v2");
  }
  std::optional<AffineHash> h;
  if (elided_hash != nullptr) {
    h = *elided_hash;
  } else {
    Status status = DecodeAffineHash(r, version, &h);
    if (!status.ok()) return status;
    if (h->n() != h->m()) {
      return Status::ParseError("structured bucketing row: hash must be "
                                "square");
    }
  }
  const int n = h->n();
  uint64_t thresh = 0;
  uint64_t level = 0;
  uint64_t count = 0;
  if (!r.Varint(&thresh) || !r.Varint(&level) || !r.Varint(&count)) {
    return Truncated("structured bucketing row");
  }
  if (thresh < 1) return Status::ParseError("bucketing thresh must be >= 1");
  if (level > static_cast<uint64_t>(n)) {
    return Status::ParseError("bucketing level exceeds hash width");
  }
  // Every element costs ceil(n/8) >= 1 payload bytes.
  if (count > r.Remaining()) return Truncated("structured bucket");
  if (level < static_cast<uint64_t>(n) && count > thresh) {
    return Status::ParseError("bucketing bucket exceeds thresh below level n");
  }
  std::set<BitVec> bucket;
  BitVec prev;
  for (uint64_t i = 0; i < count; ++i) {
    BitVec x;
    if (!r.RawBits(n, &x)) return Truncated("structured bucket");
    if (i > 0 && !(prev < x)) {
      return Status::ParseError(
          "structured bucket elements not strictly ascending");
    }
    prev = x;
    bucket.insert(std::move(x));
  }
  out->emplace(*std::move(h), thresh, static_cast<int>(level),
               std::move(bucket));
  // The from-parts invariant, as for the word-universe row: every element
  // lies in the cell at `level` (else estimates inflate and blob equality
  // stops being state equality).
  const StructuredBucketRow& row = out->value();
  for (const BitVec& x : row.bucket()) {
    if (!row.InCell(x, row.level())) {
      return Status::ParseError(
          "structured bucket element outside the cell at its level");
    }
  }
  return Status::Ok();
}

// ---- canonical-hash eligibility -------------------------------------------

bool HashesMatchCanonicalSample(const F0Estimator& est) {
  F0RowSampler sampler(est.params());
  auto same = [](const AffineHash& a, const AffineHash& b) {
    return a == b && a.RepresentationBits() == b.RepresentationBits();
  };
  switch (est.params().algorithm) {
    case F0Algorithm::kBucketing:
      for (const auto& row : est.bucketing_rows()) {
        if (!same(row.hash(), sampler.NextBucketingRow().hash())) return false;
      }
      return true;
    case F0Algorithm::kMinimum:
      for (const auto& row : est.minimum_rows()) {
        if (!same(row.hash(), sampler.NextMinimumRow().hash())) return false;
      }
      return true;
    case F0Algorithm::kEstimation:
      for (size_t i = 0; i < est.estimation_rows().size(); ++i) {
        const auto [sampled_est, sampled_fm] =
            sampler.NextEstimationPair(est.field());
        if (!(est.estimation_rows()[i].hashes() == sampled_est.hashes()) ||
            !same(est.fm_rows()[i].hash(), sampled_fm.hash())) {
          return false;
        }
      }
      return true;
  }
  return false;
}

bool HashesMatchCanonicalSample(const StructuredF0& sketch) {
  StructuredF0RowSampler sampler(sketch.params());
  auto same = [](const AffineHash& a, const AffineHash& b) {
    return a == b && a.RepresentationBits() == b.RepresentationBits();
  };
  if (sketch.params().algorithm == StructuredF0Algorithm::kMinimum) {
    for (const auto& row : sketch.minimum_rows()) {
      if (!same(row.hash(), sampler.NextMinimumRow().hash())) return false;
    }
  } else {
    for (const auto& row : sketch.bucketing_rows()) {
      if (!same(row.hash(), sampler.NextBucketingRow().hash())) return false;
    }
  }
  return true;
}

}  // namespace wire
}  // namespace mcf0
