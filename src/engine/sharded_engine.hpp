/// \file sharded_engine.hpp
/// \brief Variant-generic, multi-producer sharded ingestion for F0 sketches.
///
/// `ShardedEngine<Sketch, Item>` spreads a heavy item stream across N
/// worker threads. Each worker owns a *private* replica built by the same
/// factory — same params, same seed, hence identical hash functions — so
/// the replicas stay mergeable (sketch_merge.hpp) and, because every
/// sketch operation is a set union, the merged result is exactly the
/// sketch a single-threaded pass over the whole stream would have
/// produced, no matter how items are split across shards or producers.
///
/// The engine is generic over the sketch and its item type through two
/// ADL customization points:
///
///   * `AbsorbItem(Sketch&, const Item&)` — how a replica ingests one item
///     (raw: `F0Estimator::Add(uint64_t)`; structured: dispatch a
///     `StructuredItem` variant to AddTerms / AddRange / AddAffine /
///     AddElement);
///   * `Merge(Sketch&, const Sketch&)` — the exact union the replicas are
///     folded with on query (already defined for both sketch kinds).
///
/// Two instantiations live below: `ShardedF0Engine` (raw `uint64_t`
/// element streams, the API PR 2 introduced) and
/// `ShardedStructuredEngine` (§5 structured set streams: DNF term groups,
/// ranges, affine spaces, singletons — the structured analogue of E17).
///
/// Ingestion is *multi-producer*: any number of threads may each hold a
/// `Producer` handle (MakeProducer()). A handle buffers items privately
/// and hands whole batches to shard queues round-robin — the hot path
/// takes only the chosen shard's queue mutex, never a global producer
/// lock. Bounded queues give backpressure instead of unbounded memory.
/// Each handle remembers, per shard, the queue ticket of its last batch,
/// so `Producer::Flush()` waits for exactly its own (and earlier) batches
/// while other producers keep streaming.
///
/// Queries merge-on-demand and are safe while producers are mid-stream.
/// All of them are served by one incrementally maintained union: each
/// shard publishes an absorb generation, the cache remembers the
/// generation vector it was folded from, and a query refolds only the
/// shards whose generation advanced (see `cache_rebuilds()` /
/// `cache_partial_rebuilds()`). Batches that are merely *queued* do not
/// invalidate anything — absorb generations, not enqueue totals, are
/// what the folded replicas actually contain — so a steady-state poll
/// under live ingestion is O(changed shards), and a poll with no new
/// absorbs is a pure cache hit that takes no shard lock at all.
///   * `Estimate()` / `MergedSketch()` drain everything dispatched so
///     far, then refresh the union from the dirty shards only;
///   * `SnapshotSketch()` / `SnapshotEstimate()` skip the drain and
///     refresh from whatever each shard has absorbed so far — a
///     consistent-per-shard snapshot that never stops ingestion.
///
/// Ingestion is skew-proof via shard-affinity work stealing: a producer
/// whose preferred queue is full overflows to the next shard instead of
/// parking while other shards idle, and an idle worker steals the
/// oldest batch from the deepest queue (`batches_stolen()`). Neither
/// breaks the union guarantee — any split of the stream merges to the
/// same bytes — and per-producer `Flush()` tickets stay exact through a
/// per-shard completion watermark that tolerates out-of-order absorbs.
///
/// Destruction order: every external `Producer` must be flushed or
/// destroyed before its engine (handle destructors dispatch their tail
/// buffer; the engine's workers drain all queues before honoring stop).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/check.hpp"
#include "common/status.hpp"
#include "engine/sketch_merge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "formula/formula.hpp"
#include "setstream/range.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Tuning knobs for the queue/worker machinery.
struct ShardedEngineOptions {
  /// Items buffered by Producer::Add() before a batch is dispatched.
  /// Large enough to amortize the queue handoff, small enough to keep
  /// shards busy on modest streams. (Structured items are whole sets, so
  /// the structured engine defaults much lower.)
  size_t batch_size = 2048;

  /// Bound on batches queued per shard; a producer blocks past this, so a
  /// slow consumer exerts backpressure instead of growing memory without
  /// limit.
  size_t max_queued_batches = 64;

  /// Shard-affinity work stealing (docs/engine.md): a producer that
  /// finds its preferred queue full overflows to the next shard with
  /// room before blocking, and an idle worker steals the oldest batch
  /// from the deepest queue. Both preserve the exact-union guarantee
  /// (any split of the stream merges to the same bytes) and exact
  /// per-producer Flush() semantics; disable only to reproduce strict
  /// round-robin placement (benchmarks, skew experiments).
  bool enable_work_stealing = true;
};

namespace engine_obs {

/// Registry handles for the engine hot paths, resolved once. Shared by
/// every ShardedEngine instantiation in the process — the registry is
/// process-wide, so two live engines sum into the same counters
/// (docs/observability.md).
struct Metrics {
  obs::Counter* items_absorbed;
  obs::Counter* cache_rebuilds;
  obs::Counter* cache_partial_rebuilds;
  obs::Counter* batches_stolen;
  obs::Counter* enqueue_blocks;
  obs::Histogram* enqueue_block_us;
  obs::Histogram* absorb_batch_us;
};

inline Metrics& Get() {
  static Metrics metrics{
      obs::Registry::Global().GetCounter("mcf0_engine_items_absorbed_total"),
      obs::Registry::Global().GetCounter("mcf0_engine_cache_rebuilds_total"),
      obs::Registry::Global().GetCounter(
          "mcf0_engine_cache_partial_rebuilds_total"),
      obs::Registry::Global().GetCounter("mcf0_engine_batches_stolen_total"),
      obs::Registry::Global().GetCounter("mcf0_engine_enqueue_blocks_total"),
      obs::Registry::Global().GetHistogram("mcf0_engine_enqueue_block_us"),
      obs::Registry::Global().GetHistogram("mcf0_engine_absorb_batch_us")};
  return metrics;
}

}  // namespace engine_obs

/// Batch-absorb customization point: how a worker ingests a whole queue
/// batch into its replica. This generic fallback replays AbsorbItem in
/// order, so any sketch that works item-by-item works batched with
/// identical bytes; sketches with a faster span surface overload it
/// (F0Estimator below routes to the gf2k-batched span-Add).
template <typename Sketch, typename Item>
inline void AbsorbBatch(Sketch& sketch, std::span<const Item> items) {
  for (const Item& item : items) AbsorbItem(sketch, item);
}

/// The generic queue/worker/backpressure core; see the file comment.
template <typename Sketch, typename Item>
class ShardedEngine {
 public:
  /// Builds one shard replica. Called num_shards times at construction
  /// and once per merge target; every call must produce sketches that are
  /// mutually mergeable (in practice: construct from one shared params
  /// value, so all replicas sample identical hash functions).
  using ReplicaFactory = std::function<Sketch()>;

  /// A single-threaded ingestion front end; see MakeProducer(). Handles
  /// may be moved but not copied, and must not outlive the engine.
  ///
  /// Lifecycle state machine (docs/engine.md): a handle is *open* from
  /// MakeProducer() until Close(), move-from, or destruction makes it
  /// *detached*. Open: Add/AddBatch accept items, Flush waits for them.
  /// Detached: Add/AddBatch return kFailedPrecondition, Flush and Close
  /// are no-ops. Close() = flush-and-detach, idempotent — the
  /// deterministic teardown a dropped network connection needs: once it
  /// returns, every item this handle accepted is absorbed, and nothing
  /// can slip in afterwards.
  class Producer {
   public:
    Producer(Producer&& o) noexcept
        : engine_(std::exchange(o.engine_, nullptr)),
          pending_(std::move(o.pending_)),
          next_shard_(o.next_shard_),
          tickets_(std::move(o.tickets_)) {}
    Producer& operator=(Producer&& o) noexcept {
      if (this != &o) {
        DispatchPending();
        engine_ = std::exchange(o.engine_, nullptr);
        pending_ = std::move(o.pending_);
        next_shard_ = o.next_shard_;
        tickets_ = std::move(o.tickets_);
      }
      return *this;
    }
    Producer(const Producer&) = delete;
    Producer& operator=(const Producer&) = delete;

    /// Hands the tail buffer to a shard; does not wait (the engine's
    /// destructor drains all queues before joining).
    ~Producer() { DispatchPending(); }

    /// Buffers one item; dispatched to a shard once the batch fills (or
    /// on Flush). kFailedPrecondition on a detached (closed or moved-from)
    /// handle — the item is not accepted.
    Status Add(Item item) {
      if (engine_ == nullptr) return Detached();
      if (pending_.capacity() < engine_->options_.batch_size) {
        pending_.reserve(engine_->options_.batch_size);
      }
      pending_.push_back(std::move(item));
      engine_->items_.fetch_add(1, std::memory_order_relaxed);
      if (pending_.size() >= engine_->options_.batch_size) DispatchPending();
      return Status::Ok();
    }

    /// The bulk hot path: hands the whole batch to the next shard
    /// round-robin. Copies the span, so the caller may reuse its buffer
    /// immediately. kFailedPrecondition on a detached handle.
    Status AddBatch(std::span<const Item> items) {
      if (engine_ == nullptr) return Detached();
      if (items.empty()) return Status::Ok();
      engine_->items_.fetch_add(items.size(), std::memory_order_relaxed);
      Dispatch(std::vector<Item>(items.begin(), items.end()));
      return Status::Ok();
    }

    /// Dispatches the tail buffer and blocks until every batch *this
    /// producer* dispatched has been absorbed by its replica. Safe while
    /// other producers are mid-stream: the wait covers only batches
    /// queued no later than this producer's own (per-shard FIFO order),
    /// never work other producers enqueue afterwards. A no-op on a
    /// moved-from handle (like the destructor).
    void Flush() {
      if (engine_ == nullptr) return;
      DispatchPending();
      engine_->AwaitTickets(tickets_);
    }

    /// Flush-and-detach: dispatches the tail buffer, waits for every batch
    /// this handle dispatched, then detaches it from the engine. After
    /// Close() returns, Add/AddBatch return kFailedPrecondition and
    /// further Close()/Flush() calls are no-ops (idempotent). Always OK —
    /// the Status return leaves room for bounded-wait variants.
    Status Close() {
      if (engine_ == nullptr) return Status::Ok();
      Flush();
      engine_ = nullptr;
      return Status::Ok();
    }

    /// True once the handle is detached (closed or moved-from).
    bool closed() const { return engine_ == nullptr; }

   private:
    static Status Detached() {
      return Status::FailedPrecondition(
          "producer handle is closed (or moved-from); items are no longer "
          "accepted");
    }

    friend class ShardedEngine;
    Producer(ShardedEngine* engine, size_t start_shard)
        : engine_(engine),
          next_shard_(start_shard),
          tickets_(engine->shards_.size(), 0) {}

    void DispatchPending() {
      if (engine_ == nullptr || pending_.empty()) return;
      Dispatch(std::move(pending_));
      pending_.clear();  // moved-from: restore a definite empty state
    }

    void Dispatch(std::vector<Item> batch) {
      const size_t preferred = next_shard_;
      next_shard_ = (next_shard_ + 1) % engine_->shards_.size();
      // The batch may land on an overflow shard, not the preferred one;
      // the ticket follows wherever it was actually enqueued so Flush()
      // waits on the right shard's completion watermark.
      const auto placed = engine_->DispatchTo(preferred, std::move(batch));
      tickets_[placed.shard] = placed.ticket;
    }

    ShardedEngine* engine_;
    std::vector<Item> pending_;  // Add() buffer, not yet dispatched
    size_t next_shard_;
    std::vector<uint64_t> tickets_;  // per shard: last enqueued ticket
  };

  /// Spawns `num_shards` workers, each with a private replica from
  /// `factory`. num_shards >= 1; 1 degenerates to background
  /// single-thread ingestion.
  ShardedEngine(ReplicaFactory factory, int num_shards,
                ShardedEngineOptions options = {})
      : factory_(std::move(factory)), options_(options) {
    MCF0_CHECK(num_shards >= 1);
    MCF0_CHECK(options_.batch_size >= 1 && options_.max_queued_batches >= 1);
    shards_.reserve(num_shards);
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(factory_()));
      shards_.back()->queue_depth = obs::Registry::Global().GetGauge(
          "mcf0_engine_queue_depth", {{"shard", std::to_string(i)}});
    }
    // Replicas first, threads second: if a sketch constructor throws
    // there are no workers to unwind.
    for (auto& shard : shards_) {
      shard->thread =
          std::thread(&ShardedEngine::WorkerLoop, this, shard.get());
    }
  }

  /// Joins the workers after they drain their queues; producers must have
  /// been flushed or destroyed first (their destructors dispatch any tail
  /// buffer, and workers drain before honoring stop, so nothing ingested
  /// is dropped).
  ~ShardedEngine() {
    for (auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->stop = true;
      }
      shard->work_ready.notify_all();
    }
    for (auto& shard : shards_) shard->thread.join();
  }

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// A new ingestion handle, usable from exactly one thread at a time.
  /// Handles start on staggered shards so concurrent producers do not
  /// convoy on one queue. Thread-safe.
  Producer MakeProducer() {
    const size_t start =
        producers_made_.fetch_add(1, std::memory_order_relaxed);
    return Producer(this, start % shards_.size());
  }

  /// Blocks until every batch dispatched before this call has been
  /// absorbed by a replica. Safe to call while other producers keep
  /// streaming (their later batches are not waited for). Items still in a
  /// producer's private buffer are not yet part of the stream; flush the
  /// producer to include them.
  void Flush() {
    // Quiescent fast path off the relaxed mirrors: no shard mutex when
    // there is nothing to wait for. Ordering argument: a batch bumps
    // the enqueue mirror (under its shard lock) strictly before any
    // worker can complete it and bump the absorb mirror (release), so
    // with `absorbed` loaded first (acquire), absorbed >= enqueued
    // implies every batch whose enqueue this thread can observe has
    // been absorbed — if some observable batch were incomplete, the
    // enqueue bumps of the `absorbed` completed batches plus that
    // batch's own would make the later `enqueued` load exceed
    // `absorbed`.
    const uint64_t absorbed =
        batches_absorbed_.load(std::memory_order_acquire);
    const uint64_t enqueued =
        batches_enqueued_.load(std::memory_order_relaxed);
    if (absorbed >= enqueued) return;
    for (auto& shard : shards_) {
      std::unique_lock<std::mutex> lock(shard->mu);
      const uint64_t target = shard->enqueued;
      shard->drained.wait(
          lock, [&shard, target] { return shard->absorbed >= target; });
    }
  }

  /// Flush + merge-on-query: the union of all shard replicas, exactly
  /// the sketch a sequential pass over the same items would hold. The
  /// result carries the hashes_canonical attestation (fresh replica,
  /// Merge preserves it), so encoding it takes the codec's O(state)
  /// seed-elided fast path. The underlying union is cached and
  /// refreshed incrementally; see cache_rebuilds().
  Sketch MergedSketch() {
    Flush();
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const Sketch& cached = RefreshCacheLocked();
    Sketch out = factory_();
    MergeOrDie(out, cached);
    return out;
  }

  /// MergedSketch().Estimate() without materializing a copy: reads the
  /// cached union directly. Cache rule (docs/engine.md): the union is
  /// refreshed per shard, folding only replicas whose absorb generation
  /// advanced since the last refresh — repeated queries with no absorbs
  /// in between are pure cache hits, whatever sits in the queues.
  double Estimate() {
    Flush();
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    return RefreshCacheLocked().Estimate();
  }

  /// Merge-without-drain: the union of each shard's absorbed prefix,
  /// without waiting for queued batches. Served by the same incremental
  /// cache as Estimate(): a poll refolds only shards that absorbed
  /// something since the last query (O(changed), and O(1) — no shard
  /// lock at all — when ingestion is quiescent), so live dashboards can
  /// poll while producers saturate the queues.
  Sketch SnapshotSketch() {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    const Sketch& cached = RefreshCacheLocked();
    Sketch out = factory_();
    MergeOrDie(out, cached);
    return out;
  }

  /// SnapshotSketch().Estimate() without materializing a copy.
  double SnapshotEstimate() {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    return RefreshCacheLocked().Estimate();
  }

  /// Flush + total footprint across the shard replicas.
  size_t SpaceBits() {
    Flush();
    size_t bits = 0;
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> sketch_lock(shard->sketch_mu);
      bits += shard->sketch.SpaceBits();
    }
    return bits;
  }

  /// Items accepted across all producers (including any still in a
  /// producer's private buffer).
  uint64_t items_ingested() const {
    return items_.load(std::memory_order_relaxed);
  }

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// How many queries had to fold at least one shard replica into the
  /// cached union — observability for the validity rule (and its
  /// tests): queries with no completed absorb in between must not add
  /// to this, even with batches sitting in the queues.
  uint64_t cache_rebuilds() const {
    return cache_rebuilds_.load(std::memory_order_relaxed);
  }

  /// The subset of cache_rebuilds() that refolded strictly fewer than
  /// num_shards replicas — the O(changed) incremental refreshes. The
  /// first build after construction never counts, so
  /// `cache_rebuilds() - cache_partial_rebuilds() == 1` once warm means
  /// every steady-state refresh was partial.
  uint64_t cache_partial_rebuilds() const {
    return cache_partial_rebuilds_.load(std::memory_order_relaxed);
  }

  /// Batches absorbed by a worker other than the one whose queue they
  /// were enqueued on (shard-affinity work stealing).
  uint64_t batches_stolen() const {
    return batches_stolen_.load(std::memory_order_relaxed);
  }

  /// Batches currently sitting in shard queues (enqueued, not yet
  /// absorbed) — the engine's backpressure signal. `mcf0 serve` derives
  /// protocol credit grants from this on *every ack*, so it reads two
  /// relaxed mirrors of the per-shard counts instead of taking every
  /// shard mutex (which contended with the workers). Point-in-time, not
  /// a fence — fine for flow control; the hard bound is the queues.
  /// Loading absorbed before enqueued keeps the difference from ever
  /// wrapping: each batch bumps the enqueue mirror (under its shard
  /// lock) strictly before a worker can pop it and bump the absorb
  /// mirror.
  uint64_t queued_batches() const {
    const uint64_t absorbed =
        batches_absorbed_.load(std::memory_order_relaxed);
    const uint64_t enqueued =
        batches_enqueued_.load(std::memory_order_relaxed);
    return enqueued - absorbed;
  }

  /// Total batches the shard queues hold before dispatch blocks:
  /// num_shards * max_queued_batches. Constant over the engine's life.
  uint64_t queue_capacity() const {
    return static_cast<uint64_t>(shards_.size()) *
           options_.max_queued_batches;
  }

  const ShardedEngineOptions& options() const { return options_; }

 private:
  /// A queued batch carries the ticket it was enqueued under, so a
  /// thief can complete it against the home shard's watermark.
  struct QueuedBatch {
    uint64_t ticket = 0;
    std::vector<Item> items;
  };

  struct Shard {
    explicit Shard(Sketch replica) : sketch(std::move(replica)) {}

    std::mutex mu;  // guards queue, enqueued, absorbed, done_tickets, stop
    std::condition_variable work_ready;  // producer -> worker
    std::condition_variable drained;     // worker -> producers (flush, bp)
    std::deque<QueuedBatch> queue;
    uint64_t enqueued = 0;  // batches ever queued (= last ticket issued)
    /// Completion watermark: every batch with ticket <= absorbed has
    /// been absorbed into *some* replica. Work stealing completes
    /// tickets out of queue order; completions ahead of the watermark
    /// park in done_tickets until the gap closes, so Flush()'s
    /// "absorbed >= ticket" wait never releases past an unfinished
    /// batch.
    uint64_t absorbed = 0;
    std::set<uint64_t> done_tickets;
    bool stop = false;

    /// Lock-free mirror of queue.size(), for cross-shard scans (steal
    /// victim selection, overflow-dispatch pre-screen) that must not
    /// take another shard's mutex. Point-in-time; every decision it
    /// feeds is re-checked under the victim's lock.
    std::atomic<size_t> queue_size{0};

    /// Batches absorbed into `sketch` — the replica's publish
    /// generation. Bumped (release) after the batch's items are in, so
    /// a reader that loads it (acquire) *before* folding the replica
    /// provably folds at least that many batches. This is what the
    /// merge cache stamps and compares: queue state never appears in
    /// the validity rule.
    std::atomic<uint64_t> replica_gen{0};

    std::mutex sketch_mu;  // guards sketch: worker absorb vs query merge
    Sketch sketch;
    std::thread thread;

    obs::Gauge* queue_depth = nullptr;  // mcf0_engine_queue_depth{shard=i}
  };

  /// Queues shallower than this are not worth stealing from: a single
  /// queued batch is the home worker's next pop.
  static constexpr size_t kMinStealDepth = 2;

  /// An idle worker rescans for steal candidates on this period. A deep
  /// queue on another shard cannot reliably notify this worker's
  /// condvar (the producer holds the victim's lock, not ours, so a
  /// wakeup could be lost); short periodic rescans make steals robust
  /// without cross-shard lock traffic on the enqueue hot path.
  static constexpr std::chrono::milliseconds kIdleRescanInterval{2};

  static void MergeOrDie(Sketch& into, const Sketch& from) {
    const Status status = Merge(into, from);
    MCF0_CHECK(status.ok());  // replicas share params by construction
  }

  void WorkerLoop(Shard* self) {
    for (;;) {
      Shard* home = nullptr;  // the shard whose queue the batch came from
      QueuedBatch batch;
      {
        std::unique_lock<std::mutex> lock(self->mu);
        if (!self->queue.empty()) {
          batch = std::move(self->queue.front());
          self->queue.pop_front();
          self->queue_size.fetch_sub(1, std::memory_order_relaxed);
          home = self;
        } else if (self->stop) {
          return;  // stop requested, own queue drained
        }
      }
      if (home == self) {
        // The pop made room; backpressured producers wait on queue
        // length, not completions, so wake them now rather than after
        // the (possibly long) absorb.
        self->drained.notify_all();
      } else if (options_.enable_work_stealing) {
        home = TrySteal(self, &batch);
      }
      if (home == nullptr) {
        std::unique_lock<std::mutex> lock(self->mu);
        const auto ready = [self] {
          return self->stop || !self->queue.empty();
        };
        if (options_.enable_work_stealing) {
          self->work_ready.wait_for(lock, kIdleRescanInterval, ready);
        } else {
          self->work_ready.wait(lock, ready);
        }
        continue;
      }
      {
        MCF0_TRACE_SPAN("engine.absorb_batch");
        obs::ScopedLatencyUs absorb_timer(engine_obs::Get().absorb_batch_us);
        std::lock_guard<std::mutex> sketch_lock(self->sketch_mu);
        AbsorbBatch(self->sketch, std::span<const Item>(batch.items));
      }
      // Publish the replica change before the completion bookkeeping:
      // the merge cache reads replica_gen without sketch_mu, and the
      // Flush() fast path requires the items to be visible by the time
      // the absorb mirror covers this batch.
      self->replica_gen.fetch_add(1, std::memory_order_release);
      engine_obs::Get().items_absorbed->Increment(batch.items.size());
      if (home != self) {
        batches_stolen_.fetch_add(1, std::memory_order_relaxed);
        engine_obs::Get().batches_stolen->Increment();
      }
      CompleteTicket(home, batch.ticket);
    }
  }

  /// Picks the deepest other queue (by its lock-free size mirror,
  /// re-checked under the victim's lock) and pops its oldest batch.
  /// Returns the victim shard, or nullptr if nothing is worth stealing.
  /// Oldest-first keeps completions near queue order, so the home
  /// shard's watermark advances and done_tickets stays tiny.
  Shard* TrySteal(Shard* self, QueuedBatch* batch) {
    Shard* victim = nullptr;
    size_t deepest = kMinStealDepth - 1;
    for (auto& shard : shards_) {
      if (shard.get() == self) continue;
      const size_t size = shard->queue_size.load(std::memory_order_relaxed);
      if (size > deepest) {
        deepest = size;
        victim = shard.get();
      }
    }
    if (victim == nullptr) return nullptr;
    {
      std::lock_guard<std::mutex> lock(victim->mu);
      if (victim->queue.size() < kMinStealDepth) return nullptr;
      *batch = std::move(victim->queue.front());
      victim->queue.pop_front();
      victim->queue_size.fetch_sub(1, std::memory_order_relaxed);
    }
    victim->drained.notify_all();  // the pop made room for producers
    return victim;
  }

  /// Marks `ticket` absorbed against its home shard and advances the
  /// completion watermark across any previously parked completions.
  void CompleteTicket(Shard* home, uint64_t ticket) {
    {
      std::lock_guard<std::mutex> lock(home->mu);
      if (ticket == home->absorbed + 1) {
        ++home->absorbed;
        auto it = home->done_tickets.begin();
        while (it != home->done_tickets.end() &&
               *it == home->absorbed + 1) {
          ++home->absorbed;
          it = home->done_tickets.erase(it);
        }
      } else {
        home->done_tickets.insert(ticket);
      }
    }
    batches_absorbed_.fetch_add(1, std::memory_order_release);
    home->queue_depth->Add(-1);
    home->drained.notify_all();
  }

  /// Where DispatchTo actually placed a batch: the ticket is only
  /// meaningful against that shard's watermark.
  struct Placed {
    size_t shard = 0;
    uint64_t ticket = 0;
  };

  /// Queues one batch, preferring `preferred` but overflowing to the
  /// next shard with room when it is full (shard affinity, not strict
  /// round-robin): a saturated shard must not park the producer while
  /// other queues sit idle. Only when every queue is full does the
  /// producer block — on its preferred shard, as before. Thread-safe;
  /// concurrent producers contend only on the probed shards' mutexes.
  Placed DispatchTo(size_t preferred, std::vector<Item> batch) {
    const size_t num_shards = shards_.size();
    const size_t probes = options_.enable_work_stealing ? num_shards : 1;
    for (size_t attempt = 0; attempt < probes; ++attempt) {
      const size_t index = (preferred + attempt) % num_shards;
      Shard& shard = *shards_[index];
      if (attempt > 0 && shard.queue_size.load(std::memory_order_relaxed) >=
                             options_.max_queued_batches) {
        continue;  // visibly full: skip without taking the lock
      }
      std::unique_lock<std::mutex> lock(shard.mu);
      if (shard.queue.size() >= options_.max_queued_batches) continue;
      return EnqueueLocked(index, std::move(batch), lock);
    }
    // Every queue is full: block on the preferred shard until a worker
    // (or thief) makes room.
    Shard& shard = *shards_[preferred];
    std::unique_lock<std::mutex> lock(shard.mu);
    if (shard.queue.size() >= options_.max_queued_batches) {
      engine_obs::Get().enqueue_blocks->Increment();
      obs::ScopedLatencyUs wait_timer(engine_obs::Get().enqueue_block_us);
      shard.drained.wait(lock, [this, &shard] {
        return shard.queue.size() < options_.max_queued_batches;
      });
    }
    return EnqueueLocked(preferred, std::move(batch), lock);
  }

  /// Second half of DispatchTo: push under the already-held shard lock,
  /// then notify outside it.
  Placed EnqueueLocked(size_t index, std::vector<Item> batch,
                       std::unique_lock<std::mutex>& lock) {
    Shard& shard = *shards_[index];
    const uint64_t ticket = ++shard.enqueued;
    shard.queue.push_back(QueuedBatch{ticket, std::move(batch)});
    shard.queue_size.fetch_add(1, std::memory_order_relaxed);
    batches_enqueued_.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    shard.queue_depth->Add(1);
    shard.work_ready.notify_one();
    return Placed{index, ticket};
  }

  /// Blocks until, on every shard, the absorb count has reached the given
  /// ticket (0 = nothing to wait for on that shard).
  void AwaitTickets(const std::vector<uint64_t>& tickets) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (tickets[i] == 0) continue;
      Shard& shard = *shards_[i];
      std::unique_lock<std::mutex> lock(shard.mu);
      const uint64_t target = tickets[i];
      shard.drained.wait(
          lock, [&shard, target] { return shard.absorbed >= target; });
    }
  }

  /// Requires cache_mu_. Incremental validity rule (docs/engine.md):
  /// the cache is the exact union of every shard replica at the
  /// generation recorded in cache_shard_gen_ (each generation loaded
  /// *before* folding its replica, so the replica provably contained at
  /// least that many batches — a concurrent absorb just leaves the
  /// stamp conservative and the shard dirty for the next query).
  /// Because a replica's item set only ever grows and Merge is an exact
  /// set union, folding a dirty shard's *current* replica into the
  /// cached union yields exactly the union of the new per-shard states:
  /// no subtraction, no from-scratch rebuild, O(changed shards) per
  /// refresh. A query that finds no generation advanced returns the
  /// cache untouched without taking any shard lock — queued-but-
  /// unabsorbed batches never invalidate, because absorb generations,
  /// not enqueue totals, are what the folded replicas actually contain.
  const Sketch& RefreshCacheLocked() {
    if (!cached_.has_value()) {
      cached_.emplace(factory_());
      cache_shard_gen_.assign(shards_.size(), 0);
    }
    size_t folded = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Shard& shard = *shards_[i];
      const uint64_t gen = shard.replica_gen.load(std::memory_order_acquire);
      if (gen == cache_shard_gen_[i]) continue;
      {
        std::lock_guard<std::mutex> sketch_lock(shard.sketch_mu);
        MergeOrDie(*cached_, shard.sketch);
      }
      cache_shard_gen_[i] = gen;
      ++folded;
    }
    if (folded == 0 && cache_built_) return *cached_;  // pure hit
    cache_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    engine_obs::Get().cache_rebuilds->Increment();
    if (cache_built_ && folded < shards_.size()) {
      cache_partial_rebuilds_.fetch_add(1, std::memory_order_relaxed);
      engine_obs::Get().cache_partial_rebuilds->Increment();
    }
    cache_built_ = true;
    return *cached_;
  }

  ReplicaFactory factory_;
  ShardedEngineOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> items_{0};
  std::atomic<size_t> producers_made_{0};
  // Mirrors of the per-shard enqueued/absorbed counts so
  // queued_batches() and Flush()'s quiescent fast path never touch a
  // shard mutex. Enqueue is bumped under the shard lock; absorb
  // (release) after the items are published — see queued_batches() and
  // Flush().
  std::atomic<uint64_t> batches_enqueued_{0};
  std::atomic<uint64_t> batches_absorbed_{0};
  std::atomic<uint64_t> batches_stolen_{0};

  std::mutex cache_mu_;  // guards cached_, cache_shard_gen_, cache_built_
  std::optional<Sketch> cached_;
  std::vector<uint64_t> cache_shard_gen_;  // per shard: replica_gen folded
  bool cache_built_ = false;
  std::atomic<uint64_t> cache_rebuilds_{0};
  std::atomic<uint64_t> cache_partial_rebuilds_{0};
};

/// AbsorbItem customization point for raw element streams.
inline void AbsorbItem(F0Estimator& sketch, uint64_t x) { sketch.Add(x); }

/// AbsorbBatch fast path for raw element streams: the span-Add surface
/// runs each row's hashes over the whole batch through the gf2k batch
/// kernels. Byte-identical to the item-by-item fallback.
inline void AbsorbBatch(F0Estimator& sketch, std::span<const uint64_t> items) {
  sketch.Add(items);
}

/// One §5 structured stream item for `ShardedStructuredEngine`: the
/// affine space {x : a x = b} of Theorem 7.
struct AffineSpaceItem {
  Gf2Matrix a;
  BitVec b;
};

/// The §5 item alphabet: a set given as DNF terms (Theorem 5 — one term,
/// or a whole formula's worth), a multidimensional range / arithmetic
/// progression (Theorem 6 / Corollary 1), an affine space (Theorem 7), or
/// a singleton element (the traditional stream as a special case).
using StructuredItem =
    std::variant<std::vector<Term>, MultiDimRange, AffineSpaceItem, BitVec>;

/// AbsorbItem customization point for structured streams: dispatches the
/// variant to the matching StructuredF0 adder.
void AbsorbItem(StructuredF0& sketch, const StructuredItem& item);

/// Sharded parallel ingestion of raw u64 element streams — the concrete
/// engine PR 2 introduced, now a thin veneer over the generic core. The
/// single-producer Add/AddBatch/Flush surface is preserved (routed
/// through a built-in producer handle); MakeProducer() opens the
/// multi-producer path.
class ShardedF0Engine {
 public:
  using Engine = ShardedEngine<F0Estimator, uint64_t>;
  using Producer = Engine::Producer;

  /// Spawns `num_shards` workers, each with a private replica built from
  /// `params` (same seed, identical hash functions). num_shards >= 1.
  ShardedF0Engine(const F0Params& params, int num_shards)
      : params_(params),
        core_([params] { return F0Estimator(params); }, num_shards),
        producer_(core_.MakeProducer()) {}

  /// Buffers one element on the built-in producer handle.
  void Add(uint64_t x) { producer_.Add(x); }

  /// The bulk hot path; copies the span, so the caller may reuse its
  /// buffer immediately.
  void AddBatch(std::span<const uint64_t> xs) { producer_.AddBatch(xs); }

  /// New ingestion handles for additional producer threads.
  Producer MakeProducer() { return core_.MakeProducer(); }

  /// Drains the built-in handle's buffer and every batch it dispatched.
  void Flush() { producer_.Flush(); }

  /// Engine-wide flush + cached merge-on-query; see ShardedEngine.
  F0Estimator MergedSketch() {
    producer_.Flush();
    return core_.MergedSketch();
  }

  /// Cached merged estimate; only shards that absorbed something since
  /// the last query are refolded (ShardedEngine::Estimate).
  double Estimate() {
    producer_.Flush();
    return core_.Estimate();
  }

  /// Merge without draining the queues; see ShardedEngine::SnapshotSketch.
  F0Estimator SnapshotSketch() { return core_.SnapshotSketch(); }
  double SnapshotEstimate() { return core_.SnapshotEstimate(); }

  /// Flush + total footprint across the shard replicas.
  size_t SpaceBits() {
    producer_.Flush();
    return core_.SpaceBits();
  }

  uint64_t elements_ingested() const { return core_.items_ingested(); }
  int num_shards() const { return core_.num_shards(); }
  const F0Params& params() const { return params_; }
  uint64_t cache_rebuilds() const { return core_.cache_rebuilds(); }
  uint64_t cache_partial_rebuilds() const {
    return core_.cache_partial_rebuilds();
  }
  uint64_t batches_stolen() const { return core_.batches_stolen(); }
  uint64_t queued_batches() const { return core_.queued_batches(); }
  uint64_t queue_capacity() const { return core_.queue_capacity(); }

 private:
  F0Params params_;
  Engine core_;
  Producer producer_;  // after core_: destroyed (and drained) first
};

/// Sharded parallel ingestion of §5 structured set streams: items (DNF
/// term groups, ranges, affine spaces, singletons) are sharded across
/// same-seed StructuredF0 replicas and merged on query — the structured
/// analogue of ShardedF0Engine, with the same multi-producer surface.
class ShardedStructuredEngine {
 public:
  using Engine = ShardedEngine<StructuredF0, StructuredItem>;
  using Producer = Engine::Producer;

  ShardedStructuredEngine(const StructuredF0Params& params, int num_shards)
      : params_(params),
        core_([params] { return StructuredF0(params); }, num_shards,
              // Structured items are whole sets — per-item work dwarfs the
              // queue handoff, so batches stay small to keep shards busy.
              ShardedEngineOptions{.batch_size = 16,
                                   .max_queued_batches = 64}),
        producer_(core_.MakeProducer()) {}

  /// One stream item per call, on the built-in producer handle.
  void AddTerms(std::vector<Term> terms) {
    producer_.Add(StructuredItem(std::move(terms)));
  }
  void AddRange(MultiDimRange range) {
    producer_.Add(StructuredItem(std::move(range)));
  }
  void AddAffine(Gf2Matrix a, BitVec b) {
    producer_.Add(StructuredItem(AffineSpaceItem{std::move(a), std::move(b)}));
  }
  void AddElement(BitVec x) { producer_.Add(StructuredItem(std::move(x))); }
  void AddItem(StructuredItem item) { producer_.Add(std::move(item)); }

  /// New ingestion handles for additional producer threads.
  Producer MakeProducer() { return core_.MakeProducer(); }

  void Flush() { producer_.Flush(); }

  /// Engine-wide flush + cached merge-on-query: byte-identical (post
  /// encode) to a single-pass StructuredF0 over the same items.
  StructuredF0 MergedSketch() {
    producer_.Flush();
    return core_.MergedSketch();
  }

  double Estimate() {
    producer_.Flush();
    return core_.Estimate();
  }

  StructuredF0 SnapshotSketch() { return core_.SnapshotSketch(); }
  double SnapshotEstimate() { return core_.SnapshotEstimate(); }

  size_t SpaceBits() {
    producer_.Flush();
    return core_.SpaceBits();
  }

  uint64_t items_ingested() const { return core_.items_ingested(); }
  int num_shards() const { return core_.num_shards(); }
  const StructuredF0Params& params() const { return params_; }
  uint64_t cache_rebuilds() const { return core_.cache_rebuilds(); }
  uint64_t cache_partial_rebuilds() const {
    return core_.cache_partial_rebuilds();
  }
  uint64_t batches_stolen() const { return core_.batches_stolen(); }
  uint64_t queued_batches() const { return core_.queued_batches(); }
  uint64_t queue_capacity() const { return core_.queue_capacity(); }

 private:
  StructuredF0Params params_;
  Engine core_;
  Producer producer_;  // after core_: destroyed (and drained) first
};

}  // namespace mcf0
