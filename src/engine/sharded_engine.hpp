/// \file sharded_engine.hpp
/// \brief Sharded parallel ingestion for F0 sketches.
///
/// `ShardedF0Engine` spreads a heavy element stream across N worker
/// threads. Each worker owns a *private* F0Estimator replica built from the
/// same F0Params — same seed, hence identical hash functions — so the
/// replicas stay mergeable (sketch_merge.hpp) and, because every sketch
/// operation is a set union, the merged result is exactly the sketch a
/// single-threaded pass over the whole stream would have produced, no
/// matter how elements are split across shards.
///
/// Ingestion is batched: the producer hands whole batches to shards
/// round-robin through small bounded queues (backpressure instead of
/// unbounded buffering), workers drain them into their replica, and
/// queries merge-on-demand. The engine is single-producer: Add/AddBatch/
/// Flush/Estimate must be called from one thread; workers only touch their
/// own shard.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "streaming/f0_sketch.hpp"

namespace mcf0 {

class ShardedF0Engine {
 public:
  /// Spawns `num_shards` workers, each with a private replica built from
  /// `params`. num_shards >= 1; 1 degenerates to background single-thread
  /// ingestion.
  ShardedF0Engine(const F0Params& params, int num_shards);

  /// Drains outstanding batches and joins the workers.
  ~ShardedF0Engine();

  ShardedF0Engine(const ShardedF0Engine&) = delete;
  ShardedF0Engine& operator=(const ShardedF0Engine&) = delete;

  /// Buffers one element; dispatched to a shard once an internal batch
  /// fills (or on Flush).
  void Add(uint64_t x);

  /// The hot path: hands the whole batch to the next shard round-robin.
  /// Copies the span, so the caller may reuse its buffer immediately.
  void AddBatch(std::span<const uint64_t> xs);

  /// Blocks until every dispatched element has been absorbed by a replica.
  void Flush();

  /// Flush + merge-on-query: the union of all shard replicas, exactly the
  /// sketch a sequential F0Estimator fed the same elements would hold.
  /// The result carries the hashes_canonical attestation (fresh replica,
  /// Merge preserves it), so encoding it takes the codec's O(state)
  /// seed-elided fast path — `mcf0 sketch build --shards N` never replays
  /// the sampler at encode time.
  F0Estimator MergedSketch();

  /// MergedSketch().Estimate().
  double Estimate();

  /// Flush + total footprint across the shard replicas.
  size_t SpaceBits();

  uint64_t elements_ingested() const { return elements_; }
  int num_shards() const { return static_cast<int>(shards_.size()); }
  const F0Params& params() const { return params_; }

 private:
  struct Shard;

  void Dispatch(std::vector<uint64_t> batch);
  static void WorkerLoop(Shard* shard);

  F0Params params_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<uint64_t> pending_;  // Add() buffer, not yet dispatched
  size_t next_shard_ = 0;
  uint64_t elements_ = 0;
};

}  // namespace mcf0
