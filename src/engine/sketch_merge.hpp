/// \file sketch_merge.hpp
/// \brief Union-semantics merge for F0 sketches (§4).
///
/// The paper's central bridge is that all three sketches are composable: if
/// sketch A absorbed stream S_A and sketch B absorbed S_B *using the same
/// hash functions*, a merged sketch equal to the one a single pass over
/// S_A ∪ S_B would have produced can be computed from the two states alone:
///
///   Bucketing:  re-filter the union of buckets to the deeper side's level,
///               then keep escalating while the cell stays over Thresh —
///               exact because the cells h_l^{-1}(0^l) are nested in l.
///   Minimum:    set-union of the KMV values, re-truncated to the Thresh
///               lexicographically smallest.
///   Estimation: per-cell max of trailing-zero counters (FM likewise).
///
/// Every Merge() checks compatibility first — identical hash state and
/// thresholds — and returns InvalidArgument instead of silently producing a
/// meaningless union. Replicas built from the same F0Params (same seed)
/// are always compatible; that is the contract ShardedF0Engine and the
/// `mcf0 sketch merge` CLI rely on.
///
/// `BucketingCoordinator` is the fingerprint-tuple variant of the same
/// union used by the §4 distributed protocol, where sites ship
/// (fingerprint, TrailZero) pairs instead of raw bucket elements; the
/// distributed DNF simulation is a thin client of it.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "engine/sketch_codec.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {

/// Unions `from` into `into`. The rows must share hash state and thresh;
/// after the call `into` equals the row a single pass over both input
/// streams would have built. `from` is unchanged.
Status Merge(BucketingSketchRow& into, const BucketingSketchRow& from);
Status Merge(MinimumSketchRow& into, const MinimumSketchRow& from);
/// Estimation rows must agree on cell count and (possibly empty) hash
/// state; cells-only rows merge with cells-only rows.
Status Merge(EstimationSketchRow& into, const EstimationSketchRow& from);
Status Merge(FlajoletMartinRow& into, const FlajoletMartinRow& from);
/// Structured (§5) bucketing rows union exactly like the word-universe
/// ones: re-filter to the deeper side's level, then keep escalating while
/// over thresh.
Status Merge(StructuredBucketRow& into, const StructuredBucketRow& from);

/// Row-wise union of two estimators built from identical F0Params
/// (including the seed, so all sampled hash functions coincide).
Status Merge(F0Estimator& into, const F0Estimator& from);

/// Row-wise union of two structured sketches built from identical
/// StructuredF0Params. Oracle-call counters accumulate.
Status Merge(StructuredF0& into, const StructuredF0& from);

/// Kind-dispatching union over the unified handle: raw merges with raw,
/// structured with structured; mixing kinds is InvalidArgument.
Status Merge(SketchVariant& into, const SketchVariant& from);

/// What MergeSketchStreams did, for callers that report on it.
struct SketchStreamMergeStats {
  uint64_t payload_bytes = 0;  ///< frame payload written (header excluded)
  uint64_t frame_bytes = 0;    ///< total bytes written, header included
  int units = 0;               ///< rows folded (per input)
  /// Peak number of decoded rows simultaneously alive during the merge —
  /// the accumulator plus at most one in-flight row, *independent of the
  /// input count*. The reducer-memory test pins this at <= 2.
  int max_resident_units = 0;
};

/// One reducer input with a name for error attribution. `name` is
/// typically the shard's file name; an empty name degrades every error
/// for this input to its bare message. Both views must outlive the merge.
struct LabeledSource {
  std::string_view name;
  std::string_view bytes;
};

/// The bounded-memory reducer: folds N serialized whole-sketch frames
/// (raw estimators or structured sketches — all inputs one kind) into one
/// merged frame without ever materializing a whole sketch. Inputs are
/// co-iterated row by row through SketchReader cursors, each row union is
/// encoded and appended to `out` immediately (via a FrameSink that
/// patches the header afterwards — `out` must be seekable), and the
/// decoded state alive at any instant is one accumulator row plus the row
/// being folded in. All inputs must share parameters; v1 and v2 raw
/// inputs mix freely (structured frames are v2-only, as is structured
/// output). `out_version` selects the output layout; the merged frame
/// elides hash state only when *every* input frame attested canonical
/// hashes (i.e. all are seed-elided v2), otherwise hashes are embedded.
/// Every error is attributed to the offending input by name in a single
/// pass — corrupt shards, parameter mismatches, and row-level
/// incompatibilities alike — so callers need no pre-open validation
/// sweep. On error the partial output should be discarded by the caller.
Result<SketchStreamMergeStats> MergeSketchStreams(
    const std::vector<LabeledSource>& inputs, uint16_t out_version,
    std::ostream& out);

/// Anonymous-input convenience (errors carry no input names).
Result<SketchStreamMergeStats> MergeSketchStreams(
    const std::vector<std::string_view>& inputs, uint16_t out_version,
    std::ostream& out);

/// Coordinator-side bucket union for the distributed Bucketing protocol
/// (§4): sites ship (fingerprint, TrailZero(H[i](x))) tuples for the
/// solutions in their saturating cell; the coordinator dedupes by
/// fingerprint keeping the max depth, then escalates the union's level
/// until the cell de-saturates.
class BucketingCoordinator {
 public:
  /// Records one shipped tuple; duplicate fingerprints keep the deepest
  /// trailing-zero count (identical elements always agree on depth).
  void AddTuple(uint64_t fingerprint, int trailing_zeros);

  struct LeveledCount {
    uint64_t count = 0;
    int level = 0;
  };

  /// Distinct fingerprints at depth >= level, starting from `start_level`
  /// (the deepest site level) and escalating while the count stays
  /// saturated (>= thresh) and level < max_level.
  LeveledCount Resolve(uint64_t thresh, int start_level, int max_level) const;

  size_t num_tuples() const { return tuples_.size(); }

 private:
  std::unordered_map<uint64_t, int> tuples_;
};

}  // namespace mcf0
