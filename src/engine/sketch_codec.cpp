#include "engine/sketch_codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "gf2/bitvec.hpp"
#include "gf2/gf2_matrix.hpp"
#include "hash/gf2_poly.hpp"
#include "hash/hash_family.hpp"

namespace mcf0 {
namespace {

constexpr char kMagic[4] = {'M', 'C', 'F', '0'};
constexpr size_t kHeaderBytes = 24;

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// ---- primitive little-endian encoding -------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Uint(v, 2); }
  void U32(uint32_t v) { Uint(v, 4); }
  void U64(uint64_t v) { Uint(v, 8); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  /// uint32 bit count, then ceil(size/8) bytes, MSB-first within each byte
  /// (matching the BitVec string order); pad bits are zero.
  void BitVecField(const BitVec& v) {
    U32(static_cast<uint32_t>(v.size()));
    uint8_t byte = 0;
    for (int i = 0; i < v.size(); ++i) {
      byte = static_cast<uint8_t>((byte << 1) | (v.Get(i) ? 1 : 0));
      if ((i & 7) == 7) {
        U8(byte);
        byte = 0;
      }
    }
    if (v.size() & 7) U8(static_cast<uint8_t>(byte << (8 - (v.size() & 7))));
  }

  std::string Take() { return std::move(out_); }

 private:
  void Uint(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  std::string out_;
};

/// Bounds-checked reads; every accessor returns false (without advancing
/// past the end) on truncation so decoders can fail with a Status instead
/// of walking off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool U16(uint16_t* v) { return Uint(v, 2); }
  bool U32(uint32_t* v) { return Uint(v, 4); }
  bool U64(uint64_t* v) { return Uint(v, 8); }
  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }

  /// Counterpart of ByteWriter::BitVecField; rejects nonzero pad bits so
  /// the encoding of a given vector is unique.
  bool BitVecField(BitVec* v) {
    uint32_t size = 0;
    if (!U32(&size)) return false;
    if (size > 8 * Remaining()) return false;
    BitVec out(static_cast<int>(size));
    uint8_t byte = 0;
    for (uint32_t i = 0; i < size; ++i) {
      if ((i & 7) == 0 && !U8(&byte)) return false;
      if ((byte >> (7 - (i & 7))) & 1) out.Set(static_cast<int>(i), true);
    }
    if ((size & 7) != 0 && (byte & ((1u << (8 - (size & 7))) - 1)) != 0) {
      return false;  // nonzero pad bits: not a canonical encoding
    }
    *v = std::move(out);
    return true;
  }

  size_t Remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  bool Uint(T* v, int bytes) {
    if (pos_ + static_cast<size_t>(bytes) > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += bytes;
    *v = static_cast<T>(out);
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated sketch data in ") + what);
}

// ---- frame ----------------------------------------------------------------

std::string WrapFrame(SketchFrameKind kind, std::string payload) {
  ByteWriter header;
  for (const char c : kMagic) header.U8(static_cast<uint8_t>(c));
  header.U16(SketchCodec::kFormatVersion);
  header.U8(static_cast<uint8_t>(kind));
  header.U8(0);  // reserved
  header.U64(payload.size());
  header.U64(Fnv1a64(payload));
  return header.Take() + payload;
}

Result<std::string_view> UnwrapFrame(std::string_view bytes,
                                     SketchFrameKind want) {
  if (bytes.size() < kHeaderBytes) return Truncated("frame header");
  ByteReader reader(bytes.substr(0, kHeaderBytes));
  for (const char expect : kMagic) {
    uint8_t got = 0;
    reader.U8(&got);
    if (got != static_cast<uint8_t>(expect)) {
      return Status::ParseError("bad magic: not an mcf0 sketch blob");
    }
  }
  uint16_t version = 0;
  uint8_t kind = 0;
  uint8_t reserved = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
  reader.U16(&version);
  reader.U8(&kind);
  reader.U8(&reserved);
  reader.U64(&payload_size);
  reader.U64(&checksum);
  if (version != SketchCodec::kFormatVersion) {
    return Status::NotSupported(
        "sketch format version " + std::to_string(version) +
        " (this build reads " +
        std::to_string(SketchCodec::kFormatVersion) + ")");
  }
  if (kind != static_cast<uint8_t>(want)) {
    return Status::InvalidArgument("sketch frame kind " + std::to_string(kind) +
                                   " does not match the requested object");
  }
  if (reserved != 0) {
    return Status::ParseError("nonzero reserved byte in sketch header");
  }
  if (payload_size != bytes.size() - kHeaderBytes) {
    return payload_size > bytes.size() - kHeaderBytes
               ? Truncated("frame payload")
               : Status::ParseError("trailing bytes after sketch payload");
  }
  const std::string_view payload = bytes.substr(kHeaderBytes);
  if (Fnv1a64(payload) != checksum) {
    return Status::ParseError("sketch payload checksum mismatch (corrupt)");
  }
  return payload;
}

// ---- AffineHash -----------------------------------------------------------

void EncodeAffineHash(ByteWriter& w, const AffineHash& h) {
  w.U8(static_cast<uint8_t>(h.kind()));
  w.U32(static_cast<uint32_t>(h.n()));
  w.U32(static_cast<uint32_t>(h.m()));
  w.U64(h.RepresentationBits());
  w.BitVecField(h.b());
  for (int i = 0; i < h.m(); ++i) w.BitVecField(h.A().Row(i));
}

Status DecodeAffineHash(ByteReader& r, std::optional<AffineHash>* out) {
  uint8_t kind = 0;
  uint32_t n = 0;
  uint32_t m = 0;
  uint64_t repr_bits = 0;
  if (!r.U8(&kind) || !r.U32(&n) || !r.U32(&m) || !r.U64(&repr_bits)) {
    return Truncated("hash function");
  }
  if (kind > static_cast<uint8_t>(AffineHashKind::kSparseXor)) {
    return Status::ParseError("unknown hash kind " + std::to_string(kind));
  }
  // Every matrix row costs at least its 4-byte length prefix, so more
  // claimed rows than remaining/4 is hostile. (Decode loops deliberately
  // avoid reserve(): element objects are much larger than their wire
  // encodings, so pre-reserving would let a small crafted file force a
  // huge allocation — an uncaught std::bad_alloc — before the per-element
  // reads could fail. Geometric push_back growth stays proportional to
  // bytes actually decoded.)
  if (n < 1 || m < 1 || m > r.Remaining() / 4) {
    return Status::ParseError("hash dimensions out of range");
  }
  BitVec b;
  if (!r.BitVecField(&b)) return Truncated("hash offset");
  if (b.size() != static_cast<int>(m)) {
    return Status::ParseError("hash offset length mismatch");
  }
  std::vector<BitVec> rows;
  for (uint32_t i = 0; i < m; ++i) {
    BitVec row;
    if (!r.BitVecField(&row)) return Truncated("hash matrix row");
    if (row.size() != static_cast<int>(n)) {
      return Status::ParseError("hash matrix row length mismatch");
    }
    rows.push_back(std::move(row));
  }
  out->emplace(AffineHash::FromParts(Gf2Matrix::FromRows(std::move(rows)),
                                     std::move(b),
                                     static_cast<AffineHashKind>(kind),
                                     repr_bits));
  return Status::Ok();
}

/// The hash of a word-universe sketch row (Bucketing / FM): square, n <= 64.
Status DecodeSquareHash(ByteReader& r, const char* what, int max_n,
                        std::optional<AffineHash>* out) {
  Status status = DecodeAffineHash(r, out);
  if (!status.ok()) return status;
  const AffineHash& h = out->value();
  if (h.n() != h.m() || h.n() > max_n) {
    return Status::ParseError(std::string(what) +
                              ": hash must be square with n <= 64");
  }
  return Status::Ok();
}

// ---- row payloads ---------------------------------------------------------

void EncodeBucketingPayload(ByteWriter& w, const BucketingSketchRow& row) {
  EncodeAffineHash(w, row.hash());
  w.U64(row.thresh());
  w.U32(static_cast<uint32_t>(row.level()));
  std::vector<uint64_t> elems(row.bucket().begin(), row.bucket().end());
  std::sort(elems.begin(), elems.end());  // canonical order
  w.U64(elems.size());
  for (const uint64_t x : elems) w.U64(x);
}

Status DecodeBucketingPayload(ByteReader& r,
                              std::optional<BucketingSketchRow>* out) {
  std::optional<AffineHash> h;
  Status status = DecodeSquareHash(r, "bucketing row", 64, &h);
  if (!status.ok()) return status;
  uint64_t thresh = 0;
  uint32_t level = 0;
  uint64_t count = 0;
  if (!r.U64(&thresh) || !r.U32(&level) || !r.U64(&count)) {
    return Truncated("bucketing row");
  }
  if (thresh < 1) return Status::ParseError("bucketing thresh must be >= 1");
  if (level > static_cast<uint32_t>(h->n())) {
    return Status::ParseError("bucketing level exceeds hash width");
  }
  if (count > r.Remaining() / 8) return Truncated("bucketing bucket");
  std::unordered_set<uint64_t> bucket;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t x = 0;
    if (!r.U64(&x)) return Truncated("bucketing bucket");
    bucket.insert(x);
  }
  // No reachable state holds more than thresh elements below the deepest
  // level (Add escalates past thresh while level < n).
  if (level < static_cast<uint32_t>(h->n()) && bucket.size() > thresh) {
    return Status::ParseError("bucketing bucket exceeds thresh below level n");
  }
  out->emplace(*std::move(h), thresh, static_cast<int>(level),
               std::move(bucket));
  // The from-parts invariant: every element lies in the cell at `level`.
  // Without this, a crafted file could inflate |bucket| * 2^level estimates
  // and break "blob equality is state equality" (Merge would re-filter).
  const BucketingSketchRow& row = out->value();
  for (const uint64_t x : row.bucket()) {
    if (!row.InCell(x, row.level())) {
      return Status::ParseError(
          "bucketing element outside the cell at its level");
    }
  }
  return Status::Ok();
}

void EncodeMinimumPayload(ByteWriter& w, const MinimumSketchRow& row) {
  EncodeAffineHash(w, row.hash());
  w.U64(row.thresh());
  w.U64(row.values().size());  // std::set iterates in canonical order
  for (const BitVec& v : row.values()) w.BitVecField(v);
}

Status DecodeMinimumPayload(ByteReader& r,
                            std::optional<MinimumSketchRow>* out) {
  std::optional<AffineHash> h;
  Status status = DecodeAffineHash(r, &h);
  if (!status.ok()) return status;
  if (h->n() > 64) {
    // Add() maps word elements through h, so the input side must be a
    // word universe (the output side m is unconstrained).
    return Status::ParseError("minimum row: hash input width exceeds 64");
  }
  uint64_t thresh = 0;
  uint64_t count = 0;
  if (!r.U64(&thresh) || !r.U64(&count)) return Truncated("minimum row");
  if (thresh < 1) return Status::ParseError("minimum thresh must be >= 1");
  if (count > thresh) {
    return Status::ParseError("minimum row holds more values than thresh");
  }
  if (count > r.Remaining()) return Truncated("minimum values");
  out->emplace(*std::move(h), thresh);
  for (uint64_t i = 0; i < count; ++i) {
    BitVec v;
    if (!r.BitVecField(&v)) return Truncated("minimum values");
    if (v.size() != out->value().output_bits()) {
      return Status::ParseError("minimum value width mismatch");
    }
    out->value().AddHashed(v);
  }
  return Status::Ok();
}

void EncodeEstimationPayload(ByteWriter& w, const EstimationSketchRow& row) {
  w.U8(row.hashes().empty() ? 0 : 1);
  if (!row.hashes().empty()) {
    w.U32(static_cast<uint32_t>(row.hashes().size()));
    for (const PolynomialHash& h : row.hashes()) {
      w.U32(static_cast<uint32_t>(h.s()));
      for (const uint64_t c : h.coeffs()) w.U64(c);
    }
  }
  w.U32(static_cast<uint32_t>(row.cells().size()));
  for (const int c : row.cells()) w.U8(static_cast<uint8_t>(c));
}

Status DecodeEstimationPayload(ByteReader& r, const Gf2Field* field,
                               std::optional<EstimationSketchRow>* out) {
  uint8_t has_hashes = 0;
  if (!r.U8(&has_hashes)) return Truncated("estimation row");
  if (has_hashes > 1) {
    return Status::ParseError("estimation row has a bad hash marker");
  }
  std::vector<PolynomialHash> hashes;
  if (has_hashes == 1) {
    if (field == nullptr) {
      return Status::InvalidArgument(
          "estimation row carries hashes but no field was supplied");
    }
    const uint64_t mask = field->degree() == 64
                              ? ~0ull
                              : ((1ull << field->degree()) - 1);
    uint32_t num_hashes = 0;
    if (!r.U32(&num_hashes)) return Truncated("estimation row");
    if (num_hashes > r.Remaining() / 4) return Truncated("estimation hashes");
    for (uint32_t i = 0; i < num_hashes; ++i) {
      uint32_t s = 0;
      if (!r.U32(&s)) return Truncated("estimation hashes");
      if (s < 1) return Status::ParseError("estimation hash needs s >= 1");
      if (s > r.Remaining() / 8) return Truncated("estimation hashes");
      std::vector<uint64_t> coeffs(s);
      for (auto& c : coeffs) {
        if (!r.U64(&c)) return Truncated("estimation hashes");
        if ((c & ~mask) != 0) {
          return Status::ParseError("estimation coefficient outside GF(2^w)");
        }
      }
      hashes.emplace_back(field, std::move(coeffs));
    }
  }
  uint32_t num_cells = 0;
  if (!r.U32(&num_cells)) return Truncated("estimation cells");
  if (num_cells < 1) return Status::ParseError("estimation row has no cells");
  if (!hashes.empty() && hashes.size() != num_cells) {
    return Status::ParseError("estimation hash/cell count mismatch");
  }
  if (num_cells > r.Remaining()) return Truncated("estimation cells");
  const int max_cell = field != nullptr ? field->degree() : 64;
  std::vector<int> cells(num_cells);
  for (auto& cell : cells) {
    uint8_t v = 0;
    if (!r.U8(&v)) return Truncated("estimation cells");
    if (v > max_cell) {
      return Status::ParseError("estimation cell exceeds the hash width");
    }
    cell = v;
  }
  out->emplace(hashes.empty() ? nullptr : field, std::move(hashes),
               std::move(cells));
  return Status::Ok();
}

void EncodeFmPayload(ByteWriter& w, const FlajoletMartinRow& row) {
  EncodeAffineHash(w, row.hash());
  w.U32(static_cast<uint32_t>(row.max_trailing_zeros()));
}

Status DecodeFmPayload(ByteReader& r, std::optional<FlajoletMartinRow>* out) {
  std::optional<AffineHash> h;
  Status status = DecodeSquareHash(r, "FM row", 64, &h);
  if (!status.ok()) return status;
  uint32_t max_tz = 0;
  if (!r.U32(&max_tz)) return Truncated("FM row");
  if (max_tz > static_cast<uint32_t>(h->n())) {
    return Status::ParseError("FM counter exceeds hash width");
  }
  out->emplace(*std::move(h), static_cast<int>(max_tz));
  return Status::Ok();
}

// ---- F0Estimator ----------------------------------------------------------

void EncodeParams(ByteWriter& w, const F0Params& p) {
  w.U8(static_cast<uint8_t>(p.algorithm));
  w.U8(static_cast<uint8_t>(p.n));
  w.F64(p.eps);
  w.F64(p.delta);
  w.U64(p.seed);
  w.U64(p.thresh_override);
  w.U32(static_cast<uint32_t>(p.rows_override));
  w.U32(static_cast<uint32_t>(p.s_override));
}

Status DecodeParams(ByteReader& r, F0Params* out) {
  uint8_t algorithm = 0;
  uint8_t n = 0;
  uint32_t rows_override = 0;
  uint32_t s_override = 0;
  if (!r.U8(&algorithm) || !r.U8(&n) || !r.F64(&out->eps) ||
      !r.F64(&out->delta) || !r.U64(&out->seed) ||
      !r.U64(&out->thresh_override) || !r.U32(&rows_override) ||
      !r.U32(&s_override)) {
    return Truncated("sketch parameters");
  }
  if (algorithm > static_cast<uint8_t>(F0Algorithm::kEstimation)) {
    return Status::ParseError("unknown sketch algorithm " +
                              std::to_string(algorithm));
  }
  if (n < 1 || n > 64) return Status::ParseError("sketch n outside [1, 64]");
  if (!std::isfinite(out->eps) || out->eps <= 0) {
    return Status::ParseError("sketch eps must be positive and finite");
  }
  if (!std::isfinite(out->delta) || out->delta <= 0 || out->delta >= 1) {
    return Status::ParseError("sketch delta outside (0, 1)");
  }
  const auto int_max =
      static_cast<uint32_t>(std::numeric_limits<int>::max());
  if (rows_override > int_max || s_override > int_max) {
    return Status::ParseError("sketch row/s override out of range");
  }
  out->algorithm = static_cast<F0Algorithm>(algorithm);
  out->n = n;
  out->rows_override = static_cast<int>(rows_override);
  out->s_override = static_cast<int>(s_override);
  return Status::Ok();
}

}  // namespace

std::string SketchCodec::Encode(const BucketingSketchRow& row) {
  ByteWriter w;
  EncodeBucketingPayload(w, row);
  return WrapFrame(SketchFrameKind::kBucketingRow, w.Take());
}

std::string SketchCodec::Encode(const MinimumSketchRow& row) {
  ByteWriter w;
  EncodeMinimumPayload(w, row);
  return WrapFrame(SketchFrameKind::kMinimumRow, w.Take());
}

std::string SketchCodec::Encode(const EstimationSketchRow& row) {
  ByteWriter w;
  EncodeEstimationPayload(w, row);
  return WrapFrame(SketchFrameKind::kEstimationRow, w.Take());
}

std::string SketchCodec::Encode(const FlajoletMartinRow& row) {
  ByteWriter w;
  EncodeFmPayload(w, row);
  return WrapFrame(SketchFrameKind::kFlajoletMartinRow, w.Take());
}

std::string SketchCodec::Encode(const F0Estimator& est) {
  ByteWriter w;
  EncodeParams(w, est.params());
  switch (est.params().algorithm) {
    case F0Algorithm::kBucketing:
      w.U32(static_cast<uint32_t>(est.bucketing_rows().size()));
      for (const auto& row : est.bucketing_rows()) {
        EncodeBucketingPayload(w, row);
      }
      break;
    case F0Algorithm::kMinimum:
      w.U32(static_cast<uint32_t>(est.minimum_rows().size()));
      for (const auto& row : est.minimum_rows()) EncodeMinimumPayload(w, row);
      break;
    case F0Algorithm::kEstimation:
      w.U32(static_cast<uint32_t>(est.field()->degree()));
      w.U64(est.field()->modulus_low());
      w.U32(static_cast<uint32_t>(est.estimation_rows().size()));
      for (const auto& row : est.estimation_rows()) {
        EncodeEstimationPayload(w, row);
      }
      w.U32(static_cast<uint32_t>(est.fm_rows().size()));
      for (const auto& row : est.fm_rows()) EncodeFmPayload(w, row);
      break;
  }
  return WrapFrame(SketchFrameKind::kF0Estimator, w.Take());
}

Result<BucketingSketchRow> SketchCodec::DecodeBucketingRow(
    std::string_view bytes) {
  auto payload = UnwrapFrame(bytes, SketchFrameKind::kBucketingRow);
  if (!payload.ok()) return payload.status();
  ByteReader r(payload.value());
  std::optional<BucketingSketchRow> row;
  Status status = DecodeBucketingPayload(r, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in bucketing row");
  return *std::move(row);
}

Result<MinimumSketchRow> SketchCodec::DecodeMinimumRow(std::string_view bytes) {
  auto payload = UnwrapFrame(bytes, SketchFrameKind::kMinimumRow);
  if (!payload.ok()) return payload.status();
  ByteReader r(payload.value());
  std::optional<MinimumSketchRow> row;
  Status status = DecodeMinimumPayload(r, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in minimum row");
  return *std::move(row);
}

Result<EstimationSketchRow> SketchCodec::DecodeEstimationRow(
    std::string_view bytes, const Gf2Field* field) {
  auto payload = UnwrapFrame(bytes, SketchFrameKind::kEstimationRow);
  if (!payload.ok()) return payload.status();
  ByteReader r(payload.value());
  std::optional<EstimationSketchRow> row;
  Status status = DecodeEstimationPayload(r, field, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in estimation row");
  return *std::move(row);
}

Result<FlajoletMartinRow> SketchCodec::DecodeFlajoletMartinRow(
    std::string_view bytes) {
  auto payload = UnwrapFrame(bytes, SketchFrameKind::kFlajoletMartinRow);
  if (!payload.ok()) return payload.status();
  ByteReader r(payload.value());
  std::optional<FlajoletMartinRow> row;
  Status status = DecodeFmPayload(r, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in FM row");
  return *std::move(row);
}

Result<F0Estimator> SketchCodec::DecodeF0Estimator(std::string_view bytes) {
  auto payload = UnwrapFrame(bytes, SketchFrameKind::kF0Estimator);
  if (!payload.ok()) return payload.status();
  ByteReader r(payload.value());
  F0Params params;
  Status status = DecodeParams(r, &params);
  if (!status.ok()) return status;
  const auto expected_rows = static_cast<uint32_t>(F0Rows(params));
  const uint64_t expected_thresh = F0Thresh(params);

  std::unique_ptr<Gf2Field> field;
  std::vector<BucketingSketchRow> bucketing;
  std::vector<MinimumSketchRow> minimum;
  std::vector<EstimationSketchRow> estimation;
  std::vector<FlajoletMartinRow> fm;

  auto read_count = [&](const char* what, uint32_t* count) -> Status {
    if (!r.U32(count)) return Truncated(what);
    if (*count != expected_rows) {
      return Status::ParseError(std::string(what) +
                                ": row count disagrees with parameters");
    }
    // Every row occupies at least one payload byte, so a count beyond the
    // remaining bytes is hostile; rejecting here keeps the reserve() calls
    // below from aborting on std::bad_alloc for a tiny crafted file.
    if (*count > r.Remaining()) return Truncated(what);
    return Status::Ok();
  };

  uint32_t count = 0;
  switch (params.algorithm) {
    case F0Algorithm::kBucketing: {
      status = read_count("bucketing rows", &count);
      if (!status.ok()) return status;
      for (uint32_t i = 0; i < count; ++i) {
        std::optional<BucketingSketchRow> row;
        status = DecodeBucketingPayload(r, &row);
        if (!status.ok()) return status;
        if (row->hash().n() != params.n || row->thresh() != expected_thresh) {
          return Status::ParseError(
              "bucketing row disagrees with sketch parameters");
        }
        bucketing.push_back(*std::move(row));
      }
      break;
    }
    case F0Algorithm::kMinimum: {
      status = read_count("minimum rows", &count);
      if (!status.ok()) return status;
      for (uint32_t i = 0; i < count; ++i) {
        std::optional<MinimumSketchRow> row;
        status = DecodeMinimumPayload(r, &row);
        if (!status.ok()) return status;
        if (row->hash().n() != params.n ||
            row->output_bits() != 3 * params.n ||
            row->thresh() != expected_thresh) {
          return Status::ParseError(
              "minimum row disagrees with sketch parameters");
        }
        minimum.push_back(*std::move(row));
      }
      break;
    }
    case F0Algorithm::kEstimation: {
      uint32_t degree = 0;
      uint64_t modulus_low = 0;
      if (!r.U32(&degree) || !r.U64(&modulus_low)) {
        return Truncated("estimation field");
      }
      if (degree != static_cast<uint32_t>(params.n)) {
        return Status::ParseError("estimation field degree differs from n");
      }
      field = std::make_unique<Gf2Field>(params.n);
      if (field->modulus_low() != modulus_low) {
        // The modulus search is deterministic per degree; a mismatch means
        // the blob came from an incompatible implementation.
        return Status::NotSupported(
            "estimation field modulus differs from this build's");
      }
      status = read_count("estimation rows", &count);
      if (!status.ok()) return status;
      // What the sampling constructor would have built: thresh cells, each
      // hash drawn with s coefficients.
      const int expected_s = F0IndependenceS(params);
      for (uint32_t i = 0; i < count; ++i) {
        std::optional<EstimationSketchRow> row;
        status = DecodeEstimationPayload(r, field.get(), &row);
        if (!status.ok()) return status;
        bool consistent = !row->hashes().empty() &&
                          row->cells().size() == expected_thresh;
        for (const PolynomialHash& h : row->hashes()) {
          consistent = consistent && h.s() == expected_s;
        }
        if (!consistent) {
          return Status::ParseError(
              "estimation row disagrees with sketch parameters");
        }
        estimation.push_back(*std::move(row));
      }
      status = read_count("FM rows", &count);
      if (!status.ok()) return status;
      for (uint32_t i = 0; i < count; ++i) {
        std::optional<FlajoletMartinRow> row;
        status = DecodeFmPayload(r, &row);
        if (!status.ok()) return status;
        if (row->hash().n() != params.n) {
          return Status::ParseError("FM row disagrees with sketch parameters");
        }
        fm.push_back(*std::move(row));
      }
      break;
    }
  }
  if (!r.Done()) return Status::ParseError("trailing bytes in F0 sketch");
  return F0Estimator::FromRows(params, std::move(field), std::move(bucketing),
                               std::move(minimum), std::move(estimation),
                               std::move(fm));
}

}  // namespace mcf0
