#include "engine/sketch_codec.hpp"

#include <type_traits>
#include <utility>
#include <vector>

#include "engine/sketch_reader.hpp"
#include "engine/wire.hpp"

namespace mcf0 {
namespace {

bool ValidVersion(uint16_t version) {
  return version == SketchCodec::kFormatV1 ||
         version == SketchCodec::kFormatV2;
}

}  // namespace

std::string SketchCodec::Encode(const BucketingSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeBucketingPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kBucketingRow, version, w.Take());
}

std::string SketchCodec::Encode(const MinimumSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeMinimumPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kMinimumRow, version, w.Take());
}

std::string SketchCodec::Encode(const EstimationSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeEstimationPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kEstimationRow, version, w.Take());
}

std::string SketchCodec::Encode(const FlajoletMartinRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeFmPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kFlajoletMartinRow, version,
                         w.Take());
}

std::string SketchCodec::Encode(const F0Estimator& est, uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  const bool v1 = version == kFormatV1;
  // v2 elides all hash state when it matches the canonical F0RowSampler
  // draws for these parameters — true for every sketch the library builds
  // itself; hand-assembled FromRows estimators fall back to embedding, as
  // do Estimation sketches whose per-row hash state exceeds the decoder's
  // replay allocation cap (files the codec writes must stay readable).
  const bool elide =
      !v1 &&
      (est.params().algorithm != F0Algorithm::kEstimation ||
       F0Thresh(est.params()) *
               static_cast<uint64_t>(F0IndependenceS(est.params())) <=
           wire::kMaxElidedHashCoeffs) &&
      wire::HashesMatchCanonicalSample(est);
  wire::ByteWriter w;
  wire::EncodeParams(w, est.params());
  if (!v1) w.U8(elide ? 1 : 0);
  auto count = [&](size_t rows) { w.Count(version, rows); };
  switch (est.params().algorithm) {
    case F0Algorithm::kBucketing:
      count(est.bucketing_rows().size());
      for (const auto& row : est.bucketing_rows()) {
        wire::EncodeBucketingPayload(w, row, version, !elide);
      }
      break;
    case F0Algorithm::kMinimum:
      count(est.minimum_rows().size());
      for (const auto& row : est.minimum_rows()) {
        wire::EncodeMinimumPayload(w, row, version, !elide);
      }
      break;
    case F0Algorithm::kEstimation:
      w.Count(version, static_cast<uint64_t>(est.field()->degree()));
      w.U64(est.field()->modulus_low());
      count(est.estimation_rows().size());
      for (const auto& row : est.estimation_rows()) {
        wire::EncodeEstimationPayload(w, row, version, !elide);
      }
      count(est.fm_rows().size());
      for (const auto& row : est.fm_rows()) {
        wire::EncodeFmPayload(w, row, version, !elide);
      }
      break;
  }
  return wire::WrapFrame(SketchFrameKind::kF0Estimator, version, w.Take());
}

Result<uint16_t> SketchCodec::PeekFormatVersion(std::string_view bytes) {
  if (bytes.size() < 6 || bytes.substr(0, 4) != "MCF0") {
    return Status::ParseError("bad magic: not an mcf0 sketch blob");
  }
  wire::ByteReader r(bytes.substr(4, 2));
  uint16_t version = 0;
  r.U16(&version);
  return version;
}

Result<BucketingSketchRow> SketchCodec::DecodeBucketingRow(
    std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kBucketingRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<BucketingSketchRow> row;
  Status status = wire::DecodeBucketingPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in bucketing row");
  return *std::move(row);
}

Result<MinimumSketchRow> SketchCodec::DecodeMinimumRow(std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kMinimumRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<MinimumSketchRow> row;
  Status status = wire::DecodeMinimumPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in minimum row");
  return *std::move(row);
}

Result<EstimationSketchRow> SketchCodec::DecodeEstimationRow(
    std::string_view bytes, const Gf2Field* field) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kEstimationRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<EstimationSketchRow> row;
  Status status =
      wire::DecodeEstimationPayload(r, version, field, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in estimation row");
  return *std::move(row);
}

Result<FlajoletMartinRow> SketchCodec::DecodeFlajoletMartinRow(
    std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kFlajoletMartinRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<FlajoletMartinRow> row;
  Status status = wire::DecodeFmPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in FM row");
  return *std::move(row);
}

Result<F0Estimator> SketchCodec::DecodeF0Estimator(std::string_view bytes) {
  // One decode path for both versions and both consumption styles: the
  // whole-estimator decoder is the streaming cursor, drained.
  auto opened = SketchReader::Open(bytes);
  if (!opened.ok()) return opened.status();
  SketchReader reader = std::move(opened).value();

  std::vector<BucketingSketchRow> bucketing;
  std::vector<MinimumSketchRow> minimum;
  std::vector<EstimationSketchRow> estimation;
  std::vector<FlajoletMartinRow> fm;
  while (!reader.AtEnd()) {
    auto unit = reader.Next();
    if (!unit.ok()) return unit.status();
    std::visit(
        [&](auto&& row) {
          using Row = std::decay_t<decltype(row)>;
          if constexpr (std::is_same_v<Row, BucketingSketchRow>) {
            bucketing.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, MinimumSketchRow>) {
            minimum.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, EstimationSketchRow>) {
            estimation.push_back(std::move(row));
          } else {
            fm.push_back(std::move(row));
          }
        },
        std::move(unit).value());
  }
  return F0Estimator::FromRows(reader.params(), reader.TakeField(),
                               std::move(bucketing), std::move(minimum),
                               std::move(estimation), std::move(fm));
}

}  // namespace mcf0
