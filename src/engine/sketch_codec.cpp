#include "engine/sketch_codec.hpp"

#include <type_traits>
#include <utility>
#include <vector>

#include "engine/sketch_reader.hpp"
#include "engine/wire.hpp"

namespace mcf0 {
namespace {

bool ValidVersion(uint16_t version) {
  return version == SketchCodec::kFormatV1 ||
         version == SketchCodec::kFormatV2;
}

}  // namespace

std::string SketchCodec::Encode(const BucketingSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeBucketingPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kBucketingRow, version, w.Take());
}

std::string SketchCodec::Encode(const MinimumSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeMinimumPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kMinimumRow, version, w.Take());
}

std::string SketchCodec::Encode(const EstimationSketchRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeEstimationPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kEstimationRow, version, w.Take());
}

std::string SketchCodec::Encode(const FlajoletMartinRow& row,
                                uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  wire::ByteWriter w;
  wire::EncodeFmPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kFlajoletMartinRow, version,
                         w.Take());
}

std::string SketchCodec::Encode(const StructuredBucketRow& row,
                                uint16_t version) {
  MCF0_CHECK(version == kFormatV2);  // structured frames are v2-only
  wire::ByteWriter w;
  wire::EncodeStructuredBucketPayload(w, row, version, /*embed_hash=*/true);
  return wire::WrapFrame(SketchFrameKind::kStructuredBucketRow, version,
                         w.Take());
}

std::string SketchCodec::Encode(const StructuredF0& sketch, uint16_t version) {
  MCF0_CHECK(version == kFormatV2);  // structured frames are v2-only
  // The same elision rule as raw estimators: hash state vanishes when it
  // is attested (or proven) to match the canonical sampler replay — and
  // when the replay itself is affordable for a decoder driven by the
  // untrusted parameter block alone.
  const bool elide =
      static_cast<uint64_t>(sketch.params().n) <=
          wire::kMaxElidedStructuredUniverseBits &&
      (sketch.hashes_canonical() || wire::HashesMatchCanonicalSample(sketch));
  wire::ByteWriter w;
  wire::EncodeStructuredParams(w, sketch.params());
  w.U8(elide ? 1 : 0);
  const bool minimum =
      sketch.params().algorithm == StructuredF0Algorithm::kMinimum;
  w.Varint(minimum ? sketch.minimum_rows().size()
                   : sketch.bucketing_rows().size());
  if (minimum) {
    for (const auto& row : sketch.minimum_rows()) {
      wire::EncodeMinimumPayload(w, row, version, !elide);
    }
  } else {
    for (const auto& row : sketch.bucketing_rows()) {
      wire::EncodeStructuredBucketPayload(w, row, version, !elide);
    }
  }
  return wire::WrapFrame(SketchFrameKind::kStructuredF0, version, w.Take());
}

std::string SketchCodec::Encode(const F0Estimator& est, uint16_t version) {
  MCF0_CHECK(ValidVersion(version));
  const bool v1 = version == kFormatV1;
  // v2 elides all hash state when it matches the canonical F0RowSampler
  // draws for these parameters. The common case is O(state): a freshly
  // constructed or canonically decoded estimator carries a
  // hashes_canonical attestation (see F0Estimator::Parts) and skips the
  // sampler replay entirely. Hand-assembled FromParts estimators take the
  // slow comparison path — and fall back to embedding when it fails — as
  // do Estimation sketches whose per-row hash state exceeds the decoder's
  // replay allocation cap (files the codec writes must stay readable).
  const bool elide =
      !v1 &&
      (est.params().algorithm != F0Algorithm::kEstimation ||
       F0Thresh(est.params()) *
               static_cast<uint64_t>(F0IndependenceS(est.params())) <=
           wire::kMaxElidedHashCoeffs) &&
      (est.hashes_canonical() || wire::HashesMatchCanonicalSample(est));
  wire::ByteWriter w;
  wire::EncodeParams(w, est.params());
  if (!v1) w.U8(elide ? 1 : 0);
  auto count = [&](size_t rows) { w.Count(version, rows); };
  switch (est.params().algorithm) {
    case F0Algorithm::kBucketing:
      count(est.bucketing_rows().size());
      for (const auto& row : est.bucketing_rows()) {
        wire::EncodeBucketingPayload(w, row, version, !elide);
      }
      break;
    case F0Algorithm::kMinimum:
      count(est.minimum_rows().size());
      for (const auto& row : est.minimum_rows()) {
        wire::EncodeMinimumPayload(w, row, version, !elide);
      }
      break;
    case F0Algorithm::kEstimation:
      w.Count(version, static_cast<uint64_t>(est.field()->degree()));
      w.U64(est.field()->modulus_low());
      count(est.estimation_rows().size());
      for (const auto& row : est.estimation_rows()) {
        wire::EncodeEstimationPayload(w, row, version, !elide);
      }
      count(est.fm_rows().size());
      for (const auto& row : est.fm_rows()) {
        wire::EncodeFmPayload(w, row, version, !elide);
      }
      break;
  }
  return wire::WrapFrame(SketchFrameKind::kF0Estimator, version, w.Take());
}

Result<uint16_t> SketchCodec::PeekFormatVersion(std::string_view bytes) {
  if (bytes.size() < 6 || bytes.substr(0, 4) != "MCF0") {
    return Status::ParseError("bad magic: not an mcf0 sketch blob");
  }
  wire::ByteReader r(bytes.substr(4, 2));
  uint16_t version = 0;
  r.U16(&version);
  return version;
}

Result<SketchFrameKind> SketchCodec::PeekFrameKind(std::string_view bytes) {
  if (bytes.size() < 7 || bytes.substr(0, 4) != "MCF0") {
    return Status::ParseError("bad magic: not an mcf0 sketch blob");
  }
  const uint8_t kind = static_cast<uint8_t>(bytes[6]);
  if (kind > static_cast<uint8_t>(SketchFrameKind::kStructuredBucketRow)) {
    return Status::ParseError("unknown sketch frame kind " +
                              std::to_string(kind));
  }
  return static_cast<SketchFrameKind>(kind);
}

Result<BucketingSketchRow> SketchCodec::DecodeBucketingRow(
    std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kBucketingRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<BucketingSketchRow> row;
  Status status = wire::DecodeBucketingPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in bucketing row");
  return *std::move(row);
}

Result<MinimumSketchRow> SketchCodec::DecodeMinimumRow(std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kMinimumRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<MinimumSketchRow> row;
  Status status = wire::DecodeMinimumPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in minimum row");
  return *std::move(row);
}

Result<StructuredBucketRow> SketchCodec::DecodeStructuredBucketRow(
    std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kStructuredBucketRow,
                        &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<StructuredBucketRow> row;
  Status status =
      wire::DecodeStructuredBucketPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) {
    return Status::ParseError("trailing bytes in structured bucketing row");
  }
  return *std::move(row);
}

Result<EstimationSketchRow> SketchCodec::DecodeEstimationRow(
    std::string_view bytes, const Gf2Field* field) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kEstimationRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<EstimationSketchRow> row;
  Status status =
      wire::DecodeEstimationPayload(r, version, field, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in estimation row");
  return *std::move(row);
}

Result<FlajoletMartinRow> SketchCodec::DecodeFlajoletMartinRow(
    std::string_view bytes) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(bytes, SketchFrameKind::kFlajoletMartinRow, &version);
  if (!payload.ok()) return payload.status();
  wire::ByteReader r(payload.value());
  std::optional<FlajoletMartinRow> row;
  Status status = wire::DecodeFmPayload(r, version, nullptr, &row);
  if (!status.ok()) return status;
  if (!r.Done()) return Status::ParseError("trailing bytes in FM row");
  return *std::move(row);
}

Result<F0Estimator> SketchCodec::DecodeF0Estimator(std::string_view bytes) {
  // One decode path for both versions and both consumption styles: the
  // whole-estimator decoder is the streaming cursor, drained.
  auto opened = SketchReader::Open(bytes);
  if (!opened.ok()) return opened.status();
  SketchReader reader = std::move(opened).value();

  F0Estimator::Parts parts = F0Estimator::EmptyParts();
  while (!reader.AtEnd()) {
    auto unit = reader.Next();
    if (!unit.ok()) return unit.status();
    std::visit(
        [&](auto&& row) {
          using Row = std::decay_t<decltype(row)>;
          if constexpr (std::is_same_v<Row, BucketingSketchRow>) {
            parts.bucketing.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, MinimumSketchRow>) {
            parts.minimum.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, EstimationSketchRow>) {
            parts.estimation.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, FlajoletMartinRow>) {
            parts.fm.push_back(std::move(row));
          } else {
            MCF0_CHECK(false);  // structured rows never appear in raw frames
          }
        },
        std::move(unit).value());
  }
  parts.params = reader.params();
  parts.field = reader.TakeField();
  // An elided frame's hashes were just *derived from* the canonical
  // sampler replay, so the attestation holds by construction; embedded
  // frames (and all of v1) stay conservatively unattested — Encode's slow
  // comparison path can still prove them canonical later.
  parts.hashes_canonical = reader.hashes_elided();
  return F0Estimator::FromParts(std::move(parts));
}

Result<StructuredF0> SketchCodec::DecodeStructuredF0(std::string_view bytes) {
  // Same shape as the raw decoder: the streaming cursor, drained.
  auto opened = SketchReader::Open(bytes);
  if (!opened.ok()) return opened.status();
  SketchReader reader = std::move(opened).value();
  if (reader.frame_kind() != SketchFrameKind::kStructuredF0) {
    return Status::InvalidArgument(
        "sketch frame holds a raw F0 estimator, not a structured sketch");
  }

  StructuredF0::Parts parts = StructuredF0::EmptyParts();
  while (!reader.AtEnd()) {
    auto unit = reader.Next();
    if (!unit.ok()) return unit.status();
    std::visit(
        [&](auto&& row) {
          using Row = std::decay_t<decltype(row)>;
          if constexpr (std::is_same_v<Row, MinimumSketchRow>) {
            parts.minimum.push_back(std::move(row));
          } else if constexpr (std::is_same_v<Row, StructuredBucketRow>) {
            parts.bucketing.push_back(std::move(row));
          } else {
            MCF0_CHECK(false);  // word rows never appear in structured frames
          }
        },
        std::move(unit).value());
  }
  parts.params = reader.structured_params();
  parts.hashes_canonical = reader.hashes_elided();
  return StructuredF0::FromParts(std::move(parts));
}

// ---- SketchVariant --------------------------------------------------------

Result<SketchVariant> SketchVariant::Decode(std::string_view bytes) {
  auto kind = SketchCodec::PeekFrameKind(bytes);
  if (!kind.ok()) return kind.status();
  if (kind.value() == SketchFrameKind::kStructuredF0) {
    auto sketch = SketchCodec::DecodeStructuredF0(bytes);
    if (!sketch.ok()) return sketch.status();
    return SketchVariant(std::move(sketch).value());
  }
  // Anything else routes through the raw decoder, whose frame check
  // produces the canonical kind-mismatch error for row frames.
  auto est = SketchCodec::DecodeF0Estimator(bytes);
  if (!est.ok()) return est.status();
  return SketchVariant(std::move(est).value());
}

double SketchVariant::Estimate() const {
  return std::visit([](const auto& sketch) { return sketch.Estimate(); },
                    sketch_);
}

size_t SketchVariant::SpaceBits() const {
  return std::visit([](const auto& sketch) { return sketch.SpaceBits(); },
                    sketch_);
}

bool SketchVariant::hashes_canonical() const {
  return std::visit(
      [](const auto& sketch) { return sketch.hashes_canonical(); }, sketch_);
}

std::string SketchVariant::Encode(uint16_t version) const {
  return std::visit(
      [&](const auto& sketch) { return SketchCodec::Encode(sketch, version); },
      sketch_);
}

}  // namespace mcf0
