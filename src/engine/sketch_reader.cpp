#include "engine/sketch_reader.hpp"

#include <limits>
#include <string>
#include <utility>

#include "engine/sketch_codec.hpp"
#include "engine/wire.hpp"

namespace mcf0 {

SketchReader::SketchReader() = default;
SketchReader::SketchReader(SketchReader&&) noexcept = default;
SketchReader& SketchReader::operator=(SketchReader&&) noexcept = default;
SketchReader::~SketchReader() = default;

Result<SketchReader> SketchReader::Open(std::string_view blob) {
  uint16_t version = 0;
  auto payload =
      wire::UnwrapFrame(blob, SketchFrameKind::kF0Estimator, &version);
  if (!payload.ok()) return payload.status();
  SketchReader sr;
  sr.version_ = version;
  sr.reader_ = std::make_unique<wire::ByteReader>(payload.value());
  wire::ByteReader& r = *sr.reader_;

  Status status = wire::DecodeParams(r, &sr.params_);
  if (!status.ok()) return status;
  sr.expected_thresh_ = F0Thresh(sr.params_);
  sr.expected_rows_ = F0Rows(sr.params_);
  sr.expected_s_ = F0IndependenceS(sr.params_);

  const bool v1 = version == SketchCodec::kFormatV1;
  if (!v1) {
    uint8_t hash_mode = 0;
    if (!r.U8(&hash_mode)) return wire::Truncated("sketch hash mode");
    if (hash_mode > 1) {
      return Status::ParseError("bad sketch hash mode " +
                                std::to_string(hash_mode));
    }
    sr.elided_ = hash_mode == 1;
    if (sr.elided_) sr.sampler_.emplace(sr.params_);
  }

  auto read_count = [&](const char* what) -> Status {
    uint64_t count = 0;
    if (!r.Count(version, &count)) return wire::Truncated(what);
    if (count != static_cast<uint64_t>(sr.expected_rows_)) {
      return Status::ParseError(std::string(what) +
                                ": row count disagrees with parameters");
    }
    // Every row occupies at least one payload byte, so a count beyond the
    // remaining bytes is hostile; rejecting here keeps decode loops from
    // over-allocating for a tiny crafted file.
    if (count > r.Remaining()) return wire::Truncated(what);
    return Status::Ok();
  };

  switch (sr.params_.algorithm) {
    case F0Algorithm::kBucketing:
      status = read_count("bucketing rows");
      if (!status.ok()) return status;
      sr.num_units_ = sr.expected_rows_;
      break;
    case F0Algorithm::kMinimum:
      status = read_count("minimum rows");
      if (!status.ok()) return status;
      sr.num_units_ = sr.expected_rows_;
      break;
    case F0Algorithm::kEstimation: {
      uint64_t degree = 0;
      uint64_t modulus_low = 0;
      if (!r.Count(version, &degree) || !r.U64(&modulus_low)) {
        return wire::Truncated("estimation field");
      }
      if (degree != static_cast<uint64_t>(sr.params_.n)) {
        return Status::ParseError("estimation field degree differs from n");
      }
      sr.field_ = std::make_unique<Gf2Field>(sr.params_.n);
      if (sr.field_->modulus_low() != modulus_low) {
        // The modulus search is deterministic per degree; a mismatch means
        // the blob came from an incompatible implementation.
        return Status::NotSupported(
            "estimation field modulus differs from this build's");
      }
      status = read_count("estimation rows");
      if (!status.ok()) return status;
      // Estimation frames yield two units per row; a crafted rows_override
      // near INT_MAX must not overflow the doubling (UB), so bound it —
      // no real sketch comes within orders of magnitude of this.
      if (sr.expected_rows_ > std::numeric_limits<int>::max() / 2) {
        return Status::ParseError("estimation row count out of range");
      }
      // The canonical sampler materializes thresh polynomial hashes of s
      // coefficients per row, driven purely by the (untrusted) parameter
      // block — so before any elided row is sampled, pin thresh against
      // what a well-formed frame must carry anyway (at least one cell
      // byte per column) and thresh * s against the replay allocation cap
      // the encoder honors. This keeps a tiny crafted file from forcing a
      // huge sampling allocation or an int-narrowing abort ("decoding
      // never aborts on bad input").
      if (sr.elided_ &&
          (sr.expected_thresh_ > r.Remaining() ||
           sr.expected_thresh_ >
               static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
           sr.expected_thresh_ * static_cast<uint64_t>(sr.expected_s_) >
               wire::kMaxElidedHashCoeffs)) {
        return wire::Truncated("estimation rows");
      }
      sr.num_units_ = 2 * sr.expected_rows_;
      break;
    }
  }
  return sr;
}

Result<SketchReader::Unit> SketchReader::Next() {
  MCF0_CHECK(!AtEnd());
  wire::ByteReader& r = *reader_;
  Status status;
  std::optional<Unit> unit;
  switch (params_.algorithm) {
    case F0Algorithm::kBucketing: {
      std::optional<BucketingSketchRow> sampled;
      if (elided_) sampled = sampler_->NextBucketingRow();
      std::optional<BucketingSketchRow> row;
      status = wire::DecodeBucketingPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n || row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "bucketing row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
    case F0Algorithm::kMinimum: {
      std::optional<MinimumSketchRow> sampled;
      if (elided_) sampled = sampler_->NextMinimumRow();
      std::optional<MinimumSketchRow> row;
      status = wire::DecodeMinimumPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n ||
          row->output_bits() != 3 * params_.n ||
          row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "minimum row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
    case F0Algorithm::kEstimation: {
      if (units_read_ < expected_rows_) {
        std::optional<std::vector<PolynomialHash>> replayed;
        if (elided_) {
          // The replay pair is a temporary; hand its hashes to the decoded
          // row instead of copying thresh * s coefficients. (Its FM half
          // is re-derived later by the FM-block replay sampler.)
          replayed = std::move(sampler_->NextEstimationPair(field_.get())
                                   .first)
                         .TakeHashes();
        }
        std::optional<EstimationSketchRow> row;
        status = wire::DecodeEstimationPayload(
            r, version_, field_.get(), replayed ? &*replayed : nullptr, &row);
        if (!status.ok()) return status;
        // What the sampling constructor would have built: thresh cells,
        // each hash drawn with s coefficients.
        bool consistent = !row->hashes().empty() &&
                          row->cells().size() == expected_thresh_;
        for (const PolynomialHash& h : row->hashes()) {
          consistent = consistent && h.s() == expected_s_;
        }
        if (!consistent) {
          return Status::ParseError(
              "estimation row disagrees with sketch parameters");
        }
        unit.emplace(*std::move(row));
        break;
      }
      if (!fm_count_read_) {
        uint64_t count = 0;
        if (!r.Count(version_, &count)) return wire::Truncated("FM rows");
        if (count != static_cast<uint64_t>(expected_rows_)) {
          return Status::ParseError(
              "FM rows: row count disagrees with parameters");
        }
        if (count > r.Remaining()) return wire::Truncated("FM rows");
        fm_count_read_ = true;
        if (elided_) fm_replay_sampler_.emplace(params_);
      }
      std::optional<FlajoletMartinRow> sampled_fm;
      const AffineHash* elided_hash = nullptr;
      if (elided_) {
        // Replay draw i and keep only its FM half; the Estimation half is
        // sampled into a temporary and dropped, so resident hash state
        // stays one row regardless of the frame's row count.
        sampled_fm = fm_replay_sampler_->NextEstimationPair(field_.get())
                         .second;
        elided_hash = &sampled_fm->hash();
      }
      std::optional<FlajoletMartinRow> row;
      status = wire::DecodeFmPayload(r, version_, elided_hash, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n) {
        return Status::ParseError("FM row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
  }
  ++units_read_;
  if (AtEnd() && !reader_->Done()) {
    return Status::ParseError("trailing bytes in F0 sketch");
  }
  return *std::move(unit);
}

}  // namespace mcf0
