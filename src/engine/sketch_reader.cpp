#include "engine/sketch_reader.hpp"

#include <limits>
#include <string>
#include <utility>

#include "engine/sketch_codec.hpp"
#include "engine/wire.hpp"

namespace mcf0 {

SketchReader::SketchReader() = default;
SketchReader::SketchReader(SketchReader&&) noexcept = default;
SketchReader& SketchReader::operator=(SketchReader&&) noexcept = default;
SketchReader::~SketchReader() = default;

Result<SketchReader> SketchReader::Open(std::string_view blob) {
  // Dispatch on the frame-kind byte: the cursor walks raw estimator
  // frames and (v2) structured frames through one entry point. A
  // non-whole-sketch kind goes down the raw path, whose UnwrapFrame
  // produces the canonical kind-mismatch error.
  const SketchFrameKind want =
      blob.size() >= 7 &&
              static_cast<uint8_t>(blob[6]) ==
                  static_cast<uint8_t>(SketchFrameKind::kStructuredF0)
          ? SketchFrameKind::kStructuredF0
          : SketchFrameKind::kF0Estimator;
  uint16_t version = 0;
  auto payload = wire::UnwrapFrame(blob, want, &version);
  if (!payload.ok()) return payload.status();
  SketchReader sr;
  sr.frame_kind_ = want;
  sr.version_ = version;
  sr.reader_ = std::make_unique<wire::ByteReader>(payload.value());
  wire::ByteReader& r = *sr.reader_;

  if (want == SketchFrameKind::kStructuredF0) {
    if (version != SketchCodec::kFormatV2) {
      return Status::NotSupported(
          "structured sketch frames require format v2");
    }
    Status status = wire::DecodeStructuredParams(r, &sr.structured_params_);
    if (!status.ok()) return status;
    sr.expected_thresh_ = StructuredF0Thresh(sr.structured_params_);
    sr.expected_rows_ = StructuredF0Rows(sr.structured_params_);

    uint8_t hash_mode = 0;
    if (!r.U8(&hash_mode)) return wire::Truncated("sketch hash mode");
    if (hash_mode > 1) {
      return Status::ParseError("bad sketch hash mode " +
                                std::to_string(hash_mode));
    }
    sr.elided_ = hash_mode == 1;
    if (sr.elided_) {
      // The replay densifies one Toeplitz hash of up to n x 3n bits per
      // row from the untrusted parameter block alone; bound n before the
      // first sample (the encoder honors the same cap by embedding).
      if (static_cast<uint64_t>(sr.structured_params_.n) >
          wire::kMaxElidedStructuredUniverseBits) {
        return Status::ParseError(
            "elided structured frame exceeds the universe-bits cap");
      }
      sr.structured_sampler_.emplace(sr.structured_params_);
    }
    uint64_t count = 0;
    if (!r.Varint(&count)) return wire::Truncated("structured rows");
    if (count != static_cast<uint64_t>(sr.expected_rows_)) {
      return Status::ParseError(
          "structured rows: row count disagrees with parameters");
    }
    // Every row occupies at least one payload byte.
    if (count > r.Remaining()) return wire::Truncated("structured rows");
    sr.num_units_ = sr.expected_rows_;
    return sr;
  }

  Status status = wire::DecodeParams(r, &sr.params_);
  if (!status.ok()) return status;
  sr.expected_thresh_ = F0Thresh(sr.params_);
  sr.expected_rows_ = F0Rows(sr.params_);
  sr.expected_s_ = F0IndependenceS(sr.params_);

  const bool v1 = version == SketchCodec::kFormatV1;
  if (!v1) {
    uint8_t hash_mode = 0;
    if (!r.U8(&hash_mode)) return wire::Truncated("sketch hash mode");
    if (hash_mode > 1) {
      return Status::ParseError("bad sketch hash mode " +
                                std::to_string(hash_mode));
    }
    sr.elided_ = hash_mode == 1;
    if (sr.elided_) sr.sampler_.emplace(sr.params_);
  }

  auto read_count = [&](const char* what) -> Status {
    uint64_t count = 0;
    if (!r.Count(version, &count)) return wire::Truncated(what);
    if (count != static_cast<uint64_t>(sr.expected_rows_)) {
      return Status::ParseError(std::string(what) +
                                ": row count disagrees with parameters");
    }
    // Every row occupies at least one payload byte, so a count beyond the
    // remaining bytes is hostile; rejecting here keeps decode loops from
    // over-allocating for a tiny crafted file.
    if (count > r.Remaining()) return wire::Truncated(what);
    return Status::Ok();
  };

  switch (sr.params_.algorithm) {
    case F0Algorithm::kBucketing:
      status = read_count("bucketing rows");
      if (!status.ok()) return status;
      sr.num_units_ = sr.expected_rows_;
      break;
    case F0Algorithm::kMinimum:
      status = read_count("minimum rows");
      if (!status.ok()) return status;
      sr.num_units_ = sr.expected_rows_;
      break;
    case F0Algorithm::kEstimation: {
      uint64_t degree = 0;
      uint64_t modulus_low = 0;
      if (!r.Count(version, &degree) || !r.U64(&modulus_low)) {
        return wire::Truncated("estimation field");
      }
      if (degree != static_cast<uint64_t>(sr.params_.n)) {
        return Status::ParseError("estimation field degree differs from n");
      }
      sr.field_ = std::make_unique<Gf2Field>(sr.params_.n);
      if (sr.field_->modulus_low() != modulus_low) {
        // The modulus search is deterministic per degree; a mismatch means
        // the blob came from an incompatible implementation.
        return Status::NotSupported(
            "estimation field modulus differs from this build's");
      }
      status = read_count("estimation rows");
      if (!status.ok()) return status;
      // Estimation frames yield two units per row; a crafted rows_override
      // near INT_MAX must not overflow the doubling (UB), so bound it —
      // no real sketch comes within orders of magnitude of this.
      if (sr.expected_rows_ > std::numeric_limits<int>::max() / 2) {
        return Status::ParseError("estimation row count out of range");
      }
      // The canonical sampler materializes thresh polynomial hashes of s
      // coefficients per row, driven purely by the (untrusted) parameter
      // block — so before any elided row is sampled, pin thresh against
      // what a well-formed frame must carry anyway (at least one *bit*
      // per cell, now that v2 packs the cell block) and thresh * s
      // against the replay allocation cap the encoder honors. This keeps
      // a tiny crafted file from forcing a huge sampling allocation or an
      // int-narrowing abort ("decoding never aborts on bad input").
      if (sr.elided_ &&
          (sr.expected_thresh_ > 8 * r.Remaining() ||
           sr.expected_thresh_ >
               static_cast<uint64_t>(std::numeric_limits<int>::max()) ||
           sr.expected_thresh_ * static_cast<uint64_t>(sr.expected_s_) >
               wire::kMaxElidedHashCoeffs)) {
        return wire::Truncated("estimation rows");
      }
      sr.num_units_ = 2 * sr.expected_rows_;
      break;
    }
  }
  return sr;
}

Result<SketchReader::Unit> SketchReader::Next() {
  MCF0_CHECK(!AtEnd());
  wire::ByteReader& r = *reader_;
  Status status;
  std::optional<Unit> unit;
  if (structured()) {
    if (structured_params_.algorithm == StructuredF0Algorithm::kMinimum) {
      std::optional<MinimumSketchRow> sampled;
      if (elided_) sampled = structured_sampler_->NextMinimumRow();
      std::optional<MinimumSketchRow> row;
      status = wire::DecodeMinimumPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row,
          /*wide_universe=*/true);
      if (!status.ok()) return status;
      if (row->hash().n() != structured_params_.n ||
          row->output_bits() != 3 * structured_params_.n ||
          row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "structured minimum row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
    } else {
      std::optional<StructuredBucketRow> sampled;
      if (elided_) sampled = structured_sampler_->NextBucketingRow();
      std::optional<StructuredBucketRow> row;
      status = wire::DecodeStructuredBucketPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row);
      if (!status.ok()) return status;
      if (row->n() != structured_params_.n ||
          row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "structured bucketing row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
    }
    ++units_read_;
    if (AtEnd() && !reader_->Done()) {
      return Status::ParseError("trailing bytes in F0 sketch");
    }
    return *std::move(unit);
  }
  switch (params_.algorithm) {
    case F0Algorithm::kBucketing: {
      std::optional<BucketingSketchRow> sampled;
      if (elided_) sampled = sampler_->NextBucketingRow();
      std::optional<BucketingSketchRow> row;
      status = wire::DecodeBucketingPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n || row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "bucketing row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
    case F0Algorithm::kMinimum: {
      std::optional<MinimumSketchRow> sampled;
      if (elided_) sampled = sampler_->NextMinimumRow();
      std::optional<MinimumSketchRow> row;
      status = wire::DecodeMinimumPayload(
          r, version_, sampled ? &sampled->hash() : nullptr, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n ||
          row->output_bits() != 3 * params_.n ||
          row->thresh() != expected_thresh_) {
        return Status::ParseError(
            "minimum row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
    case F0Algorithm::kEstimation: {
      if (units_read_ < expected_rows_) {
        std::optional<std::vector<PolynomialHash>> replayed;
        if (elided_) {
          // The replay pair is a temporary; hand its hashes to the decoded
          // row instead of copying thresh * s coefficients. (Its FM half
          // is re-derived later by the FM-block replay sampler.)
          replayed = std::move(sampler_->NextEstimationPair(field_.get())
                                   .first)
                         .TakeHashes();
        }
        std::optional<EstimationSketchRow> row;
        status = wire::DecodeEstimationPayload(
            r, version_, field_.get(), replayed ? &*replayed : nullptr, &row);
        if (!status.ok()) return status;
        // What the sampling constructor would have built: thresh cells,
        // each hash drawn with s coefficients.
        bool consistent = !row->hashes().empty() &&
                          row->cells().size() == expected_thresh_;
        for (const PolynomialHash& h : row->hashes()) {
          consistent = consistent && h.s() == expected_s_;
        }
        if (!consistent) {
          return Status::ParseError(
              "estimation row disagrees with sketch parameters");
        }
        unit.emplace(*std::move(row));
        break;
      }
      if (!fm_count_read_) {
        uint64_t count = 0;
        if (!r.Count(version_, &count)) return wire::Truncated("FM rows");
        if (count != static_cast<uint64_t>(expected_rows_)) {
          return Status::ParseError(
              "FM rows: row count disagrees with parameters");
        }
        if (count > r.Remaining()) return wire::Truncated("FM rows");
        fm_count_read_ = true;
        if (elided_) fm_replay_sampler_.emplace(params_);
      }
      std::optional<FlajoletMartinRow> sampled_fm;
      const AffineHash* elided_hash = nullptr;
      if (elided_) {
        // Replay draw i and keep only its FM half; the Estimation half is
        // sampled into a temporary and dropped, so resident hash state
        // stays one row regardless of the frame's row count.
        sampled_fm = fm_replay_sampler_->NextEstimationPair(field_.get())
                         .second;
        elided_hash = &sampled_fm->hash();
      }
      std::optional<FlajoletMartinRow> row;
      status = wire::DecodeFmPayload(r, version_, elided_hash, &row);
      if (!status.ok()) return status;
      if (row->hash().n() != params_.n) {
        return Status::ParseError("FM row disagrees with sketch parameters");
      }
      unit.emplace(*std::move(row));
      break;
    }
  }
  ++units_read_;
  if (AtEnd() && !reader_->Done()) {
    return Status::ParseError("trailing bytes in F0 sketch");
  }
  return *std::move(unit);
}

}  // namespace mcf0
