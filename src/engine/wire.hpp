/// \file wire.hpp
/// \brief Wire-level building blocks shared by the sketch codec layers.
///
/// This is the engine's *internal* serialization toolkit: byte-exact
/// little-endian primitives (ByteWriter / ByteReader), the framed header
/// (WrapFrame / UnwrapFrame / FrameSink), and the per-row payload codecs
/// for both wire format versions (docs/wire_format.md). Three consumers
/// build on it and nothing else should:
///
///   * `SketchCodec`   — whole-blob encode/decode (sketch_codec.hpp)
///   * `SketchReader`  — incremental row-at-a-time decode (sketch_reader.hpp)
///   * `MergeSketchStreams` — bounded-memory reducer merge (sketch_merge.hpp)
///
/// Version-1 payloads are frozen: the functions here must keep producing
/// and accepting the exact bytes the original codec did (the golden-file
/// compat tests pin this). Version-2 payloads add the compressed
/// representations: Toeplitz hashes as diagonal seeds, seed-elided hash
/// state for whole estimators, and delta+varint coded element/value sets.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "engine/sketch_codec.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace wire {

/// Frame header size in bytes (magic, version, kind, reserved, length,
/// checksum); see docs/wire_format.md.
inline constexpr size_t kHeaderBytes = 24;

/// Elided estimator frames make the decoder *sample* thresh hashes of s
/// coefficients per row from the parameter block alone, so the product is
/// capped: encoders fall back to embedding past it, and decoders reject
/// elided frames beyond it instead of allocating gigabytes on behalf of a
/// 100-byte crafted file. 2^24 coefficients (128 MiB transient per row)
/// is orders of magnitude above any real configuration (default: 600).
inline constexpr uint64_t kMaxElidedHashCoeffs = 1ull << 24;

/// Elided *structured* frames make the decoder sample one Toeplitz hash of
/// up to n x 3n dense bits per row from the parameter block alone, so n is
/// capped: encoders fall back to embedding past it (then the file pays for
/// the hash bytes proportionally), and decoders reject elided frames
/// beyond it. 4096 universe bits (~6 MiB transient per KMV row) is far
/// above any real structured stream (DNF benchmarks run tens of
/// variables).
inline constexpr uint64_t kMaxElidedStructuredUniverseBits = 4096;

/// FNV-1a-64 over `bytes` — the frame payload checksum.
uint64_t Fnv1a64(std::string_view bytes);

/// Running FNV-1a-64 state for streaming writers (FrameSink).
struct Fnv1a64State {
  uint64_t hash = 14695981039346656037ull;
  void Update(std::string_view bytes) {
    for (const char c : bytes) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ull;
    }
  }
};

// ---- primitive little-endian encoding -------------------------------------

class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Uint(v, 2); }
  void U32(uint32_t v) { Uint(v, 4); }
  void U64(uint64_t v) { Uint(v, 8); }
  void F64(double v);

  /// Unsigned integer in exactly `bytes` little-endian bytes (v2 packed
  /// field coefficients). Requires v < 2^(8*bytes).
  void UintN(uint64_t v, int bytes) { Uint(v, bytes); }

  /// LEB128 varint: 7 value bits per byte, low group first, high bit set
  /// on every byte but the last. Minimal-length by construction.
  void Varint(uint64_t v);

  /// A count/width field: fixed u32 in v1, varint in v2. Every site that
  /// writes one goes through here so encoder and decoder can't diverge.
  void Count(uint16_t version, uint64_t v);

  /// v1 bit-string field: uint32 bit count, then ceil(size/8) bytes,
  /// MSB-first within each byte (matching the BitVec string order); pad
  /// bits are zero.
  void BitVecField(const BitVec& v);

  /// v2 bit-string field: the bytes of BitVecField without the length
  /// prefix — used where the bit count is implied by context.
  void RawBits(const BitVec& v);

  std::string Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void Uint(uint64_t v, int bytes);

  std::string out_;
};

/// Bounds-checked reads; every accessor returns false (without advancing
/// past the end) on truncation so decoders can fail with a Status instead
/// of walking off the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v) { return Uint(v, 2); }
  bool U32(uint32_t* v) { return Uint(v, 4); }
  bool U64(uint64_t* v) { return Uint(v, 8); }
  bool F64(double* v);
  bool UintN(uint64_t* v, int bytes) { return Uint(v, bytes); }

  /// Counterpart of ByteWriter::Varint. Rejects non-minimal encodings
  /// (redundant trailing zero groups) and values beyond 64 bits, so every
  /// uint64 has exactly one wire representation.
  bool Varint(uint64_t* v);

  /// Counterpart of ByteWriter::Count: fixed u32 in v1, varint in v2.
  bool Count(uint16_t version, uint64_t* v);

  /// Counterpart of ByteWriter::BitVecField; rejects nonzero pad bits so
  /// the encoding of a given vector is unique.
  bool BitVecField(BitVec* v);

  /// Counterpart of ByteWriter::RawBits for a known bit count; rejects
  /// nonzero pad bits.
  bool RawBits(int nbits, BitVec* v);

  size_t Remaining() const { return data_.size() - pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  template <typename T>
  bool Uint(T* v, int bytes) {
    if (pos_ + static_cast<size_t>(bytes) > data_.size()) return false;
    uint64_t out = 0;
    for (int i = 0; i < bytes; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += bytes;
    *v = static_cast<T>(out);
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what);

// ---- frame ----------------------------------------------------------------

/// Wraps `payload` in the 24-byte header carrying `version`.
std::string WrapFrame(SketchFrameKind kind, uint16_t version,
                      std::string payload);

/// WrapFrame for kind bytes outside SketchFrameKind — the serve protocol
/// (src/net) frames its messages with the same magic/header/checksum
/// machinery but its own kind namespace (docs/serve.md).
std::string WrapFrameRaw(uint8_t kind, uint16_t version, std::string payload);

/// A parsed 24-byte frame header. Meaning of `version` and `kind` is the
/// consumer's: sketch frames use SketchCodec versions + SketchFrameKind,
/// net frames the protocol version + net::FrameType.
struct FrameHeader {
  uint16_t version = 0;
  uint8_t kind = 0;
  uint64_t payload_size = 0;
  uint64_t checksum = 0;
};

/// Parses the header at the front of `bytes` (>= kHeaderBytes of a byte
/// stream; trailing data is ignored). Validates magic and the zero
/// reserved byte only — version/kind policy belongs to the caller. The
/// incremental entry point for stream consumers that must know
/// payload_size before the payload has arrived.
Status ParseFrameHeader(std::string_view bytes, FrameHeader* out);

/// Validates `payload` (exactly header.payload_size bytes) against the
/// header's FNV-1a-64 checksum.
Status CheckFramePayload(const FrameHeader& header, std::string_view payload);

/// Validates header, kind, length, and checksum; accepts any version the
/// library reads (v1 and v2) and reports which via `version`.
Result<std::string_view> UnwrapFrame(std::string_view bytes,
                                     SketchFrameKind want, uint16_t* version);

/// Incremental frame writer for bounded-memory producers: writes a
/// placeholder header up front, streams payload chunks while accumulating
/// length + FNV-1a-64, then patches the header in place on Finish(). The
/// destination stream must be seekable (a file or stringstream).
class FrameSink {
 public:
  FrameSink(std::ostream* out, SketchFrameKind kind, uint16_t version);

  void Append(std::string_view payload_chunk);
  /// Seeks back and rewrites the header's length + checksum fields.
  Status Finish();

  uint64_t payload_bytes() const { return bytes_; }

 private:
  std::ostream* out_;
  std::streampos header_pos_;
  Fnv1a64State fnv_;
  uint64_t bytes_ = 0;
  bool finished_ = false;
};

// ---- payload codecs -------------------------------------------------------
//
// Encoders write exactly one canonical byte string per state; decoders
// validate every field domain. `version` selects the layout. The v2 row
// codecs take a hash context: when an estimator frame elides hash state
// ("canonical hashes", mode byte 1), the caller re-derives each row's
// hashes via F0RowSampler and passes them in; `embed_hash == false` on the
// encode side skips them symmetrically.

void EncodeAffineHash(ByteWriter& w, const AffineHash& h, uint16_t version);
Status DecodeAffineHash(ByteReader& r, uint16_t version,
                        std::optional<AffineHash>* out);

void EncodeParams(ByteWriter& w, const F0Params& p);
Status DecodeParams(ByteReader& r, F0Params* out);

void EncodeBucketingPayload(ByteWriter& w, const BucketingSketchRow& row,
                            uint16_t version, bool embed_hash);
Status DecodeBucketingPayload(ByteReader& r, uint16_t version,
                              const AffineHash* elided_hash,
                              std::optional<BucketingSketchRow>* out);

/// `wide_universe` permits hash input widths beyond 64 bits — valid only
/// in structured-frame context, where KMV rows live on the BitVec universe
/// and are fed through AddHashed/Eval (never the word-stream Add). Word
/// frames keep rejecting wide hashes, whose Add() would be undefined.
void EncodeMinimumPayload(ByteWriter& w, const MinimumSketchRow& row,
                          uint16_t version, bool embed_hash);
Status DecodeMinimumPayload(ByteReader& r, uint16_t version,
                            const AffineHash* elided_hash,
                            std::optional<MinimumSketchRow>* out,
                            bool wide_universe = false);

void EncodeEstimationPayload(ByteWriter& w, const EstimationSketchRow& row,
                             uint16_t version, bool embed_hash);
/// `elided`, when non-null, supplies the replayed hashes and is moved
/// from (the caller's replay row is a temporary anyway).
Status DecodeEstimationPayload(ByteReader& r, uint16_t version,
                               const Gf2Field* field,
                               std::vector<PolynomialHash>* elided,
                               std::optional<EstimationSketchRow>* out);

void EncodeFmPayload(ByteWriter& w, const FlajoletMartinRow& row,
                     uint16_t version, bool embed_hash);
Status DecodeFmPayload(ByteReader& r, uint16_t version,
                       const AffineHash* elided_hash,
                       std::optional<FlajoletMartinRow>* out);

// ---- structured-sketch payloads (v2 only; docs/wire_format.md) ------------

void EncodeStructuredParams(ByteWriter& w, const StructuredF0Params& p);
Status DecodeStructuredParams(ByteReader& r, StructuredF0Params* out);

void EncodeStructuredBucketPayload(ByteWriter& w,
                                   const StructuredBucketRow& row,
                                   uint16_t version, bool embed_hash);
Status DecodeStructuredBucketPayload(ByteReader& r, uint16_t version,
                                     const AffineHash* elided_hash,
                                     std::optional<StructuredBucketRow>* out);

/// True iff every hash in `est` matches what F0RowSampler derives from
/// `est.params()` — the eligibility test for the v2 seed-elided estimator
/// encoding. Representation-bit counts are compared too, so SpaceBits()
/// survives the round trip exactly. The slow path behind the
/// hashes_canonical attestation (used only when the flag is unset).
bool HashesMatchCanonicalSample(const F0Estimator& est);
/// The structured twin, against StructuredF0RowSampler.
bool HashesMatchCanonicalSample(const StructuredF0& sketch);

}  // namespace wire
}  // namespace mcf0
