#include "distributed/distributed_dnf.hpp"

#include <algorithm>
#include <cmath>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "engine/sketch_merge.hpp"
#include "hash/gf2_poly.hpp"
#include "hash/hash_family.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/find_max_range.hpp"
#include "oracle/find_min.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

uint64_t DistThresh(const DistributedParams& p) {
  if (p.thresh_override > 0) return p.thresh_override;
  return static_cast<uint64_t>(std::ceil(96.0 / (p.eps * p.eps)));
}

int DistRows(const DistributedParams& p) {
  if (p.rows_override > 0) return p.rows_override;
  return static_cast<int>(std::ceil(35.0 * std::log2(1.0 / p.delta)));
}

int CeilLog2(uint64_t v) {
  int bits = 0;
  while ((1ull << bits) < v) ++bits;
  return bits;
}

/// The hash with rows (and offset bits) reversed: the first m rows of the
/// reversed hash are the last m rows of the original, so prefix-cell
/// machinery computes trailing-zero cells.
AffineHash ReverseHash(const AffineHash& h) {
  Gf2Matrix a(h.m(), h.n());
  BitVec b(h.m());
  for (int i = 0; i < h.m(); ++i) {
    a.MutableRow(i) = h.A().Row(h.m() - 1 - i);
    b.Set(i, h.b().Get(h.m() - 1 - i));
  }
  return AffineHash::FromParts(std::move(a), std::move(b), h.kind());
}

int NumVarsOf(const std::vector<Dnf>& sites) {
  MCF0_CHECK(!sites.empty());
  const int n = sites[0].num_vars();
  for (const Dnf& d : sites) MCF0_CHECK(d.num_vars() == n);
  return n;
}

}  // namespace

std::vector<Dnf> PartitionDnf(const Dnf& dnf, int k) {
  MCF0_CHECK(k >= 1);
  std::vector<Dnf> sites(k, Dnf(dnf.num_vars()));
  for (int i = 0; i < dnf.num_terms(); ++i) {
    sites[i % k].AddTerm(dnf.terms()[i]);
  }
  return sites;
}

DistributedResult DistributedBucketingDnf(const std::vector<Dnf>& sites,
                                          const DistributedParams& params) {
  DistributedResult result;
  result.thresh = DistThresh(params);
  result.rows = DistRows(params);
  const int n = NumVarsOf(sites);
  const auto k = static_cast<uint64_t>(sites.size());
  Rng rng(params.seed);

  // Fingerprint width: union-bound birthday collisions among all shipped
  // tuples below delta/2.
  const uint64_t max_tuples = k * result.rows * result.thresh;
  const int fp_bits = std::min(
      64, 2 * CeilLog2(std::max<uint64_t>(2, max_tuples)) +
              CeilLog2(static_cast<uint64_t>(std::ceil(2.0 / params.delta))) +
                  1);
  const AffineHash g = AffineHash::SampleXor(n, fp_bits, rng);

  std::vector<double> row_estimates;
  const int tz_bits = CeilLog2(static_cast<uint64_t>(n) + 1);
  for (int i = 0; i < result.rows; ++i) {
    const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
    const AffineHash h_rev = ReverseHash(h);
    // Coordinator ships H[i] and (once, amortized here per row) G.
    result.comm.ChargeToSites(k * h.RepresentationBits());
    // The union rebuild is the engine's bucketing coordinator: tuples of
    // (fingerprint, trailing-zero depth) deduped by fingerprint, then the
    // level escalated until the union's cell de-saturates.
    BucketingCoordinator coordinator;
    int level = 0;
    for (const Dnf& site : sites) {
      // Site: smallest cell level at which BoundedSAT de-saturates.
      int m = 0;
      BoundedSatResult cell = BoundedSatDnf(site, h_rev, m, result.thresh);
      while (cell.saturated && m < n) {
        ++m;
        cell = BoundedSatDnf(site, h_rev, m, result.thresh);
      }
      level = std::max(level, m);
      result.comm.ChargeFromSites(cell.count() *
                                  static_cast<uint64_t>(fp_bits + tz_bits));
      for (const BitVec& x : cell.solutions) {
        coordinator.AddTuple(g.Eval(x).ToU64(), h.Eval(x).TrailingZeros());
      }
    }
    const auto resolved = coordinator.Resolve(result.thresh, level, n);
    row_estimates.push_back(static_cast<double>(resolved.count) *
                            std::pow(2.0, resolved.level));
  }
  result.comm.ChargeToSites(k * g.RepresentationBits());
  result.estimate = Median(std::move(row_estimates));
  return result;
}

DistributedResult DistributedMinimumDnf(const std::vector<Dnf>& sites,
                                        const DistributedParams& params) {
  DistributedResult result;
  result.thresh = DistThresh(params);
  result.rows = DistRows(params);
  const int n = NumVarsOf(sites);
  const auto k = static_cast<uint64_t>(sites.size());
  Rng rng(params.seed);

  std::vector<double> row_estimates;
  for (int i = 0; i < result.rows; ++i) {
    AffineHash h = AffineHash::SampleToeplitz(n, 3 * n, rng);
    result.comm.ChargeToSites(k * h.RepresentationBits());
    MinimumSketchRow row(h, result.thresh);
    for (const Dnf& site : sites) {
      const std::vector<BitVec> mins = FindMinDnf(site, h, result.thresh);
      result.comm.ChargeFromSites(mins.size() * static_cast<uint64_t>(3 * n));
      for (const BitVec& v : mins) row.AddHashed(v);
    }
    row_estimates.push_back(row.Estimate());
  }
  result.estimate = Median(std::move(row_estimates));
  return result;
}

DistributedResult DistributedEstimationDnf(const std::vector<Dnf>& sites,
                                           const DistributedParams& params) {
  DistributedResult result;
  result.thresh = DistThresh(params);
  result.rows = DistRows(params);
  const int n = NumVarsOf(sites);
  const auto k = static_cast<uint64_t>(sites.size());
  Rng rng(params.seed);
  const int tz_bits = CeilLog2(static_cast<uint64_t>(n) + 1);

  // FM rough estimate for r: one pairwise hash per row; sites report their
  // local max trailing-zero depth, the coordinator takes maxima and the
  // median across rows.
  std::vector<double> fm_estimates;
  for (int i = 0; i < result.rows; ++i) {
    const AffineHash fm = AffineHash::SampleXor(n, n, rng);
    result.comm.ChargeToSites(k * fm.RepresentationBits());
    int best = -1;
    for (const Dnf& site : sites) {
      const int t = FindMaxRangeDnf(site, fm);
      result.comm.ChargeFromSites(tz_bits);
      best = std::max(best, t);
    }
    fm_estimates.push_back(best < 0 ? 0.0 : std::pow(2.0, best));
  }
  const double rough = Median(std::move(fm_estimates));
  if (rough < 1.0) return result;  // all sites empty
  const int r = std::clamp(
      static_cast<int>(std::lround(std::log2(10.0 * rough))), 1, n);

  std::vector<double> row_estimates;
  for (int i = 0; i < result.rows; ++i) {
    EstimationSketchRow row(static_cast<int>(result.thresh));
    for (uint64_t j = 0; j < result.thresh; ++j) {
      const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
      result.comm.ChargeToSites(k * h.RepresentationBits());
      for (const Dnf& site : sites) {
        const int t = FindMaxRangeDnf(site, h);
        result.comm.ChargeFromSites(tz_bits);
        if (t >= 0) row.Merge(static_cast<int>(j), t);
      }
    }
    row_estimates.push_back(row.EstimateWithR(r));
  }
  result.estimate = Median(std::move(row_estimates));
  return result;
}

}  // namespace mcf0
