/// \file distributed_dnf.hpp
/// \brief Distributed DNF counting (§4): k sites hold DNF subformulas, a
/// coordinator computes an (eps, delta)-estimate of |Sol(phi_1 or ... or
/// phi_k)| while the simulation meters every bit exchanged.
///
/// All three strategies transfer per the paper:
///  * Bucketing: sites run BoundedSAT locally and ship
///    (fingerprint, TrailZero(H[i](x))) tuples for the solutions in their
///    saturating cell; the coordinator rebuilds the union's bucket at the
///    deepest site level and escalates further if still saturated.
///    Communication Õ(k (n + 1/eps^2) log(1/delta)).
///  * Minimum: sites run FindMin and ship their Thresh smallest hash
///    values; the coordinator merges into the KMV sketch.
///    Communication O(k n / eps^2 * log(1/delta)).
///  * Estimation: sites run FindMaxRange per (row, column) hash and ship
///    the trailing-zero maxima; the coordinator takes per-cell maxima.
///    Communication Õ(k (n + 1/eps^2) log(1/delta)). (Paper caveat: with
///    s-wise polynomial hashes the site computation is not known to be
///    PTIME for DNF; our affine substitution makes it so — DESIGN.md.)
///
/// The Woodruff-Zhang lower bound Omega(k / eps^2) applies to all three
/// (experiment E7 plots measured bits against it).
///
/// Hash shipping note: following the standard public-randomness convention
/// of the distributed functional monitoring literature, hash-function bits
/// (coordinator -> sites) are metered separately in
/// CommStats::bits_to_sites; site payloads are in bits_from_sites.
#pragma once

#include <cstdint>
#include <vector>

#include "distributed/channel.hpp"
#include "formula/formula.hpp"

namespace mcf0 {

/// Parameters shared by the three protocols.
struct DistributedParams {
  double eps = 0.8;
  double delta = 0.2;
  uint64_t seed = 1;
  uint64_t thresh_override = 0;
  int rows_override = 0;
};

/// Estimate plus the communication ledger.
struct DistributedResult {
  double estimate = 0.0;
  CommStats comm;
  int rows = 0;
  uint64_t thresh = 0;
};

/// Splits a DNF's terms round-robin into k site subformulas (the paper's
/// arbitrary partition; round-robin for reproducibility).
std::vector<Dnf> PartitionDnf(const Dnf& dnf, int k);

DistributedResult DistributedBucketingDnf(const std::vector<Dnf>& sites,
                                          const DistributedParams& params);

DistributedResult DistributedMinimumDnf(const std::vector<Dnf>& sites,
                                        const DistributedParams& params);

DistributedResult DistributedEstimationDnf(const std::vector<Dnf>& sites,
                                           const DistributedParams& params);

}  // namespace mcf0
