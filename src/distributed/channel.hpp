/// \file channel.hpp
/// \brief Bit-accurate communication accounting for the distributed
/// functional-monitoring simulation (§4).
///
/// The distributed model constrains only the total number of bits
/// exchanged between the sites and the coordinator; the simulation runs
/// in-process and charges every logical message to a `CommStats` ledger.
#pragma once

#include <cstdint>

namespace mcf0 {

/// Ledger of bits moved in each direction.
struct CommStats {
  uint64_t bits_to_sites = 0;    ///< coordinator -> sites (hash functions)
  uint64_t bits_from_sites = 0;  ///< sites -> coordinator (sketch contents)

  uint64_t total_bits() const { return bits_to_sites + bits_from_sites; }

  void ChargeToSites(uint64_t bits) { bits_to_sites += bits; }
  void ChargeFromSites(uint64_t bits) { bits_from_sites += bits; }
};

}  // namespace mcf0
