/// \file connection.hpp
/// \brief Server-side session state machine + the transport-facing
/// engine surface (`EngineBackend` / `ProducerHandle`).
///
/// A `Connection` owns one accepted socket and speaks the protocol of
/// protocol.hpp: hello/welcome negotiation, credit-metered batches,
/// live queries, drain, goodbye. It talks to the sketch engine only
/// through `EngineBackend` — the type-erased veneer over
/// `ShardedF0Engine` / `ShardedStructuredEngine` that keeps the net
/// layer ignorant of which item alphabet is behind the socket (and
/// keeps src/net inside the sealed sketch API: no replica access, only
/// producer handles and snapshot queries).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace mcf0 {
namespace net {

/// One connection's ingestion handle — the transport projection of
/// `ShardedEngine::Producer`. Exactly one of the Push methods is
/// supported, matching the backend's StreamKind; the other returns
/// kNotSupported. Close() is idempotent (it wraps Producer::Close).
class ProducerHandle {
 public:
  virtual ~ProducerHandle() = default;

  virtual Status PushRaw(std::span<const uint64_t> items);
  virtual Status PushStructured(std::span<StructuredItem> items);

  /// Flush-and-detach; afterwards Push* returns kFailedPrecondition.
  virtual Status Close() = 0;
};

/// The engine as the transport sees it: parameters to advertise,
/// producer handles to ingest through, snapshot queries, and the queue
/// backpressure signals that drive credit grants.
class EngineBackend {
 public:
  virtual ~EngineBackend() = default;

  virtual StreamKind kind() const = 0;
  virtual std::variant<F0Params, StructuredF0Params> params() const = 0;
  /// Universe width n — the validation bound for structured item
  /// decoding (64 for raw streams, where Add masks instead).
  virtual int universe_bits() const = 0;
  /// Oldest sketch format version Encode{Snapshot,Final} can emit
  /// (structured sketches are v2-only). A hello whose max_sketch_format
  /// is below this is rejected at negotiation — the codec CHECK-aborts
  /// on unsupported versions, so no lower version may ever reach it.
  virtual uint16_t min_sketch_format() const = 0;

  virtual std::unique_ptr<ProducerHandle> MakeProducer() = 0;

  /// Backpressure signals (ShardedEngine::queued_batches / capacity).
  virtual uint64_t queued_batches() = 0;
  virtual uint64_t queue_capacity() const = 0;
  virtual uint64_t items_ingested() const = 0;

  /// Merge-without-drain queries (ShardedEngine::Snapshot*).
  virtual double SnapshotEstimate() = 0;
  virtual std::string EncodeSnapshot(uint16_t format_version) = 0;

  /// Post-drain final answers (every producer already closed).
  virtual double FinalEstimate() = 0;
  virtual std::string EncodeFinal(uint16_t format_version) = 0;
};

/// Per-connection protocol limits, set by the server.
struct ConnectionLimits {
  /// Credit window: batches a client may have in flight. Bounds server
  /// memory per connection at window * max_batch_items items.
  uint64_t credit_window = 8;
  /// Items per batch frame.
  uint64_t max_batch_items = 4096;
};

/// Lifecycle of one accepted session. All IO is non-blocking; the
/// server's event loop calls OnReadable/OnWritable on poll readiness
/// and tears the object down once done().
class Connection {
 public:
  /// States: AwaitHello -> Streaming -> (Draining) -> Closing.
  /// kClosing means a terminal frame (goodbye-ack or error) is queued;
  /// the connection closes once the outbox flushes.
  enum class State { kAwaitHello, kStreaming, kDraining, kClosing };

  Connection(ScopedFd fd, EngineBackend* backend, ConnectionLimits limits);
  ~Connection();

  int fd() const { return fd_.get(); }
  State state() const { return state_; }
  bool wants_write() const { return outbox_.size() > outbox_sent_; }
  /// True once the session is over and every queued byte was written
  /// (or the peer vanished) — the server then drops the object.
  bool done() const { return finished_; }

  /// Drains the socket and processes every complete frame.
  void OnReadable();
  /// Flushes as much of the outbox as the socket accepts.
  void OnWritable();
  /// POLLERR/POLLHUP: peer vanished; salvage dispatched batches.
  void OnHangup();

  /// Server is draining: tell the peer, stop accepting new batches
  /// after the credited ones, wait for its goodbye.
  void StartDrain();

  /// Tops up the peer's credit window when engine backpressure has
  /// cleared — the server pumps this between poll rounds so a client
  /// stalled at zero credits is revived without inbound traffic.
  /// Returns true if a grant was queued.
  bool PumpCredits();

  /// True while the peer is stalled below a full window — the server
  /// polls with a short timeout so PumpCredits runs promptly.
  bool credits_starved() const {
    return state_ == State::kStreaming && credits_ < limits_.credit_window;
  }

  // Stats for the server's summary.
  uint64_t batches_accepted() const { return batches_accepted_; }
  uint64_t items_accepted() const { return items_accepted_; }

 private:
  void HandleMessage(const Message& message);
  void HandleHello(const Message& message);
  void HandleBatch(const Message& message);
  void HandleQueryEstimate();
  void HandleQuerySketch();
  void HandleStatsQuery();
  void HandleGoodbye();

  void SendFrame(FrameType type, std::string payload);
  /// Queues an error frame carrying `status` and moves to kClosing.
  void Abort(const Status& status);
  /// Closes the producer (flushing dispatched batches) exactly once.
  void ReleaseProducer();

  /// Credits to grant right now: top up to the window iff the engine
  /// queue is below its low watermark (docs/serve.md flow control).
  uint64_t CreditTopUp() const;

  ScopedFd fd_;
  EngineBackend* backend_;
  ConnectionLimits limits_;
  State state_ = State::kAwaitHello;
  bool finished_ = false;

  FrameBuffer inbox_;
  std::string outbox_;
  size_t outbox_sent_ = 0;

  std::unique_ptr<ProducerHandle> producer_;
  uint16_t sketch_format_ = 0;  ///< negotiated kSketch format version
  uint64_t credits_ = 0;        ///< unspent grants held by the peer
  uint64_t last_seq_ = 0;       ///< highest batch seq accepted
  uint64_t batches_accepted_ = 0;
  uint64_t items_accepted_ = 0;
  /// Steady-clock µs at which the peer hit zero credits with no grant
  /// available (0 = not stalled); feeds mcf0_serve_credit_stall_us when
  /// PumpCredits revives the session.
  uint64_t credit_stall_start_us_ = 0;
};

}  // namespace net
}  // namespace mcf0
