#include "net/client.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace mcf0 {
namespace net {

PushClient::PushClient(ScopedFd fd, StreamKind kind)
    : fd_(std::move(fd)), kind_(kind) {}

Result<PushClient> PushClient::Connect(StreamKind kind,
                                       const ClientOptions& options) {
  Result<ScopedFd> fd =
      ConnectTcp(options.host, options.port, options.recv_timeout_ms);
  if (!fd.ok()) return fd.status();
  PushClient client(std::move(fd.value()), kind);
  HelloFrame hello;
  hello.kind = kind;
  hello.max_sketch_format = options.max_sketch_format;
  Status status =
      client.SendAll(WrapMessage(FrameType::kHello, EncodeHello(hello)));
  if (!status.ok()) return status;
  Message message;
  status = client.ReadMessage(&message);
  if (!status.ok()) return status;
  if (message.type == FrameType::kError) {
    ErrorFrame error;
    status = DecodeError(message.payload, &error);
    if (!status.ok()) return status;
    return StatusFromError(error);
  }
  if (message.type == FrameType::kDrain) {
    return Status::Unavailable("server is draining; not accepting sessions");
  }
  if (message.type != FrameType::kWelcome) {
    return Status::ParseError("expected welcome as the first server frame");
  }
  status = DecodeWelcome(message.payload, &client.welcome_);
  if (!status.ok()) return status;
  if (client.welcome_.kind != kind) {
    return Status::ParseError("welcome stream kind does not match hello");
  }
  client.credits_ = client.welcome_.initial_credits;
  client.open_ = true;
  return client;
}

Status PushClient::CheckOpen() const {
  if (!open_) {
    return Status::FailedPrecondition("push client session is closed");
  }
  return Status::Ok();
}

Status PushClient::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status PushClient::ReadMessage(Message* out) {
  for (;;) {
    Status status;
    if (inbox_.Next(out, &status)) return Status::Ok();
    if (!status.ok()) return status;
    char buffer[16 * 1024];
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      inbox_.Append(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("timed out waiting for a server frame");
    }
    return Status::Unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

Status PushClient::HandleBookkeeping(const Message& message, bool* handled) {
  *handled = true;
  switch (message.type) {
    case FrameType::kAck: {
      AckFrame ack;
      const Status status = DecodeAck(message.payload, &ack);
      if (!status.ok()) return status;
      if (ack.seq < acked_seq_ || ack.seq >= next_seq_) {
        return Status::ParseError("ack seq outside the sent window");
      }
      acked_seq_ = ack.seq;
      credits_ += ack.credits;
      return Status::Ok();
    }
    case FrameType::kCredit: {
      CreditFrame credit;
      const Status status = DecodeCredit(message.payload, &credit);
      if (!status.ok()) return status;
      credits_ += credit.credits;
      return Status::Ok();
    }
    case FrameType::kDrain:
      drain_requested_ = true;
      return Status::Ok();
    case FrameType::kError: {
      ErrorFrame error;
      const Status status = DecodeError(message.payload, &error);
      if (!status.ok()) return status;
      open_ = false;
      return StatusFromError(error);
    }
    default:
      *handled = false;
      return Status::Ok();
  }
}

Status PushClient::AwaitCredit() {
  while (credits_ == 0) {
    Message message;
    Status status = ReadMessage(&message);
    if (!status.ok()) return status;
    bool handled = false;
    status = HandleBookkeeping(message, &handled);
    if (!status.ok()) return status;
    if (!handled) {
      return Status::ParseError("unexpected server frame while awaiting ack");
    }
  }
  return Status::Ok();
}

Status PushClient::SendBufferedBatch() {
  Status status = AwaitCredit();
  if (!status.ok()) return status;
  std::string payload;
  if (kind_ == StreamKind::kRaw) {
    RawBatchFrame batch;
    batch.seq = next_seq_;
    batch.items = std::move(raw_buffer_);
    payload = EncodeRawBatch(batch);
    raw_buffer_.clear();
  } else {
    StructuredBatchFrame batch;
    batch.seq = next_seq_;
    batch.items = std::move(structured_buffer_);
    payload = EncodeStructuredBatch(batch);
    structured_buffer_.clear();
  }
  status = SendAll(WrapMessage(FrameType::kBatch, std::move(payload)));
  if (!status.ok()) return status;
  next_seq_ += 1;
  credits_ -= 1;
  return Status::Ok();
}

Status PushClient::Push(std::span<const uint64_t> items) {
  Status status = CheckOpen();
  if (!status.ok()) return status;
  if (kind_ != StreamKind::kRaw) {
    return Status::NotSupported("this session streams structured items");
  }
  for (const uint64_t x : items) {
    raw_buffer_.push_back(x);
    if (raw_buffer_.size() >= welcome_.max_batch_items) {
      status = SendBufferedBatch();
      if (!status.ok()) return status;
    }
  }
  return Status::Ok();
}

Status PushClient::PushItem(StructuredItem item) {
  Status status = CheckOpen();
  if (!status.ok()) return status;
  if (kind_ != StreamKind::kStructured) {
    return Status::NotSupported("this session streams raw u64 elements");
  }
  structured_buffer_.push_back(std::move(item));
  if (structured_buffer_.size() >= welcome_.max_batch_items) {
    return SendBufferedBatch();
  }
  return Status::Ok();
}

Status PushClient::Flush() {
  Status status = CheckOpen();
  if (!status.ok()) return status;
  if (raw_buffer_.empty() && structured_buffer_.empty()) return Status::Ok();
  return SendBufferedBatch();
}

Result<EstimateFrame> PushClient::QueryEstimate() {
  Status status = Flush();
  if (!status.ok()) return status;
  status = SendAll(WrapMessage(FrameType::kQueryEstimate, std::string()));
  if (!status.ok()) return status;
  for (;;) {
    Message message;
    status = ReadMessage(&message);
    if (!status.ok()) return status;
    bool handled = false;
    status = HandleBookkeeping(message, &handled);
    if (!status.ok()) return status;
    if (handled) continue;
    if (message.type != FrameType::kEstimate) {
      return Status::ParseError("expected an estimate frame");
    }
    EstimateFrame estimate;
    status = DecodeEstimate(message.payload, &estimate);
    if (!status.ok()) return status;
    return estimate;
  }
}

Result<std::string> PushClient::QuerySketch() {
  Status status = Flush();
  if (!status.ok()) return status;
  status = SendAll(WrapMessage(FrameType::kQuerySketch, std::string()));
  if (!status.ok()) return status;
  for (;;) {
    Message message;
    status = ReadMessage(&message);
    if (!status.ok()) return status;
    bool handled = false;
    status = HandleBookkeeping(message, &handled);
    if (!status.ok()) return status;
    if (handled) continue;
    if (message.type != FrameType::kSketch) {
      return Status::ParseError("expected a sketch frame");
    }
    SketchFrame sketch;
    status = DecodeSketch(message.payload, &sketch);
    if (!status.ok()) return status;
    return std::move(sketch.blob);
  }
}

Result<StatsReportFrame> PushClient::QueryStats() {
  Status status = Flush();
  if (!status.ok()) return status;
  status = SendAll(WrapMessage(FrameType::kStatsQuery, std::string()));
  if (!status.ok()) return status;
  for (;;) {
    Message message;
    status = ReadMessage(&message);
    if (!status.ok()) return status;
    bool handled = false;
    status = HandleBookkeeping(message, &handled);
    if (!status.ok()) return status;
    if (handled) continue;
    if (message.type != FrameType::kStatsReport) {
      return Status::ParseError("expected a stats report frame");
    }
    StatsReportFrame report;
    status = DecodeStatsReport(message.payload, &report);
    if (!status.ok()) return status;
    return report;
  }
}

Status PushClient::Close() {
  if (!open_) return Status::Ok();
  Status status = Flush();
  if (!status.ok()) {
    open_ = false;
    return status;
  }
  status = SendAll(WrapMessage(FrameType::kGoodbye, std::string()));
  if (!status.ok()) {
    open_ = false;
    return status;
  }
  for (;;) {
    Message message;
    status = ReadMessage(&message);
    if (!status.ok()) {
      open_ = false;
      return status;
    }
    bool handled = false;
    status = HandleBookkeeping(message, &handled);
    if (!status.ok()) {
      open_ = false;
      return status;
    }
    if (handled) continue;
    if (message.type == FrameType::kGoodbyeAck) {
      open_ = false;
      return Status::Ok();
    }
    open_ = false;
    return Status::ParseError("expected a goodbye-ack frame");
  }
}

}  // namespace net
}  // namespace mcf0
