/// \file event_loop.hpp
/// \brief poll(2)-based readiness loop + socket plumbing for `mcf0 serve`.
///
/// The server is a single-threaded event loop over non-blocking sockets
/// (no new dependencies — plain POSIX poll). This header holds the
/// loop-independent pieces: RAII fds, a Poller that owns the interest
/// set, a self-pipe for signal-safe wakeups, and TCP listen/connect
/// helpers. Concurrency comes from the sharded engine behind the loop,
/// not from per-connection threads.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace mcf0 {
namespace net {

/// Owns a file descriptor; closes it on destruction. Move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Marks `fd` O_NONBLOCK.
Status SetNonBlocking(int fd);

/// One readiness report from Poller::Wait.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// POLLERR / POLLHUP / POLLNVAL — the fd should be torn down.
  bool hangup = false;
};

/// A registry of fd -> interest (read and/or write) over poll(2). Not
/// thread-safe; owned by the event-loop thread.
class Poller {
 public:
  /// Registers or updates interest for `fd`. At least one of the two
  /// flags should be set while the fd stays registered.
  void Watch(int fd, bool want_read, bool want_write);
  void Unwatch(int fd);
  size_t watched() const { return entries_.size(); }

  /// Blocks until readiness or `timeout_ms` (-1 = indefinitely); fills
  /// `events` with every ready fd. EINTR returns OK with no events, so
  /// callers re-check their wakeup state instead of dying on a signal.
  Status Wait(int timeout_ms, std::vector<PollEvent>* events);

 private:
  struct Entry {
    int fd;
    short interest;  // POLLIN/POLLOUT mask
  };
  std::vector<Entry> entries_;
};

/// A self-pipe: the write end is async-signal-safe (one byte per Notify),
/// the read end is registered with the Poller so signals/other threads
/// can wake the loop.
class WakePipe {
 public:
  Status Open();
  int read_fd() const { return read_end_.get(); }
  /// Signal- and thread-safe; coalesces (the pipe never fills because
  /// Drain empties it every wakeup, and extra bytes past the pipe buffer
  /// are dropped by O_NONBLOCK, which is fine for a level signal).
  void Notify() const;
  /// Empties the pipe after a wakeup.
  void Drain() const;

 private:
  ScopedFd read_end_;
  ScopedFd write_end_;
};

/// Resolves `host` to an IPv4 address: a dotted quad, or "localhost".
/// (Numeric-only by design — the service targets mappers given explicit
/// addresses; no resolver dependency.)
Result<uint32_t> ParseIpv4(const std::string& host);

/// Binds + listens a non-blocking TCP socket on host:port (port 0 picks
/// an ephemeral port; read it back with BoundPort).
Result<ScopedFd> ListenTcp(const std::string& host, int port);

/// The port a bound socket landed on.
Result<int> BoundPort(int fd);

/// Blocking TCP connect (the client side); `recv_timeout_ms > 0` arms
/// SO_RCVTIMEO so stalled reads surface as kDeadlineExceeded instead of
/// hanging forever.
Result<ScopedFd> ConnectTcp(const std::string& host, int port,
                            int recv_timeout_ms);

}  // namespace net
}  // namespace mcf0
