/// \file client.hpp
/// \brief `mcf0 push`: the blocking client side of the serve protocol.
///
/// A `PushClient` opens one session, honors the server's credit window
/// (blocking on acks when the window is spent — that is the flow
/// control doing its job), batches items up to the negotiated limit,
/// and supports live estimate/sketch queries racing its own pushes.
/// Stalled reads surface as kDeadlineExceeded via SO_RCVTIMEO; a server
/// drain flips drain_requested() so callers can wrap up early.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"

namespace mcf0 {
namespace net {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Bound on any single wait for a server frame (0 = wait forever).
  int recv_timeout_ms = 30'000;
  /// Highest sketch format this client will accept from kSketch.
  uint16_t max_sketch_format = 2;
};

/// One client session. Move-only (owns the socket). Blocking: every
/// call completes the protocol exchange it names or returns why not.
class PushClient {
 public:
  /// Dials the server and completes the hello/welcome negotiation.
  static Result<PushClient> Connect(StreamKind kind,
                                    const ClientOptions& options);

  PushClient(PushClient&&) = default;
  PushClient& operator=(PushClient&&) = default;

  /// What the server advertised (params, credits, batch limit).
  const WelcomeFrame& welcome() const { return welcome_; }

  /// Buffers raw elements, sending full batches as the window allows.
  Status Push(std::span<const uint64_t> items);
  /// Buffers one structured item, ditto.
  Status PushItem(StructuredItem item);
  /// Sends any buffered partial batch.
  Status Flush();

  /// Live merged estimate (racing other producers' pushes).
  Result<EstimateFrame> QueryEstimate();
  /// Snapshot sketch, as a complete encoded sketch blob.
  Result<std::string> QuerySketch();
  /// Server metrics snapshot (protocol revision 2+; an older server
  /// rejects the frame kind and the session ends with its error).
  Result<StatsReportFrame> QueryStats();

  /// Flushes, says goodbye, and waits for the server's goodbye-ack —
  /// the guarantee that every pushed batch reached the engine.
  /// Idempotent; later Push/Query calls return kFailedPrecondition.
  Status Close();

  /// The server announced a drain: finish up and Close().
  bool drain_requested() const { return drain_requested_; }

  uint64_t batches_sent() const { return next_seq_ - 1; }
  uint64_t batches_acked() const { return acked_seq_; }
  /// Unspent credit grants — test hook for the flow-control bound.
  uint64_t credits() const { return credits_; }

 private:
  PushClient(ScopedFd fd, StreamKind kind);

  /// Sends every byte of `bytes` (blocking).
  Status SendAll(std::string_view bytes);
  /// Blocks for the next complete frame; EAGAIN -> kDeadlineExceeded.
  Status ReadMessage(Message* out);
  /// Absorbs ack/credit/drain bookkeeping frames; `*handled` says so.
  /// A kError frame from the server becomes its carried Status.
  Status HandleBookkeeping(const Message& message, bool* handled);
  /// Blocks until at least one credit is available.
  Status AwaitCredit();
  /// Encodes and sends the buffered items as one batch.
  Status SendBufferedBatch();
  Status CheckOpen() const;

  ScopedFd fd_;
  StreamKind kind_ = StreamKind::kRaw;
  FrameBuffer inbox_;
  WelcomeFrame welcome_;
  bool open_ = false;
  bool drain_requested_ = false;

  uint64_t credits_ = 0;
  uint64_t next_seq_ = 1;
  uint64_t acked_seq_ = 0;

  std::vector<uint64_t> raw_buffer_;
  std::vector<StructuredItem> structured_buffer_;
};

}  // namespace net
}  // namespace mcf0
