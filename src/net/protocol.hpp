/// \file protocol.hpp
/// \brief The `mcf0 serve` wire protocol: v2 frame machinery over TCP.
///
/// Every message is one frame in the exact 24-byte header format of the
/// sketch codec (magic "MCF0", version, kind byte, length, FNV-1a-64
/// checksum — wire.hpp), with kind bytes from the protocol's own
/// namespace (FrameType, 0x10+; disjoint from SketchFrameKind so a
/// sketch file can never be replayed as a protocol message or vice
/// versa). Payloads reuse the wire primitives: varints, delta codes,
/// the params blocks of EncodeParams/EncodeStructuredParams, and whole
/// nested sketch frames for snapshot responses. docs/serve.md is the
/// normative spec, including the credit-based flow-control rule.
///
/// Like the sketch codec, decoding never aborts on bad input: truncated,
/// corrupt, or out-of-domain bytes surface as a non-OK Status, and
/// Status <-> error frame mapping is 1:1 (StatusCode values are frozen
/// on the wire).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.hpp"
#include "engine/sharded_engine.hpp"
#include "engine/wire.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace net {

/// Highest protocol revision this build speaks, carried in the frame
/// header's version field (its own numbering, independent of sketch
/// format versions). Revision 2 added the kStatsQuery/kStatsReport
/// pair; every frame that existed in revision 1 is still stamped with
/// version 1 on the wire (FrameWireVersion), so a v1 peer interoperates
/// fully minus the stats exchange.
inline constexpr uint16_t kProtocolVersion = 2;

/// Lowest revision whose receivers understand the stats frame pair.
inline constexpr uint16_t kStatsMinVersion = 2;

/// Hard ceiling on one frame's payload; a peer claiming more is a
/// protocol error, never an allocation. Generous: the largest legitimate
/// frame is a sketch snapshot (tens of KiB) or a max-size batch.
inline constexpr uint64_t kMaxFramePayload = 16ull << 20;

/// Upper bound a server may set for items per batch frame.
inline constexpr uint64_t kMaxBatchItemsLimit = 1ull << 20;

/// Frame kind bytes. 0x10+ keeps the namespace disjoint from
/// SketchFrameKind (0-6). Values are frozen on the wire — append only.
enum class FrameType : uint8_t {
  kHello = 0x10,          ///< client -> server: open a session
  kWelcome = 0x11,        ///< server -> client: params + initial credits
  kBatch = 0x12,          ///< client -> server: one batch of items
  kAck = 0x13,            ///< server -> client: batch dispatched + credits
  kCredit = 0x14,         ///< server -> client: standalone credit grant
  kQueryEstimate = 0x15,  ///< client -> server: live estimate, no drain
  kEstimate = 0x16,       ///< server -> client: the estimate
  kQuerySketch = 0x17,    ///< client -> server: snapshot sketch request
  kSketch = 0x18,         ///< server -> client: nested encoded sketch frame
  kDrain = 0x19,          ///< server -> client: draining; flush + goodbye
  kGoodbye = 0x1A,        ///< client -> server: session done
  kGoodbyeAck = 0x1B,     ///< server -> client: all batches absorbed; close
  kError = 0x1C,          ///< either direction: Status, then close
  kStatsQuery = 0x1D,     ///< client -> server: metrics snapshot (rev 2+)
  kStatsReport = 0x1E,    ///< server -> client: the metrics (rev 2+)
};

/// The protocol revision a frame of this type is stamped with: 1 for
/// everything revision 1 defined, kStatsMinVersion for the stats pair.
uint16_t FrameWireVersion(FrameType type);

/// Which item alphabet a session streams; fixed at Hello time and must
/// match the server's engine.
enum class StreamKind : uint8_t {
  kRaw = 0,         ///< uint64 elements -> F0Estimator
  kStructured = 1,  ///< StructuredItem sets -> StructuredF0
};

// ---- frame structs --------------------------------------------------------
// kQueryEstimate, kQuerySketch, kDrain, kGoodbye, and kGoodbyeAck carry
// empty payloads and need no struct.

struct HelloFrame {
  StreamKind kind = StreamKind::kRaw;
  /// Highest sketch wire-format version the client can decode; the
  /// server's kSketch responses never exceed it.
  uint16_t max_sketch_format = 2;
};

struct WelcomeFrame {
  StreamKind kind = StreamKind::kRaw;
  /// The engine's parameters — the client can verify a mapper's
  /// assumptions (or build a locally mergeable sketch) without a side
  /// channel. Raw sessions carry F0Params, structured ones
  /// StructuredF0Params, via the sketch codec's params blocks.
  std::variant<F0Params, StructuredF0Params> params;
  /// Batches the client may send before the first Ack/Credit arrives.
  uint64_t initial_credits = 0;
  /// Items per kBatch frame the server accepts (<= kMaxBatchItemsLimit).
  uint64_t max_batch_items = 0;
};

/// One batch of items. `seq` starts at 1 and increments by exactly 1 per
/// batch on a connection; the Ack's seq is cumulative.
struct RawBatchFrame {
  uint64_t seq = 0;
  std::vector<uint64_t> items;
};
struct StructuredBatchFrame {
  uint64_t seq = 0;
  std::vector<StructuredItem> items;
};

struct AckFrame {
  uint64_t seq = 0;      ///< highest batch seq dispatched into the engine
  uint64_t credits = 0;  ///< additional credits granted (may be 0)
};

struct CreditFrame {
  uint64_t credits = 0;  ///< additional credits granted (>= 1)
};

struct EstimateFrame {
  double estimate = 0.0;
  uint64_t items_ingested = 0;  ///< engine-wide, all connections
};

struct SketchFrame {
  /// A complete encoded sketch frame (SketchCodec::Encode output) —
  /// decodable by SketchVariant::Decode, writable as a .mcf0 file as-is.
  std::string blob;
};

struct ErrorFrame {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

/// One metric in a stats report: a registry key (name plus rendered
/// labels, e.g. `mcf0_serve_frames_in_total{type="batch"}`) and its
/// value. Histograms are flattened to `<key>_count` / `<key>_sum`
/// entries; gauges are clamped at zero (docs/observability.md).
struct StatsEntry {
  std::string name;
  uint64_t value = 0;
};

/// kStatsReport payload: the server's registry snapshot as flat
/// entries, strictly sorted by name — one canonical encoding, enforced
/// on decode. kStatsQuery itself carries an empty payload.
struct StatsReportFrame {
  std::vector<StatsEntry> entries;

  /// The entry's value, or nullopt if the name is absent.
  std::optional<uint64_t> Find(std::string_view name) const;
};

// ---- payload codecs -------------------------------------------------------

std::string EncodeHello(const HelloFrame& hello);
Status DecodeHello(std::string_view payload, HelloFrame* out);

std::string EncodeWelcome(const WelcomeFrame& welcome);
Status DecodeWelcome(std::string_view payload, WelcomeFrame* out);

std::string EncodeRawBatch(const RawBatchFrame& batch);
Status DecodeRawBatch(std::string_view payload, uint64_t max_items,
                      RawBatchFrame* out);

/// Structured batches are validated against the server universe width
/// `n` (lit vars in range, range/affine/element widths equal to n) so a
/// malicious frame becomes a Status, never an engine CHECK abort.
std::string EncodeStructuredBatch(const StructuredBatchFrame& batch);
Status DecodeStructuredBatch(std::string_view payload, int n,
                             uint64_t max_items, StructuredBatchFrame* out);

std::string EncodeAck(const AckFrame& ack);
Status DecodeAck(std::string_view payload, AckFrame* out);

std::string EncodeCredit(const CreditFrame& credit);
Status DecodeCredit(std::string_view payload, CreditFrame* out);

std::string EncodeEstimate(const EstimateFrame& estimate);
Status DecodeEstimate(std::string_view payload, EstimateFrame* out);

std::string EncodeSketch(const SketchFrame& sketch);
Status DecodeSketch(std::string_view payload, SketchFrame* out);

std::string EncodeStatsReport(const StatsReportFrame& report);
Status DecodeStatsReport(std::string_view payload, StatsReportFrame* out);

/// Status -> error frame -> Status is the identity on (code, message).
std::string EncodeError(const ErrorFrame& error);
Status DecodeError(std::string_view payload, ErrorFrame* out);
ErrorFrame ErrorFromStatus(const Status& status);
Status StatusFromError(const ErrorFrame& error);

/// One StructuredItem, tagged: 0 = DNF term group, 1 = multidim range,
/// 2 = affine space, 3 = singleton element. Shared by the batch codec
/// and tests.
void EncodeStructuredItem(wire::ByteWriter& w, const StructuredItem& item);
Status DecodeStructuredItem(wire::ByteReader& r, int n, StructuredItem* out);

// ---- framing --------------------------------------------------------------

/// Wraps a payload in the protocol frame header.
std::string WrapMessage(FrameType type, std::string payload);

/// One complete inbound frame.
struct Message {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// Incremental frame extraction from a TCP byte stream. Append() raw
/// bytes as they arrive; Next() yields complete validated frames.
/// Header, checksum, size-cap, and kind-range violations are fatal
/// protocol errors (the stream cannot be resynchronized past a bad
/// header) and every later call keeps returning the same error.
class FrameBuffer {
 public:
  void Append(std::string_view bytes);

  /// Extracts the next complete frame into `*out` and returns true;
  /// returns false with an OK status when more bytes are needed, false
  /// with a non-OK status on a protocol violation.
  bool Next(Message* out, Status* status);

  /// Bytes currently buffered (bounded by the flow-control window for a
  /// compliant peer; the frame size cap for any peer).
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_ = Status::Ok();
};

}  // namespace net
}  // namespace mcf0
