#include "net/event_loop.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace mcf0 {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

}  // namespace

void ScopedFd::Reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

void Poller::Watch(int fd, bool want_read, bool want_write) {
  short interest = 0;
  if (want_read) interest |= POLLIN;
  if (want_write) interest |= POLLOUT;
  for (Entry& entry : entries_) {
    if (entry.fd == fd) {
      entry.interest = interest;
      return;
    }
  }
  entries_.push_back(Entry{fd, interest});
}

void Poller::Unwatch(int fd) {
  entries_.erase(
      std::remove_if(entries_.begin(), entries_.end(),
                     [fd](const Entry& e) { return e.fd == fd; }),
      entries_.end());
}

Status Poller::Wait(int timeout_ms, std::vector<PollEvent>* events) {
  events->clear();
  std::vector<pollfd> fds;
  fds.reserve(entries_.size());
  for (const Entry& entry : entries_) {
    fds.push_back(pollfd{entry.fd, entry.interest, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::Ok();  // signal; caller re-checks
    return Errno("poll");
  }
  for (const pollfd& pfd : fds) {
    if (pfd.revents == 0) continue;
    PollEvent event;
    event.fd = pfd.fd;
    event.readable = (pfd.revents & POLLIN) != 0;
    event.writable = (pfd.revents & POLLOUT) != 0;
    event.hangup = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return Status::Ok();
}

Status WakePipe::Open() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) != 0) return Errno("pipe");
  read_end_ = ScopedFd(fds[0]);
  write_end_ = ScopedFd(fds[1]);
  Status status = SetNonBlocking(fds[0]);
  if (status.ok()) status = SetNonBlocking(fds[1]);
  return status;
}

void WakePipe::Notify() const {
  const char byte = 1;
  // Best-effort: a full pipe already wakes the loop, and EINTR just means
  // a nested signal — either way the level signal is delivered.
  [[maybe_unused]] const ssize_t n = ::write(write_end_.get(), &byte, 1);
}

void WakePipe::Drain() const {
  char buffer[64];
  while (::read(read_end_.get(), buffer, sizeof(buffer)) > 0) {
  }
}

Result<uint32_t> ParseIpv4(const std::string& host) {
  const std::string name = host == "localhost" ? "127.0.0.1" : host;
  in_addr addr{};
  if (::inet_pton(AF_INET, name.c_str(), &addr) != 1) {
    return Status::InvalidArgument(
        "host must be an IPv4 address (or \"localhost\"), got '" + host + "'");
  }
  return static_cast<uint32_t>(addr.s_addr);  // network byte order
}

Result<ScopedFd> ListenTcp(const std::string& host, int port) {
  Result<uint32_t> addr = ParseIpv4(host);
  if (!addr.ok()) return addr.status();
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr.value();
  sin.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), SOMAXCONN) != 0) return Errno("listen");
  const Status status = SetNonBlocking(fd.get());
  if (!status.ok()) return status;
  return fd;
}

Result<int> BoundPort(int fd) {
  sockaddr_in sin{};
  socklen_t len = sizeof(sin);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(sin.sin_port));
}

Result<ScopedFd> ConnectTcp(const std::string& host, int port,
                            int recv_timeout_ms) {
  Result<uint32_t> addr = ParseIpv4(host);
  if (!addr.ok()) return addr.status();
  if (port < 1 || port > 65535) {
    return Status::InvalidArgument("port must be in [1, 65535]");
  }
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = recv_timeout_ms / 1000;
    tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  // Batches are small and latency matters for the credit round trip.
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = addr.value();
  sin.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) !=
      0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  return fd;
}

}  // namespace net
}  // namespace mcf0
