#include "net/protocol.hpp"

#include <cstring>

namespace mcf0 {
namespace net {

namespace {

using wire::ByteReader;
using wire::ByteWriter;

Status Malformed(const char* what) {
  return Status::ParseError(std::string("net frame: ") + what);
}

/// Every payload decoder must consume its bytes exactly — one canonical
/// byte string per message, like the sketch codecs.
Status FinishDecode(const ByteReader& r, const char* what) {
  if (!r.Done()) {
    return Status::ParseError(std::string("net frame: trailing bytes after ") +
                              what);
  }
  return Status::Ok();
}

bool ValidStreamKind(uint8_t v) {
  return v == static_cast<uint8_t>(StreamKind::kRaw) ||
         v == static_cast<uint8_t>(StreamKind::kStructured);
}

}  // namespace

// ---- hello / welcome ------------------------------------------------------

std::string EncodeHello(const HelloFrame& hello) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(hello.kind));
  w.U16(hello.max_sketch_format);
  return w.Take();
}

Status DecodeHello(std::string_view payload, HelloFrame* out) {
  ByteReader r(payload);
  uint8_t kind = 0;
  uint16_t max_format = 0;
  if (!r.U8(&kind) || !r.U16(&max_format)) return Malformed("truncated hello");
  if (!ValidStreamKind(kind)) return Malformed("hello stream kind unknown");
  if (max_format < 1) return Malformed("hello max sketch format must be >= 1");
  out->kind = static_cast<StreamKind>(kind);
  out->max_sketch_format = max_format;
  return FinishDecode(r, "hello");
}

std::string EncodeWelcome(const WelcomeFrame& welcome) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(welcome.kind));
  if (welcome.kind == StreamKind::kRaw) {
    wire::EncodeParams(w, std::get<F0Params>(welcome.params));
  } else {
    wire::EncodeStructuredParams(w,
                                 std::get<StructuredF0Params>(welcome.params));
  }
  w.Varint(welcome.initial_credits);
  w.Varint(welcome.max_batch_items);
  return w.Take();
}

Status DecodeWelcome(std::string_view payload, WelcomeFrame* out) {
  ByteReader r(payload);
  uint8_t kind = 0;
  if (!r.U8(&kind)) return Malformed("truncated welcome");
  if (!ValidStreamKind(kind)) return Malformed("welcome stream kind unknown");
  out->kind = static_cast<StreamKind>(kind);
  if (out->kind == StreamKind::kRaw) {
    F0Params params;
    const Status status = wire::DecodeParams(r, &params);
    if (!status.ok()) return status.Annotate("welcome params");
    out->params = params;
  } else {
    StructuredF0Params params;
    const Status status = wire::DecodeStructuredParams(r, &params);
    if (!status.ok()) return status.Annotate("welcome params");
    out->params = params;
  }
  if (!r.Varint(&out->initial_credits) || !r.Varint(&out->max_batch_items)) {
    return Malformed("truncated welcome");
  }
  if (out->initial_credits < 1) {
    return Malformed("welcome must grant at least one credit");
  }
  if (out->max_batch_items < 1 ||
      out->max_batch_items > kMaxBatchItemsLimit) {
    return Malformed("welcome batch item limit out of range");
  }
  return FinishDecode(r, "welcome");
}

// ---- batches --------------------------------------------------------------

std::string EncodeRawBatch(const RawBatchFrame& batch) {
  ByteWriter w;
  w.Varint(batch.seq);
  w.Varint(batch.items.size());
  for (const uint64_t x : batch.items) w.U64(x);
  return w.Take();
}

Status DecodeRawBatch(std::string_view payload, uint64_t max_items,
                      RawBatchFrame* out) {
  ByteReader r(payload);
  uint64_t count = 0;
  if (!r.Varint(&out->seq) || !r.Varint(&count)) {
    return Malformed("truncated batch");
  }
  if (out->seq < 1) return Malformed("batch seq must be >= 1");
  if (count < 1) return Malformed("batch must carry at least one item");
  if (count > max_items) {
    return Malformed("batch exceeds the negotiated item limit");
  }
  out->items.clear();
  out->items.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t x = 0;
    if (!r.U64(&x)) return Malformed("truncated batch");
    out->items.push_back(x);
  }
  return FinishDecode(r, "batch");
}

void EncodeStructuredItem(ByteWriter& w, const StructuredItem& item) {
  std::visit(
      [&w](const auto& value) {
        using T = std::decay_t<decltype(value)>;
        if constexpr (std::is_same_v<T, std::vector<Term>>) {
          w.U8(0);
          w.Varint(value.size());
          for (const Term& term : value) {
            w.Varint(term.lits().size());
            for (const Lit& lit : term.lits()) {
              w.Varint(static_cast<uint64_t>(lit.var));
              w.U8(lit.neg ? 1 : 0);
            }
          }
        } else if constexpr (std::is_same_v<T, MultiDimRange>) {
          w.U8(1);
          w.Varint(static_cast<uint64_t>(value.dims()));
          for (int j = 0; j < value.dims(); ++j) {
            const DimRange& dim = value.Dim(j);
            w.Varint(static_cast<uint64_t>(value.bits()[j]));
            w.Varint(dim.lo);
            w.Varint(dim.hi);
            w.Varint(static_cast<uint64_t>(dim.log2_step));
          }
        } else if constexpr (std::is_same_v<T, AffineSpaceItem>) {
          w.U8(2);
          w.Varint(static_cast<uint64_t>(value.a.rows()));
          for (int i = 0; i < value.a.rows(); ++i) w.RawBits(value.a.Row(i));
          w.RawBits(value.b);
        } else {
          w.U8(3);
          w.RawBits(value);
        }
      },
      item);
}

Status DecodeStructuredItem(ByteReader& r, int n, StructuredItem* out) {
  uint8_t tag = 0;
  if (!r.U8(&tag)) return Malformed("truncated structured item");
  switch (tag) {
    case 0: {  // DNF term group
      uint64_t num_terms = 0;
      if (!r.Varint(&num_terms)) return Malformed("truncated structured item");
      if (num_terms < 1) {
        return Malformed("structured term group must be non-empty");
      }
      if (num_terms > kMaxBatchItemsLimit) {
        return Malformed("structured term group too large");
      }
      // Every term costs at least one payload byte (its literal count),
      // so a count beyond the remaining bytes is a lie — reject it
      // before reserving, or a small frame could claim a huge count and
      // force a matching allocation.
      if (num_terms > r.Remaining()) {
        return Malformed("structured term group larger than its payload");
      }
      std::vector<Term> terms;
      terms.reserve(num_terms);
      for (uint64_t t = 0; t < num_terms; ++t) {
        uint64_t num_lits = 0;
        if (!r.Varint(&num_lits)) return Malformed("truncated structured item");
        if (num_lits > static_cast<uint64_t>(n)) {
          // A term can mention each of the n variables at most once.
          return Malformed("structured term has more literals than variables");
        }
        std::vector<Lit> lits;
        lits.reserve(num_lits);
        for (uint64_t l = 0; l < num_lits; ++l) {
          uint64_t var = 0;
          uint8_t neg = 0;
          if (!r.Varint(&var) || !r.U8(&neg)) {
            return Malformed("truncated structured item");
          }
          if (var >= static_cast<uint64_t>(n)) {
            return Malformed("structured term variable outside the universe");
          }
          if (neg > 1) return Malformed("structured literal sign not 0/1");
          lits.emplace_back(static_cast<int>(var), neg == 1);
        }
        auto term = Term::Make(std::move(lits));
        if (!term.has_value()) {
          return Malformed("structured term is contradictory");
        }
        terms.push_back(std::move(*term));
      }
      *out = std::move(terms);
      return Status::Ok();
    }
    case 1: {  // multidimensional range / arithmetic progression
      uint64_t dims = 0;
      if (!r.Varint(&dims)) return Malformed("truncated structured item");
      // Every dimension is at least one bit, so dims is bounded by n.
      if (dims < 1 || dims > static_cast<uint64_t>(n)) {
        return Malformed("structured range dimension count out of range");
      }
      std::vector<int> bits;
      std::vector<DimRange> ranges;
      bits.reserve(dims);
      ranges.reserve(dims);
      uint64_t total_bits = 0;
      for (uint64_t j = 0; j < dims; ++j) {
        uint64_t dim_bits = 0;
        DimRange dim;
        uint64_t lo = 0;
        uint64_t hi = 0;
        uint64_t step = 0;
        if (!r.Varint(&dim_bits) || !r.Varint(&lo) || !r.Varint(&hi) ||
            !r.Varint(&step)) {
          return Malformed("truncated structured item");
        }
        if (dim_bits < 1 || dim_bits > 64) {
          return Malformed("structured range dimension width out of range");
        }
        const uint64_t max =
            dim_bits == 64 ? ~0ull : ((1ull << dim_bits) - 1);
        if (lo > hi || hi > max) {
          return Malformed("structured range bounds out of order or domain");
        }
        if (step >= dim_bits) {
          return Malformed("structured range step exceeds dimension width");
        }
        total_bits += dim_bits;
        dim.lo = lo;
        dim.hi = hi;
        dim.log2_step = static_cast<int>(step);
        bits.push_back(static_cast<int>(dim_bits));
        ranges.push_back(dim);
      }
      if (total_bits != static_cast<uint64_t>(n)) {
        return Malformed("structured range universe width mismatch");
      }
      MultiDimRange range(std::move(bits));
      for (uint64_t j = 0; j < dims; ++j) {
        range.SetDim(static_cast<int>(j), ranges[j]);
      }
      *out = std::move(range);
      return Status::Ok();
    }
    case 2: {  // affine space <A, B>
      uint64_t rank = 0;
      if (!r.Varint(&rank)) return Malformed("truncated structured item");
      if (rank < 1 || rank > static_cast<uint64_t>(n)) {
        return Malformed("structured affine rank out of range");
      }
      std::vector<BitVec> rows;
      rows.reserve(rank);
      for (uint64_t i = 0; i < rank; ++i) {
        BitVec row;
        if (!r.RawBits(n, &row)) return Malformed("truncated structured item");
        rows.push_back(std::move(row));
      }
      AffineSpaceItem affine;
      affine.a = Gf2Matrix::FromRows(std::move(rows));
      if (!r.RawBits(static_cast<int>(rank), &affine.b)) {
        return Malformed("truncated structured item");
      }
      *out = std::move(affine);
      return Status::Ok();
    }
    case 3: {  // singleton element
      BitVec x;
      if (!r.RawBits(n, &x)) return Malformed("truncated structured item");
      *out = std::move(x);
      return Status::Ok();
    }
    default:
      return Malformed("structured item tag unknown");
  }
}

std::string EncodeStructuredBatch(const StructuredBatchFrame& batch) {
  ByteWriter w;
  w.Varint(batch.seq);
  w.Varint(batch.items.size());
  for (const StructuredItem& item : batch.items) EncodeStructuredItem(w, item);
  return w.Take();
}

Status DecodeStructuredBatch(std::string_view payload, int n,
                             uint64_t max_items, StructuredBatchFrame* out) {
  ByteReader r(payload);
  uint64_t count = 0;
  if (!r.Varint(&out->seq) || !r.Varint(&count)) {
    return Malformed("truncated batch");
  }
  if (out->seq < 1) return Malformed("batch seq must be >= 1");
  if (count < 1) return Malformed("batch must carry at least one item");
  if (count > max_items) {
    return Malformed("batch exceeds the negotiated item limit");
  }
  out->items.clear();
  out->items.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    StructuredItem item;
    const Status status = DecodeStructuredItem(r, n, &item);
    if (!status.ok()) return status;
    out->items.push_back(std::move(item));
  }
  return FinishDecode(r, "batch");
}

// ---- acks / credits / queries ---------------------------------------------

std::string EncodeAck(const AckFrame& ack) {
  ByteWriter w;
  w.Varint(ack.seq);
  w.Varint(ack.credits);
  return w.Take();
}

Status DecodeAck(std::string_view payload, AckFrame* out) {
  ByteReader r(payload);
  if (!r.Varint(&out->seq) || !r.Varint(&out->credits)) {
    return Malformed("truncated ack");
  }
  if (out->seq < 1) return Malformed("ack seq must be >= 1");
  return FinishDecode(r, "ack");
}

std::string EncodeCredit(const CreditFrame& credit) {
  ByteWriter w;
  w.Varint(credit.credits);
  return w.Take();
}

Status DecodeCredit(std::string_view payload, CreditFrame* out) {
  ByteReader r(payload);
  if (!r.Varint(&out->credits)) return Malformed("truncated credit");
  if (out->credits < 1) return Malformed("credit grant must be >= 1");
  return FinishDecode(r, "credit");
}

std::string EncodeEstimate(const EstimateFrame& estimate) {
  ByteWriter w;
  w.F64(estimate.estimate);
  w.Varint(estimate.items_ingested);
  return w.Take();
}

Status DecodeEstimate(std::string_view payload, EstimateFrame* out) {
  ByteReader r(payload);
  if (!r.F64(&out->estimate) || !r.Varint(&out->items_ingested)) {
    return Malformed("truncated estimate");
  }
  return FinishDecode(r, "estimate");
}

std::string EncodeSketch(const SketchFrame& sketch) {
  return sketch.blob;
}

Status DecodeSketch(std::string_view payload, SketchFrame* out) {
  // The payload is a complete nested sketch frame; the sketch codec
  // validates it fully on decode, but the header must at least fit.
  if (payload.size() < wire::kHeaderBytes) {
    return Malformed("sketch response too short for a sketch frame");
  }
  out->blob.assign(payload.data(), payload.size());
  return Status::Ok();
}

// ---- errors ---------------------------------------------------------------

std::string EncodeError(const ErrorFrame& error) {
  ByteWriter w;
  w.U16(static_cast<uint16_t>(error.code));
  w.Varint(error.message.size());
  for (const char c : error.message) w.U8(static_cast<uint8_t>(c));
  return w.Take();
}

Status DecodeError(std::string_view payload, ErrorFrame* out) {
  ByteReader r(payload);
  uint16_t code = 0;
  uint64_t length = 0;
  if (!r.U16(&code) || !r.Varint(&length)) return Malformed("truncated error");
  if (code == 0 || code > static_cast<uint16_t>(StatusCode::kDeadlineExceeded)) {
    return Malformed("error frame status code unknown");
  }
  if (length != r.Remaining()) return Malformed("error message length wrong");
  out->code = static_cast<StatusCode>(code);
  out->message.clear();
  out->message.reserve(length);
  for (uint64_t i = 0; i < length; ++i) {
    uint8_t c = 0;
    r.U8(&c);
    out->message.push_back(static_cast<char>(c));
  }
  return FinishDecode(r, "error");
}

// ---- stats ----------------------------------------------------------------

namespace {
/// Generous bound on entries per report; the registry holds a few dozen.
constexpr uint64_t kMaxStatsEntries = 4096;
constexpr uint64_t kMaxStatsNameBytes = 512;

bool ValidStatsNameChar(char c) {
  // Registry keys are metric names plus rendered labels: printable
  // ASCII, no spaces or control bytes.
  return c > 0x20 && c < 0x7F;
}
}  // namespace

std::optional<uint64_t> StatsReportFrame::Find(std::string_view name) const {
  for (const StatsEntry& entry : entries) {
    if (entry.name == name) return entry.value;
  }
  return std::nullopt;
}

std::string EncodeStatsReport(const StatsReportFrame& report) {
  ByteWriter w;
  w.Varint(report.entries.size());
  for (const StatsEntry& entry : report.entries) {
    w.Varint(entry.name.size());
    for (const char c : entry.name) w.U8(static_cast<uint8_t>(c));
    w.Varint(entry.value);
  }
  return w.Take();
}

Status DecodeStatsReport(std::string_view payload, StatsReportFrame* out) {
  ByteReader r(payload);
  uint64_t count = 0;
  if (!r.Varint(&count)) return Malformed("truncated stats report");
  if (count > kMaxStatsEntries) return Malformed("stats report too large");
  out->entries.clear();
  out->entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t length = 0;
    if (!r.Varint(&length)) return Malformed("truncated stats report");
    if (length < 1 || length > kMaxStatsNameBytes) {
      return Malformed("stats entry name length out of range");
    }
    if (length > r.Remaining()) return Malformed("truncated stats report");
    StatsEntry entry;
    entry.name.reserve(length);
    for (uint64_t j = 0; j < length; ++j) {
      uint8_t c = 0;
      r.U8(&c);
      if (!ValidStatsNameChar(static_cast<char>(c))) {
        return Malformed("stats entry name has invalid characters");
      }
      entry.name.push_back(static_cast<char>(c));
    }
    if (!r.Varint(&entry.value)) return Malformed("truncated stats report");
    // Strict order doubles as a duplicate check and makes the encoding
    // canonical, like every other mcf0 codec.
    if (!out->entries.empty() && entry.name <= out->entries.back().name) {
      return Malformed("stats entries not strictly sorted by name");
    }
    out->entries.push_back(std::move(entry));
  }
  return FinishDecode(r, "stats report");
}

ErrorFrame ErrorFromStatus(const Status& status) {
  ErrorFrame frame;
  frame.code = status.code();
  frame.message = status.message();
  return frame;
}

Status StatusFromError(const ErrorFrame& error) {
  return Status::FromCode(error.code, error.message);
}

// ---- framing --------------------------------------------------------------

uint16_t FrameWireVersion(FrameType type) {
  switch (type) {
    case FrameType::kStatsQuery:
    case FrameType::kStatsReport:
      return kStatsMinVersion;
    default:
      return 1;
  }
}

std::string WrapMessage(FrameType type, std::string payload) {
  // Stamp each frame with the revision that introduced it, not the
  // highest we speak — a revision-1 peer keeps interoperating on the
  // revision-1 subset.
  return wire::WrapFrameRaw(static_cast<uint8_t>(type),
                            FrameWireVersion(type), std::move(payload));
}

void FrameBuffer::Append(std::string_view bytes) {
  buffer_.append(bytes.data(), bytes.size());
}

bool FrameBuffer::Next(Message* out, Status* status) {
  if (!error_.ok()) {
    *status = error_;
    return false;
  }
  *status = Status::Ok();
  // Reclaim consumed prefix once it dominates the buffer, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < wire::kHeaderBytes) return false;
  wire::FrameHeader header;
  Status parsed = wire::ParseFrameHeader(pending, &header);
  if (parsed.ok() &&
      (header.version < 1 || header.version > kProtocolVersion)) {
    parsed = Status::NotSupported(
        "net frame: protocol version " + std::to_string(header.version) +
        " (this build speaks 1.." + std::to_string(kProtocolVersion) + ")");
  }
  if (parsed.ok() &&
      (header.kind < static_cast<uint8_t>(FrameType::kHello) ||
       header.kind > static_cast<uint8_t>(FrameType::kStatsReport))) {
    parsed = Malformed("unknown frame kind");
  }
  if (parsed.ok() &&
      header.version <
          FrameWireVersion(static_cast<FrameType>(header.kind))) {
    // A frame kind must not be smuggled under an older revision than
    // the one that defined it (the stats pair is version-gated).
    parsed = Malformed("frame kind not defined at its claimed version");
  }
  if (parsed.ok() && header.payload_size > kMaxFramePayload) {
    parsed = Malformed("frame payload exceeds the size cap");
  }
  if (!parsed.ok()) {
    // The stream has no resynchronization point past a bad header; the
    // error is sticky and the connection must close.
    error_ = parsed;
    *status = parsed;
    return false;
  }
  if (pending.size() < wire::kHeaderBytes + header.payload_size) return false;
  const std::string_view payload =
      pending.substr(wire::kHeaderBytes, header.payload_size);
  const Status checked = wire::CheckFramePayload(header, payload);
  if (!checked.ok()) {
    error_ = checked;
    *status = checked;
    return false;
  }
  out->type = static_cast<FrameType>(header.kind);
  out->payload.assign(payload.data(), payload.size());
  consumed_ += wire::kHeaderBytes + header.payload_size;
  return true;
}

}  // namespace net
}  // namespace mcf0
