#include "net/connection.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "engine/sketch_codec.hpp"

namespace mcf0 {
namespace net {

Status ProducerHandle::PushRaw(std::span<const uint64_t>) {
  return Status::NotSupported("this session streams structured items");
}

Status ProducerHandle::PushStructured(std::span<StructuredItem>) {
  return Status::NotSupported("this session streams raw u64 elements");
}

Connection::Connection(ScopedFd fd, EngineBackend* backend,
                       ConnectionLimits limits)
    : fd_(std::move(fd)), backend_(backend), limits_(limits) {}

void Connection::OnReadable() {
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      inbox_.Append(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Peer closed. A clean session ends with goodbye -> kClosing; an
      // abrupt close still salvages everything already dispatched.
      ReleaseProducer();
      finished_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ReleaseProducer();
    finished_ = true;
    return;
  }
  Message message;
  Status status;
  while (state_ != State::kClosing && inbox_.Next(&message, &status)) {
    HandleMessage(message);
  }
  if (state_ != State::kClosing && !status.ok()) Abort(status);
}

void Connection::OnWritable() {
  while (outbox_sent_ < outbox_.size()) {
    const ssize_t n = ::send(fd_.get(), outbox_.data() + outbox_sent_,
                             outbox_.size() - outbox_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      outbox_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    ReleaseProducer();
    finished_ = true;  // peer vanished mid-write
    return;
  }
  if (outbox_sent_ == outbox_.size()) {
    outbox_.clear();
    outbox_sent_ = 0;
    if (state_ == State::kClosing) finished_ = true;
  }
}

void Connection::OnHangup() {
  ReleaseProducer();
  finished_ = true;
}

void Connection::StartDrain() {
  if (state_ == State::kClosing || finished_) return;
  if (state_ == State::kAwaitHello) {
    // Not yet negotiated: announce the drain and close; the client sees
    // it as the server being unavailable for new sessions.
    state_ = State::kClosing;
    SendFrame(FrameType::kDrain, std::string());
    return;
  }
  if (state_ == State::kStreaming) {
    SendFrame(FrameType::kDrain, std::string());
    state_ = State::kDraining;
  }
}

bool Connection::PumpCredits() {
  if (state_ != State::kStreaming) return false;
  const uint64_t grant = CreditTopUp();
  if (grant == 0) return false;
  credits_ += grant;
  SendFrame(FrameType::kCredit, EncodeCredit(CreditFrame{grant}));
  return true;
}

uint64_t Connection::CreditTopUp() const {
  // No new grants while draining: credited batches finish, new ones don't
  // start.
  if (state_ != State::kStreaming) return 0;
  if (credits_ >= limits_.credit_window) return 0;
  // The low-watermark rule: grant only while the engine queue has
  // headroom, so a flood of producers can't pile unbounded batches
  // behind a slow shard (docs/serve.md).
  if (backend_->queued_batches() >= backend_->queue_capacity() / 2) return 0;
  return limits_.credit_window - credits_;
}

void Connection::HandleMessage(const Message& message) {
  if (state_ == State::kAwaitHello) {
    if (message.type != FrameType::kHello) {
      Abort(Status::ParseError("expected hello as the first frame"));
      return;
    }
    HandleHello(message);
    return;
  }
  switch (message.type) {
    case FrameType::kBatch:
      HandleBatch(message);
      return;
    case FrameType::kQueryEstimate:
      HandleQueryEstimate();
      return;
    case FrameType::kQuerySketch:
      HandleQuerySketch();
      return;
    case FrameType::kGoodbye:
      HandleGoodbye();
      return;
    case FrameType::kError: {
      // Client-reported failure: keep what was dispatched, stop the
      // session without a goodbye handshake (nothing left to send, so
      // the session is finished as soon as the outbox is empty).
      ReleaseProducer();
      state_ = State::kClosing;
      if (!wants_write()) finished_ = true;
      return;
    }
    default:
      Abort(Status::ParseError("unexpected frame kind for a client"));
      return;
  }
}

void Connection::HandleHello(const Message& message) {
  HelloFrame hello;
  Status status = DecodeHello(message.payload, &hello);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  if (hello.kind != backend_->kind()) {
    Abort(Status::InvalidArgument(
        backend_->kind() == StreamKind::kRaw
            ? "stream kind mismatch: this server ingests raw u64 elements"
            : "stream kind mismatch: this server ingests structured items"));
    return;
  }
  if (hello.max_sketch_format < backend_->min_sketch_format()) {
    Abort(Status::NotSupported(
        "sketch format v" + std::to_string(hello.max_sketch_format) +
        " too old: this server encodes v" +
        std::to_string(backend_->min_sketch_format()) + "+"));
    return;
  }
  sketch_format_ = std::min<uint16_t>(hello.max_sketch_format,
                                      SketchCodec::kDefaultFormatVersion);
  producer_ = backend_->MakeProducer();
  WelcomeFrame welcome;
  welcome.kind = backend_->kind();
  welcome.params = backend_->params();
  welcome.initial_credits = limits_.credit_window;
  welcome.max_batch_items = limits_.max_batch_items;
  credits_ = limits_.credit_window;
  state_ = State::kStreaming;
  SendFrame(FrameType::kWelcome, EncodeWelcome(welcome));
}

void Connection::HandleBatch(const Message& message) {
  if (credits_ == 0) {
    Abort(Status::ResourceExhausted(
        "flow control violated: batch sent with zero credits"));
    return;
  }
  const bool raw = backend_->kind() == StreamKind::kRaw;
  RawBatchFrame raw_batch;
  StructuredBatchFrame structured_batch;
  Status status =
      raw ? DecodeRawBatch(message.payload, limits_.max_batch_items,
                           &raw_batch)
          : DecodeStructuredBatch(message.payload, backend_->universe_bits(),
                                  limits_.max_batch_items, &structured_batch);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  // The seq check must precede the push: an out-of-order batch aborts
  // the session without mutating engine state (and without skewing the
  // accepted-batch stats).
  const uint64_t seq = raw ? raw_batch.seq : structured_batch.seq;
  if (seq != last_seq_ + 1) {
    Abort(Status::ParseError("batch seq out of order"));
    return;
  }
  const uint64_t items =
      raw ? raw_batch.items.size() : structured_batch.items.size();
  status = raw ? producer_->PushRaw(raw_batch.items)
               : producer_->PushStructured(structured_batch.items);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  credits_ -= 1;
  last_seq_ = seq;
  batches_accepted_ += 1;
  items_accepted_ += items;
  // The ack is what makes the batch "acknowledged": it is only queued
  // after the items were handed to the engine's producer, so a drain
  // that closes every producer cannot lose an acked batch.
  const uint64_t grant = CreditTopUp();
  credits_ += grant;
  SendFrame(FrameType::kAck, EncodeAck(AckFrame{last_seq_, grant}));
}

void Connection::HandleQueryEstimate() {
  EstimateFrame estimate;
  estimate.estimate = backend_->SnapshotEstimate();
  estimate.items_ingested = backend_->items_ingested();
  SendFrame(FrameType::kEstimate, EncodeEstimate(estimate));
}

void Connection::HandleQuerySketch() {
  SketchFrame sketch;
  sketch.blob = backend_->EncodeSnapshot(sketch_format_);
  SendFrame(FrameType::kSketch, EncodeSketch(sketch));
}

void Connection::HandleGoodbye() {
  ReleaseProducer();
  // kClosing first: SendFrame flushes opportunistically, and an empty
  // outbox afterwards must mark the session finished right away (the
  // peer may keep its socket open arbitrarily long).
  state_ = State::kClosing;
  SendFrame(FrameType::kGoodbyeAck, std::string());
}

void Connection::SendFrame(FrameType type, std::string payload) {
  outbox_ += WrapMessage(type, std::move(payload));
  // Opportunistic flush: most frames fit the socket buffer, so the
  // common case completes without a POLLOUT round trip.
  OnWritable();
}

void Connection::Abort(const Status& status) {
  ReleaseProducer();
  if (state_ != State::kClosing && !finished_) {
    SendFrame(FrameType::kError, EncodeError(ErrorFromStatus(status)));
    state_ = State::kClosing;
    if (!wants_write()) finished_ = true;
  }
}

void Connection::ReleaseProducer() {
  if (producer_ != nullptr) {
    producer_->Close();
    producer_.reset();
  }
}

}  // namespace net
}  // namespace mcf0
