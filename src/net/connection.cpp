#include "net/connection.hpp"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "engine/sketch_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcf0 {
namespace net {

namespace {

uint64_t NowSteadyUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr int kFrameTypeCount =
    static_cast<int>(FrameType::kStatsReport) -
    static_cast<int>(FrameType::kHello) + 1;

int FrameTypeIndex(FrameType type) {
  return static_cast<int>(type) - static_cast<int>(FrameType::kHello);
}

const char* FrameTypeLabel(int index) {
  static constexpr const char* kLabels[kFrameTypeCount] = {
      "hello",          "welcome", "batch",        "ack",
      "credit",         "query_estimate", "estimate", "query_sketch",
      "sketch",         "drain",   "goodbye",      "goodbye_ack",
      "error",          "stats_query",    "stats_report"};
  return kLabels[index];
}

/// Registry handles for the serve layer, resolved once per process.
/// These fold what used to be per-connection-only stats into the
/// process-wide registry; the per-connection counters survive for the
/// server's per-session summary.
struct ServeObs {
  obs::Counter* sessions_opened;
  obs::Gauge* sessions_active;
  obs::Counter* sessions_errored;
  obs::Counter* bytes_in;
  obs::Counter* bytes_out;
  obs::Counter* batches;
  obs::Counter* items;
  obs::Histogram* push_batch_us;
  obs::Histogram* credit_stall_us;
  obs::Counter* frames_in[kFrameTypeCount];
  obs::Counter* frames_out[kFrameTypeCount];
  obs::Counter* errors_by_code[9];

  static ServeObs& Get() {
    static ServeObs* obs = [] {
      auto& reg = obs::Registry::Global();
      auto* o = new ServeObs();
      o->sessions_opened =
          reg.GetCounter("mcf0_serve_sessions_opened_total");
      o->sessions_active = reg.GetGauge("mcf0_serve_sessions_active");
      o->sessions_errored =
          reg.GetCounter("mcf0_serve_sessions_errored_total");
      o->bytes_in = reg.GetCounter("mcf0_serve_bytes_in_total");
      o->bytes_out = reg.GetCounter("mcf0_serve_bytes_out_total");
      o->batches = reg.GetCounter("mcf0_serve_batches_total");
      o->items = reg.GetCounter("mcf0_serve_items_total");
      o->push_batch_us = reg.GetHistogram("mcf0_serve_push_batch_us");
      o->credit_stall_us = reg.GetHistogram("mcf0_serve_credit_stall_us");
      for (int i = 0; i < kFrameTypeCount; ++i) {
        o->frames_in[i] = reg.GetCounter("mcf0_serve_frames_in_total",
                                         {{"type", FrameTypeLabel(i)}});
        o->frames_out[i] = reg.GetCounter("mcf0_serve_frames_out_total",
                                          {{"type", FrameTypeLabel(i)}});
      }
      for (int c = 0; c < 9; ++c) {
        o->errors_by_code[c] = reg.GetCounter(
            "mcf0_serve_error_frames_total",
            {{"code", StatusCodeName(static_cast<StatusCode>(c))}});
      }
      return o;
    }();
    return *obs;
  }
};

}  // namespace

Status ProducerHandle::PushRaw(std::span<const uint64_t>) {
  return Status::NotSupported("this session streams structured items");
}

Status ProducerHandle::PushStructured(std::span<StructuredItem>) {
  return Status::NotSupported("this session streams raw u64 elements");
}

Connection::Connection(ScopedFd fd, EngineBackend* backend,
                       ConnectionLimits limits)
    : fd_(std::move(fd)), backend_(backend), limits_(limits) {
  ServeObs::Get().sessions_opened->Increment();
  ServeObs::Get().sessions_active->Increment();
}

Connection::~Connection() { ServeObs::Get().sessions_active->Decrement(); }

void Connection::OnReadable() {
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    if (n > 0) {
      ServeObs::Get().bytes_in->Increment(static_cast<uint64_t>(n));
      inbox_.Append(std::string_view(buffer, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      // Peer closed. A clean session ends with goodbye -> kClosing; an
      // abrupt close still salvages everything already dispatched.
      ReleaseProducer();
      finished_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ReleaseProducer();
    finished_ = true;
    return;
  }
  Message message;
  Status status;
  while (state_ != State::kClosing && inbox_.Next(&message, &status)) {
    HandleMessage(message);
  }
  if (state_ != State::kClosing && !status.ok()) Abort(status);
}

void Connection::OnWritable() {
  while (outbox_sent_ < outbox_.size()) {
    const ssize_t n = ::send(fd_.get(), outbox_.data() + outbox_sent_,
                             outbox_.size() - outbox_sent_, MSG_NOSIGNAL);
    if (n > 0) {
      ServeObs::Get().bytes_out->Increment(static_cast<uint64_t>(n));
      outbox_sent_ += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    ReleaseProducer();
    finished_ = true;  // peer vanished mid-write
    return;
  }
  if (outbox_sent_ == outbox_.size()) {
    outbox_.clear();
    outbox_sent_ = 0;
    if (state_ == State::kClosing) finished_ = true;
  }
}

void Connection::OnHangup() {
  ReleaseProducer();
  finished_ = true;
}

void Connection::StartDrain() {
  if (state_ == State::kClosing || finished_) return;
  if (state_ == State::kAwaitHello) {
    // Not yet negotiated: announce the drain and close; the client sees
    // it as the server being unavailable for new sessions.
    state_ = State::kClosing;
    SendFrame(FrameType::kDrain, std::string());
    return;
  }
  if (state_ == State::kStreaming) {
    SendFrame(FrameType::kDrain, std::string());
    state_ = State::kDraining;
  }
}

bool Connection::PumpCredits() {
  if (state_ != State::kStreaming) return false;
  const uint64_t grant = CreditTopUp();
  if (grant == 0) return false;
  credits_ += grant;
  if (credit_stall_start_us_ != 0) {
    // The stall ends the moment a grant is queued for the peer.
    const uint64_t now = NowSteadyUs();
    ServeObs::Get().credit_stall_us->Observe(
        now >= credit_stall_start_us_ ? now - credit_stall_start_us_ : 0);
    credit_stall_start_us_ = 0;
  }
  SendFrame(FrameType::kCredit, EncodeCredit(CreditFrame{grant}));
  return true;
}

uint64_t Connection::CreditTopUp() const {
  // No new grants while draining: credited batches finish, new ones don't
  // start.
  if (state_ != State::kStreaming) return 0;
  if (credits_ >= limits_.credit_window) return 0;
  // The low-watermark rule: grant only while the engine queue has
  // headroom, so a flood of producers can't pile unbounded batches
  // behind a slow shard (docs/serve.md).
  if (backend_->queued_batches() >= backend_->queue_capacity() / 2) return 0;
  return limits_.credit_window - credits_;
}

void Connection::HandleMessage(const Message& message) {
  ServeObs::Get().frames_in[FrameTypeIndex(message.type)]->Increment();
  if (state_ == State::kAwaitHello) {
    if (message.type != FrameType::kHello) {
      Abort(Status::ParseError("expected hello as the first frame"));
      return;
    }
    HandleHello(message);
    return;
  }
  switch (message.type) {
    case FrameType::kBatch:
      HandleBatch(message);
      return;
    case FrameType::kQueryEstimate:
      HandleQueryEstimate();
      return;
    case FrameType::kQuerySketch:
      HandleQuerySketch();
      return;
    case FrameType::kStatsQuery:
      HandleStatsQuery();
      return;
    case FrameType::kGoodbye:
      HandleGoodbye();
      return;
    case FrameType::kError: {
      // Client-reported failure: keep what was dispatched, stop the
      // session without a goodbye handshake (nothing left to send, so
      // the session is finished as soon as the outbox is empty).
      ReleaseProducer();
      state_ = State::kClosing;
      if (!wants_write()) finished_ = true;
      return;
    }
    default:
      Abort(Status::ParseError("unexpected frame kind for a client"));
      return;
  }
}

void Connection::HandleHello(const Message& message) {
  HelloFrame hello;
  Status status = DecodeHello(message.payload, &hello);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  if (hello.kind != backend_->kind()) {
    Abort(Status::InvalidArgument(
        backend_->kind() == StreamKind::kRaw
            ? "stream kind mismatch: this server ingests raw u64 elements"
            : "stream kind mismatch: this server ingests structured items"));
    return;
  }
  if (hello.max_sketch_format < backend_->min_sketch_format()) {
    Abort(Status::NotSupported(
        "sketch format v" + std::to_string(hello.max_sketch_format) +
        " too old: this server encodes v" +
        std::to_string(backend_->min_sketch_format()) + "+"));
    return;
  }
  sketch_format_ = std::min<uint16_t>(hello.max_sketch_format,
                                      SketchCodec::kDefaultFormatVersion);
  producer_ = backend_->MakeProducer();
  WelcomeFrame welcome;
  welcome.kind = backend_->kind();
  welcome.params = backend_->params();
  welcome.initial_credits = limits_.credit_window;
  welcome.max_batch_items = limits_.max_batch_items;
  credits_ = limits_.credit_window;
  state_ = State::kStreaming;
  SendFrame(FrameType::kWelcome, EncodeWelcome(welcome));
}

void Connection::HandleBatch(const Message& message) {
  MCF0_TRACE_SPAN("serve.handle_batch");
  // Manual timing (not ScopedLatencyUs) so aborted batches never skew
  // the push-latency histogram; only the success path observes.
  const bool timed = obs::Enabled();
  const uint64_t start_us = timed ? NowSteadyUs() : 0;
  if (credits_ == 0) {
    Abort(Status::ResourceExhausted(
        "flow control violated: batch sent with zero credits"));
    return;
  }
  const bool raw = backend_->kind() == StreamKind::kRaw;
  RawBatchFrame raw_batch;
  StructuredBatchFrame structured_batch;
  Status status =
      raw ? DecodeRawBatch(message.payload, limits_.max_batch_items,
                           &raw_batch)
          : DecodeStructuredBatch(message.payload, backend_->universe_bits(),
                                  limits_.max_batch_items, &structured_batch);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  // The seq check must precede the push: an out-of-order batch aborts
  // the session without mutating engine state (and without skewing the
  // accepted-batch stats).
  const uint64_t seq = raw ? raw_batch.seq : structured_batch.seq;
  if (seq != last_seq_ + 1) {
    Abort(Status::ParseError("batch seq out of order"));
    return;
  }
  const uint64_t items =
      raw ? raw_batch.items.size() : structured_batch.items.size();
  status = raw ? producer_->PushRaw(raw_batch.items)
               : producer_->PushStructured(structured_batch.items);
  if (!status.ok()) {
    Abort(status);
    return;
  }
  credits_ -= 1;
  last_seq_ = seq;
  batches_accepted_ += 1;
  items_accepted_ += items;
  ServeObs::Get().batches->Increment();
  ServeObs::Get().items->Increment(items);
  // The ack is what makes the batch "acknowledged": it is only queued
  // after the items were handed to the engine's producer, so a drain
  // that closes every producer cannot lose an acked batch.
  const uint64_t grant = CreditTopUp();
  credits_ += grant;
  SendFrame(FrameType::kAck, EncodeAck(AckFrame{last_seq_, grant}));
  if (credits_ == 0 && credit_stall_start_us_ == 0) {
    // Zero credits and nothing grantable: the peer is stalled until
    // PumpCredits revives it. Timed for mcf0_serve_credit_stall_us.
    credit_stall_start_us_ = NowSteadyUs();
  }
  if (timed) {
    const uint64_t now = NowSteadyUs();
    ServeObs::Get().push_batch_us->Observe(now >= start_us ? now - start_us
                                                           : 0);
  }
}

void Connection::HandleQueryEstimate() {
  EstimateFrame estimate;
  estimate.estimate = backend_->SnapshotEstimate();
  estimate.items_ingested = backend_->items_ingested();
  SendFrame(FrameType::kEstimate, EncodeEstimate(estimate));
}

void Connection::HandleQuerySketch() {
  SketchFrame sketch;
  sketch.blob = backend_->EncodeSnapshot(sketch_format_);
  SendFrame(FrameType::kSketch, EncodeSketch(sketch));
}

void Connection::HandleStatsQuery() {
  // A registry snapshot, flattened to the canonical sorted entry list.
  // The report frame's own bytes/frames-out increments land after the
  // snapshot, so a report never counts itself.
  StatsReportFrame report;
  const auto entries = obs::Registry::Global().FlatEntries();
  report.entries.reserve(entries.size());
  for (const auto& [name, value] : entries) {
    report.entries.push_back(StatsEntry{name, value});
  }
  SendFrame(FrameType::kStatsReport, EncodeStatsReport(report));
}

void Connection::HandleGoodbye() {
  ReleaseProducer();
  // kClosing first: SendFrame flushes opportunistically, and an empty
  // outbox afterwards must mark the session finished right away (the
  // peer may keep its socket open arbitrarily long).
  state_ = State::kClosing;
  SendFrame(FrameType::kGoodbyeAck, std::string());
}

void Connection::SendFrame(FrameType type, std::string payload) {
  ServeObs::Get().frames_out[FrameTypeIndex(type)]->Increment();
  outbox_ += WrapMessage(type, std::move(payload));
  // Opportunistic flush: most frames fit the socket buffer, so the
  // common case completes without a POLLOUT round trip.
  OnWritable();
}

void Connection::Abort(const Status& status) {
  ReleaseProducer();
  if (state_ != State::kClosing && !finished_) {
    ServeObs::Get().sessions_errored->Increment();
    const int code = static_cast<int>(status.code());
    if (code >= 0 && code < 9) {
      ServeObs::Get().errors_by_code[code]->Increment();
    }
    SendFrame(FrameType::kError, EncodeError(ErrorFromStatus(status)));
    state_ = State::kClosing;
    if (!wants_write()) finished_ = true;
  }
}

void Connection::ReleaseProducer() {
  if (producer_ != nullptr) {
    producer_->Close();
    producer_.reset();
  }
}

}  // namespace net
}  // namespace mcf0
