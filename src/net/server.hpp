/// \file server.hpp
/// \brief `mcf0 serve`: the poll-based sketch service event loop.
///
/// One thread runs the loop; concurrency lives in the sharded engine
/// behind it. The server accepts sessions, binds each to a producer
/// handle via `EngineBackend`, meters ingestion with credits, answers
/// live estimate/sketch queries, and on RequestDrain() (async-signal-
/// safe, wired to SIGTERM/SIGINT by the CLI) stops accepting, drains
/// every session gracefully, and materializes the final merged sketch.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "engine/sharded_engine.hpp"
#include "engine/sketch_codec.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"

namespace mcf0 {
namespace net {

/// EngineBackend over ShardedF0Engine (raw u64 streams).
class RawEngineBackend : public EngineBackend {
 public:
  explicit RawEngineBackend(ShardedF0Engine* engine) : engine_(engine) {}

  StreamKind kind() const override { return StreamKind::kRaw; }
  std::variant<F0Params, StructuredF0Params> params() const override {
    return engine_->params();
  }
  int universe_bits() const override { return engine_->params().n; }
  uint16_t min_sketch_format() const override {
    return SketchCodec::kFormatV1;
  }
  std::unique_ptr<ProducerHandle> MakeProducer() override;
  uint64_t queued_batches() override { return engine_->queued_batches(); }
  uint64_t queue_capacity() const override {
    return engine_->queue_capacity();
  }
  uint64_t items_ingested() const override {
    return engine_->elements_ingested();
  }
  double SnapshotEstimate() override { return engine_->SnapshotEstimate(); }
  std::string EncodeSnapshot(uint16_t format_version) override;
  double FinalEstimate() override { return engine_->Estimate(); }
  std::string EncodeFinal(uint16_t format_version) override;

 private:
  ShardedF0Engine* engine_;
};

/// EngineBackend over ShardedStructuredEngine (§5 structured streams).
class StructuredEngineBackend : public EngineBackend {
 public:
  explicit StructuredEngineBackend(ShardedStructuredEngine* engine)
      : engine_(engine) {}

  StreamKind kind() const override { return StreamKind::kStructured; }
  std::variant<F0Params, StructuredF0Params> params() const override {
    return engine_->params();
  }
  int universe_bits() const override { return engine_->params().n; }
  uint16_t min_sketch_format() const override {
    // Structured frames have no v1 encoding (sketch_codec.cpp).
    return SketchCodec::kFormatV2;
  }
  std::unique_ptr<ProducerHandle> MakeProducer() override;
  uint64_t queued_batches() override { return engine_->queued_batches(); }
  uint64_t queue_capacity() const override {
    return engine_->queue_capacity();
  }
  uint64_t items_ingested() const override {
    return engine_->items_ingested();
  }
  double SnapshotEstimate() override { return engine_->SnapshotEstimate(); }
  std::string EncodeSnapshot(uint16_t format_version) override;
  double FinalEstimate() override { return engine_->Estimate(); }
  std::string EncodeFinal(uint16_t format_version) override;

 private:
  ShardedStructuredEngine* engine_;
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port().
  int port = 0;
  /// Per-connection flow control (docs/serve.md).
  uint64_t credit_window = 8;
  uint64_t max_batch_items = 4096;
  /// How long a drain waits for clients to say goodbye before their
  /// sockets are force-closed (dispatched batches are still kept).
  int drain_timeout_ms = 30'000;
  /// > 0: the serve loop emits one JSON metrics line (the process-wide
  /// obs registry snapshot) to stderr every this-many milliseconds.
  int metrics_interval_ms = 0;
};

/// The serve loop. Single-threaded; Start() then Run(); RequestDrain()
/// may be called from a signal handler or another thread.
class SketchServer {
 public:
  SketchServer(EngineBackend* backend, ServerOptions options);

  /// Binds, listens, and opens the wakeup pipe.
  Status Start();
  /// The bound port (valid after Start()).
  int port() const { return port_; }

  /// Runs until a drain completes. Returns non-OK only on environment
  /// failures (poll/accept); protocol problems end single sessions.
  Status Run();

  /// Async-signal-safe: flags the drain and wakes the loop.
  void RequestDrain();

  // Valid after Run() returns.
  double final_estimate() const { return final_estimate_; }
  const std::string& final_sketch() const { return final_sketch_; }
  uint64_t connections_served() const { return connections_served_; }
  uint64_t batches_accepted() const { return batches_accepted_; }
  uint64_t items_accepted() const { return items_accepted_; }

 private:
  Status AcceptAll();
  void BeginDrain();
  /// Removes finished connections, folding their stats into totals.
  void ReapFinished();
  void UpdateInterest();

  EngineBackend* backend_;
  ServerOptions options_;
  ScopedFd listener_;
  int port_ = 0;
  WakePipe wake_;
  Poller poller_;
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  std::vector<std::unique_ptr<Connection>> connections_;

  double final_estimate_ = 0.0;
  std::string final_sketch_;
  uint64_t connections_served_ = 0;
  uint64_t batches_accepted_ = 0;
  uint64_t items_accepted_ = 0;
};

}  // namespace net
}  // namespace mcf0
