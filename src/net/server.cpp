#include "net/server.hpp"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "engine/sketch_codec.hpp"
#include "obs/metrics.hpp"

namespace mcf0 {
namespace net {

namespace {

/// Transport producer over a raw-engine handle.
class RawProducerHandle : public ProducerHandle {
 public:
  explicit RawProducerHandle(ShardedF0Engine::Producer producer)
      : producer_(std::move(producer)) {}

  Status PushRaw(std::span<const uint64_t> items) override {
    return producer_.AddBatch(items);
  }
  Status Close() override { return producer_.Close(); }

 private:
  ShardedF0Engine::Producer producer_;
};

/// Transport producer over a structured-engine handle.
class StructuredProducerHandle : public ProducerHandle {
 public:
  explicit StructuredProducerHandle(ShardedStructuredEngine::Producer producer)
      : producer_(std::move(producer)) {}

  Status PushStructured(std::span<StructuredItem> items) override {
    for (StructuredItem& item : items) {
      const Status status = producer_.Add(std::move(item));
      if (!status.ok()) return status;
    }
    return Status::Ok();
  }
  Status Close() override { return producer_.Close(); }

 private:
  ShardedStructuredEngine::Producer producer_;
};

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::unique_ptr<ProducerHandle> RawEngineBackend::MakeProducer() {
  return std::make_unique<RawProducerHandle>(engine_->MakeProducer());
}

std::string RawEngineBackend::EncodeSnapshot(uint16_t format_version) {
  return SketchCodec::Encode(engine_->SnapshotSketch(), format_version);
}

std::string RawEngineBackend::EncodeFinal(uint16_t format_version) {
  return SketchCodec::Encode(engine_->MergedSketch(), format_version);
}

std::unique_ptr<ProducerHandle> StructuredEngineBackend::MakeProducer() {
  return std::make_unique<StructuredProducerHandle>(engine_->MakeProducer());
}

std::string StructuredEngineBackend::EncodeSnapshot(uint16_t format_version) {
  return SketchCodec::Encode(engine_->SnapshotSketch(), format_version);
}

std::string StructuredEngineBackend::EncodeFinal(uint16_t format_version) {
  return SketchCodec::Encode(engine_->MergedSketch(), format_version);
}

SketchServer::SketchServer(EngineBackend* backend, ServerOptions options)
    : backend_(backend), options_(std::move(options)) {}

Status SketchServer::Start() {
  Result<ScopedFd> listener = ListenTcp(options_.host, options_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener.value());
  Result<int> port = BoundPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = port.value();
  Status status = wake_.Open();
  if (!status.ok()) return status;
  poller_.Watch(listener_.get(), /*want_read=*/true, /*want_write=*/false);
  poller_.Watch(wake_.read_fd(), /*want_read=*/true, /*want_write=*/false);
  return Status::Ok();
}

void SketchServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  wake_.Notify();
}

Status SketchServer::AcceptAll() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EINTR) continue;
      // Transient per-connection failures (ECONNABORTED, EMFILE...)
      // should not kill the serve loop.
      return Status::Ok();
    }
    ScopedFd conn_fd(fd);
    const Status status = SetNonBlocking(fd);
    if (!status.ok()) continue;  // drop this connection only
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ConnectionLimits limits;
    limits.credit_window = options_.credit_window;
    limits.max_batch_items = options_.max_batch_items;
    auto conn =
        std::make_unique<Connection>(std::move(conn_fd), backend_, limits);
    poller_.Watch(conn->fd(), /*want_read=*/true, conn->wants_write());
    connections_.push_back(std::move(conn));
  }
}

void SketchServer::BeginDrain() {
  if (draining_) return;
  draining_ = true;
  if (listener_.valid()) {
    poller_.Unwatch(listener_.get());
    listener_.Reset();
  }
  for (auto& conn : connections_) conn->StartDrain();
}

void SketchServer::ReapFinished() {
  for (size_t i = 0; i < connections_.size();) {
    Connection& conn = *connections_[i];
    if (!conn.done()) {
      ++i;
      continue;
    }
    poller_.Unwatch(conn.fd());
    connections_served_ += 1;
    batches_accepted_ += conn.batches_accepted();
    items_accepted_ += conn.items_accepted();
    connections_.erase(connections_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void SketchServer::UpdateInterest() {
  for (const auto& conn : connections_) {
    poller_.Watch(conn->fd(), /*want_read=*/true, conn->wants_write());
  }
}

Status SketchServer::Run() {
  std::vector<PollEvent> events;
  int64_t drain_deadline_ms = 0;
  const int64_t start_ms = NowMs();
  int64_t next_metrics_ms =
      options_.metrics_interval_ms > 0
          ? start_ms + options_.metrics_interval_ms
          : 0;
  for (;;) {
    if (next_metrics_ms != 0 && NowMs() >= next_metrics_ms) {
      // One line per interval: the whole registry, machine-parseable,
      // on stderr so it never interleaves with the stdout JSON events.
      const std::string metrics = obs::Registry::Global().SnapshotJson();
      std::fprintf(stderr,
                   "{\"event\":\"metrics\",\"uptime_ms\":%lld,"
                   "\"metrics\":%s}\n",
                   static_cast<long long>(NowMs() - start_ms),
                   metrics.c_str());
      std::fflush(stderr);
      // Schedule from the previous deadline, not from "now", so the
      // period does not silently stretch by snapshot+write cost. If
      // emission fell more than a whole interval behind, skip the
      // missed ticks instead of bursting to catch up.
      next_metrics_ms += options_.metrics_interval_ms;
      const int64_t now_ms = NowMs();
      if (next_metrics_ms <= now_ms) {
        next_metrics_ms = now_ms + options_.metrics_interval_ms;
      }
    }
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
      drain_deadline_ms = NowMs() + options_.drain_timeout_ms;
    }
    if (draining_ && connections_.empty()) break;
    if (draining_ && NowMs() >= drain_deadline_ms) {
      // Stragglers never said goodbye: force-close, keeping everything
      // their producers already dispatched.
      for (auto& conn : connections_) conn->OnHangup();
      ReapFinished();
      break;
    }

    // A short timeout while any client sits below a full window keeps
    // credit grants flowing even with no inbound traffic (the engine
    // drains its queues without notifying the loop). Draining also
    // polls on a bound so the deadline fires.
    int timeout_ms = -1;
    for (const auto& conn : connections_) {
      if (conn->credits_starved()) {
        timeout_ms = 5;
        break;
      }
    }
    if (draining_) {
      const int64_t left = drain_deadline_ms - NowMs();
      const int bounded = static_cast<int>(left < 1 ? 1 : left);
      if (timeout_ms < 0 || bounded < timeout_ms) timeout_ms = bounded;
    }
    if (next_metrics_ms != 0) {
      const int64_t left = next_metrics_ms - NowMs();
      const int bounded = static_cast<int>(left < 1 ? 1 : left);
      if (timeout_ms < 0 || bounded < timeout_ms) timeout_ms = bounded;
    }

    const Status status = poller_.Wait(timeout_ms, &events);
    if (!status.ok()) return status;

    for (const PollEvent& event : events) {
      if (event.fd == wake_.read_fd()) {
        wake_.Drain();
        continue;
      }
      if (listener_.valid() && event.fd == listener_.get()) {
        const Status accepted = AcceptAll();
        if (!accepted.ok()) return accepted;
        continue;
      }
      for (auto& conn : connections_) {
        if (conn->fd() != event.fd) continue;
        if (event.hangup && !event.readable) {
          conn->OnHangup();
        } else {
          if (event.readable) conn->OnReadable();
          if (event.writable && !conn->done()) conn->OnWritable();
        }
        break;
      }
    }

    for (auto& conn : connections_) conn->PumpCredits();
    ReapFinished();
    UpdateInterest();
  }

  // Every session is closed and every producer flushed; materialize the
  // final answers from the merged engine state.
  final_sketch_ = backend_->EncodeFinal(SketchCodec::kDefaultFormatVersion);
  final_estimate_ = backend_->FinalEstimate();
  return Status::Ok();
}

}  // namespace net
}  // namespace mcf0
