/// \file approx_count_min.hpp
/// \brief ApproxModelCountMin — the Minimum-based model counter
/// (Algorithm 6, Theorem 3), NEW in the paper: the KMV sketch built by the
/// FindMin subroutine instead of a stream pass.
///
/// Per row a hash h: {0,1}^n -> {0,1}^{3n} is sampled, FindMin produces the
/// Thresh lexicographically smallest elements of h(Sol(phi)) (property P2),
/// and the row estimate is Thresh * 2^{3n} / max(S) — the identical
/// ComputeEst as the streaming Minimum sketch; this implementation feeds
/// the very same MinimumSketchRow object.
///
///  * CNF: O(Thresh * 3n) NP-oracle calls per row via prefix search.
///  * DNF: FPRAS (Proposition 2's per-term affine enumeration).
#pragma once

#include "core/counting.hpp"
#include "formula/formula.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// Minimum-based counter for CNF (counts NP-oracle calls).
CountResult ApproxCountMinCnf(const Cnf& cnf, const CountingParams& params);

/// Minimum-based FPRAS for DNF (no oracle).
CountResult ApproxCountMinDnf(const Dnf& dnf, const CountingParams& params);

}  // namespace mcf0
