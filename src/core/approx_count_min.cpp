#include "core/approx_count_min.hpp"

#include "common/median.hpp"
#include "common/rng.hpp"
#include "oracle/find_min.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

/// Shared row: build the Minimum sketch from FindMin output and reuse the
/// streaming ComputeEst — the transformation recipe, literally.
double MinRowEstimate(AffineHash h, uint64_t thresh,
                      const std::vector<BitVec>& mins) {
  MinimumSketchRow row(std::move(h), thresh);
  for (const BitVec& v : mins) row.AddHashed(v);
  return row.Estimate();
}

}  // namespace

CountResult ApproxCountMinCnf(const Cnf& cnf, const CountingParams& params) {
  CountResult result;
  result.thresh = CountingThresh(params);
  result.rows = CountingRows(params);
  Rng rng(params.seed);
  CnfOracle oracle(cnf);
  oracle.SetUseTseitin(params.use_tseitin);
  const int n = cnf.num_vars();
  for (int i = 0; i < result.rows; ++i) {
    AffineHash h = SampleCountingHash(n, 3 * n, params, rng);
    const std::vector<BitVec> mins = FindMinCnf(oracle, h, result.thresh);
    result.row_estimates.push_back(
        MinRowEstimate(std::move(h), result.thresh, mins));
  }
  result.estimate = Median(result.row_estimates);
  result.oracle_calls = oracle.num_calls();
  return result;
}

CountResult ApproxCountMinDnf(const Dnf& dnf, const CountingParams& params) {
  CountResult result;
  result.thresh = CountingThresh(params);
  result.rows = CountingRows(params);
  Rng rng(params.seed);
  const int n = dnf.num_vars();
  for (int i = 0; i < result.rows; ++i) {
    AffineHash h = SampleCountingHash(n, 3 * n, params, rng);
    const std::vector<BitVec> mins = FindMinDnf(dnf, h, result.thresh);
    result.row_estimates.push_back(
        MinRowEstimate(std::move(h), result.thresh, mins));
  }
  result.estimate = Median(result.row_estimates);
  result.oracle_calls = 0;
  return result;
}

}  // namespace mcf0
