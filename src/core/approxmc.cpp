#include "core/approxmc.hpp"

#include <cmath>
#include <functional>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "oracle/bounded_sat.hpp"

namespace mcf0 {

uint64_t CountingThresh(const CountingParams& params) {
  if (params.thresh_override > 0) return params.thresh_override;
  return static_cast<uint64_t>(std::ceil(96.0 / (params.eps * params.eps)));
}

int CountingRows(const CountingParams& params) {
  if (params.rows_override > 0) return params.rows_override;
  return static_cast<int>(std::ceil(35.0 * std::log2(1.0 / params.delta)));
}

AffineHash SampleCountingHash(int n, int m, const CountingParams& params,
                              Rng& rng) {
  if (params.sparse_density > 0.0) {
    return AffineHash::SampleSparseXor(n, m, params.sparse_density, rng);
  }
  switch (params.hash_kind) {
    case AffineHashKind::kToeplitz:
      return AffineHash::SampleToeplitz(n, m, rng);
    case AffineHashKind::kXor:
    case AffineHashKind::kSparseXor:
      return AffineHash::SampleXor(n, m, rng);
  }
  MCF0_CHECK(false);
  return AffineHash::SampleXor(n, m, rng);
}

namespace {

/// Core of Algorithm 5, generic over the BoundedSAT backend. `cell_count`
/// returns min(thresh, |Sol cap cell_m|). Produces one row estimate.
double ApproxMcRow(int n, uint64_t thresh, bool binary_search,
                   const std::function<uint64_t(int)>& cell_count) {
  const uint64_t c0 = cell_count(0);
  if (c0 < thresh) {
    // Fewer than Thresh solutions overall: the count is exact.
    return static_cast<double>(c0);
  }
  if (!binary_search) {
    // Linear scan of Algorithm 5 lines 8-10.
    for (int m = 1; m <= n; ++m) {
      const uint64_t c = cell_count(m);
      if (c < thresh) return static_cast<double>(c) * std::pow(2.0, m);
    }
    // Even the 2^n-cell hash is saturated (possible only when the hash is
    // far from injective); report the saturation cap.
    return static_cast<double>(thresh) * std::pow(2.0, n);
  }
  // ApproxMC2-style binary search for the smallest m with |cell| < thresh.
  // Cell counts are non-increasing in m (cells are nested), so the
  // predicate is monotone.
  int lo = 0;   // known saturated
  int hi = n;   // search upper bound
  uint64_t count_at_hi = 0;
  bool have_hi_count = false;
  while (hi - lo > 1) {
    const int mid = lo + (hi - lo) / 2;
    const uint64_t c = cell_count(mid);
    if (c < thresh) {
      hi = mid;
      count_at_hi = c;
      have_hi_count = true;
    } else {
      lo = mid;
    }
  }
  if (!have_hi_count) count_at_hi = cell_count(hi);
  if (count_at_hi >= thresh) {
    return static_cast<double>(thresh) * std::pow(2.0, n);
  }
  return static_cast<double>(count_at_hi) * std::pow(2.0, hi);
}

}  // namespace

CountResult ApproxMcCnf(const Cnf& cnf, const CountingParams& params) {
  CountResult result;
  result.thresh = CountingThresh(params);
  result.rows = CountingRows(params);
  Rng rng(params.seed);
  CnfOracle oracle(cnf);
  oracle.SetUseTseitin(params.use_tseitin);
  const int n = cnf.num_vars();
  for (int i = 0; i < result.rows; ++i) {
    const AffineHash h = SampleCountingHash(n, n, params, rng);
    auto cell_count = [&](int m) {
      return BoundedSatCnf(oracle, h, m, result.thresh).count();
    };
    result.row_estimates.push_back(
        ApproxMcRow(n, result.thresh, params.binary_search, cell_count));
  }
  result.estimate = Median(result.row_estimates);
  result.oracle_calls = oracle.num_calls();
  return result;
}

CountResult ApproxMcDnf(const Dnf& dnf, const CountingParams& params) {
  CountResult result;
  result.thresh = CountingThresh(params);
  result.rows = CountingRows(params);
  Rng rng(params.seed);
  const int n = dnf.num_vars();
  for (int i = 0; i < result.rows; ++i) {
    const AffineHash h = SampleCountingHash(n, n, params, rng);
    auto cell_count = [&](int m) {
      return BoundedSatDnf(dnf, h, m, result.thresh).count();
    };
    result.row_estimates.push_back(
        ApproxMcRow(n, result.thresh, params.binary_search, cell_count));
  }
  result.estimate = Median(result.row_estimates);
  result.oracle_calls = 0;  // PTIME path
  return result;
}

}  // namespace mcf0
