/// \file approxmc.hpp
/// \brief ApproxMC — the Bucketing-based model counter (Algorithm 5,
/// Theorem 2), obtained by the paper's streaming-to-counting recipe from
/// the Gibbons-Tirthapura sketch.
///
/// Per row i the cell level m_i is raised until the cell
/// h_{m_i}^{-1}(0^{m_i}) holds fewer than Thresh solutions; the row
/// estimate is |cell| * 2^{m_i} and the output is the median across rows —
/// exactly the Bucketing sketch property P1 built by BoundedSAT instead of
/// a stream pass.
///
///  * CNF: O(n * 1/eps^2 * log(1/delta)) NP-oracle calls with the linear
///    scan; O(log n * ...) with `binary_search` (the ApproxMC2 refinement,
///    "Further Optimizations" in §3.2).
///  * DNF: FPRAS — BoundedSAT is polynomial (Proposition 1), giving the
///    O(n^4 k (1/eps^2) log(1/delta))-flavour bound of Theorem 2.
#pragma once

#include "core/counting.hpp"
#include "formula/formula.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// Bucketing-based counter for CNF. Counts NP-oracle calls in the result.
CountResult ApproxMcCnf(const Cnf& cnf, const CountingParams& params);

/// Bucketing-based FPRAS for DNF (no oracle).
CountResult ApproxMcDnf(const Dnf& dnf, const CountingParams& params);

}  // namespace mcf0
