#include "core/sampler.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "core/approxmc.hpp"
#include "oracle/bounded_sat.hpp"

namespace mcf0 {
namespace {

/// One sampling attempt at cell level m.
std::optional<BitVec> TryOnce(const Dnf& dnf, int m, uint64_t pivot, Rng& rng) {
  const AffineHash h = AffineHash::SampleToeplitz(dnf.num_vars(),
                                                  dnf.num_vars(), rng);
  const BoundedSatResult cell = BoundedSatDnf(dnf, h, m, 4 * pivot + 1);
  if (cell.count() == 0 || cell.saturated) return std::nullopt;
  return cell.solutions[rng.NextBelow(cell.count())];
}

}  // namespace

std::optional<BitVec> SampleSolutionDnf(const Dnf& dnf,
                                        const SamplerParams& params) {
  MCF0_CHECK(params.pivot >= 1);
  Rng rng(params.seed);
  // Rough count to aim the cell level: one quick low-confidence ApproxMC.
  CountingParams count_params;
  count_params.rows_override = 5;
  count_params.thresh_override = 2 * params.pivot;
  count_params.seed = rng.NextU64();
  const double estimate = ApproxMcDnf(dnf, count_params).estimate;
  if (estimate <= 0.0) return std::nullopt;  // unsatisfiable

  int m = 0;
  if (estimate > static_cast<double>(params.pivot)) {
    m = static_cast<int>(std::lround(
        std::log2(estimate / static_cast<double>(params.pivot))));
    m = std::min(m, dnf.num_vars());
  }
  for (int attempt = 0; attempt < params.max_retries; ++attempt) {
    auto sample = TryOnce(dnf, m, params.pivot, rng);
    if (sample.has_value()) return sample;
    // Saturated cells mean m was too shallow; empty cells too deep. Nudge
    // alternately — the rough count can be off by the eps band.
    m = std::min(dnf.num_vars(),
                 std::max(0, m + ((attempt % 2 == 0) ? 1 : -1)));
  }
  return std::nullopt;
}

std::vector<BitVec> SampleSolutionsDnf(const Dnf& dnf, uint64_t count,
                                       const SamplerParams& params) {
  std::vector<BitVec> out;
  out.reserve(count);
  SamplerParams local = params;
  Rng seeds(params.seed);
  for (uint64_t i = 0; i < count; ++i) {
    local.seed = seeds.NextU64();
    auto sample = SampleSolutionDnf(dnf, local);
    if (sample.has_value()) out.push_back(std::move(*sample));
  }
  return out;
}

}  // namespace mcf0
