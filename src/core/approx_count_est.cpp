#include "core/approx_count_est.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "oracle/find_max_range.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

/// Shared driver: fill the Estimation sketch cells via `max_range(i, j)`
/// and reuse the streaming ComputeEst.
CountResult EstDriver(int n, const CountingParams& params, int r,
                      const std::function<int(const AffineHash&)>& max_range) {
  CountResult result;
  result.thresh = CountingThresh(params);
  result.rows = CountingRows(params);
  MCF0_CHECK(r >= 1 && r <= n);
  Rng rng(params.seed);
  for (int i = 0; i < result.rows; ++i) {
    EstimationSketchRow row(static_cast<int>(result.thresh));
    for (uint64_t j = 0; j < result.thresh; ++j) {
      const AffineHash h = SampleCountingHash(n, n, params, rng);
      const int t = max_range(h);
      if (t >= 0) row.Merge(static_cast<int>(j), t);
    }
    result.row_estimates.push_back(row.EstimateWithR(r));
  }
  result.estimate = Median(result.row_estimates);
  return result;
}

int DeriveR(double rough, int n) {
  if (rough < 1.0) return 1;
  return std::clamp(static_cast<int>(std::lround(std::log2(10.0 * rough))), 1,
                    n);
}

}  // namespace

CountResult ApproxCountEstCnf(const Cnf& cnf, const CountingParams& params,
                              int r) {
  CnfOracle oracle(cnf);
  oracle.SetUseTseitin(params.use_tseitin);
  CountResult result =
      EstDriver(cnf.num_vars(), params, r,
                [&](const AffineHash& h) {
                  return FindMaxRangeCnf(oracle, h);
                });
  result.oracle_calls = oracle.num_calls();
  return result;
}

CountResult ApproxCountEstDnf(const Dnf& dnf, const CountingParams& params,
                              int r) {
  return EstDriver(dnf.num_vars(), params, r, [&](const AffineHash& h) {
    return FindMaxRangeDnf(dnf, h);
  });
}

double FlajoletMartinCountCnf(const Cnf& cnf, int rows, uint64_t seed,
                              CnfOracle& oracle) {
  Rng rng(seed);
  const int n = cnf.num_vars();
  std::vector<double> estimates;
  for (int i = 0; i < rows; ++i) {
    const AffineHash h = AffineHash::SampleXor(n, n, rng);
    const int t = FindMaxRangeCnf(oracle, h);
    estimates.push_back(t < 0 ? 0.0 : std::pow(2.0, t));
  }
  return Median(std::move(estimates));
}

double FlajoletMartinCountDnf(const Dnf& dnf, int rows, uint64_t seed) {
  Rng rng(seed);
  const int n = dnf.num_vars();
  std::vector<double> estimates;
  for (int i = 0; i < rows; ++i) {
    const AffineHash h = AffineHash::SampleXor(n, n, rng);
    const int t = FindMaxRangeDnf(dnf, h);
    estimates.push_back(t < 0 ? 0.0 : std::pow(2.0, t));
  }
  return Median(std::move(estimates));
}

CountResult ApproxCountEstAutoCnf(const Cnf& cnf,
                                  const CountingParams& params) {
  CnfOracle oracle(cnf);
  oracle.SetUseTseitin(params.use_tseitin);
  const int fm_rows = std::max(1, CountingRows(params) / 2);
  const double rough =
      FlajoletMartinCountCnf(cnf, fm_rows, params.seed ^ 0x9E37, oracle);
  if (rough < 1.0) {
    CountResult empty;
    empty.thresh = CountingThresh(params);
    empty.rows = CountingRows(params);
    empty.oracle_calls = oracle.num_calls();
    return empty;  // UNSAT: estimate 0
  }
  const int r = DeriveR(rough, cnf.num_vars());
  CountResult result =
      EstDriver(cnf.num_vars(), params, r,
                [&](const AffineHash& h) {
                  return FindMaxRangeCnf(oracle, h);
                });
  result.oracle_calls = oracle.num_calls();
  return result;
}

CountResult ApproxCountEstAutoDnf(const Dnf& dnf,
                                  const CountingParams& params) {
  const int fm_rows = std::max(1, CountingRows(params) / 2);
  const double rough =
      FlajoletMartinCountDnf(dnf, fm_rows, params.seed ^ 0x9E37);
  if (rough < 1.0) {
    CountResult empty;
    empty.thresh = CountingThresh(params);
    empty.rows = CountingRows(params);
    return empty;
  }
  const int r = DeriveR(rough, dnf.num_vars());
  return EstDriver(dnf.num_vars(), params, r, [&](const AffineHash& h) {
    return FindMaxRangeDnf(dnf, h);
  });
}

}  // namespace mcf0
