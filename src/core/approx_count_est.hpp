/// \file approx_count_est.hpp
/// \brief ApproxModelCountEst — the Estimation-based model counter
/// (Algorithm 7, Theorem 4), NEW in the paper: the trailing-zeros sketch
/// built by the FindMaxRange subroutine.
///
/// For each row i and column j, S[i][j] = FindMaxRange(phi, H[i][j]) — the
/// deepest trailing-zero level any solution reaches under hash (i, j)
/// (property P3). Given a parameter r with 2 F0 <= 2^r <= 50 F0, the row
/// estimate is ln(1 - ratio_r) / ln(1 - 2^-r) with ratio_r the fraction of
/// columns reaching r. The rough r comes from a Flajolet-Martin-style
/// counter (2^R is a 5-approximation with probability >= 3/5, §3.4),
/// transformed to model counting by the same recipe.
///
/// Hash-family substitution relative to the paper (see DESIGN.md): affine
/// hashes instead of degree-s polynomials so that FindMaxRange is poseable
/// as XOR constraints; experiment E6 validates accuracy in the window.
#pragma once

#include "core/counting.hpp"
#include "formula/formula.hpp"
#include "oracle/cnf_oracle.hpp"

namespace mcf0 {

/// Estimation-based counter for CNF with an explicit r
/// (2 F0 <= 2^r <= 50 F0 required for the Theorem 4 guarantee).
CountResult ApproxCountEstCnf(const Cnf& cnf, const CountingParams& params,
                              int r);

/// DNF counterpart (PTIME under affine hashes; open under the paper's
/// polynomial hashes — §3.4).
CountResult ApproxCountEstDnf(const Dnf& dnf, const CountingParams& params,
                              int r);

/// Flajolet-Martin rough counter via the recipe: max trailing zeros over
/// h(Sol(phi)), median across `rows` hashes; 2^R is a 5-factor
/// approximation per row with probability >= 3/5. O(log n) oracle calls
/// per row for CNF.
double FlajoletMartinCountCnf(const Cnf& cnf, int rows, uint64_t seed,
                              CnfOracle& oracle);
double FlajoletMartinCountDnf(const Dnf& dnf, int rows, uint64_t seed);

/// Full pipeline: derive r from the FM rough count (2^r ~ 10 * rough),
/// then run the Estimation counter. Oracle calls include the FM phase.
CountResult ApproxCountEstAutoCnf(const Cnf& cnf, const CountingParams& params);
CountResult ApproxCountEstAutoDnf(const Dnf& dnf, const CountingParams& params);

}  // namespace mcf0
