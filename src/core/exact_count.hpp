/// \file exact_count.hpp
/// \brief Exact model counters used as ground truth by tests and benches.
///
/// Exact counting is #P-hard; these are ground-truth references for small
/// instances, not part of the approximate pipeline:
///  * exhaustive enumeration over all 2^n assignments (n <= 30);
///  * inclusion-exclusion over DNF terms (k <= ~25), exact in __int128 for
///    n up to 120, so DNF ground truth scales past the enumeration limit.
#pragma once

#include <cstdint>

#include "formula/formula.hpp"

namespace mcf0 {

/// |Sol(cnf)| by exhaustive enumeration. Requires num_vars <= 30.
uint64_t ExactCountEnum(const Cnf& cnf);

/// |Sol(dnf)| by exhaustive enumeration. Requires num_vars <= 30.
uint64_t ExactCountEnum(const Dnf& dnf);

/// |Sol(dnf)| by inclusion-exclusion over subsets of terms. Requires
/// num_terms <= 25 and num_vars <= 120. Exact (integer arithmetic).
double ExactDnfCountIncExc(const Dnf& dnf);

}  // namespace mcf0
