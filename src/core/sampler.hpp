/// \file sampler.hpp
/// \brief Near-uniform solution sampling via hash cells (§6 future work).
///
/// Counting and almost-uniform sampling are inter-reducible for
/// self-reducible problems (Jerrum-Valiant-Vazirani); the paper's §6 points
/// at transporting the streaming connection to sampling. This implements
/// the hashing route used by UniGen-style samplers on top of the same
/// machinery as ApproxMC: pick the cell level m so the expected cell holds
/// ~pivot solutions, enumerate the cell h_m^{-1}(0^m), and return a uniform
/// element of it. Pairwise independence makes each cell's population
/// concentrate around |Sol| / 2^m, so the output distribution is within a
/// constant factor of uniform (tested empirically in sampler_test).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "formula/formula.hpp"
#include "gf2/bitvec.hpp"

namespace mcf0 {

class Rng;

/// Tuning knobs for the sampler.
struct SamplerParams {
  /// Target expected cell population; cells outside
  /// [1, 4 * pivot] are rejected and resampled with a fresh hash.
  uint64_t pivot = 24;
  /// Maximum hash redraws before giving up.
  int max_retries = 32;
  uint64_t seed = 1;
};

/// Near-uniform sampler over Sol(dnf) (PTIME cell enumeration).
/// Returns nullopt only if the formula is unsatisfiable or every retry
/// landed on an out-of-range cell (probability vanishes with retries).
std::optional<BitVec> SampleSolutionDnf(const Dnf& dnf,
                                        const SamplerParams& params);

/// Draws `count` independent samples (fresh hashes each).
std::vector<BitVec> SampleSolutionsDnf(const Dnf& dnf, uint64_t count,
                                       const SamplerParams& params);

}  // namespace mcf0
