/// \file counting.hpp
/// \brief Shared types for the approximate model counters (§3).
#pragma once

#include <cstdint>
#include <vector>

#include "hash/hash_family.hpp"

namespace mcf0 {

class Rng;

/// Knobs shared by the three counting algorithms.
struct CountingParams {
  double eps = 0.8;     ///< tolerance of the (eps, delta) guarantee
  double delta = 0.2;   ///< confidence of the (eps, delta) guarantee
  uint64_t seed = 1;
  /// Overrides for experiments; 0 = paper formulas (Thresh = 96/eps^2,
  /// rows = 35 log2(1/delta)).
  uint64_t thresh_override = 0;
  int rows_override = 0;
  /// Hash family for the XOR constraints.
  AffineHashKind hash_kind = AffineHashKind::kToeplitz;
  /// When > 0, sample sparse-XOR rows with this density (§6, E15).
  double sparse_density = 0.0;
  /// ApproxMC2-style binary search for m instead of the linear scan of
  /// Algorithm 5 ("Further Optimizations", §3.2).
  bool binary_search = false;
  /// Tseitin-encode XOR constraints instead of native propagation (E14).
  bool use_tseitin = false;
};

/// Result of one counting run.
struct CountResult {
  double estimate = 0.0;
  uint64_t oracle_calls = 0;  ///< NP-oracle (SAT) invocations; 0 for DNF paths
  int rows = 0;
  uint64_t thresh = 0;
  std::vector<double> row_estimates;  ///< pre-median, for diagnostics
};

/// Thresh = 96 / eps^2 (Algorithms 5-7), honoring overrides.
uint64_t CountingThresh(const CountingParams& params);

/// t = 35 log2(1/delta) rows, honoring overrides.
int CountingRows(const CountingParams& params);

/// Samples the row hash per the configured family.
AffineHash SampleCountingHash(int n, int m, const CountingParams& params,
                              Rng& rng);

}  // namespace mcf0
