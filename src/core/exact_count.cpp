#include "core/exact_count.hpp"

namespace mcf0 {
namespace {

template <typename Formula>
uint64_t EnumCount(const Formula& f) {
  const int n = f.num_vars();
  MCF0_CHECK(n <= 30);
  uint64_t count = 0;
  BitVec x(n);
  const uint64_t total = 1ull << n;
  for (uint64_t v = 0; v < total; ++v) {
    if (f.Eval(x)) ++count;
    x.Increment();
  }
  return count;
}

}  // namespace

uint64_t ExactCountEnum(const Cnf& cnf) { return EnumCount(cnf); }

uint64_t ExactCountEnum(const Dnf& dnf) { return EnumCount(dnf); }

double ExactDnfCountIncExc(const Dnf& dnf) {
  const int k = dnf.num_terms();
  const int n = dnf.num_vars();
  MCF0_CHECK(k <= 25);
  MCF0_CHECK(n <= 120);
  // |union T_i| = sum over non-empty subsets S of (-1)^{|S|+1} |intersect S|,
  // where the intersection of consistent terms fixing w variables has
  // 2^{n-w} solutions.
  __int128 total = 0;
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    // Merge the fixed assignments of the selected terms.
    std::vector<int8_t> fixed(n, -1);  // -1 free, 0/1 fixed
    bool consistent = true;
    int width = 0;
    int bits = 0;
    for (int i = 0; i < k && consistent; ++i) {
      if (((mask >> i) & 1) == 0) continue;
      ++bits;
      for (const Lit& l : dnf.terms()[i].lits()) {
        const int8_t want = l.neg ? 0 : 1;
        if (fixed[l.var] == -1) {
          fixed[l.var] = want;
          ++width;
        } else if (fixed[l.var] != want) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) continue;
    const __int128 cell = static_cast<__int128>(1) << (n - width);
    total += (bits % 2 == 1) ? cell : -cell;
  }
  MCF0_CHECK(total >= 0);
  return static_cast<double>(total);
}

}  // namespace mcf0
