#include "core/karp_luby.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace mcf0 {
namespace {

/// Shared sampler state: term-weight CDF and the canonical-term trial.
class KarpLubySampler {
 public:
  explicit KarpLubySampler(const Dnf& dnf) : dnf_(&dnf) {
    const int n = dnf.num_vars();
    weights_total_ = 0.0;
    cdf_.reserve(dnf.num_terms());
    for (const Term& t : dnf.terms()) {
      weights_total_ += std::pow(2.0, n - t.Width());
      cdf_.push_back(weights_total_);
    }
  }

  /// U = sum_i |Sol(T_i)|.
  double union_bound() const { return weights_total_; }

  bool has_terms() const { return !cdf_.empty(); }

  /// One coverage trial: true iff the sampled (term, solution) pair is
  /// canonical.
  bool Trial(Rng& rng) const {
    // Term index by CDF inversion.
    const double u = rng.NextDouble() * weights_total_;
    size_t idx = 0;
    while (idx + 1 < cdf_.size() && cdf_[idx] <= u) ++idx;
    const Term& term = dnf_->terms()[idx];
    // Uniform solution of the term: fixed literals + random free bits.
    const int n = dnf_->num_vars();
    BitVec x = BitVec::Random(n, rng);
    for (const Lit& l : term.lits()) x.Set(l.var, !l.neg);
    // Canonical check: is idx the first satisfying term?
    for (size_t j = 0; j < idx; ++j) {
      if (dnf_->terms()[j].Eval(x)) return false;
    }
    return true;
  }

 private:
  const Dnf* dnf_;
  std::vector<double> cdf_;
  double weights_total_;
};

}  // namespace

KarpLubyResult KarpLubyFixed(const Dnf& dnf, double eps, double delta,
                             Rng& rng) {
  KarpLubyResult result;
  KarpLubySampler sampler(dnf);
  if (!sampler.has_terms()) return result;
  const double k = dnf.num_terms();
  // Multiplicative Chernoff with p >= 1/k: N >= 3 k ln(2/delta) / eps^2.
  const auto num_samples = static_cast<uint64_t>(
      std::ceil(3.0 * k * std::log(2.0 / delta) / (eps * eps)));
  uint64_t successes = 0;
  for (uint64_t i = 0; i < num_samples; ++i) {
    if (sampler.Trial(rng)) ++successes;
  }
  result.samples = num_samples;
  result.estimate = sampler.union_bound() * static_cast<double>(successes) /
                    static_cast<double>(num_samples);
  return result;
}

KarpLubyResult KarpLubyStopping(const Dnf& dnf, double eps, double delta,
                                Rng& rng) {
  KarpLubyResult result;
  KarpLubySampler sampler(dnf);
  if (!sampler.has_terms()) return result;
  // DKLR stopping rule: Upsilon = 1 + 4(e-2)(1+eps) ln(2/delta) / eps^2.
  const double upsilon =
      1.0 + 4.0 * (std::exp(1.0) - 2.0) * (1.0 + eps) *
                std::log(2.0 / delta) / (eps * eps);
  const auto target = static_cast<uint64_t>(std::ceil(upsilon));
  uint64_t successes = 0;
  uint64_t samples = 0;
  // Success probability is >= 1/k, so the expected stopping time is about
  // k * upsilon; the hard cap only guards degenerate formulas.
  const uint64_t cap =
      1000ull * static_cast<uint64_t>(dnf.num_terms() + 1) * (target + 1);
  while (successes < target && samples < cap) {
    ++samples;
    if (sampler.Trial(rng)) ++successes;
  }
  result.samples = samples;
  result.estimate =
      sampler.union_bound() * upsilon / static_cast<double>(samples);
  return result;
}

}  // namespace mcf0
