/// \file karp_luby.hpp
/// \brief Karp-Luby Monte Carlo FPRAS for #DNF — the baseline family the
/// hashing-based FPRAS is compared against (§1, §3.5, experiment E5).
///
/// The coverage estimator: sample a term i with probability proportional to
/// 2^{n - width(T_i)}, a uniform solution x of T_i, and score 1 iff i is
/// the canonical (first satisfying) term of x. The success probability is
/// |Sol(phi)| / U with U = sum_i |Sol(T_i)| >= |Sol(phi)| / k, so
/// O(k / eps^2 * log(1/delta)) samples give an (eps, delta)-estimate.
///
/// Two sample-size policies:
///  * fixed N from the multiplicative Chernoff bound, and
///  * the Dagum-Karp-Luby-Ross optimal stopping rule [22]: sample until the
///    success count reaches Upsilon = 1 + 4(e-2)(1+eps) ln(2/delta)/eps^2,
///    then estimate p = Upsilon / N_stop — within (eps, delta) with an
///    expected sample count proportional to the (unknown) 1/p.
#pragma once

#include <cstdint>

#include "formula/formula.hpp"

namespace mcf0 {

class Rng;

/// Result of a Monte Carlo run.
struct KarpLubyResult {
  double estimate = 0.0;
  uint64_t samples = 0;
};

/// Fixed-sample-size Karp-Luby (multiplicative Chernoff sizing).
KarpLubyResult KarpLubyFixed(const Dnf& dnf, double eps, double delta,
                             Rng& rng);

/// DKLR optimal-stopping Karp-Luby.
KarpLubyResult KarpLubyStopping(const Dnf& dnf, double eps, double delta,
                                Rng& rng);

}  // namespace mcf0
