/// \file status.hpp
/// \brief RocksDB/Arrow-style error handling for fallible public APIs.
///
/// `Status` carries an error code and message; `Result<T>` is a Status or a
/// value. Library-internal invariant violations use MCF0_CHECK instead;
/// Status is reserved for errors a caller can reasonably hit (bad input
/// files, out-of-domain parameters, resource limits).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace mcf0 {

/// Error categories used across the library. The numeric values are part
/// of the network protocol (`mcf0 serve` error frames carry the code as a
/// uint16; see docs/serve.md), so existing values are frozen — append
/// only.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,
  kResourceExhausted = 3,
  kNotSupported = 4,
  kInternal = 5,
  /// A required prior step has not happened (e.g. Add on a closed
  /// Producer handle); retrying without fixing the caller cannot succeed.
  kFailedPrecondition = 6,
  /// The counterpart/resource is gone or unreachable (connection refused,
  /// peer hung up, stream write failed); retrying later may succeed.
  kUnavailable = 7,
  /// A wall-clock bound expired before the operation completed.
  kDeadlineExceeded = 8,
};

/// The stable name of a code ("InvalidArgument"); used by ToString and the
/// protocol error-frame rendering.
constexpr const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
  }
  return "Unknown";
}

/// A lightweight success/error value. Copyable; the OK status carries no
/// allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// A status with an arbitrary (possibly peer-supplied) code — the
  /// protocol layer's error-frame decoder. kOk yields an OK status and
  /// drops the message.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// The same code with `prefix + ": "` prepended to the message — error
  /// attribution (e.g. naming the input file a streaming merge failed on).
  /// No-op on OK statuses and empty prefixes.
  Status WithPrefix(const std::string& prefix) const {
    if (ok() || prefix.empty()) return *this;
    return Status(code_, prefix + ": " + message_);
  }

  /// The same code with " (detail)" appended to the message — trailing
  /// context for an error already attributed to a site (e.g. the batch
  /// sequence number a transport error surfaced on), where WithPrefix's
  /// leading attribution would read backwards. No-op on OK statuses and
  /// empty details, so call sites can annotate unconditionally.
  Status Annotate(const std::string& detail) const {
    if (ok() || detail.empty()) return *this;
    return Status(code_, message_ + " (" + detail + ")");
  }

  /// Human-readable rendering, e.g. "ParseError: bad header".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error container. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  // NOLINT(google-explicit-constructor)
  Result(T value) : data_(std::move(value)) {}
  /// Implicit construction from a non-OK status (error).
  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    MCF0_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when this result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    MCF0_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    MCF0_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    MCF0_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mcf0
