/// \file status.hpp
/// \brief RocksDB/Arrow-style error handling for fallible public APIs.
///
/// `Status` carries an error code and message; `Result<T>` is a Status or a
/// value. Library-internal invariant violations use MCF0_CHECK instead;
/// Status is reserved for errors a caller can reasonably hit (bad input
/// files, out-of-domain parameters, resource limits).
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "common/check.hpp"

namespace mcf0 {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kResourceExhausted,
  kNotSupported,
  kInternal,
};

/// A lightweight success/error value. Copyable; the OK status carries no
/// allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// The same code with `prefix + ": "` prepended to the message — error
  /// attribution (e.g. naming the input file a streaming merge failed on).
  /// No-op on OK statuses and empty prefixes.
  Status WithPrefix(const std::string& prefix) const {
    if (ok() || prefix.empty()) return *this;
    return Status(code_, prefix + ": " + message_);
  }

  /// Human-readable rendering, e.g. "ParseError: bad header".
  std::string ToString() const {
    if (ok()) return "OK";
    const char* name = "Unknown";
    switch (code_) {
      case StatusCode::kOk: name = "OK"; break;
      case StatusCode::kInvalidArgument: name = "InvalidArgument"; break;
      case StatusCode::kParseError: name = "ParseError"; break;
      case StatusCode::kResourceExhausted: name = "ResourceExhausted"; break;
      case StatusCode::kNotSupported: name = "NotSupported"; break;
      case StatusCode::kInternal: name = "Internal"; break;
    }
    return std::string(name) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value-or-error container. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  // NOLINT(google-explicit-constructor)
  Result(T value) : data_(std::move(value)) {}
  /// Implicit construction from a non-OK status (error).
  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {
    MCF0_CHECK(!std::get<Status>(data_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; OK when this result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  const T& value() const& {
    MCF0_CHECK(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    MCF0_CHECK(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    MCF0_CHECK(ok());
    return std::get<T>(std::move(data_));
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace mcf0
