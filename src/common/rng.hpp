/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// All randomized components of the library take an explicit `Rng&` so that
/// experiments and tests are reproducible from a single seed. The generator
/// is xoshiro256** seeded via SplitMix64, which has no detectable bias in
/// the low bits (unlike LCGs) — important because hash-family sampling
/// consumes raw 64-bit words bit-by-bit.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace mcf0 {

/// xoshiro256** PRNG. Not cryptographic; statistically strong and fast.
class Rng {
 public:
  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound) {
    MCF0_CHECK(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<uint64_t>(m);
    if (lo < bound) {
      const uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform bit.
  bool NextBool() { return (NextU64() >> 63) != 0; }

  /// Bernoulli(p) draw.
  bool NextBernoulli(double p) {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53 < p;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Derives an independent child generator; used to hand each trial /
  /// site / hash function its own stream.
  Rng Fork() { return Rng(NextU64() ^ 0xD1B54A32D192ED03ull); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace mcf0
