/// \file median.hpp
/// \brief Median utility for the paper's median-of-rows amplification.
#pragma once

#include <algorithm>
#include <vector>

#include "common/check.hpp"

namespace mcf0 {

/// Median of a non-empty vector (lower median for even sizes). Copies the
/// input; estimate rows are tiny.
inline double Median(std::vector<double> values) {
  MCF0_CHECK(!values.empty());
  const size_t mid = (values.size() - 1) / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  return values[mid];
}

}  // namespace mcf0
