/// \file check.hpp
/// \brief Internal invariant checking macros.
///
/// `MCF0_CHECK` is always on (cheap invariants on API boundaries);
/// `MCF0_DCHECK` compiles out in release builds (hot-loop invariants).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mcf0 {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "MCF0_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace mcf0

#define MCF0_CHECK(expr)                                   \
  do {                                                     \
    if (!(expr)) ::mcf0::CheckFailed(__FILE__, __LINE__, #expr); \
  } while (0)

#ifndef NDEBUG
#define MCF0_DCHECK(expr) MCF0_CHECK(expr)
#else
#define MCF0_DCHECK(expr) \
  do {                    \
  } while (0)
#endif
