/// \file timer.hpp
/// \brief Wall-clock timing helper for experiments.
#pragma once

#include <chrono>

namespace mcf0 {

/// Monotonic stopwatch. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mcf0
