# Build-time stamping of src/common/version.hpp.in (invoked by the
# mcf0_version_header custom target so the git SHA tracks the source tree
# across rebuilds, not just the last CMake configure).
#
# Inputs (-D): VERSION_IN, VERSION_OUT, PROJECT_VERSION,
# PROJECT_VERSION_MAJOR/MINOR/PATCH, SOURCE_DIR, GIT_EXECUTABLE (optional).
set(MCF0_GIT_SHA "unknown")
if(GIT_EXECUTABLE)
  execute_process(
    COMMAND "${GIT_EXECUTABLE}" rev-parse --short HEAD
    WORKING_DIRECTORY "${SOURCE_DIR}"
    OUTPUT_VARIABLE MCF0_GIT_SHA_OUT
    OUTPUT_STRIP_TRAILING_WHITESPACE
    RESULT_VARIABLE MCF0_GIT_SHA_RESULT
    ERROR_QUIET)
  if(MCF0_GIT_SHA_RESULT EQUAL 0)
    set(MCF0_GIT_SHA "${MCF0_GIT_SHA_OUT}")
  endif()
endif()
# configure_file only rewrites on content change, so dependents recompile
# only when the SHA (or version) actually moved.
configure_file("${VERSION_IN}" "${VERSION_OUT}" @ONLY)
