/// \file f0_sketch.hpp
/// \brief The three classic F0 sketches unified by the paper (§3,
/// Algorithms 1-4): Bucketing (Gibbons-Tirthapura), Minimum (KMV /
/// Bar-Yossef et al.), and Estimation (trailing zeros), plus the
/// Flajolet-Martin rough estimator.
///
/// Each class below is a single sketch *row*; `F0Estimator` runs the
/// t = 35 log2(1/delta) independent rows of Algorithm 1 and returns the
/// median of the row estimates (ComputeEst, Algorithm 4). The sketch state
/// of each row is exactly the paper's S[i]:
///
///   Bucketing:  S[i] = (bucket of stream elements in the cell, level m_i)
///   Minimum:    S[i] = Thresh lexicographically smallest values of h(a)
///   Estimation: S[i][j] = max trailing zeros of H[i][j](a)
///
/// Streams deliver 64-bit elements from the universe {0,1}^n (n <= 64).
/// Every sketch exposes SpaceBits() so the space experiments (E2) report
/// actual sketch footprints rather than asymptotics.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/median.hpp"
#include "common/rng.hpp"
#include "gf2/bitvec.hpp"
#include "hash/gf2_poly.hpp"
#include "hash/hash_family.hpp"

namespace mcf0 {

class Rng;

/// One Bucketing row: keep the stream elements x with h_m(x) = 0^m,
/// doubling the sampling level m when the bucket exceeds `thresh`.
class BucketingSketchRow {
 public:
  BucketingSketchRow(int n, uint64_t thresh, Rng& rng);

  /// Rebuilds a row from explicit state — the engine entry point
  /// (src/engine): SketchCodec decoding and Merge() both reconstruct rows
  /// this way. `bucket` must be a subset of the cell at `level`.
  BucketingSketchRow(AffineHash h, uint64_t thresh, int level,
                     std::unordered_set<uint64_t> bucket);

  void Add(uint64_t x);

  /// Batch absorb; byte-identical to calling Add(x) in order (the level
  /// escalation sequence is order-sensitive, so the batch path keeps it).
  void Add(std::span<const uint64_t> xs);

  /// |bucket| * 2^level.
  double Estimate() const;

  int level() const { return level_; }
  size_t bucket_size() const { return bucket_.size(); }
  uint64_t thresh() const { return thresh_; }
  const AffineHash& hash() const { return h_; }
  const std::unordered_set<uint64_t>& bucket() const { return bucket_; }
  size_t SpaceBits() const;

  /// First `level` bits of h(x) all zero? The cells are nested in `level`,
  /// which is what makes buckets union-mergeable (re-filter to the deeper
  /// side's level, then keep escalating while over thresh).
  bool InCell(uint64_t x, int level) const;

 private:

  int n_;
  uint64_t thresh_;
  AffineHash h_;  // n -> n
  int level_ = 0;
  std::unordered_set<uint64_t> bucket_;
};

/// One Minimum (KMV) row: the `thresh` lexicographically smallest distinct
/// values of h(a) for h: {0,1}^n -> {0,1}^{3n}.
class MinimumSketchRow {
 public:
  MinimumSketchRow(int n, uint64_t thresh, Rng& rng);

  /// Wraps an explicitly sampled hash — the transformation-recipe entry
  /// point: the model counting algorithm (§3.3) builds this same sketch by
  /// feeding FindMin outputs through AddHashed, then calls Estimate().
  MinimumSketchRow(AffineHash h, uint64_t thresh);

  void Add(uint64_t x);

  /// Batch absorb; byte-identical to item-by-item Add (set insertion is
  /// order-independent).
  void Add(std::span<const uint64_t> xs);

  /// Inserts an already-hashed value — the merge path used by the
  /// structured-set streaming algorithms (§5) and the distributed
  /// coordinator (§4), which receive hash values rather than elements.
  void AddHashed(const BitVec& value);

  /// thresh * 2^m / max(S) when saturated; |S| (exact regime) otherwise.
  double Estimate() const;

  bool saturated() const { return values_.size() >= thresh_; }
  const std::set<BitVec>& values() const { return values_; }
  uint64_t thresh() const { return thresh_; }
  size_t SpaceBits() const;
  int output_bits() const { return h_.m(); }
  const AffineHash& hash() const { return h_; }

 private:
  int n_;
  uint64_t thresh_;
  AffineHash h_;  // n -> 3n
  std::set<BitVec> values_;
};

/// One Estimation row: `num_cols` s-wise independent hash functions; cell j
/// stores the maximum trailing-zero count seen under hash j.
class EstimationSketchRow {
 public:
  /// `field` supplies GF(2^n) arithmetic and must outlive the row.
  EstimationSketchRow(const Gf2Field* field, int num_cols, int s, Rng& rng);

  /// Cells-only row with no hash functions of its own — the
  /// transformation-recipe entry point: the model counting algorithm
  /// (§3.4) fills cells via Merge() with FindMaxRange results and calls
  /// EstimateWithR(). Add() is invalid on such a row.
  explicit EstimationSketchRow(int num_cols);

  /// Rebuilds a row from explicit hash + cell state (the engine entry
  /// point). `field` must outlive the row and match the hashes' field;
  /// hashes may be empty for a cells-only row (then field may be null).
  EstimationSketchRow(const Gf2Field* field,
                      std::vector<PolynomialHash> hashes,
                      std::vector<int> cells);

  void Add(uint64_t x);

  /// Batch absorb: each hash evaluates the whole block through
  /// gf2k::HornerBatch (coefficients, modulus, and kernel dispatch shared
  /// across B elements — the tentpole hot path). Byte-identical to
  /// item-by-item Add: cells take maxima, which commute.
  void Add(std::span<const uint64_t> xs);

  /// Raises cell j to at least `t` — the distributed merge path (§4).
  void Merge(int j, int t);

  /// Lemma 3 estimator for a given r: ln(1 - ratio) / ln(1 - 2^-r) where
  /// ratio = fraction of cells with S[j] >= r. Returns +inf when every
  /// cell clears r (r chosen far too small).
  double EstimateWithR(int r) const;

  const std::vector<int>& cells() const { return cells_; }
  const std::vector<PolynomialHash>& hashes() const { return hashes_; }
  /// Moves the hash state out of a row being discarded — the v2 decode
  /// path hands a replayed row's hashes to the row actually decoded
  /// instead of copying thresh * s coefficients.
  std::vector<PolynomialHash> TakeHashes() && { return std::move(hashes_); }
  size_t SpaceBits() const;

 private:
  const Gf2Field* field_;
  std::vector<PolynomialHash> hashes_;
  std::vector<int> cells_;
};

/// Flajolet-Martin / AMS rough estimator row: 2^(max trailing zeros) is a
/// 5-factor approximation with probability >= 3/5. Used to supply the `r`
/// parameter of the Estimation algorithm.
class FlajoletMartinRow {
 public:
  FlajoletMartinRow(int n, Rng& rng);

  /// Rebuilds a row from explicit state (the engine entry point).
  FlajoletMartinRow(AffineHash h, int max_tz);

  void Add(uint64_t x);

  /// Batch absorb; byte-identical to item-by-item Add (max commutes).
  void Add(std::span<const uint64_t> xs);

  /// Raises the counter to at least `t` — the union-merge path.
  void Merge(int t) {
    if (t > max_tz_) max_tz_ = t;
  }

  int max_trailing_zeros() const { return max_tz_; }
  const AffineHash& hash() const { return h_; }
  double Estimate() const { return std::pow(2.0, max_tz_); }

 private:
  int n_;
  AffineHash h_;  // n -> n, pairwise independent
  int max_tz_ = 0;
};

/// Which of the three strategies a driver should run.
enum class F0Algorithm { kBucketing, kMinimum, kEstimation };

/// Parameters for the ComputeF0 driver (Algorithm 1).
struct F0Params {
  int n = 32;              ///< universe is {0,1}^n, n <= 64
  double eps = 0.8;        ///< relative accuracy
  double delta = 0.2;      ///< failure probability
  F0Algorithm algorithm = F0Algorithm::kMinimum;
  uint64_t seed = 1;
  /// Overrides for experiments; 0 = use the paper's formulas
  /// (Thresh = ceil(96 / eps^2), rows = ceil(35 * log2(1/delta))).
  uint64_t thresh_override = 0;
  int rows_override = 0;
  int s_override = 0;      ///< Estimation independence; 0 = 10 log2(1/eps)

  /// Field-wise equality; sketches are only mergeable when the parameters
  /// (and hence the seeded hash functions) agree exactly.
  friend bool operator==(const F0Params&, const F0Params&) = default;
};

/// Thresh = 96 / eps^2 (Algorithm 1 line 1), honoring overrides.
uint64_t F0Thresh(const F0Params& params);
/// t = 35 log2(1/delta) rows (Algorithm 1 line 2), honoring overrides.
int F0Rows(const F0Params& params);
/// Estimation hash independence s = max(2, 10 log2(1/eps)) (§3.4),
/// honoring overrides. Shared with the sketch codec so serialized rows
/// are validated against exactly what the constructor would sample.
int F0IndependenceS(const F0Params& params);

/// Process-wide count of sketch-row hash draws (F0RowSampler and
/// StructuredF0RowSampler alike). Construction-cost observability: the
/// sealed-API contract is that encoding a canonical sketch performs *zero*
/// draws, and the engine/E18 tests pin that by diffing this counter around
/// an Encode() call. Monotone, atomic, never reset.
uint64_t TotalSamplerRowDraws();

namespace internal {
/// Bumps TotalSamplerRowDraws(); for the row samplers only.
void BumpSamplerRowDraws();
}  // namespace internal

/// Replays the deterministic hash sampling of `F0Estimator`'s constructor
/// one row at a time. The constructor itself draws rows through this class,
/// so the sampling order is defined in exactly one place — which is what
/// lets the v2 sketch wire format elide hash state entirely ("canonical
/// hashes", docs/wire_format.md): a decoder re-derives every hash from
/// `params.seed` by replaying the same draws, row by row, without holding
/// more than one row's hashes in memory.
class F0RowSampler {
 public:
  explicit F0RowSampler(const F0Params& params);

  /// Fresh (empty) rows with the next sampled hash state. Which getter is
  /// valid follows params.algorithm; Estimation draws interleave one
  /// Estimation row and one FM row per driver row, in that order.
  BucketingSketchRow NextBucketingRow();
  MinimumSketchRow NextMinimumRow();
  /// `field` supplies GF(2^n) arithmetic for the row's hashes and must
  /// outlive the returned row.
  std::pair<EstimationSketchRow, FlajoletMartinRow> NextEstimationPair(
      const Gf2Field* field);

 private:
  F0Params params_;
  uint64_t thresh_ = 0;
  int s_ = 0;
  Rng rng_;
};

/// The ComputeF0 driver: t independent rows of the chosen sketch, median
/// of row estimates. For Estimation, FM rows run in parallel to supply r
/// (§3.4), with r = round(log2(10 * F̂_FM)) placing 2^r near the middle of
/// the validity window [2 F0, 50 F0].
class F0Estimator {
 public:
  /// The sealed mutation exchange. An estimator never hands out mutable
  /// references to its rows; to alter row state a caller must *take the
  /// whole state out* (ReleaseParts, which consumes the estimator) and put
  /// it back (FromParts). That linear-type discipline is what lets
  /// `hashes_canonical` survive by construction: the flag rides along in
  /// the bundle, so there is no window in which hashes could be swapped
  /// behind a live attestation.
  ///
  /// `hashes_canonical == true` attests that every row's hash function
  /// (including representation-bit counts) equals the canonical
  /// F0RowSampler replay from `params.seed`. Only two producers set it:
  /// the sampling constructor and the codec's elided-decode path — both by
  /// construction, never by comparison. Row *contents* (buckets, KMV
  /// values, cells, counters) may be exchanged freely under a true flag;
  /// swapping a row's hash function voids the attestation, so any code
  /// doing that must clear the flag. The v2 encoder elides hash state on
  /// the strength of this bit (O(state) encode, no sampler replay).
  class Parts {
   public:
    Parts(Parts&&) = default;
    Parts& operator=(Parts&&) = default;
    Parts(const Parts&) = delete;
    Parts& operator=(const Parts&) = delete;

    F0Params params;
    std::unique_ptr<Gf2Field> field;  // Estimation only
    std::vector<BucketingSketchRow> bucketing;
    std::vector<MinimumSketchRow> minimum;
    std::vector<EstimationSketchRow> estimation;
    std::vector<FlajoletMartinRow> fm;
    bool hashes_canonical = false;

   private:
    Parts() = default;
    friend class F0Estimator;
  };

  explicit F0Estimator(const F0Params& params);
  ~F0Estimator();

  F0Estimator(F0Estimator&&) = default;
  F0Estimator& operator=(F0Estimator&&) = default;

  /// Moves the entire state out, consuming the estimator (it is left
  /// moved-from: destroy or assign only). The returned bundle is the only
  /// mutable view of row state the class ever grants.
  Parts ReleaseParts() &&;

  /// Rebuilds an estimator from a state bundle — the engine entry point
  /// (src/engine/sketch_codec decode, sketch_merge row exchange). Exactly
  /// the row vectors matching `parts.params.algorithm` may be non-empty
  /// and must hold the row count the parameters imply; for Estimation,
  /// `parts.field` owns the GF(2^n) arithmetic the rows' hashes point
  /// into. `parts.hashes_canonical` is trusted (see Parts).
  static F0Estimator FromParts(Parts parts);

  void Add(uint64_t x);

  /// Batch absorb: hands the whole block to each row's span-Add, so one
  /// row's hash coefficients stay hot across B elements instead of being
  /// re-fetched per element. Byte-identical to absorbing the block
  /// item-by-item in order — the engine's batched workers and E17/E18
  /// gates pin that.
  void Add(std::span<const uint64_t> xs);

  double Estimate() const;

  /// Total sketch footprint across rows (hash representations included).
  size_t SpaceBits() const;

  const F0Params& params() const { return params_; }

  /// True iff every row hash is attested to equal the canonical
  /// F0RowSampler replay (see Parts). The sampling constructor starts
  /// true; merges preserve it (they exchange row contents, never hashes).
  bool hashes_canonical() const { return hashes_canonical_; }

  /// Engine read access (src/engine): SketchCodec serializes row state,
  /// Merge() unions replicas row-by-row. Other callers should treat rows
  /// as opaque; mutation goes through the Parts exchange above.
  const Gf2Field* field() const { return field_.get(); }
  const std::vector<BucketingSketchRow>& bucketing_rows() const {
    return bucketing_rows_;
  }
  const std::vector<MinimumSketchRow>& minimum_rows() const {
    return minimum_rows_;
  }
  const std::vector<EstimationSketchRow>& estimation_rows() const {
    return estimation_rows_;
  }
  const std::vector<FlajoletMartinRow>& fm_rows() const { return fm_rows_; }

  /// An empty Parts bundle to fill by hand (decode layers, tests). Its
  /// hashes_canonical starts false — hand-assembled state is presumed
  /// non-canonical until a blessed producer says otherwise.
  static Parts EmptyParts() { return Parts(); }

 private:
  F0Estimator() = default;

  F0Params params_;
  std::unique_ptr<Gf2Field> field_;  // Estimation only
  std::vector<BucketingSketchRow> bucketing_rows_;
  std::vector<MinimumSketchRow> minimum_rows_;
  std::vector<EstimationSketchRow> estimation_rows_;
  std::vector<FlajoletMartinRow> fm_rows_;
  bool hashes_canonical_ = false;
};

}  // namespace mcf0
