#include "streaming/f0_sketch.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace mcf0 {

// ---- BucketingSketchRow -------------------------------------------------

BucketingSketchRow::BucketingSketchRow(int n, uint64_t thresh, Rng& rng)
    : n_(n), thresh_(thresh), h_(AffineHash::SampleToeplitz(n, n, rng)) {
  MCF0_CHECK(n >= 1 && n <= 64);
  MCF0_CHECK(thresh >= 1);
}

BucketingSketchRow::BucketingSketchRow(AffineHash h, uint64_t thresh,
                                       int level,
                                       std::unordered_set<uint64_t> bucket)
    : n_(h.n()),
      thresh_(thresh),
      h_(std::move(h)),
      level_(level),
      bucket_(std::move(bucket)) {
  MCF0_CHECK(n_ >= 1 && n_ <= 64 && h_.m() == n_);
  MCF0_CHECK(thresh >= 1);
  MCF0_CHECK(level >= 0 && level <= n_);
}

bool BucketingSketchRow::InCell(uint64_t x, int level) const {
  if (level == 0) return true;
  const uint64_t hash = h_.Eval64(x);
  // First `level` bits of the n-bit value are its high bits.
  return (hash >> (n_ - level)) == 0;
}

void BucketingSketchRow::Add(uint64_t x) {
  if (!InCell(x, level_)) return;
  bucket_.insert(x);
  while (bucket_.size() > thresh_ && level_ < n_) {
    ++level_;
    for (auto it = bucket_.begin(); it != bucket_.end();) {
      if (!InCell(*it, level_)) {
        it = bucket_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BucketingSketchRow::Add(std::span<const uint64_t> xs) {
  // The insert/escalate sequence is order-sensitive; replay it exactly.
  for (const uint64_t x : xs) Add(x);
}

double BucketingSketchRow::Estimate() const {
  return static_cast<double>(bucket_.size()) * std::pow(2.0, level_);
}

size_t BucketingSketchRow::SpaceBits() const {
  return bucket_.size() * static_cast<size_t>(n_) + h_.RepresentationBits() +
         /*level counter*/ 8;
}

// ---- MinimumSketchRow ---------------------------------------------------

MinimumSketchRow::MinimumSketchRow(int n, uint64_t thresh, Rng& rng)
    : n_(n), thresh_(thresh), h_(AffineHash::SampleToeplitz(n, 3 * n, rng)) {
  MCF0_CHECK(n >= 1 && n <= 64);
  MCF0_CHECK(thresh >= 1);
}

MinimumSketchRow::MinimumSketchRow(AffineHash h, uint64_t thresh)
    : n_(h.n()), thresh_(thresh), h_(std::move(h)) {
  MCF0_CHECK(thresh >= 1);
}

void MinimumSketchRow::Add(uint64_t x) {
  AddHashed(
      h_.Eval(BitVec::FromU64(n_ == 64 ? x : (x & ((1ull << n_) - 1)), n_)));
}

void MinimumSketchRow::Add(std::span<const uint64_t> xs) {
  for (const uint64_t x : xs) Add(x);
}

void MinimumSketchRow::AddHashed(const BitVec& value) {
  MCF0_DCHECK(value.size() == h_.m());
  if (values_.size() >= thresh_) {
    auto last = std::prev(values_.end());
    if (!(value < *last)) return;  // not among the thresh smallest
    values_.insert(value);
    if (values_.size() > thresh_) values_.erase(std::prev(values_.end()));
  } else {
    values_.insert(value);
  }
}

double MinimumSketchRow::Estimate() const {
  if (values_.size() < thresh_) {
    // Sub-threshold regime: every distinct hash value is retained, so the
    // sketch size itself is the (collision-free w.h.p. at 3n bits) count.
    return static_cast<double>(values_.size());
  }
  const BitVec& max = *values_.rbegin();
  const double max_value = max.ToDouble();
  MCF0_DCHECK(max_value > 0.0);
  return static_cast<double>(thresh_) * std::pow(2.0, h_.m()) / max_value;
}

size_t MinimumSketchRow::SpaceBits() const {
  return values_.size() * static_cast<size_t>(h_.m()) + h_.RepresentationBits();
}

// ---- EstimationSketchRow ------------------------------------------------

EstimationSketchRow::EstimationSketchRow(const Gf2Field* field, int num_cols,
                                         int s, Rng& rng)
    : field_(field) {
  MCF0_CHECK(num_cols >= 1 && s >= 1);
  hashes_.reserve(num_cols);
  for (int j = 0; j < num_cols; ++j) {
    hashes_.push_back(PolynomialHash::Sample(field_, s, rng));
  }
  cells_.assign(num_cols, 0);
}

EstimationSketchRow::EstimationSketchRow(int num_cols) : field_(nullptr) {
  MCF0_CHECK(num_cols >= 1);
  cells_.assign(num_cols, 0);
}

EstimationSketchRow::EstimationSketchRow(const Gf2Field* field,
                                         std::vector<PolynomialHash> hashes,
                                         std::vector<int> cells)
    : field_(field), hashes_(std::move(hashes)), cells_(std::move(cells)) {
  MCF0_CHECK(!cells_.empty());
  MCF0_CHECK(hashes_.empty() || hashes_.size() == cells_.size());
  MCF0_CHECK(hashes_.empty() || field_ != nullptr);
}

void EstimationSketchRow::Add(uint64_t x) {
  MCF0_CHECK(field_ != nullptr);  // cells-only rows are Merge-fed
  const int w = field_->degree();
  for (size_t j = 0; j < hashes_.size(); ++j) {
    const int t = TrailZero64(hashes_[j].Eval(x), w);
    if (t > cells_[j]) cells_[j] = t;
  }
}

void EstimationSketchRow::Add(std::span<const uint64_t> xs) {
  MCF0_CHECK(field_ != nullptr);  // cells-only rows are Merge-fed
  const int w = field_->degree();
  // Per-hash Horner over a block: coefficients, modulus, and kernel
  // dispatch amortize across the block; 256 elements keeps the scratch
  // on the stack.
  std::array<uint64_t, 256> hashed;
  for (size_t base = 0; base < xs.size(); base += hashed.size()) {
    const size_t len = std::min(hashed.size(), xs.size() - base);
    const auto block = xs.subspan(base, len);
    const std::span<uint64_t> out(hashed.data(), len);
    for (size_t j = 0; j < hashes_.size(); ++j) {
      hashes_[j].EvalBatch(block, out);
      int cell = cells_[j];
      for (const uint64_t h : out) {
        const int t = TrailZero64(h, w);
        if (t > cell) cell = t;
      }
      cells_[j] = cell;
    }
  }
}

void EstimationSketchRow::Merge(int j, int t) {
  MCF0_CHECK(j >= 0 && j < static_cast<int>(cells_.size()));
  if (t > cells_[j]) cells_[j] = t;
}

double EstimationSketchRow::EstimateWithR(int r) const {
  MCF0_CHECK(r >= 1);
  int hits = 0;
  for (const int c : cells_) {
    if (c >= r) ++hits;
  }
  const double m = static_cast<double>(cells_.size());
  const double ratio = static_cast<double>(hits) / m;
  if (ratio >= 1.0) return std::numeric_limits<double>::infinity();
  if (ratio <= 0.0) return 0.0;
  return std::log1p(-ratio) / std::log1p(-std::pow(2.0, -r));
}

size_t EstimationSketchRow::SpaceBits() const {
  // Each cell stores a value in [0, w]: ceil(log2(w+1)) bits; each hash
  // needs s field elements of w bits.
  const size_t w =
      field_ != nullptr ? static_cast<size_t>(field_->degree()) : 64;
  size_t cell_bits = 1;
  while ((1ull << cell_bits) < w + 1) ++cell_bits;
  size_t hash_bits = 0;
  for (const auto& h : hashes_) {
    hash_bits += static_cast<size_t>(h.s()) * w;
  }
  return cells_.size() * cell_bits + hash_bits;
}

// ---- FlajoletMartinRow --------------------------------------------------

FlajoletMartinRow::FlajoletMartinRow(int n, Rng& rng)
    : n_(n), h_(AffineHash::SampleXor(n, n, rng)) {
  MCF0_CHECK(n >= 1 && n <= 64);
}

FlajoletMartinRow::FlajoletMartinRow(AffineHash h, int max_tz)
    : n_(h.n()), h_(std::move(h)), max_tz_(max_tz) {
  MCF0_CHECK(n_ >= 1 && n_ <= 64 && h_.m() == n_);
  MCF0_CHECK(max_tz >= 0 && max_tz <= n_);
}

void FlajoletMartinRow::Add(uint64_t x) {
  const int t = TrailZero64(h_.Eval64(x), n_);
  if (t > max_tz_) max_tz_ = t;
}

void FlajoletMartinRow::Add(std::span<const uint64_t> xs) {
  int max_tz = max_tz_;
  for (const uint64_t x : xs) {
    const int t = TrailZero64(h_.Eval64(x), n_);
    if (t > max_tz) max_tz = t;
  }
  max_tz_ = max_tz;
}

// ---- driver ---------------------------------------------------------------

uint64_t F0Thresh(const F0Params& params) {
  if (params.thresh_override > 0) return params.thresh_override;
  const double thresh = std::ceil(96.0 / (params.eps * params.eps));
  // Casting past 2^64 is UB; an eps that small is a caller bug (the wire
  // decoder bounds eps before ever reaching here).
  MCF0_CHECK(thresh <= 9.0e18);
  return static_cast<uint64_t>(thresh);
}

int F0Rows(const F0Params& params) {
  if (params.rows_override > 0) return params.rows_override;
  return static_cast<int>(std::ceil(35.0 * std::log2(1.0 / params.delta)));
}

int F0IndependenceS(const F0Params& params) {
  if (params.s_override > 0) return params.s_override;
  return std::max(
      2, static_cast<int>(std::ceil(10.0 * std::log2(1.0 / params.eps))));
}

namespace {
// The draw count lives in the process-wide metrics registry (the
// bespoke file-local atomic it replaces predates src/obs). Resolved
// once; Counter increments are relaxed, so the monotone/atomic
// contract of TotalSamplerRowDraws() is unchanged.
obs::Counter* RowDrawCounter() {
  static obs::Counter* counter =
      obs::Registry::Global().GetCounter("mcf0_sampler_row_draws_total");
  return counter;
}
}  // namespace

uint64_t TotalSamplerRowDraws() { return RowDrawCounter()->Value(); }

namespace internal {
void BumpSamplerRowDraws() { RowDrawCounter()->Increment(); }
}  // namespace internal

F0RowSampler::F0RowSampler(const F0Params& params)
    : params_(params), rng_(params.seed) {
  // Validate before deriving: F0Thresh casts 96/eps^2 to an integer, which
  // is undefined for eps <= 0, so the checks must run first.
  MCF0_CHECK(params.n >= 1 && params.n <= 64);
  MCF0_CHECK(params.eps > 0 && params.delta > 0 && params.delta < 1);
  thresh_ = F0Thresh(params);
  s_ = F0IndependenceS(params);
}

BucketingSketchRow F0RowSampler::NextBucketingRow() {
  MCF0_CHECK(params_.algorithm == F0Algorithm::kBucketing);
  internal::BumpSamplerRowDraws();
  return BucketingSketchRow(params_.n, thresh_, rng_);
}

MinimumSketchRow F0RowSampler::NextMinimumRow() {
  MCF0_CHECK(params_.algorithm == F0Algorithm::kMinimum);
  internal::BumpSamplerRowDraws();
  return MinimumSketchRow(params_.n, thresh_, rng_);
}

std::pair<EstimationSketchRow, FlajoletMartinRow>
F0RowSampler::NextEstimationPair(const Gf2Field* field) {
  MCF0_CHECK(params_.algorithm == F0Algorithm::kEstimation);
  MCF0_CHECK(field != nullptr && field->degree() == params_.n);
  internal::BumpSamplerRowDraws();
  // Draw order matches the historical constructor: the Estimation row's
  // polynomial hashes, then the paired FM row's affine hash. Changing this
  // order would silently re-key every seed-elided v2 sketch file.
  EstimationSketchRow est(field, static_cast<int>(thresh_), s_, rng_);
  FlajoletMartinRow fm(params_.n, rng_);
  return {std::move(est), std::move(fm)};
}

F0Estimator::F0Estimator(const F0Params& params)
    : params_(params), hashes_canonical_(true) {
  // Canonical by construction: every hash below comes from the sampler's
  // deterministic replay of params.seed — the attestation the v2 encoder's
  // O(state) elided fast path rides on.
  F0RowSampler sampler(params);
  const int rows = F0Rows(params);
  switch (params.algorithm) {
    case F0Algorithm::kBucketing:
      for (int i = 0; i < rows; ++i) {
        bucketing_rows_.push_back(sampler.NextBucketingRow());
      }
      break;
    case F0Algorithm::kMinimum:
      for (int i = 0; i < rows; ++i) {
        minimum_rows_.push_back(sampler.NextMinimumRow());
      }
      break;
    case F0Algorithm::kEstimation: {
      field_ = std::make_unique<Gf2Field>(params.n);
      for (int i = 0; i < rows; ++i) {
        auto [est, fm] = sampler.NextEstimationPair(field_.get());
        estimation_rows_.push_back(std::move(est));
        fm_rows_.push_back(std::move(fm));
      }
      break;
    }
  }
}

F0Estimator::~F0Estimator() = default;

F0Estimator::Parts F0Estimator::ReleaseParts() && {
  Parts parts;
  parts.params = params_;
  parts.field = std::move(field_);
  parts.bucketing = std::move(bucketing_rows_);
  parts.minimum = std::move(minimum_rows_);
  parts.estimation = std::move(estimation_rows_);
  parts.fm = std::move(fm_rows_);
  parts.hashes_canonical = hashes_canonical_;
  return parts;
}

F0Estimator F0Estimator::FromParts(Parts parts) {
  const size_t rows = static_cast<size_t>(F0Rows(parts.params));
  switch (parts.params.algorithm) {
    case F0Algorithm::kBucketing:
      MCF0_CHECK(parts.bucketing.size() == rows && parts.minimum.empty() &&
                 parts.estimation.empty() && parts.fm.empty());
      break;
    case F0Algorithm::kMinimum:
      MCF0_CHECK(parts.minimum.size() == rows && parts.bucketing.empty() &&
                 parts.estimation.empty() && parts.fm.empty());
      break;
    case F0Algorithm::kEstimation:
      MCF0_CHECK(parts.estimation.size() == rows && parts.fm.size() == rows &&
                 parts.bucketing.empty() && parts.minimum.empty());
      MCF0_CHECK(parts.field != nullptr);
      break;
  }
  F0Estimator est;
  est.params_ = parts.params;
  est.field_ = std::move(parts.field);
  est.bucketing_rows_ = std::move(parts.bucketing);
  est.minimum_rows_ = std::move(parts.minimum);
  est.estimation_rows_ = std::move(parts.estimation);
  est.fm_rows_ = std::move(parts.fm);
  est.hashes_canonical_ = parts.hashes_canonical;
  return est;
}

void F0Estimator::Add(uint64_t x) {
  for (auto& row : bucketing_rows_) row.Add(x);
  for (auto& row : minimum_rows_) row.Add(x);
  for (auto& row : estimation_rows_) row.Add(x);
  for (auto& row : fm_rows_) row.Add(x);
}

void F0Estimator::Add(std::span<const uint64_t> xs) {
  for (auto& row : bucketing_rows_) row.Add(xs);
  for (auto& row : minimum_rows_) row.Add(xs);
  for (auto& row : estimation_rows_) row.Add(xs);
  for (auto& row : fm_rows_) row.Add(xs);
}

double F0Estimator::Estimate() const {
  std::vector<double> estimates;
  switch (params_.algorithm) {
    case F0Algorithm::kBucketing:
      for (const auto& row : bucketing_rows_) {
        estimates.push_back(row.Estimate());
      }
      return Median(std::move(estimates));
    case F0Algorithm::kMinimum:
      for (const auto& row : minimum_rows_) estimates.push_back(row.Estimate());
      return Median(std::move(estimates));
    case F0Algorithm::kEstimation: {
      // Pick r from the parallel FM rows: 2^r ~ 10 * F̂ sits mid-window in
      // [2 F0, 50 F0] whenever F̂ is within the FM 5-factor band (§3.4).
      std::vector<double> fm;
      for (const auto& row : fm_rows_) fm.push_back(row.Estimate());
      const double rough = Median(std::move(fm));
      if (rough < 1.0) return 0.0;  // empty stream
      int r = static_cast<int>(std::lround(std::log2(10.0 * rough)));
      r = std::clamp(r, 1, params_.n);
      for (const auto& row : estimation_rows_) {
        estimates.push_back(row.EstimateWithR(r));
      }
      return Median(std::move(estimates));
    }
  }
  MCF0_CHECK(false);
  return 0.0;
}

size_t F0Estimator::SpaceBits() const {
  size_t bits = 0;
  for (const auto& row : bucketing_rows_) bits += row.SpaceBits();
  for (const auto& row : minimum_rows_) bits += row.SpaceBits();
  for (const auto& row : estimation_rows_) bits += row.SpaceBits();
  // FM rows: hash + a 6-bit counter.
  bits += fm_rows_.size() * (static_cast<size_t>(params_.n) * params_.n + 6);
  return bits;
}

}  // namespace mcf0
