/// \file solver.hpp
/// \brief CDCL SAT solver with native XOR (parity) clauses.
///
/// This is the library's NP oracle. The hashing-based counting algorithms
/// issue queries of the form `phi AND (A x = b)` — a CNF conjoined with XOR
/// constraints (the paper's CNF-XOR formulas, §3.5). Encoding long XORs in
/// CNF blows up (2^{w-1} clauses, or Tseitin chains with auxiliary
/// variables); solving them natively was the enabling engineering behind
/// ApproxMC (CryptoMiniSat's Gauss/XOR support), so this solver propagates
/// XOR constraints directly:
///
///  * each XOR watches two unassigned variables (sign-agnostic);
///  * when only one variable remains unassigned its value is forced by the
///    parity of the rest; reasons for conflict analysis are materialized
///    lazily as ordinary clauses.
///
/// The CNF core is a conventional conflict-driven solver: two-watched
/// literals with blocking literals, first-UIP learning, EVSIDS variable
/// activity with a binary heap, phase saving, Luby restarts, and LBD/
/// activity-based learnt-clause reduction. Assumptions are supported the
/// MiniSat way (assumption literals occupy the first decision levels).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "gf2/bitvec.hpp"

namespace mcf0::sat {

using Var = int32_t;

/// A literal encoded as 2*var + neg.
struct Lit {
  int32_t code = -2;

  Lit() = default;
  Lit(Var v, bool neg) : code(2 * v + (neg ? 1 : 0)) {}

  Var var() const { return code >> 1; }
  bool neg() const { return code & 1; }
  Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  /// Dense index for watch lists.
  int index() const { return code; }

  bool operator==(const Lit&) const = default;
};

/// Three-valued assignment.
enum class LBool : uint8_t { kUndef = 0, kTrue = 1, kFalse = 2 };

/// Solver run counters (exposed to the experiment harness).
struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learned_clauses = 0;
  uint64_t xor_propagations = 0;
  uint64_t db_reductions = 0;
};

/// CDCL(XOR) solver; see file comment.
class Solver {
 public:
  Solver() = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Adds a fresh variable and returns its index.
  Var NewVar();

  /// Ensures variables 0..n-1 exist.
  void EnsureVars(int n);

  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a disjunctive clause. Returns false if the solver became
  /// trivially UNSAT (empty clause after level-0 simplification).
  bool AddClause(std::vector<Lit> lits);

  /// Adds a parity constraint: XOR of `vars` values equals `rhs`.
  /// Duplicate variables cancel. Returns false on trivial UNSAT.
  bool AddXorClause(std::vector<Var> vars, bool rhs);

  /// Solves under the given assumptions. kTrue = SAT (model available),
  /// kFalse = UNSAT under assumptions, kUndef = conflict budget exhausted.
  LBool Solve(const std::vector<Lit>& assumptions = {});

  /// Model values after a kTrue result; unconstrained vars read kTrue/kFalse
  /// deterministically (phase-saving default).
  bool ModelValue(Var v) const {
    MCF0_DCHECK(v >= 0 && v < num_vars());
    return model_[v] == LBool::kTrue;
  }

  /// Model of the first `n` variables as a BitVec (bit i = value of var i).
  BitVec ModelBits(int n) const;

  /// Caps conflicts per Solve() call; -1 (default) = unlimited.
  void SetConflictBudget(int64_t budget) { conflict_budget_ = budget; }

  /// Restricts branching to `vars` (an *independent support*): variables
  /// outside the set are never decided, only propagated. The caller must
  /// guarantee sufficiency — any total assignment of `vars` determines the
  /// rest under propagation (e.g. the free variables of an RREF'd XOR
  /// system, whose pivot rows become unit once their free variables are
  /// set). A defensive fallback still decides a leftover unassigned
  /// variable if the guarantee is violated, so soundness never depends on
  /// the hint. Must be called before Solve() and after all NewVar calls.
  void RestrictDecisions(const std::vector<Var>& vars);

  const SolverStats& stats() const { return stats_; }

 private:
  // ---- clause storage -------------------------------------------------
  struct ClauseData {
    std::vector<Lit> lits;
    double activity = 0.0;
    int lbd = 0;
    bool learnt = false;
    bool deleted = false;
  };
  using CRef = uint32_t;
  static constexpr CRef kCRefUndef = 0xFFFFFFFFu;

  struct Watch {
    CRef cref;
    Lit blocker;
  };

  // ---- XOR storage ----------------------------------------------------
  struct XorData {
    std::vector<Var> vars;  // vars[0], vars[1] are the watched slots
    bool rhs = false;
  };

  // Reason for an implied literal: a clause, an XOR, or a decision.
  struct Reason {
    enum class Kind : uint8_t { kNone, kClause, kXor } kind = Kind::kNone;
    uint32_t id = 0;
  };

  LBool Value(Var v) const { return assigns_[v]; }
  LBool Value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    const bool b = (v == LBool::kTrue) != l.neg();
    return b ? LBool::kTrue : LBool::kFalse;
  }

  void Enqueue(Lit p, Reason from);
  /// Unit propagation over clauses and XORs. Returns a conflict as a
  /// materialized literal list (empty = no conflict) in conflict_lits_.
  bool Propagate();
  bool PropagateClauses(Lit p);
  bool PropagateXors(Var v);
  /// First-UIP conflict analysis; fills learnt_ and returns backtrack level.
  int Analyze();
  void CancelUntil(int level);
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  Lit PickBranchLit();
  void NewDecisionLevel() {
    trail_lim_.push_back(static_cast<int>(trail_.size()));
  }

  void VarBumpActivity(Var v);
  void VarDecayActivity() { var_inc_ /= kVarDecay; }
  void ClaBumpActivity(ClauseData& c);
  void ClaDecayActivity() { cla_inc_ /= kClaDecay; }
  void ReduceDb();
  CRef AllocClause(std::vector<Lit> lits, bool learnt);
  void AttachClause(CRef cref);
  void RemoveClause(CRef cref);

  /// Appends the reason literals of implied literal p (excluding p) to out.
  void ReasonLits(Lit p, std::vector<Lit>* out) const;

  // Heap keyed by activity.
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapPopMax();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapSiftUp(int i);
  void HeapSiftDown(int i);
  bool HeapLess(Var a, Var b) const { return activity_[a] < activity_[b]; }

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClaDecay = 0.999;

  bool ok_ = true;  // false once trivially UNSAT
  std::vector<ClauseData> clauses_;
  std::vector<CRef> free_clauses_;
  std::vector<CRef> learnts_;
  std::vector<XorData> xors_;

  std::vector<std::vector<Watch>> watches_;      // by lit index
  std::vector<std::vector<uint32_t>> xwatches_;  // by var

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<int> level_;
  std::vector<Reason> reason_;
  std::vector<bool> polarity_;  // saved phase
  std::vector<bool> decidable_; // branching allowed (RestrictDecisions)
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  // Heap of unassigned vars (max-activity at root) + position index.
  std::vector<Var> heap_;
  std::vector<int> heap_pos_;  // -1 if absent

  // Scratch buffers.
  std::vector<Lit> conflict_lits_;
  std::vector<Lit> learnt_;
  std::vector<uint8_t> seen_;

  int64_t conflict_budget_ = -1;
  SolverStats stats_;
};

}  // namespace mcf0::sat
