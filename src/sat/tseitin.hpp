/// \file tseitin.hpp
/// \brief CNF encoding of XOR constraints (the non-native baseline).
///
/// Before solvers gained native XOR support, hashing-based counters encoded
/// each parity constraint as CNF: a width-w XOR needs 2^{w-1} clauses, so
/// long XORs are chunked with fresh auxiliary ("Tseitin") variables into a
/// chain of small XORs. Experiment E14 compares this encoding against the
/// solver's native XOR propagation — the contrast that motivated the
/// CNF-XOR solver line of work cited in §3.5.
#pragma once

#include <vector>

#include "sat/solver.hpp"

namespace mcf0::sat {

/// Adds clauses to `solver` enforcing XOR(vars) = rhs, chunking through
/// fresh auxiliary variables so each emitted clause has at most
/// `chunk_size + 1` literals. `chunk_size` must be in [2, 6].
/// Returns false if the solver became UNSAT.
bool AddXorAsCnf(Solver* solver, std::vector<Var> vars, bool rhs,
                 int chunk_size = 3);

}  // namespace mcf0::sat
