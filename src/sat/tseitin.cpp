#include "sat/tseitin.hpp"

#include <algorithm>
#include <bit>

namespace mcf0::sat {
namespace {

/// Emits the 2^{k-1} clauses forcing XOR of the k literals' variables,
/// with polarities `vars`, to equal rhs. Every assignment whose parity
/// differs from rhs is forbidden by one clause.
bool EmitSmallXor(Solver* solver, const std::vector<Var>& vars, bool rhs) {
  const int k = static_cast<int>(vars.size());
  MCF0_CHECK(k >= 1 && k <= 20);
  for (uint32_t mask = 0; mask < (1u << k); ++mask) {
    const bool parity = (std::popcount(mask) & 1) != 0;
    if (parity == rhs) continue;  // satisfying assignment: no clause
    std::vector<Lit> clause;
    clause.reserve(k);
    for (int i = 0; i < k; ++i) {
      const bool value = (mask >> i) & 1;
      // Forbid "var_i == value": add the literal that is false under it.
      clause.emplace_back(vars[i], /*neg=*/value);
    }
    if (!solver->AddClause(std::move(clause))) return false;
  }
  return true;
}

}  // namespace

bool AddXorAsCnf(Solver* solver, std::vector<Var> vars, bool rhs,
                 int chunk_size) {
  MCF0_CHECK(chunk_size >= 2 && chunk_size <= 6);
  // Cancel duplicate variables first (x ^ x = 0).
  std::sort(vars.begin(), vars.end());
  std::vector<Var> cleaned;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (i + 1 < vars.size() && vars[i] == vars[i + 1]) {
      ++i;
      continue;
    }
    cleaned.push_back(vars[i]);
  }
  if (cleaned.empty()) {
    if (!rhs) return true;
    return solver->AddClause({});  // 0 = 1: UNSAT
  }
  // Chain: t_0 = XOR(first chunk); t_{i} = t_{i-1} XOR (next chunk);
  // final link absorbs rhs directly.
  size_t pos = 0;
  Var carry = -1;
  while (pos < cleaned.size()) {
    const size_t take = std::min<size_t>(chunk_size, cleaned.size() - pos);
    std::vector<Var> group(cleaned.begin() + pos, cleaned.begin() + pos + take);
    pos += take;
    if (carry >= 0) group.push_back(carry);
    if (pos == cleaned.size()) {
      // Last link: parity of group must equal rhs.
      return EmitSmallXor(solver, group, rhs);
    }
    const Var aux = solver->NewVar();
    group.push_back(aux);
    // XOR(group vars, aux) = 0, i.e. aux = XOR(group).
    if (!EmitSmallXor(solver, group, false)) return false;
    carry = aux;
  }
  return true;
}

}  // namespace mcf0::sat
