#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace mcf0::sat {

namespace {

/// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
uint64_t Luby(int i) {
  // Find the subsequence that contains index i.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return 1ull << seq;
}

constexpr int kRestartBase = 100;

}  // namespace

Var Solver::NewVar() {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  model_.push_back(LBool::kFalse);
  level_.push_back(0);
  reason_.push_back(Reason{});
  polarity_.push_back(false);
  decidable_.push_back(true);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();  // lit 2v
  watches_.emplace_back();  // lit 2v+1
  xwatches_.emplace_back();
  HeapInsert(v);
  return v;
}

void Solver::RestrictDecisions(const std::vector<Var>& vars) {
  std::fill(decidable_.begin(), decidable_.end(), false);
  for (const Var v : vars) {
    MCF0_CHECK(v >= 0 && v < num_vars());
    decidable_[v] = true;
  }
  // Rebuild the heap with only decidable vars.
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (decidable_[v] && assigns_[v] == LBool::kUndef) HeapInsert(v);
  }
}

void Solver::EnsureVars(int n) {
  while (num_vars() < n) NewVar();
}

bool Solver::AddClause(std::vector<Lit> lits) {
  if (!ok_) return false;
  CancelUntil(0);
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> out;
  out.reserve(lits.size());
  for (const Lit l : lits) {
    MCF0_CHECK(l.var() >= 0 && l.var() < num_vars());
    if (!out.empty() && out.back() == l) continue;  // duplicate
    if (!out.empty() && out.back() == ~l) return true;  // tautology
    if (Value(l) == LBool::kTrue && level_[l.var()] == 0) return true;
    if (Value(l) == LBool::kFalse && level_[l.var()] == 0) continue;
    out.push_back(l);
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    Enqueue(out[0], Reason{});
    if (!Propagate()) ok_ = false;
    return ok_;
  }
  const CRef cr = AllocClause(std::move(out), /*learnt=*/false);
  AttachClause(cr);
  return true;
}

bool Solver::AddXorClause(std::vector<Var> vars, bool rhs) {
  if (!ok_) return false;
  CancelUntil(0);
  std::sort(vars.begin(), vars.end());
  std::vector<Var> out;
  out.reserve(vars.size());
  for (size_t i = 0; i < vars.size(); ++i) {
    MCF0_CHECK(vars[i] >= 0 && vars[i] < num_vars());
    if (i + 1 < vars.size() && vars[i] == vars[i + 1]) {
      ++i;  // x ^ x = 0: drop the pair
      continue;
    }
    // Fold level-0 assignments into the constant.
    if (Value(vars[i]) != LBool::kUndef && level_[vars[i]] == 0) {
      rhs ^= (Value(vars[i]) == LBool::kTrue);
      continue;
    }
    out.push_back(vars[i]);
  }
  if (out.empty()) {
    if (rhs) ok_ = false;
    return ok_;
  }
  if (out.size() == 1) {
    Enqueue(Lit(out[0], /*neg=*/!rhs), Reason{});
    if (!Propagate()) ok_ = false;
    return ok_;
  }
  const auto xid = static_cast<uint32_t>(xors_.size());
  xors_.push_back(XorData{std::move(out), rhs});
  xwatches_[xors_.back().vars[0]].push_back(xid);
  xwatches_[xors_.back().vars[1]].push_back(xid);
  return true;
}

void Solver::Enqueue(Lit p, Reason from) {
  MCF0_DCHECK(Value(p) == LBool::kUndef);
  assigns_[p.var()] = p.neg() ? LBool::kFalse : LBool::kTrue;
  level_[p.var()] = DecisionLevel();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

bool Solver::Propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    if (!PropagateClauses(p)) return false;
    if (!PropagateXors(p.var())) return false;
  }
  return true;
}

bool Solver::PropagateClauses(Lit p) {
  auto& ws = watches_[p.index()];
  const Lit false_lit = ~p;
  size_t i = 0;
  size_t j = 0;
  while (i < ws.size()) {
    const Watch w = ws[i];
    if (Value(w.blocker) == LBool::kTrue) {
      ws[j++] = ws[i++];
      continue;
    }
    ClauseData& c = clauses_[w.cref];
    auto& lits = c.lits;
    if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
    MCF0_DCHECK(lits[1] == false_lit);
    ++i;
    const Lit first = lits[0];
    if (first != w.blocker && Value(first) == LBool::kTrue) {
      ws[j++] = Watch{w.cref, first};
      continue;
    }
    bool moved = false;
    for (size_t k = 2; k < lits.size(); ++k) {
      if (Value(lits[k]) != LBool::kFalse) {
        std::swap(lits[1], lits[k]);
        watches_[(~lits[1]).index()].push_back(Watch{w.cref, first});
        moved = true;
        break;
      }
    }
    if (moved) continue;
    // Clause is unit or conflicting.
    ws[j++] = Watch{w.cref, first};
    if (Value(first) == LBool::kFalse) {
      conflict_lits_ = lits;
      while (i < ws.size()) ws[j++] = ws[i++];
      ws.resize(j);
      return false;
    }
    Enqueue(first, Reason{Reason::Kind::kClause, w.cref});
  }
  ws.resize(j);
  return true;
}

bool Solver::PropagateXors(Var v) {
  auto& ws = xwatches_[v];
  size_t i = 0;
  size_t j = 0;
  while (i < ws.size()) {
    const uint32_t xid = ws[i];
    XorData& x = xors_[xid];
    if (x.vars[0] == v) std::swap(x.vars[0], x.vars[1]);
    MCF0_DCHECK(x.vars[1] == v);
    ++i;
    bool moved = false;
    for (size_t k = 2; k < x.vars.size(); ++k) {
      if (Value(x.vars[k]) == LBool::kUndef) {
        std::swap(x.vars[1], x.vars[k]);
        xwatches_[x.vars[1]].push_back(xid);
        moved = true;
        break;
      }
    }
    if (moved) continue;
    ws[j++] = xid;
    const Var other = x.vars[0];
    bool parity = x.rhs;
    for (size_t k = 1; k < x.vars.size(); ++k) {
      parity ^= (Value(x.vars[k]) == LBool::kTrue);
    }
    if (Value(other) == LBool::kUndef) {
      // `other` is the last unassigned variable: forced to `parity`.
      Enqueue(Lit(other, /*neg=*/!parity), Reason{Reason::Kind::kXor, xid});
      ++stats_.xor_propagations;
    } else if ((Value(other) == LBool::kTrue) != parity) {
      // Fully assigned with wrong parity: conflict. Materialize the
      // implied clause "not this combination of values".
      conflict_lits_.clear();
      for (const Var u : x.vars) {
        conflict_lits_.push_back(Value(u) == LBool::kTrue ? Lit(u, true)
                                                          : Lit(u, false));
      }
      while (i < ws.size()) ws[j++] = ws[i++];
      ws.resize(j);
      return false;
    }
  }
  ws.resize(j);
  return true;
}

void Solver::ReasonLits(Lit p, std::vector<Lit>* out) const {
  const Reason r = reason_[p.var()];
  switch (r.kind) {
    case Reason::Kind::kClause: {
      const auto& lits = clauses_[r.id].lits;
      MCF0_DCHECK(lits[0] == p);
      out->insert(out->end(), lits.begin() + 1, lits.end());
      break;
    }
    case Reason::Kind::kXor: {
      const XorData& x = xors_[r.id];
      for (const Var u : x.vars) {
        if (u == p.var()) continue;
        out->push_back(Value(u) == LBool::kTrue ? Lit(u, true) : Lit(u, false));
      }
      break;
    }
    case Reason::Kind::kNone:
      MCF0_CHECK(false);  // decisions have no reason
  }
}

int Solver::Analyze() {
  learnt_.clear();
  learnt_.push_back(Lit());  // slot for the asserting (1UIP) literal
  int path_count = 0;
  Lit p;
  int index = static_cast<int>(trail_.size()) - 1;
  std::vector<Lit> reason = conflict_lits_;
  for (;;) {
    for (const Lit q : reason) {
      const Var v = q.var();
      if (seen_[v] || level_[v] == 0) continue;
      seen_[v] = 1;
      VarBumpActivity(v);
      if (level_[v] >= DecisionLevel()) {
        ++path_count;
      } else {
        learnt_.push_back(q);
      }
    }
    while (!seen_[trail_[index].var()]) --index;
    p = trail_[index];
    --index;
    seen_[p.var()] = 0;
    --path_count;
    if (path_count <= 0) break;
    reason.clear();
    ReasonLits(p, &reason);
  }
  learnt_[0] = ~p;

  // Backtrack level: highest level among the non-asserting literals.
  int bt = 0;
  if (learnt_.size() > 1) {
    size_t max_i = 1;
    for (size_t k = 2; k < learnt_.size(); ++k) {
      if (level_[learnt_[k].var()] > level_[learnt_[max_i].var()]) max_i = k;
    }
    std::swap(learnt_[1], learnt_[max_i]);
    bt = level_[learnt_[1].var()];
  }
  for (size_t k = 1; k < learnt_.size(); ++k) seen_[learnt_[k].var()] = 0;
  return bt;
}

void Solver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int bound = trail_lim_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    const Var v = trail_[i].var();
    polarity_[v] = (assigns_[v] == LBool::kTrue);
    assigns_[v] = LBool::kUndef;
    reason_[v] = Reason{};
    if (decidable_[v] && heap_pos_[v] < 0) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    const Var v = HeapPopMax();
    if (assigns_[v] == LBool::kUndef) {
      return Lit(v, /*neg=*/!polarity_[v]);
    }
  }
  return Lit();  // undef: everything assigned
}

void Solver::VarBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[v] >= 0) HeapSiftUp(heap_pos_[v]);
}

void Solver::ClaBumpActivity(ClauseData& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (const CRef cr : learnts_) clauses_[cr].activity *= 1e-20;
    cla_inc_ *= 1e-20;
  }
}

Solver::CRef Solver::AllocClause(std::vector<Lit> lits, bool learnt) {
  CRef cr;
  if (!free_clauses_.empty()) {
    cr = free_clauses_.back();
    free_clauses_.pop_back();
    clauses_[cr] = ClauseData{};
  } else {
    cr = static_cast<CRef>(clauses_.size());
    clauses_.emplace_back();
  }
  clauses_[cr].lits = std::move(lits);
  clauses_[cr].learnt = learnt;
  return cr;
}

void Solver::AttachClause(CRef cref) {
  const auto& lits = clauses_[cref].lits;
  MCF0_DCHECK(lits.size() >= 2);
  watches_[(~lits[0]).index()].push_back(Watch{cref, lits[1]});
  watches_[(~lits[1]).index()].push_back(Watch{cref, lits[0]});
}

void Solver::RemoveClause(CRef cref) {
  ClauseData& c = clauses_[cref];
  for (const Lit w : {c.lits[0], c.lits[1]}) {
    auto& list = watches_[(~w).index()];
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].cref == cref) {
        list[i] = list.back();
        list.pop_back();
        break;
      }
    }
  }
  c.deleted = true;
  c.lits.clear();
  c.lits.shrink_to_fit();
  free_clauses_.push_back(cref);
}

void Solver::ReduceDb() {
  ++stats_.db_reductions;
  // Keep glue clauses (lbd <= 2) and clauses locked as reasons; drop the
  // lower-activity half of the rest.
  std::vector<CRef> candidates;
  std::vector<CRef> kept;
  for (const CRef cr : learnts_) {
    const ClauseData& c = clauses_[cr];
    if (c.deleted) continue;
    const Lit first = c.lits.empty() ? Lit() : c.lits[0];
    const bool locked = !c.lits.empty() && Value(first) == LBool::kTrue &&
                        reason_[first.var()].kind == Reason::Kind::kClause &&
                        reason_[first.var()].id == cr;
    if (c.lbd <= 2 || locked) {
      kept.push_back(cr);
    } else {
      candidates.push_back(cr);
    }
  }
  std::sort(candidates.begin(), candidates.end(), [this](CRef a, CRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const size_t drop = candidates.size() / 2;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i < drop) {
      RemoveClause(candidates[i]);
    } else {
      kept.push_back(candidates[i]);
    }
  }
  learnts_ = std::move(kept);
}

LBool Solver::Solve(const std::vector<Lit>& assumptions) {
  if (!ok_) return LBool::kFalse;
  CancelUntil(0);
  int64_t conflicts_this_call = 0;
  int restart_index = 0;
  uint64_t next_restart = Luby(restart_index) * kRestartBase;

  for (;;) {
    if (!Propagate()) {
      ++stats_.conflicts;
      ++conflicts_this_call;
      if (DecisionLevel() == 0) {
        ok_ = false;
        return LBool::kFalse;
      }
      const int bt = Analyze();
      CancelUntil(bt);
      if (learnt_.size() == 1) {
        Enqueue(learnt_[0], Reason{});
      } else {
        const CRef cr = AllocClause(learnt_, /*learnt=*/true);
        // LBD: number of distinct decision levels among the literals.
        std::vector<int> levels;
        levels.reserve(learnt_.size());
        for (const Lit l : learnt_) levels.push_back(level_[l.var()]);
        std::sort(levels.begin(), levels.end());
        clauses_[cr].lbd = static_cast<int>(
            std::unique(levels.begin(), levels.end()) - levels.begin());
        AttachClause(cr);
        learnts_.push_back(cr);
        ClaBumpActivity(clauses_[cr]);
        ++stats_.learned_clauses;
        Enqueue(learnt_[0], Reason{Reason::Kind::kClause, cr});
      }
      VarDecayActivity();
      ClaDecayActivity();
      if (conflict_budget_ >= 0 && conflicts_this_call >= conflict_budget_) {
        CancelUntil(0);
        return LBool::kUndef;
      }
      if (static_cast<uint64_t>(conflicts_this_call) >= next_restart) {
        ++restart_index;
        next_restart =
            static_cast<uint64_t>(conflicts_this_call) +
            Luby(restart_index) * kRestartBase;
        ++stats_.restarts;
        CancelUntil(0);
      }
      if (learnts_.size() >
          2000 + 512 * static_cast<size_t>(stats_.db_reductions)) {
        ReduceDb();
      }
    } else {
      // Decide: assumptions occupy the first decision levels.
      Lit next;
      bool have_next = false;
      while (DecisionLevel() < static_cast<int>(assumptions.size())) {
        const Lit p = assumptions[DecisionLevel()];
        if (Value(p) == LBool::kTrue) {
          NewDecisionLevel();  // dummy level, already satisfied
        } else if (Value(p) == LBool::kFalse) {
          CancelUntil(0);
          return LBool::kFalse;
        } else {
          next = p;
          have_next = true;
          break;
        }
      }
      if (!have_next) {
        next = PickBranchLit();
        if (next == Lit()) {
          // Decision variables exhausted. With a sufficient decision set
          // everything else has been propagated; fall back defensively if
          // the caller's sufficiency guarantee did not hold.
          for (Var v = 0; v < num_vars(); ++v) {
            if (assigns_[v] == LBool::kUndef) {
              next = Lit(v, !polarity_[v]);
              break;
            }
          }
          if (next == Lit()) {
            model_ = assigns_;
            CancelUntil(0);
            return LBool::kTrue;
          }
        }
        ++stats_.decisions;
      }
      NewDecisionLevel();
      Enqueue(next, Reason{});
    }
  }
}

BitVec Solver::ModelBits(int n) const {
  MCF0_CHECK(n <= num_vars());
  BitVec x(n);
  for (int i = 0; i < n; ++i) {
    if (model_[i] == LBool::kTrue) x.Set(i, true);
  }
  return x;
}

// ---- activity heap ------------------------------------------------------

void Solver::HeapInsert(Var v) {
  MCF0_DCHECK(heap_pos_[v] < 0);
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(heap_pos_[v]);
}

Var Solver::HeapPopMax() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    HeapSiftDown(0);
  } else {
    heap_.pop_back();
  }
  return top;
}

void Solver::HeapSiftUp(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!HeapLess(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::HeapSiftDown(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && HeapLess(heap_[child], heap_[child + 1])) ++child;
    if (!HeapLess(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

}  // namespace mcf0::sat
