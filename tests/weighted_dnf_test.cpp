// Tests for the weighted #DNF -> multidimensional ranges reduction (§5).
#include "setstream/weighted_dnf.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

std::vector<VarWeight> UniformWeights(int n, uint64_t k, int m) {
  return std::vector<VarWeight>(n, VarWeight{k, m});
}

TEST(ExactWeightedDnf, HalfWeightsReduceToCountScaling) {
  // rho = 1/2 for every variable: W(phi) = |Sol(phi)| / 2^n.
  Rng rng(3);
  const Dnf dnf = RandomDnf(10, 4, 2, 4, rng);
  const double w = ExactWeightedDnf(dnf, UniformWeights(10, 1, 1));
  double count = 0;
  BitVec x(10);
  for (uint64_t v = 0; v < 1024; ++v) {
    count += dnf.Eval(x);
    x.Increment();
  }
  EXPECT_NEAR(w, count / 1024.0, 1e-12);
}

TEST(ExactWeightedDnf, SingleTermProductForm) {
  // W(x0 and not x1) = rho0 * (1 - rho1).
  Dnf dnf(2);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, true)}));
  const std::vector<VarWeight> weights = {{3, 2}, {1, 3}};  // 3/4 and 1/8
  EXPECT_NEAR(ExactWeightedDnf(dnf, weights), 0.75 * 0.875, 1e-12);
}

TEST(TermToWeightRange, VolumeEncodesTermWeight) {
  // The range volume divided by 2^{sum m_i} equals the term's weight.
  Dnf dnf(3);
  const Term term = *Term::Make({Lit(0, false), Lit(2, true)});
  const std::vector<VarWeight> weights = {{5, 3}, {1, 2}, {3, 4}};
  const MultiDimRange range = TermToWeightRange(term, 3, weights);
  const double total_bits = 3 + 2 + 4;
  // weight = (5/8) * 1 * (1 - 3/16).
  EXPECT_NEAR(range.Volume() / std::pow(2.0, total_bits),
              (5.0 / 8.0) * (13.0 / 16.0), 1e-12);
}

TEST(TermToWeightRange, MembershipMatchesLiteralSemantics) {
  const Term term = *Term::Make({Lit(0, false), Lit(1, true)});
  const std::vector<VarWeight> weights = {{2, 2}, {2, 2}};
  const MultiDimRange range = TermToWeightRange(term, 2, weights);
  // x0 true -> coord0 in [0, 1]; x1 false -> coord1 in [2, 3].
  EXPECT_TRUE(range.Contains({0, 2}));
  EXPECT_TRUE(range.Contains({1, 3}));
  EXPECT_FALSE(range.Contains({2, 2}));
  EXPECT_FALSE(range.Contains({0, 1}));
}

struct WeightedCase {
  int n;
  int terms;
  uint64_t seed;
};

class WeightedSweep : public ::testing::TestWithParam<WeightedCase> {};

TEST_P(WeightedSweep, ReductionEstimateMatchesExactWeight) {
  const WeightedCase param = GetParam();
  Rng rng(param.seed);
  const Dnf dnf = RandomDnf(param.n, param.terms, 2, 4, rng);
  std::vector<VarWeight> weights;
  for (int i = 0; i < param.n; ++i) {
    const int m = 1 + static_cast<int>(rng.NextBelow(3));
    const uint64_t k = 1 + rng.NextBelow((1ull << m) - 1);
    weights.push_back(VarWeight{k, m});
  }
  const double exact = ExactWeightedDnf(dnf, weights);
  StructuredF0Params params;
  params.eps = 0.6;
  params.delta = 0.2;
  params.rows_override = 15;
  params.seed = param.seed ^ 0xABC;
  const double got = WeightedDnfViaRanges(dnf, weights, params);
  ASSERT_GT(exact, 0.0);
  EXPECT_GE(got, exact / 2.3);
  EXPECT_LE(got, exact * 2.3);
}

INSTANTIATE_TEST_SUITE_P(Workloads, WeightedSweep,
                         ::testing::Values(WeightedCase{6, 3, 51},
                                           WeightedCase{8, 4, 52},
                                           WeightedCase{10, 5, 53}),
                         [](const auto& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += 'k';
                           name += std::to_string(info.param.terms);
                           return name;
                         });

}  // namespace
}  // namespace mcf0
