// Tests for CNF set streams (Observation 2): StructuredF0::AddCnf drives
// the NP oracle per item; estimates must match exact unions and mixing CNF
// items with the PTIME item types must compose.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "formula/random_gen.hpp"
#include "setstream/structured_f0.hpp"

namespace mcf0 {
namespace {

StructuredF0Params FastParams(int n, StructuredF0Algorithm alg, uint64_t seed) {
  StructuredF0Params p;
  p.n = n;
  p.eps = 0.6;
  p.delta = 0.2;
  p.rows_override = 15;
  p.seed = seed;
  p.algorithm = alg;
  return p;
}

uint64_t ExactCnfUnion(const std::vector<Cnf>& stream, int n) {
  uint64_t count = 0;
  BitVec x(n);
  for (uint64_t v = 0; v < (1ull << n); ++v) {
    for (const Cnf& c : stream) {
      if (c.Eval(x)) {
        ++count;
        break;
      }
    }
    x.Increment();
  }
  return count;
}

class CnfStreamBothStrategies
    : public ::testing::TestWithParam<StructuredF0Algorithm> {};

TEST_P(CnfStreamBothStrategies, MatchesExactUnion) {
  Rng rng(3);
  const int n = 12;
  std::vector<Cnf> stream;
  for (int i = 0; i < 4; ++i) stream.push_back(RandomKCnf(n, 14, 3, rng));
  const double exact = static_cast<double>(ExactCnfUnion(stream, n));
  StructuredF0 est(FastParams(n, GetParam(), 7));
  for (const Cnf& c : stream) est.AddCnf(c);
  EXPECT_GT(est.oracle_calls(), 0u);
  if (exact == 0) {
    EXPECT_EQ(est.Estimate(), 0.0);
  } else {
    EXPECT_GE(est.Estimate(), exact / 2.3);
    EXPECT_LE(est.Estimate(), exact * 2.3);
  }
}

TEST_P(CnfStreamBothStrategies, MixedCnfAndDnfItems) {
  Rng rng(5);
  const int n = 10;
  const Cnf cnf = RandomKCnf(n, 12, 3, rng);
  const Dnf dnf = RandomDnf(n, 3, 2, 5, rng);
  StructuredF0 est(FastParams(n, GetParam(), 11));
  est.AddCnf(cnf);
  est.AddDnf(dnf);
  uint64_t exact = 0;
  BitVec x(n);
  for (uint64_t v = 0; v < (1u << n); ++v) {
    if (cnf.Eval(x) || dnf.Eval(x)) ++exact;
    x.Increment();
  }
  EXPECT_GE(est.Estimate(), static_cast<double>(exact) / 2.3);
  EXPECT_LE(est.Estimate(), static_cast<double>(exact) * 2.3);
}

INSTANTIATE_TEST_SUITE_P(Strategies, CnfStreamBothStrategies,
                         ::testing::Values(StructuredF0Algorithm::kMinimum,
                                           StructuredF0Algorithm::kBucketing),
                         [](const auto& info) {
                           return info.param == StructuredF0Algorithm::kMinimum
                                      ? "Minimum"
                                      : "Bucketing";
                         });

TEST(CnfStream, UnsatisfiableItemsContributeNothing) {
  Cnf unsat(8);
  unsat.AddClause(Clause({Lit(0, false)}));
  unsat.AddClause(Clause({Lit(0, true)}));
  StructuredF0 est(FastParams(8, StructuredF0Algorithm::kMinimum, 13));
  est.AddCnf(unsat);
  EXPECT_EQ(est.Estimate(), 0.0);
}

}  // namespace
}  // namespace mcf0
