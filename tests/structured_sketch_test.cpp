// Sealed-sketch-API tests: the unified surface over raw and structured
// sketches. Covers the StructuredF0 engine treatment (codec round trips,
// streaming reader, split-then-merge, hostile-input fuzz), the
// SketchVariant dispatch, the hashes_canonical attestation, and the
// O(1)-canonical-encode contract (zero sampler draws, pinned via the
// process-wide draw counter).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "engine/sharded_engine.hpp"
#include "engine/sketch_codec.hpp"
#include "engine/sketch_merge.hpp"
#include "engine/sketch_reader.hpp"
#include "engine/wire.hpp"
#include "formula/formula.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

constexpr StructuredF0Algorithm kBothAlgorithms[] = {
    StructuredF0Algorithm::kMinimum, StructuredF0Algorithm::kBucketing};

// Small overrides keep every test fast while still saturating rows.
StructuredF0Params SmallParams(StructuredF0Algorithm algorithm,
                               uint64_t seed = 7) {
  StructuredF0Params params;
  params.n = 12;
  params.eps = 0.8;
  params.delta = 0.2;
  params.algorithm = algorithm;
  params.seed = seed;
  params.thresh_override = 16;
  params.rows_override = 5;
  return params;
}

// Deterministic width-k terms over n variables; distinct seeds give
// distinct (but overlapping) solution sets.
std::vector<Term> MakeTerms(int n, int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Term> terms;
  while (static_cast<int>(terms.size()) < count) {
    std::vector<Lit> lits;
    const int width = 3 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < width; ++i) {
      lits.emplace_back(static_cast<int>(rng.NextBelow(n)),
                        rng.NextBelow(2) == 1);
    }
    auto term = Term::Make(std::move(lits));
    if (term.has_value()) terms.push_back(std::move(*term));
  }
  return terms;
}

StructuredF0 BuildSketch(const StructuredF0Params& params,
                         const std::vector<Term>& terms) {
  StructuredF0 sketch(params);
  for (const Term& t : terms) sketch.AddTerms({t});
  return sketch;
}

// ---- codec round trips ----------------------------------------------------

TEST(StructuredSketchCodecTest, RoundTripsBothAlgorithms) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    StructuredF0 original = BuildSketch(params, MakeTerms(12, 20, 3));

    const std::string blob = SketchCodec::Encode(original);
    Result<StructuredF0> decoded = SketchCodec::DecodeStructuredF0(blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded.value().params() == params);
    EXPECT_DOUBLE_EQ(decoded.value().Estimate(), original.Estimate());
    EXPECT_EQ(decoded.value().SpaceBits(), original.SpaceBits());
    // Canonical: re-encoding the decoded sketch is byte-identical.
    EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);

    // The decoded sketch is live, not a snapshot: it keeps absorbing
    // items in lockstep with the original.
    StructuredF0 revived = std::move(decoded).value();
    for (const Term& t : MakeTerms(12, 6, 4)) {
      original.AddTerms({t});
      revived.AddTerms({t});
    }
    EXPECT_EQ(SketchCodec::Encode(revived), SketchCodec::Encode(original));
  }
}

TEST(StructuredSketchCodecTest, HandAssembledStateEmbedsHashesAndRoundTrips) {
  // Rows assembled out of order no longer match the canonical sampler
  // replay: the encoder must embed hash state (costing real bytes) and
  // still round-trip exactly.
  const StructuredF0Params params =
      SmallParams(StructuredF0Algorithm::kMinimum);
  const std::vector<Term> terms = MakeTerms(12, 15, 5);
  StructuredF0 built = BuildSketch(params, terms);
  const std::string canonical = SketchCodec::Encode(built);

  StructuredF0::Parts parts = std::move(built).ReleaseParts();
  std::swap(parts.minimum[0], parts.minimum[1]);
  parts.hashes_canonical = false;  // hand-shuffled hashes void the attestation
  const StructuredF0 shuffled = StructuredF0::FromParts(std::move(parts));
  EXPECT_FALSE(shuffled.hashes_canonical());

  const std::string embedded = SketchCodec::Encode(shuffled);
  EXPECT_GT(embedded.size(), canonical.size());
  Result<StructuredF0> decoded = SketchCodec::DecodeStructuredF0(embedded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.value().hashes_canonical());
  EXPECT_EQ(SketchCodec::Encode(decoded.value()), embedded);
  EXPECT_DOUBLE_EQ(decoded.value().Estimate(), shuffled.Estimate());
}

TEST(StructuredSketchCodecTest, WideUniverseBeyond64BitsRoundTrips) {
  // Structured universes are not word-capped. n = 80 forces the explicit
  // KMV value encoding (no u64 preimages) and wide bucket elements.
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    StructuredF0Params params = SmallParams(algorithm);
    params.n = 80;
    StructuredF0 sketch(params);
    Rng rng(11);
    for (int i = 0; i < 60; ++i) {
      sketch.AddElement(BitVec::Random(80, rng));
    }
    const std::string blob = SketchCodec::Encode(sketch);
    Result<StructuredF0> decoded = SketchCodec::DecodeStructuredF0(blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_DOUBLE_EQ(decoded.value().Estimate(), sketch.Estimate());
    EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);
  }
}

TEST(StructuredSketchCodecTest, StandaloneStructuredBucketRowRoundTrips) {
  Rng rng(13);
  StructuredBucketRow row(AffineHash::SampleToeplitz(10, 10, rng), 6);
  for (int i = 0; i < 200; ++i) row.AddElement(BitVec::Random(10, rng));
  EXPECT_GT(row.level(), 0);
  const std::string blob = SketchCodec::Encode(row);
  Result<StructuredBucketRow> decoded =
      SketchCodec::DecodeStructuredBucketRow(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().level(), row.level());
  EXPECT_EQ(decoded.value().bucket(), row.bucket());
  EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);
}

TEST(StructuredSketchCodecTest, RejectsStructurallyInvalidRowState) {
  Rng rng(17);
  StructuredBucketRow honest(AffineHash::SampleToeplitz(10, 10, rng), 4);
  for (int i = 0; i < 200; ++i) honest.AddElement(BitVec::Random(10, rng));
  ASSERT_GT(honest.level(), 0);

  // An element outside the cell at the row's level: the from-parts
  // constructor accepts it (the codec is the validation boundary), the
  // decoder must not.
  std::set<BitVec> bucket = honest.bucket();
  ASSERT_FALSE(bucket.empty());
  bucket.erase(bucket.begin());
  BitVec outside(10);
  while (honest.InCell(outside, honest.level())) {
    ASSERT_TRUE(outside.Increment());
  }
  bucket.insert(outside);
  const StructuredBucketRow tampered(honest.hash(), honest.thresh(),
                                     honest.level(), std::move(bucket));
  EXPECT_FALSE(
      SketchCodec::DecodeStructuredBucketRow(SketchCodec::Encode(tampered))
          .ok());

  // An over-full bucket below the deepest level is unreachable state too.
  std::set<BitVec> oversized;
  BitVec x(10);
  while (oversized.size() <= honest.thresh()) {
    if (honest.InCell(x, honest.level())) oversized.insert(x);
    if (!x.Increment()) break;
  }
  ASSERT_GT(oversized.size(), honest.thresh());
  const StructuredBucketRow overfull(honest.hash(), honest.thresh(),
                                     honest.level(), std::move(oversized));
  EXPECT_FALSE(
      SketchCodec::DecodeStructuredBucketRow(SketchCodec::Encode(overfull))
          .ok());
}

// ---- fuzz -----------------------------------------------------------------

TEST(StructuredSketchCodecTest, RejectsTruncationAtEveryPrefixLength) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0 sketch =
        BuildSketch(SmallParams(algorithm), MakeTerms(12, 12, 19));
    const std::string blob = SketchCodec::Encode(sketch);
    for (size_t len = 0; len < blob.size(); ++len) {
      EXPECT_FALSE(SketchCodec::DecodeStructuredF0(
                       std::string_view(blob).substr(0, len))
                       .ok())
          << "prefix of length " << len << " decoded";
    }
  }
}

TEST(StructuredSketchCodecTest, RejectsCorruptedBytes) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    // Embedded-hash frames too: flips inside serialized hash state must
    // be caught (by the checksum) exactly like flips in row state. Rows
    // are shuffled so the encoder genuinely embeds.
    StructuredF0 built = BuildSketch(SmallParams(algorithm),
                                     MakeTerms(12, 12, 23));
    StructuredF0::Parts parts = std::move(built).ReleaseParts();
    if (algorithm == StructuredF0Algorithm::kMinimum) {
      std::swap(parts.minimum[0], parts.minimum[1]);
    } else {
      std::swap(parts.bucketing[0], parts.bucketing[1]);
    }
    parts.hashes_canonical = false;
    const StructuredF0 embedded = StructuredF0::FromParts(std::move(parts));
    for (const bool use_embedded : {false, true}) {
      const StructuredF0& sketch =
          use_embedded ? embedded
                       : BuildSketch(SmallParams(algorithm),
                                     MakeTerms(12, 12, 23));
      const std::string blob = SketchCodec::Encode(sketch);
      for (size_t pos = 0; pos < blob.size(); pos += 7) {
        std::string corrupt = blob;
        corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x2a);
        EXPECT_FALSE(SketchCodec::DecodeStructuredF0(corrupt).ok())
            << "flip at byte " << pos << " decoded";
      }
      EXPECT_FALSE(SketchCodec::DecodeStructuredF0(blob + "x").ok());
    }
  }
}

TEST(StructuredSketchCodecTest, RejectsHostileParameterBlocks) {
  // Patch a genuine structured frame's params bytes and re-wrap with a
  // fresh checksum; validation must refuse each mutation cleanly.
  const StructuredF0 sketch = BuildSketch(
      SmallParams(StructuredF0Algorithm::kMinimum), MakeTerms(12, 6, 29));
  const std::string blob = SketchCodec::Encode(sketch);
  const std::string payload(std::string_view(blob).substr(24));
  // Structured params layout: u8 algorithm, varint n (one byte here),
  // f64 eps, f64 delta, u64 seed, varint thresh_override, varint
  // rows_override.
  {
    std::string evil = payload;
    evil[0] = 9;  // unknown algorithm
    EXPECT_FALSE(SketchCodec::DecodeStructuredF0(
                     wire::WrapFrame(SketchFrameKind::kStructuredF0,
                                     SketchCodec::kFormatV2, evil))
                     .ok());
  }
  {
    std::string evil = payload;
    evil[1] = 0;  // n = 0
    EXPECT_FALSE(SketchCodec::DecodeStructuredF0(
                     wire::WrapFrame(SketchFrameKind::kStructuredF0,
                                     SketchCodec::kFormatV2, evil))
                     .ok());
  }
  {
    // v1-tagged structured frames do not exist.
    EXPECT_FALSE(SketchCodec::DecodeStructuredF0(
                     wire::WrapFrame(SketchFrameKind::kStructuredF0,
                                     SketchCodec::kFormatV1, payload))
                     .ok());
  }
}

// ---- reader + streaming merge ---------------------------------------------

TEST(StructuredSketchReaderTest, YieldsEveryRowInLayoutOrder) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    const StructuredF0 sketch = BuildSketch(params, MakeTerms(12, 15, 31));
    const std::string blob = SketchCodec::Encode(sketch);

    auto opened = SketchReader::Open(blob);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    SketchReader reader = std::move(opened).value();
    EXPECT_TRUE(reader.structured());
    EXPECT_EQ(reader.frame_kind(), SketchFrameKind::kStructuredF0);
    EXPECT_TRUE(reader.structured_params() == params);
    EXPECT_TRUE(reader.hashes_elided());
    EXPECT_EQ(reader.num_units(), StructuredF0Rows(params));
    int units = 0;
    while (!reader.AtEnd()) {
      auto unit = reader.Next();
      ASSERT_TRUE(unit.ok()) << unit.status().ToString();
      const bool expect_minimum =
          algorithm == StructuredF0Algorithm::kMinimum;
      EXPECT_EQ(std::holds_alternative<MinimumSketchRow>(unit.value()),
                expect_minimum);
      EXPECT_EQ(std::holds_alternative<StructuredBucketRow>(unit.value()),
                !expect_minimum);
      ++units;
    }
    EXPECT_EQ(units, StructuredF0Rows(params));
  }
}

TEST(StructuredSketchMergeTest, SplitDnfThenMergeEqualsSinglePass) {
  // Theorem 5 under map-reduce: split a DNF's terms across shards, merge
  // the shard sketches, and the result equals (byte for byte) the sketch
  // of a single pass over every term — in memory and through the
  // bounded-memory streaming reducer alike.
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    const std::vector<Term> terms = MakeTerms(12, 24, 37);

    const StructuredF0 single = BuildSketch(params, terms);

    constexpr int kShards = 8;
    std::vector<std::string> blobs;
    StructuredF0 merged(params);
    for (int s = 0; s < kShards; ++s) {
      StructuredF0 shard(params);
      for (size_t i = s; i < terms.size(); i += kShards) {
        shard.AddTerms({terms[i]});
      }
      blobs.push_back(SketchCodec::Encode(shard));
      ASSERT_TRUE(Merge(merged, shard).ok());
    }
    EXPECT_EQ(SketchCodec::Encode(merged), SketchCodec::Encode(single));
    EXPECT_DOUBLE_EQ(merged.Estimate(), single.Estimate());
    EXPECT_TRUE(merged.hashes_canonical());  // merging preserves the flag

    std::stringstream out;
    const std::vector<std::string_view> views(blobs.begin(), blobs.end());
    auto stats = MergeSketchStreams(views, SketchCodec::kFormatV2, out);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(out.str(), SketchCodec::Encode(single));
    EXPECT_LE(stats.value().max_resident_units, 2);
    EXPECT_EQ(stats.value().units, StructuredF0Rows(params));
  }
}

TEST(StructuredSketchMergeTest, ShardedEngineEqualsSinglePassBytes) {
  // The in-process twin of the map-reduce test above: the same term
  // stream through ShardedStructuredEngine (items sharded across
  // same-seed replicas, merged on query) must produce the same bytes as
  // the single-pass sketch — for both algorithm variants.
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    const std::vector<Term> terms = MakeTerms(12, 24, 37);
    const StructuredF0 single = BuildSketch(params, terms);

    ShardedStructuredEngine engine(params, 4);
    for (const Term& t : terms) engine.AddTerms({t});
    StructuredF0 merged = engine.MergedSketch();
    EXPECT_EQ(SketchCodec::Encode(merged), SketchCodec::Encode(single));
    EXPECT_TRUE(merged.hashes_canonical());
    EXPECT_DOUBLE_EQ(engine.Estimate(), single.Estimate());
  }
}

TEST(StructuredSketchMergeTest, EngineAffineItemsEqualDirectAddAffine) {
  // Theorem 7 items through the engine's StructuredItem path: affine
  // spaces sharded across replicas merge to the direct-AddAffine sketch.
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    Rng rng(55);
    StructuredF0 single(params);
    ShardedStructuredEngine engine(params, 3);
    for (int i = 0; i < 6; ++i) {
      const Gf2Matrix a = Gf2Matrix::Random(3, params.n, rng);
      const BitVec b = BitVec::Random(3, rng);
      single.AddAffine(a, b);
      engine.AddAffine(a, b);
    }
    EXPECT_EQ(SketchCodec::Encode(engine.MergedSketch()),
              SketchCodec::Encode(single));
  }
}

TEST(StructuredSketchMergeTest, MergeIsCommutativeAndIdempotent) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0Params params = SmallParams(algorithm);
    const StructuredF0 a = BuildSketch(params, MakeTerms(12, 10, 41));
    const StructuredF0 b = BuildSketch(params, MakeTerms(12, 10, 43));

    auto clone = [](const StructuredF0& sketch) {
      auto decoded =
          SketchCodec::DecodeStructuredF0(SketchCodec::Encode(sketch));
      EXPECT_TRUE(decoded.ok());
      return std::move(decoded).value();
    };
    StructuredF0 ab = clone(a);
    ASSERT_TRUE(Merge(ab, b).ok());
    StructuredF0 ba = clone(b);
    ASSERT_TRUE(Merge(ba, a).ok());
    EXPECT_EQ(SketchCodec::Encode(ab), SketchCodec::Encode(ba));

    StructuredF0 aa = clone(a);
    ASSERT_TRUE(Merge(aa, a).ok());
    EXPECT_EQ(SketchCodec::Encode(aa), SketchCodec::Encode(a));
  }
}

TEST(StructuredSketchMergeTest, SelfMergeIsAnAliasSafeNoOp) {
  // Merge(x, x) must stay the idempotent no-op it always was — the parts
  // exchange consumes `into`, so without the alias short-circuit it would
  // empty `from` mid-merge and spuriously fail.
  const StructuredF0Params params =
      SmallParams(StructuredF0Algorithm::kMinimum);
  StructuredF0 sketch = BuildSketch(params, MakeTerms(12, 8, 71));
  const std::string before = SketchCodec::Encode(sketch);
  ASSERT_TRUE(Merge(sketch, sketch).ok());
  EXPECT_EQ(SketchCodec::Encode(sketch), before);

  F0Params raw_params;
  raw_params.n = 16;
  raw_params.thresh_override = 8;
  raw_params.rows_override = 3;
  F0Estimator est(raw_params);
  for (uint64_t x = 0; x < 40; ++x) est.Add(x * 977);
  const std::string raw_before = SketchCodec::Encode(est);
  ASSERT_TRUE(Merge(est, est).ok());
  EXPECT_EQ(SketchCodec::Encode(est), raw_before);
}

TEST(StructuredSketchMergeTest, RejectsMismatchedSketches) {
  StructuredF0 seed7(SmallParams(StructuredF0Algorithm::kMinimum, 7));
  StructuredF0 seed8(SmallParams(StructuredF0Algorithm::kMinimum, 8));
  EXPECT_FALSE(Merge(seed7, seed8).ok());

  Rng rng(5);
  StructuredBucketRow row_a(AffineHash::SampleToeplitz(10, 10, rng), 4);
  StructuredBucketRow row_b(AffineHash::SampleToeplitz(10, 10, rng), 4);
  EXPECT_FALSE(Merge(row_a, row_b).ok());  // independently sampled hashes
}

TEST(StructuredSketchMergeTest, LabeledSourcesNameTheBadShardInOnePass) {
  const StructuredF0Params params =
      SmallParams(StructuredF0Algorithm::kMinimum);
  const std::vector<Term> terms = MakeTerms(12, 32, 47);
  constexpr int kShards = 32;
  std::vector<std::string> blobs;
  for (int s = 0; s < kShards; ++s) {
    StructuredF0 shard(params);
    shard.AddTerms({terms[s]});
    blobs.push_back(SketchCodec::Encode(shard));
  }
  std::vector<std::string> names;
  for (int s = 0; s < kShards; ++s) {
    names.push_back("shard_" + std::to_string(s) + ".mcf0");
  }
  auto sources = [&] {
    std::vector<LabeledSource> labeled;
    for (int s = 0; s < kShards; ++s) {
      labeled.push_back(LabeledSource{names[s], blobs[s]});
    }
    return labeled;
  };

  // Corrupt shard 13 mid-payload: the error names exactly that file.
  std::string saved = blobs[13];
  blobs[13][40] = static_cast<char>(blobs[13][40] ^ 0x2a);
  {
    std::stringstream out;
    auto stats = MergeSketchStreams(sources(), SketchCodec::kFormatV2, out);
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().message().find("shard_13.mcf0"),
              std::string::npos)
        << stats.status().ToString();
  }
  blobs[13] = std::move(saved);

  // Mismatched parameters are named too, against the baseline shard.
  StructuredF0 other(SmallParams(StructuredF0Algorithm::kMinimum, 99));
  blobs[21] = SketchCodec::Encode(other);
  {
    std::stringstream out;
    auto stats = MergeSketchStreams(sources(), SketchCodec::kFormatV2, out);
    ASSERT_FALSE(stats.ok());
    EXPECT_NE(stats.status().message().find("shard_21.mcf0"),
              std::string::npos)
        << stats.status().ToString();
    EXPECT_NE(stats.status().message().find("shard_0.mcf0"),
              std::string::npos)
        << stats.status().ToString();
  }
}

TEST(StructuredSketchMergeTest, StreamingMergeRefusesV1Output) {
  const StructuredF0Params params =
      SmallParams(StructuredF0Algorithm::kMinimum);
  const std::string blob =
      SketchCodec::Encode(BuildSketch(params, MakeTerms(12, 4, 53)));
  std::stringstream out;
  EXPECT_FALSE(
      MergeSketchStreams({blob, blob}, SketchCodec::kFormatV1, out).ok());
}

// ---- SketchVariant --------------------------------------------------------

TEST(SketchVariantTest, DecodeDispatchesOnFrameKind) {
  F0Params raw_params;
  raw_params.n = 16;
  raw_params.thresh_override = 8;
  raw_params.rows_override = 3;
  F0Estimator raw(raw_params);
  for (uint64_t x = 0; x < 50; ++x) raw.Add(x * 977);
  const StructuredF0 structured = BuildSketch(
      SmallParams(StructuredF0Algorithm::kBucketing), MakeTerms(12, 8, 59));

  auto from_raw = SketchVariant::Decode(SketchCodec::Encode(raw));
  ASSERT_TRUE(from_raw.ok()) << from_raw.status().ToString();
  EXPECT_FALSE(from_raw.value().structured());
  EXPECT_EQ(from_raw.value().kind(), SketchFrameKind::kF0Estimator);
  EXPECT_DOUBLE_EQ(from_raw.value().Estimate(), raw.Estimate());
  EXPECT_EQ(from_raw.value().Encode(), SketchCodec::Encode(raw));

  auto from_structured =
      SketchVariant::Decode(SketchCodec::Encode(structured));
  ASSERT_TRUE(from_structured.ok()) << from_structured.status().ToString();
  EXPECT_TRUE(from_structured.value().structured());
  EXPECT_DOUBLE_EQ(from_structured.value().Estimate(), structured.Estimate());
  EXPECT_EQ(from_structured.value().Encode(), SketchCodec::Encode(structured));

  // Kinds do not merge with each other.
  SketchVariant into = std::move(from_raw).value();
  EXPECT_FALSE(Merge(into, from_structured.value()).ok());

  // Row frames are rejected, not misdecoded.
  Rng rng(61);
  MinimumSketchRow row(16, 4, rng);
  EXPECT_FALSE(SketchVariant::Decode(SketchCodec::Encode(row)).ok());
}

TEST(StructuredSketchCodecTest, PackedCellsKeepSparseEstimationFramesValid) {
  // Regression guard for the v2 cell bit-packing: a single-row Estimation
  // frame's packed cell block occupies fewer *bytes* than it has cells,
  // so decoder bounds keyed to one-byte-per-cell would misreport a
  // legitimate frame as truncated. Round-trip the sparsest such shape.
  F0Params params;
  params.n = 24;
  params.algorithm = F0Algorithm::kEstimation;
  params.thresh_override = 100;
  params.rows_override = 1;
  params.s_override = 2;
  F0Estimator est(params);  // empty: all cells zero, maximal packing win
  const std::string blob = SketchCodec::Encode(est);
  Result<F0Estimator> decoded = SketchCodec::DecodeF0Estimator(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);
}

// ---- the O(1) canonical-encode contract -----------------------------------

TEST(CanonicalEncodeTest, FreshAndDecodedSketchesEncodeWithZeroDraws) {
  // The acceptance bar of the sealed API: Encode of a freshly constructed
  // or canonically decoded estimator performs zero F0RowSampler draws —
  // the hashes_canonical attestation replaces the per-encode replay.
  for (const F0Algorithm algorithm :
       {F0Algorithm::kBucketing, F0Algorithm::kMinimum,
        F0Algorithm::kEstimation}) {
    F0Params params;
    params.n = 24;
    params.algorithm = algorithm;
    params.thresh_override = 20;
    params.rows_override = 5;
    params.s_override = 4;
    F0Estimator est(params);  // draws rows (counted)
    EXPECT_TRUE(est.hashes_canonical());
    for (uint64_t x = 0; x < 300; ++x) est.Add(x * 2654435761ull);

    const uint64_t before = TotalSamplerRowDraws();
    const std::string blob = SketchCodec::Encode(est);
    EXPECT_EQ(TotalSamplerRowDraws(), before) << "encode-after-construct "
                                                 "re-ran the sampler";

    // Elided decode re-derives hashes (draws) but attests canonicality,
    // so the *re-encode* is draw-free again.
    Result<F0Estimator> decoded = SketchCodec::DecodeF0Estimator(blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_TRUE(decoded.value().hashes_canonical());
    const uint64_t after_decode = TotalSamplerRowDraws();
    EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);
    EXPECT_EQ(TotalSamplerRowDraws(), after_decode)
        << "encode-after-canonical-decode re-ran the sampler";

    // v1 decode carries no attestation; the v2 re-encode takes the slow
    // replay path (draws) and still elides correctly.
    Result<F0Estimator> from_v1 = SketchCodec::DecodeF0Estimator(
        SketchCodec::Encode(est, SketchCodec::kFormatV1));
    ASSERT_TRUE(from_v1.ok());
    EXPECT_FALSE(from_v1.value().hashes_canonical());
    const uint64_t before_slow = TotalSamplerRowDraws();
    EXPECT_EQ(SketchCodec::Encode(from_v1.value()), blob);
    EXPECT_GT(TotalSamplerRowDraws(), before_slow);
  }
}

TEST(CanonicalEncodeTest, StructuredSketchesShareTheContract) {
  for (const StructuredF0Algorithm algorithm : kBothAlgorithms) {
    const StructuredF0 sketch =
        BuildSketch(SmallParams(algorithm), MakeTerms(12, 10, 67));
    EXPECT_TRUE(sketch.hashes_canonical());
    const uint64_t before = TotalSamplerRowDraws();
    const std::string blob = SketchCodec::Encode(sketch);
    EXPECT_EQ(TotalSamplerRowDraws(), before);

    Result<StructuredF0> decoded = SketchCodec::DecodeStructuredF0(blob);
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(decoded.value().hashes_canonical());
    const uint64_t after_decode = TotalSamplerRowDraws();
    EXPECT_EQ(SketchCodec::Encode(decoded.value()), blob);
    EXPECT_EQ(TotalSamplerRowDraws(), after_decode);
  }
}

TEST(CanonicalEncodeTest, MergePreservesTheAttestation) {
  const F0Params params = [] {
    F0Params p;
    p.n = 20;
    p.thresh_override = 12;
    p.rows_override = 4;
    return p;
  }();
  F0Estimator a(params);
  F0Estimator b(params);
  for (uint64_t x = 0; x < 200; ++x) (x % 2 ? a : b).Add(x * 7919);
  ASSERT_TRUE(a.hashes_canonical() && b.hashes_canonical());
  ASSERT_TRUE(Merge(a, b).ok());
  EXPECT_TRUE(a.hashes_canonical());
  const uint64_t before = TotalSamplerRowDraws();
  SketchCodec::Encode(a);
  EXPECT_EQ(TotalSamplerRowDraws(), before);
}

}  // namespace
}  // namespace mcf0
