// Tests for the structured-set streaming layer (§5): the Lemma 4 range ->
// DNF decomposition is verified point-by-point against range membership;
// the StructuredF0 estimators (both strategies) are checked against exact
// union sizes for DNF sets, ranges, arithmetic progressions, affine
// spaces, and singleton elements.
#include "setstream/structured_f0.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"
#include "setstream/exact_union.hpp"
#include "setstream/range_to_dnf.hpp"

namespace mcf0 {
namespace {

TEST(RangeDimensionTerms, CoversExactlyTheRange) {
  Rng rng(3);
  const int nbits = 10;
  for (int trial = 0; trial < 40; ++trial) {
    uint64_t a = rng.NextBelow(1u << nbits);
    uint64_t b = rng.NextBelow(1u << nbits);
    if (a > b) std::swap(a, b);
    const auto terms = RangeDimensionTerms(a, b, 0, nbits, 0);
    EXPECT_LE(terms.size(), 2u * nbits);  // Lemma 4 size bound
    for (uint64_t v = 0; v < (1u << nbits); ++v) {
      const BitVec x = BitVec::FromU64(v, nbits);
      int hits = 0;
      for (const Term& t : terms) hits += t.Eval(x);
      const bool in_range = a <= v && v <= b;
      EXPECT_EQ(hits > 0, in_range) << "v=" << v;
      EXPECT_LE(hits, 1) << "dyadic pieces must be disjoint";
    }
  }
}

TEST(RangeDimensionTerms, FullAndSingletonRanges) {
  // Full range: one empty term. Singleton: one fully fixed term.
  const auto full = RangeDimensionTerms(0, 255, 0, 8, 0);
  ASSERT_EQ(full.size(), 1u);
  EXPECT_EQ(full[0].Width(), 0);
  const auto single = RangeDimensionTerms(77, 77, 0, 8, 0);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].Width(), 8);
}

TEST(RangeDimensionTerms, ArithmeticProgressionMembership) {
  // [a, b, 2^l]: x in [a, b] and x = a (mod 2^l) — Corollary 1.
  Rng rng(5);
  const int nbits = 9;
  for (int trial = 0; trial < 30; ++trial) {
    uint64_t a = rng.NextBelow(1u << nbits);
    uint64_t b = rng.NextBelow(1u << nbits);
    if (a > b) std::swap(a, b);
    const int l = 1 + static_cast<int>(rng.NextBelow(4));
    const auto terms = RangeDimensionTerms(a, b, l, nbits, 0);
    const uint64_t mask = (1ull << l) - 1;
    for (uint64_t v = 0; v < (1u << nbits); ++v) {
      const BitVec x = BitVec::FromU64(v, nbits);
      bool covered = false;
      for (const Term& t : terms) covered = covered || t.Eval(x);
      const bool expect = a <= v && v <= b && (v & mask) == (a & mask);
      EXPECT_EQ(covered, expect) << "v=" << v << " l=" << l;
    }
  }
}

TEST(RangeToDnf, MultiDimMembershipMatches) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const int bits = 4;
    const int d = 2;
    const MultiDimRange range = MultiDimRange::Random(d, bits, rng);
    const Dnf dnf = RangeToDnf(range);
    EXPECT_EQ(dnf.num_vars(), d * bits);
    for (uint64_t v = 0; v < (1u << (d * bits)); ++v) {
      const BitVec x = BitVec::FromU64(v, d * bits);
      // Variable layout: dim 0 occupies the leading bits.
      const std::vector<uint64_t> point = {v >> bits, v & ((1u << bits) - 1)};
      EXPECT_EQ(dnf.Eval(x), range.Contains(point)) << v;
    }
  }
}

TEST(RangeTermEnumerator, ProductCountAndConsistency) {
  Rng rng(11);
  const MultiDimRange range = MultiDimRange::Random(3, 6, rng);
  const RangeTermEnumerator terms(range);
  EXPECT_EQ(terms.num_vars(), 18);
  const auto all = terms.AllTerms();
  EXPECT_EQ(all.size(), terms.NumTerms());
  EXPECT_LE(all.size(), static_cast<uint64_t>(12 * 12 * 12));  // (2n)^d
  for (uint64_t i = 0; i < terms.NumTerms(); ++i) {
    EXPECT_EQ(terms.TermAt(i), all[i]);
  }
}

TEST(MultiDimRange, VolumeAndContains) {
  MultiDimRange r(2, 8);
  r.SetDim(0, DimRange{10, 20, 0});
  r.SetDim(1, DimRange{0, 255, 0});
  EXPECT_DOUBLE_EQ(r.Volume(), 11.0 * 256.0);
  EXPECT_TRUE(r.Contains({15, 100}));
  EXPECT_FALSE(r.Contains({9, 100}));
  r.SetDim(1, DimRange{4, 40, 3});  // step 8: 4, 12, 20, 28, 36
  EXPECT_DOUBLE_EQ(r.Volume(), 11.0 * 5.0);
  EXPECT_TRUE(r.Contains({15, 12}));
  EXPECT_FALSE(r.Contains({15, 13}));
}

TEST(ExactRangeUnion, MatchesEnumerationSmall) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int bits = 5;
    std::vector<MultiDimRange> ranges;
    for (int i = 0; i < 4; ++i) {
      ranges.push_back(MultiDimRange::Random(2, bits, rng));
    }
    // Brute force over the 2^10 grid.
    uint64_t expect = 0;
    for (uint64_t a = 0; a < (1u << bits); ++a) {
      for (uint64_t b = 0; b < (1u << bits); ++b) {
        for (const auto& r : ranges) {
          if (r.Contains({a, b})) {
            ++expect;
            break;
          }
        }
      }
    }
    EXPECT_DOUBLE_EQ(ExactRangeUnionSize(ranges), static_cast<double>(expect));
  }
}

StructuredF0Params FastParams(int n, StructuredF0Algorithm alg, uint64_t seed) {
  StructuredF0Params p;
  p.n = n;
  p.eps = 0.6;
  p.delta = 0.2;
  p.rows_override = 15;
  p.seed = seed;
  p.algorithm = alg;
  return p;
}

class StructuredBothStrategies
    : public ::testing::TestWithParam<StructuredF0Algorithm> {};

TEST_P(StructuredBothStrategies, DnfStreamMatchesExactUnion) {
  Rng rng(17);
  const int n = 14;
  std::vector<Dnf> stream;
  for (int i = 0; i < 6; ++i) stream.push_back(RandomDnf(n, 3, 2, 6, rng));
  const double exact =
      static_cast<double>(ExactDnfUnionSize(stream, n));
  StructuredF0 est(FastParams(n, GetParam(), 23));
  for (const Dnf& d : stream) est.AddDnf(d);
  EXPECT_GE(est.Estimate(), exact / 2.3);
  EXPECT_LE(est.Estimate(), exact * 2.3);
}

TEST_P(StructuredBothStrategies, RangeStreamMatchesExactUnion) {
  Rng rng(19);
  const int bits = 7;
  const int d = 2;
  std::vector<MultiDimRange> ranges;
  for (int i = 0; i < 8; ++i) {
    ranges.push_back(MultiDimRange::Random(d, bits, rng));
  }
  const double exact = ExactRangeUnionSize(ranges);
  StructuredF0 est(FastParams(d * bits, GetParam(), 29));
  for (const auto& r : ranges) est.AddRange(r);
  EXPECT_GE(est.Estimate(), exact / 2.3);
  EXPECT_LE(est.Estimate(), exact * 2.3);
}

TEST_P(StructuredBothStrategies, AffineStreamMatchesExactUnion) {
  Rng rng(23);
  const int n = 14;
  std::vector<std::pair<Gf2Matrix, BitVec>> systems;
  for (int i = 0; i < 5; ++i) {
    const int rows = 3 + static_cast<int>(rng.NextBelow(4));
    systems.emplace_back(Gf2Matrix::Random(rows, n, rng),
                         BitVec::Random(rows, rng));
  }
  const double exact =
      static_cast<double>(ExactAffineUnionSize(systems, n));
  StructuredF0 est(FastParams(n, GetParam(), 31));
  for (const auto& [a, b] : systems) est.AddAffine(a, b);
  EXPECT_GE(est.Estimate(), exact / 2.3);
  EXPECT_LE(est.Estimate(), exact * 2.3);
}

TEST_P(StructuredBothStrategies, SingletonElementsActAsClassicStream) {
  Rng rng(29);
  const int n = 16;
  std::set<uint64_t> distinct;
  StructuredF0 est(FastParams(n, GetParam(), 37));
  for (int i = 0; i < 800; ++i) {
    const uint64_t v = rng.NextBelow(500);
    distinct.insert(v);
    est.AddElement(BitVec::FromU64(v, n));
  }
  const double exact = static_cast<double>(distinct.size());
  EXPECT_GE(est.Estimate(), exact / 2.3);
  EXPECT_LE(est.Estimate(), exact * 2.3);
}

TEST_P(StructuredBothStrategies, MixedItemTypesCompose) {
  // DNFs, ranges (as terms over the same universe), affine spaces, and
  // elements all contribute to one union.
  Rng rng(31);
  const int n = 12;
  StructuredF0 est(FastParams(n, GetParam(), 41));
  std::set<BitVec> exact;
  // A DNF item.
  const Dnf dnf = RandomDnf(n, 2, 3, 5, rng);
  est.AddDnf(dnf);
  // An affine item.
  const Gf2Matrix a = Gf2Matrix::Random(5, n, rng);
  const BitVec b = BitVec::Random(5, rng);
  est.AddAffine(a, b);
  // Elements.
  for (int i = 0; i < 20; ++i) {
    const BitVec x = BitVec::Random(n, rng);
    est.AddElement(x);
    exact.insert(x);
  }
  BitVec x(n);
  for (uint64_t v = 0; v < (1u << n); ++v) {
    if (dnf.Eval(x) || (a.Mul(x) ^ b).IsZero()) exact.insert(x);
    x.Increment();
  }
  const double expect = static_cast<double>(exact.size());
  EXPECT_GE(est.Estimate(), expect / 2.3);
  EXPECT_LE(est.Estimate(), expect * 2.3);
}

INSTANTIATE_TEST_SUITE_P(Strategies, StructuredBothStrategies,
                         ::testing::Values(StructuredF0Algorithm::kMinimum,
                                           StructuredF0Algorithm::kBucketing),
                         [](const auto& info) {
                           return info.param == StructuredF0Algorithm::kMinimum
                                      ? "Minimum"
                                      : "Bucketing";
                         });

TEST(StructuredF0, ArithmeticProgressionStream) {
  // Corollary 1: progressions with power-of-two steps; exact count by
  // enumeration of the small universe.
  Rng rng(37);
  const int bits = 10;
  std::vector<MultiDimRange> aps;
  for (int i = 0; i < 6; ++i) {
    MultiDimRange r(1, bits);
    uint64_t a = rng.NextBelow(1u << bits);
    uint64_t b = rng.NextBelow(1u << bits);
    if (a > b) std::swap(a, b);
    r.SetDim(0, DimRange{a, b, static_cast<int>(rng.NextBelow(3))});
    aps.push_back(r);
  }
  uint64_t exact = 0;
  for (uint64_t v = 0; v < (1u << bits); ++v) {
    for (const auto& r : aps) {
      if (r.Contains({v})) {
        ++exact;
        break;
      }
    }
  }
  StructuredF0 est(FastParams(bits, StructuredF0Algorithm::kMinimum, 43));
  for (const auto& r : aps) est.AddRange(r);
  EXPECT_GE(est.Estimate(), static_cast<double>(exact) / 2.3);
  EXPECT_LE(est.Estimate(), static_cast<double>(exact) * 2.3);
}

TEST(StructuredF0, EmptyStreamIsZero) {
  StructuredF0 est(FastParams(10, StructuredF0Algorithm::kMinimum, 1));
  EXPECT_EQ(est.Estimate(), 0.0);
}

TEST(StructuredF0, SmallUnionsAreExactUnderMinimum) {
  // Union smaller than Thresh: the KMV sketch is exact (3n-bit hashes).
  StructuredF0Params p = FastParams(12, StructuredF0Algorithm::kMinimum, 3);
  StructuredF0 est(p);
  Dnf dnf(12);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false)}));
  est.AddDnf(dnf);  // 2^6 = 64 solutions < Thresh
  EXPECT_DOUBLE_EQ(est.Estimate(), 64.0);
}

TEST(StructuredF0, SpaceBitsBounded) {
  StructuredF0 est(FastParams(16, StructuredF0Algorithm::kMinimum, 5));
  Rng rng(41);
  for (int i = 0; i < 5; ++i) est.AddDnf(RandomDnf(16, 4, 2, 5, rng));
  EXPECT_GT(est.SpaceBits(), 0u);
  // Thresh values of 3n bits per row plus hash seeds.
  const size_t bound =
      static_cast<size_t>(est.rows()) *
      (est.thresh() * 48 + 3 * (16 + 48) + 128);
  EXPECT_LE(est.SpaceBits(), bound);
}

}  // namespace
}  // namespace mcf0
