// Tests for Gf2Matrix: algebraic identities and brute-force cross-checks.
#include "gf2/gf2_matrix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mcf0 {
namespace {

TEST(Gf2Matrix, IdentityMulIsIdentityMap) {
  Rng rng(3);
  const Gf2Matrix id = Gf2Matrix::Identity(40);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec x = BitVec::Random(40, rng);
    EXPECT_EQ(id.Mul(x), x);
  }
}

TEST(Gf2Matrix, MulMatchesBitwiseReference) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int rows = 1 + static_cast<int>(rng.NextBelow(20));
    const int cols = 1 + static_cast<int>(rng.NextBelow(70));
    const Gf2Matrix a = Gf2Matrix::Random(rows, cols, rng);
    const BitVec x = BitVec::Random(cols, rng);
    const BitVec y = a.Mul(x);
    for (int i = 0; i < rows; ++i) {
      bool expect = false;
      for (int j = 0; j < cols; ++j) expect ^= a.Get(i, j) && x.Get(j);
      EXPECT_EQ(y.Get(i), expect);
    }
  }
}

TEST(Gf2Matrix, MulAffineAddsOffset) {
  Rng rng(7);
  const Gf2Matrix a = Gf2Matrix::Random(12, 20, rng);
  const BitVec x = BitVec::Random(20, rng);
  const BitVec b = BitVec::Random(12, rng);
  EXPECT_EQ(a.MulAffine(x, b), a.Mul(x) ^ b);
}

TEST(Gf2Matrix, MulMatrixAssociatesWithMulVector) {
  // (A * B) x == A (B x) — checked over random instances.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Gf2Matrix a = Gf2Matrix::Random(8, 12, rng);
    const Gf2Matrix b = Gf2Matrix::Random(12, 9, rng);
    const Gf2Matrix ab = a.MulMatrix(b);
    EXPECT_EQ(ab.rows(), 8);
    EXPECT_EQ(ab.cols(), 9);
    const BitVec x = BitVec::Random(9, rng);
    EXPECT_EQ(ab.Mul(x), a.Mul(b.Mul(x)));
  }
}

TEST(Gf2Matrix, TransposeInvolution) {
  Rng rng(13);
  const Gf2Matrix a = Gf2Matrix::Random(15, 33, rng);
  EXPECT_EQ(a.Transposed().Transposed(), a);
}

TEST(Gf2Matrix, TransposeEntries) {
  Rng rng(17);
  const Gf2Matrix a = Gf2Matrix::Random(6, 10, rng);
  const Gf2Matrix t = a.Transposed();
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 10; ++j) EXPECT_EQ(a.Get(i, j), t.Get(j, i));
  }
}

TEST(Gf2Matrix, PrefixRowsAndRowSlice) {
  Rng rng(19);
  const Gf2Matrix a = Gf2Matrix::Random(9, 14, rng);
  const Gf2Matrix p = a.PrefixRows(4);
  EXPECT_EQ(p.rows(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(p.Row(i), a.Row(i));
  const Gf2Matrix s = a.RowSlice(3, 7);
  EXPECT_EQ(s.rows(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(s.Row(i), a.Row(i + 3));
}

TEST(Gf2Matrix, StackBelow) {
  Rng rng(23);
  const Gf2Matrix a = Gf2Matrix::Random(3, 8, rng);
  const Gf2Matrix b = Gf2Matrix::Random(5, 8, rng);
  const Gf2Matrix s = a.StackBelow(b);
  EXPECT_EQ(s.rows(), 8);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(s.Row(i), a.Row(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.Row(3 + i), b.Row(i));
}

TEST(Gf2Matrix, SelectColumns) {
  Rng rng(29);
  const Gf2Matrix a = Gf2Matrix::Random(7, 12, rng);
  const std::vector<int> keep = {0, 3, 11, 5};
  const Gf2Matrix s = a.SelectColumns(keep);
  EXPECT_EQ(s.cols(), 4);
  for (int i = 0; i < 7; ++i) {
    for (size_t jj = 0; jj < keep.size(); ++jj) {
      EXPECT_EQ(s.Get(i, static_cast<int>(jj)), a.Get(i, keep[jj]));
    }
  }
}

TEST(Gf2Matrix, RankIdentityAndZero) {
  EXPECT_EQ(Gf2Matrix::Identity(17).Rank(), 17);
  EXPECT_EQ(Gf2Matrix(5, 9).Rank(), 0);
}

TEST(Gf2Matrix, RankDuplicateRows) {
  Rng rng(31);
  BitVec row = BitVec::Random(20, rng);
  Gf2Matrix m(0, 20);
  m.AppendRow(row);
  m.AppendRow(row);
  m.AppendRow(row ^ row);  // zero row
  EXPECT_EQ(m.Rank(), 1);
}

TEST(Gf2Matrix, RankBoundedByMinDim) {
  Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = 1 + static_cast<int>(rng.NextBelow(12));
    const int cols = 1 + static_cast<int>(rng.NextBelow(12));
    const Gf2Matrix a = Gf2Matrix::Random(rows, cols, rng);
    const int r = a.Rank();
    EXPECT_LE(r, std::min(rows, cols));
    EXPECT_GE(r, 0);
  }
}

TEST(Gf2Matrix, RandomSparseDensity) {
  Rng rng(41);
  const Gf2Matrix sparse = Gf2Matrix::RandomSparse(100, 100, 0.05, rng);
  int ones = 0;
  for (int i = 0; i < 100; ++i) ones += sparse.Row(i).Popcount();
  // 10000 entries at density 0.05: expect ~500; allow wide slack.
  EXPECT_GT(ones, 300);
  EXPECT_LT(ones, 800);
}

}  // namespace
}  // namespace mcf0
