// Stress and feature tests for the CDCL(XOR) solver beyond the basic
// sweeps: decision-set restriction (independent support), interaction of
// XOR constraints with assumptions, enumeration under decision restriction,
// and denser randomized sweeps.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"
#include "gf2/gauss.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/cnf_oracle.hpp"
#include "sat/solver.hpp"

namespace mcf0 {
namespace {

using sat::LBool;
using sat::Lit;
using sat::Solver;
using sat::Var;

void Load(Solver* solver, const Cnf& cnf) {
  solver->EnsureVars(cnf.num_vars());
  for (const Clause& c : cnf.clauses()) {
    std::vector<Lit> lits;
    for (const auto& l : c.lits()) lits.emplace_back(l.var, l.neg);
    solver->AddClause(std::move(lits));
  }
}

TEST(RestrictDecisions, SameAnswerAsUnrestrictedWithSufficientSet) {
  // RREF an XOR system; branching on the free columns only must give the
  // same SAT/UNSAT answers as unrestricted search, across a sweep.
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 8 + static_cast<int>(rng.NextBelow(6));
    const Cnf cnf = RandomKCnf(n, 2 * n, 3, rng);
    const Gf2Matrix a = Gf2Matrix::Random(n / 2, n, rng);
    const BitVec b = BitVec::Random(n / 2, rng);

    auto build = [&](Solver* s, bool restrict) {
      Load(s, cnf);
      Gf2Eliminator elim(n);
      for (int i = 0; i < a.rows(); ++i) elim.AddEquation(a.Row(i), b.Get(i));
      if (!elim.consistent()) return false;
      for (size_t r = 0; r < elim.rows().size(); ++r) {
        std::vector<Var> vars;
        for (int j = 0; j < n; ++j) {
          if (elim.rows()[r].Get(j)) vars.push_back(j);
        }
        if (!s->AddXorClause(std::move(vars), elim.rhs()[r])) return false;
      }
      if (restrict) {
        std::vector<bool> is_pivot(n, false);
        for (const int p : elim.pivot_cols()) is_pivot[p] = true;
        std::vector<Var> decisions;
        for (int j = 0; j < n; ++j) {
          if (!is_pivot[j]) decisions.push_back(j);
        }
        s->RestrictDecisions(decisions);
      }
      return true;
    };

    Solver restricted;
    Solver unrestricted;
    const bool ok_r = build(&restricted, true);
    const bool ok_u = build(&unrestricted, false);
    ASSERT_EQ(ok_r, ok_u);
    if (!ok_r) continue;
    const LBool res_r = restricted.Solve();
    const LBool res_u = unrestricted.Solve();
    EXPECT_EQ(res_r, res_u);
    if (res_r == LBool::kTrue) {
      const BitVec m = restricted.ModelBits(n);
      EXPECT_TRUE(cnf.Eval(m));
      EXPECT_EQ(a.Mul(m), b);
    }
  }
}

TEST(RestrictDecisions, FallbackCoversInsufficientSets) {
  // Deliberately insufficient decision set: var 1 is neither decidable nor
  // forced; the defensive fallback must still complete the model.
  Solver s;
  s.EnsureVars(3);
  s.AddClause({Lit(0, false), Lit(1, false)});
  s.RestrictDecisions({0, 2});
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  // All three variables must have ended up assigned for a valid model.
  const BitVec m = s.ModelBits(3);
  Cnf cnf(3);
  cnf.AddClause(Clause({mcf0::Lit(0, false), mcf0::Lit(1, false)}));
  EXPECT_TRUE(cnf.Eval(m));
}

TEST(RestrictDecisions, EnumerationStillComplete) {
  // Model enumeration through the oracle (which restricts decisions after
  // RREF) must find the exact cell population.
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 10;
    const Cnf cnf = RandomKCnf(n, 14, 3, rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
    const int m = 2 + static_cast<int>(rng.NextBelow(4));
    uint64_t expect = 0;
    BitVec x(n);
    for (uint64_t v = 0; v < (1u << n); ++v) {
      if (cnf.Eval(x) && h.EvalPrefix(x, m).IsZero()) ++expect;
      x.Increment();
    }
    CnfOracle oracle(cnf);
    EXPECT_EQ(BoundedSatCnf(oracle, h, m, 1u << n).count(), expect);
  }
}

TEST(SolverXorAssumptions, XorPropagationUnderAssumptions) {
  // x0 ^ x1 ^ x2 = 1; assuming x0=1, x1=1 forces x2=1.
  Solver s;
  s.EnsureVars(3);
  s.AddXorClause({0, 1, 2}, true);
  ASSERT_EQ(s.Solve({Lit(0, false), Lit(1, false)}), LBool::kTrue);
  EXPECT_TRUE(s.ModelValue(0));
  EXPECT_TRUE(s.ModelValue(1));
  EXPECT_TRUE(s.ModelValue(2));
  // Assuming values violating the parity with all vars pinned: UNSAT.
  EXPECT_EQ(s.Solve({Lit(0, false), Lit(1, false), Lit(2, true)}),
            LBool::kFalse);
}

TEST(SolverXorAssumptions, SweepMatchesBruteForce) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 9;
    const Cnf cnf = RandomKCnf(n, 18, 3, rng);
    const BitVec row = BitVec::Random(n, rng);
    const bool rhs = rng.NextBool();
    Solver s;
    Load(&s, cnf);
    std::vector<Var> vars;
    for (int j = 0; j < n; ++j) {
      if (row.Get(j)) vars.push_back(j);
    }
    s.AddXorClause(vars, rhs);
    const Var pinned = static_cast<Var>(rng.NextBelow(n));
    const bool pin_neg = rng.NextBool();
    const LBool got = s.Solve({Lit(pinned, pin_neg)});
    // Brute force.
    bool expect = false;
    BitVec x(n);
    for (uint64_t v = 0; v < (1u << n) && !expect; ++v) {
      expect = cnf.Eval(x) && row.DotF2(x) == rhs &&
               x.Get(pinned) == !pin_neg;
      x.Increment();
    }
    EXPECT_EQ(got == LBool::kTrue, expect);
  }
}

TEST(SolverStress, DenseXorSystemsNearFullRank) {
  // n-1 equations over n vars: exactly two solutions (or none); solver +
  // enumeration must find them all quickly (this is the regime that is
  // resolution-hard without the RREF preprocessing).
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 30;
    Cnf empty(n);  // no clauses: count determined by the XOR system alone
    CnfOracle oracle(empty);
    const AffineHash h = AffineHash::SampleXor(n, n, rng);
    const int m = n - 1;
    const auto result = BoundedSatCnf(oracle, h, m, 16);
    // Rank deficiencies can give 0, 2, 4... solutions; always a power of 2
    // (or zero) and small.
    EXPECT_LE(result.count(), 8u);
    if (result.count() > 0) {
      EXPECT_EQ((result.count() & (result.count() - 1)), 0u);
    }
    for (const BitVec& x : result.solutions) {
      EXPECT_TRUE(h.EvalPrefix(x, m).IsZero());
    }
  }
}

TEST(SolverStress, RepeatedSolveCallsAreConsistent) {
  Rng rng(17);
  const Cnf cnf = RandomKCnf(12, 30, 3, rng);
  Solver s;
  Load(&s, cnf);
  const LBool first = s.Solve();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.Solve(), first);
}

}  // namespace
}  // namespace mcf0
