// Tests for the three model counters (§3): (eps, delta) accuracy against
// exact counts, agreement between the CNF (NP-oracle) and DNF (PTIME)
// paths, oracle-call accounting, and the ApproxMC2 binary-search variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "core/approx_count_est.hpp"
#include "core/approx_count_min.hpp"
#include "core/approxmc.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

CountingParams FastParams(uint64_t seed) {
  CountingParams p;
  p.eps = 0.8;
  p.delta = 0.2;
  p.rows_override = 11;  // keep tests fast; median still amplifies
  p.seed = seed;
  return p;
}

/// Checks an estimate against the (eps, delta) band with doubled slack so
/// a correct implementation cannot flake on the fixed seeds used here.
void ExpectWithinBand(double estimate, double exact, double eps) {
  if (exact == 0) {
    EXPECT_EQ(estimate, 0.0);
    return;
  }
  EXPECT_GE(estimate, exact / (1.0 + 2 * eps)) << "exact=" << exact;
  EXPECT_LE(estimate, exact * (1.0 + 2 * eps)) << "exact=" << exact;
}

struct CountCase {
  int n;
  int size;  // clauses or terms
  uint64_t seed;
};

class ApproxMcCnfSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(ApproxMcCnfSweep, WithinBandOfExact) {
  const CountCase param = GetParam();
  Rng rng(param.seed);
  const Cnf cnf = RandomKCnf(param.n, param.size, 3, rng);
  const double exact = static_cast<double>(ExactCountEnum(cnf));
  const CountResult got = ApproxMcCnf(cnf, FastParams(param.seed));
  ExpectWithinBand(got.estimate, exact, 0.8);
  if (exact >= got.thresh) {
    EXPECT_GT(got.oracle_calls, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Workloads, ApproxMcCnfSweep,
                         ::testing::Values(CountCase{10, 6, 1},
                                           CountCase{12, 10, 2},
                                           CountCase{14, 12, 3},
                                           CountCase{9, 30, 4}),
                         [](const auto& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += 'm';
                           name += std::to_string(info.param.size);
                           return name;
                         });

class ApproxMcDnfSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(ApproxMcDnfSweep, WithinBandOfExact) {
  const CountCase param = GetParam();
  Rng rng(param.seed);
  const Dnf dnf = RandomDnf(param.n, param.size, 2, 6, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  const CountResult got = ApproxMcDnf(dnf, FastParams(param.seed));
  ExpectWithinBand(got.estimate, exact, 0.8);
  EXPECT_EQ(got.oracle_calls, 0u);  // FPRAS path uses no NP oracle
}

INSTANTIATE_TEST_SUITE_P(Workloads, ApproxMcDnfSweep,
                         ::testing::Values(CountCase{12, 5, 11},
                                           CountCase{14, 8, 12},
                                           CountCase{16, 12, 13},
                                           CountCase{18, 4, 14}),
                         [](const auto& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += 'k';
                           name += std::to_string(info.param.size);
                           return name;
                         });

TEST(ApproxMc, ExactRegimeReturnsExactCount) {
  // Fewer solutions than Thresh: every row returns the exact count.
  Dnf dnf(16);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false),
                           Lit(6, false), Lit(7, false), Lit(8, false),
                           Lit(9, false)}));  // 2^6 = 64 < Thresh = 150
  const CountResult got = ApproxMcDnf(dnf, FastParams(5));
  EXPECT_DOUBLE_EQ(got.estimate, 64.0);
}

TEST(ApproxMc, UnsatisfiableCountsZero) {
  Cnf cnf(6);
  cnf.AddClause(Clause({Lit(0, false)}));
  cnf.AddClause(Clause({Lit(0, true)}));
  EXPECT_EQ(ApproxMcCnf(cnf, FastParams(3)).estimate, 0.0);
  EXPECT_EQ(ApproxMcDnf(Dnf(6), FastParams(3)).estimate, 0.0);
}

TEST(ApproxMc, BinarySearchAgreesWithLinearScan) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Cnf cnf = RandomKCnf(12, 8, 3, rng);
    CountingParams linear = FastParams(100 + trial);
    CountingParams binary = linear;
    binary.binary_search = true;
    const CountResult a = ApproxMcCnf(cnf, linear);
    const CountResult b = ApproxMcCnf(cnf, binary);
    // Same hashes (same seed) and monotone cell counts: identical output.
    EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  }
}

TEST(ApproxMc, BinarySearchMakesFewerCallsOnLargeCounts) {
  // A wide-open formula (few constraints, n = 24) forces m ~ log2(count):
  // the linear scan pays m calls per row, the binary search ~log2(n).
  Rng rng(23);
  const Dnf wide = RandomDnf(24, 6, 1, 2, rng);
  const Cnf cnf = NegateDnf(RandomDnf(24, 2, 20, 22, rng));  // nearly full
  CountingParams linear = FastParams(7);
  linear.rows_override = 3;
  CountingParams binary = linear;
  binary.binary_search = true;
  const CountResult a = ApproxMcCnf(cnf, linear);
  const CountResult b = ApproxMcCnf(cnf, binary);
  EXPECT_GT(a.oracle_calls, 0u);
  EXPECT_GT(b.oracle_calls, 0u);
  EXPECT_LT(b.oracle_calls, a.oracle_calls);
  (void)wide;
}

TEST(ApproxMc, TseitinPathMatchesNative) {
  Rng rng(29);
  const Cnf cnf = RandomKCnf(10, 8, 3, rng);
  CountingParams native = FastParams(55);
  native.rows_override = 5;
  CountingParams tseitin = native;
  tseitin.use_tseitin = true;
  EXPECT_DOUBLE_EQ(ApproxMcCnf(cnf, native).estimate,
                   ApproxMcCnf(cnf, tseitin).estimate);
}

TEST(ApproxMc, SparseHashStillAccurate) {
  Rng rng(31);
  const Dnf dnf = RandomDnf(14, 6, 2, 5, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  CountingParams params = FastParams(77);
  params.sparse_density = 0.35;
  const CountResult got = ApproxMcDnf(dnf, params);
  // Sparse XORs trade constants for accuracy; use a wider x3 band.
  EXPECT_GE(got.estimate, exact / 3.5);
  EXPECT_LE(got.estimate, exact * 3.5);
}

class CountMinSweep : public ::testing::TestWithParam<CountCase> {};

TEST_P(CountMinSweep, DnfWithinBandOfExact) {
  const CountCase param = GetParam();
  Rng rng(param.seed);
  const Dnf dnf = RandomDnf(param.n, param.size, 2, 6, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  const CountResult got = ApproxCountMinDnf(dnf, FastParams(param.seed));
  ExpectWithinBand(got.estimate, exact, 0.8);
  EXPECT_EQ(got.oracle_calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, CountMinSweep,
                         ::testing::Values(CountCase{12, 5, 41},
                                           CountCase{14, 8, 42},
                                           CountCase{16, 10, 43}),
                         [](const auto& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += 'k';
                           name += std::to_string(info.param.size);
                           return name;
                         });

TEST(ApproxCountMin, CnfWithinBandAndUsesOracle) {
  Rng rng(47);
  const Cnf cnf = RandomKCnf(10, 14, 3, rng);
  const double exact = static_cast<double>(ExactCountEnum(cnf));
  CountingParams params = FastParams(9);
  params.rows_override = 9;
  const CountResult got = ApproxCountMinCnf(cnf, params);
  ExpectWithinBand(got.estimate, exact, 0.8);
  if (exact > 0) {
    EXPECT_GT(got.oracle_calls, 0u);
  }
}

TEST(ApproxCountMin, SmallCountsExact) {
  // |Sol| < Thresh: FindMin retains every hashed solution; with a 3n-bit
  // hash, collisions are absent and the count is exact.
  Dnf dnf(12);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false)}));  // 2^7 = 128
  const CountResult got = ApproxCountMinDnf(dnf, FastParams(13));
  EXPECT_DOUBLE_EQ(got.estimate, 128.0);
}

TEST(ApproxCountEst, AccurateInsideValidityWindow) {
  // Theorem 4 requires 2 F0 <= 2^r <= 50 F0; pick r mid-window. The
  // formula uses wide terms so F0 << 2^{n-1} and the window fits in [1, n].
  Rng rng(53);
  const Dnf dnf = RandomDnf(16, 8, 5, 8, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  ASSERT_GT(exact, 100.0);
  ASSERT_LT(exact, std::pow(2.0, 15));
  const int r = std::clamp(
      static_cast<int>(std::lround(std::log2(10.0 * exact))), 1, 16);
  CountingParams params = FastParams(17);
  const CountResult got = ApproxCountEstDnf(dnf, params, r);
  // Estimation concentrates more slowly; accept a x3 band on fixed seeds.
  EXPECT_GE(got.estimate, exact / 3.0);
  EXPECT_LE(got.estimate, exact * 3.0);
}

TEST(ApproxCountEst, AutoPipelineDerivesUsableR) {
  Rng rng(59);
  const Dnf dnf = RandomDnf(14, 6, 2, 5, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  const CountResult got = ApproxCountEstAutoDnf(dnf, FastParams(19));
  EXPECT_GE(got.estimate, exact / 4.0);
  EXPECT_LE(got.estimate, exact * 4.0);
}

TEST(ApproxCountEst, CnfAutoPipelineCountsOracleCalls) {
  Rng rng(61);
  const Cnf cnf = RandomKCnf(9, 12, 3, rng);
  const double exact = static_cast<double>(ExactCountEnum(cnf));
  CountingParams params = FastParams(23);
  params.rows_override = 7;
  const CountResult got = ApproxCountEstAutoCnf(cnf, params);
  if (exact > 0) {
    EXPECT_GT(got.oracle_calls, 0u);
    EXPECT_GE(got.estimate, exact / 5.0);
    EXPECT_LE(got.estimate, exact * 5.0);
  } else {
    EXPECT_EQ(got.estimate, 0.0);
  }
}

TEST(FlajoletMartinCount, RoughFactorOnKnownCount) {
  // 2^R is a 5-approximation w.p. >= 3/5 per row; the median of 9 rows is
  // within 5x with overwhelming probability — test with a 16x band.
  Dnf dnf(18);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false)}));  // 2^16 sols
  const double rough = FlajoletMartinCountDnf(dnf, 9, 31);
  EXPECT_GE(rough, 65536.0 / 16.0);
  EXPECT_LE(rough, 65536.0 * 16.0);
}

TEST(CountingParams, PaperFormulas) {
  CountingParams p;
  p.eps = 0.8;
  p.delta = 0.2;
  EXPECT_EQ(CountingThresh(p), 150u);
  EXPECT_EQ(CountingRows(p), 82);
}

}  // namespace
}  // namespace mcf0
