// End-to-end tests for the unified `mcf0` CLI: run the real binary on tiny
// embedded fixtures and check the JSON output shape plus estimate sanity.
// The binary path is injected by CMake as MCF0_CLI_PATH.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

namespace mcf0 {
namespace {

#ifndef MCF0_CLI_PATH
#error "MCF0_CLI_PATH must be defined to the mcf0 binary path"
#endif

struct RunOutput {
  int exit_code = -1;
  std::string stdout_text;
};

// Runs `mcf0 <args>` and captures stdout (stderr passes through).
RunOutput RunCli(const std::string& args) {
  const std::string command = std::string(MCF0_CLI_PATH) + " " + args;
  RunOutput out;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "popen failed for: " << command;
  if (pipe == nullptr) return out;
  char buffer[4096];
  size_t read = 0;
  while ((read = fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    out.stdout_text.append(buffer, read);
  }
  const int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return out;
}

std::string WriteFixture(const std::string& name, const std::string& text) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << text;
  EXPECT_TRUE(out.good());
  return path;
}

// Pulls a numeric field out of the flat JSON object the CLI prints.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key << " in " << json;
  if (pos == std::string::npos) return -1;
  const std::string rest = json.substr(pos + needle.size());
  try {
    return std::stod(rest);
  } catch (const std::exception&) {
    // e.g. `null`, the CLI's rendering of a non-finite double.
    ADD_FAILURE() << "key " << key << " is not numeric in " << json;
    return -1;
  }
}

void ExpectJsonShape(const std::string& json, const std::string& command) {
  EXPECT_EQ(json.front(), '{') << json;
  EXPECT_EQ(json[json.size() - 2], '}') << json;  // trailing newline
  EXPECT_NE(json.find("\"command\": \"" + command + "\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"estimate\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"time_ms\":"), std::string::npos) << json;
}

// (x1 or x2) and (x3 or x4) over 4 vars: 3 * 4 * 3 / 4 = 9 models.
constexpr const char kCnfFixture[] =
    "c tiny fixture\n"
    "p cnf 4 2\n"
    "1 2 0\n"
    "3 4 0\n";
constexpr double kCnfModels = 9.0;

// x1  or  (!x1 and x2) over 4 vars: 8 + 4 = 12 models.
constexpr const char kDnfFixture[] =
    "p dnf 4 2\n"
    "1 0\n"
    "-1 2 0\n";
constexpr double kDnfModels = 12.0;

TEST(CliTest, HelpAndUsageErrors) {
  EXPECT_EQ(RunCli("help").exit_code, 0);
  EXPECT_EQ(RunCli("frobnicate 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("count 2>/dev/null").exit_code, 2);  // missing input
  // Tiny, NaN, or infinite eps/delta would abort via library CHECKs (or
  // overflow the Thresh formula); the flag bounds must turn every one of
  // them into a clean usage error.
  EXPECT_EQ(RunCli("f0 --eps 1e-10 - < /dev/null 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("f0 --eps nan - < /dev/null 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("f0 --eps inf - < /dev/null 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("f0 --delta nan - < /dev/null 2>/dev/null").exit_code, 2);
}

TEST(CliTest, F0ExactRegimeCountsDistinct) {
  // 64 distinct values, each repeated 3 times. Thresh = 96/0.8^2 = 150 > 64,
  // so the Minimum sketch is in its exact regime and the estimate is exact.
  std::string stream;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (int value = 1; value <= 64; ++value) {
      stream += std::to_string(value * 977) + "\n";
    }
  }
  const std::string path = WriteFixture("f0_stream.txt", stream);
  const RunOutput out = RunCli("f0 --n 32 --seed 7 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  ExpectJsonShape(out.stdout_text, "f0");
  EXPECT_DOUBLE_EQ(JsonNumber(out.stdout_text, "estimate"), 64.0);
  EXPECT_EQ(JsonNumber(out.stdout_text, "elements"), 192.0);
  EXPECT_GT(JsonNumber(out.stdout_text, "space_bits"), 0.0);
}

TEST(CliTest, F0ReadsStdinWithDash) {
  const std::string path = WriteFixture("f0_stdin.txt", "1 2 3 4 5\n");
  const RunOutput out = RunCli("f0 --n 16 - < " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_DOUBLE_EQ(JsonNumber(out.stdout_text, "estimate"), 5.0);
}

TEST(CliTest, CountCnfApproxMc) {
  const std::string path = WriteFixture("fixture.cnf", kCnfFixture);
  const RunOutput out =
      RunCli("count --eps 0.8 --delta 0.2 --seed 3 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  ExpectJsonShape(out.stdout_text, "count");
  EXPECT_NE(out.stdout_text.find("\"format\": \"cnf\""), std::string::npos);
  EXPECT_NE(out.stdout_text.find("\"oracle_calls\":"), std::string::npos);
  const double estimate = JsonNumber(out.stdout_text, "estimate");
  // (eps, delta) guarantee with a wide safety margin for one fixed seed.
  EXPECT_GE(estimate, kCnfModels / 4.0);
  EXPECT_LE(estimate, kCnfModels * 4.0);
  EXPECT_GT(JsonNumber(out.stdout_text, "oracle_calls"), 0.0);
}

TEST(CliTest, CountDnfAllAlgorithms) {
  // Fixture names are per-test: ctest -j runs each TEST as its own
  // process, and a shared name races (one truncates while another reads).
  const std::string path = WriteFixture("count_algos.dnf", kDnfFixture);
  for (const std::string algo :
       {"approxmc", "countmin", "countest", "karp-luby"}) {
    const RunOutput out =
        RunCli("count --algo " + algo + " --seed 5 " + path);
    ASSERT_EQ(out.exit_code, 0) << algo << ": " << out.stdout_text;
    ExpectJsonShape(out.stdout_text, "count");
    const double estimate = JsonNumber(out.stdout_text, "estimate");
    EXPECT_GE(estimate, kDnfModels / 4.0) << algo;
    EXPECT_LE(estimate, kDnfModels * 4.0) << algo;
  }
}

TEST(CliTest, DistributedDnfReportsCommunication) {
  const std::string path = WriteFixture("distributed.dnf", kDnfFixture);
  const RunOutput out = RunCli("dnf --sites 2 --seed 11 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  ExpectJsonShape(out.stdout_text, "dnf");
  EXPECT_GT(JsonNumber(out.stdout_text, "total_bits"), 0.0);
  const double estimate = JsonNumber(out.stdout_text, "estimate");
  EXPECT_GE(estimate, kDnfModels / 4.0);
  EXPECT_LE(estimate, kDnfModels * 4.0);
}

TEST(CliTest, StructuredStreamEstimatesUnion) {
  const std::string path = WriteFixture("stream_union.dnf", kDnfFixture);
  const RunOutput out = RunCli("stream --seed 13 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  ExpectJsonShape(out.stdout_text, "stream");
  EXPECT_EQ(JsonNumber(out.stdout_text, "items"), 2.0);
  const double estimate = JsonNumber(out.stdout_text, "estimate");
  EXPECT_GE(estimate, kDnfModels / 4.0);
  EXPECT_LE(estimate, kDnfModels * 4.0);
}

TEST(CliTest, RejectsNonNumericFlagValues) {
  // Must be a clean usage error (exit 2), not an uncaught std::stod throw.
  EXPECT_EQ(RunCli("count --eps banana x.cnf 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("count --seed -3 x.cnf 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("f0 --n 12cats - 2>/dev/null").exit_code, 2);
}

TEST(CliTest, RejectsMalformedInput) {
  const std::string path = WriteFixture("bad.cnf", "p cnf oops\n");
  EXPECT_EQ(RunCli("count " + path + " 2>/dev/null").exit_code, 1);
  const std::string bad_stream = WriteFixture("bad.txt", "12 potato\n");
  EXPECT_EQ(RunCli("f0 " + bad_stream + " 2>/dev/null").exit_code, 1);
}

TEST(CliTest, ZeroVariableFormulaIsACleanError) {
  // Must exit 1, not abort on an internal MCF0_CHECK.
  const std::string path = WriteFixture("empty.dnf", "p dnf 0 0\n");
  EXPECT_EQ(RunCli("stream " + path + " 2>/dev/null").exit_code, 1);
  EXPECT_EQ(RunCli("count " + path + " 2>/dev/null").exit_code, 1);
}

TEST(CliTest, EveryResultCarriesBuildProvenance) {
  const std::string path = WriteFixture("prov.txt", "1 2 3\n");
  const RunOutput out = RunCli("f0 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("\"version\": \""), std::string::npos)
      << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("\"git_sha\": \""), std::string::npos)
      << out.stdout_text;
}

TEST(CliTest, SketchMapReduceMatchesSinglePassF0) {
  // 120 distinct elements < Thresh 150: the Minimum sketch is exact, so
  // shell map-reduce (build halves -> merge -> query) must equal the
  // single-pass `f0` answer exactly. Loop the other algorithms too; for
  // them equality of the split/merged estimate with the single-pass
  // estimate still holds exactly because the merge is an exact union.
  std::string first_half;
  std::string second_half;
  std::string full;
  for (int value = 1; value <= 120; ++value) {
    const std::string line = std::to_string(value * 7919) + "\n";
    (value <= 60 ? first_half : second_half) += line;
    full += line;
  }
  const std::string path_a = WriteFixture("shard_a.txt", first_half);
  const std::string path_b = WriteFixture("shard_b.txt", second_half);
  const std::string path_full = WriteFixture("shard_full.txt", full);
  const std::string dir = testing::TempDir();

  for (const std::string algo : {"minimum", "bucketing", "estimation"}) {
    const std::string common = " --seed 7 --algo " + algo + " ";
    const std::string sketch_a = dir + "/a_" + algo + ".mcf0";
    const std::string sketch_b = dir + "/b_" + algo + ".mcf0";
    const std::string merged = dir + "/m_" + algo + ".mcf0";
    ASSERT_EQ(RunCli("sketch build" + common + "--out " + sketch_a + " " +
                     path_a)
                  .exit_code,
              0);
    ASSERT_EQ(RunCli("sketch build" + common + "--out " + sketch_b + " " +
                     path_b)
                  .exit_code,
              0);
    const RunOutput merge_out = RunCli("sketch merge --out " + merged + " " +
                                       sketch_a + " " + sketch_b);
    ASSERT_EQ(merge_out.exit_code, 0) << merge_out.stdout_text;
    const RunOutput query_out = RunCli("sketch query " + merged);
    ASSERT_EQ(query_out.exit_code, 0) << query_out.stdout_text;
    ExpectJsonShape(query_out.stdout_text, "sketch");

    const RunOutput f0_out = RunCli("f0" + common + path_full);
    ASSERT_EQ(f0_out.exit_code, 0) << f0_out.stdout_text;
    const double single_pass = JsonNumber(f0_out.stdout_text, "estimate");
    EXPECT_DOUBLE_EQ(JsonNumber(query_out.stdout_text, "estimate"),
                     single_pass)
        << algo;
    if (algo == "minimum") {
      EXPECT_DOUBLE_EQ(single_pass, 120.0);
    }
  }
}

TEST(CliTest, SketchShardedBuildMatchesSerialBuild) {
  std::string stream;
  for (int value = 1; value <= 100; ++value) {
    stream += std::to_string(value * 977) + "\n";
  }
  const std::string path = WriteFixture("sharded.txt", stream);
  const std::string serial = testing::TempDir() + "/serial.mcf0";
  const std::string sharded = testing::TempDir() + "/sharded.mcf0";
  ASSERT_EQ(RunCli("sketch build --seed 5 --out " + serial + " " + path)
                .exit_code,
            0);
  const RunOutput out = RunCli("sketch build --seed 5 --shards 3 --out " +
                               sharded + " " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_DOUBLE_EQ(JsonNumber(out.stdout_text, "estimate"), 100.0);
  // Same params + same stream => byte-identical sketch files, no matter
  // how ingestion was parallelized.
  std::ifstream serial_in(serial, std::ios::binary);
  std::ifstream sharded_in(sharded, std::ios::binary);
  const std::string serial_bytes(
      (std::istreambuf_iterator<char>(serial_in)),
      std::istreambuf_iterator<char>());
  const std::string sharded_bytes(
      (std::istreambuf_iterator<char>(sharded_in)),
      std::istreambuf_iterator<char>());
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(serial_bytes, sharded_bytes);

  // Multi-producer ingestion (4 feeder threads into 3 shards) leaves no
  // trace either.
  const std::string multi = testing::TempDir() + "/multiproducer.mcf0";
  const RunOutput multi_out =
      RunCli("sketch build --seed 5 --shards 3 --producers 4 --out " + multi +
             " " + path);
  ASSERT_EQ(multi_out.exit_code, 0) << multi_out.stdout_text;
  std::ifstream multi_in(multi, std::ios::binary);
  const std::string multi_bytes((std::istreambuf_iterator<char>(multi_in)),
                                std::istreambuf_iterator<char>());
  EXPECT_EQ(serial_bytes, multi_bytes);
}

TEST(CliTest, SketchMerge32ShardsIsByteIdenticalToSinglePass) {
  // The reducer contract end to end: build 32 shard sketches, stream-merge
  // them (`sketch merge` folds row by row, so its memory stays bounded by
  // one row no matter the shard count), and the merged file must be
  // byte-identical to a single-pass build over the whole stream. Covered
  // for both wire formats via --format.
  constexpr int kShards = 32;
  std::vector<std::string> shard_streams(kShards);
  std::string full;
  for (int i = 0; i < 600; ++i) {
    const std::string line = std::to_string((i * 2654435761ull) % 50021) +
                             "\n";
    shard_streams[i % kShards] += line;
    full += line;
  }
  const std::string dir = testing::TempDir();
  const std::string path_full = WriteFixture("merge32_full.txt", full);

  auto read_bytes = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  };

  for (const std::string format : {"v1", "v2"}) {
    const std::string common = " --seed 9 --format " + format + " ";
    std::string inputs;
    for (int s = 0; s < kShards; ++s) {
      const std::string stream_path = WriteFixture(
          "merge32_" + format + "_" + std::to_string(s) + ".txt",
          shard_streams[s]);
      const std::string sketch_path =
          dir + "/merge32_" + format + "_" + std::to_string(s) + ".mcf0";
      ASSERT_EQ(RunCli("sketch build" + common + "--out " + sketch_path +
                       " " + stream_path)
                    .exit_code,
                0);
      inputs += " " + sketch_path;
    }
    const std::string single = dir + "/merge32_single_" + format + ".mcf0";
    ASSERT_EQ(RunCli("sketch build" + common + "--out " + single + " " +
                     path_full)
                  .exit_code,
              0);
    const std::string merged = dir + "/merge32_merged_" + format + ".mcf0";
    const RunOutput merge_out =
        RunCli("sketch merge" + common + "--out " + merged + inputs);
    ASSERT_EQ(merge_out.exit_code, 0) << merge_out.stdout_text;
    EXPECT_EQ(JsonNumber(merge_out.stdout_text, "inputs"), kShards);

    const std::string single_bytes = read_bytes(single);
    EXPECT_FALSE(single_bytes.empty());
    EXPECT_EQ(read_bytes(merged), single_bytes) << "format " << format;
  }
}

TEST(CliTest, SketchFormatFlagSelectsWireVersion) {
  const std::string path = WriteFixture("fmt.txt", "1 2 3 4 5\n");
  const std::string dir = testing::TempDir();
  const std::string v1 = dir + "/fmt_v1.mcf0";
  const std::string v2 = dir + "/fmt_v2.mcf0";
  const RunOutput b1 =
      RunCli("sketch build --format v1 --out " + v1 + " " + path);
  ASSERT_EQ(b1.exit_code, 0) << b1.stdout_text;
  EXPECT_EQ(JsonNumber(b1.stdout_text, "format"), 1.0);
  const RunOutput b2 = RunCli("sketch build --out " + v2 + " " + path);
  ASSERT_EQ(b2.exit_code, 0) << b2.stdout_text;
  EXPECT_EQ(JsonNumber(b2.stdout_text, "format"), 2.0);

  // query reports the version it found and answers identically for both.
  const RunOutput q1 = RunCli("sketch query " + v1);
  const RunOutput q2 = RunCli("sketch query " + v2);
  ASSERT_EQ(q1.exit_code, 0);
  ASSERT_EQ(q2.exit_code, 0);
  EXPECT_EQ(JsonNumber(q1.stdout_text, "format"), 1.0);
  EXPECT_EQ(JsonNumber(q2.stdout_text, "format"), 2.0);
  EXPECT_DOUBLE_EQ(JsonNumber(q1.stdout_text, "estimate"),
                   JsonNumber(q2.stdout_text, "estimate"));

  // Both versions merge together.
  const std::string mixed = dir + "/fmt_mixed.mcf0";
  EXPECT_EQ(RunCli("sketch merge --out " + mixed + " " + v1 + " " + v2)
                .exit_code,
            0);
  EXPECT_EQ(
      RunCli("sketch build --format v3 --out x.mcf0 " + path + " 2>/dev/null")
          .exit_code,
      2);
}

TEST(CliTest, SketchUsageAndDecodeErrors) {
  const std::string dir = testing::TempDir();
  EXPECT_EQ(RunCli("sketch 2>/dev/null").exit_code, 2);
  EXPECT_EQ(RunCli("sketch frobnicate 2>/dev/null").exit_code, 2);
  // build without --out, merge with one input: usage errors.
  const std::string path = WriteFixture("u.txt", "1 2 3\n");
  EXPECT_EQ(RunCli("sketch build " + path + " 2>/dev/null").exit_code, 2);
  // --shards is capped: a typo must be a usage error, not a thread-spawn
  // crash.
  EXPECT_EQ(RunCli("sketch build --shards 0 --out x.mcf0 " + path +
                   " 2>/dev/null")
                .exit_code,
            2);
  EXPECT_EQ(RunCli("sketch build --shards 99999 --out x.mcf0 " + path +
                   " 2>/dev/null")
                .exit_code,
            2);
  const std::string sketch = dir + "/u.mcf0";
  ASSERT_EQ(
      RunCli("sketch build --out " + sketch + " " + path).exit_code, 0);
  EXPECT_EQ(RunCli("sketch merge --out " + dir + "/v.mcf0 " + sketch +
                   " 2>/dev/null")
                .exit_code,
            2);
  // Runtime errors: missing file, corrupt sketch, mismatched merge.
  EXPECT_EQ(RunCli("sketch query " + dir + "/nonexistent.mcf0 2>/dev/null")
                .exit_code,
            1);
  const std::string garbage = WriteFixture("garbage.mcf0", "not a sketch");
  EXPECT_EQ(RunCli("sketch query " + garbage + " 2>/dev/null").exit_code, 1);
  const std::string other = dir + "/other.mcf0";
  ASSERT_EQ(RunCli("sketch build --seed 99 --out " + other + " " + path)
                .exit_code,
            0);
  EXPECT_EQ(RunCli("sketch merge --out " + dir + "/w.mcf0 " + sketch + " " +
                   other + " 2>/dev/null")
                .exit_code,
            1);
}

TEST(CliTest, StructuredSketchMapReduceMatchesSinglePass) {
  // §5 streams get the full map-reduce treatment: build structured
  // sketches from DNF shards, merge, query — and the merged file is
  // byte-identical to a single-pass build over the whole formula (whose
  // estimate equals `mcf0 stream` on the same file, since both run the
  // same StructuredF0).
  const std::string whole = WriteFixture("s_whole.dnf", kDnfFixture);
  const std::string shard_a = WriteFixture("s_a.dnf", "p dnf 4 1\n1 0\n");
  const std::string shard_b = WriteFixture("s_b.dnf", "p dnf 4 1\n-1 2 0\n");
  const std::string dir = testing::TempDir();

  for (const std::string algo : {"minimum", "bucketing"}) {
    const std::string common = " --seed 7 --algo " + algo + " --input dnf ";
    const std::string single = dir + "/s_single_" + algo + ".mcf0";
    const std::string a = dir + "/s_a_" + algo + ".mcf0";
    const std::string b = dir + "/s_b_" + algo + ".mcf0";
    const std::string merged = dir + "/s_m_" + algo + ".mcf0";

    const RunOutput build_out =
        RunCli("sketch build" + common + "--out " + single + " " + whole);
    ASSERT_EQ(build_out.exit_code, 0) << build_out.stdout_text;
    EXPECT_NE(build_out.stdout_text.find("\"kind\": \"structured\""),
              std::string::npos)
        << build_out.stdout_text;
    EXPECT_EQ(JsonNumber(build_out.stdout_text, "items"), 2.0);
    ASSERT_EQ(RunCli("sketch build" + common + "--out " + a + " " + shard_a)
                  .exit_code,
              0);
    ASSERT_EQ(RunCli("sketch build" + common + "--out " + b + " " + shard_b)
                  .exit_code,
              0);
    const RunOutput merge_out =
        RunCli("sketch merge --out " + merged + " " + a + " " + b);
    ASSERT_EQ(merge_out.exit_code, 0) << merge_out.stdout_text;
    EXPECT_NE(merge_out.stdout_text.find("\"kind\": \"structured\""),
              std::string::npos)
        << merge_out.stdout_text;

    std::ifstream single_in(single, std::ios::binary);
    std::ifstream merged_in(merged, std::ios::binary);
    const std::string single_bytes(
        (std::istreambuf_iterator<char>(single_in)),
        std::istreambuf_iterator<char>());
    const std::string merged_bytes(
        (std::istreambuf_iterator<char>(merged_in)),
        std::istreambuf_iterator<char>());
    EXPECT_FALSE(single_bytes.empty());
    EXPECT_EQ(merged_bytes, single_bytes) << algo;

    // In-process term sharding (ShardedStructuredEngine) produces those
    // same bytes too: one file, N worker replicas, P producers.
    const std::string sharded = dir + "/s_sharded_" + algo + ".mcf0";
    ASSERT_EQ(RunCli("sketch build" + common + "--shards 2 --producers 2 " +
                     "--out " + sharded + " " + whole)
                  .exit_code,
              0);
    std::ifstream sharded_in(sharded, std::ios::binary);
    const std::string sharded_bytes(
        (std::istreambuf_iterator<char>(sharded_in)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(sharded_bytes, single_bytes) << algo;

    const RunOutput query_out = RunCli("sketch query " + merged);
    ASSERT_EQ(query_out.exit_code, 0) << query_out.stdout_text;
    ExpectJsonShape(query_out.stdout_text, "sketch");
    const RunOutput stream_out =
        RunCli("stream --seed 7 --algo " + algo + " " + whole);
    ASSERT_EQ(stream_out.exit_code, 0);
    EXPECT_DOUBLE_EQ(JsonNumber(query_out.stdout_text, "estimate"),
                     JsonNumber(stream_out.stdout_text, "estimate"))
        << algo;
  }
}

TEST(CliTest, SketchBuildRangeInput) {
  // Two overlapping 2-d ranges over 4-bit coordinates: |[0,3]^2| = 16
  // plus |[2,5] x [1,1]| = 4 minus the overlap [2,3] x [1,1] = 2 -> 18
  // distinct points, exact in the sub-threshold regime.
  const std::string path = WriteFixture(
      "ranges.txt",
      "c two overlapping ranges\np range 2 4\n0 3 0 3\n2 5 1 1\n");
  const std::string out = testing::TempDir() + "/ranges.mcf0";
  const RunOutput build =
      RunCli("sketch build --input range --seed 3 --out " + out + " " + path);
  ASSERT_EQ(build.exit_code, 0) << build.stdout_text;
  EXPECT_EQ(JsonNumber(build.stdout_text, "items"), 2.0);
  EXPECT_EQ(JsonNumber(build.stdout_text, "n"), 8.0);
  EXPECT_DOUBLE_EQ(JsonNumber(build.stdout_text, "estimate"), 18.0);
  const RunOutput query = RunCli("sketch query " + out);
  ASSERT_EQ(query.exit_code, 0);
  EXPECT_DOUBLE_EQ(JsonNumber(query.stdout_text, "estimate"), 18.0);
}

TEST(CliTest, SketchMerge32ShardsNamesTheCorruptFileInOnePass) {
  // The single-pass labeled-source contract end to end: 32 shard files,
  // one corrupted mid-payload — the merge fails naming exactly that file
  // (stderr captured via 2>&1), and no pre-open pass re-reads inputs.
  const std::string dir = testing::TempDir();
  std::string inputs;
  for (int s = 0; s < 32; ++s) {
    const std::string stream_path = WriteFixture(
        "named_" + std::to_string(s) + ".txt",
        std::to_string(1000 + s) + " " + std::to_string(2000 + s) + "\n");
    const std::string sketch_path =
        dir + "/named_" + std::to_string(s) + ".mcf0";
    ASSERT_EQ(RunCli("sketch build --seed 4 --out " + sketch_path + " " +
                     stream_path)
                  .exit_code,
              0);
    inputs += " " + sketch_path;
  }
  // Flip one payload byte of shard 13.
  const std::string victim = dir + "/named_13.mcf0";
  {
    std::ifstream in(victim, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 40u);
    bytes[40] = static_cast<char>(bytes[40] ^ 0x2a);
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const RunOutput merge = RunCli("sketch merge --out " + dir +
                                 "/named_merged.mcf0" + inputs + " 2>&1");
  EXPECT_EQ(merge.exit_code, 1);
  EXPECT_NE(merge.stdout_text.find("named_13.mcf0"), std::string::npos)
      << merge.stdout_text;
}

TEST(CliTest, StructuredSketchUsageErrors) {
  const std::string dnf = WriteFixture("su.dnf", kDnfFixture);
  EXPECT_EQ(RunCli("sketch build --input bogus --out x.mcf0 " + dnf +
                   " 2>/dev/null")
                .exit_code,
            2);
  // Structured frames exist only at v2.
  EXPECT_EQ(RunCli("sketch build --input dnf --format v1 --out x.mcf0 " +
                   dnf + " 2>/dev/null")
                .exit_code,
            2);
  // --producers is capped like --shards: a typo must be a usage error,
  // not a thread-spawn crash.
  EXPECT_EQ(RunCli("sketch build --producers 0 --out x.mcf0 " + dnf +
                   " 2>/dev/null")
                .exit_code,
            2);
  EXPECT_EQ(RunCli("sketch build --input dnf --producers 9999 --out x.mcf0 " +
                   dnf + " 2>/dev/null")
                .exit_code,
            2);
  // Range parse errors are runtime failures, not aborts.
  const std::string bad_range = WriteFixture("bad_range.txt", "0 3 0 3\n");
  EXPECT_EQ(RunCli("sketch build --input range --out x.mcf0 " + bad_range +
                   " 2>/dev/null")
                .exit_code,
            1);
  // A dims claim whose dims * bits product overflows int must hit the
  // universe cap cleanly, not wrap past it into a giant allocation.
  const std::string huge_range = WriteFixture(
      "huge_range.txt", "p range 33554433 64\n0 1 0 1\n");
  EXPECT_EQ(RunCli("sketch build --input range --out x.mcf0 " + huge_range +
                   " 2>/dev/null")
                .exit_code,
            1);
  // Affine parse errors are runtime failures, not aborts: missing item
  // header, truncated matrix, wrong row width, mismatched n.
  for (const char* bad : {"1000\n0\n",                    // no `a` header
                          "a 4 2\n1000\n",                // truncated rows
                          "a 4 1\n10\n0\n",               // row width != n
                          "a 4 1\n1020\n0\n",             // non-binary chars
                          "a 4 0\n",                      // rank < 1
                          "a 4 1\n1000\n0\na 5 1\n10000\n0\n"}) {  // n drift
    const std::string path = WriteFixture("bad_affine.txt", bad);
    EXPECT_EQ(RunCli("sketch build --input affine --out x.mcf0 " + path +
                     " 2>/dev/null")
                  .exit_code,
              1)
        << bad;
  }
}

TEST(CliTest, SketchBuildAffineInput) {
  // Theorem 7 end to end: two disjoint affine spaces over {0,1}^4 —
  // {x0 = 0} (8 points) and {x0 = 1, x1 = 1} (4 points) — estimate 12 in
  // the sub-threshold exact regime, surviving a query round trip.
  const std::string path = WriteFixture(
      "affine.txt",
      "c two disjoint affine spaces\na 4 1\n1000\n0\na 4 2\n1000\n0100\n11\n");
  const std::string out = testing::TempDir() + "/affine.mcf0";
  const RunOutput build =
      RunCli("sketch build --input affine --seed 3 --out " + out + " " + path);
  ASSERT_EQ(build.exit_code, 0) << build.stdout_text;
  EXPECT_EQ(JsonNumber(build.stdout_text, "items"), 2.0);
  EXPECT_EQ(JsonNumber(build.stdout_text, "n"), 4.0);
  EXPECT_DOUBLE_EQ(JsonNumber(build.stdout_text, "estimate"), 12.0);
  const RunOutput query = RunCli("sketch query " + out);
  ASSERT_EQ(query.exit_code, 0);
  EXPECT_DOUBLE_EQ(JsonNumber(query.stdout_text, "estimate"), 12.0);

  // The sharded + multi-producer structured build is byte-identical.
  const std::string sharded = testing::TempDir() + "/affine_sharded.mcf0";
  const RunOutput sharded_build =
      RunCli("sketch build --input affine --seed 3 --shards 3 --producers 2 "
             "--out " + sharded + " " + path);
  ASSERT_EQ(sharded_build.exit_code, 0) << sharded_build.stdout_text;
  std::ifstream serial_in(out, std::ios::binary);
  std::ifstream sharded_in(sharded, std::ios::binary);
  const std::string serial_bytes((std::istreambuf_iterator<char>(serial_in)),
                                 std::istreambuf_iterator<char>());
  const std::string sharded_bytes(
      (std::istreambuf_iterator<char>(sharded_in)),
      std::istreambuf_iterator<char>());
  EXPECT_FALSE(serial_bytes.empty());
  EXPECT_EQ(sharded_bytes, serial_bytes);
}

TEST(CliTest, FormatSniffingIgnoresComments) {
  // A CNF whose comment mentions "p dnf" must still route to the CNF path.
  const std::string path = WriteFixture(
      "commented.cnf",
      "c converted from a p dnf benchmark\np cnf 4 2\n1 2 0\n3 4 0\n");
  const RunOutput out = RunCli("count --seed 3 " + path);
  ASSERT_EQ(out.exit_code, 0) << out.stdout_text;
  EXPECT_NE(out.stdout_text.find("\"format\": \"cnf\""), std::string::npos)
      << out.stdout_text;
}

TEST(CliTest, FlagErrorRenderingIsPinnedByteForByte) {
  // The typed flag table (tools/cli_flags.*) must render errors exactly
  // as the historical hand-rolled parser did: scripts grep this output.
  const auto expect_error = [](const std::string& args,
                               const std::string& message) {
    const RunOutput out = RunCli(args + " 2>&1 1>/dev/null");
    EXPECT_EQ(out.exit_code, 2) << args;
    EXPECT_EQ(out.stdout_text, "mcf0: " + message + "\n") << args;
  };
  expect_error("f0 --eps nope -", "--eps needs a number, got 'nope'");
  expect_error("f0 --eps", "--eps needs a value");
  expect_error("f0 --wat 1 -", "unknown option --wat");
  expect_error("f0 --seed -3 -", "--seed needs a non-negative integer, "
                                 "got '-3'");
  expect_error("f0 --n 5000000000 -", "--n is out of range: '5000000000'");
  expect_error("serve --input potato",
               "--input must be raw, dnf, range, or affine, got 'potato'");
  expect_error("sketch build --format v3 x",
               "--format must be v1 or v2, got 'v3'");
  // Aliases report under the canonical flag name.
  expect_error("sketch build -o", "--out needs a value");
}

TEST(CliTest, HelpDocumentsServeAndPush) {
  const RunOutput out = RunCli("help");
  ASSERT_EQ(out.exit_code, 0);
  EXPECT_NE(out.stdout_text.find("serve   run a sketch service"),
            std::string::npos);
  EXPECT_NE(out.stdout_text.find("mcf0 push"), std::string::npos);
  EXPECT_NE(out.stdout_text.find("--credit-window"), std::string::npos);
}

TEST(CliTest, ServeFourConcurrentPushersMatchesSketchBuild) {
  // The PR's acceptance path, end to end through the real binaries: one
  // `mcf0 serve`, four concurrent `mcf0 push` clients, SIGTERM drain —
  // the emitted sketch file must be byte-identical to `sketch build`
  // over the concatenated stream.
  const std::string dir = testing::TempDir();
  std::string full;
  std::vector<std::string> slices;
  for (int c = 0; c < 4; ++c) {
    std::string slice;
    // Overlapping windows: the union is a genuine multiset.
    for (int i = c * 500; i < c * 500 + 800; ++i) {
      slice += std::to_string((i * 2654435761u) % 1000003u) + "\n";
    }
    slices.push_back(WriteFixture("push_" + std::to_string(c) + ".txt",
                                  slice));
    full += slice;
  }
  const std::string full_path = WriteFixture("push_full.txt", full);
  const std::string served = dir + "/served.mcf0";
  const std::string built = dir + "/built.mcf0";

  // Start the server and read its startup JSON for the port and pid.
  const std::string serve_command =
      std::string(MCF0_CLI_PATH) +
      " serve --seed 7 --port 0 --shards 2 --out " + served;
  FILE* serve = popen(serve_command.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  // The startup object is pretty-printed over several lines; read until
  // its closing brace.
  char line[4096];
  std::string startup;
  while (std::fgets(line, sizeof(line), serve) != nullptr) {
    startup += line;
    if (line[0] == '}') break;
  }
  const int port = static_cast<int>(JsonNumber(startup, "port"));
  const int pid = static_cast<int>(JsonNumber(startup, "pid"));
  ASSERT_GT(port, 0) << startup;
  ASSERT_GT(pid, 0) << startup;

  std::vector<std::thread> pushers;
  std::vector<int> exit_codes(4, -1);
  for (int c = 0; c < 4; ++c) {
    pushers.emplace_back([c, port, &slices, &exit_codes] {
      exit_codes[c] = RunCli("push --port " + std::to_string(port) + " " +
                             slices[c])
                          .exit_code;
    });
  }
  for (std::thread& t : pushers) t.join();
  for (int c = 0; c < 4; ++c) EXPECT_EQ(exit_codes[c], 0) << "pusher " << c;

  // SIGTERM = graceful drain: the server flushes every producer, writes
  // the final sketch, and reports it on stdout.
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  std::string drained;
  while (std::fgets(line, sizeof(line), serve) != nullptr) drained += line;
  const int status = pclose(serve);
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0) << drained;
  EXPECT_NE(drained.find("\"event\": \"drained\""), std::string::npos)
      << drained;
  EXPECT_EQ(JsonNumber(drained, "items"), 4 * 800.0) << drained;

  ASSERT_EQ(RunCli("sketch build --seed 7 --out " + built + " " + full_path)
                .exit_code,
            0);
  std::ifstream served_in(served, std::ios::binary);
  std::ifstream built_in(built, std::ios::binary);
  const std::string served_bytes(
      (std::istreambuf_iterator<char>(served_in)),
      std::istreambuf_iterator<char>());
  const std::string built_bytes(
      (std::istreambuf_iterator<char>(built_in)),
      std::istreambuf_iterator<char>());
  EXPECT_FALSE(served_bytes.empty());
  EXPECT_EQ(served_bytes, built_bytes);
}

TEST(CliTest, DrainedSummaryAgreesWithStatsFrame) {
  // Satellite consistency contract: the SIGTERM drained summary sources
  // its totals from the same registry a live kStatsQuery is answered
  // from, so the two can never disagree. One pusher asks for
  // `--query stats` mid-run; the drained JSON must match those numbers
  // (bytes only grow after the snapshot, so they are ordered not equal).
  const std::string dir = testing::TempDir();
  std::string slice;
  for (int i = 0; i < 800; ++i) {
    slice += std::to_string((i * 2654435761u) % 1000003u) + "\n";
  }
  const std::string path = WriteFixture("stats_push.txt", slice);
  const std::string served = dir + "/stats_served.mcf0";

  const std::string serve_command =
      std::string(MCF0_CLI_PATH) +
      " serve --seed 7 --port 0 --shards 2 --out " + served;
  FILE* serve = popen(serve_command.c_str(), "r");
  ASSERT_NE(serve, nullptr);
  char line[4096];
  std::string startup;
  while (std::fgets(line, sizeof(line), serve) != nullptr) {
    startup += line;
    if (line[0] == '}') break;
  }
  const int port = static_cast<int>(JsonNumber(startup, "port"));
  const int pid = static_cast<int>(JsonNumber(startup, "pid"));
  ASSERT_GT(port, 0) << startup;
  ASSERT_GT(pid, 0) << startup;

  // Frames on one session are handled in order, so by the time the
  // stats query is answered every batch this push sent is counted.
  const RunOutput stats_push =
      RunCli("push --port " + std::to_string(port) + " --query stats " + path);
  ASSERT_EQ(stats_push.exit_code, 0) << stats_push.stdout_text;
  const double batches = JsonNumber(stats_push.stdout_text, "batches");
  EXPECT_NE(stats_push.stdout_text.find("\"stats\":"), std::string::npos)
      << stats_push.stdout_text;
  EXPECT_EQ(JsonNumber(stats_push.stdout_text, "mcf0_serve_items_total"),
            800.0)
      << stats_push.stdout_text;
  EXPECT_EQ(JsonNumber(stats_push.stdout_text, "mcf0_serve_batches_total"),
            batches)
      << stats_push.stdout_text;
  const double stats_bytes_in =
      JsonNumber(stats_push.stdout_text, "mcf0_serve_bytes_in_total");
  EXPECT_GT(stats_bytes_in, 0.0);

  // A bare `--query` keeps its historical meaning (estimate) and must
  // not swallow the input path that follows it.
  const RunOutput bare_query = RunCli("push --port " + std::to_string(port) +
                                      " --query " + path);
  ASSERT_EQ(bare_query.exit_code, 0) << bare_query.stdout_text;
  EXPECT_NE(bare_query.stdout_text.find("\"estimate\":"), std::string::npos)
      << bare_query.stdout_text;
  EXPECT_EQ(JsonNumber(bare_query.stdout_text, "server_items"), 1600.0)
      << bare_query.stdout_text;

  ASSERT_EQ(kill(pid, SIGTERM), 0);
  std::string drained;
  while (std::fgets(line, sizeof(line), serve) != nullptr) drained += line;
  const int status = pclose(serve);
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0) << drained;
  EXPECT_NE(drained.find("\"event\": \"drained\""), std::string::npos)
      << drained;
  EXPECT_EQ(JsonNumber(drained, "items"), 1600.0) << drained;
  EXPECT_EQ(JsonNumber(drained, "batches"), 2 * batches) << drained;
  EXPECT_EQ(JsonNumber(drained, "error_frames"), 0.0) << drained;
  EXPECT_NE(drained.find("\"errors\": {}"), std::string::npos) << drained;
  EXPECT_GE(JsonNumber(drained, "bytes_in"), stats_bytes_in) << drained;
}

TEST(CliTest, PushRejectsUnknownQueryKind) {
  // `--query` only understands estimate|stats; anything else is left in
  // argv, so `--query bogus input.txt` becomes two positionals — a
  // usage error, never a silent fallback.
  EXPECT_EQ(RunCli("push --port 1 --query bogus /dev/null 2>/dev/null")
                .exit_code,
            2);
}

TEST(CliTest, PushWithoutServerIsACleanError) {
  EXPECT_EQ(RunCli("push --port 1 /dev/null 2>/dev/null").exit_code, 1);
  // And push without --port is a usage error, not a connection attempt.
  EXPECT_EQ(RunCli("push /dev/null 2>/dev/null").exit_code, 2);
}

}  // namespace
}  // namespace mcf0
