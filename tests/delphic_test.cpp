// Tests for Delphic sets and the APS-Estimator (Remark 2): the three
// Delphic queries are verified against brute force for ranges and affine
// spaces; the binomial sampler is checked distributionally; the estimator
// is checked against exact unions including the heavy-overlap superseding
// path (an arriving set deletes earlier evidence of its elements).
#include "setstream/delphic.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "setstream/exact_union.hpp"

namespace mcf0 {
namespace {

TEST(RangeDelphic, SizeMatchesVolume) {
  MultiDimRange r(2, 8);
  r.SetDim(0, DimRange{10, 20, 0});
  r.SetDim(1, DimRange{4, 40, 3});  // step 8: 5 points
  const RangeDelphic set(r);
  EXPECT_EQ(set.Size(), 11u * 5u);
  EXPECT_EQ(set.width(), 16);
}

TEST(RangeDelphic, SamplesAreMembersAndCoverTheSet) {
  Rng rng(3);
  MultiDimRange r(2, 5);
  r.SetDim(0, DimRange{3, 9, 0});
  r.SetDim(1, DimRange{0, 31, 2});  // step 4
  const RangeDelphic set(r);
  std::set<BitVec> seen;
  for (int i = 0; i < 2000; ++i) {
    const BitVec x = set.Sample(rng);
    EXPECT_TRUE(set.Contains(x));
    seen.insert(x);
  }
  // 7 * 8 = 56 members; 2000 samples cover all w.h.p.
  EXPECT_EQ(seen.size(), set.Size());
}

TEST(RangeDelphic, ContainsMatchesRangeMembership) {
  Rng rng(5);
  const MultiDimRange r = MultiDimRange::Random(2, 6, rng);
  const RangeDelphic set(r);
  for (uint64_t v = 0; v < (1u << 12); v += 7) {
    const BitVec x = BitVec::FromU64(v, 12);
    const std::vector<uint64_t> point = {v >> 6, v & 63};
    EXPECT_EQ(set.Contains(x), r.Contains(point));
  }
}

TEST(AffineDelphic, SizeSamplesAndMembership) {
  Rng rng(7);
  const Gf2Matrix a = Gf2Matrix::Random(4, 10, rng);
  const BitVec b = a.Mul(BitVec::Random(10, rng));  // guaranteed consistent
  const AffineDelphic set(a, b);
  ASSERT_GT(set.Size(), 0u);
  std::set<BitVec> seen;
  for (int i = 0; i < 3000; ++i) {
    const BitVec x = set.Sample(rng);
    EXPECT_TRUE(set.Contains(x));
    EXPECT_EQ(a.Mul(x), b);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), set.Size());
}

TEST(AffineDelphic, EmptySystem) {
  Gf2Matrix a(2, 5);
  a.Set(0, 0, true);
  a.Set(1, 0, true);
  BitVec b(2);
  b.Set(0, true);
  const AffineDelphic set(a, b);
  EXPECT_EQ(set.Size(), 0u);
  EXPECT_FALSE(set.Contains(BitVec(5)));
}

TEST(SampleBinomialPow2, LevelZeroIsDeterministic) {
  Rng rng(11);
  EXPECT_EQ(SampleBinomialPow2(37, 0, rng), 37u);
  EXPECT_EQ(SampleBinomialPow2(0, 3, rng), 0u);
}

TEST(SampleBinomialPow2, MeanMatchesNp) {
  Rng rng(13);
  const uint64_t trials = 4096;
  const int level = 4;  // p = 1/16, mean 256
  double total = 0;
  const int reps = 300;
  for (int i = 0; i < reps; ++i) {
    const uint64_t c = SampleBinomialPow2(trials, level, rng);
    EXPECT_LE(c, trials);
    total += static_cast<double>(c);
  }
  const double mean = total / reps;
  EXPECT_GT(mean, 256.0 * 0.9);
  EXPECT_LT(mean, 256.0 * 1.1);
}

ApsParams FastParams(int n, uint64_t seed) {
  ApsParams p;
  p.n = n;
  p.eps = 0.5;
  p.delta = 0.2;
  p.rows_override = 15;
  p.seed = seed;
  return p;
}

TEST(ApsEstimator, RangeUnionWithinBand) {
  Rng rng(17);
  const int bits = 9;
  const int d = 2;
  std::vector<MultiDimRange> ranges;
  for (int i = 0; i < 10; ++i) {
    ranges.push_back(MultiDimRange::Random(d, bits, rng));
  }
  const double exact = ExactRangeUnionSize(ranges);
  ApsEstimator est(FastParams(d * bits, 23));
  for (const auto& r : ranges) est.Add(RangeDelphic(r));
  EXPECT_GE(est.Estimate(), exact / 2.0);
  EXPECT_LE(est.Estimate(), exact * 2.0);
}

TEST(ApsEstimator, AffineUnionWithinBand) {
  Rng rng(19);
  const int n = 16;
  std::vector<std::pair<Gf2Matrix, BitVec>> systems;
  ApsEstimator est(FastParams(n, 29));
  for (int i = 0; i < 6; ++i) {
    const int rows = 4 + static_cast<int>(rng.NextBelow(4));
    systems.emplace_back(Gf2Matrix::Random(rows, n, rng),
                         BitVec::Random(rows, rng));
    est.Add(AffineDelphic(systems.back().first, systems.back().second));
  }
  const double exact = static_cast<double>(ExactAffineUnionSize(systems, n));
  if (exact == 0) {
    EXPECT_EQ(est.Estimate(), 0.0);
  } else {
    EXPECT_GE(est.Estimate(), exact / 2.0);
    EXPECT_LE(est.Estimate(), exact * 2.0);
  }
}

TEST(ApsEstimator, RepeatedIdenticalSetsDoNotInflate) {
  // The superseding step (remove X ∩ S before re-sampling S) makes the
  // estimate invariant to replays of the same set.
  Rng rng(31);
  MultiDimRange r(1, 12);
  r.SetDim(0, DimRange{100, 3000, 0});
  ApsEstimator est(FastParams(12, 37));
  for (int rep = 0; rep < 10; ++rep) est.Add(RangeDelphic(r));
  const double exact = 2901.0;
  EXPECT_GE(est.Estimate(), exact / 2.0);
  EXPECT_LE(est.Estimate(), exact * 2.0);
}

TEST(ApsEstimator, SmallUnionExactRegime) {
  // Union far below capacity: level stays 0 and the count is exact.
  ApsEstimator est(FastParams(10, 41));
  MultiDimRange r(1, 10);
  r.SetDim(0, DimRange{5, 60, 0});
  est.Add(RangeDelphic(r));
  EXPECT_DOUBLE_EQ(est.Estimate(), 56.0);
}

TEST(ApsEstimator, EmptyStreamIsZero) {
  ApsEstimator est(FastParams(8, 43));
  EXPECT_EQ(est.Estimate(), 0.0);
  // Adding an empty affine set changes nothing.
  Gf2Matrix a(2, 8);
  a.Set(0, 0, true);
  a.Set(1, 0, true);
  BitVec b(2);
  b.Set(0, true);
  est.Add(AffineDelphic(a, b));
  EXPECT_EQ(est.Estimate(), 0.0);
}

TEST(ApsEstimator, SpaceBoundedByCapacity) {
  Rng rng(47);
  ApsEstimator est(FastParams(20, 53));
  for (int i = 0; i < 8; ++i) {
    est.Add(RangeDelphic(MultiDimRange::Random(2, 10, rng)));
  }
  EXPECT_LE(est.SpaceBits(),
            static_cast<size_t>(est.rows()) * (est.capacity() * 20 + 8));
}

}  // namespace
}  // namespace mcf0
