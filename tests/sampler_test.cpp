// Tests for the near-uniform solution sampler (§6 direction): every sample
// satisfies the formula; the empirical distribution over a small solution
// set is flat within a constant factor; unsatisfiable formulas yield none.
#include "core/sampler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

TEST(Sampler, UnsatisfiableYieldsNothing) {
  const Dnf dnf(8);  // no terms
  SamplerParams params;
  params.seed = 3;
  EXPECT_FALSE(SampleSolutionDnf(dnf, params).has_value());
}

TEST(Sampler, AllSamplesAreSolutions) {
  Rng rng(5);
  const Dnf dnf = RandomDnf(14, 5, 2, 6, rng);
  SamplerParams params;
  params.seed = 7;
  const auto samples = SampleSolutionsDnf(dnf, 50, params);
  EXPECT_GE(samples.size(), 45u);  // retries may rarely exhaust
  for (const BitVec& x : samples) EXPECT_TRUE(dnf.Eval(x));
}

TEST(Sampler, SingleSolutionFormulaAlwaysReturnsIt) {
  Dnf dnf(10);
  std::vector<Lit> lits;
  for (int v = 0; v < 10; ++v) lits.emplace_back(v, v % 2 == 0);
  dnf.AddTerm(*Term::Make(std::move(lits)));
  ASSERT_EQ(ExactCountEnum(dnf), 1u);
  SamplerParams params;
  params.seed = 11;
  for (int i = 0; i < 5; ++i) {
    params.seed = 11 + i;
    const auto sample = SampleSolutionDnf(dnf, params);
    ASSERT_TRUE(sample.has_value());
    EXPECT_TRUE(dnf.Eval(*sample));
  }
}

TEST(Sampler, EmpiricalDistributionIsNearUniform) {
  // 12 solutions (three disjoint cubes of 4); over many samples every
  // solution should appear with frequency within a small constant factor
  // of uniform. Bounds are deliberately loose to avoid flakes.
  Dnf dnf(8);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false)}));
  dnf.AddTerm(*Term::Make({Lit(0, true), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false)}));
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, true), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false)}));
  const uint64_t solution_count = ExactCountEnum(dnf);
  ASSERT_EQ(solution_count, 12u);
  SamplerParams params;
  params.seed = 13;
  const int kSamples = 1200;
  const auto samples = SampleSolutionsDnf(dnf, kSamples, params);
  ASSERT_GE(samples.size(), static_cast<size_t>(kSamples) * 9 / 10);
  std::map<BitVec, int> freq;
  for (const BitVec& x : samples) freq[x]++;
  EXPECT_EQ(freq.size(), solution_count);  // every solution appears
  const double expect = static_cast<double>(samples.size()) / 12.0;
  for (const auto& [x, count] : freq) {
    EXPECT_GT(count, expect / 4.0) << x.ToString();
    EXPECT_LT(count, expect * 4.0) << x.ToString();
  }
}

TEST(Sampler, LargeSolutionSpaceStillSamples) {
  Dnf dnf(24);
  dnf.AddTerm(*Term::Make({Lit(0, false)}));  // 2^23 solutions
  SamplerParams params;
  params.seed = 17;
  const auto sample = SampleSolutionDnf(dnf, params);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(dnf.Eval(*sample));
}

}  // namespace
}  // namespace mcf0
