// Statistical acceptance harness for the (eps, delta) guarantee, run
// through the wire format: at each setting we build sketches over streams
// with known F0 using the paper's own parameter formulas (Thresh =
// ceil(96 / eps^2), t = ceil(35 log2(1/delta)) — no overrides), round
// every sketch through the v1 *and* v2 codecs, and tally how often the
// relative error exceeds eps across >= 200 independently seeded trials.
// The paper promises failure probability <= delta; with its generous
// constants the true rate sits far below that, so asserting
// failures <= delta * trials is robust against binomial noise while still
// catching any compression bug that nudges estimates.
//
// Both codec versions must also agree with the in-memory estimator
// *exactly* (the codec is lossless), so the statistical guarantee
// transfers to round-tripped sketches by identity — which is precisely
// what this harness pins down: compression can never silently change an
// estimate.
//
// The Estimation algorithm is exercised for exactness elsewhere
// (engine_test round trips); its Theta(Thresh * t) work per stream element
// makes paper-formula trials impractical here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "engine/sketch_codec.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

struct Setting {
  F0Algorithm algorithm;
  double eps;
  double delta;
  uint64_t f0;  // distinct elements per stream
  int trials;
};

// Distinct elements, varied per trial: odd-multiplier mixing is a
// bijection on the n-bit universe, and the trial XOR keeps streams
// distinct across trials without breaking injectivity.
uint64_t Element(uint64_t i, uint64_t trial, int n) {
  const uint64_t mask = (1ull << n) - 1;
  return ((i * 2654435761ull) ^ (trial * 0x9e37ull)) & mask;
}

void RunSetting(const Setting& setting) {
  constexpr int kN = 16;
  int failures = 0;
  for (int trial = 0; trial < setting.trials; ++trial) {
    F0Params params;
    params.n = kN;
    params.eps = setting.eps;
    params.delta = setting.delta;
    params.algorithm = setting.algorithm;
    params.seed = 1000 + trial;

    F0Estimator est(params);
    for (uint64_t i = 0; i < setting.f0; ++i) {
      est.Add(Element(i, trial, kN));
    }

    const double direct = est.Estimate();
    for (const uint16_t version :
         {SketchCodec::kFormatV1, SketchCodec::kFormatV2}) {
      Result<F0Estimator> decoded =
          SketchCodec::DecodeF0Estimator(SketchCodec::Encode(est, version));
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      // Lossless: the round-tripped estimator answers identically.
      ASSERT_DOUBLE_EQ(decoded.value().Estimate(), direct)
          << "format v" << version << ", trial " << trial;
    }

    const double f0 = static_cast<double>(setting.f0);
    if (std::abs(direct - f0) > setting.eps * f0) ++failures;
  }
  EXPECT_LE(failures, setting.delta * setting.trials)
      << "observed failure rate "
      << static_cast<double>(failures) / setting.trials
      << " breaks the paper's delta = " << setting.delta << " bound";
}

TEST(F0StatisticalTest, BucketingModerateEpsDelta) {
  RunSetting({F0Algorithm::kBucketing, 0.9, 0.25, 500, 200});
}

TEST(F0StatisticalTest, BucketingTightEpsLooseDelta) {
  RunSetting({F0Algorithm::kBucketing, 0.6, 0.35, 800, 200});
}

TEST(F0StatisticalTest, MinimumModerateEpsDelta) {
  RunSetting({F0Algorithm::kMinimum, 0.9, 0.25, 500, 200});
}

TEST(F0StatisticalTest, MinimumTightEpsLooseDelta) {
  RunSetting({F0Algorithm::kMinimum, 0.7, 0.3, 600, 200});
}

}  // namespace
}  // namespace mcf0
