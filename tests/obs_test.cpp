// Tests for the obs telemetry subsystem (src/obs/): registry
// registration and exposition, lock-free counter/gauge/histogram
// semantics under concurrency (the TSan job runs this binary), and the
// scoped-span tracer. Exposition goldens pin the exact JSON /
// Prometheus renderings docs/observability.md documents.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcf0 {
namespace obs {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
}

TEST(CounterTest, IncrementDeltaAndReset) {
  Counter counter;
  counter.Increment(41);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 42u);
  counter.ResetForTest();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, RuntimeKillSwitchFreezesValues) {
  Counter counter;
  counter.Increment();
  SetEnabled(false);
  counter.Increment(100);
  SetEnabled(true);
  counter.Increment();
  EXPECT_EQ(counter.Value(), 2u);
}

TEST(GaugeTest, AddSetAndNegativeTransients) {
  Gauge gauge;
  gauge.Increment();
  gauge.Increment();
  gauge.Decrement();
  EXPECT_EQ(gauge.Value(), 1);
  // A decrement racing ahead of its increment must not wrap: gauges
  // are signed.
  gauge.Add(-5);
  EXPECT_EQ(gauge.Value(), -4);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly v == 0; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 1);
  EXPECT_EQ(Histogram::BucketIndex(2), 2);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 3);
  EXPECT_EQ(Histogram::BucketIndex(7), 3);
  EXPECT_EQ(Histogram::BucketIndex(8), 4);
  EXPECT_EQ(Histogram::BucketIndex((1u << 25)), 26);
  EXPECT_EQ(Histogram::BucketIndex((1u << 26) - 1), 26);
  // Everything from 2^26 up lands in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1u << 26), Histogram::kNumBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(~0ull), Histogram::kNumBuckets - 1);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(26), uint64_t{1} << 26);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, ObserveCountsAndSums) {
  Histogram histogram;
  histogram.Observe(0);
  histogram.Observe(1);
  histogram.Observe(3);
  histogram.Observe(3);
  histogram.Observe(1000);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_EQ(histogram.Sum(), 1007u);
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(Histogram::BucketIndex(1000)), 1u);
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("events_total");
  Counter* b = registry.GetCounter("events_total");
  EXPECT_EQ(a, b);
  // Label order does not matter: one cell per canonical key.
  Gauge* g1 = registry.GetGauge("depth", {{"a", "1"}, {"b", "2"}});
  Gauge* g2 = registry.GetGauge("depth", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(g1, g2);
  // Different label values are different cells.
  Gauge* g3 = registry.GetGauge("depth", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(g1, g3);
}

TEST(RegistryTest, SnapshotJsonGolden) {
  Registry registry;
  registry.GetCounter("test_events_total")->Increment(3);
  registry.GetGauge("test_depth", {{"shard", "0"}})->Set(2);
  EXPECT_EQ(registry.SnapshotJson(),
            "{\"test_depth{shard=\\\"0\\\"}\":2,\"test_events_total\":3}");
}

TEST(RegistryTest, SnapshotJsonHistogramGolden) {
  Registry registry;
  registry.GetHistogram("lat_us")->Observe(5);
  std::string expected = "{\"lat_us\":{\"count\":1,\"sum\":5,\"buckets\":[";
  for (int i = 0; i < Histogram::kNumBuckets; ++i) {
    if (i > 0) expected += ",";
    expected += (i == Histogram::BucketIndex(5)) ? "1" : "0";
  }
  expected += "]}}";
  EXPECT_EQ(registry.SnapshotJson(), expected);
}

TEST(RegistryTest, TextExpositionGolden) {
  Registry registry;
  registry.GetCounter("test_events_total")->Increment(3);
  registry.GetGauge("test_depth", {{"shard", "1"}})->Set(4);
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE test_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_events_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_depth{shard=\"1\"} 4\n"), std::string::npos);
}

TEST(RegistryTest, TextExpositionHistogramCumulativeBuckets) {
  Registry registry;
  Histogram* histogram = registry.GetHistogram("lat_us", {{"op", "x"}});
  histogram->Observe(1);  // bucket 1 (le 2)
  histogram->Observe(3);  // bucket 2 (le 4)
  const std::string text = registry.TextExposition();
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  // Cumulative counts with le spliced into the existing label set.
  EXPECT_NE(text.find("lat_us_bucket{op=\"x\",le=\"1\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{op=\"x\",le=\"2\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{op=\"x\",le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{op=\"x\",le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_us_sum{op=\"x\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count{op=\"x\"} 2\n"), std::string::npos);
}

TEST(RegistryTest, FlatEntriesClampsGaugesAndFlattensHistograms) {
  Registry registry;
  registry.GetCounter("c_total")->Increment(7);
  registry.GetGauge("g_now")->Set(-3);
  registry.GetHistogram("h_us")->Observe(9);
  const auto entries = registry.FlatEntries();
  ASSERT_EQ(entries.size(), 4u);
  // Strictly sorted by name — the kStatsReport wire contract.
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].first, entries[i].first);
  }
  auto find = [&entries](const std::string& name) -> uint64_t {
    for (const auto& [key, value] : entries) {
      if (key == name) return value;
    }
    ADD_FAILURE() << "missing entry " << name;
    return 0;
  };
  EXPECT_EQ(find("c_total"), 7u);
  EXPECT_EQ(find("g_now"), 0u);  // negative gauge clamps to zero
  EXPECT_EQ(find("h_us_count"), 1u);
  EXPECT_EQ(find("h_us_sum"), 9u);
}

TEST(RegistryTest, ResetForTestZeroesValuesKeepsRegistrations) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  counter->Increment(5);
  registry.ResetForTest();
  EXPECT_EQ(counter->Value(), 0u);
  // Same cell after the reset.
  EXPECT_EQ(registry.GetCounter("c_total"), counter);
}

// Writers hammer cells while the main thread snapshots every way the
// registry can render — the TSan job turns any torn access into a
// failure; single-threaded runs still check the totals afterwards.
TEST(RegistryTest, SnapshotWhileWriting) {
  Registry registry;
  Counter* counter = registry.GetCounter("c_total");
  Gauge* gauge = registry.GetGauge("g_now");
  Histogram* histogram = registry.GetHistogram("h_us");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        gauge->Add(i % 2 == 0 ? 1 : -1);
        histogram->Observe(static_cast<uint64_t>(i));
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    (void)registry.Snapshot();
    (void)registry.SnapshotJson();
    (void)registry.TextExposition();
    (void)registry.FlatEntries();
    // Registration is also safe while writers run.
    (void)registry.GetCounter("late_total", {{"round", "0"}});
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(), uint64_t{kThreads} * kPerThread);
}

TEST(ScopedLatencyTest, ObservesOnDestruction) {
  Histogram histogram;
  {
    ScopedLatencyUs timer(&histogram);
  }
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(TraceTest, SpansRecordAndDrainAsJson) {
  (void)DrainSpansJson();  // start from an empty ring set
  {
    MCF0_TRACE_SPAN("test.outer");
    MCF0_TRACE_SPAN("test.inner");
  }
  const std::string json = DrainSpansJson();
  EXPECT_NE(json.find("\"name\":\"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.inner\""), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Drained means drained.
  EXPECT_EQ(DrainSpansJson(), "[]");
}

TEST(TraceTest, RingOverwriteBumpsDroppedCounter) {
  (void)DrainSpansJson();
  const uint64_t dropped_before = SpansDropped();
  for (int i = 0; i < kSpanRingCapacity + 10; ++i) {
    MCF0_TRACE_SPAN("test.wrap");
  }
  EXPECT_GE(SpansDropped() - dropped_before, 10u);
  (void)DrainSpansJson();
}

TEST(TraceTest, ConcurrentThreadsEachGetARing) {
  (void)DrainSpansJson();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 16; ++i) {
        MCF0_TRACE_SPAN("test.thread");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const std::string json = DrainSpansJson();
  size_t count = 0;
  for (size_t pos = 0;
       (pos = json.find("\"name\":\"test.thread\"", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u * 16u);
}

}  // namespace
}  // namespace obs
}  // namespace mcf0
