// Cross-module edge cases and failure injection: degenerate formulas,
// boundary hash levels, exhausted enumerations, extreme ranges, and the
// interplay of saturation caps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/approx_count_min.hpp"
#include "core/approxmc.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/find_max_range.hpp"
#include "oracle/find_min.hpp"
#include "setstream/range_to_dnf.hpp"
#include "setstream/structured_f0.hpp"

namespace mcf0 {
namespace {

TEST(EdgeCases, FullUniverseDnf) {
  // A DNF with an empty term accepts everything: count = 2^n exactly at
  // the top cell level.
  Dnf dnf(10);
  dnf.AddTerm(*Term::Make({}));
  EXPECT_EQ(ExactCountEnum(dnf), 1024u);
  CountingParams params;
  params.rows_override = 9;
  params.seed = 3;
  const CountResult got = ApproxMcDnf(dnf, params);
  EXPECT_GE(got.estimate, 1024.0 / 2.0);
  EXPECT_LE(got.estimate, 1024.0 * 2.0);
}

TEST(EdgeCases, BoundedSatAtFullHashDepth) {
  // m = n: each cell is an affine point set; count is 0 or tiny.
  Rng rng(5);
  const Dnf dnf = RandomDnf(10, 4, 2, 5, rng);
  const AffineHash h = AffineHash::SampleToeplitz(10, 10, rng);
  const auto result = BoundedSatDnf(dnf, h, 10, 1000);
  for (const BitVec& x : result.solutions) {
    EXPECT_TRUE(dnf.Eval(x));
    EXPECT_TRUE(h.Eval(x).IsZero());
  }
  // Cross-check against brute force.
  uint64_t expect = 0;
  BitVec x(10);
  for (uint64_t v = 0; v < 1024; ++v) {
    if (dnf.Eval(x) && h.Eval(x).IsZero()) ++expect;
    x.Increment();
  }
  EXPECT_EQ(result.count(), expect);
}

TEST(EdgeCases, FindMinExhaustsSmallImages) {
  // p far larger than |h(Sol)|: FindMin returns the whole image, sorted.
  Dnf dnf(8);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false), Lit(2, false),
                           Lit(3, false), Lit(4, false), Lit(5, false)}));
  Rng rng(7);
  const AffineHash h = AffineHash::SampleToeplitz(8, 24, rng);
  const auto mins = FindMinDnf(dnf, h, 1000000);
  EXPECT_LE(mins.size(), 4u);  // at most 2^2 solutions
  EXPECT_TRUE(std::is_sorted(mins.begin(), mins.end()));
}

TEST(EdgeCases, FindMaxRangeOnSingleton) {
  // One solution: the max trailing-zero count is that solution's.
  Dnf dnf(12);
  std::vector<Lit> lits;
  for (int v = 0; v < 12; ++v) lits.emplace_back(v, v % 3 != 0);
  dnf.AddTerm(*Term::Make(std::move(lits)));
  ASSERT_EQ(ExactCountEnum(dnf), 1u);
  Rng rng(11);
  const AffineHash h = AffineHash::SampleXor(12, 12, rng);
  BitVec solution(12);
  for (int v = 0; v < 12; ++v) solution.Set(v, v % 3 == 0);
  EXPECT_EQ(FindMaxRangeDnf(dnf, h), h.Eval(solution).TrailingZeros());
}

TEST(EdgeCases, SingleVariableFormulas) {
  Dnf dnf(1);
  dnf.AddTerm(*Term::Make({Lit(0, false)}));
  EXPECT_EQ(ExactCountEnum(dnf), 1u);
  CountingParams params;
  params.rows_override = 5;
  params.seed = 13;
  EXPECT_DOUBLE_EQ(ApproxMcDnf(dnf, params).estimate, 1.0);
  EXPECT_DOUBLE_EQ(ApproxCountMinDnf(dnf, params).estimate, 1.0);
}

TEST(EdgeCases, RangeOfSinglePointPerDimension) {
  MultiDimRange r(3, 8);
  r.SetDim(0, DimRange{7, 7, 0});
  r.SetDim(1, DimRange{0, 0, 0});
  r.SetDim(2, DimRange{255, 255, 0});
  const Dnf dnf = RangeToDnf(r);
  EXPECT_EQ(dnf.num_terms(), 1);
  EXPECT_EQ(ExactCountEnum(dnf), 1u);
}

TEST(EdgeCases, ApStepLargerThanSpan) {
  // [5, 7] with step 4: only 5 qualifies (5 mod 4 preserved).
  const auto terms = RangeDimensionTerms(5, 7, 2, 6, 0);
  uint64_t members = 0;
  for (uint64_t v = 0; v < 64; ++v) {
    const BitVec x = BitVec::FromU64(v, 6);
    for (const Term& t : terms) {
      if (t.Eval(x)) {
        ++members;
        EXPECT_EQ(v, 5u);
        break;
      }
    }
  }
  EXPECT_EQ(members, 1u);
}

TEST(EdgeCases, StructuredF0SaturationAtFullDepth) {
  // More distinct elements than 2^n / thresh can separate: bucketing level
  // hits n and the estimate saturates but stays finite.
  StructuredF0Params p;
  p.n = 6;
  p.thresh_override = 4;
  p.rows_override = 5;
  p.algorithm = StructuredF0Algorithm::kBucketing;
  p.seed = 17;
  StructuredF0 est(p);
  Dnf everything(6);
  everything.AddTerm(*Term::Make({}));
  est.AddDnf(everything);
  EXPECT_GT(est.Estimate(), 0.0);
  EXPECT_TRUE(std::isfinite(est.Estimate()));
}

TEST(EdgeCases, MinimumSketchDuplicatedHashValues) {
  // Feeding the same hashed value repeatedly keeps the sketch a set.
  Rng rng(19);
  MinimumSketchRow row(AffineHash::SampleToeplitz(8, 24, rng), 10);
  const BitVec v = BitVec::Random(24, rng);
  for (int i = 0; i < 100; ++i) row.AddHashed(v);
  EXPECT_EQ(row.values().size(), 1u);
  EXPECT_DOUBLE_EQ(row.Estimate(), 1.0);
}

TEST(EdgeCases, WideTermNarrowUniverse) {
  // Term fixing every variable: exactly one solution; all oracle
  // subroutines agree.
  const int n = 16;
  std::vector<Lit> lits;
  for (int v = 0; v < n; ++v) lits.emplace_back(v, v % 2 == 0);
  Dnf dnf(n);
  dnf.AddTerm(*Term::Make(std::move(lits)));
  Rng rng(23);
  const AffineHash h3 = AffineHash::SampleToeplitz(n, 3 * n, rng);
  const auto mins = FindMinDnf(dnf, h3, 5);
  ASSERT_EQ(mins.size(), 1u);
  BitVec solution(n);
  for (int v = 0; v < n; ++v) solution.Set(v, v % 2 != 0);
  EXPECT_EQ(mins[0], h3.Eval(solution));
}

TEST(EdgeCases, ZeroClauseCnfCountsFullUniverse) {
  const Cnf cnf(12);
  CountingParams params;
  params.rows_override = 9;
  params.seed = 29;
  const CountResult got = ApproxMcCnf(cnf, params);
  EXPECT_GE(got.estimate, 4096.0 / 2.0);
  EXPECT_LE(got.estimate, 4096.0 * 2.0);
}

}  // namespace
}  // namespace mcf0
