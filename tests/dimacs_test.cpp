// Tests for DIMACS CNF/DNF parsing and printing.
#include "formula/dimacs.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

TEST(Dimacs, ParseSimpleCnf) {
  const auto result = ParseDimacsCnf("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  ASSERT_TRUE(result.ok());
  const Cnf& cnf = result.value();
  EXPECT_EQ(cnf.num_vars(), 3);
  EXPECT_EQ(cnf.num_clauses(), 2);
  EXPECT_EQ(cnf.clauses()[0].lits()[0].var, 0);
  EXPECT_FALSE(cnf.clauses()[0].lits()[0].neg);
  EXPECT_EQ(cnf.clauses()[0].lits()[1].var, 1);
  EXPECT_TRUE(cnf.clauses()[0].lits()[1].neg);
}

TEST(Dimacs, ParseSimpleDnf) {
  const auto result = ParseDimacsDnf("p dnf 4 2\n1 2 0\n-3 4 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().num_terms(), 2);
  EXPECT_EQ(result.value().num_vars(), 4);
}

TEST(Dimacs, RejectsMissingHeader) {
  EXPECT_FALSE(ParseDimacsCnf("1 2 0\n").ok());
}

TEST(Dimacs, RejectsWrongKind) {
  EXPECT_FALSE(ParseDimacsCnf("p dnf 3 1\n1 0\n").ok());
  EXPECT_FALSE(ParseDimacsDnf("p cnf 3 1\n1 0\n").ok());
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
  EXPECT_FALSE(ParseDimacsCnf("p cnf 2 1\n3 0\n").ok());
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_FALSE(ParseDimacsCnf("p cnf 2 1\n1 2\n").ok());
}

TEST(Dimacs, RejectsGarbageToken) {
  EXPECT_FALSE(ParseDimacsCnf("p cnf 2 1\n1 x 0\n").ok());
}

TEST(Dimacs, RejectsContradictoryDnfTerm) {
  EXPECT_FALSE(ParseDimacsDnf("p dnf 2 1\n1 -1 0\n").ok());
}

TEST(Dimacs, CnfRoundTripPreservesSolutionCount) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const Cnf cnf = RandomKCnf(10, 20, 3, rng);
    const auto parsed = ParseDimacsCnf(ToDimacs(cnf));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(ExactCountEnum(parsed.value()), ExactCountEnum(cnf));
  }
}

TEST(Dimacs, DnfRoundTripPreservesSolutionCount) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Dnf dnf = RandomDnf(10, 8, 1, 5, rng);
    const auto parsed = ParseDimacsDnf(ToDimacs(dnf));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(ExactCountEnum(parsed.value()), ExactCountEnum(dnf));
  }
}

TEST(Dimacs, StatusMessagesAreInformative) {
  const auto r = ParseDimacsCnf("p qbf 1 1\n");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().ToString().find("ParseError"), std::string::npos);
}

}  // namespace
}  // namespace mcf0
