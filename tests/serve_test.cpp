// In-process loopback tests for the serve stack (src/net): a real
// SketchServer on a background thread, real PushClients over TCP on
// 127.0.0.1. Covers the PR's acceptance bar: N concurrent push clients
// whose final sketch is byte-identical (post-encode) to single-pass
// ingestion, mid-stream queries racing live pushes, drain losing zero
// acknowledged batches, and the credit window bounding in-flight data
// for a slow consumer.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "engine/sharded_engine.hpp"
#include "engine/sketch_codec.hpp"
#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"

namespace mcf0 {
namespace net {
namespace {

F0Params RawParams() {
  F0Params params;
  params.n = 24;
  params.eps = 0.8;
  params.delta = 0.2;
  params.seed = 20210625;  // PODS'21
  return params;
}

StructuredF0Params StructuredParams() {
  StructuredF0Params params;
  params.n = 8;
  params.eps = 0.9;
  params.delta = 0.3;
  params.seed = 7;
  return params;
}

/// Deterministic element stream: client `c` contributes elements
/// [c*Stride, c*Stride + Count) under a SplitMix-style mix, so
/// neighboring clients overlap and the union is a genuine multiset.
uint64_t MixedElement(uint64_t i) {
  uint64_t x = i * 0x9E3779B97F4A7C15ull;
  x ^= x >> 29;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 32;
  return x & ((1ull << 24) - 1);
}

std::vector<uint64_t> ClientSlice(int client, size_t stride, size_t count) {
  std::vector<uint64_t> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    items.push_back(MixedElement(client * stride + i));
  }
  return items;
}

/// A server running on its own thread; joins (asserting Run succeeded)
/// on destruction, so tests must RequestDrain before the end of scope.
class RunningServer {
 public:
  RunningServer(EngineBackend* backend, ServerOptions options)
      : server_(backend, std::move(options)) {
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    thread_ = std::thread([this] { run_status_ = server_.Run(); });
  }

  ~RunningServer() {
    if (thread_.joinable()) {
      server_.RequestDrain();
      thread_.join();
    }
    EXPECT_TRUE(run_status_.ok()) << run_status_.ToString();
  }

  SketchServer& server() { return server_; }
  int port() const { return server_.port(); }

  /// Drain and wait for the loop to finish; final_* become valid.
  void DrainAndJoin() {
    server_.RequestDrain();
    thread_.join();
  }

 private:
  SketchServer server_;
  std::thread thread_;
  Status run_status_;
};

ClientOptions Dial(int port) {
  ClientOptions options;
  options.host = "127.0.0.1";
  options.port = port;
  options.recv_timeout_ms = 30'000;
  return options;
}

// ---- acceptance: concurrent pushes == single pass -------------------------

TEST(Serve, FourRawClientsAreByteIdenticalToSinglePass) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 3);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  options.max_batch_items = 256;
  RunningServer running(&backend, options);

  constexpr int kClients = 4;
  constexpr size_t kStride = 2'000;  // overlap: stride < count
  constexpr size_t kCount = 3'000;
  std::vector<Status> outcomes(kClients);
  std::vector<std::thread> pushers;
  for (int c = 0; c < kClients; ++c) {
    pushers.emplace_back([c, port = running.port(), &outcomes] {
      Result<PushClient> connected =
          PushClient::Connect(StreamKind::kRaw, Dial(port));
      if (!connected.ok()) {
        outcomes[c] = connected.status();
        return;
      }
      PushClient client = std::move(connected).value();
      const std::vector<uint64_t> items = ClientSlice(c, kStride, kCount);
      Status status = client.Push(items);
      if (status.ok()) status = client.Close();
      outcomes[c] = status;
    });
  }
  for (std::thread& t : pushers) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(outcomes[c].ok()) << "client " << c << ": "
                                  << outcomes[c].ToString();
  }
  running.DrainAndJoin();

  // Single pass over the union stream, same params (=> same hashes).
  F0Estimator single(params);
  for (int c = 0; c < kClients; ++c) {
    for (const uint64_t x : ClientSlice(c, kStride, kCount)) single.Add(x);
  }
  EXPECT_EQ(running.server().final_sketch(), SketchCodec::Encode(single));
  EXPECT_EQ(running.server().final_estimate(), single.Estimate());
  EXPECT_EQ(running.server().items_accepted(), kClients * kCount);
  EXPECT_EQ(running.server().connections_served(),
            static_cast<uint64_t>(kClients));
}

std::vector<StructuredItem> StructuredStream(int salt, size_t count) {
  std::vector<StructuredItem> items;
  for (size_t k = 0; k < count; ++k) {
    const uint64_t h = MixedElement(salt * 1'000 + k);
    switch (k % 4) {
      case 0: {  // a one- or two-term DNF group over distinct variables
        // The two literals draw from disjoint variable ranges ([0,3] and
        // [4,7]) so the term can never be contradictory: Term::Make
        // returning nullopt would make the * below undefined behavior.
        std::vector<Term> terms;
        terms.push_back(*Term::Make(
            {Lit(static_cast<int>(h % 4), (h & 8) != 0),
             Lit(static_cast<int>((h / 16) % 4 + 4), (h & 64) != 0)}));
        if (h & 1) {
          terms.push_back(*Term::Make({Lit(static_cast<int>(h % 4), false)}));
        }
        items.emplace_back(std::move(terms));
        break;
      }
      case 1: {  // a 2x4-bit range
        MultiDimRange range(2, 4);
        const uint64_t lo0 = h % 8;
        range.SetDim(0, DimRange{lo0, lo0 + h % (16 - lo0), 0});
        range.SetDim(1, DimRange{h / 16 % 4, 12 + h % 4, (h & 2) ? 1 : 0});
        items.emplace_back(std::move(range));
        break;
      }
      case 2: {  // an affine space of rank 1..3 over n=8
        const int rank = 1 + static_cast<int>(h % 3);
        Gf2Matrix a(rank, 8);
        BitVec b(rank);
        for (int r = 0; r < rank; ++r) {
          for (int col = 0; col < 8; ++col) {
            a.Set(r, col, ((h >> ((r * 7 + col) % 23)) & 1) != 0);
          }
          a.Set(r, r, true);  // keep the rows nonzero
          b.Set(r, ((h >> r) & 2) != 0);
        }
        items.emplace_back(AffineSpaceItem{std::move(a), std::move(b)});
        break;
      }
      default: {  // a singleton element
        BitVec x(8);
        for (int bit = 0; bit < 8; ++bit) x.Set(bit, ((h >> bit) & 1) != 0);
        items.emplace_back(std::move(x));
        break;
      }
    }
  }
  return items;
}

TEST(Serve, StructuredClientsAreByteIdenticalToSinglePass) {
  const StructuredF0Params params = StructuredParams();
  ShardedStructuredEngine engine(params, 2);
  StructuredEngineBackend backend(&engine);
  ServerOptions options;
  options.max_batch_items = 16;
  RunningServer running(&backend, options);

  constexpr int kClients = 2;
  constexpr size_t kCount = 60;
  std::vector<Status> outcomes(kClients);
  std::vector<std::thread> pushers;
  for (int c = 0; c < kClients; ++c) {
    pushers.emplace_back([c, port = running.port(), &outcomes] {
      Result<PushClient> connected =
          PushClient::Connect(StreamKind::kStructured, Dial(port));
      if (!connected.ok()) {
        outcomes[c] = connected.status();
        return;
      }
      PushClient client = std::move(connected).value();
      Status status;
      for (StructuredItem& item : StructuredStream(c, kCount)) {
        status = client.PushItem(std::move(item));
        if (!status.ok()) break;
      }
      if (status.ok()) status = client.Close();
      outcomes[c] = status;
    });
  }
  for (std::thread& t : pushers) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(outcomes[c].ok()) << "client " << c << ": "
                                  << outcomes[c].ToString();
  }
  running.DrainAndJoin();

  StructuredF0 single(params);
  for (int c = 0; c < kClients; ++c) {
    for (const StructuredItem& item : StructuredStream(c, kCount)) {
      AbsorbItem(single, item);
    }
  }
  EXPECT_EQ(running.server().final_sketch(), SketchCodec::Encode(single));
  EXPECT_EQ(running.server().items_accepted(), kClients * kCount);
}

// ---- live queries racing pushes -------------------------------------------

TEST(Serve, MidStreamQueryRacesLivePushes) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 2);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  options.max_batch_items = 128;
  RunningServer running(&backend, options);

  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();

  const std::vector<uint64_t> items = ClientSlice(0, 0, 2'000);
  constexpr size_t kHalf = 1'000;
  ASSERT_TRUE(
      client.Push(std::span<const uint64_t>(items.data(), kHalf)).ok());
  ASSERT_TRUE(client.Flush().ok());

  // The query races the engine workers; the snapshot answers from
  // whatever merged state exists right now, without draining anything.
  Result<EstimateFrame> estimate = client.QueryEstimate();
  ASSERT_TRUE(estimate.ok()) << estimate.status().ToString();
  EXPECT_GE(estimate.value().estimate, 0.0);
  EXPECT_LE(estimate.value().items_ingested, kHalf);

  Result<std::string> snapshot = client.QuerySketch();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  Result<SketchVariant> decoded = SketchVariant::Decode(snapshot.value());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.value().structured());

  // The session keeps streaming after the queries.
  ASSERT_TRUE(client
                  .Push(std::span<const uint64_t>(items.data() + kHalf,
                                                  items.size() - kHalf))
                  .ok());
  ASSERT_TRUE(client.Close().ok());
  EXPECT_EQ(client.batches_acked(), client.batches_sent());
  running.DrainAndJoin();

  F0Estimator single(params);
  for (const uint64_t x : items) single.Add(x);
  EXPECT_EQ(running.server().final_sketch(), SketchCodec::Encode(single));
}

// ---- drain semantics -------------------------------------------------------

TEST(Serve, DrainKeepsEveryAcknowledgedBatch) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 2);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  options.credit_window = 16;  // roomy: drain stops new grants
  options.max_batch_items = 64;
  RunningServer running(&backend, options);

  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();

  std::vector<uint64_t> pushed;
  const auto push_batch = [&](int b) {
    std::vector<uint64_t> batch;
    for (int i = 0; i < 64; ++i) batch.push_back(MixedElement(b * 64 + i));
    Status status = client.Push(batch);
    if (status.ok()) status = client.Flush();
    ASSERT_TRUE(status.ok()) << status.ToString();
    pushed.insert(pushed.end(), batch.begin(), batch.end());
  };
  for (int b = 0; b < 5; ++b) push_batch(b);

  // Drain arrives mid-session. The announcement is only guaranteed to
  // reach sessions still alive when the server's loop processes the
  // request, so round-trip queries (answered while draining) until the
  // client has read the kDrain frame — then keep pushing: credited
  // batches still count.
  running.server().RequestDrain();
  for (int spin = 0; !client.drain_requested(); ++spin) {
    ASSERT_LT(spin, 100) << "kDrain never reached a live session";
    ASSERT_TRUE(client.QueryEstimate().ok());
  }
  for (int b = 5; b < 10; ++b) push_batch(b);

  ASSERT_TRUE(client.Close().ok());
  // Close's goodbye-ack proves every batch was acknowledged.
  EXPECT_EQ(client.batches_acked(), client.batches_sent());
  EXPECT_EQ(client.batches_sent(), 10u);
  EXPECT_TRUE(client.drain_requested());
  running.DrainAndJoin();

  // Zero acknowledged loss: the final sketch equals a single pass over
  // everything that was acked — including the batches pushed after the
  // drain began.
  F0Estimator single(params);
  for (const uint64_t x : pushed) single.Add(x);
  EXPECT_EQ(running.server().final_sketch(), SketchCodec::Encode(single));
  EXPECT_EQ(running.server().batches_accepted(), 10u);
}

TEST(Serve, DrainRefusesNewSessions) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 1);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  RunningServer running(&backend, options);

  // Hold one live session so the drain has something to wait on.
  Result<PushClient> first =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  PushClient held = std::move(first).value();

  running.server().RequestDrain();

  // New sessions now fail: either the listener is already closed
  // (connect refused) or the greeting is a drain announcement.
  ClientOptions options2 = Dial(running.port());
  options2.recv_timeout_ms = 2'000;
  for (int attempt = 0; attempt < 50; ++attempt) {
    Result<PushClient> late = PushClient::Connect(StreamKind::kRaw, options2);
    if (!late.ok()) {
      SUCCEED();
      break;
    }
    // Raced ahead of the drain flag; retry until the server acts on it.
    ASSERT_LT(attempt, 49) << "server kept accepting sessions after drain";
  }

  EXPECT_TRUE(held.Close().ok());
  running.DrainAndJoin();
}

// ---- flow control ----------------------------------------------------------

TEST(Serve, HonestClientStaysInsideTheCreditWindow) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 2);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  options.credit_window = 2;
  options.max_batch_items = 64;
  RunningServer running(&backend, options);

  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();
  EXPECT_EQ(client.welcome().initial_credits, 2u);

  std::vector<uint64_t> batch(64);
  for (int b = 0; b < 40; ++b) {
    for (int i = 0; i < 64; ++i) batch[i] = MixedElement(b * 64 + i);
    ASSERT_TRUE(client.Push(batch).ok());
    ASSERT_TRUE(client.Flush().ok());
    // The flow-control bound: the client can never hold more credits
    // than the window, so its unacknowledged in-flight batches — the
    // server's worst-case per-connection buffering — are window-bounded.
    EXPECT_LE(client.credits(), 2u);
    EXPECT_LE(client.batches_sent() - client.batches_acked(), 2u);
  }
  ASSERT_TRUE(client.Close().ok());
  EXPECT_EQ(client.batches_acked(), 40u);
  running.DrainAndJoin();
  EXPECT_EQ(running.server().items_accepted(), 40u * 64u);
}

/// An EngineBackend whose queue always reports saturation: the credit
/// low-watermark rule must stop all grants, and a client that pushes
/// anyway must be cut off with kResourceExhausted.
class SaturatedBackend : public EngineBackend {
 public:
  class NullProducer : public ProducerHandle {
   public:
    Status PushRaw(std::span<const uint64_t>) override {
      return Status::Ok();
    }
    Status Close() override { return Status::Ok(); }
  };

  StreamKind kind() const override { return StreamKind::kRaw; }
  std::variant<F0Params, StructuredF0Params> params() const override {
    return RawParams();
  }
  int universe_bits() const override { return 24; }
  uint16_t min_sketch_format() const override {
    return SketchCodec::kFormatV1;
  }
  std::unique_ptr<ProducerHandle> MakeProducer() override {
    return std::make_unique<NullProducer>();
  }
  uint64_t queued_batches() override { return 64; }  // == capacity: stuck
  uint64_t queue_capacity() const override { return 64; }
  uint64_t items_ingested() const override { return 0; }
  double SnapshotEstimate() override { return 0.0; }
  std::string EncodeSnapshot(uint16_t) override { return {}; }
  double FinalEstimate() override { return 0.0; }
  std::string EncodeFinal(uint16_t) override { return {}; }
};

/// Sends all of `bytes` on a blocking socket.
void SendAllOrDie(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send failed";
    sent += static_cast<size_t>(n);
  }
}

/// Blocks for the next frame on a raw socket (test-side peer that
/// deliberately ignores the PushClient's flow-control discipline).
Status ReadFrameBlocking(int fd, FrameBuffer* inbox, Message* out) {
  Status status;
  for (;;) {
    if (inbox->Next(out, &status)) return Status::Ok();
    if (!status.ok()) return status;
    char buffer[4096];
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return Status::Unavailable("connection closed");
    inbox->Append(std::string_view(buffer, static_cast<size_t>(n)));
  }
}

TEST(Serve, SlowConsumerStopsGrantsAndViolatorsAreCutOff) {
  SaturatedBackend backend;
  ServerOptions options;
  options.credit_window = 2;
  options.max_batch_items = 64;
  RunningServer running(&backend, options);

  Result<ScopedFd> dialed = ConnectTcp("127.0.0.1", running.port(), 10'000);
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  ScopedFd fd = std::move(dialed).value();
  FrameBuffer inbox;

  HelloFrame hello;
  hello.kind = StreamKind::kRaw;
  SendAllOrDie(fd.get(), WrapMessage(FrameType::kHello, EncodeHello(hello)));
  Message message;
  ASSERT_TRUE(ReadFrameBlocking(fd.get(), &inbox, &message).ok());
  ASSERT_EQ(message.type, FrameType::kWelcome);
  WelcomeFrame welcome;
  ASSERT_TRUE(DecodeWelcome(message.payload, &welcome).ok());
  ASSERT_EQ(welcome.initial_credits, 2u);

  // Spend the window, then violate it: a third batch with zero credits.
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    RawBatchFrame batch;
    batch.seq = seq;
    batch.items = {seq};
    SendAllOrDie(fd.get(),
                 WrapMessage(FrameType::kBatch, EncodeRawBatch(batch)));
  }

  // The saturated queue means both acks carry a zero grant...
  for (uint64_t seq = 1; seq <= 2; ++seq) {
    ASSERT_TRUE(ReadFrameBlocking(fd.get(), &inbox, &message).ok());
    ASSERT_EQ(message.type, FrameType::kAck);
    AckFrame ack;
    ASSERT_TRUE(DecodeAck(message.payload, &ack).ok());
    EXPECT_EQ(ack.seq, seq);
    EXPECT_EQ(ack.credits, 0u) << "grant while the engine queue is full";
  }
  // ...and the third batch is a protocol violation.
  ASSERT_TRUE(ReadFrameBlocking(fd.get(), &inbox, &message).ok());
  ASSERT_EQ(message.type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_EQ(error.code, StatusCode::kResourceExhausted);
  EXPECT_NE(error.message.find("flow control violated"), std::string::npos);

  fd.Reset();
  running.DrainAndJoin();
}

// ---- telemetry: the kStatsQuery frame pair ---------------------------------

TEST(Serve, StatsQueryReportsExactCountersAfterConcurrentPushes) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 2);
  RawEngineBackend backend(&engine);
  // Zero the process-wide registry so every asserted counter below is
  // exactly what this test's traffic produced.
  obs::Registry::Global().ResetForTest();
  ServerOptions options;
  options.max_batch_items = 64;
  RunningServer running(&backend, options);

  constexpr int kClients = 3;
  constexpr uint64_t kBatches = 5;
  constexpr uint64_t kPerBatch = 64;
  std::vector<Status> outcomes(kClients);
  std::vector<std::thread> pushers;
  for (int c = 0; c < kClients; ++c) {
    pushers.emplace_back([c, port = running.port(), &outcomes] {
      Result<PushClient> connected =
          PushClient::Connect(StreamKind::kRaw, Dial(port));
      if (!connected.ok()) {
        outcomes[c] = connected.status();
        return;
      }
      PushClient client = std::move(connected).value();
      Status status;
      for (uint64_t b = 0; b < kBatches && status.ok(); ++b) {
        std::vector<uint64_t> batch;
        for (uint64_t i = 0; i < kPerBatch; ++i) {
          batch.push_back(MixedElement((c * kBatches + b) * kPerBatch + i));
        }
        status = client.Push(batch);
        if (status.ok()) status = client.Flush();
      }
      if (status.ok()) status = client.Close();
      outcomes[c] = status;
    });
  }
  for (std::thread& t : pushers) t.join();
  for (int c = 0; c < kClients; ++c) {
    ASSERT_TRUE(outcomes[c].ok()) << "client " << c << ": "
                                  << outcomes[c].ToString();
  }

  // Every pusher's Close() saw its goodbye-ack, so all batches were
  // accepted before this fresh session asks for the totals.
  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();
  Result<StatsReportFrame> queried = client.QueryStats();
  ASSERT_TRUE(queried.ok()) << queried.status().ToString();
  const StatsReportFrame& report = queried.value();

  // The wire contract: strictly sorted, non-empty, every name legal.
  ASSERT_FALSE(report.entries.empty());
  for (size_t i = 1; i < report.entries.size(); ++i) {
    EXPECT_LT(report.entries[i - 1].name, report.entries[i].name);
  }

  constexpr uint64_t kTotalBatches = kClients * kBatches;
  EXPECT_EQ(report.Find("mcf0_serve_batches_total"), kTotalBatches);
  EXPECT_EQ(report.Find("mcf0_serve_items_total"), kTotalBatches * kPerBatch);
  EXPECT_EQ(report.Find("mcf0_serve_frames_in_total{type=\"batch\"}"),
            kTotalBatches);
  EXPECT_EQ(report.Find("mcf0_serve_frames_out_total{type=\"ack\"}"),
            kTotalBatches);
  // The stats session itself is the +1 on the session counters.
  EXPECT_EQ(report.Find("mcf0_serve_sessions_opened_total"),
            uint64_t{kClients} + 1);
  EXPECT_EQ(report.Find("mcf0_serve_sessions_active"), 1u);
  EXPECT_EQ(report.Find("mcf0_serve_sessions_errored_total"), 0u);
  EXPECT_EQ(report.Find("mcf0_serve_frames_in_total{type=\"hello\"}"),
            uint64_t{kClients} + 1);
  EXPECT_EQ(report.Find("mcf0_serve_frames_out_total{type=\"welcome\"}"),
            uint64_t{kClients} + 1);
  EXPECT_EQ(report.Find("mcf0_serve_frames_in_total{type=\"goodbye\"}"),
            uint64_t{kClients});
  EXPECT_EQ(report.Find("mcf0_serve_frames_in_total{type=\"stats_query\"}"),
            1u);
  // The report counts the frames that produced it, not itself: it was
  // snapshotted before the kStatsReport frame went out.
  EXPECT_EQ(report.Find("mcf0_serve_frames_out_total{type=\"stats_report\"}"),
            0u);
  // A clean run sends zero error frames of any code.
  for (const StatsEntry& entry : report.entries) {
    if (entry.name.rfind("mcf0_serve_error_frames_total", 0) == 0) {
      EXPECT_EQ(entry.value, 0u) << entry.name;
    }
  }
  // Byte counters move; the engine may still be absorbing, so its item
  // counter is only bounded, not pinned.
  EXPECT_GT(report.Find("mcf0_serve_bytes_in_total").value_or(0), 0u);
  EXPECT_GT(report.Find("mcf0_serve_bytes_out_total").value_or(0), 0u);
  EXPECT_LE(report.Find("mcf0_engine_items_absorbed_total").value_or(0),
            kTotalBatches * kPerBatch);

  ASSERT_TRUE(client.Close().ok());
  running.DrainAndJoin();

  // After the drain every batch is absorbed, and the server's own
  // summary agrees with the registry it exposes.
  EXPECT_EQ(running.server().batches_accepted(), kTotalBatches);
  EXPECT_EQ(running.server().items_accepted(), kTotalBatches * kPerBatch);
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("mcf0_serve_batches_total")
                ->Value(),
            kTotalBatches);
  EXPECT_EQ(obs::Registry::Global()
                .GetCounter("mcf0_engine_items_absorbed_total")
                ->Value(),
            kTotalBatches * kPerBatch);
}

TEST(Serve, StatsQueryMidStreamRacesLivePushes) {
  // A stats query on a session that is itself pushing: the snapshot is
  // taken while batches race through the engine, so only monotone
  // relations can be asserted — but the query must answer, and the
  // session must keep streaming afterwards.
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 2);
  RawEngineBackend backend(&engine);
  obs::Registry::Global().ResetForTest();
  ServerOptions options;
  options.max_batch_items = 128;
  RunningServer running(&backend, options);

  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();

  const std::vector<uint64_t> items = ClientSlice(0, 0, 1'000);
  ASSERT_TRUE(client.Push(items).ok());
  Result<StatsReportFrame> queried = client.QueryStats();
  ASSERT_TRUE(queried.ok()) << queried.status().ToString();
  const uint64_t mid_items =
      queried.value().Find("mcf0_serve_items_total").value_or(0);
  EXPECT_LE(mid_items, items.size());

  ASSERT_TRUE(client.Push(items).ok());
  ASSERT_TRUE(client.Close().ok());
  running.DrainAndJoin();
  EXPECT_EQ(running.server().items_accepted(), 2 * items.size());
}

// ---- failure modes ---------------------------------------------------------

TEST(Serve, StreamKindMismatchIsRejectedAtHello) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 1);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  RunningServer running(&backend, options);

  Result<PushClient> mismatched =
      PushClient::Connect(StreamKind::kStructured, Dial(running.port()));
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatched.status().message().find("stream kind mismatch"),
            std::string::npos);
  running.DrainAndJoin();
}

TEST(Serve, SilentServerSurfacesDeadlineExceeded) {
  // A listener that accepts into its backlog but never speaks: the
  // client's hello gets no welcome, and SO_RCVTIMEO turns the stalled
  // read into kDeadlineExceeded rather than a hang.
  Result<ScopedFd> listener = ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<int> port = BoundPort(listener.value().get());
  ASSERT_TRUE(port.ok());

  ClientOptions options = Dial(port.value());
  options.recv_timeout_ms = 200;
  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, options);
  ASSERT_FALSE(connected.ok());
  EXPECT_EQ(connected.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(Serve, StructuredServerRejectsV1OnlyClientAtHello) {
  // Structured sketches have no v1 encoding; a client that can only
  // accept format v1 must be turned away at negotiation with a status,
  // not crash the server later when a snapshot query reaches the codec.
  const StructuredF0Params params = StructuredParams();
  ShardedStructuredEngine engine(params, 1);
  StructuredEngineBackend backend(&engine);
  ServerOptions options;
  RunningServer running(&backend, options);

  ClientOptions v1_only = Dial(running.port());
  v1_only.max_sketch_format = 1;
  Result<PushClient> rejected =
      PushClient::Connect(StreamKind::kStructured, v1_only);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(rejected.status().message().find("too old"), std::string::npos);

  // The rejection is per-session: the server keeps serving v2 clients.
  Result<PushClient> ok =
      PushClient::Connect(StreamKind::kStructured, Dial(running.port()));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(ok.value().Close().ok());
  running.DrainAndJoin();
}

TEST(Serve, RawServerServesV1OnlyClient) {
  // Raw sketches do have a v1 encoding, so the same hello negotiates
  // down to v1 instead of being rejected — and snapshot queries answer
  // with v1 frames.
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 1);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  RunningServer running(&backend, options);

  ClientOptions v1_only = Dial(running.port());
  v1_only.max_sketch_format = 1;
  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, v1_only);
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();
  const uint64_t x = 7;
  ASSERT_TRUE(client.Push({&x, 1}).ok());
  Result<std::string> snapshot = client.QuerySketch();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  wire::FrameHeader header;
  ASSERT_TRUE(wire::ParseFrameHeader(snapshot.value(), &header).ok());
  EXPECT_EQ(header.version, SketchCodec::kFormatV1);
  ASSERT_TRUE(client.Close().ok());
  running.DrainAndJoin();
}

TEST(Serve, OutOfOrderBatchIsRejectedBeforeEngineMutation) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 1);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  options.max_batch_items = 64;
  RunningServer running(&backend, options);

  Result<ScopedFd> dialed = ConnectTcp("127.0.0.1", running.port(), 10'000);
  ASSERT_TRUE(dialed.ok()) << dialed.status().ToString();
  ScopedFd fd = std::move(dialed).value();
  FrameBuffer inbox;

  HelloFrame hello;
  hello.kind = StreamKind::kRaw;
  SendAllOrDie(fd.get(), WrapMessage(FrameType::kHello, EncodeHello(hello)));
  Message message;
  ASSERT_TRUE(ReadFrameBlocking(fd.get(), &inbox, &message).ok());
  ASSERT_EQ(message.type, FrameType::kWelcome);

  // The first batch must carry seq 1; seq 2 is a protocol violation.
  RawBatchFrame batch;
  batch.seq = 2;
  batch.items = {1, 2, 3};
  SendAllOrDie(fd.get(),
               WrapMessage(FrameType::kBatch, EncodeRawBatch(batch)));
  ASSERT_TRUE(ReadFrameBlocking(fd.get(), &inbox, &message).ok());
  ASSERT_EQ(message.type, FrameType::kError);
  ErrorFrame error;
  ASSERT_TRUE(DecodeError(message.payload, &error).ok());
  EXPECT_NE(error.message.find("batch seq out of order"), std::string::npos);

  fd.Reset();
  running.DrainAndJoin();

  // The violating batch's items never reached the engine: the final
  // sketch equals a pass over nothing, and the stats agree.
  F0Estimator untouched(params);
  EXPECT_EQ(running.server().final_sketch(), SketchCodec::Encode(untouched));
  EXPECT_EQ(running.server().batches_accepted(), 0u);
  EXPECT_EQ(running.server().items_accepted(), 0u);
}

TEST(Serve, ClosedClientRefusesFurtherUse) {
  const F0Params params = RawParams();
  ShardedF0Engine engine(params, 1);
  RawEngineBackend backend(&engine);
  ServerOptions options;
  RunningServer running(&backend, options);

  Result<PushClient> connected =
      PushClient::Connect(StreamKind::kRaw, Dial(running.port()));
  ASSERT_TRUE(connected.ok()) << connected.status().ToString();
  PushClient client = std::move(connected).value();
  const uint64_t x = 42;
  ASSERT_TRUE(client.Push({&x, 1}).ok());
  ASSERT_TRUE(client.Close().ok());
  // Close is idempotent; everything else is now a precondition failure.
  EXPECT_TRUE(client.Close().ok());
  EXPECT_EQ(client.Push({&x, 1}).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.QueryEstimate().status().code(),
            StatusCode::kFailedPrecondition);
  running.DrainAndJoin();
}

}  // namespace
}  // namespace net
}  // namespace mcf0
