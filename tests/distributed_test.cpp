// Tests for distributed DNF counting (§4): estimates against exact counts
// for all three protocols, partition invariance, and communication-ledger
// behavior (bits grow with k; Minimum's payload dominated by 3n-bit
// values; the k = 1 degenerate case).
#include "distributed/distributed_dnf.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

DistributedParams FastParams(uint64_t seed) {
  DistributedParams p;
  p.eps = 0.8;
  p.delta = 0.2;
  p.rows_override = 11;
  p.seed = seed;
  return p;
}

TEST(PartitionDnf, RoundRobinPreservesTerms) {
  Rng rng(3);
  const Dnf dnf = RandomDnf(10, 13, 2, 4, rng);
  const auto sites = PartitionDnf(dnf, 4);
  ASSERT_EQ(sites.size(), 4u);
  int total = 0;
  for (const Dnf& s : sites) total += s.num_terms();
  EXPECT_EQ(total, 13);
  EXPECT_EQ(sites[0].num_terms(), 4);  // terms 0, 4, 8, 12
  EXPECT_EQ(sites[3].num_terms(), 3);
}

struct DistCase {
  int k;
  uint64_t seed;
};

class DistributedSweep : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedSweep, AllThreeProtocolsWithinBand) {
  const DistCase param = GetParam();
  Rng rng(param.seed);
  const Dnf dnf = RandomDnf(14, 3 * param.k, 2, 6, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  const auto sites = PartitionDnf(dnf, param.k);
  const DistributedParams params = FastParams(param.seed ^ 0x77);

  const auto bucketing = DistributedBucketingDnf(sites, params);
  EXPECT_GE(bucketing.estimate, exact / 2.6);
  EXPECT_LE(bucketing.estimate, exact * 2.6);
  EXPECT_GT(bucketing.comm.total_bits(), 0u);

  const auto minimum = DistributedMinimumDnf(sites, params);
  EXPECT_GE(minimum.estimate, exact / 2.6);
  EXPECT_LE(minimum.estimate, exact * 2.6);
  EXPECT_GT(minimum.comm.total_bits(), 0u);

  const auto estimation = DistributedEstimationDnf(sites, params);
  // Estimation concentrates more slowly at this row count; wider band.
  EXPECT_GE(estimation.estimate, exact / 4.0);
  EXPECT_LE(estimation.estimate, exact * 4.0);
  EXPECT_GT(estimation.comm.total_bits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, DistributedSweep,
                         ::testing::Values(DistCase{1, 1}, DistCase{3, 2},
                                           DistCase{6, 3}),
                         [](const auto& info) {
                           std::string name = "k";
                           name += std::to_string(info.param.k);
                           return name;
                         });

TEST(Distributed, EstimateInvariantToPartitionArity) {
  // The same formula split across different site counts estimates the same
  // quantity (within band): the union is partition-independent.
  Rng rng(7);
  const Dnf dnf = RandomDnf(14, 12, 2, 5, rng);
  const double exact = static_cast<double>(ExactCountEnum(dnf));
  for (const int k : {1, 2, 4, 12}) {
    const auto got =
        DistributedMinimumDnf(PartitionDnf(dnf, k), FastParams(99));
    EXPECT_GE(got.estimate, exact / 2.6) << "k=" << k;
    EXPECT_LE(got.estimate, exact * 2.6) << "k=" << k;
  }
}

TEST(Distributed, CommunicationGrowsWithSites) {
  Rng rng(11);
  const Dnf dnf = RandomDnf(14, 24, 2, 5, rng);
  const DistributedParams params = FastParams(5);
  const auto small = DistributedMinimumDnf(PartitionDnf(dnf, 2), params);
  const auto large = DistributedMinimumDnf(PartitionDnf(dnf, 12), params);
  // Hash-shipping cost is k * t * Theta(n); payload also grows with k.
  EXPECT_GT(large.comm.bits_to_sites, small.comm.bits_to_sites);
  EXPECT_GT(large.comm.total_bits(), small.comm.total_bits());
}

TEST(Distributed, EmptySitesEstimateZero) {
  const std::vector<Dnf> sites(3, Dnf(10));
  const DistributedParams params = FastParams(13);
  EXPECT_EQ(DistributedBucketingDnf(sites, params).estimate, 0.0);
  EXPECT_EQ(DistributedMinimumDnf(sites, params).estimate, 0.0);
  EXPECT_EQ(DistributedEstimationDnf(sites, params).estimate, 0.0);
}

TEST(Distributed, MinimumPayloadBoundedByThreshPerSiteRow) {
  Rng rng(17);
  const Dnf dnf = RandomDnf(12, 8, 1, 4, rng);
  const int k = 4;
  const DistributedParams params = FastParams(19);
  const auto got = DistributedMinimumDnf(PartitionDnf(dnf, k), params);
  // Each of k sites sends at most thresh values of 3n bits per row.
  const uint64_t bound = static_cast<uint64_t>(k) * got.rows * got.thresh *
                         (3ull * 12);
  EXPECT_LE(got.comm.bits_from_sites, bound);
}

}  // namespace
}  // namespace mcf0
