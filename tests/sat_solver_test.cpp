// Tests for the CDCL(XOR) solver: SAT/UNSAT decisions and model validity
// are cross-checked against brute force over randomized sweeps of CNF,
// CNF+XOR, and pure-XOR instances; assumptions, incremental use, and the
// Tseitin encoding are exercised separately.
#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/formula.hpp"
#include "formula/random_gen.hpp"
#include "gf2/gauss.hpp"
#include "oracle/cnf_oracle.hpp"
#include "sat/tseitin.hpp"

namespace mcf0 {
namespace {

using sat::LBool;
using sat::Lit;
using sat::Solver;
using sat::Var;

/// Loads a CNF into a solver.
void Load(Solver* solver, const Cnf& cnf) {
  solver->EnsureVars(cnf.num_vars());
  for (const Clause& c : cnf.clauses()) {
    std::vector<Lit> lits;
    for (const auto& l : c.lits()) lits.emplace_back(l.var, l.neg);
    solver->AddClause(std::move(lits));
  }
}

/// Brute-force satisfiability of cnf plus optional XOR constraints.
bool BruteSat(const Cnf& cnf, const std::vector<XorConstraint>& xors = {}) {
  const int n = cnf.num_vars();
  BitVec x(n);
  for (uint64_t v = 0; v < (1ull << n); ++v) {
    bool ok = cnf.Eval(x);
    for (const auto& xc : xors) {
      if (!ok) break;
      ok = (xc.row.DotF2(x) == xc.rhs);
    }
    if (ok) return true;
    x.Increment();
  }
  return false;
}

TEST(Solver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddClause({Lit(a, false)});
  s.AddClause({Lit(a, true), Lit(b, true)});
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_FALSE(s.ModelValue(b));
}

TEST(Solver, TrivialUnsat) {
  Solver s;
  const Var a = s.NewVar();
  s.AddClause({Lit(a, false)});
  EXPECT_FALSE(s.AddClause({Lit(a, true)}));
  EXPECT_EQ(s.Solve(), LBool::kFalse);
}

TEST(Solver, EmptyClauseIsUnsat) {
  Solver s;
  s.NewVar();
  EXPECT_FALSE(s.AddClause({}));
  EXPECT_EQ(s.Solve(), LBool::kFalse);
}

TEST(Solver, TautologicalClauseIgnored) {
  Solver s;
  const Var a = s.NewVar();
  EXPECT_TRUE(s.AddClause({Lit(a, false), Lit(a, true)}));
  EXPECT_EQ(s.Solve(), LBool::kTrue);
}

TEST(Solver, NoClausesIsSat) {
  Solver s;
  s.EnsureVars(5);
  EXPECT_EQ(s.Solve(), LBool::kTrue);
}

struct SweepCase {
  int n;
  int clauses;
  int k;
  uint64_t seed;
};

class RandomCnfSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomCnfSweep, DecisionMatchesBruteForceAndModelsAreValid) {
  const SweepCase param = GetParam();
  Rng rng(param.seed);
  int sat_seen = 0;
  int unsat_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Cnf cnf = RandomKCnf(param.n, param.clauses, param.k, rng);
    Solver s;
    Load(&s, cnf);
    const LBool got = s.Solve();
    const bool expect = BruteSat(cnf);
    ASSERT_EQ(got == LBool::kTrue, expect) << "trial " << trial;
    if (expect) {
      ++sat_seen;
      EXPECT_TRUE(cnf.Eval(s.ModelBits(param.n)));
    } else {
      ++unsat_seen;
    }
  }
  // The densities below are chosen to see both outcomes.
  EXPECT_GT(sat_seen + unsat_seen, 0);

  SUCCEED() << "sat=" << sat_seen << " unsat=" << unsat_seen;
}

INSTANTIATE_TEST_SUITE_P(
    Densities, RandomCnfSweep,
    ::testing::Values(SweepCase{8, 20, 3, 1}, SweepCase{10, 44, 3, 2},
                      SweepCase{12, 52, 3, 3}, SweepCase{9, 40, 2, 4},
                      SweepCase{14, 30, 3, 5}, SweepCase{10, 25, 4, 6}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      std::string name = "n";
      name += std::to_string(info.param.n);
      name += 'm';
      name += std::to_string(info.param.clauses);
      name += 'k';
      name += std::to_string(info.param.k);
      return name;
    });

TEST(SolverXor, SingleXorForcesParity) {
  Solver s;
  s.EnsureVars(3);
  s.AddXorClause({0, 1, 2}, true);
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  const BitVec m = s.ModelBits(3);
  EXPECT_EQ(m.Popcount() % 2, 1);
}

TEST(SolverXor, ContradictoryXorsAreUnsat) {
  Solver s;
  s.EnsureVars(2);
  s.AddXorClause({0, 1}, true);
  s.AddXorClause({0, 1}, false);
  EXPECT_EQ(s.Solve(), LBool::kFalse);
}

TEST(SolverXor, DuplicateVarsCancel) {
  Solver s;
  s.EnsureVars(2);
  // x0 ^ x0 ^ x1 = 1 reduces to x1 = 1.
  s.AddXorClause({0, 0, 1}, true);
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  EXPECT_TRUE(s.ModelValue(1));
}

TEST(SolverXor, EmptyXorRhsTrueIsUnsat) {
  Solver s;
  s.EnsureVars(1);
  EXPECT_FALSE(s.AddXorClause({0, 0}, true));
  EXPECT_EQ(s.Solve(), LBool::kFalse);
}

TEST(SolverXor, XorSystemMatchesGaussianElimination) {
  // Random linear systems: solver agrees with linear algebra on
  // satisfiability, and models satisfy every equation.
  Rng rng(31);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 3 + static_cast<int>(rng.NextBelow(12));
    const int rows = 1 + static_cast<int>(rng.NextBelow(n + 3));
    const Gf2Matrix a = Gf2Matrix::Random(rows, n, rng);
    const BitVec b = BitVec::Random(rows, rng);
    Solver s;
    s.EnsureVars(n);
    for (int i = 0; i < rows; ++i) {
      std::vector<Var> vars;
      for (int j = 0; j < n; ++j) {
        if (a.Get(i, j)) vars.push_back(j);
      }
      s.AddXorClause(std::move(vars), b.Get(i));
    }
    const bool expect = SolveLinearSystem(a, b).has_value();
    ASSERT_EQ(s.Solve() == LBool::kTrue, expect);
    if (expect) {
      const BitVec m = s.ModelBits(n);
      EXPECT_EQ(a.Mul(m), b);
    }
  }
}

TEST(SolverXor, CnfPlusXorMatchesBruteForce) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 6 + static_cast<int>(rng.NextBelow(6));
    const Cnf cnf = RandomKCnf(n, 2 * n, 3, rng);
    const int xors = 1 + static_cast<int>(rng.NextBelow(4));
    std::vector<XorConstraint> constraints;
    for (int i = 0; i < xors; ++i) {
      constraints.push_back(
          XorConstraint{BitVec::Random(n, rng), rng.NextBool()});
    }
    Solver s;
    Load(&s, cnf);
    for (const auto& xc : constraints) {
      std::vector<Var> vars;
      for (int j = 0; j < n; ++j) {
        if (xc.row.Get(j)) vars.push_back(j);
      }
      s.AddXorClause(std::move(vars), xc.rhs);
    }
    const bool expect = BruteSat(cnf, constraints);
    ASSERT_EQ(s.Solve() == LBool::kTrue, expect);
    if (expect) {
      const BitVec m = s.ModelBits(n);
      EXPECT_TRUE(cnf.Eval(m));
      for (const auto& xc : constraints) EXPECT_EQ(xc.row.DotF2(m), xc.rhs);
    }
  }
}

TEST(SolverXor, LongXorChainsPropagate) {
  // A chain x0^x1=1, x1^x2=1, ... forces alternating values from x0.
  Solver s;
  const int n = 40;
  s.EnsureVars(n);
  for (int i = 0; i + 1 < n; ++i) s.AddXorClause({i, i + 1}, true);
  s.AddClause({Lit(0, true)});  // x0 = 0
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  for (int i = 0; i < n; ++i) EXPECT_EQ(s.ModelValue(i), i % 2 == 1);
  EXPECT_GT(s.stats().xor_propagations, 0u);
}

TEST(Tseitin, EncodingPreservesSatisfiability) {
  Rng rng(41);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextBelow(8));
    const BitVec row = BitVec::Random(n, rng);
    const bool rhs = rng.NextBool();
    const Cnf cnf = RandomKCnf(n, n, 3, rng);
    // Native XOR solver.
    Solver native;
    Load(&native, cnf);
    std::vector<Var> vars;
    for (int j = 0; j < n; ++j) {
      if (row.Get(j)) vars.push_back(j);
    }
    native.AddXorClause(vars, rhs);
    // Tseitin-encoded solver.
    Solver encoded;
    Load(&encoded, cnf);
    sat::AddXorAsCnf(&encoded, vars, rhs);
    ASSERT_EQ(native.Solve() == LBool::kTrue, encoded.Solve() == LBool::kTrue);
  }
}

TEST(Tseitin, ModelProjectionSatisfiesXor) {
  Rng rng(43);
  const int n = 12;
  const BitVec row = BitVec::Random(n, rng);
  Solver s;
  s.EnsureVars(n);
  std::vector<Var> vars;
  for (int j = 0; j < n; ++j) {
    if (row.Get(j)) vars.push_back(j);
  }
  ASSERT_GE(vars.size(), 2u);
  sat::AddXorAsCnf(&s, vars, true);
  ASSERT_EQ(s.Solve(), LBool::kTrue);
  bool parity = false;
  for (const Var v : vars) parity ^= s.ModelValue(v);
  EXPECT_TRUE(parity);
}

TEST(Solver, AssumptionsRestrictAndRelease) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddClause({Lit(a, false), Lit(b, false)});  // a or b
  // Assume not a, not b: unsat under assumptions.
  EXPECT_EQ(s.Solve({Lit(a, true), Lit(b, true)}), LBool::kFalse);
  // Solver remains usable without assumptions.
  EXPECT_EQ(s.Solve(), LBool::kTrue);
  // Assume not a: forces b.
  ASSERT_EQ(s.Solve({Lit(a, true)}), LBool::kTrue);
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(Solver, AssumptionsMatchBruteForceSweep) {
  Rng rng(47);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 8;
    const Cnf cnf = RandomKCnf(n, 20, 3, rng);
    const int fixed = 1 + static_cast<int>(rng.NextBelow(3));
    std::vector<Lit> assumptions;
    Cnf restricted = cnf;
    for (int i = 0; i < fixed; ++i) {
      const int v = static_cast<int>(rng.NextBelow(n));
      const bool neg = rng.NextBool();
      assumptions.emplace_back(v, neg);
      restricted.AddClause(Clause({mcf0::Lit(v, neg)}));
    }
    Solver s;
    Load(&s, cnf);
    EXPECT_EQ(s.Solve(assumptions) == LBool::kTrue, BruteSat(restricted));
  }
}

TEST(Solver, IncrementalBlockingClausesEnumerateAllModels) {
  Rng rng(53);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 7;
    const Cnf cnf = RandomKCnf(n, 12, 3, rng);
    const uint64_t exact = ExactCountEnum(cnf);
    Solver s;
    Load(&s, cnf);
    uint64_t found = 0;
    while (s.Solve() == LBool::kTrue) {
      const BitVec m = s.ModelBits(n);
      EXPECT_TRUE(cnf.Eval(m));
      ++found;
      ASSERT_LE(found, exact) << "duplicate model enumerated";
      std::vector<Lit> block;
      for (int j = 0; j < n; ++j) block.emplace_back(j, m.Get(j));
      if (!s.AddClause(std::move(block))) break;
    }
    EXPECT_EQ(found, exact);
  }
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // A hard-ish random instance with a tiny budget must return kUndef.
  Rng rng(59);
  const Cnf cnf = RandomKCnf(40, 170, 3, rng);
  Solver s;
  Load(&s, cnf);
  s.SetConflictBudget(1);
  const LBool r = s.Solve();
  // Either it solved within one conflict or it gave up; both acceptable,
  // but the call must terminate and leave the solver reusable.
  if (r == LBool::kUndef) {
    s.SetConflictBudget(-1);
    EXPECT_NE(s.Solve(), LBool::kUndef);
  }
}

TEST(Solver, StatsAccumulate) {
  Rng rng(61);
  const Cnf cnf = RandomKCnf(20, 85, 3, rng);
  Solver s;
  Load(&s, cnf);
  s.Solve();
  EXPECT_GT(s.stats().decisions + s.stats().propagations, 0u);
}

TEST(Solver, PigeonholePrincipleUnsat) {
  // PHP(4,3): 4 pigeons, 3 holes — classic UNSAT requiring real search.
  const int pigeons = 4;
  const int holes = 3;
  Solver s;
  s.EnsureVars(pigeons * holes);
  auto var = [&](int p, int h) { return p * holes + h; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.emplace_back(var(p, h), false);
    s.AddClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.AddClause({Lit(var(p1, h), true), Lit(var(p2, h), true)});
      }
    }
  }
  EXPECT_EQ(s.Solve(), LBool::kFalse);
}

}  // namespace
}  // namespace mcf0
