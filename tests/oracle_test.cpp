// Tests for the oracle subroutines (Propositions 1-4): BoundedSAT, FindMin,
// FindMaxRange, AffineFindMin. Each is cross-checked against brute force,
// and the CNF (NP-oracle) and DNF (affine) paths are checked against each
// other on equivalent formulas.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"
#include "oracle/bounded_sat.hpp"
#include "oracle/cnf_oracle.hpp"
#include "oracle/find_max_range.hpp"
#include "oracle/find_min.hpp"

namespace mcf0 {
namespace {

/// CNF with the same solutions as the DNF via a fresh-variable-free
/// encoding is hard in general; instead tests build CNFs whose solution set
/// is *computed* by brute force and compared against the DNF path given the
/// identical hash.
std::vector<BitVec> BruteSolutions(const Dnf& dnf) {
  std::vector<BitVec> out;
  const int n = dnf.num_vars();
  BitVec x(n);
  for (uint64_t v = 0; v < (1ull << n); ++v) {
    if (dnf.Eval(x)) out.push_back(x);
    x.Increment();
  }
  return out;
}

std::vector<BitVec> BruteSolutions(const Cnf& cnf) {
  std::vector<BitVec> out;
  const int n = cnf.num_vars();
  BitVec x(n);
  for (uint64_t v = 0; v < (1ull << n); ++v) {
    if (cnf.Eval(x)) out.push_back(x);
    x.Increment();
  }
  return out;
}

TEST(CnfOracle, SolveRespectsXorConstraints) {
  Rng rng(3);
  const Cnf cnf = RandomKCnf(10, 15, 3, rng);
  CnfOracle oracle(cnf);
  const AffineHash h = AffineHash::SampleToeplitz(10, 10, rng);
  for (int m = 0; m <= 4; ++m) {
    const auto model = oracle.Solve(HashPrefixConstraints(h, m));
    if (model.has_value()) {
      EXPECT_TRUE(cnf.Eval(*model));
      EXPECT_TRUE(h.EvalPrefix(*model, m).IsZero());
    }
  }
  EXPECT_EQ(oracle.num_calls(), 5u);
}

TEST(CnfOracle, EnumerateFindsAllCellSolutions) {
  Rng rng(5);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 8;
    const Cnf cnf = RandomKCnf(n, 12, 3, rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
    const int m = static_cast<int>(rng.NextBelow(4));
    CnfOracle oracle(cnf);
    const auto got = oracle.Enumerate(HashPrefixConstraints(h, m), 1u << n);
    std::set<BitVec> expect;
    for (const BitVec& x : BruteSolutions(cnf)) {
      if (h.EvalPrefix(x, m).IsZero()) expect.insert(x);
    }
    EXPECT_EQ(std::set<BitVec>(got.begin(), got.end()), expect);
    EXPECT_EQ(got.size(), expect.size());  // no duplicates
  }
}

TEST(CnfOracle, TseitinPathAgrees) {
  Rng rng(7);
  const Cnf cnf = RandomKCnf(9, 14, 3, rng);
  const AffineHash h = AffineHash::SampleXor(9, 9, rng);
  CnfOracle native(cnf);
  CnfOracle tseitin(cnf);
  tseitin.SetUseTseitin(true);
  for (int m = 0; m <= 5; ++m) {
    const auto a = native.Enumerate(HashPrefixConstraints(h, m), 600);
    const auto b = tseitin.Enumerate(HashPrefixConstraints(h, m), 600);
    EXPECT_EQ(std::set<BitVec>(a.begin(), a.end()),
              std::set<BitVec>(b.begin(), b.end()));
  }
}

struct OracleCase {
  int n;
  int terms;
  uint64_t seed;
};

class BoundedSatSweep : public ::testing::TestWithParam<OracleCase> {};

TEST_P(BoundedSatSweep, DnfCellCountsMatchBruteForce) {
  const OracleCase param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 10; ++trial) {
    const Dnf dnf = RandomDnf(param.n, param.terms, 1, param.n / 2 + 1, rng);
    const AffineHash h = AffineHash::SampleToeplitz(param.n, param.n, rng);
    const auto solutions = BruteSolutions(dnf);
    for (const int m : {0, 1, 2, param.n / 2, param.n}) {
      uint64_t expect = 0;
      for (const BitVec& x : solutions) {
        if (h.EvalPrefix(x, m).IsZero()) ++expect;
      }
      // Unbounded: full cell enumerated, in lexicographic order, no dups.
      const BoundedSatResult full =
          BoundedSatDnf(dnf, h, m, 1ull << param.n);
      EXPECT_EQ(full.count(), expect);
      EXPECT_TRUE(std::is_sorted(full.solutions.begin(), full.solutions.end()));
      for (const BitVec& x : full.solutions) {
        EXPECT_TRUE(dnf.Eval(x));
        EXPECT_TRUE(h.EvalPrefix(x, m).IsZero());
      }
      // Bounded: saturates at the threshold.
      const uint64_t p = 3;
      const BoundedSatResult capped = BoundedSatDnf(dnf, h, m, p);
      EXPECT_EQ(capped.count(), std::min(expect, p));
      EXPECT_EQ(capped.saturated, expect >= p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BoundedSatSweep,
                         ::testing::Values(OracleCase{6, 2, 11},
                                           OracleCase{8, 4, 13},
                                           OracleCase{10, 6, 17},
                                           OracleCase{12, 3, 19}),
                         [](const auto& info) {
                           std::string name = "n";
                           name += std::to_string(info.param.n);
                           name += 'k';
                           name += std::to_string(info.param.terms);
                           return name;
                         });

TEST(BoundedSat, CnfMatchesBruteForce) {
  Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 8;
    const Cnf cnf = RandomKCnf(n, 10, 3, rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
    CnfOracle oracle(cnf);
    const auto solutions = BruteSolutions(cnf);
    for (const int m : {0, 2, 4}) {
      uint64_t expect = 0;
      for (const BitVec& x : solutions) {
        if (h.EvalPrefix(x, m).IsZero()) ++expect;
      }
      const BoundedSatResult got = BoundedSatCnf(oracle, h, m, 1u << n);
      EXPECT_EQ(got.count(), expect);
    }
  }
}

TEST(TermCellSolutions, MatchesDirectFilter) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 9;
    const Term term =
        RandomTerm(n, 1 + static_cast<int>(rng.NextBelow(5)), rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, n, rng);
    const int m = static_cast<int>(rng.NextBelow(5));
    std::set<BitVec> expect;
    BitVec x(n);
    for (uint64_t v = 0; v < (1ull << n); ++v) {
      if (term.Eval(x) && h.EvalPrefix(x, m).IsZero()) expect.insert(x);
      x.Increment();
    }
    const auto image = TermCellSolutions(term, n, h, m);
    if (expect.empty()) {
      EXPECT_FALSE(image.has_value());
      continue;
    }
    ASSERT_TRUE(image.has_value());
    const auto got = image->FirstP(expect.size() + 3);
    EXPECT_EQ(std::set<BitVec>(got.begin(), got.end()), expect);
  }
}

TEST(FindMin, DnfMatchesBruteForceHashImage) {
  Rng rng(31);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 8;
    const Dnf dnf = RandomDnf(n, 4, 1, 4, rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, 3 * n, rng);
    std::set<BitVec> image;
    for (const BitVec& x : BruteSolutions(dnf)) image.insert(h.Eval(x));
    for (const uint64_t p : {3ull, 10ull, 1000ull}) {
      const auto got = FindMinDnf(dnf, h, p);
      ASSERT_EQ(got.size(), std::min<uint64_t>(p, image.size()));
      auto it = image.begin();
      for (size_t i = 0; i < got.size(); ++i, ++it) EXPECT_EQ(got[i], *it);
    }
  }
}

TEST(FindMin, CnfAgreesWithDnfOnEquivalentFormula) {
  // A DNF and a CNF with the same solution set (via brute-force-verified
  // negation bridge) must produce identical FindMin output for the same
  // hash: the two Proposition 2 implementations check each other.
  Rng rng(37);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 7;
    const Dnf dnf = RandomDnf(n, 3, 2, 4, rng);
    const Cnf cnf = NegateDnf(NegateCnf(NegateDnf(dnf)));  // same solutions
    ASSERT_EQ(ExactCountEnum(cnf) + 0ull,
              (1ull << n) - ExactCountEnum(dnf));
    // NegateDnf(dnf) has the complement solutions; its negation back as
    // CNF-of-complement is awkward — instead compare against the
    // *complement* DNF driven through the CNF path.
    CnfOracle oracle(cnf);
    const AffineHash h = AffineHash::SampleToeplitz(n, 3 * n, rng);
    const uint64_t p = 12;
    const auto via_cnf = FindMinCnf(oracle, h, p);
    // Brute expectations for the CNF's own solution set.
    std::set<BitVec> image;
    for (const BitVec& x : BruteSolutions(cnf)) image.insert(h.Eval(x));
    ASSERT_EQ(via_cnf.size(), std::min<uint64_t>(p, image.size()));
    auto it = image.begin();
    for (size_t i = 0; i < via_cnf.size(); ++i, ++it) {
      EXPECT_EQ(via_cnf[i], *it);
    }
    EXPECT_GT(oracle.num_calls(), 0u);
  }
}

TEST(FindMin, AffineMatchesBruteForce) {
  Rng rng(41);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = 8;
    const Gf2Matrix a = Gf2Matrix::Random(3, n, rng);
    const BitVec b = BitVec::Random(3, rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, 3 * n, rng);
    std::set<BitVec> image;
    BitVec x(n);
    for (uint64_t v = 0; v < (1ull << n); ++v) {
      if ((a.Mul(x) ^ b).IsZero()) image.insert(h.Eval(x));
      x.Increment();
    }
    const auto got = AffineFindMin(a, b, h, 10);
    ASSERT_EQ(got.size(), std::min<size_t>(10, image.size()));
    auto it = image.begin();
    for (size_t i = 0; i < got.size(); ++i, ++it) EXPECT_EQ(got[i], *it);
  }
}

TEST(FindMaxRange, DnfMatchesBruteForce) {
  Rng rng(43);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 9;
    const Dnf dnf = RandomDnf(n, 3, 1, 5, rng);
    const AffineHash h = AffineHash::SampleXor(n, n, rng);
    int expect = -1;
    for (const BitVec& x : BruteSolutions(dnf)) {
      expect = std::max(expect, h.Eval(x).TrailingZeros());
    }
    EXPECT_EQ(FindMaxRangeDnf(dnf, h), expect);
  }
}

TEST(FindMaxRange, CnfMatchesBruteForce) {
  Rng rng(47);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = 8;
    const Cnf cnf = RandomKCnf(n, 12, 3, rng);
    const AffineHash h = AffineHash::SampleXor(n, n, rng);
    int expect = -1;
    for (const BitVec& x : BruteSolutions(cnf)) {
      expect = std::max(expect, h.Eval(x).TrailingZeros());
    }
    CnfOracle oracle(cnf);
    EXPECT_EQ(FindMaxRangeCnf(oracle, h), expect);
    if (expect >= 0) {
      // Binary search: O(log m) + initial call.
      EXPECT_LE(oracle.num_calls(), 2u + static_cast<uint64_t>(
                                             std::ceil(std::log2(n + 1))));
    }
  }
}

TEST(FindMaxRange, UnsatReturnsMinusOne) {
  Cnf cnf(4);
  cnf.AddClause(Clause({Lit(0, false)}));
  cnf.AddClause(Clause({Lit(0, true)}));
  CnfOracle oracle(cnf);
  Rng rng(53);
  const AffineHash h = AffineHash::SampleXor(4, 4, rng);
  EXPECT_EQ(FindMaxRangeCnf(oracle, h), -1);
  EXPECT_EQ(FindMaxRangeDnf(Dnf(4), h), -1);
}

TEST(TermImageUnderHash, MatchesDirectImages) {
  Rng rng(59);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 8;
    const Term term =
        RandomTerm(n, 1 + static_cast<int>(rng.NextBelow(6)), rng);
    const AffineHash h = AffineHash::SampleToeplitz(n, 12, rng);
    std::set<BitVec> expect;
    BitVec x(n);
    for (uint64_t v = 0; v < (1ull << n); ++v) {
      if (term.Eval(x)) expect.insert(h.Eval(x));
      x.Increment();
    }
    const AffineImage image = TermImageUnderHash(term, n, h);
    EXPECT_EQ(image.CountU64(), expect.size());
    for (const BitVec& y : expect) EXPECT_TRUE(image.Contains(y));
  }
}

}  // namespace
}  // namespace mcf0
