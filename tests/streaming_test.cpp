// Tests for the classic F0 sketches (Algorithms 1-4): estimates against
// exact distinct counts over deterministic seeded streams, duplicate
// insensitivity, merge paths, and space accounting.
#include "streaming/f0_sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/rng.hpp"

namespace mcf0 {
namespace {

/// A stream of `length` draws from a universe of `support` values (so the
/// exact F0 is the number of distinct draws), returned with its exact F0.
std::pair<std::vector<uint64_t>, uint64_t> MakeStream(uint64_t length,
                                                      uint64_t support,
                                                      Rng& rng) {
  std::vector<uint64_t> stream;
  stream.reserve(length);
  std::unordered_set<uint64_t> distinct;
  for (uint64_t i = 0; i < length; ++i) {
    const uint64_t x = rng.NextBelow(support);
    stream.push_back(x);
    distinct.insert(x);
  }
  return {std::move(stream), distinct.size()};
}

struct AccuracyCase {
  F0Algorithm alg;
  uint64_t support;
  uint64_t length;
};

class SketchAccuracy : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(SketchAccuracy, WithinToleranceOnSeededStreams) {
  const AccuracyCase param = GetParam();
  Rng data_rng(1234);
  const auto [stream, exact] =
      MakeStream(param.length, param.support, data_rng);
  F0Params params;
  params.n = 32;
  params.eps = 0.5;
  params.delta = 0.2;
  params.algorithm = param.alg;
  params.rows_override = 21;  // keep tests fast; the median still amplifies
  params.seed = 99;
  if (param.alg == F0Algorithm::kEstimation) {
    // The Estimation sketch costs rows x cells field multiplications per
    // item; trim the constants (still well inside the accuracy band).
    params.thresh_override = 128;
    params.s_override = 5;
  }
  F0Estimator est(params);
  for (const uint64_t x : stream) est.Add(x);
  const double got = est.Estimate();
  // (eps, delta) guarantee with delta amplified by the median: allow the
  // full eps band plus slack so a correct implementation never flakes.
  EXPECT_GE(got, static_cast<double>(exact) / (1.0 + 2 * params.eps));
  EXPECT_LE(got, static_cast<double>(exact) * (1.0 + 2 * params.eps));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SketchAccuracy,
    ::testing::Values(
        AccuracyCase{F0Algorithm::kBucketing, 1 << 14, 40000},
        AccuracyCase{F0Algorithm::kBucketing, 100, 5000},
        AccuracyCase{F0Algorithm::kMinimum, 1 << 14, 40000},
        AccuracyCase{F0Algorithm::kMinimum, 100, 5000},
        AccuracyCase{F0Algorithm::kEstimation, 1 << 14, 40000},
        AccuracyCase{F0Algorithm::kEstimation, 100, 5000}),
    [](const auto& info) {
      std::string name;
      switch (info.param.alg) {
        case F0Algorithm::kBucketing: name = "Bucketing"; break;
        case F0Algorithm::kMinimum: name = "Minimum"; break;
        case F0Algorithm::kEstimation: name = "Estimation"; break;
      }
      name += "s";
      name += std::to_string(info.param.support);
      return name;
    });

TEST(F0Estimator, EmptyStreamEstimatesZero) {
  for (const auto alg : {F0Algorithm::kBucketing, F0Algorithm::kMinimum,
                         F0Algorithm::kEstimation}) {
    F0Params params;
    params.n = 16;
    params.algorithm = alg;
    params.rows_override = 5;
    F0Estimator est(params);
    EXPECT_EQ(est.Estimate(), 0.0);
  }
}

TEST(F0Estimator, DuplicatesDoNotChangeEstimate) {
  F0Params params;
  params.n = 24;
  params.algorithm = F0Algorithm::kMinimum;
  params.rows_override = 9;
  params.seed = 7;
  F0Estimator a(params);
  F0Estimator b(params);
  Rng rng(5);
  std::vector<uint64_t> values;
  for (int i = 0; i < 500; ++i) values.push_back(rng.NextBelow(1u << 24));
  for (const uint64_t v : values) a.Add(v);
  for (int rep = 0; rep < 3; ++rep) {
    for (const uint64_t v : values) b.Add(v);
  }
  EXPECT_EQ(a.Estimate(), b.Estimate());
}

TEST(F0Estimator, SmallDistinctCountsAreNearExact) {
  // With F0 << Thresh the Minimum and Bucketing sketches are exact
  // (barring 3n-bit hash collisions).
  for (const auto alg : {F0Algorithm::kBucketing, F0Algorithm::kMinimum}) {
    F0Params params;
    params.n = 32;
    params.eps = 0.5;
    params.algorithm = alg;
    params.rows_override = 7;
    F0Estimator est(params);
    for (uint64_t x = 0; x < 50; ++x) est.Add(x * 977);
    EXPECT_DOUBLE_EQ(est.Estimate(), 50.0);
  }
}

TEST(BucketingSketchRow, LevelGrowsWithStream) {
  Rng rng(11);
  BucketingSketchRow row(32, 16, rng);
  for (uint64_t x = 0; x < 5000; ++x) row.Add(x);
  EXPECT_GT(row.level(), 0);
  EXPECT_LE(row.bucket_size(), 16u);
  // Estimate within a loose band of 5000.
  EXPECT_GT(row.Estimate(), 500.0);
  EXPECT_LT(row.Estimate(), 50000.0);
}

TEST(MinimumSketchRow, KeepsExactlyThreshSmallest) {
  Rng rng(13);
  MinimumSketchRow row(16, 20, rng);
  std::vector<BitVec> hashes;
  for (uint64_t x = 0; x < 300; ++x) {
    row.Add(x);
    hashes.push_back(row.hash().Eval(BitVec::FromU64(x, 16)));
  }
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  ASSERT_EQ(row.values().size(), 20u);
  auto it = row.values().begin();
  for (int i = 0; i < 20; ++i, ++it) EXPECT_EQ(*it, hashes[i]);
}

TEST(MinimumSketchRow, SubThresholdIsExactCount) {
  Rng rng(17);
  MinimumSketchRow row(20, 100, rng);
  for (uint64_t x = 0; x < 37; ++x) row.Add(x);
  EXPECT_DOUBLE_EQ(row.Estimate(), 37.0);
}

TEST(EstimationSketchRow, CellsAreMonotoneMaxima) {
  const Gf2Field field(16);
  Rng rng(19);
  EstimationSketchRow row(&field, 8, 4, rng);
  for (uint64_t x = 1; x < 200; ++x) row.Add(x);
  auto cells_before = row.cells();
  for (uint64_t x = 1; x < 200; ++x) row.Add(x);  // replay: no change
  EXPECT_EQ(row.cells(), cells_before);
  row.Merge(0, 15);
  EXPECT_EQ(row.cells()[0], 15);
  row.Merge(0, 3);  // merge never lowers
  EXPECT_EQ(row.cells()[0], 15);
}

TEST(EstimationSketchRow, EstimateFormulaEdges) {
  EstimationSketchRow row(6);
  // No cell reaches r: estimate 0.
  EXPECT_EQ(row.EstimateWithR(3), 0.0);
  // Every cell reaches r: estimate +inf (r far too small).
  for (int j = 0; j < 6; ++j) row.Merge(j, 10);
  EXPECT_TRUE(std::isinf(row.EstimateWithR(3)));
}

TEST(FlajoletMartinRow, RoughEstimateWithinConstantFactorUsually) {
  // Median of many FM rows is within a 5x band w.h.p. (AMS); use a wide
  // 16x band so a correct implementation cannot flake.
  Rng rng(23);
  std::vector<double> estimates;
  for (int i = 0; i < 31; ++i) {
    FlajoletMartinRow row(32, rng);
    for (uint64_t x = 0; x < 4096; ++x) row.Add(x * 2654435761u);
    estimates.push_back(row.Estimate());
  }
  const double med = Median(std::move(estimates));
  EXPECT_GE(med, 4096.0 / 16.0);
  EXPECT_LE(med, 4096.0 * 16.0);
}

TEST(F0Estimator, SpaceBitsIsPositiveAndScalesWithRows) {
  F0Params params;
  params.n = 32;
  params.algorithm = F0Algorithm::kMinimum;
  params.rows_override = 4;
  F0Estimator small(params);
  params.rows_override = 16;
  F0Estimator large(params);
  for (uint64_t x = 0; x < 1000; ++x) {
    small.Add(x);
    large.Add(x);
  }
  EXPECT_GT(small.SpaceBits(), 0u);
  EXPECT_GT(large.SpaceBits(), 2 * small.SpaceBits());
}

TEST(F0Params, PaperFormulas) {
  F0Params params;
  params.eps = 0.8;
  params.delta = 0.2;
  EXPECT_EQ(F0Thresh(params), 150u);  // ceil(96 / 0.64)
  EXPECT_EQ(F0Rows(params), 82);      // ceil(35 log2 5)
  params.thresh_override = 10;
  params.rows_override = 3;
  EXPECT_EQ(F0Thresh(params), 10u);
  EXPECT_EQ(F0Rows(params), 3);
}

}  // namespace
}  // namespace mcf0
