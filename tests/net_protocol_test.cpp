// Tests for the serve protocol codec (src/net/protocol.hpp): per-frame
// round trips, the StructuredItem wire codec with its server-side
// validation, Status <-> error-frame mapping, the incremental
// FrameBuffer, and the robustness sweeps the sketch codecs also get —
// truncation at every prefix and a byte-flip fuzz over whole frames.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "engine/wire.hpp"
#include "net/protocol.hpp"

namespace mcf0 {
namespace net {
namespace {

F0Params SmallRawParams() {
  F0Params params;
  params.n = 24;
  params.eps = 0.9;
  params.delta = 0.3;
  params.seed = 42;
  return params;
}

StructuredF0Params SmallStructuredParams() {
  StructuredF0Params params;
  params.n = 8;
  params.eps = 0.9;
  params.delta = 0.3;
  params.seed = 7;
  return params;
}

std::vector<StructuredItem> SampleStructuredItems() {
  std::vector<StructuredItem> items;
  // A two-term DNF group.
  std::vector<Term> terms;
  terms.push_back(*Term::Make({Lit(0, false), Lit(3, true)}));
  terms.push_back(*Term::Make({Lit(5, false)}));
  items.emplace_back(std::move(terms));
  // A 2x4-bit range with a stepped dimension.
  MultiDimRange range(2, 4);
  range.SetDim(0, DimRange{1, 9, 0});
  range.SetDim(1, DimRange{0, 14, 1});
  items.emplace_back(std::move(range));
  // An affine space of rank 3 over n=8.
  Gf2Matrix a(3, 8);
  a.Set(0, 0, true);
  a.Set(1, 4, true);
  a.Set(2, 7, true);
  BitVec b(3);
  b.Set(1, true);
  items.emplace_back(AffineSpaceItem{std::move(a), std::move(b)});
  // A singleton element.
  BitVec x(8);
  x.Set(0, true);
  x.Set(6, true);
  items.emplace_back(std::move(x));
  return items;
}

// ---- frame round trips ----------------------------------------------------

TEST(NetProtocol, HelloRoundTrip) {
  HelloFrame hello;
  hello.kind = StreamKind::kStructured;
  hello.max_sketch_format = 2;
  HelloFrame out;
  ASSERT_TRUE(DecodeHello(EncodeHello(hello), &out).ok());
  EXPECT_EQ(out.kind, StreamKind::kStructured);
  EXPECT_EQ(out.max_sketch_format, 2);
}

TEST(NetProtocol, WelcomeRoundTripRaw) {
  WelcomeFrame welcome;
  welcome.kind = StreamKind::kRaw;
  welcome.params = SmallRawParams();
  welcome.initial_credits = 8;
  welcome.max_batch_items = 4096;
  WelcomeFrame out;
  ASSERT_TRUE(DecodeWelcome(EncodeWelcome(welcome), &out).ok());
  EXPECT_EQ(out.kind, StreamKind::kRaw);
  EXPECT_EQ(std::get<F0Params>(out.params), SmallRawParams());
  EXPECT_EQ(out.initial_credits, 8u);
  EXPECT_EQ(out.max_batch_items, 4096u);
}

TEST(NetProtocol, WelcomeRoundTripStructured) {
  WelcomeFrame welcome;
  welcome.kind = StreamKind::kStructured;
  welcome.params = SmallStructuredParams();
  welcome.initial_credits = 2;
  welcome.max_batch_items = 16;
  WelcomeFrame out;
  ASSERT_TRUE(DecodeWelcome(EncodeWelcome(welcome), &out).ok());
  EXPECT_EQ(out.kind, StreamKind::kStructured);
  EXPECT_EQ(std::get<StructuredF0Params>(out.params),
            SmallStructuredParams());
}

TEST(NetProtocol, RawBatchRoundTrip) {
  RawBatchFrame batch;
  batch.seq = 3;
  batch.items = {1, 2, ~0ull, 0, 42};
  RawBatchFrame out;
  ASSERT_TRUE(DecodeRawBatch(EncodeRawBatch(batch), 4096, &out).ok());
  EXPECT_EQ(out.seq, 3u);
  EXPECT_EQ(out.items, batch.items);
}

TEST(NetProtocol, RawBatchRejectsOversizeAndEmpty) {
  RawBatchFrame batch;
  batch.seq = 1;
  batch.items = {1, 2, 3};
  RawBatchFrame out;
  // Over the negotiated limit.
  const Status oversize = DecodeRawBatch(EncodeRawBatch(batch), 2, &out);
  EXPECT_EQ(oversize.code(), StatusCode::kParseError);
  // Empty batches carry no information and are rejected outright.
  batch.items.clear();
  EXPECT_FALSE(DecodeRawBatch(EncodeRawBatch(batch), 4096, &out).ok());
  // Seq 0 is reserved (acks are cumulative from 1).
  batch.seq = 0;
  batch.items = {1};
  EXPECT_FALSE(DecodeRawBatch(EncodeRawBatch(batch), 4096, &out).ok());
}

TEST(NetProtocol, StructuredBatchRoundTrip) {
  StructuredBatchFrame batch;
  batch.seq = 9;
  batch.items = SampleStructuredItems();
  StructuredBatchFrame out;
  ASSERT_TRUE(
      DecodeStructuredBatch(EncodeStructuredBatch(batch), 8, 16, &out).ok());
  EXPECT_EQ(out.seq, 9u);
  ASSERT_EQ(out.items.size(), batch.items.size());
  // Re-encoding the decoded items reproduces the bytes: the codec is
  // canonical, so round-tripped items are semantically identical.
  StructuredBatchFrame again;
  again.seq = 9;
  again.items = std::move(out.items);
  EXPECT_EQ(EncodeStructuredBatch(again), EncodeStructuredBatch(batch));
}

TEST(NetProtocol, AckCreditEstimateRoundTrip) {
  AckFrame ack_out;
  ASSERT_TRUE(DecodeAck(EncodeAck(AckFrame{7, 3}), &ack_out).ok());
  EXPECT_EQ(ack_out.seq, 7u);
  EXPECT_EQ(ack_out.credits, 3u);

  CreditFrame credit_out;
  ASSERT_TRUE(DecodeCredit(EncodeCredit(CreditFrame{5}), &credit_out).ok());
  EXPECT_EQ(credit_out.credits, 5u);
  // Zero-credit grants are protocol noise and rejected.
  EXPECT_FALSE(DecodeCredit(EncodeCredit(CreditFrame{0}), &credit_out).ok());

  EstimateFrame est_out;
  ASSERT_TRUE(
      DecodeEstimate(EncodeEstimate(EstimateFrame{1234.5, 99}), &est_out)
          .ok());
  EXPECT_DOUBLE_EQ(est_out.estimate, 1234.5);
  EXPECT_EQ(est_out.items_ingested, 99u);
}

TEST(NetProtocol, ErrorFrameIsStatusIdentity) {
  const Status status =
      Status::ResourceExhausted("flow control violated").Annotate("seq 12");
  ErrorFrame out;
  ASSERT_TRUE(DecodeError(EncodeError(ErrorFromStatus(status)), &out).ok());
  const Status round = StatusFromError(out);
  EXPECT_EQ(round.code(), status.code());
  EXPECT_EQ(round.message(), status.message());
}

TEST(NetProtocol, ErrorFrameRejectsUnknownAndOkCodes) {
  // Code 0 (kOk) must never ride an error frame; out-of-range codes are
  // a protocol violation, not a silent kInternal.
  wire::ByteWriter ok_code;
  ok_code.U16(0);
  ok_code.Varint(0);
  ErrorFrame out;
  EXPECT_FALSE(DecodeError(ok_code.Take(), &out).ok());
  wire::ByteWriter bad_code;
  bad_code.U16(999);
  bad_code.Varint(0);
  EXPECT_FALSE(DecodeError(bad_code.Take(), &out).ok());
}

// ---- stats frames (protocol revision 2) -----------------------------------

StatsReportFrame SampleStatsReport() {
  StatsReportFrame report;
  report.entries.push_back({"mcf0_serve_batches_total", 12});
  report.entries.push_back({"mcf0_serve_bytes_in_total", 34567});
  report.entries.push_back({"mcf0_serve_frames_in_total{type=\"batch\"}", 12});
  report.entries.push_back({"mcf0_serve_items_total", 48000});
  return report;
}

TEST(NetProtocol, StatsReportRoundTrip) {
  const StatsReportFrame report = SampleStatsReport();
  StatsReportFrame out;
  ASSERT_TRUE(DecodeStatsReport(EncodeStatsReport(report), &out).ok());
  ASSERT_EQ(out.entries.size(), report.entries.size());
  for (size_t i = 0; i < out.entries.size(); ++i) {
    EXPECT_EQ(out.entries[i].name, report.entries[i].name);
    EXPECT_EQ(out.entries[i].value, report.entries[i].value);
  }
  EXPECT_EQ(out.Find("mcf0_serve_items_total"), 48000u);
  EXPECT_EQ(out.Find("no_such_metric"), std::nullopt);
}

TEST(NetProtocol, StatsReportEmptyIsValid) {
  StatsReportFrame out;
  ASSERT_TRUE(DecodeStatsReport(EncodeStatsReport(StatsReportFrame{}), &out)
                  .ok());
  EXPECT_TRUE(out.entries.empty());
}

TEST(NetProtocol, StatsReportRejectsUnsortedAndDuplicateNames) {
  StatsReportFrame unsorted;
  unsorted.entries.push_back({"b_total", 1});
  unsorted.entries.push_back({"a_total", 2});
  StatsReportFrame out;
  const Status status =
      DecodeStatsReport(EncodeStatsReport(unsorted), &out);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("sorted"), std::string::npos);

  StatsReportFrame duplicate;
  duplicate.entries.push_back({"a_total", 1});
  duplicate.entries.push_back({"a_total", 2});
  EXPECT_FALSE(DecodeStatsReport(EncodeStatsReport(duplicate), &out).ok());
}

TEST(NetProtocol, StatsReportRejectsBadNames) {
  StatsReportFrame out;
  // Spaces and control bytes are not registry-key characters.
  StatsReportFrame spaced;
  spaced.entries.push_back({"a total", 1});
  EXPECT_FALSE(DecodeStatsReport(EncodeStatsReport(spaced), &out).ok());
  // An empty name cannot exist in the registry.
  StatsReportFrame empty_name;
  empty_name.entries.push_back({"", 1});
  EXPECT_FALSE(DecodeStatsReport(EncodeStatsReport(empty_name), &out).ok());
  // Oversized names are rejected before any allocation.
  StatsReportFrame huge_name;
  huge_name.entries.push_back({std::string(513, 'a'), 1});
  EXPECT_FALSE(DecodeStatsReport(EncodeStatsReport(huge_name), &out).ok());
}

TEST(NetProtocol, StatsReportRejectsEntryCountBeyondCapOrPayload) {
  StatsReportFrame out;
  // Claimed count over the hard cap.
  wire::ByteWriter over_cap;
  over_cap.Varint(4097);
  EXPECT_FALSE(DecodeStatsReport(over_cap.Take(), &out).ok());
  // Claimed count with no entry bytes behind it.
  wire::ByteWriter lying;
  lying.Varint(100);
  EXPECT_FALSE(DecodeStatsReport(lying.Take(), &out).ok());
}

TEST(NetFrameBuffer, StatsFramesAreStampedWithRevisionTwo) {
  // WrapMessage stamps each kind with the revision that introduced it:
  // the stats pair rides at 2, everything older stays at 1 so a
  // revision-1 peer keeps interoperating on the revision-1 subset.
  FrameBuffer buffer;
  buffer.Append(WrapMessage(FrameType::kStatsQuery, ""));
  Message message;
  Status status;
  ASSERT_TRUE(buffer.Next(&message, &status));
  EXPECT_EQ(message.type, FrameType::kStatsQuery);

  wire::FrameHeader header;
  const std::string stats = WrapMessage(FrameType::kStatsQuery, "");
  ASSERT_TRUE(wire::ParseFrameHeader(stats, &header).ok());
  EXPECT_EQ(header.version, kStatsMinVersion);
  const std::string goodbye = WrapMessage(FrameType::kGoodbye, "");
  ASSERT_TRUE(wire::ParseFrameHeader(goodbye, &header).ok());
  EXPECT_EQ(header.version, 1);
}

TEST(NetFrameBuffer, RejectsStatsKindSmuggledUnderVersionOne) {
  // A v2-only kind claiming a v1 header is a protocol violation, not a
  // frame a v1 peer could legitimately have produced.
  FrameBuffer buffer;
  buffer.Append(wire::WrapFrameRaw(
      static_cast<uint8_t>(FrameType::kStatsReport), 1, ""));
  Message message;
  Status status;
  EXPECT_FALSE(buffer.Next(&message, &status));
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("not defined at its claimed version"),
            std::string::npos);
}

// ---- structured item validation -------------------------------------------

TEST(NetProtocol, StructuredItemRejectsVariableOutsideUniverse) {
  wire::ByteWriter w;
  w.U8(0);     // terms
  w.Varint(1); // one term
  w.Varint(1); // one literal
  w.Varint(8); // var 8 in an n=8 universe: out of range
  w.U8(0);
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  const Status status = DecodeStructuredItem(r, 8, &item);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("outside the universe"), std::string::npos);
}

TEST(NetProtocol, StructuredItemRejectsTermCountBeyondPayload) {
  // Each term costs at least one payload byte, so a tiny item claiming a
  // huge term count is a lie that must be rejected before the decoder
  // reserves `count` Terms — otherwise a 16 MiB frame could force
  // hundreds of MB of transient allocation.
  wire::ByteWriter w;
  w.U8(0);            // DNF term group
  w.Varint(500'000);  // claimed terms; no term bytes follow
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  const Status status = DecodeStructuredItem(r, 8, &item);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("larger than its payload"),
            std::string::npos);
}

TEST(NetProtocol, StructuredItemRejectsContradictoryTerm) {
  wire::ByteWriter w;
  w.U8(0);
  w.Varint(1);
  w.Varint(2);
  w.Varint(3);
  w.U8(0);  // x3
  w.Varint(3);
  w.U8(1);  // !x3
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  EXPECT_FALSE(DecodeStructuredItem(r, 8, &item).ok());
}

TEST(NetProtocol, StructuredItemRejectsRangeWidthMismatch) {
  // A 2x3-bit range claims 6 universe bits; decoding against n=8 fails.
  MultiDimRange range(2, 3);
  range.SetDim(0, DimRange{0, 7, 0});
  range.SetDim(1, DimRange{1, 2, 0});
  wire::ByteWriter w;
  EncodeStructuredItem(w, StructuredItem(std::move(range)));
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  const Status status = DecodeStructuredItem(r, 8, &item);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("width mismatch"), std::string::npos);
}

TEST(NetProtocol, StructuredItemRejectsRangeBoundsOutOfDomain) {
  wire::ByteWriter w;
  w.U8(1);
  w.Varint(1);  // one dim
  w.Varint(8);  // 8 bits
  w.Varint(5);  // lo
  w.Varint(300);  // hi > 255
  w.Varint(0);
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  EXPECT_FALSE(DecodeStructuredItem(r, 8, &item).ok());
}

TEST(NetProtocol, StructuredItemRejectsAffineRankOutsideUniverse) {
  // rank must stay in [1, n]: rank 0 constrains nothing and rank > n
  // would make StructuredF0's AddAffine abort.
  for (const uint64_t rank : {0ull, 9ull}) {
    wire::ByteWriter w;
    w.U8(2);  // affine
    w.Varint(rank);
    const std::string bytes = w.Take();
    wire::ByteReader r(bytes);
    StructuredItem item;
    EXPECT_FALSE(DecodeStructuredItem(r, 8, &item).ok()) << "rank " << rank;
  }
}

TEST(NetProtocol, StructuredItemWidthMismatchSurfacesAtBatchLevel) {
  // An element encoded for a 16-bit universe is wider than an n=8
  // decoder reads; the leftover bytes fail the batch's exact-consumption
  // rule instead of reaching the engine as a silently misparsed item.
  StructuredBatchFrame batch;
  batch.seq = 1;
  batch.items.emplace_back(BitVec(16));
  StructuredBatchFrame out;
  const Status status =
      DecodeStructuredBatch(EncodeStructuredBatch(batch), 8, 16, &out);
  EXPECT_EQ(status.code(), StatusCode::kParseError);
}

TEST(NetProtocol, StructuredItemRejectsUnknownTag) {
  wire::ByteWriter w;
  w.U8(9);
  const std::string bytes = w.Take();
  wire::ByteReader r(bytes);
  StructuredItem item;
  const Status status = DecodeStructuredItem(r, 8, &item);
  EXPECT_NE(status.message().find("tag unknown"), std::string::npos);
}

// ---- framing: FrameBuffer -------------------------------------------------

TEST(NetFrameBuffer, ExtractsFramesFedByteByByte) {
  const std::string one = WrapMessage(FrameType::kAck, EncodeAck({1, 2}));
  const std::string two = WrapMessage(FrameType::kGoodbye, "");
  const std::string stream = one + two;
  FrameBuffer buffer;
  std::vector<Message> got;
  for (const char c : stream) {
    buffer.Append(std::string_view(&c, 1));
    Message message;
    Status status;
    while (buffer.Next(&message, &status)) got.push_back(message);
    ASSERT_TRUE(status.ok());
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].type, FrameType::kAck);
  EXPECT_EQ(got[1].type, FrameType::kGoodbye);
  EXPECT_TRUE(got[1].payload.empty());
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(NetFrameBuffer, BadMagicIsStickyError) {
  FrameBuffer buffer;
  buffer.Append("XXXXXXXXXXXXXXXXXXXXXXXXXXXX");
  Message message;
  Status status;
  EXPECT_FALSE(buffer.Next(&message, &status));
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  // Even after appending a perfectly valid frame, the stream stays dead:
  // there is no resynchronization point past a corrupt header.
  buffer.Append(WrapMessage(FrameType::kGoodbye, ""));
  EXPECT_FALSE(buffer.Next(&message, &status));
  EXPECT_FALSE(status.ok());
}

TEST(NetFrameBuffer, RejectsWrongVersionUnknownKindAndOversize) {
  {
    FrameBuffer buffer;
    buffer.Append(wire::WrapFrameRaw(
        static_cast<uint8_t>(FrameType::kGoodbye), kProtocolVersion + 1, ""));
    Message message;
    Status status;
    EXPECT_FALSE(buffer.Next(&message, &status));
    EXPECT_EQ(status.code(), StatusCode::kNotSupported);
  }
  {
    FrameBuffer buffer;
    buffer.Append(wire::WrapFrameRaw(0x03, kProtocolVersion, ""));  // sketch kind
    Message message;
    Status status;
    EXPECT_FALSE(buffer.Next(&message, &status));
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
  {
    // A header claiming a payload beyond the cap must fail before any
    // allocation, with only the 24 header bytes present.
    wire::ByteWriter w;
    w.U8('M');
    w.U8('C');
    w.U8('F');
    w.U8('0');
    w.U16(kProtocolVersion);
    w.U8(static_cast<uint8_t>(FrameType::kBatch));
    w.U8(0);
    w.U64(kMaxFramePayload + 1);
    w.U64(0);
    FrameBuffer buffer;
    buffer.Append(w.Take());
    Message message;
    Status status;
    EXPECT_FALSE(buffer.Next(&message, &status));
    EXPECT_EQ(status.code(), StatusCode::kParseError);
  }
}

TEST(NetFrameBuffer, ChecksumMismatchIsCaught) {
  std::string frame = WrapMessage(FrameType::kAck, EncodeAck({1, 0}));
  frame.back() ^= 0x40;  // corrupt the payload, not the header
  FrameBuffer buffer;
  buffer.Append(frame);
  Message message;
  Status status;
  EXPECT_FALSE(buffer.Next(&message, &status));
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("checksum"), std::string::npos);
}

// ---- robustness sweeps ----------------------------------------------------

/// Every payload codec must reject every proper prefix of a valid
/// encoding with a Status — never crash, hang, or accept.
template <typename Decode>
void ExpectAllPrefixesRejected(const std::string& payload, Decode decode) {
  for (size_t len = 0; len < payload.size(); ++len) {
    const Status status = decode(payload.substr(0, len));
    EXPECT_FALSE(status.ok()) << "prefix of length " << len << " accepted";
  }
}

TEST(NetProtocolRobustness, TruncationAtEveryPrefixIsRejected) {
  HelloFrame hello;
  hello.kind = StreamKind::kRaw;
  ExpectAllPrefixesRejected(EncodeHello(hello), [](std::string_view bytes) {
    HelloFrame out;
    return DecodeHello(bytes, &out);
  });

  WelcomeFrame welcome;
  welcome.kind = StreamKind::kStructured;
  welcome.params = SmallStructuredParams();
  welcome.initial_credits = 4;
  welcome.max_batch_items = 16;
  ExpectAllPrefixesRejected(EncodeWelcome(welcome),
                            [](std::string_view bytes) {
                              WelcomeFrame out;
                              return DecodeWelcome(bytes, &out);
                            });

  RawBatchFrame raw;
  raw.seq = 1;
  raw.items = {10, 20, 30};
  ExpectAllPrefixesRejected(EncodeRawBatch(raw), [](std::string_view bytes) {
    RawBatchFrame out;
    return DecodeRawBatch(bytes, 4096, &out);
  });

  StructuredBatchFrame structured;
  structured.seq = 1;
  structured.items = SampleStructuredItems();
  ExpectAllPrefixesRejected(EncodeStructuredBatch(structured),
                            [](std::string_view bytes) {
                              StructuredBatchFrame out;
                              return DecodeStructuredBatch(bytes, 8, 16, &out);
                            });

  ExpectAllPrefixesRejected(EncodeAck(AckFrame{5, 1}),
                            [](std::string_view bytes) {
                              AckFrame out;
                              return DecodeAck(bytes, &out);
                            });
  ExpectAllPrefixesRejected(EncodeError(ErrorFromStatus(
                                Status::Unavailable("stream write failed"))),
                            [](std::string_view bytes) {
                              ErrorFrame out;
                              return DecodeError(bytes, &out);
                            });

  ExpectAllPrefixesRejected(EncodeStatsReport(SampleStatsReport()),
                            [](std::string_view bytes) {
                              StatsReportFrame out;
                              return DecodeStatsReport(bytes, &out);
                            });
}

TEST(NetProtocolRobustness, WholeFrameByteFlipNeverCrashes) {
  // Flip one byte at every position of a wrapped structured batch — the
  // hardest frame to decode — and feed the result through the full
  // FrameBuffer pipeline. Permitted outcomes, by what framing can
  // actually detect: an error Status (magic/version/reserved/checksum
  // violations and every payload flip, which the FNV checksum catches);
  // a stalled stream (a flipped length field just looks like an
  // incomplete frame); or — for the kind byte only, which the payload
  // checksum does not cover — a frame of a *different* type whose
  // payload is byte-identical, where the mismatched payload codec takes
  // over. A flip must never yield the original batch, and never crash.
  StructuredBatchFrame batch;
  batch.seq = 2;
  batch.items = SampleStructuredItems();
  const std::string original_payload = EncodeStructuredBatch(batch);
  const std::string frame = WrapMessage(FrameType::kBatch, original_payload);
  constexpr size_t kKindByte = 6;
  constexpr size_t kLengthField = 8;  // bytes [8, 16): payload size
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string mutated = frame;
    mutated[i] ^= 0x01;
    FrameBuffer buffer;
    buffer.Append(mutated);
    Message message;
    Status status;
    if (!buffer.Next(&message, &status)) {
      if (status.ok()) {
        // Stalled waiting for bytes: only a length-field flip can do so.
        EXPECT_TRUE(i >= kLengthField && i < kLengthField + 8)
            << "flip at " << i << " silently vanished";
      }
      continue;
    }
    EXPECT_EQ(i, kKindByte) << "flip at " << i << " survived framing";
    EXPECT_NE(message.type, FrameType::kBatch);
    EXPECT_EQ(message.payload, original_payload);
  }
  // Control: the unmutated frame decodes to the original items.
  FrameBuffer buffer;
  buffer.Append(frame);
  Message message;
  Status status;
  ASSERT_TRUE(buffer.Next(&message, &status));
  StructuredBatchFrame out;
  ASSERT_TRUE(DecodeStructuredBatch(message.payload, 8, 16, &out).ok());
  EXPECT_EQ(EncodeStructuredBatch(out), original_payload);
}

}  // namespace
}  // namespace net
}  // namespace mcf0
