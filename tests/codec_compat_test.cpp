// Wire-format compatibility tests against checked-in golden fixtures
// (tests/data/*.mcf0): v1 raw estimator files, v2 raw estimator files,
// and v2 structured-sketch files. The fixtures are never regenerated
// automatically; they pin these guarantees across codec changes:
//
//   1. the v1 *encoder* still produces those exact bytes (no silent drift
//      of the frozen format), and likewise the v2 encoder — any
//      intentional v2 layout change must regenerate the v2 fixtures *and*
//      justify itself against the "bump the version" rule below,
//   2. current decode reads golden files bit-exactly: the decoded
//      sketch's queries match the original and re-encoding at the same
//      version reproduces the file,
//   3. estimators decoded from v1 files merge with v2-round-tripped
//      estimators (cross-version map-reduce keeps working).
//
// To regenerate after an *intentional* layout change (for v1 there should
// never be one — bump the version instead), run this binary with
// --gtest_also_run_disabled_tests --gtest_filter='*RegenerateFixtures*'.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/sketch_codec.hpp"
#include "engine/sketch_merge.hpp"
#include "formula/formula.hpp"
#include "setstream/structured_f0.hpp"
#include "streaming/f0_sketch.hpp"

namespace mcf0 {
namespace {

#ifndef MCF0_TEST_DATA_DIR
#error "MCF0_TEST_DATA_DIR must be defined to the tests/data directory"
#endif

constexpr F0Algorithm kAllAlgorithms[] = {
    F0Algorithm::kBucketing, F0Algorithm::kMinimum, F0Algorithm::kEstimation};

const char* AlgoName(F0Algorithm algorithm) {
  switch (algorithm) {
    case F0Algorithm::kBucketing: return "bucketing";
    case F0Algorithm::kMinimum: return "minimum";
    case F0Algorithm::kEstimation: return "estimation";
  }
  return "?";
}

// Fixture parameters: small overrides keep the files a few KB while the
// thresh-8 rows still saturate on the 60-element streams below.
F0Params FixtureParams(F0Algorithm algorithm) {
  F0Params params;
  params.n = 16;
  params.eps = 0.8;
  params.delta = 0.2;
  params.algorithm = algorithm;
  params.seed = 5;
  params.thresh_override = 8;
  params.rows_override = 3;
  params.s_override = 3;
  return params;
}

// Deterministic distinct elements: i -> i * 977 mod 65521 (prime, so the
// map is injective for i < 65521). Shard A and shard B overlap.
uint64_t FixtureElement(uint64_t i) { return (i * 977) % 65521; }

std::vector<uint64_t> ShardA() {
  std::vector<uint64_t> xs;
  for (uint64_t i = 0; i < 60; ++i) xs.push_back(FixtureElement(i));
  return xs;
}

std::vector<uint64_t> ShardB() {
  std::vector<uint64_t> xs;
  for (uint64_t i = 40; i < 100; ++i) xs.push_back(FixtureElement(i));
  return xs;
}

F0Estimator BuildFixture(F0Algorithm algorithm,
                         const std::vector<uint64_t>& xs) {
  F0Estimator est(FixtureParams(algorithm));
  for (const uint64_t x : xs) est.Add(x);
  return est;
}

std::string FixturePath(F0Algorithm algorithm, const char* shard,
                        const char* version = "v1") {
  return std::string(MCF0_TEST_DATA_DIR) + "/" + AlgoName(algorithm) + "_" +
         shard + "_" + version + ".mcf0";
}

// ---- structured fixtures (v2-only frames) ---------------------------------

const char* StructuredAlgoName(StructuredF0Algorithm algorithm) {
  return algorithm == StructuredF0Algorithm::kMinimum ? "minimum"
                                                      : "bucketing";
}

StructuredF0Params StructuredFixtureParams(StructuredF0Algorithm algorithm) {
  StructuredF0Params params;
  params.n = 12;
  params.eps = 0.8;
  params.delta = 0.2;
  params.algorithm = algorithm;
  params.seed = 5;
  params.thresh_override = 8;
  params.rows_override = 3;
  return params;
}

// Deterministic width-3 cubes over 12 variables: term i fixes variables
// (i, i+3, i+7 mod 12) — always distinct, so Make never fails — with a
// sign pattern from i's bits.
std::vector<Term> StructuredFixtureTerms() {
  std::vector<Term> terms;
  for (int i = 0; i < 10; ++i) {
    std::vector<Lit> lits = {Lit(i % 12, (i & 1) != 0),
                             Lit((i + 3) % 12, (i & 2) != 0),
                             Lit((i + 7) % 12, (i & 4) != 0)};
    terms.push_back(*Term::Make(std::move(lits)));
  }
  return terms;
}

StructuredF0 BuildStructuredFixture(StructuredF0Algorithm algorithm) {
  StructuredF0 sketch(StructuredFixtureParams(algorithm));
  for (const Term& t : StructuredFixtureTerms()) sketch.AddTerms({t});
  return sketch;
}

std::string StructuredFixturePath(StructuredF0Algorithm algorithm) {
  return std::string(MCF0_TEST_DATA_DIR) + "/structured_" +
         StructuredAlgoName(algorithm) + "_v2.mcf0";
}

constexpr StructuredF0Algorithm kStructuredAlgorithms[] = {
    StructuredF0Algorithm::kMinimum, StructuredF0Algorithm::kBucketing};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CodecCompatTest, GoldenV1FilesMatchTheV1Encoder) {
  // Guarantee 1: today's v1 encoder reproduces the checked-in bytes for
  // the same parameters and streams.
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    const std::string expect_a =
        SketchCodec::Encode(BuildFixture(algorithm, ShardA()),
                            SketchCodec::kFormatV1);
    const std::string expect_b =
        SketchCodec::Encode(BuildFixture(algorithm, ShardB()),
                            SketchCodec::kFormatV1);
    EXPECT_EQ(ReadFile(FixturePath(algorithm, "a")), expect_a)
        << AlgoName(algorithm);
    EXPECT_EQ(ReadFile(FixturePath(algorithm, "b")), expect_b)
        << AlgoName(algorithm);
  }
}

TEST(CodecCompatTest, DecodesGoldenV1FilesBitExactly) {
  // Guarantee 2: decode -> query matches the original sketch exactly, and
  // re-encoding as v1 reproduces the file byte for byte.
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    const std::string blob = ReadFile(FixturePath(algorithm, "a"));
    Result<F0Estimator> decoded = SketchCodec::DecodeF0Estimator(blob);
    ASSERT_TRUE(decoded.ok())
        << AlgoName(algorithm) << ": " << decoded.status().ToString();

    const F0Estimator original = BuildFixture(algorithm, ShardA());
    EXPECT_TRUE(decoded.value().params() == original.params());
    EXPECT_DOUBLE_EQ(decoded.value().Estimate(), original.Estimate());
    EXPECT_EQ(decoded.value().SpaceBits(), original.SpaceBits());
    EXPECT_EQ(SketchCodec::Encode(decoded.value(), SketchCodec::kFormatV1),
              blob);

    // A v1-decoded sketch is live: it keeps absorbing elements in
    // lockstep with the original.
    F0Estimator revived = std::move(decoded).value();
    for (uint64_t i = 200; i < 260; ++i) {
      revived.Add(FixtureElement(i));
    }
    F0Estimator grown = BuildFixture(algorithm, ShardA());
    for (uint64_t i = 200; i < 260; ++i) grown.Add(FixtureElement(i));
    EXPECT_EQ(SketchCodec::Encode(revived), SketchCodec::Encode(grown));
  }
}

TEST(CodecCompatTest, MergesV1DecodedWithV2DecodedAcrossVersions) {
  // Guarantee 3: Merge(v1-decoded, v2-decoded) equals the single-pass
  // sketch over the union stream, in both merge orders.
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    Result<F0Estimator> from_v1 =
        SketchCodec::DecodeF0Estimator(ReadFile(FixturePath(algorithm, "a")));
    ASSERT_TRUE(from_v1.ok()) << from_v1.status().ToString();

    const std::string v2_blob = SketchCodec::Encode(
        BuildFixture(algorithm, ShardB()), SketchCodec::kFormatV2);
    Result<F0Estimator> from_v2 = SketchCodec::DecodeF0Estimator(v2_blob);
    ASSERT_TRUE(from_v2.ok()) << from_v2.status().ToString();

    F0Estimator single(FixtureParams(algorithm));
    for (const uint64_t x : ShardA()) single.Add(x);
    for (const uint64_t x : ShardB()) single.Add(x);

    F0Estimator merged = std::move(from_v1).value();
    ASSERT_TRUE(Merge(merged, from_v2.value()).ok()) << AlgoName(algorithm);
    EXPECT_EQ(SketchCodec::Encode(merged), SketchCodec::Encode(single));

    // And the reverse order: v1 state folded into the v2-decoded side.
    Result<F0Estimator> from_v1_again =
        SketchCodec::DecodeF0Estimator(ReadFile(FixturePath(algorithm, "a")));
    ASSERT_TRUE(from_v1_again.ok());
    F0Estimator merged_rev = std::move(from_v2).value();
    ASSERT_TRUE(Merge(merged_rev, from_v1_again.value()).ok());
    EXPECT_EQ(SketchCodec::Encode(merged_rev), SketchCodec::Encode(single));
  }
}

TEST(CodecCompatTest, GoldenV2FilesMatchTheV2Encoder) {
  // The v2 drift pin: today's v2 encoder reproduces the checked-in bytes
  // for the same parameters and streams — raw estimator frames (all
  // three algorithms) and structured frames (both strategies). Any
  // intentional v2 layout change must regenerate these files (and the
  // docs' measured-size table) consciously, not silently.
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    EXPECT_EQ(ReadFile(FixturePath(algorithm, "a", "v2")),
              SketchCodec::Encode(BuildFixture(algorithm, ShardA()),
                                  SketchCodec::kFormatV2))
        << AlgoName(algorithm);
    EXPECT_EQ(ReadFile(FixturePath(algorithm, "b", "v2")),
              SketchCodec::Encode(BuildFixture(algorithm, ShardB()),
                                  SketchCodec::kFormatV2))
        << AlgoName(algorithm);
  }
  for (const StructuredF0Algorithm algorithm : kStructuredAlgorithms) {
    EXPECT_EQ(ReadFile(StructuredFixturePath(algorithm)),
              SketchCodec::Encode(BuildStructuredFixture(algorithm),
                                  SketchCodec::kFormatV2))
        << StructuredAlgoName(algorithm);
  }
}

TEST(CodecCompatTest, DecodesGoldenV2FilesBitExactly) {
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    const std::string blob = ReadFile(FixturePath(algorithm, "a", "v2"));
    Result<F0Estimator> decoded = SketchCodec::DecodeF0Estimator(blob);
    ASSERT_TRUE(decoded.ok())
        << AlgoName(algorithm) << ": " << decoded.status().ToString();
    const F0Estimator original = BuildFixture(algorithm, ShardA());
    EXPECT_TRUE(decoded.value().params() == original.params());
    EXPECT_DOUBLE_EQ(decoded.value().Estimate(), original.Estimate());
    EXPECT_EQ(decoded.value().SpaceBits(), original.SpaceBits());
    // The golden files are seed-elided, so decode attests canonicality
    // and the re-encode takes the O(state) fast path.
    EXPECT_TRUE(decoded.value().hashes_canonical());
    EXPECT_EQ(SketchCodec::Encode(decoded.value(), SketchCodec::kFormatV2),
              blob);
  }
  for (const StructuredF0Algorithm algorithm : kStructuredAlgorithms) {
    const std::string blob = ReadFile(StructuredFixturePath(algorithm));
    Result<StructuredF0> decoded = SketchCodec::DecodeStructuredF0(blob);
    ASSERT_TRUE(decoded.ok()) << StructuredAlgoName(algorithm) << ": "
                              << decoded.status().ToString();
    const StructuredF0 original = BuildStructuredFixture(algorithm);
    EXPECT_DOUBLE_EQ(decoded.value().Estimate(), original.Estimate());
    EXPECT_TRUE(decoded.value().hashes_canonical());
    EXPECT_EQ(SketchCodec::Encode(decoded.value(), SketchCodec::kFormatV2),
              blob);
  }
}

TEST(CodecCompatTest, StreamingMergeReadsGoldenV1Files) {
  // The row-at-a-time reducer handles v1 frames too: streaming both
  // golden shards equals the in-memory union, for v1 and v2 output.
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    const std::string blob_a = ReadFile(FixturePath(algorithm, "a"));
    const std::string blob_b = ReadFile(FixturePath(algorithm, "b"));

    F0Estimator single(FixtureParams(algorithm));
    for (const uint64_t x : ShardA()) single.Add(x);
    for (const uint64_t x : ShardB()) single.Add(x);

    // v1 output from v1 inputs is bit-reproducible against a single pass.
    std::stringstream v1_out;
    auto v1_stats =
        MergeSketchStreams({blob_a, blob_b}, SketchCodec::kFormatV1, v1_out);
    ASSERT_TRUE(v1_stats.ok())
        << AlgoName(algorithm) << ": " << v1_stats.status().ToString();
    EXPECT_EQ(v1_out.str(), SketchCodec::Encode(single, SketchCodec::kFormatV1))
        << AlgoName(algorithm);

    // v2 output from all-embedded (v1) inputs conservatively embeds hash
    // state rather than attesting canonical hashes, so compare *state*:
    // the decoded merge re-encodes identically to the single-pass sketch.
    std::stringstream v2_out;
    auto v2_stats =
        MergeSketchStreams({blob_a, blob_b}, SketchCodec::kFormatV2, v2_out);
    ASSERT_TRUE(v2_stats.ok())
        << AlgoName(algorithm) << ": " << v2_stats.status().ToString();
    Result<F0Estimator> decoded = SketchCodec::DecodeF0Estimator(v2_out.str());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(SketchCodec::Encode(decoded.value()), SketchCodec::Encode(single))
        << AlgoName(algorithm);
  }
}

// Manual regeneration hook; see the file comment. Emits every fixture
// generation — v1 and v2 raw frames plus the v2 structured frames — and
// writes into the source tree, so it stays disabled in normal runs.
TEST(CodecCompatTest, DISABLED_RegenerateFixtures) {
  auto write = [](const std::string& path, const std::string& blob) {
    std::ofstream out(path, std::ios::binary);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    ASSERT_TRUE(out.good()) << path;
  };
  for (const F0Algorithm algorithm : kAllAlgorithms) {
    const struct {
      const char* shard;
      std::vector<uint64_t> xs;
    } shards[] = {{"a", ShardA()}, {"b", ShardB()}};
    for (const auto& [shard, xs] : shards) {
      const F0Estimator est = BuildFixture(algorithm, xs);
      write(FixturePath(algorithm, shard, "v1"),
            SketchCodec::Encode(est, SketchCodec::kFormatV1));
      write(FixturePath(algorithm, shard, "v2"),
            SketchCodec::Encode(est, SketchCodec::kFormatV2));
    }
  }
  for (const StructuredF0Algorithm algorithm : kStructuredAlgorithms) {
    write(StructuredFixturePath(algorithm),
          SketchCodec::Encode(BuildStructuredFixture(algorithm),
                              SketchCodec::kFormatV2));
  }
}

}  // namespace
}  // namespace mcf0
