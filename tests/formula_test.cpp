// Tests for the formula layer: term construction invariants, evaluation,
// De Morgan bridges, and random generator contracts.
#include "formula/formula.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/exact_count.hpp"
#include "formula/random_gen.hpp"

namespace mcf0 {
namespace {

TEST(Term, MakeSortsAndDeduplicates) {
  auto t = Term::Make({Lit(3, false), Lit(1, true), Lit(3, false)});
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->Width(), 2);
  EXPECT_EQ(t->lits()[0].var, 1);
  EXPECT_EQ(t->lits()[1].var, 3);
}

TEST(Term, MakeRejectsContradiction) {
  EXPECT_FALSE(Term::Make({Lit(2, false), Lit(2, true)}).has_value());
}

TEST(Term, EmptyTermIsTautology) {
  auto t = Term::Make({});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->Eval(BitVec(4)));
  EXPECT_TRUE(t->Eval(BitVec::Ones(4)));
}

TEST(Term, EvalAndFixedValue) {
  // x0 AND NOT x2.
  auto t = Term::Make({Lit(0, false), Lit(2, true)});
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(t->Eval(BitVec::FromString("100")));
  EXPECT_TRUE(t->Eval(BitVec::FromString("110")));
  EXPECT_FALSE(t->Eval(BitVec::FromString("101")));
  EXPECT_FALSE(t->Eval(BitVec::FromString("000")));
  EXPECT_EQ(t->FixedValue(0), std::optional<bool>(true));
  EXPECT_EQ(t->FixedValue(2), std::optional<bool>(false));
  EXPECT_EQ(t->FixedValue(1), std::nullopt);
}

TEST(Clause, EvalIsDisjunction) {
  const Clause c({Lit(0, false), Lit(1, true)});  // x0 or not x1
  EXPECT_TRUE(c.Eval(BitVec::FromString("10")));
  EXPECT_TRUE(c.Eval(BitVec::FromString("00")));
  EXPECT_FALSE(c.Eval(BitVec::FromString("01")));
}

TEST(Dnf, EvalIsDisjunctionOfTerms) {
  Dnf dnf(3);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(1, false)}));  // x0 x1
  dnf.AddTerm(*Term::Make({Lit(2, false)}));                 // x2
  EXPECT_TRUE(dnf.Eval(BitVec::FromString("110")));
  EXPECT_TRUE(dnf.Eval(BitVec::FromString("001")));
  EXPECT_FALSE(dnf.Eval(BitVec::FromString("100")));
  EXPECT_FALSE(dnf.Eval(BitVec::FromString("000")));
}

TEST(Dnf, EmptyDnfIsUnsatisfiable) {
  const Dnf dnf(4);
  EXPECT_EQ(ExactCountEnum(dnf), 0u);
}

TEST(Cnf, EmptyCnfIsTautology) {
  const Cnf cnf(4);
  EXPECT_EQ(ExactCountEnum(cnf), 16u);
}

TEST(NegationBridges, ComplementCounts) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Dnf dnf = RandomDnf(8, 4, 1, 4, rng);
    const Cnf neg = NegateDnf(dnf);
    EXPECT_EQ(ExactCountEnum(dnf) + ExactCountEnum(neg), 256u);
    // Double negation restores the solution set.
    const Dnf back = NegateCnf(neg);
    EXPECT_EQ(ExactCountEnum(back), ExactCountEnum(dnf));
  }
}

TEST(RandomGen, RandomTermHasExactWidthAndDistinctVars) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const Term t = RandomTerm(20, 5, rng);
    EXPECT_EQ(t.Width(), 5);
    for (size_t i = 1; i < t.lits().size(); ++i) {
      EXPECT_LT(t.lits()[i - 1].var, t.lits()[i].var);
    }
  }
}

TEST(RandomGen, RandomKCnfShape) {
  Rng rng(11);
  const Cnf cnf = RandomKCnf(15, 40, 3, rng);
  EXPECT_EQ(cnf.num_vars(), 15);
  EXPECT_EQ(cnf.num_clauses(), 40);
  for (const Clause& c : cnf.clauses()) EXPECT_EQ(c.Width(), 3);
}

TEST(RandomGen, RandomDnfWidthsInRange) {
  Rng rng(13);
  const Dnf dnf = RandomDnf(20, 50, 2, 6, rng);
  EXPECT_EQ(dnf.num_terms(), 50);
  for (const Term& t : dnf.terms()) {
    EXPECT_GE(t.Width(), 2);
    EXPECT_LE(t.Width(), 6);
  }
}

TEST(ExactCount, IncExcMatchesEnumeration) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const Dnf dnf =
        RandomDnf(12, 1 + static_cast<int>(rng.NextBelow(8)), 1, 6, rng);
    EXPECT_EQ(ExactDnfCountIncExc(dnf),
              static_cast<double>(ExactCountEnum(dnf)));
  }
}

TEST(ExactCount, IncExcSingleTerm) {
  Dnf dnf(10);
  dnf.AddTerm(*Term::Make({Lit(0, false), Lit(5, true), Lit(9, false)}));
  EXPECT_EQ(ExactDnfCountIncExc(dnf), 128.0);  // 2^(10-3)
}

TEST(ExactCount, IncExcWideUniverse) {
  // n = 100 is far beyond enumeration; a single width-1 term has 2^99.
  Dnf dnf(100);
  dnf.AddTerm(*Term::Make({Lit(0, false)}));
  EXPECT_DOUBLE_EQ(ExactDnfCountIncExc(dnf), std::pow(2.0, 99));
}

}  // namespace
}  // namespace mcf0
