// Tests for the Toeplitz representation: structural (constant diagonals),
// size (Theta(n+m) bits), and equivalence with the dense form.
#include "gf2/toeplitz.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace mcf0 {
namespace {

TEST(Toeplitz, ConstantDiagonals) {
  Rng rng(3);
  const ToeplitzMatrix t = ToeplitzMatrix::Random(9, 13, rng);
  for (int i = 0; i + 1 < 9; ++i) {
    for (int j = 0; j + 1 < 13; ++j) {
      EXPECT_EQ(t.Get(i, j), t.Get(i + 1, j + 1));
    }
  }
}

TEST(Toeplitz, SeedBitsIsThetaNPlusM) {
  Rng rng(5);
  const ToeplitzMatrix t = ToeplitzMatrix::Random(20, 30, rng);
  EXPECT_EQ(t.SeedBits(), 20 + 30 - 1);
}

TEST(Toeplitz, DeterminedByFirstRowAndColumn) {
  Rng rng(7);
  const ToeplitzMatrix t = ToeplitzMatrix::Random(8, 8, rng);
  const Gf2Matrix dense = t.ToDense();
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      const bool expect = i >= j ? dense.Get(i - j, 0) : dense.Get(0, j - i);
      EXPECT_EQ(dense.Get(i, j), expect);
    }
  }
}

TEST(Toeplitz, MulMatchesDense) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = 1 + static_cast<int>(rng.NextBelow(20));
    const int cols = 1 + static_cast<int>(rng.NextBelow(20));
    const ToeplitzMatrix t = ToeplitzMatrix::Random(rows, cols, rng);
    const Gf2Matrix dense = t.ToDense();
    const BitVec x = BitVec::Random(cols, rng);
    EXPECT_EQ(t.Mul(x), dense.Mul(x));
  }
}

TEST(Toeplitz, RowMatchesDenseRow) {
  Rng rng(13);
  const ToeplitzMatrix t = ToeplitzMatrix::Random(10, 17, rng);
  const Gf2Matrix dense = t.ToDense();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.Row(i), dense.Row(i));
}

}  // namespace
}  // namespace mcf0
